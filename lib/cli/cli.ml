open Aurora_simtime
open Aurora_device
open Aurora_proc
open Aurora_objstore
open Aurora_sls
open Cmdliner

(* --- the universe file ------------------------------------------------ *)

(* What survives between invocations: the NVMe device (clock included)
   plus a small registry of applications (pgid order matters: groups
   are recreated in it so pgroup ids are stable). *)
type app_entry = {
  app_name : string;
  app_kind : string;  (* "counter" | "kv" | "func" *)
  app_cid : int;
  mutable app_backends : string list; (* "disk" (primary), "memory" *)
}

type universe_file = {
  uf_nvme : Devarray.t;
  uf_apps : app_entry list;
}

type universe = {
  machine : Machine.t;
  mutable apps : (app_entry * Types.pgroup) list;
}

let default_path = "aurora.universe"

let save path (u : universe) =
  (* Quiesce: a final checkpoint of each group, fully durable, so the
     device alone can resurrect everything. *)
  List.iter
    (fun (_, g) ->
      if Types.member_pids u.machine.Machine.kernel g <> [] then begin
        let b = Machine.checkpoint_now u.machine g () in
        Store.wait_durable u.machine.Machine.disk_store b.Types.durable_at
      end)
    u.apps;
  (* Detach instrumentation before marshaling: the span recorder and
     metrics registry are per-boot state (Machine.boot rebinds them),
     and marshaling them would drag the whole retained trace into the
     universe file. *)
  Devarray.set_observability u.machine.Machine.nvme ();
  let oc = open_out_bin path in
  Marshal.to_channel oc
    { uf_nvme = u.machine.Machine.nvme; uf_apps = List.map fst u.apps }
    [];
  close_out oc

(* Demo application programs live in Aurora_apps (linked in); the
   counter comes from here. *)
let () =
  Program.register ~name:"cli/counter" (fun k p th ->
      let ctx = th.Thread.context in
      if ctx.Context.pc = 0 then begin
        let e = Aurora_proc.Syscall.mmap_anon k p ~npages:4 in
        Context.set_reg_int ctx 1 e.Aurora_vm.Vmmap.start_vpn;
        ctx.Context.pc <- 1;
        Program.Continue
      end
      else begin
        let n = Context.reg_int ctx 2 + 1 in
        Context.set_reg_int ctx 2 n;
        Syscall.mem_write k p ~vpn:(Context.reg_int ctx 1 + (n mod 4)) ~offset:0
          ~value:(Int64.of_int n);
        Program.Continue
      end)

let spawn_app (m : Machine.t) (entry : app_entry) =
  let k = m.Machine.kernel in
  Kernel.ensure_container k ~cid:entry.app_cid ~name:entry.app_name;
  (match entry.app_kind with
   | "counter" ->
     ignore
       (Kernel.spawn k ~container:entry.app_cid ~name:entry.app_name
          ~program:"cli/counter" ())
   | "kv" ->
     let cfg =
       Aurora_apps.Kvstore.default_config ~mode:Aurora_apps.Kvstore.Aurora
         ~nkeys:65536 ()
     in
     ignore (Aurora_apps.Kvstore.spawn k ~container:entry.app_cid cfg)
   | "func" ->
     ignore
       (Aurora_apps.Serverless.spawn k ~container:entry.app_cid
          (Aurora_apps.Serverless.default_config ()))
   | kind -> failwith (Printf.sprintf "unknown app kind %S" kind));
  ()

let register_group (u : universe) (entry : app_entry) =
  let g = Machine.persist u.machine (`Container entry.app_cid) in
  (* Secondary backends are re-attached per the registry ("disk" is
     the primary and always present). *)
  if List.mem "memory" entry.app_backends then
    Machine.attach u.machine g (Machine.memory_backend u.machine);
  u.apps <- u.apps @ [ (entry, g) ];
  g

let load path =
  if not (Sys.file_exists path) then
    failwith (Printf.sprintf "no universe at %s (run `sls init` first)" path);
  let ic = open_in_bin path in
  let (uf : universe_file) = (Marshal.from_channel ic : universe_file) in
  close_in ic;
  let machine =
    match Machine.boot ~nvme:uf.uf_nvme () with
    | Ok m -> m
    | Error e -> raise (Store.Fail e)
  in
  Machine.enable_sls_calls machine;
  let u = { machine; apps = [] } in
  (* Recreate the groups in order (stable pgids), then resurrect each
     application from its latest checkpoint. *)
  List.iter
    (fun entry ->
      let g = register_group u entry in
      match Store.latest machine.Machine.disk_store with
      | Some latest -> (
        g.Types.last_gen <- Some latest;
        try ignore (Machine.restore_group machine g ())
        with Failure _ | Invalid_argument _ | Restore.Error _ ->
          (* This group never checkpointed into the store. *)
          g.Types.last_gen <- None)
      | None -> ())
    uf.uf_apps;
  u

let fresh () =
  let machine = Machine.create () in
  Machine.enable_sls_calls machine;
  { machine; apps = [] }

(* --- command implementations ------------------------------------------ *)

let say fmt = Printf.printf (fmt ^^ "\n%!")
let jbool b = if b then "true" else "false"

let cmd_init path =
  let u = fresh () in
  save path u;
  say "initialized universe at %s" path;
  0

let cmd_spawn path kind name interval_ms =
  let u = load path in
  let cid = List.length u.apps + 1 in
  let entry =
    { app_name = name; app_kind = kind; app_cid = cid; app_backends = [ "disk" ] }
  in
  spawn_app u.machine entry;
  let g = register_group u entry in
  g.Types.interval <- Duration.milliseconds interval_ms;
  (* Let it initialize and take its first checkpoints. *)
  Machine.run u.machine (Duration.milliseconds (3 * interval_ms));
  say "spawned %s (%s) in container %d; persisted every %d ms" name kind cid
    interval_ms;
  save path u;
  0

let cmd_run path ms =
  let u = load path in
  Machine.run u.machine (Duration.milliseconds ms);
  say "advanced %d ms (now t=%s)" ms
    (Format.asprintf "%a" Duration.pp (Machine.now u.machine));
  save path u;
  0

let cmd_ps path =
  let u = load path in
  say "%6s %-16s %10s %-8s" "PID" "NAME" "CONTAINER" "STATE";
  List.iter
    (fun (pid, name, cid, state) -> say "%6d %-16s %10d %-8s" pid name cid state)
    (Machine.ps u.machine);
  say "";
  say "%6s %-16s %10s %-10s" "PGID" "APP" "INTERVAL" "LAST-GEN";
  List.iter
    (fun (entry, g) ->
      say "%6d %-16s %8.0fms %-10s" g.Types.pgid entry.app_name
        (Duration.to_ms g.Types.interval)
        (match g.Types.last_gen with Some n -> string_of_int n | None -> "-"))
    u.apps;
  0

let cmd_checkpoint path name =
  let u = load path in
  List.iter
    (fun (entry, g) ->
      let b = Machine.checkpoint_now u.machine g ?name () in
      say "%s: generation %d (stop %.1f us, %d pages)" entry.app_name b.Types.gen
        (Duration.to_us b.Types.stop_time)
        b.Types.pages_captured)
    u.apps;
  save path u;
  0

let cmd_gens path =
  let u = load path in
  let store = u.machine.Machine.disk_store in
  say "generations: %s"
    (String.concat ", " (List.map string_of_int (Store.generations store)));
  List.iter (fun (name, g) -> say "  %-20s -> generation %d" name g) (Store.named store);
  0

let cmd_restore path gen =
  let u = load path in
  List.iter
    (fun (entry, g) ->
      let pids, breakdown = Machine.restore_group u.machine g ?gen () in
      say "%s: restored pids [%s] in %.1f us" entry.app_name
        (String.concat ";" (List.map string_of_int pids))
        (Duration.to_us breakdown.Types.total_latency))
    u.apps;
  save path u;
  0

let cmd_send path out pgid =
  let u = load path in
  let entry, g =
    match List.filter (fun (_, g) -> pgid = None || pgid = Some g.Types.pgid) u.apps with
    | (e, g) :: _ -> (e, g)
    | [] -> failwith "no such persistence group"
  in
  let gen =
    match g.Types.last_gen with
    | Some gen -> gen
    | None -> failwith "group has no checkpoint yet"
  in
  let image =
    Sendrecv.export u.machine.Machine.disk_store ~gen ~pgid:g.Types.pgid ()
  in
  let oc = open_out_bin out in
  output_string oc image;
  close_out oc;
  say "wrote %s: %d KiB image of %s (generation %d)" out
    (String.length image / 1024)
    entry.app_name gen;
  0

let cmd_recv path in_file =
  let u = load path in
  let ic = open_in_bin in_file in
  let image = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let gen, durable = Sendrecv.import u.machine.Machine.disk_store image in
  Store.wait_durable u.machine.Machine.disk_store durable;
  say "imported %s as generation %d (use `sls restore --gen %d`)" in_file gen gen;
  save path u;
  0

let find_app u pgid =
  match List.filter (fun (_, g) -> pgid = None || pgid = Some g.Types.pgid) u.apps with
  | (e, g) :: _ -> (e, g)
  | [] -> failwith "no such persistence group"

let cmd_attach path pgid backend =
  let u = load path in
  let entry, g = find_app u pgid in
  (match backend with
   | "memory" ->
     if not (List.mem "memory" entry.app_backends) then begin
       entry.app_backends <- entry.app_backends @ [ "memory" ];
       Machine.attach u.machine g (Machine.memory_backend u.machine)
     end
   | "disk" -> () (* the primary; always attached *)
   | other -> failwith (Printf.sprintf "unknown backend %S (disk|memory)" other));
  say "%s: backends now [%s]" entry.app_name (String.concat "; " entry.app_backends);
  save path u;
  0

let cmd_detach path pgid backend =
  let u = load path in
  let entry, g = find_app u pgid in
  (match backend with
   | "memory" ->
     entry.app_backends <- List.filter (fun b -> b <> "memory") entry.app_backends;
     g.Types.backends <-
       List.filter
         (function Types.Local { kind = `Memory; _ } -> false | _ -> true)
         g.Types.backends
   | "disk" -> failwith "cannot detach the primary disk backend"
   | other -> failwith (Printf.sprintf "unknown backend %S" other));
  say "%s: backends now [%s]" entry.app_name (String.concat "; " entry.app_backends);
  save path u;
  0

let cmd_fsck path scrub =
  let u = load path in
  let r = Store.fsck ~scrub u.machine.Machine.disk_store in
  if scrub then say "scrubbed %d blocks" r.Store.scanned_blocks;
  List.iter
    (fun (block, origin) ->
      say "HEALED: block %d (from %s)" block
        (match origin with Store.Mirror -> "mirror" | Store.Dedup_copy -> "dedup copy"))
    r.Store.healed;
  List.iter (fun (g, reason) -> say "LOST: generation %d (%s)" g reason) r.Store.lost;
  List.iter (fun p -> say "PROBLEM: %s" p) r.Store.problems;
  if Store.fsck_ok r then begin
    let st = Store.stats u.machine.Machine.disk_store in
    say "store healthy: %d live blocks, %d generations, %d dedup entries"
      st.Store.live_blocks st.Store.committed_generations st.Store.dedup_entries;
    0
  end
  else
    failwith
      (Printf.sprintf "%d integrity violations, %d generations lost"
         (List.length r.Store.problems) (List.length r.Store.lost))

let cmd_stats path json =
  let u = load path in
  (* No explicit sync needed: Machine registers sync_metrics as a
     snapshot hook, so the export below always sees fresh gauges. *)
  let m = Machine.metrics u.machine in
  if json then print_string (Metrics.to_json m ^ "\n")
  else begin
    say "%-44s %s" "METRIC" "VALUE";
    List.iter
      (fun (name, v) ->
        match v with
        | Metrics.Counter n -> say "%-44s %d" name n
        | Metrics.Gauge g ->
          if Float.is_integer g && Float.abs g < 1e15 then
            say "%-44s %.0f" name g
          else say "%-44s %.2f" name g
        | Metrics.Histogram { count; sum; _ } ->
          if count = 0 then say "%-44s (no samples)" name
          else
            say "%-44s count=%d mean=%.1fus total=%.0fus" name count
              (sum /. float_of_int count)
              sum)
      (Metrics.snapshot m)
  end;
  0

exception Trace_error of string
(* An operational trace/timeline failure: nothing to export, or an
   export that would silently lose events. Maps to exit 2 like the
   other typed failures — a valid-but-empty trace file is worse than a
   loud error for anything scripted on top of us. *)

let cmd_trace path out =
  let u = load path in
  (* Trace exactly one checkpoint+restore cycle: drop the spans the
     resurrection on load produced, run the cycle, export. The
     universe file is left untouched (a measurement, not a mutation). *)
  let spans = Machine.spans u.machine in
  Span.clear spans;
  List.iter
    (fun (_, g) ->
      if Types.member_pids u.machine.Machine.kernel g <> [] then begin
        let b = Machine.checkpoint_now u.machine g () in
        Store.wait_durable u.machine.Machine.disk_store b.Types.durable_at
      end)
    u.apps;
  List.iter
    (fun (_, g) ->
      if g.Types.last_gen <> None then
        ignore (Machine.restore_group u.machine g ()))
    u.apps;
  if Span.spans spans = [] then
    raise
      (Trace_error
         "span buffer is empty: no running persisted applications produced \
          a checkpoint+restore cycle");
  let oc = open_out out in
  output_string oc (Span.to_chrome_json spans);
  close_out oc;
  say "wrote %s: %d spans from a checkpoint+restore cycle \
       (load in Perfetto or chrome://tracing)"
    out
    (List.length (Span.spans spans));
  0

(* --- forensics commands ------------------------------------------------ *)

let json_attrs attrs =
  String.concat ", "
    (List.map (fun (k, v) -> Printf.sprintf "%S: %S" k v) attrs)

let json_event (e : Recorder.event) =
  Printf.sprintf
    "{\"seq\": %d, \"at_us\": %.1f, \"kind\": %S, \"gen\": %s, \
     \"detail\": %S, \"attrs\": {%s}}"
    e.Recorder.ev_seq
    (Duration.to_us e.Recorder.ev_at)
    e.Recorder.ev_kind
    (if e.Recorder.ev_gen < 0 then "null" else string_of_int e.Recorder.ev_gen)
    e.Recorder.ev_detail
    (json_attrs e.Recorder.ev_attrs)

let json_mark (m : Recorder.capture_mark) =
  Printf.sprintf "{\"gen\": %d, \"pgid\": %d, \"at_us\": %.1f}"
    m.Recorder.cm_gen m.Recorder.cm_pgid
    (Duration.to_us m.Recorder.cm_at)

(* `sls postmortem`: what the previous incarnation left in flight. The
   report was computed when this load booted the machine — diffing the
   recovered flight-recorder ring and the store's black box against the
   committed prefix — so the command only renders it. *)
let cmd_postmortem path json =
  let u = load path in
  match Machine.postmortem u.machine with
  | None ->
    if json then say "{\"postmortem\": null}"
    else
      say "no post-mortem: fresh store, or no recoverable flight recorder";
    0
  | Some pm ->
    let rec_ = Machine.recorder u.machine in
    (* Internal consistency ("sum checks"): a pending epoch must have
       stamped a crash reason, every pending epoch must lie beyond the
       recovered generation, and unacked generations must be distinct
       and ascending. CI gates on these. *)
    let tip = match pm.Machine.pm_recovered_gen with Some g -> g | None -> 0 in
    let checks_ok =
      (pm.Machine.pm_pending_epochs = [] || pm.Machine.pm_crash_reason <> None)
      && List.for_all
           (fun m -> m.Recorder.cm_gen > tip)
           pm.Machine.pm_pending_epochs
      && pm.Machine.pm_unacked_gens
         = List.sort_uniq Int.compare pm.Machine.pm_unacked_gens
    in
    if json then
      say
        "{\"crash_reason\": %s, \"recovered_gen\": %s, \"bbox_at_us\": %s, \
         \"pending_epochs\": [%s], \"unacked_gens\": [%s], \
         \"open_spans\": [%s], \"last_alerts\": [%s], \"ring\": \
         {\"events\": %d, \"occupancy\": %d, \"dropped\": %d}, \
         \"checks_ok\": %s}"
        (match pm.Machine.pm_crash_reason with
         | Some r -> Printf.sprintf "%S" r
         | None -> "null")
        (match pm.Machine.pm_recovered_gen with
         | Some g -> string_of_int g
         | None -> "null")
        (match pm.Machine.pm_bbox_at with
         | Some d -> Printf.sprintf "%.1f" (Duration.to_us d)
         | None -> "null")
        (String.concat ", " (List.map json_mark pm.Machine.pm_pending_epochs))
        (String.concat ", "
           (List.map string_of_int pm.Machine.pm_unacked_gens))
        (String.concat ", "
           (List.map (Printf.sprintf "%S") pm.Machine.pm_open_spans))
        (String.concat ", " (List.map json_event pm.Machine.pm_last_alerts))
        (List.length pm.Machine.pm_events)
        (Recorder.occupancy rec_) (Recorder.dropped rec_)
        (jbool checks_ok)
    else begin
      say "post-mortem of the previous incarnation";
      say "  crash reason:   %s"
        (match pm.Machine.pm_crash_reason with
         | Some r -> r
         | None -> "none (clean shutdown)");
      say "  recovered ring: %s (%d events, %d overwritten before capture)"
        (match pm.Machine.pm_recovered_gen with
         | Some g -> Printf.sprintf "generation %d" g
         | None -> "none")
        (List.length pm.Machine.pm_events)
        (Recorder.dropped rec_);
      (match pm.Machine.pm_bbox_at with
       | Some d -> say "  black box:      last written at t=%.1f us" (Duration.to_us d)
       | None -> say "  black box:      none");
      (match pm.Machine.pm_pending_epochs with
       | [] -> say "  pending epochs: none"
       | ms ->
         say "  pending epochs: %s (captured, never durable)"
           (String.concat ", "
              (List.map
                 (fun m ->
                   Printf.sprintf "gen %d (pgroup %d, t=%.1f us)"
                     m.Recorder.cm_gen m.Recorder.cm_pgid
                     (Duration.to_us m.Recorder.cm_at))
                 ms)));
      (match pm.Machine.pm_unacked_gens with
       | [] -> say "  unacked gens:   none"
       | gs ->
         say "  unacked gens:   %s (standby never acknowledged)"
           (String.concat ", " (List.map string_of_int gs)));
      (match pm.Machine.pm_open_spans with
       | [] -> ()
       | ss -> say "  open spans:     %s" (String.concat ", " ss));
      List.iter
        (fun (e : Recorder.event) -> say "  alert:          %s" e.Recorder.ev_detail)
        pm.Machine.pm_last_alerts
    end;
    if checks_ok then 0
    else failwith "postmortem consistency checks failed"

(* `sls timeline DST`: merge the primary's flight recorder and the
   standby's durable replication state into one Chrome trace — per-node
   process tracks, the same correlation id on both sides of every
   shipped generation, and the RPO a failover right now would cost
   annotated on the edge. *)
let cmd_timeline path dst out =
  let pu = load path in
  let du = load dst in
  let pevents = Recorder.events (Machine.recorder pu.machine) in
  if pevents = [] then
    raise
      (Trace_error
         "primary flight recorder is empty: nothing checkpointed yet, or \
          the recorder ring was unreadable at boot");
  let sstore = du.machine.Machine.disk_store in
  let mapped =
    List.filter_map
      (fun (n, sg) ->
        match Replica.parse_repl_gen_name n with
        | Some p -> Some (p, sg, Replica.parse_repl_corr n)
        | None -> None)
      (Store.named sstore)
  in
  if mapped = [] then
    raise (Trace_error "standby holds no replicated generations");
  let mapped = List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) mapped in
  (* A standby-side import becomes durable the instant the primary saw
     its ACK (the session ACKs durability, not arrival), so the
     correlation id pairs each import with the primary's repl.ack
     event — or repl.ship when the ack never made it back. *)
  let stamp (pgen, _, corr) =
    let matches kind (e : Recorder.event) =
      e.Recorder.ev_kind = kind
      &&
      match corr with
      | Some c -> List.assoc_opt "corr" e.Recorder.ev_attrs = Some c
      | None -> e.Recorder.ev_gen = pgen
    in
    let newest kind = List.find_opt (matches kind) (List.rev pevents) in
    match newest "repl.ack" with
    | Some e -> Some (Duration.to_us e.Recorder.ev_at)
    | None -> (
      match newest "repl.ship" with
      | Some e -> Some (Duration.to_us e.Recorder.ev_at)
      | None -> None)
  in
  let stamped, unmatched =
    List.partition (fun m -> stamp m <> None) mapped
  in
  (* The ring is bounded: ships older than its horizon have no event to
     pair with. Those imports still appear (at the black-box floor) —
     dropping them silently would make the merged timeline lie. *)
  let floor_us =
    match pevents with e :: _ -> Duration.to_us e.Recorder.ev_at | [] -> 0.
  in
  let acked = List.fold_left (fun a (p, _, _) -> max a p) 0 mapped in
  let pgens = Store.generations pu.machine.Machine.disk_store in
  let rpo = List.length (List.filter (fun g -> g > acked) pgens) in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n " in
  let meta ~pid ~name what =
    sep ();
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\": %S, \"ph\": \"M\", \"pid\": %d, \"args\": {\"name\": %S}}"
         what pid name)
  in
  let thread ~pid ~tid name =
    sep ();
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, \
          \"args\": {\"name\": %S}}"
         pid tid name)
  in
  meta ~pid:1 ~name:"primary" "process_name";
  meta ~pid:2 ~name:"standby" "process_name";
  let tracks = [ ("ckpt", 1); ("repl", 2); ("slo", 3); ("metrics", 4) ] in
  List.iter (fun (name, tid) -> thread ~pid:1 ~tid name) tracks;
  thread ~pid:1 ~tid:5 "events";
  thread ~pid:2 ~tid:1 "repl";
  let tid_of kind =
    match String.index_opt kind '.' with
    | None -> 5
    | Some i -> (
      match List.assoc_opt (String.sub kind 0 i) tracks with
      | Some tid -> tid
      | None -> 5)
  in
  let emit ~pid ~tid ~ts ~name args =
    sep ();
    Buffer.add_string b
      (Printf.sprintf
         "{\"name\": %S, \"cat\": \"aurora\", \"ph\": \"X\", \"ts\": %.3f, \
          \"dur\": 1, \"pid\": %d, \"tid\": %d, \"args\": {%s}}"
         name ts pid tid args)
  in
  List.iter
    (fun (e : Recorder.event) ->
      let args =
        json_attrs
          ((if e.Recorder.ev_gen >= 0 then
              [ ("gen", string_of_int e.Recorder.ev_gen) ]
            else [])
          @ [ ("detail", e.Recorder.ev_detail) ]
          @ e.Recorder.ev_attrs)
      in
      emit ~pid:1 ~tid:(tid_of e.Recorder.ev_kind)
        ~ts:(Duration.to_us e.Recorder.ev_at)
        ~name:e.Recorder.ev_kind args)
    pevents;
  List.iter
    (fun ((pgen, sgen, corr) as m) ->
      let ts = match stamp m with Some ts -> ts | None -> floor_us in
      let args =
        json_attrs
          ([ ("primary_gen", string_of_int pgen);
             ("standby_gen", string_of_int sgen) ]
          @ (match corr with Some c -> [ ("corr", c) ] | None -> []))
      in
      emit ~pid:2 ~tid:1 ~ts ~name:"repl.import" args)
    mapped;
  (* The failover edge: what promoting this standby right now costs. *)
  sep ();
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\": %S, \"ph\": \"i\", \"s\": \"g\", \"ts\": %.3f, \"pid\": 2, \
        \"tid\": 1, \"args\": {\"rpo_generations\": \"%d\", \
        \"acked_primary_gen\": \"%d\"}}"
       (Printf.sprintf "failover edge: RPO %d generation%s" rpo
          (if rpo = 1 then "" else "s"))
       (List.fold_left
          (fun a m -> match stamp m with Some ts -> Float.max a ts | None -> a)
          floor_us mapped)
       rpo acked);
  Buffer.add_string b "]}\n";
  let oc = open_out out in
  Buffer.output_buffer oc b;
  close_out oc;
  say "wrote %s: %d primary events + %d standby imports (%d beyond the ring \
       horizon), RPO %d"
    out (List.length pevents) (List.length mapped)
    (List.length unmatched) rpo;
  ignore stamped;
  0

(* --- provenance commands ---------------------------------------------- *)

let json_obj_attr (a : Types.obj_attribution) =
  Printf.sprintf
    "{\"oid\": %d, \"store_oid\": %d, \"owner_pid\": %s, \"pages\": %d, \
     \"bytes\": %d, \"metadata_bytes\": %d, \"cow_breaks\": %d, \
     \"chain_depth\": %d}"
    a.Types.a_oid a.Types.a_store_oid
    (match a.Types.a_owner_pid with Some p -> string_of_int p | None -> "null")
    a.Types.a_pages a.Types.a_bytes a.Types.a_metadata_bytes a.Types.a_cow_breaks
    a.Types.a_chain_depth

let json_proc_attr (p : Types.proc_attribution) =
  Printf.sprintf
    "{\"pid\": %d, \"name\": %S, \"pages\": %d, \"bytes\": %d, \
     \"metadata_bytes\": %d, \"cow_breaks\": %d, \"objects\": %d}"
    p.Types.p_pid p.Types.p_name p.Types.p_pages p.Types.p_bytes
    p.Types.p_metadata_bytes p.Types.p_cow_breaks p.Types.p_objects

(* `sls top`: live who-pays-for-checkpoints. A measurement, not a
   mutation: each group is checkpointed to refresh its attribution, the
   rows are printed, and the universe file is left untouched (same
   convention as `sls trace`). *)
let cmd_top path json k =
  let u = load path in
  let rows =
    List.filter_map
      (fun (entry, g) ->
        if Types.member_pids u.machine.Machine.kernel g = [] then None
        else begin
          let b = Machine.checkpoint_now u.machine g () in
          match (b.Types.status, Machine.last_attribution g) with
          | `Ok, Some a -> Some (entry, g, b, a)
          | _ -> None
        end)
      u.apps
  in
  if rows = [] then failwith "no running persisted applications to attribute";
  let exact (a : Types.ckpt_attribution) =
    let sp = List.fold_left (fun acc p -> acc + p.Types.p_pages) 0 a.Types.at_procs in
    let sb = List.fold_left (fun acc p -> acc + p.Types.p_bytes) 0 a.Types.at_procs in
    let so =
      List.fold_left (fun acc o -> acc + o.Types.a_pages) 0 a.Types.at_objects
    in
    sp = a.Types.at_pages_total && sb = a.Types.at_bytes_total
    && so = a.Types.at_pages_total
  in
  if json then begin
    let jrow (entry, g, (b : Types.ckpt_breakdown), a) =
      Printf.sprintf
        "{\"pgid\": %d, \"app\": %S, \"gen\": %d, \"stop_us\": %.1f, \
         \"pages\": %d, \"bytes\": %d, \"metadata_bytes\": %d, \
         \"sums_exact\": %s, \"top_procs\": [%s], \"top_objects\": [%s]}"
        g.Types.pgid entry.app_name b.Types.gen
        (Duration.to_us b.Types.stop_time)
        a.Types.at_pages_total a.Types.at_bytes_total
        a.Types.at_metadata_bytes_total
        (jbool (exact a))
        (String.concat ", " (List.map json_proc_attr (Types.top_procs ~k a)))
        (String.concat ", " (List.map json_obj_attr (Types.top_objects ~k a)))
    in
    say "{\"groups\": [%s]}" (String.concat ", " (List.map jrow rows))
  end
  else
    List.iter
      (fun (entry, g, (b : Types.ckpt_breakdown), a) ->
        say "pgroup %d (%s): generation %d, stop %.1f us, %d pages / %d bytes%s"
          g.Types.pgid entry.app_name b.Types.gen
          (Duration.to_us b.Types.stop_time)
          a.Types.at_pages_total a.Types.at_bytes_total
          (if exact a then "" else "  [ATTRIBUTION MISMATCH]");
        say "  %6s %-16s %8s %10s %6s %8s" "PID" "NAME" "PAGES" "BYTES" "COW" "OBJECTS";
        List.iter
          (fun (p : Types.proc_attribution) ->
            say "  %6d %-16s %8d %10d %6d %8d" p.Types.p_pid p.Types.p_name
              p.Types.p_pages p.Types.p_bytes p.Types.p_cow_breaks p.Types.p_objects)
          (Types.top_procs ~k a);
        say "  %6s %-16s %8s %10s %6s %8s" "OID" "OWNER" "PAGES" "BYTES" "COW" "CHAIN";
        List.iter
          (fun (o : Types.obj_attribution) ->
            say "  %6d %-16s %8d %10d %6d %8d" o.Types.a_oid
              (match o.Types.a_owner_pid with
               | Some p -> "pid " ^ string_of_int p
               | None -> "-")
              o.Types.a_pages o.Types.a_bytes o.Types.a_cow_breaks
              o.Types.a_chain_depth)
          (Types.top_objects ~k a))
      rows;
  if List.for_all (fun (_, _, _, a) -> exact a) rows then 0
  else failwith "attribution rows do not sum to the checkpoint breakdown"

let json_provenance (p : Store.provenance) =
  Printf.sprintf
    "{\"records\": %d, \"pages\": %d, \"blobs\": %d, \"logical_bytes\": %d, \
     \"data_blocks\": %d, \"meta_blocks\": %d, \"mirror_blocks\": %d, \
     \"commit_blocks\": %d, \"dedup_hits\": %d, \"dedup_saved_bytes\": %d, \
     \"bytes_written\": %d}"
    p.Store.pv_records p.Store.pv_pages p.Store.pv_blobs p.Store.pv_logical_bytes
    p.Store.pv_data_blocks p.Store.pv_meta_blocks p.Store.pv_mirror_blocks
    p.Store.pv_commit_blocks p.Store.pv_dedup_hits p.Store.pv_dedup_saved_bytes
    (Store.bytes_written p)

(* `sls explain <gen>`: the storage provenance of one generation, from
   both sides — the write-time accumulation persisted in the generation
   table, and an fsck-style walk of what is reachable right now — plus
   the store-wide reachable-vs-live cross-check. *)
let cmd_explain path gen json =
  let u = load path in
  let store = u.machine.Machine.disk_store in
  let gen =
    match gen with
    | Some g -> g
    | None -> (
      match Store.latest store with
      | Some g -> g
      | None -> failwith "store has no committed generations")
  in
  let r =
    match Store.gen_report store gen with
    | Some r -> r
    | None -> failwith (Printf.sprintf "unknown generation %d" gen)
  in
  let prov = Store.gen_provenance store gen in
  let x = Store.crosscheck store in
  if json then
    say
      "{\"gen\": %d, \"provenance\": %s, \"report\": {\"meta_blocks\": %d, \
       \"data_blocks\": %d, \"mirror_blocks\": %d, \"records\": %d, \
       \"pages\": %d, \"blobs\": %d, \"record_bytes\": %d, \
       \"logical_bytes\": %d, \"exclusive_blocks\": %d, \"shared_blocks\": %d}, \
       \"crosscheck\": {\"reachable_blocks\": %d, \"live_blocks\": %d, \
       \"within_1pct\": %s}, \"capacity_blocks\": %s}"
      gen
      (match prov with Some p -> json_provenance p | None -> "null")
      r.Store.r_meta_blocks r.Store.r_data_blocks r.Store.r_mirror_blocks
      r.Store.r_record_entries r.Store.r_page_entries r.Store.r_blob_entries
      r.Store.r_record_bytes r.Store.r_logical_bytes r.Store.r_exclusive_blocks
      r.Store.r_shared_blocks x.Store.x_reachable_blocks x.Store.x_live_blocks
      (jbool x.Store.x_within_1pct)
      (match Store.capacity_blocks store with
       | Some c -> string_of_int c
       | None -> "null")
  else begin
    say "generation %d" gen;
    (match prov with
     | Some p ->
       say "  written:   %d records, %d pages, %d blobs (%d logical bytes)"
         p.Store.pv_records p.Store.pv_pages p.Store.pv_blobs
         p.Store.pv_logical_bytes;
       say "  blocks:    %d data + %d meta + %d mirror + %d commit = %d bytes on device"
         p.Store.pv_data_blocks p.Store.pv_meta_blocks p.Store.pv_mirror_blocks
         p.Store.pv_commit_blocks (Store.bytes_written p);
       say "  dedup:     %d avoided writes, %d bytes saved" p.Store.pv_dedup_hits
         p.Store.pv_dedup_saved_bytes
     | None -> say "  written:   (no provenance: imported or pre-provenance generation)");
    say "  reachable: %d meta + %d data blocks (%d mirrored); %d exclusive, %d shared"
      r.Store.r_meta_blocks r.Store.r_data_blocks r.Store.r_mirror_blocks
      r.Store.r_exclusive_blocks r.Store.r_shared_blocks;
    say "  contents:  %d records (%d bytes), %d pages, %d blobs (%d logical bytes)"
      r.Store.r_record_entries r.Store.r_record_bytes r.Store.r_page_entries
      r.Store.r_blob_entries r.Store.r_logical_bytes;
    say "  crosscheck: %d reachable vs %d live blocks (%s)"
      x.Store.x_reachable_blocks x.Store.x_live_blocks
      (if x.Store.x_within_1pct then "within 1%" else "MISMATCH");
    (match Store.capacity_blocks store with
     | Some c ->
       say "  capacity:  %d / %d blocks live (%.1f%%)" x.Store.x_live_blocks c
         (100.0 *. float_of_int x.Store.x_live_blocks /. float_of_int c)
     | None -> ())
  end;
  if x.Store.x_within_1pct then 0
  else failwith "crosscheck failed: reachable and live block counts diverge"

(* `sls diff <genA> <genB>`: what changed between two checkpoints, at
   object/page granularity, plus the dedup deltas. *)
let cmd_diff path gen_a gen_b json =
  let u = load path in
  let store = u.machine.Machine.disk_store in
  let d = Store.diff store ~from_gen:gen_a ~to_gen:gen_b in
  if json then begin
    let jdelta (c : Store.oid_delta) =
      Printf.sprintf
        "{\"oid\": %d, \"pages_added\": %d, \"pages_removed\": %d, \
         \"pages_changed\": %d}"
        c.Store.d_oid c.Store.d_pages_added c.Store.d_pages_removed
        c.Store.d_pages_changed
    in
    say
      "{\"from\": %d, \"to\": %d, \"oids_added\": [%s], \"oids_removed\": [%s], \
       \"changed\": [%s], \"pages_added\": %d, \"pages_removed\": %d, \
       \"pages_changed\": %d, \"bytes_delta\": %d, \"dedup_hits_delta\": %d, \
       \"dedup_saved_delta\": %d}"
      d.Store.df_from d.Store.df_to
      (String.concat ", " (List.map string_of_int d.Store.df_oids_added))
      (String.concat ", " (List.map string_of_int d.Store.df_oids_removed))
      (String.concat ", " (List.map jdelta d.Store.df_changed))
      d.Store.df_pages_added d.Store.df_pages_removed d.Store.df_pages_changed
      d.Store.df_bytes_delta d.Store.df_dedup_hits_delta
      d.Store.df_dedup_saved_delta
  end
  else begin
    say "generation %d -> %d" d.Store.df_from d.Store.df_to;
    say "  objects:   %d added, %d removed, %d changed"
      (List.length d.Store.df_oids_added)
      (List.length d.Store.df_oids_removed)
      (List.length d.Store.df_changed);
    List.iter
      (fun (c : Store.oid_delta) ->
        say "    oid %d: +%d / -%d pages, %d changed" c.Store.d_oid
          c.Store.d_pages_added c.Store.d_pages_removed c.Store.d_pages_changed)
      d.Store.df_changed;
    say "  pages:     +%d / -%d, %d changed (%+d bytes)" d.Store.df_pages_added
      d.Store.df_pages_removed d.Store.df_pages_changed d.Store.df_bytes_delta;
    say "  dedup:     %+d avoided writes, %+d bytes saved"
      d.Store.df_dedup_hits_delta d.Store.df_dedup_saved_delta
  end;
  0

(* --- replication commands --------------------------------------------- *)

let write_universe_file path ~nvme ~apps =
  Devarray.set_observability nvme ();
  let oc = open_out_bin path in
  Marshal.to_channel oc { uf_nvme = nvme; uf_apps = apps } [];
  close_out oc

(* `sls replicate DST`: attach a hot standby behind a (faulty) link,
   drive every committed generation through the replication session —
   retransmitting, resyncing — and write the standby device out as its
   own universe file. A session that cannot converge raises
   {!Replica.Session_failed} (exit 2). *)
let cmd_replicate path dst pgid loss seed json =
  if loss < 0. || loss >= 1. then failwith "--loss must be in [0, 1)";
  let u = load path in
  let entry, g = find_app u pgid in
  let faults =
    if loss > 0. then
      Some (Netlink.fault_plan ~seed:(Int64.of_int seed) ~drop:loss ())
    else None
  in
  let repl = Machine.attach_standby u.machine ?faults g in
  let pgens =
    List.sort Int.compare (Store.generations u.machine.Machine.disk_store)
  in
  if pgens = [] then failwith "no committed generations to replicate";
  let reports =
    List.map
      (fun gen ->
        let r = Replica.ship_exn repl ~gen ~pgid:g.Types.pgid in
        Machine.note_ship_report u.machine r;
        r)
      pgens
  in
  let st = Replica.stats repl in
  let lag = Replica.lag repl in
  let state = match Replica.state repl with `Idle -> "idle" | `Degraded -> "degraded" in
  let acked_rtts =
    List.filter_map
      (fun (r : Replica.ship_report) ->
        if r.Replica.sh_outcome = `Acked then Some (Duration.to_us r.Replica.sh_rtt)
        else None)
      reports
  in
  let rtt_mean =
    match acked_rtts with
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  if json then
    say
      "{\"app\": %S, \"generations\": %d, \"acked\": %d, \"state\": %S, \
       \"lag\": %d, \"full_images\": %d, \"delta_images\": %d, \
       \"retransmits\": %d, \"resyncs\": %d, \"corrupt_rejects\": %d, \
       \"duplicate_frames\": %d, \"wire_bytes\": %d, \"ack_rtt_us_mean\": %.1f}"
      entry.app_name (List.length pgens) st.Replica.acked state lag
      st.Replica.full_images st.Replica.delta_images st.Replica.retransmits
      st.Replica.resyncs st.Replica.corrupt_rejects st.Replica.duplicate_frames
      st.Replica.wire_bytes rtt_mean
  else begin
    List.iter
      (fun (r : Replica.ship_report) ->
        say "generation %d: %s %s in %d attempt%s (%.1f us, %d KiB)"
          r.Replica.sh_gen
          (match r.Replica.sh_mode with
           | `Full -> "full image"
           | `Delta b -> Printf.sprintf "delta vs %d" b)
          (match r.Replica.sh_outcome with
           | `Acked -> "acked"
           | `Skipped -> "skipped"
           | `Gave_up -> "GAVE UP")
          r.Replica.sh_attempts
          (if r.Replica.sh_attempts = 1 then "" else "s")
          (Duration.to_us r.Replica.sh_rtt)
          (r.Replica.sh_bytes / 1024))
      reports;
    say "session %s: %d/%d generations acked, lag %d" state st.Replica.acked
      (List.length pgens) lag;
    say "  wire: %d bytes, %d retransmits, %d resyncs, %d corrupt rejects, mean ack rtt %.1f us"
      st.Replica.wire_bytes st.Replica.retransmits st.Replica.resyncs
      st.Replica.corrupt_rejects rtt_mean
  end;
  write_universe_file dst
    ~nvme:(Store.device (Replica.standby_store repl))
    ~apps:(List.map fst u.apps);
  Machine.detach_standby u.machine;
  save path u;
  if not json then say "wrote standby universe %s" dst;
  0

(* `sls failover DST`: promote a standby universe — boot a machine on
   its device (recovering the committed, integrity-verified prefix it
   acknowledged), resurrect the applications, and report the RPO
   against the primary universe ([-u]). *)
let cmd_failover primary dst json =
  let pu = load primary in
  let du = load dst in
  let sstore = du.machine.Machine.disk_store in
  let mapped =
    List.filter_map
      (fun (n, sg) -> Option.map (fun p -> (p, sg)) (Replica.parse_repl_gen_name n))
      (Store.named sstore)
  in
  if mapped = [] then
    failwith "standby holds no replicated generations; nothing to promote";
  let acked = List.fold_left (fun a (p, _) -> max a p) 0 mapped in
  let pgens = Store.generations pu.machine.Machine.disk_store in
  let rpo = List.length (List.filter (fun gn -> gn > acked) pgens) in
  let promoted_gen = Store.latest sstore in
  let pids = List.map (fun (pid, _, _, _) -> pid) (Machine.ps du.machine) in
  if json then
    say
      "{\"state\": %S, \"replicated_generations\": %d, \"acked_primary_gen\": %d, \
       \"rpo_generations\": %d, \"promoted_gen\": %s, \"restored_pids\": [%s]}"
      (if rpo = 0 then "converged" else "degraded")
      (List.length mapped) acked rpo
      (match promoted_gen with Some gn -> string_of_int gn | None -> "null")
      (String.concat ", " (List.map string_of_int pids))
  else begin
    say "promoted standby %s: %d replicated generations, last acked primary generation %d"
      dst (List.length mapped) acked;
    say "  RPO: %d primary generation%s lost (%s)" rpo
      (if rpo = 1 then "" else "s")
      (if rpo = 0 then "standby was converged" else "standby lagged the primary");
    say "  restored pids [%s] from generation %s"
      (String.concat ";" (List.map string_of_int pids))
      (match promoted_gen with Some gn -> string_of_int gn | None -> "-")
  end;
  save dst du;
  0

let cmd_crash path mid_pipeline =
  let u = load path in
  if mid_pipeline then begin
    (* Capture one epoch per group and pull the plug while its flush is
       still draining: long enough for the black box's single-block
       write to land, short of the epoch's superblock becoming durable —
       the post-mortem then has lost epochs to name. *)
    List.iter
      (fun (_, g) ->
        if Types.member_pids u.machine.Machine.kernel g <> [] then
          ignore (Machine.checkpoint_now u.machine g ()))
      u.apps;
    Machine.run u.machine (Duration.microseconds 20)
  end;
  Machine.crash u.machine;
  (* Save WITHOUT quiescing: exactly what the power failure left. *)
  Devarray.set_observability u.machine.Machine.nvme ();
  let oc = open_out_bin path in
  Marshal.to_channel oc
    { uf_nvme = u.machine.Machine.nvme; uf_apps = List.map fst u.apps }
    [];
  close_out oc;
  say "power failure simulated; only durable device state survives";
  0

(* `sls probe`: subscribe a DSL query on the machine's tracepoint
   registry, drive checkpoint rounds so the instrumented paths fire,
   and render the aggregation. A measurement, not a mutation: the
   universe file is left untouched. *)
let cmd_probe path expr json watch =
  match Probe.parse expr with
  | Error msg ->
    Printf.eprintf "sls: probe: %s\n" msg;
    1
  | Ok spec ->
    let u = load path in
    let probes = u.machine.Machine.kernel.Kernel.probes in
    let id = Probe.subscribe probes spec in
    let rounds = if watch then 5 else 1 in
    let round () =
      Machine.run u.machine (Duration.milliseconds 1);
      List.iter
        (fun (_, g) ->
          if Types.member_pids u.machine.Machine.kernel g <> [] then begin
            let b = Machine.checkpoint_now u.machine g () in
            Store.wait_durable u.machine.Machine.disk_store b.Types.durable_at
          end)
        u.apps;
      Machine.drain_storage u.machine
    in
    let emit r =
      if json then say "%s" (Probe.report_json r)
      else Printf.printf "%s%!" (Probe.render r)
    in
    for i = 1 to rounds do
      round ();
      if watch then begin
        if not json then say "-- after round %d --" i;
        Option.iter emit (Probe.report probes id)
      end
    done;
    if not watch then Option.iter emit (Probe.report probes id);
    0

(* `sls critical-path`: drive one checkpoint round so the span tree
   holds a finalized epoch, then extract the blame breakdown. *)
let cmd_critpath path gen json =
  let u = load path in
  Span.clear (Machine.spans u.machine);
  Machine.run u.machine (Duration.milliseconds 1);
  List.iter
    (fun (_, g) ->
      if Types.member_pids u.machine.Machine.kernel g <> [] then
        ignore (Machine.checkpoint_now u.machine g ()))
    u.apps;
  (* Finalization (and its ckpt.flush span) happens when the epoch
     retires from the pipeline, so drain before analyzing. *)
  Machine.drain_storage u.machine;
  match Machine.critical_path ?gen u.machine with
  | Error msg ->
    Printf.eprintf "sls: critical-path: %s\n" msg;
    1
  | Ok r ->
    if json then say "%s" (Critpath.to_json r)
    else Printf.printf "%s%!" (Critpath.render r);
    0

(* --- cmdliner wiring ---------------------------------------------------- *)

let universe_arg =
  Arg.(value & opt string default_path & info [ "universe"; "u" ] ~docv:"FILE"
         ~doc:"Universe state file.")

let wrap f =
  try f () with
  | Store.Fail e ->
    (* A typed store failure (unrecoverable superblock, unreadable
       generation table, dead device) is distinct from usage errors. *)
    Printf.eprintf "sls: store failure: %s\n" (Store.describe_error e);
    2
  | Restore.Error e ->
    (* Same class: an operational failure of the store's contents
       (missing manifest or record, corrupt image), not a usage error. *)
    Printf.eprintf "sls: restore failure: %s\n" (Restore.describe_error e);
    2
  | Replica.Session_failed msg ->
    (* A replication session that cannot make progress (the link never
       delivers within the retry budget) is operational, not usage. *)
    Printf.eprintf "sls: replication failure: %s\n" msg;
    2
  | Trace_error msg ->
    (* An export that would be empty or silently lossy: operational,
       and distinct from usage errors so scripts can gate on it. *)
    Printf.eprintf "sls: trace failure: %s\n" msg;
    2
  | Failure msg | Invalid_argument msg ->
    Printf.eprintf "sls: %s\n" msg;
    1

let init_cmd =
  Cmd.v (Cmd.info "init" ~doc:"Create a fresh universe.")
    Term.(const (fun path -> wrap (fun () -> cmd_init path)) $ universe_arg)

let spawn_cmd =
  let kind =
    Arg.(value & opt string "counter" & info [ "app" ] ~docv:"KIND"
           ~doc:"Built-in application: counter, kv, or func.")
  in
  let app_name_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME") in
  let interval =
    Arg.(value & opt int 10 & info [ "interval" ] ~docv:"MS"
           ~doc:"Checkpoint interval in milliseconds.")
  in
  Cmd.v
    (Cmd.info "spawn"
       ~doc:"Run a built-in application under transparent persistence (sls persist).")
    Term.(
      const (fun path kind name interval ->
          wrap (fun () -> cmd_spawn path kind name interval))
      $ universe_arg $ kind $ app_name_arg $ interval)

let run_cmd =
  let ms = Arg.(value & opt int 100 & info [ "ms" ] ~docv:"MS" ~doc:"Span to run.") in
  Cmd.v (Cmd.info "run" ~doc:"Advance simulated time (periodic checkpoints fire).")
    Term.(const (fun path ms -> wrap (fun () -> cmd_run path ms)) $ universe_arg $ ms)

let ps_cmd =
  Cmd.v (Cmd.info "ps" ~doc:"List applications in Aurora.")
    Term.(const (fun path -> wrap (fun () -> cmd_ps path)) $ universe_arg)

let checkpoint_cmd =
  let ckpt_name =
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME"
           ~doc:"Name the checkpoint.")
  in
  Cmd.v (Cmd.info "checkpoint" ~doc:"Checkpoint every persisted application now.")
    Term.(
      const (fun path name -> wrap (fun () -> cmd_checkpoint path name))
      $ universe_arg $ ckpt_name)

let gens_cmd =
  Cmd.v (Cmd.info "gens" ~doc:"List checkpoint generations and named snapshots.")
    Term.(const (fun path -> wrap (fun () -> cmd_gens path)) $ universe_arg)

let restore_cmd =
  let gen =
    Arg.(value & opt (some int) None & info [ "gen" ] ~docv:"GEN"
           ~doc:"Generation to restore (default: latest).")
  in
  Cmd.v (Cmd.info "restore" ~doc:"Restore applications from a checkpoint.")
    Term.(
      const (fun path gen -> wrap (fun () -> cmd_restore path gen)) $ universe_arg $ gen)

let send_cmd =
  let out = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  let pgid =
    Arg.(value & opt (some int) None & info [ "pgroup" ] ~docv:"PGID"
           ~doc:"Persistence group to export (default: first).")
  in
  Cmd.v (Cmd.info "send" ~doc:"Export an application image to a file.")
    Term.(
      const (fun path out pgid -> wrap (fun () -> cmd_send path out pgid))
      $ universe_arg $ out $ pgid)

let recv_cmd =
  let in_file = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "recv" ~doc:"Import an application image from a file.")
    Term.(
      const (fun path in_file -> wrap (fun () -> cmd_recv path in_file))
      $ universe_arg $ in_file)

let backend_arg =
  Arg.(value & opt string "memory" & info [ "backend" ] ~docv:"KIND"
         ~doc:"Backend kind: disk or memory.")

let pgid_arg =
  Arg.(value & opt (some int) None & info [ "pgroup" ] ~docv:"PGID"
         ~doc:"Persistence group (default: first).")

let attach_cmd =
  Cmd.v (Cmd.info "attach" ~doc:"Attach a backend to a persistence group.")
    Term.(
      const (fun path pgid backend -> wrap (fun () -> cmd_attach path pgid backend))
      $ universe_arg $ pgid_arg $ backend_arg)

let detach_cmd =
  Cmd.v (Cmd.info "detach" ~doc:"Detach a backend from a persistence group.")
    Term.(
      const (fun path pgid backend -> wrap (fun () -> cmd_detach path pgid backend))
      $ universe_arg $ pgid_arg $ backend_arg)

let stats_cmd =
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the metrics snapshot as JSON instead of a table.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Dump kernel-wide metrics (device, store, checkpoint, restore).")
    Term.(
      const (fun path json -> wrap (fun () -> cmd_stats path json))
      $ universe_arg $ json)

let trace_cmd =
  let out =
    Arg.(value & opt string "trace.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output file for the Chrome trace_event JSON.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one checkpoint+restore cycle and export its span tree as a \
             Chrome trace (Perfetto-loadable).")
    Term.(
      const (fun path out -> wrap (fun () -> cmd_trace path out))
      $ universe_arg $ out)

let crash_cmd =
  let mid_pipeline =
    Arg.(value & flag & info [ "mid-pipeline" ]
           ~doc:"Capture a checkpoint epoch per group first and crash while \
                 its flush is still in flight, so `sls postmortem` has lost \
                 epochs to report.")
  in
  Cmd.v (Cmd.info "crash" ~doc:"Simulate a power failure.")
    Term.(
      const (fun path mid -> wrap (fun () -> cmd_crash path mid))
      $ universe_arg $ mid_pipeline)

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of a table.")

let top_cmd =
  let k =
    Arg.(value & opt int 5 & info [ "k"; "top" ] ~docv:"N"
           ~doc:"Rows shown per attribution kind.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Checkpoint every group and show who pays: top-k processes and VM \
             objects by captured pages/bytes (with the exact-sum cross-check). \
             The universe file is not modified.")
    Term.(
      const (fun path json k -> wrap (fun () -> cmd_top path json k))
      $ universe_arg $ json_arg $ k)

let explain_cmd =
  let gen =
    Arg.(value & pos 0 (some int) None & info [] ~docv:"GEN"
           ~doc:"Generation to explain (default: latest).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Storage provenance of one generation: write-time accounting from \
             the generation table, an fsck-style reachability walk, and the \
             store-wide reachable-vs-live cross-check.")
    Term.(
      const (fun path gen json -> wrap (fun () -> cmd_explain path gen json))
      $ universe_arg $ gen $ json_arg)

let diff_cmd =
  let gen_a = Arg.(required & pos 0 (some int) None & info [] ~docv:"GENA") in
  let gen_b = Arg.(required & pos 1 (some int) None & info [] ~docv:"GENB") in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Object/page-level delta between two checkpoint generations, with \
             dedup deltas.")
    Term.(
      const (fun path a b json -> wrap (fun () -> cmd_diff path a b json))
      $ universe_arg $ gen_a $ gen_b $ json_arg)

let replicate_cmd =
  let dst =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DST"
           ~doc:"Destination universe file for the standby.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P"
           ~doc:"Per-message drop probability on the replication link.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"Deterministic seed for the link's fault plan.")
  in
  Cmd.v
    (Cmd.info "replicate"
       ~doc:"Ship every checkpoint generation to a hot standby over a \
             (lossy) link — retransmitting and resyncing as needed — and \
             write the standby out as its own universe file.")
    Term.(
      const (fun path dst pgid loss seed json ->
          wrap (fun () -> cmd_replicate path dst pgid loss seed json))
      $ universe_arg $ dst $ pgid_arg $ loss $ seed $ json_arg)

let failover_cmd =
  let dst =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DST"
           ~doc:"Standby universe file to promote.")
  in
  Cmd.v
    (Cmd.info "failover"
       ~doc:"Promote a replicated standby universe: recover its store, \
             resurrect the applications, and report the RPO (checkpoint \
             generations lost) against the primary universe.")
    Term.(
      const (fun path dst json -> wrap (fun () -> cmd_failover path dst json))
      $ universe_arg $ dst $ json_arg)

let postmortem_cmd =
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:"Report what the previous incarnation left in flight: crash \
             reason, checkpoint epochs captured but never durable, \
             generations a standby never acknowledged, spans open at the \
             last capture, and recent SLO breaches — reconstructed from the \
             flight recorder recovered with the last durable generation and \
             the store's black box.")
    Term.(
      const (fun path json -> wrap (fun () -> cmd_postmortem path json))
      $ universe_arg $ json_arg)

let timeline_cmd =
  let dst =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DST"
           ~doc:"Standby universe file to merge.")
  in
  let out =
    Arg.(value & opt string "timeline.json" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output file for the merged Chrome trace_event JSON.")
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Merge the primary's flight recorder and a standby's durable \
             replication state into one Perfetto-loadable trace: per-node \
             tracks, matching correlation ids on every shipped generation, \
             and the RPO a failover would cost annotated on the edge.")
    Term.(
      const (fun path dst out -> wrap (fun () -> cmd_timeline path dst out))
      $ universe_arg $ dst $ out)

let fsck_cmd =
  let scrub =
    Arg.(value & flag & info [ "scrub" ]
           ~doc:"Also read every block, repairing what the mirror or a \
                 dedup copy can heal and quarantining what it cannot.")
  in
  Cmd.v (Cmd.info "fsck" ~doc:"Check object-store integrity.")
    Term.(
      const (fun path scrub -> wrap (fun () -> cmd_fsck path scrub))
      $ universe_arg $ scrub)

let probe_cmd =
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPR"
           ~doc:"Probe query, e.g. 'dev.io where dev = nvme1 && us > 50 agg \
                 quantize(us) by op'. Points: dev.io, store.commit, \
                 ckpt.phase, repl.msg, alloc.defer; aggregations: count, \
                 sum(F), min(F), max(F), avg(F), quantize(F).")
  in
  let watch =
    Arg.(value & flag & info [ "watch"; "w" ]
           ~doc:"Re-render the aggregation after each of five checkpoint \
                 rounds instead of once at the end.")
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:"Subscribe a dynamic-tracepoint query, drive checkpoint rounds \
             against the running applications, and print the DTrace-style \
             online aggregation. The universe file is not modified.")
    Term.(
      const (fun path expr json watch ->
          wrap (fun () -> cmd_probe path expr json watch))
      $ universe_arg $ expr $ json_arg $ watch)

let critpath_cmd =
  let gen =
    Arg.(value & pos 0 (some int) None & info [] ~docv:"GEN"
           ~doc:"Generation to analyze (default: the newest finalized one).")
  in
  Cmd.v
    (Cmd.info "critical-path"
       ~doc:"Run one checkpoint round and extract the epoch's critical path \
             from the span tree: contiguous blame segments from barrier \
             entry to superblock durability (their percentages sum to 100), \
             plus overlapping antagonists (backpressure, recorder tax, \
             replication shipping, out-of-band writes, mirror-write \
             amplification). The universe file is not modified.")
    Term.(
      const (fun path gen json -> wrap (fun () -> cmd_critpath path gen json))
      $ universe_arg $ gen $ json_arg)

let group =
  let doc = "the Aurora single level store (simulated)" in
  Cmd.group (Cmd.info "sls" ~doc)
    [
      init_cmd; spawn_cmd; run_cmd; ps_cmd; checkpoint_cmd; gens_cmd; restore_cmd;
      send_cmd; recv_cmd; replicate_cmd; failover_cmd; attach_cmd; detach_cmd;
      crash_cmd; fsck_cmd; stats_cmd; trace_cmd; top_cmd; explain_cmd; diff_cmd;
      postmortem_cmd; timeline_cmd; probe_cmd; critpath_cmd;
    ]

let main () = Cmd.eval' group
let run ~argv = Cmd.eval' ~argv group
