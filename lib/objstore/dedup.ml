type t = {
  by_hash : (int64, int) Hashtbl.t;
  by_block : (int, int64) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable bytes_saved : int;
}

let create ~alloc =
  let t = { by_hash = Hashtbl.create 4096; by_block = Hashtbl.create 4096;
            hits = 0; misses = 0; bytes_saved = 0 } in
  Alloc.add_on_free alloc (fun block ->
      match Hashtbl.find_opt t.by_block block with
      | Some hash ->
        Hashtbl.remove t.by_block block;
        Hashtbl.remove t.by_hash hash
      | None -> ());
  t

let peek t ~hash = Hashtbl.find_opt t.by_hash hash

let find t ~hash =
  match Hashtbl.find_opt t.by_hash hash with
  | Some block ->
    t.hits <- t.hits + 1;
    Some block
  | None ->
    t.misses <- t.misses + 1;
    None

let add t ~hash ~block =
  (match Hashtbl.find_opt t.by_hash hash with
   | Some existing when existing <> block ->
     invalid_arg "Dedup.add: hash already mapped to a different block"
   | Some _ | None -> ());
  Hashtbl.replace t.by_hash hash block;
  Hashtbl.replace t.by_block block hash

let entries t = Hashtbl.length t.by_hash
let hits t = t.hits
let misses t = t.misses
let bytes_saved t = t.bytes_saved

let note_saved t ~bytes =
  if bytes < 0 then invalid_arg "Dedup.note_saved: negative size";
  t.bytes_saved <- t.bytes_saved + bytes

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.bytes_saved <- 0

let reset t =
  Hashtbl.reset t.by_hash;
  Hashtbl.reset t.by_block
