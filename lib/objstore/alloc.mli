(** Reference-counted block allocation for the object store.

    Blocks are shared aggressively — by COW B+tree snapshots (a tree
    node referenced from many generation roots) and by page
    deduplication (one content block referenced from many images) — so
    the allocator tracks a reference count per block and frees in
    place when it reaches zero. This is what makes the paper's
    "in-place garbage collection without needing to rewrite incremental
    checkpoints" work: releasing a generation decrements counts down
    the shared structure and only uniquely-owned blocks return to the
    free list.

    State is kept in memory and reconstructed at recovery by walking
    the generation roots (see [Store.open_]). *)

type t

exception Out_of_space
(** Raised by {!alloc} / {!alloc_extent} when a capacity is set and
    exhausted. Typed so a full device degrades the checkpoint (the
    store aborts the open generation and keeps serving) instead of
    killing the simulation. *)

val create : first_block:int -> ?capacity_blocks:int -> ?stripes:int -> unit -> t
(** Blocks below [first_block] are reserved (superblocks). [stripes]
    (default 1) is the backing device array's stripe count; extents
    are aligned to it. *)

val alloc : t -> int
(** A free block, refcount 1. Raises {!Out_of_space} when a capacity
    is set and exhausted. *)

val alloc_extent : t -> int -> int array
(** [alloc_extent t n]: [n] fresh contiguous logical blocks, each with
    refcount 1, stripe-aligned when [n] spans a full stripe round.
    Contiguity makes the run one physical extent per device under
    round-robin striping. Raises {!Out_of_space} on capacity
    exhaustion. *)

val stripes : t -> int

val capacity_blocks : t -> int option
(** The capacity cap given at {!create}, if any ([None] = unbounded).
    Lets inspection tools report utilisation without guessing. *)

val incref : t -> int -> unit
val decref : t -> int -> unit
(** Frees at zero (block returns to the free list and the [on_free]
    hook fires). Raises [Invalid_argument] on a dead block. *)

val refcount : t -> int -> int
(** 0 for unallocated blocks. *)

val live_blocks : t -> int
val add_on_free : t -> (int -> unit) -> unit
(** Register a hook invoked when a block is freed; the B+tree evicts
    its node cache and the store drops deduplication entries. Hooks
    run in registration order. *)

val mark_live : t -> int -> unit
(** Recovery: force the block's refcount up by one (from zero if
    unallocated). *)

val set_deferred_frees : t -> bool -> unit
(** When on, blocks freed by {!decref} are parked instead of returned
    to the free list. The owner drains the pen with {!take_parked} and
    gives blocks back with {!release} once it is safe to reuse them —
    the object store gates reuse on the durability of the first
    superblock written after the free, so a crash can never recover a
    state that references a since-reused block. [on_free] hooks still
    fire at free time. *)

val take_parked : t -> int list
(** Drain the deferred-free pen (empties it). *)

val release : t -> int list -> unit
(** Return previously parked blocks to the free list. *)

val bump_fresh : t -> int -> unit
(** Push [next_fresh] past [block] without allocating it. After a
    mid-run recovery rebuild, blocks still gated by an in-flight
    superblock are quarantined this way: they leak (a hole the fresh
    pointer skips) rather than risk reuse while an older superblock
    that references them could still win recovery. *)

val set_pressure_hook : t -> (unit -> bool) -> unit
(** Invoked when an allocation would raise {!Out_of_space}; return
    [true] to retry the allocation (e.g. after settling deferred frees
    by advancing the clock). Must make progress monotonically: a hook
    that keeps returning [true] without growing the free list will
    loop. *)

val reset : t -> unit
(** Drop all state (before a recovery walk repopulates it). *)
