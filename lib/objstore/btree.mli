(** Copy-on-write B+tree over a (striped) block device array.

    This is the object store's index structure and the source of its
    two headline properties (§3): checkpoints at hundreds per second
    with a "lower overhead COW layout than that of WAFL and ZFS", and
    in-place garbage collection.

    - Every insert into a committed tree path-copies from the root
      down, so an old root keeps describing the old tree forever: a
      checkpoint generation {e is} a root pointer. Unchanged subtrees
      are shared between generations through block reference counts.
    - Within the current (uncommitted) epoch, nodes created by this
      epoch are mutated in place — path copying happens once per
      node per generation, not once per insert, which is what makes
      10 ms checkpoint intervals affordable.
    - Releasing a root decrements shared structure and frees only
      uniquely-owned blocks: GC without rewriting surviving
      checkpoints.

    Nodes live in a write-back cache; device writes happen at
    {!flush_dirty} (asynchronously, on the device timeline) and device
    reads happen only on cache misses — i.e. at recovery and cold
    restore, where they are charged to the simulated clock. Values are
    either immediates or reference-counted block pointers; the tree
    owns one reference per pointer value stored in it. *)

open Aurora_simtime
open Aurora_device

type value = Imm of int64 | Ptr of int

type t

val create : dev:Devarray.t -> alloc:Alloc.t -> t
val empty_root : t -> int
(** A fresh empty leaf, owned by the caller (refcount 1). *)

val set_reader : t -> (int -> Blockdev.content) -> unit
(** Route cache-miss block reads through [f] instead of the raw
    device. The store installs its checksum-verifying, self-repairing
    read here so tree nodes get the same media-fault protection as
    data blocks. *)

val begin_epoch : t -> int -> unit
(** Start generation [n]: nodes from earlier epochs become immutable
    (inserts will path-copy them). *)

val insert : t -> root:int -> key:int64 -> value -> int
(** Returns the (possibly new) root. Reference contract: the call
    consumes the caller's reference on [root] and the returned root
    carries it instead — a generation root that must outlive the
    insert needs {!retain_root} first. If the key exists its value is
    replaced, and a replaced [Ptr] loses the tree's reference. *)

val find : t -> root:int -> int64 -> value option

val fold_range :
  t -> root:int -> lo:int64 -> hi:int64 -> init:'a -> f:('a -> int64 -> value -> 'a) -> 'a
(** In key order over keys in [lo, hi] (inclusive). *)

val release_root : t -> int -> unit
(** Drop one reference on the root, cascading frees through uniquely
    owned nodes and decrementing value-block references. *)

val retain_root : t -> int -> unit
(** Take an extra reference on a root (e.g. when a new generation
    starts from the previous generation's tree). *)

val flush_dirty :
  ?tee:((int * Blockdev.content) list -> (int * Blockdev.content) list) ->
  ?cls:Iosched.cls -> t -> Duration.t
(** Queue all dirty cached nodes to the device (asynchronously);
    returns the absolute completion time ({!Aurora_simtime.Duration}),
    or the current time when nothing was dirty. [tee] observes the
    queued node writes and returns extra writes to append to the same
    submission — the store uses it to record node checksums and emit
    mirror copies in the same flush. *)

val dirty_count : t -> int
val cached_count : t -> int
val drop_cache : t -> unit
(** Evict all clean cached nodes (cold-cache benchmarks). Raises
    [Invalid_argument] if dirty nodes remain. *)

val reset_cache : t -> unit
(** Evict everything, dirty or not. Recovery uses this after a crash
    or an aborted generation: cached nodes may describe state the
    device never saw. *)

(** Structural access for recovery walks. *)
type view = Leaf_view of (int64 * value) list | Internal_view of int list

val view : t -> int -> view
(** Decodes the node at a block (cache miss reads the device). *)

val node_depth : t -> root:int -> int
