(** Content-addressed page deduplication.

    Maps page-content hashes to the block already holding that
    content. This is what lets the object store "deduplicate otherwise
    unrelated checkpoints on disk for higher storage density" (§2) and
    represent each serverless function as "a small delta over the
    runtime container's checkpoint" (§4): the second and later images
    of identical pages cost one reference count, not one block.

    Entries are dropped automatically when their block is freed (the
    index registers an [Alloc] free hook). *)

type t

val create : alloc:Alloc.t -> t

val find : t -> hash:int64 -> int option
(** Block already holding content with this hash, if any. *)

val peek : t -> hash:int64 -> int option
(** Like {!find} but without touching the hit/miss counters. Read
    repair uses this to locate a surviving duplicate of a corrupted
    block without skewing the dedup statistics. *)

val add : t -> hash:int64 -> block:int -> unit
(** Record that [block] holds content hashing to [hash]. Raises
    [Invalid_argument] if the hash is already mapped to a different
    block. *)

val entries : t -> int
val hits : t -> int
val misses : t -> int
(** Running counters maintained by {!find}. *)

val bytes_saved : t -> int
(** Total payload bytes whose write was avoided because a duplicate
    block already existed. The index cannot see payload sizes, so the
    store reports each avoided write via {!note_saved}. *)

val note_saved : t -> bytes:int -> unit
(** Credit [bytes] of avoided writes to the savings counter (called by
    the store on every dedup hit, including intra-batch duplicates).
    Raises [Invalid_argument] on a negative size. *)

val reset_counters : t -> unit

val reset : t -> unit
(** Drop every entry (before a recovery walk repopulates the index).
    Counters are kept. *)
