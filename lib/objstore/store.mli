(** The Aurora object store.

    Checkpoints are {e generations}: each generation is a COW B+tree
    root indexing, per object id, a metadata record (chunked into
    blocks) and a set of pages (deduplicated across all generations and
    images by content hash). An incremental checkpoint starts from the
    previous generation's tree, so unchanged objects and pages cost
    nothing new — "it thus never flushes the same page twice".

    Durability: data and tree nodes are queued to the device
    asynchronously; {!commit} finishes by writing the generation table
    and flipping between the two superblock slots, and returns the
    absolute simulated time at which the checkpoint is durable. On a
    device with a volatile write cache the commit instead issues a
    synchronous flush (this is why the paper's testbed uses Optane).
    A crash between commits recovers the last committed superblock —
    never a torn generation.

    Write ordering guarantees the superblock never points at
    unwritten blocks: each device queue is FIFO, data fans out across
    the array's stripes in parallel, and the superblock is written
    behind a commit barrier that waits on the max of the per-device
    completion times. A crash that catches only some stripes durable
    therefore also catches the superblock undurable, and recovery
    falls back to the previous generation.

    Garbage collection is in place: {!gc} releases dropped
    generations' roots; reference counts free exactly the blocks no
    surviving generation shares. *)

open Aurora_simtime
open Aurora_device

type t
type gen = int

val format : ?dedup:bool -> dev:Devarray.t -> unit -> t
(** Initialize a fresh store on the device array (writes superblock 0).
    [dedup] (default true) enables content-addressed page/blob
    deduplication; disabling it exists for the ablation bench. *)

val open_ : dev:Devarray.t -> t
(** Recover from the newest valid superblock: re-reads the generation
    table and walks every generation's tree to rebuild reference
    counts and the deduplication index. Device reads are charged to
    the simulated clock (recovery is not free). Raises
    [Failure] when no valid superblock exists. *)

val device : t -> Devarray.t

(* --- building a generation ----------------------------------------- *)

val begin_generation : t -> ?base:gen -> unit -> gen
(** Open a new generation. With [base] (default: the newest committed
    generation, if any) the new tree starts as a snapshot of the base
    — an incremental checkpoint. Without a committed base it starts
    empty (a full checkpoint). Raises [Invalid_argument] if a
    generation is already open or [base] is unknown. *)

val put_record : t -> oid:int -> string -> unit
(** Store/replace the metadata record for an object in the open
    generation. *)

val put_page : t -> oid:int -> pindex:int -> seed:int64 -> unit
(** Store/replace a page. Content (identified by its seed) is
    deduplicated store-wide. *)

val put_pages : t -> oid:int -> (int * int64) array -> unit
(** Batched {!put_page}: [(pindex, seed)] pairs. Deduplication applies
    per page (including within the batch); the distinct misses are
    allocated as one stripe-aware extent of contiguous logical blocks,
    so the checkpoint flush issues one transfer per device instead of
    scattered per-page writes. The flush path uses this. *)

val put_blob : t -> oid:int -> index:int -> string -> unit
(** Store/replace a byte blob of at most one block (file-data chunks).
    Deduplicated store-wide by content hash, like pages. Raises
    [Invalid_argument] if the blob exceeds the block size. *)

val commit : t -> ?name:string -> unit -> gen * Duration.t
(** Close the open generation; returns it with its durability time
    (see above). Does not advance the clock past CPU serialization
    cost — flushing proceeds on the device timeline. *)

val wait_durable : t -> Duration.t -> unit
(** Block (advance the clock) until the given durability time. *)

(* --- reading -------------------------------------------------------- *)

val read_record : t -> gen -> oid:int -> string option
val read_page : t -> gen -> oid:int -> pindex:int -> int64 option
val read_blob : t -> gen -> oid:int -> index:int -> string option

val read_pages_batch : t -> gen -> oid:int -> pindexes:int list -> (int * int64) list
(** Read several pages as one device command (latency paid once —
    the restore prefetch path). Missing indexes are omitted. *)

val peek_page : t -> gen -> oid:int -> pindex:int -> int64 option
(** Like {!read_page} but the data block read is not charged to the
    clock (index lookups still are, on cache misses). Used by lazy
    restore: the page's device cost is paid by the fault that brings
    it in, not at mapping time. *)

val fold_page_indexes :
  t -> gen -> oid:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Page indexes only — no data blocks are read. *)

val fold_blobs : t -> gen -> oid:int -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
(** Blob (index, data) pairs of an object, in index order. *)

val fold_pages : t -> gen -> oid:int -> init:'a -> f:('a -> int -> int64 -> 'a) -> 'a
val oids : t -> gen -> int list
(** Object ids with records in the generation, ascending. *)

val page_count : t -> gen -> oid:int -> int

(* --- generations ---------------------------------------------------- *)

val generations : t -> gen list
(** Committed generations, ascending. *)

val latest : t -> gen option
val named : t -> (string * gen) list
val find_named : t -> string -> gen option

(** [name_generation t g name] attaches (or replaces) a name on a
    committed generation — a zero-copy snapshot. Durably updates the
    generation table. Raises [Invalid_argument] on an unknown
    generation. *)
val name_generation : t -> gen -> string -> unit
val gc : t -> keep:gen list -> int
(** Drop all committed generations not listed; returns how many blocks
    were freed in place. Unknown ids in [keep] are ignored. *)

(* --- introspection -------------------------------------------------- *)

type stats = {
  live_blocks : int;
  dedup_entries : int;
  dedup_hits : int;
  dedup_misses : int;
  committed_generations : int;
}

val stats : t -> stats

val fsck : t -> (unit, string list) result
(** Integrity check ("scrub"): walks every committed generation and
    verifies (a) each tree node decodes and each reachable block is
    allocated, (b) every record reads back completely, (c) reference
    counts equal the number of reachable edges, and (d) the
    deduplication index maps only to live blocks. Returns the list of
    violations, empty on a healthy store. Raises [Invalid_argument]
    while a generation is open. *)

val drop_caches : t -> unit
(** Evict clean caches so subsequent reads hit the device (cold
    restore measurements). Raises [Invalid_argument] while a
    generation is open. *)
