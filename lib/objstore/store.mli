(** The Aurora object store.

    Checkpoints are {e generations}: each generation is a COW B+tree
    root indexing, per object id, a metadata record (chunked into
    blocks) and a set of pages (deduplicated across all generations and
    images by content hash). An incremental checkpoint starts from the
    previous generation's tree, so unchanged objects and pages cost
    nothing new — "it thus never flushes the same page twice".

    Durability: data and tree nodes are queued to the device
    asynchronously; {!commit} finishes by writing the generation table
    and flipping between the two superblock slots, and returns the
    absolute simulated time at which the checkpoint is durable. On a
    device with a volatile write cache the commit instead issues a
    synchronous flush (this is why the paper's testbed uses Optane).
    A crash between commits recovers the last committed superblock —
    never a torn generation.

    Write ordering guarantees the superblock never points at
    unwritten blocks: each device queue is FIFO, data fans out across
    the array's stripes in parallel, and the superblock is written
    behind a commit barrier that waits on the max of the per-device
    completion times. A crash that catches only some stripes durable
    therefore also catches the superblock undurable, and recovery
    falls back to the previous generation.

    Garbage collection is in place: {!gc} releases dropped
    generations' roots; reference counts free exactly the blocks no
    surviving generation shares.

    {2 Media faults and self-healing}

    On a device array carrying a {!Aurora_device.Fault} plan the store
    defends itself (see {!protection}): every block written carries a
    content checksum in the generation table, every read verifies it,
    transient errors are retried with backoff charged to the simulated
    clock, and a block that fails verification is repaired from its
    mirrored replica or a deduplicated duplicate and rewritten in
    place. Unrepairable damage surfaces as the typed {!error} — a
    whole generation is quarantined ("lost") rather than ever served
    silently wrong. *)

open Aurora_simtime
open Aurora_device

type t
type gen = int

(** What the store does to survive media faults. [verify]: per-block
    content checksums, persisted in the generation table and checked
    on every read. [mirror]: every block (data, tree node, generation
    table) gets a replica written in the same flush, used for read
    repair. Defaults at {!format} follow the device: both on when the
    array carries fault injectors, both off otherwise (the seed
    layout). *)
type protection = { verify : bool; mirror : bool }

type repair_origin =
  | Mirror        (** healed from the mirrored replica *)
  | Dedup_copy    (** healed from a deduplicated duplicate block *)

(** The failure taxonomy surfaced by recovery, commit and reads. *)
type error =
  | No_superblock                 (** neither slot holds a valid superblock *)
  | Bad_generation_table of string
  | Out_of_space                  (** allocator exhausted the device *)
  | Unreadable_block of { block : int; cause : string }
      (** every copy of the block is gone *)
  | Device_failed of string       (** a device dropped out mid-operation *)

exception Fail of error
(** Raised by paths that keep the seed's direct signatures ({!commit},
    read accessors); the [result]-returning variants never raise it. *)

val describe_error : error -> string

val format : ?dedup:bool -> ?protection:protection -> dev:Devarray.t -> unit -> t
(** Initialize a fresh store on the device array (writes superblock 0).
    [dedup] (default true) enables content-addressed page/blob
    deduplication; disabling it exists for the ablation bench.
    [protection] defaults from the device's fault plan (see
    {!protection}). *)

val open_ : dev:Devarray.t -> (t, error) result
(** Recover from the newest valid superblock: re-reads the generation
    table (falling back to, and healing from, its mirror), walks every
    generation's tree to rebuild reference counts and the
    deduplication index, and quarantines generations with unrepairable
    blocks (reported by the next {!fsck}). Device reads are charged to
    the simulated clock (recovery is not free). *)

val open_exn : dev:Devarray.t -> t
(** {!open_}, raising {!Fail} on error. *)

val device : t -> Devarray.t
val protection : t -> protection

val read_class : t -> Iosched.cls
val set_read_class : t -> Iosched.cls -> unit
(** The I/O class charged for store reads ([Foreground] by default).
    Bulk scanners — scrub, fsck, replication export — set
    [Background] around their scans and restore the previous class
    after, so verification traffic never competes with application
    reads for the scheduler's reserved slack. *)

val set_observability :
  t -> ?metrics:Metrics.t -> ?spans:Span.t -> ?probes:Probe.t -> unit -> unit
(** Rebind (or, with no arguments, detach) instrumentation. With
    [metrics], the store registers [store.<dev>.commits],
    [.records_put], [.pages_put] counters and a [.flush_us] histogram;
    with [spans], every commit records a [store.flush] span from
    commit entry to the superblock's durability instant, parented to
    whatever span is open at the time (the checkpoint root during a
    checkpoint); with [probes], commits fire [store.commit] and the
    deferred-free pen fires [alloc.defer] (op park/release/settle). *)

(* --- building a generation ----------------------------------------- *)

val begin_generation : t -> ?base:gen -> unit -> gen
(** Open a new generation. With [base] (default: the newest committed
    generation, if any) the new tree starts as a snapshot of the base
    — an incremental checkpoint. Without a committed base it starts
    empty (a full checkpoint). Raises [Invalid_argument] if a
    generation is already open or [base] is unknown. *)

val put_record : t -> oid:int -> string -> unit
(** Store/replace the metadata record for an object in the open
    generation. Raises [Alloc.Out_of_space] on a full device. *)

val put_page : t -> oid:int -> pindex:int -> seed:int64 -> unit
(** Store/replace a page. Content (identified by its seed) is
    deduplicated store-wide. *)

val put_pages : t -> oid:int -> (int * int64) array -> unit
(** Batched {!put_page}: [(pindex, seed)] pairs. Deduplication applies
    per page (including within the batch); the distinct misses are
    allocated as one stripe-aware extent of contiguous logical blocks,
    so the checkpoint flush issues one transfer per device instead of
    scattered per-page writes. The flush path uses this. *)

val put_blob : t -> oid:int -> index:int -> string -> unit
(** Store/replace a byte blob of at most one block (file-data chunks).
    Deduplicated store-wide by content hash, like pages. Raises
    [Invalid_argument] if the blob exceeds the block size. *)

val commit : t -> ?name:string -> ?cls:Iosched.cls -> unit -> gen * Duration.t
(** Close the open generation; returns it with its durability time
    (see above). Does not advance the clock past CPU serialization
    cost — flushing proceeds on the device timeline. [cls] is the I/O
    class charged for the epoch's data and tree-node extents (default
    [Flush]; the checkpoint pipeline promotes to [Deadline] when a
    caller is already waiting on the epoch). The generation table and
    superblock are always [Deadline] — they are the commit barrier.
    Raises {!Fail} ([Out_of_space] or [Device_failed]) after rolling
    the generation back; committed generations keep serving. *)

val commit_result :
  t -> ?name:string -> ?cls:Iosched.cls -> unit -> (gen * Duration.t, error) result
(** {!commit} with the failure as a value. On [Error] the open
    generation has been rolled back (allocator, dedup and caches
    rebuilt from committed state) and the store remains usable. *)

val abort_generation : t -> unit
(** Discard the open generation without committing: drops the working
    tree and pending data, then rebuilds allocator/dedup/cache state
    from the committed generations. No-op when nothing is open. The
    checkpoint path uses this to degrade gracefully on a full
    device. *)

val wait_durable : t -> Duration.t -> unit
(** Block (advance the clock) until the given durability time. *)

val gen_durable_at : t -> gen -> Duration.t option
(** When the generation's superblock (hence everything it references)
    is durable. [None] for unknown generations and for generations
    recovered from disk (already durable by construction). Superblock
    durability is monotone in commit order, so a crash exposes a
    committed {e prefix} of generations — never a torn suffix. *)

val wait_all_durable : t -> unit
(** Drain the commit pipeline: block until the newest superblock is
    durable (flush, on a volatile-cache device) and settle any
    deferred frees that became releasable. Unlike the old whole-array
    barrier this awaits only the store's own writes. *)

val inflight_generations : t -> gen list
(** Committed generations whose superblock is not yet durable at the
    current simulated time, ascending. *)

val has_open_generation : t -> bool

(* --- the black-box slot ---------------------------------------------- *)

val write_blackbox : t -> string -> unit
(** Write an opaque payload to the store's dedicated black-box slot:
    two reserved blocks (after the superblocks, outside any
    generation) that alternate per write, each framed with a magic,
    sequence number, and checksum. The write is asynchronous and
    unordered — it never adds a barrier to the caller's path — so a
    crash before it completes loses this payload but leaves the
    previous slot's intact. The framed payload must fit one device
    block ([Invalid_argument] otherwise). The flight recorder persists
    its capture/ack summary here on every checkpoint; that summary is
    what lets a post-mortem name epochs that were captured but never
    became durable. *)

val read_blackbox : t -> string option
(** The payload of the newest intact black-box slot, if any survives
    verification. *)

(* --- reading -------------------------------------------------------- *)

val read_record : t -> gen -> oid:int -> string option
val read_page : t -> gen -> oid:int -> pindex:int -> int64 option
val read_blob : t -> gen -> oid:int -> index:int -> string option

val read_pages_batch :
  t -> gen -> oid:int -> pindexes:int array -> (int * int64) array
(** Read several pages as one device command (latency paid once —
    the restore prefetch path). Missing indexes are omitted. Blocks
    the batch DMA could not deliver (latent sectors) are re-read and
    repaired through the verified single-block path. Array in, array
    out: the hot path works from preallocated buffers. *)

val peek_page : t -> gen -> oid:int -> pindex:int -> int64 option
(** Like {!read_page} but the data block read is not charged to the
    clock (index lookups still are, on cache misses). Used by lazy
    restore: the page's device cost is paid by the fault that brings
    it in, not at mapping time. *)

val fold_page_indexes :
  t -> gen -> oid:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Page indexes only — no data blocks are read. *)

val fold_blobs : t -> gen -> oid:int -> init:'a -> f:('a -> int -> string -> 'a) -> 'a
(** Blob (index, data) pairs of an object, in index order. *)

val fold_pages : t -> gen -> oid:int -> init:'a -> f:('a -> int -> int64 -> 'a) -> 'a
val oids : t -> gen -> int list
(** Object ids with records in the generation, ascending. *)

val page_count : t -> gen -> oid:int -> int

(* --- generations ---------------------------------------------------- *)

val generations : t -> gen list
(** Committed generations, ascending. *)

val latest : t -> gen option
val named : t -> (string * gen) list
val find_named : t -> string -> gen option

(** [name_generation t g name] attaches (or replaces) a name on a
    committed generation — a zero-copy snapshot. Durably updates the
    generation table. Raises [Invalid_argument] on an unknown
    generation. *)
val name_generation : t -> gen -> string -> unit
val gc : t -> keep:gen list -> int
(** Drop all committed generations not listed; returns how many blocks
    were freed in place. Unknown ids in [keep] are ignored. *)

(* --- introspection -------------------------------------------------- *)

type stats = {
  live_blocks : int;
  dedup_entries : int;
  dedup_hits : int;
  dedup_misses : int;
  dedup_bytes_saved : int;
  committed_generations : int;
}

val stats : t -> stats

val capacity_blocks : t -> int option
(** The allocator's capacity cap ([None] = unbounded); inspection
    tools report utilisation against it. *)

(* --- provenance ----------------------------------------------------- *)

(** Write-time storage provenance of one generation, accumulated from
    {!begin_generation} through {!commit} and persisted in the
    generation table (so a reopened store reports the same numbers —
    the offline inspection path). [pv_logical_bytes] is what the
    checkpoint logically captured (page payloads + record/blob bytes);
    [pv_data_blocks]/[pv_meta_blocks]/[pv_mirror_blocks]/
    [pv_commit_blocks] are the blocks physically written (fresh data,
    flushed tree nodes, replicas, generation table + superblock).
    [pv_dedup_hits] counts avoided block writes (index hits plus
    intra-batch duplicates), [pv_dedup_saved_bytes] their payload. The
    type is [private]: only the store accumulates. *)
type provenance = private {
  pv_gen : gen;
  mutable pv_records : int;
  mutable pv_pages : int;
  mutable pv_blobs : int;
  mutable pv_logical_bytes : int;
  mutable pv_data_blocks : int;
  mutable pv_dedup_hits : int;
  mutable pv_dedup_saved_bytes : int;
  mutable pv_mirror_blocks : int;
  mutable pv_meta_blocks : int;
  mutable pv_commit_blocks : int;
}

val gen_provenance : t -> gen -> provenance option
(** [None] for unknown (or aborted/quarantined/collected) generations. *)

val bytes_written : provenance -> int
(** Physical bytes the generation wrote:
    [(data + mirror + meta + commit blocks) * block_size]. *)

(** The derived (walked, fsck-style) view of a generation: what is
    actually reachable from its root right now. Unlike {!provenance}
    this is not an accumulation — it is recomputed from the tree, so it
    works identically on a live store and on one just reopened from
    disk, and it reflects sharing: [r_shared_blocks] are reachable from
    at least one other committed generation too (COW structure sharing
    and dedup), [r_exclusive_blocks] from this one only (what {!gc}
    would free). [r_logical_bytes] counts page payloads + record bytes
    (blob payloads are counted as entries only). *)
type gen_report = {
  r_gen : gen;
  r_meta_blocks : int;
  r_data_blocks : int;
  r_mirror_blocks : int;
  r_record_entries : int;
  r_page_entries : int;
  r_blob_entries : int;
  r_record_bytes : int;
  r_logical_bytes : int;
  r_exclusive_blocks : int;
  r_shared_blocks : int;
}

val gen_report : t -> gen -> gen_report option
(** Walk the generation and report. Reads go through the verifying,
    self-repairing path; [None] for unknown generations. *)

(** The attribution-sum cross-check: blocks reachable by walking every
    committed generation (plus mirrors and the commit machinery's own
    blocks) against the allocator's live count. On a consistent store
    they are equal; the acceptance gate allows 1%. *)
type crosscheck = {
  x_reachable_blocks : int;
  x_live_blocks : int;
  x_within_1pct : bool;
}

val crosscheck : t -> crosscheck
(** Raises [Invalid_argument] while a generation is open. *)

(** Page-level delta of one object between two generations. *)
type oid_delta = {
  d_oid : int;
  d_pages_added : int;
  d_pages_removed : int;
  d_pages_changed : int;
}

type gen_diff = {
  df_from : gen;
  df_to : gen;
  df_oids_added : int list;    (** oids with pages in [to] only *)
  df_oids_removed : int list;  (** oids with pages in [from] only *)
  df_changed : oid_delta list; (** oids whose page sets differ *)
  df_pages_added : int;
  df_pages_removed : int;
  df_pages_changed : int;
  df_bytes_delta : int;        (** page-payload growth, may be negative *)
  df_dedup_hits_delta : int;   (** [to]'s provenance minus [from]'s *)
  df_dedup_saved_delta : int;
}

val diff : t -> from_gen:gen -> to_gen:gen -> gen_diff
(** Compare two committed generations by page block pointers (under
    dedup, pointer equality is content equality; without it, unchanged
    pages keep their blocks, so the comparison holds either way).
    Raises [Invalid_argument] on unknown generations. *)

(** Fault-path counters: transient-read retries issued, checksum
    verification failures, blocks healed per repair source, and blocks
    lost beyond repair. *)
type io_stats = {
  mutable read_retries : int;
  mutable checksum_failures : int;
  mutable repaired_from_mirror : int;
  mutable repaired_from_dedup : int;
  mutable lost_blocks : int;
}

val io_stats : t -> io_stats
(** A snapshot; mutating it does not affect the store. *)

(** What {!fsck} found and did. [problems]: structural violations
    (refcount/edge mismatches, undecodable nodes, torn records).
    [healed]: blocks repaired (and rewritten in place) since the last
    report, with their repair source. [lost]: generations quarantined
    as unrecoverable, with the reason. [scanned_blocks]: blocks read
    by the scrub pass (0 without [~scrub]). *)
type fsck_report = {
  problems : string list;
  healed : (int * repair_origin) list;
  lost : (gen * string) list;
  scanned_blocks : int;
}

val fsck : ?scrub:bool -> t -> fsck_report
(** Integrity check: walks every committed generation and verifies
    (a) each tree node decodes and each reachable block is allocated,
    (b) every record reads back completely, and (c) reference counts
    equal the number of reachable edges (including mirror replicas and
    generation-table blocks). With [~scrub:true] it first reads {e
    every} reachable block cold through the verified path — repairing
    what it can, quarantining generations it cannot — and durably
    persists any losses. Drains the accumulated repair and quarantine
    logs into the report. Raises [Invalid_argument] while a generation
    is open. *)

val fsck_ok : fsck_report -> bool
(** No structural problems and nothing lost (healed repairs are
    fine — that is the machinery working). *)

val drop_caches : t -> unit
(** Evict clean caches so subsequent reads hit the device (cold
    restore measurements). Raises [Invalid_argument] while a
    generation is open. *)
