open Aurora_simtime
open Aurora_device
open Aurora_posix
open Aurora_vm

type gen = int

let magic = "AURORA-SLS-v1"
let superblock_slots = 2 (* blocks 0 and 1 *)

type gen_entry = { root : int; name : string option }

type t = {
  dev : Devarray.t;
  alloc : Alloc.t;
  tree : Btree.t;
  dedup : Dedup.t;
  dedup_enabled : bool;
  gens : (gen, gen_entry) Hashtbl.t;
  mutable commit_seq : int;          (* superblock alternation counter *)
  mutable next_gen : gen;
  mutable gentable_blocks : int list; (* blocks holding the current gen table *)
  mutable prev_gentable_blocks : int list;
  (* The table referenced by the *other* superblock slot. Kept
     allocated until that slot is overwritten: if the crash drops the
     newest superblock, recovery falls back to the other slot, whose
     table must still be intact on disk. *)
  mutable open_gen : (gen * int) option; (* generation being built, working root *)
  mutable pending_pages : (int * Blockdev.content) list; (* data block writes *)
}

(* --- key encoding ---------------------------------------------------
   key = oid * 2^34 + kind * 2^32 + index
   kinds: 0 = record length (Imm), 1 = record chunk (Ptr), 2 = page (Ptr). *)

let kind_record_len = 0L
let kind_record_chunk = 1L
let kind_page = 2L
let kind_blob = 3L

(* FNV-1a, for content-addressing byte blobs. *)
let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let key ~oid ~kind ~index =
  if oid < 0 || oid >= 1 lsl 29 then invalid_arg "Store: oid out of range";
  if index < 0 then invalid_arg "Store: negative index";
  Int64.add
    (Int64.add
       (Int64.mul (Int64.of_int oid) 0x4_0000_0000L)
       (Int64.mul kind 0x1_0000_0000L))
    (Int64.of_int index)

(* --- construction --------------------------------------------------- *)

let make ?(dedup = true) dev =
  let alloc =
    Alloc.create ~first_block:superblock_slots ~stripes:(Devarray.stripes dev) ()
  in
  let tree = Btree.create ~dev ~alloc in
  let dedup_index = Dedup.create ~alloc in
  { dev; alloc; tree; dedup = dedup_index; dedup_enabled = dedup;
    gens = Hashtbl.create 16; commit_seq = 0; next_gen = 1;
    gentable_blocks = []; prev_gentable_blocks = []; open_gen = None;
    pending_pages = [] }

let encode_superblock t =
  let w = Serial.writer () in
  Serial.w_string w magic;
  Serial.w_int w t.commit_seq;
  Serial.w_int w t.next_gen;
  Serial.w_list w Serial.w_int t.gentable_blocks;
  Serial.contents w

let encode_gentable t =
  let w = Serial.writer () in
  let entries =
    Hashtbl.fold (fun g e acc -> (g, e) :: acc) t.gens []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Serial.w_list w (fun w (g, e) ->
      Serial.w_int w g;
      Serial.w_int w e.root;
      Serial.w_option w Serial.w_string e.name)
    entries;
  Serial.contents w

let decode_gentable data =
  let r = Serial.reader data in
  Serial.r_list r (fun r ->
      let g = Serial.r_int r in
      let root = Serial.r_int r in
      let name = Serial.r_option r Serial.r_string in
      (g, { root; name }))

let format ?dedup ~dev () =
  let t = make ?dedup dev in
  (* Empty gen table: superblock alone describes the store. *)
  Devarray.write dev 0 (Blockdev.Data (encode_superblock t));
  Devarray.flush dev;
  t

let device t = t.dev

(* --- commit ---------------------------------------------------------- *)

let chunk_string data =
  let n = String.length data in
  let nchunks = (n + Blockdev.block_size - 1) / Blockdev.block_size in
  List.init nchunks (fun i ->
      String.sub data (i * Blockdev.block_size)
        (min Blockdev.block_size (n - (i * Blockdev.block_size))))

let require_open t =
  match t.open_gen with
  | Some g -> g
  | None -> invalid_arg "Store: no open generation"

let require_closed t =
  if t.open_gen <> None then invalid_arg "Store: a generation is already open"

let begin_generation t ?base () =
  require_closed t;
  let g = t.next_gen in
  t.next_gen <- g + 1;
  Btree.begin_epoch t.tree g;
  let base =
    match base with
    | Some b -> Some b
    | None ->
      Hashtbl.fold (fun g' _ acc ->
          match acc with Some best when best >= g' -> acc | _ -> Some g')
        t.gens None
  in
  let root =
    match base with
    | None -> Btree.empty_root t.tree
    | Some b -> (
      match Hashtbl.find_opt t.gens b with
      | None -> invalid_arg (Printf.sprintf "Store: unknown base generation %d" b)
      | Some e ->
        (* The working tree holds its own reference; the base keeps
           its generation-table reference. *)
        Btree.retain_root t.tree e.root;
        e.root)
  in
  t.open_gen <- Some (g, root);
  g

let tree_insert t key value =
  let g, root = require_open t in
  let root' = Btree.insert t.tree ~root ~key value in
  t.open_gen <- Some (g, root')

let put_record t ~oid data =
  let _, root = require_open t in
  (* Stale chunks from a longer previous record are overwritten with
     immediates so their blocks are released. *)
  let old_chunks =
    match Btree.find t.tree ~root (key ~oid ~kind:kind_record_len ~index:1) with
    | Some (Btree.Imm n) -> Int64.to_int n
    | Some (Btree.Ptr _) | None -> 0
  in
  let chunks = chunk_string data in
  let nchunks = List.length chunks in
  List.iteri
    (fun i chunk ->
      let block = Alloc.alloc t.alloc in
      t.pending_pages <- (block, Blockdev.Data chunk) :: t.pending_pages;
      tree_insert t (key ~oid ~kind:kind_record_chunk ~index:i) (Btree.Ptr block))
    chunks;
  let rec blank i =
    if i < old_chunks then begin
      tree_insert t (key ~oid ~kind:kind_record_chunk ~index:i) (Btree.Imm 0L);
      blank (i + 1)
    end
  in
  blank nchunks;
  tree_insert t (key ~oid ~kind:kind_record_len ~index:0)
    (Btree.Imm (Int64.of_int (String.length data)));
  tree_insert t (key ~oid ~kind:kind_record_len ~index:1)
    (Btree.Imm (Int64.of_int nchunks))

let put_page t ~oid ~pindex ~seed =
  let _ = require_open t in
  let hash = Content.hash (Content.of_seed seed) in
  let block =
    match (if t.dedup_enabled then Dedup.find t.dedup ~hash else None) with
    | Some block ->
      Alloc.incref t.alloc block;
      block
    | None ->
      let block = Alloc.alloc t.alloc in
      t.pending_pages <- (block, Blockdev.Seed seed) :: t.pending_pages;
      if t.dedup_enabled then Dedup.add t.dedup ~hash ~block;
      block
  in
  tree_insert t (key ~oid ~kind:kind_page ~index:pindex) (Btree.Ptr block)

(* Batched page ingest: dedup hits resolve to existing blocks; the
   distinct misses share one stripe-aware extent of fresh contiguous
   logical blocks, so the background flush fans the batch out as one
   contiguous physical run per device instead of scattered singleton
   writes. *)
let put_pages t ~oid pages =
  let _ = require_open t in
  let n = Array.length pages in
  if n > 0 then begin
    let hit = Array.make n (-1) in       (* resolved dedup-hit block, or -1 *)
    let slot_of = Array.make n (-1) in   (* index into the fresh extent *)
    let fresh_slots = Hashtbl.create 16 in
    let fresh_seeds = ref [] in
    let nmiss = ref 0 in
    let miss seed =
      let s = !nmiss in
      fresh_seeds := seed :: !fresh_seeds;
      incr nmiss;
      s
    in
    Array.iteri
      (fun i (_, seed) ->
        if not t.dedup_enabled then slot_of.(i) <- miss seed
        else begin
          let hash = Content.hash (Content.of_seed seed) in
          match Dedup.find t.dedup ~hash with
          | Some block ->
            Alloc.incref t.alloc block;
            hit.(i) <- block
          | None -> (
            match Hashtbl.find_opt fresh_slots hash with
            | Some s -> slot_of.(i) <- s
            | None ->
              let s = miss seed in
              Hashtbl.replace fresh_slots hash s;
              slot_of.(i) <- s)
        end)
      pages;
    let ext = Alloc.alloc_extent t.alloc !nmiss in
    let seeds = Array.of_list (List.rev !fresh_seeds) in
    Array.iteri
      (fun s seed ->
        let block = ext.(s) in
        t.pending_pages <- (block, Blockdev.Seed seed) :: t.pending_pages;
        if t.dedup_enabled then
          Dedup.add t.dedup ~hash:(Content.hash (Content.of_seed seed)) ~block)
      seeds;
    (* The first reference to a fresh block consumes the allocation's
       refcount; intra-batch duplicates add their own. *)
    let extent_used = Array.make !nmiss false in
    Array.iteri
      (fun i (pindex, _) ->
        let block =
          if hit.(i) >= 0 then hit.(i)
          else begin
            let s = slot_of.(i) in
            let b = ext.(s) in
            if extent_used.(s) then Alloc.incref t.alloc b
            else extent_used.(s) <- true;
            b
          end
        in
        tree_insert t (key ~oid ~kind:kind_page ~index:pindex) (Btree.Ptr block))
      pages
  end

let put_blob t ~oid ~index data =
  let _ = require_open t in
  if String.length data > Blockdev.block_size then
    invalid_arg "Store.put_blob: blob exceeds block size";
  let hash = hash_string data in
  let block =
    match (if t.dedup_enabled then Dedup.find t.dedup ~hash else None) with
    | Some block ->
      Alloc.incref t.alloc block;
      block
    | None ->
      let block = Alloc.alloc t.alloc in
      t.pending_pages <- (block, Blockdev.Data data) :: t.pending_pages;
      if t.dedup_enabled then Dedup.add t.dedup ~hash ~block;
      block
  in
  tree_insert t (key ~oid ~kind:kind_blob ~index) (Btree.Ptr block)

let write_superblock t =
  (* Free the generation table referenced by the superblock slot this
     write is about to overwrite (two commits old — the other slot
     still points at [t.gentable_blocks], which therefore must not be
     reused yet), queue the new table on the striped array, then write
     the superblock behind a commit barrier: it starts only after
     every device's in-flight writes complete, so a durable superblock
     implies durable contents even when the stripes drain at different
     times, and a dropped superblock leaves the other slot's table
     untouched on disk. *)
  List.iter (fun b -> Alloc.decref t.alloc b) t.prev_gentable_blocks;
  let table = encode_gentable t in
  let blocks =
    List.map (fun chunk -> (Alloc.alloc t.alloc, chunk)) (chunk_string table)
  in
  t.prev_gentable_blocks <- t.gentable_blocks;
  t.gentable_blocks <- List.map fst blocks;
  t.commit_seq <- t.commit_seq + 1;
  let slot = t.commit_seq mod superblock_slots in
  ignore
    (Devarray.write_async t.dev
       (List.map (fun (b, chunk) -> (b, Blockdev.Data chunk)) blocks));
  Devarray.write_barrier t.dev [ (slot, Blockdev.Data (encode_superblock t)) ]

let commit t ?name () =
  let g, root = require_open t in
  t.open_gen <- None;
  Hashtbl.replace t.gens g { root; name };
  (* Data pages fan out across all stripes (per-device extents,
     overlapping in simulated time); tree nodes follow on whichever
     stripes their blocks map to; the superblock waits on the max of
     the per-device completion times. *)
  let data_batch = List.rev t.pending_pages in
  t.pending_pages <- [];
  if data_batch <> [] then ignore (Devarray.write_async t.dev data_batch);
  ignore (Btree.flush_dirty t.tree);
  let durable_at = write_superblock t in
  if (Devarray.profile t.dev).Profile.volatile_cache then begin
    (* No power-loss protection: a synchronous flush is the only way
       to durability, and the application pays for it. *)
    Devarray.flush t.dev;
    (g, Clock.now (Devarray.clock t.dev))
  end
  else (g, durable_at)

let wait_durable t at = Devarray.await t.dev at

(* --- reading --------------------------------------------------------- *)

let gen_root t g =
  match Hashtbl.find_opt t.gens g with
  | Some e -> Some e.root
  | None -> (
    (* Reading from the open generation is allowed (restores from the
       working tree are not, but tests peek). *)
    match t.open_gen with
    | Some (og, root) when og = g -> Some root
    | _ -> None)

let read_block_data t block =
  match Devarray.read t.dev block with
  | Blockdev.Data s -> s
  | Blockdev.Seed _ | Blockdev.Zero ->
    raise (Serial.Corrupt (Printf.sprintf "Store: block %d is not a data block" block))

let read_record t g ~oid =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_record_len ~index:0) with
    | None | Some (Btree.Ptr _) -> None
    | Some (Btree.Imm len64) ->
      let len = Int64.to_int len64 in
      let nchunks = (len + Blockdev.block_size - 1) / Blockdev.block_size in
      let buf = Buffer.create len in
      for i = 0 to nchunks - 1 do
        match Btree.find t.tree ~root (key ~oid ~kind:kind_record_chunk ~index:i) with
        | Some (Btree.Ptr block) -> Buffer.add_string buf (read_block_data t block)
        | Some (Btree.Imm _) | None ->
          raise (Serial.Corrupt (Printf.sprintf "Store: missing chunk %d of oid %d" i oid))
      done;
      Some (Buffer.contents buf))

let read_blob t g ~oid ~index =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_blob ~index) with
    | Some (Btree.Ptr block) -> Some (read_block_data t block)
    | Some (Btree.Imm _) | None -> None)

let read_page t g ~oid ~pindex =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_page ~index:pindex) with
    | Some (Btree.Ptr block) -> (
      match Devarray.read t.dev block with
      | Blockdev.Seed s -> Some s
      | Blockdev.Zero -> Some 0L
      | Blockdev.Data _ ->
        raise (Serial.Corrupt (Printf.sprintf "Store: page block %d holds metadata" block)))
    | Some (Btree.Imm _) | None -> None)

let read_pages_batch t g ~oid ~pindexes =
  match gen_root t g with
  | None -> []
  | Some root ->
    let located =
      List.filter_map
        (fun pindex ->
          match Btree.find t.tree ~root (key ~oid ~kind:kind_page ~index:pindex) with
          | Some (Btree.Ptr block) -> Some (pindex, block)
          | Some (Btree.Imm _) | None -> None)
        pindexes
    in
    let contents = Devarray.read_many t.dev (List.map snd located) in
    List.map2
      (fun (pindex, block) content ->
        match content with
        | Blockdev.Seed s -> (pindex, s)
        | Blockdev.Zero -> (pindex, 0L)
        | Blockdev.Data _ ->
          raise (Serial.Corrupt (Printf.sprintf "Store: page block %d holds metadata" block)))
      located contents

let peek_page t g ~oid ~pindex =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_page ~index:pindex) with
    | Some (Btree.Ptr block) -> (
      match Devarray.peek t.dev block with
      | Blockdev.Seed s -> Some s
      | Blockdev.Zero -> Some 0L
      | Blockdev.Data _ ->
        raise (Serial.Corrupt (Printf.sprintf "Store: page block %d holds metadata" block)))
    | Some (Btree.Imm _) | None -> None)

let fold_page_indexes t g ~oid ~init ~f =
  match gen_root t g with
  | None -> init
  | Some root ->
    let lo = key ~oid ~kind:kind_page ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init ~f:(fun acc k v ->
        match v with
        | Btree.Ptr _ -> f acc (Int64.to_int (Int64.logand k 0xFFFF_FFFFL))
        | Btree.Imm _ -> acc)

let fold_pages t g ~oid ~init ~f =
  match gen_root t g with
  | None -> init
  | Some root ->
    let lo = key ~oid ~kind:kind_page ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init ~f:(fun acc k v ->
        match v with
        | Btree.Ptr block ->
          let pindex = Int64.to_int (Int64.logand k 0xFFFF_FFFFL) in
          let seed =
            match Devarray.read t.dev block with
            | Blockdev.Seed s -> s
            | Blockdev.Zero -> 0L
            | Blockdev.Data _ ->
              raise (Serial.Corrupt "Store: page block holds metadata")
          in
          f acc pindex seed
        | Btree.Imm _ -> acc)

let fold_blobs t g ~oid ~init ~f =
  match gen_root t g with
  | None -> init
  | Some root ->
    let lo = key ~oid ~kind:kind_blob ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init ~f:(fun acc k v ->
        match v with
        | Btree.Ptr block ->
          f acc (Int64.to_int (Int64.logand k 0xFFFF_FFFFL)) (read_block_data t block)
        | Btree.Imm _ -> acc)

let page_count t g ~oid =
  match gen_root t g with
  | None -> 0
  | Some root ->
    let lo = key ~oid ~kind:kind_page ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init:0 ~f:(fun acc _ v ->
        match v with Btree.Ptr _ -> acc + 1 | Btree.Imm _ -> acc)

let oids t g =
  match gen_root t g with
  | None -> []
  | Some root ->
    Btree.fold_range t.tree ~root ~lo:Int64.min_int ~hi:Int64.max_int ~init:[]
      ~f:(fun acc k _ ->
        let oid = Int64.to_int (Int64.div k 0x4_0000_0000L) in
        match acc with o :: _ when o = oid -> acc | _ -> oid :: acc)
    |> List.rev

(* --- generations ----------------------------------------------------- *)

let generations t =
  Hashtbl.fold (fun g _ acc -> g :: acc) t.gens [] |> List.sort Int.compare

let latest t =
  match generations t with [] -> None | gens -> Some (List.nth gens (List.length gens - 1))

let named t =
  Hashtbl.fold
    (fun g e acc -> match e.name with Some n -> (n, g) :: acc | None -> acc)
    t.gens []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_named t name = List.assoc_opt name (named t)

let name_generation t g name =
  match Hashtbl.find_opt t.gens g with
  | None -> invalid_arg (Printf.sprintf "Store.name_generation: unknown generation %d" g)
  | Some e ->
    Hashtbl.replace t.gens g { e with name = Some name };
    let durable = write_superblock t in
    if (Devarray.profile t.dev).Profile.volatile_cache then Devarray.flush t.dev
    else Devarray.await t.dev durable

let gc t ~keep =
  require_closed t;
  let victims =
    List.filter (fun g -> not (List.mem g keep)) (generations t)
  in
  let before = Alloc.live_blocks t.alloc in
  List.iter
    (fun g ->
      match Hashtbl.find_opt t.gens g with
      | Some e ->
        Hashtbl.remove t.gens g;
        Btree.release_root t.tree e.root
      | None -> ())
    victims;
  if victims <> [] then begin
    let durable = write_superblock t in
    if (Devarray.profile t.dev).Profile.volatile_cache then Devarray.flush t.dev
    else Devarray.await t.dev durable
  end;
  before - Alloc.live_blocks t.alloc

(* --- recovery -------------------------------------------------------- *)

let decode_superblock data =
  let r = Serial.reader data in
  if Serial.r_string r <> magic then None
  else
    let commit_seq = Serial.r_int r in
    let next_gen = Serial.r_int r in
    let gentable_blocks = Serial.r_list r Serial.r_int in
    Some (commit_seq, next_gen, gentable_blocks)

(* Rebuild reference counts by walking every generation tree: a
   block's count is the number of edges (parent links, value pointers,
   generation roots) that reach it. Each node's outgoing edges are
   counted exactly once, on first visit. *)
let recover_refcounts t =
  Alloc.reset t.alloc;
  List.iter (Alloc.mark_live t.alloc) t.gentable_blocks;
  let visited = Hashtbl.create 4096 in
  let rec walk block =
    Alloc.mark_live t.alloc block;
    if not (Hashtbl.mem visited block) then begin
      Hashtbl.replace visited block ();
      match Btree.view t.tree block with
      | Btree.Internal_view children -> List.iter walk children
      | Btree.Leaf_view entries ->
        List.iter
          (fun (_, v) ->
            match v with
            | Btree.Ptr data_block ->
              Alloc.mark_live t.alloc data_block;
              (* Rebuild the dedup index from page blocks. *)
              if not (Hashtbl.mem visited data_block) then begin
                Hashtbl.replace visited data_block ();
                (* Re-add content addresses. Identical content may sit
                   in several blocks (record chunks are not deduped at
                   write time), so first mapping wins. *)
                let add_if_absent hash =
                  if Dedup.find t.dedup ~hash = None then
                    Dedup.add t.dedup ~hash ~block:data_block
                in
                match Devarray.read t.dev data_block with
                | Blockdev.Seed s -> add_if_absent (Content.hash (Content.of_seed s))
                | Blockdev.Data d -> add_if_absent (hash_string d)
                | Blockdev.Zero -> ()
              end
            | Btree.Imm _ -> ())
          entries
    end
  in
  Hashtbl.iter (fun _ e -> walk e.root) t.gens

let open_ ~dev =
  let read_slot slot =
    match Devarray.read dev slot with
    | Blockdev.Data s -> ( try decode_superblock s with Serial.Corrupt _ -> None)
    | Blockdev.Seed _ | Blockdev.Zero -> None
  in
  let candidates = List.filter_map read_slot (List.init superblock_slots Fun.id) in
  match List.sort (fun (a, _, _) (b, _, _) -> Int.compare b a) candidates with
  | [] -> failwith "Store.open_: no valid superblock"
  | (commit_seq, next_gen, gentable_blocks) :: _ ->
    let t = make dev in
    t.commit_seq <- commit_seq;
    t.next_gen <- next_gen;
    t.gentable_blocks <- gentable_blocks;
    (* A store that never committed a generation has no table. *)
    if gentable_blocks <> [] then begin
      let table =
        String.concat ""
          (List.map
             (fun b ->
               match Devarray.read dev b with
               | Blockdev.Data s -> s
               | Blockdev.Seed _ | Blockdev.Zero ->
                 raise (Serial.Corrupt "Store: bad generation table block"))
             gentable_blocks)
      in
      List.iter (fun (g, e) -> Hashtbl.replace t.gens g e) (decode_gentable table)
    end;
    recover_refcounts t;
    Btree.begin_epoch t.tree t.next_gen;
    t

(* --- introspection --------------------------------------------------- *)

type stats = {
  live_blocks : int;
  dedup_entries : int;
  dedup_hits : int;
  dedup_misses : int;
  committed_generations : int;
}

let stats t =
  {
    live_blocks = Alloc.live_blocks t.alloc;
    dedup_entries = Dedup.entries t.dedup;
    dedup_hits = Dedup.hits t.dedup;
    dedup_misses = Dedup.misses t.dedup;
    committed_generations = Hashtbl.length t.gens;
  }

let fsck t =
  require_closed t;
  let problems = ref [] in
  let problem fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (* Count reachable edges per block (generation roots, tree edges,
     value pointers, generation-table blocks). *)
  let edges : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let edge b = Hashtbl.replace edges b (1 + Option.value ~default:0 (Hashtbl.find_opt edges b)) in
  List.iter edge t.gentable_blocks;
  List.iter edge t.prev_gentable_blocks;
  let visited = Hashtbl.create 4096 in
  let rec walk block =
    edge block;
    if not (Hashtbl.mem visited block) then begin
      Hashtbl.replace visited block ();
      if Alloc.refcount t.alloc block = 0 then
        problem "reachable block %d is unallocated" block;
      match Btree.view t.tree block with
      | exception Serial.Corrupt msg -> problem "node %d corrupt: %s" block msg
      | Btree.Internal_view children -> List.iter walk children
      | Btree.Leaf_view entries ->
        List.iter
          (fun (_, v) ->
            match v with
            | Btree.Ptr data_block ->
              edge data_block;
              if Alloc.refcount t.alloc data_block = 0 then
                problem "data block %d is unallocated" data_block
            | Btree.Imm _ -> ())
          entries
    end
  in
  Hashtbl.iter (fun _ e -> walk e.root) t.gens;
  (* Reference counts must equal reachable edges. *)
  Hashtbl.iter
    (fun block n ->
      let rc = Alloc.refcount t.alloc block in
      if rc <> n then problem "block %d: refcount %d, reachable edges %d" block rc n)
    edges;
  (* Records must read back whole (an oid may hold only pages, which
     is fine; a corrupt or truncated record is not). *)
  Hashtbl.iter
    (fun g _ ->
      List.iter
        (fun oid ->
          match read_record t g ~oid with
          | Some _ | None -> ()
          | exception Serial.Corrupt msg ->
            problem "generation %d oid %d: %s" g oid msg)
        (oids t g))
    t.gens;
  match !problems with [] -> Ok () | ps -> Error (List.rev ps)

let drop_caches t =
  require_closed t;
  Btree.drop_cache t.tree
