open Aurora_simtime
open Aurora_device
open Aurora_posix
open Aurora_vm

type gen = int

let magic = "AURORA-SLS-v2"
let superblock_slots = 2 (* blocks 0 and 1 *)

(* Two reserved blocks right after the superblocks hold the flight
   recorder's black box: a tiny summary written asynchronously on
   every checkpoint capture, outside any generation, so a post-mortem
   can name epochs that were captured but never became durable. The
   slots alternate like superblocks so a crash mid-write leaves the
   previous summary intact. *)
let blackbox_slots = 2 (* blocks 2 and 3 *)
let reserved_blocks = superblock_slots + blackbox_slots
let bbox_magic = "AURORA-BBSL-v1"

type gen_entry = { root : int; name : string option }

(* --- integrity / fault taxonomy ------------------------------------- *)

type protection = { verify : bool; mirror : bool }

type repair_origin = Mirror | Dedup_copy

type error =
  | No_superblock
  | Bad_generation_table of string
  | Out_of_space
  | Unreadable_block of { block : int; cause : string }
  | Device_failed of string

exception Fail of error

let describe_error = function
  | No_superblock -> "no valid superblock"
  | Bad_generation_table msg -> "generation table: " ^ msg
  | Out_of_space -> "device out of space"
  | Unreadable_block { block; cause } ->
    Printf.sprintf "block %d unreadable beyond repair: %s" block cause
  | Device_failed msg -> "device failed: " ^ msg

let () =
  Printexc.register_printer (function
    | Fail e -> Some ("Store failure: " ^ describe_error e)
    | _ -> None)

type io_stats = {
  mutable read_retries : int;
  mutable checksum_failures : int;
  mutable repaired_from_mirror : int;
  mutable repaired_from_dedup : int;
  mutable lost_blocks : int;
}

type counters = {
  c_commits : Metrics.counter;
  c_records_put : Metrics.counter;
  c_pages_put : Metrics.counter;
  c_flush_us : Metrics.histogram;
}

(* Per-generation storage provenance, accumulated at write time (from
   [begin_generation] through [commit]) and persisted in the
   generation table so offline inspection sees the same numbers. The
   fields are physically mutable but the interface exports the type
   [private]: only this module accumulates. *)
type provenance = {
  pv_gen : gen;
  mutable pv_records : int;
  mutable pv_pages : int;
  mutable pv_blobs : int;
  mutable pv_logical_bytes : int;
  mutable pv_data_blocks : int;
  mutable pv_dedup_hits : int;
  mutable pv_dedup_saved_bytes : int;
  mutable pv_mirror_blocks : int;
  mutable pv_meta_blocks : int;
  mutable pv_commit_blocks : int;
}

let fresh_provenance gen =
  { pv_gen = gen; pv_records = 0; pv_pages = 0; pv_blobs = 0;
    pv_logical_bytes = 0; pv_data_blocks = 0; pv_dedup_hits = 0;
    pv_dedup_saved_bytes = 0; pv_mirror_blocks = 0; pv_meta_blocks = 0;
    pv_commit_blocks = 0 }

let bytes_written p =
  (p.pv_data_blocks + p.pv_mirror_blocks + p.pv_meta_blocks + p.pv_commit_blocks)
  * Blockdev.block_size

type t = {
  dev : Devarray.t;
  alloc : Alloc.t;
  tree : Btree.t;
  dedup : Dedup.t;
  dedup_enabled : bool;
  gens : (gen, gen_entry) Hashtbl.t;
  mutable commit_seq : int;          (* superblock alternation counter *)
  mutable next_gen : gen;
  mutable gentable_blocks : int list; (* blocks holding the current gen table *)
  mutable prev_gentable_blocks : int list;
  (* The table referenced by the *other* superblock slot. Kept
     allocated until that slot is overwritten: if the crash drops the
     newest superblock, recovery falls back to the other slot, whose
     table must still be intact on disk. *)
  mutable gentable_mirror_blocks : int list;
  mutable prev_gentable_mirror_blocks : int list;
  mutable gentable_csum : int64;     (* hash of the encoded table *)
  mutable open_gen : (gen * int) option; (* generation being built, working root *)
  mutable pending_pages : (int * Blockdev.content) list; (* data block writes *)
  mutable prot : protection;
  csums : (int, int64) Hashtbl.t;    (* block -> expected content hash *)
  mirrors : (int, int) Hashtbl.t;    (* primary block -> mirror block *)
  io : io_stats;
  mutable repair_log : (int * repair_origin) list;
  mutable quarantined : (gen * string) list;
  provs : (gen, provenance) Hashtbl.t;
  mutable obs_counters : counters option;
  mutable obs_spans : Span.t option;
  mutable obs_probes : Probe.t option;
  gen_durable : (gen, Duration.t) Hashtbl.t;
  (* Committed generation -> when its superblock (hence everything it
     references) is durable. The pipeline's per-generation horizon:
     awaiting this covers exactly one epoch's writes, unlike the old
     whole-array [busy_until] barrier. *)
  mutable sb_horizon : Duration.t;
  (* Completion time of the newest superblock write. Each superblock
     is ordered after the previous one (written with [not_before] at
     least this), so superblock durability is monotone in commit
     order: recovery always sees a committed *prefix* of generations,
     never a torn suffix. *)
  mutable deferred : (Duration.t * int list) list;
  (* Freed blocks parked until the first superblock written after the
     free is durable (release time, blocks), ascending. Reusing them
     earlier could tear a crash that falls back to an older superblock
     still referencing them. *)
  mutable bbox_seq : int; (* black-box slot alternation counter *)
  mutable read_cls : Iosched.cls;
  (* The I/O class charged for store reads. [Foreground] normally;
     scrub/fsck and replication export flip it to [Background] around
     their scans so bulk verification never competes with application
     reads for reserved scheduler slack. *)
}

let open_prov t =
  match t.open_gen with
  | Some (g, _) -> Hashtbl.find_opt t.provs g
  | None -> None

(* --- key encoding ---------------------------------------------------
   key = oid * 2^34 + kind * 2^32 + index
   kinds: 0 = record length (Imm), 1 = record chunk (Ptr), 2 = page (Ptr). *)

let kind_record_len = 0L
let kind_record_chunk = 1L
let kind_page = 2L
let kind_blob = 3L

(* FNV-1a, for content-addressing byte blobs. *)
let hash_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

(* The same hash the dedup index uses, so a corrupted block's expected
   checksum doubles as a lookup key for a surviving duplicate. *)
let checksum_content = function
  | Blockdev.Data s -> hash_string s
  | Blockdev.Seed s -> Content.hash (Content.of_seed s)
  | Blockdev.Zero -> 0L

let key ~oid ~kind ~index =
  if oid < 0 || oid >= 1 lsl 29 then invalid_arg "Store: oid out of range";
  if index < 0 then invalid_arg "Store: negative index";
  Int64.add
    (Int64.add
       (Int64.mul (Int64.of_int oid) 0x4_0000_0000L)
       (Int64.mul kind 0x1_0000_0000L))
    (Int64.of_int index)

(* --- verified reads and read repair ---------------------------------- *)

let max_read_retries = 4

(* Retry a transiently failing read with exponential backoff, charged
   to the simulated clock; persistent faults (latent sectors, dropped
   devices, exhausted retries) surface as [Error]. *)
let rec device_read_retry t block attempt =
  match Devarray.read ~cls:t.read_cls t.dev block with
  | c -> Ok c
  | exception Fault.Io_error (Fault.Transient _ as e) ->
    if attempt >= max_read_retries then Error e
    else begin
      t.io.read_retries <- t.io.read_retries + 1;
      Clock.advance (Devarray.clock t.dev)
        (Duration.scale (Devarray.profile t.dev).Profile.read_latency (1 lsl attempt));
      device_read_retry t block (attempt + 1)
    end
  | exception Fault.Io_error e -> Error e

let heal t block content origin =
  (* Best-effort rewrite: restores the content and clears any latent
     error on the sector. If the rewrite itself fails the repair still
     served this read; the block stays degraded on disk. *)
  (try Devarray.write ~cls:Iosched.Background t.dev block content
   with Fault.Io_error _ -> ());
  t.repair_log <- (block, origin) :: t.repair_log;
  match origin with
  | Mirror -> t.io.repaired_from_mirror <- t.io.repaired_from_mirror + 1
  | Dedup_copy -> t.io.repaired_from_dedup <- t.io.repaired_from_dedup + 1

let try_repair t block expected cause =
  let candidates =
    (match Hashtbl.find_opt t.mirrors block with
     | Some m -> [ (m, Mirror) ]
     | None -> [])
    @
    (match expected with
     | Some h -> (
       match Dedup.peek t.dedup ~hash:h with
       | Some b when b <> block -> [ (b, Dedup_copy) ]
       | Some _ | None -> [])
     | None -> [])
  in
  let acceptable c =
    match expected with
    | Some h -> checksum_content c = h
    | None -> c <> Blockdev.Zero
  in
  let rec go = function
    | [] ->
      t.io.lost_blocks <- t.io.lost_blocks + 1;
      raise (Fail (Unreadable_block { block; cause }))
    | (src, origin) :: rest -> (
      match device_read_retry t src 0 with
      | Ok c when acceptable c ->
        heal t block c origin;
        c
      | Ok _ | Error _ -> go rest)
  in
  go candidates

(* Every store read funnels through here (including B+tree node reads,
   via [Btree.set_reader]): retry transients, verify the checksum when
   protection is on, repair from the mirror or a dedup duplicate, and
   raise a typed failure only when no copy survives. *)
let verified_read t block =
  let expected = if t.prot.verify then Hashtbl.find_opt t.csums block else None in
  match device_read_retry t block 0 with
  | Ok c -> (
    match expected with
    | Some h when checksum_content c <> h ->
      t.io.checksum_failures <- t.io.checksum_failures + 1;
      try_repair t block expected "checksum mismatch"
    | _ -> c)
  | Error e -> try_repair t block expected (Fault.describe e)

(* --- deferred frees --------------------------------------------------
   With pipelined commits, several superblocks can be in flight at
   once. A block freed between superblocks S_{j-1} and S_j becomes
   reusable only once S_j is durable: superblock durability is
   monotone (each is ordered after the previous), so from then on no
   recoverable state references the block. *)

let release_ready_frees t =
  let now = Clock.now (Devarray.clock t.dev) in
  let ready, waiting =
    List.partition (fun (at, _) -> Duration.(at <= now)) t.deferred
  in
  t.deferred <- waiting;
  List.iter (fun (_, blocks) -> Alloc.release t.alloc blocks) ready;
  if ready <> [] && Probe.on t.obs_probes Probe.Alloc_defer then
    Probe.fire (Option.get t.obs_probes) Probe.Alloc_defer
      ~dev:(Devarray.name t.dev) ~op:"release" ~gen:(-1) ~pgid:(-1) ~us:0.
      ~blocks:(List.fold_left (fun acc (_, bs) -> acc + List.length bs) 0 ready);
  ready <> []

(* Capacity-pressure hook: rather than declare the device full while
   freed blocks sit gated behind an in-flight superblock, block until
   the earliest gating superblock lands and hand the blocks back. *)
let settle_deferred_frees t =
  let released = release_ready_frees t in
  match t.deferred with
  | [] -> released
  | (at, _) :: _ ->
    let now = Clock.now (Devarray.clock t.dev) in
    Devarray.await t.dev at;
    if Probe.on t.obs_probes Probe.Alloc_defer then
      Probe.fire (Option.get t.obs_probes) Probe.Alloc_defer
        ~dev:(Devarray.name t.dev) ~op:"settle" ~gen:(-1) ~pgid:(-1)
        ~us:(Duration.to_us (Duration.sub at now))
        ~blocks:0;
    ignore (release_ready_frees t);
    true

(* --- the black-box slot ----------------------------------------------
   A single-block, store-framed payload written outside any
   generation. The flight recorder uses it to persist its capture/ack
   summary on every checkpoint, which is the only way a post-mortem
   can name epochs that were committed but never became durable: the
   per-generation ring recovered from durable generation [g] only
   knows about captures up to [g]. *)

let encode_bbox ~seq payload =
  let w = Serial.writer () in
  Serial.w_string w bbox_magic;
  Serial.w_int w seq;
  Serial.w_string w payload;
  Serial.w_int64 w (hash_string payload);
  Serial.contents w

let decode_bbox data =
  match
    let r = Serial.reader data in
    if Serial.r_string r <> bbox_magic then None
    else
      let seq = Serial.r_int r in
      let payload = Serial.r_string r in
      if Serial.r_int64 r <> hash_string payload then None
      else Some (seq, payload)
  with
  | v -> v
  | exception Serial.Corrupt _ -> None

let write_blackbox t payload =
  t.bbox_seq <- t.bbox_seq + 1;
  let framed = encode_bbox ~seq:t.bbox_seq payload in
  if String.length framed > Blockdev.block_size then
    invalid_arg "Store.write_blackbox: summary exceeds one block";
  let slot = superblock_slots + (t.bbox_seq mod blackbox_slots) in
  (* Asynchronous, unordered and out-of-band: the black box must never
     add a barrier to the capture path, and it must be able to land
     while the epoch flush queued just after it is still draining —
     otherwise a crash that loses the epoch also loses the summary
     naming it. A crash before the write completes loses this summary
     but leaves the other slot intact; a write fault is best-effort by
     the same argument. *)
  try ignore (Devarray.write_oob t.dev [ (slot, Blockdev.Data framed) ])
  with Fault.Io_error _ -> ()

let read_blackbox t =
  let read_slot slot =
    match device_read_retry t slot 0 with
    | Ok (Blockdev.Data s) -> decode_bbox s
    | Ok _ | Error _ -> None
  in
  List.init blackbox_slots (fun i -> read_slot (superblock_slots + i))
  |> List.filter_map Fun.id
  |> List.sort (fun (a, _) (b, _) -> Int.compare b a)
  |> function [] -> None | (_, payload) :: _ -> Some payload

(* Resume slot alternation above any surviving summary so reopening
   never clobbers the newest valid slot with the next write. *)
let scan_bbox_seq t =
  List.init blackbox_slots (fun i -> superblock_slots + i)
  |> List.fold_left
       (fun acc slot ->
         match device_read_retry t slot 0 with
         | Ok (Blockdev.Data s) -> (
           match decode_bbox s with Some (seq, _) -> max acc seq | None -> acc)
         | Ok _ | Error _ -> acc)
       0

(* --- construction --------------------------------------------------- *)

let make ?(dedup = true) ?prot dev =
  let prot =
    match prot with
    | Some p -> p
    | None ->
      (* A faulty device gets the integrity machinery by default; a
         perfect device keeps the lean layout. *)
      if Devarray.has_faults dev then { verify = true; mirror = true }
      else { verify = false; mirror = false }
  in
  let alloc =
    Alloc.create ~first_block:reserved_blocks
      ?capacity_blocks:(Devarray.capacity_blocks dev)
      ~stripes:(Devarray.stripes dev) ()
  in
  let tree = Btree.create ~dev ~alloc in
  let dedup_index = Dedup.create ~alloc in
  let t =
    { dev; alloc; tree; dedup = dedup_index; dedup_enabled = dedup;
      gens = Hashtbl.create 16; commit_seq = 0; next_gen = 1;
      gentable_blocks = []; prev_gentable_blocks = [];
      gentable_mirror_blocks = []; prev_gentable_mirror_blocks = [];
      gentable_csum = hash_string ""; open_gen = None; pending_pages = [];
      prot; csums = Hashtbl.create 4096; mirrors = Hashtbl.create 256;
      io = { read_retries = 0; checksum_failures = 0; repaired_from_mirror = 0;
             repaired_from_dedup = 0; lost_blocks = 0 };
      repair_log = []; quarantined = []; provs = Hashtbl.create 16;
      obs_counters = None; obs_spans = None; obs_probes = None;
      gen_durable = Hashtbl.create 16; sb_horizon = Duration.zero;
      deferred = []; bbox_seq = 0; read_cls = Iosched.Foreground }
  in
  Alloc.add_on_free alloc (fun b ->
      Hashtbl.remove t.csums b;
      match Hashtbl.find_opt t.mirrors b with
      | Some m ->
        Hashtbl.remove t.mirrors b;
        Alloc.decref alloc m
      | None -> ());
  Alloc.set_deferred_frees alloc true;
  Alloc.set_pressure_hook alloc (fun () -> settle_deferred_frees t);
  Btree.set_reader tree (fun b -> verified_read t b);
  t

(* Superblock payload is wrapped with its own checksum so a silently
   corrupted slot is rejected at recovery instead of trusted. *)
let encode_superblock t =
  let w = Serial.writer () in
  Serial.w_string w magic;
  Serial.w_int w t.commit_seq;
  Serial.w_int w t.next_gen;
  Serial.w_list w Serial.w_int t.gentable_blocks;
  Serial.w_u8 w (if t.prot.verify then 1 else 0);
  Serial.w_u8 w (if t.prot.mirror then 1 else 0);
  Serial.w_list w Serial.w_int t.gentable_mirror_blocks;
  Serial.w_int64 w t.gentable_csum;
  let payload = Serial.contents w in
  let outer = Serial.writer () in
  Serial.w_string outer payload;
  Serial.w_int64 outer (hash_string payload);
  Serial.contents outer

type superblock = {
  sb_seq : int;
  sb_next_gen : int;
  sb_table : int list;
  sb_verify : bool;
  sb_mirror : bool;
  sb_table_mirror : int list;
  sb_table_csum : int64;
}

let decode_superblock data =
  let outer = Serial.reader data in
  let payload = Serial.r_string outer in
  if Serial.r_int64 outer <> hash_string payload then None
  else
    let r = Serial.reader payload in
    if Serial.r_string r <> magic then None
    else begin
      let sb_seq = Serial.r_int r in
      let sb_next_gen = Serial.r_int r in
      let sb_table = Serial.r_list r Serial.r_int in
      let sb_verify = Serial.r_u8 r = 1 in
      let sb_mirror = Serial.r_u8 r = 1 in
      let sb_table_mirror = Serial.r_list r Serial.r_int in
      let sb_table_csum = Serial.r_int64 r in
      Some { sb_seq; sb_next_gen; sb_table; sb_verify; sb_mirror;
             sb_table_mirror; sb_table_csum }
    end

let encode_gentable t =
  let w = Serial.writer () in
  let entries =
    Hashtbl.fold (fun g e acc -> (g, e) :: acc) t.gens []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Serial.w_list w (fun w (g, e) ->
      Serial.w_int w g;
      Serial.w_int w e.root;
      Serial.w_option w Serial.w_string e.name)
    entries;
  if t.prot.verify then begin
    let cs =
      Hashtbl.fold (fun b c acc -> (b, c) :: acc) t.csums []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    Serial.w_list w (fun w (b, c) ->
        Serial.w_int w b;
        Serial.w_int64 w c)
      cs
  end;
  if t.prot.mirror then begin
    let ms =
      Hashtbl.fold (fun b m acc -> (b, m) :: acc) t.mirrors []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    Serial.w_list w (fun w (b, m) ->
        Serial.w_int w b;
        Serial.w_int w m)
      ms
  end;
  (* Provenance of committed generations rides in the table so offline
     inspection of a reopened store sees write-time accounting too. *)
  let pvs =
    Hashtbl.fold
      (fun g p acc -> if Hashtbl.mem t.gens g then (g, p) :: acc else acc)
      t.provs []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Serial.w_list w (fun w (_, p) ->
      Serial.w_int w p.pv_gen;
      Serial.w_int w p.pv_records;
      Serial.w_int w p.pv_pages;
      Serial.w_int w p.pv_blobs;
      Serial.w_int w p.pv_logical_bytes;
      Serial.w_int w p.pv_data_blocks;
      Serial.w_int w p.pv_dedup_hits;
      Serial.w_int w p.pv_dedup_saved_bytes;
      Serial.w_int w p.pv_mirror_blocks;
      Serial.w_int w p.pv_meta_blocks;
      Serial.w_int w p.pv_commit_blocks)
    pvs;
  Serial.contents w

let decode_gentable ~verify ~mirror data =
  let r = Serial.reader data in
  let entries =
    Serial.r_list r (fun r ->
        let g = Serial.r_int r in
        let root = Serial.r_int r in
        let name = Serial.r_option r Serial.r_string in
        (g, { root; name }))
  in
  let csums =
    if verify then
      Serial.r_list r (fun r ->
          let b = Serial.r_int r in
          let c = Serial.r_int64 r in
          (b, c))
    else []
  in
  let mirrors =
    if mirror then
      Serial.r_list r (fun r ->
          let b = Serial.r_int r in
          let m = Serial.r_int r in
          (b, m))
    else []
  in
  let provs =
    Serial.r_list r (fun r ->
        let pv_gen = Serial.r_int r in
        let pv_records = Serial.r_int r in
        let pv_pages = Serial.r_int r in
        let pv_blobs = Serial.r_int r in
        let pv_logical_bytes = Serial.r_int r in
        let pv_data_blocks = Serial.r_int r in
        let pv_dedup_hits = Serial.r_int r in
        let pv_dedup_saved_bytes = Serial.r_int r in
        let pv_mirror_blocks = Serial.r_int r in
        let pv_meta_blocks = Serial.r_int r in
        let pv_commit_blocks = Serial.r_int r in
        { pv_gen; pv_records; pv_pages; pv_blobs; pv_logical_bytes;
          pv_data_blocks; pv_dedup_hits; pv_dedup_saved_bytes;
          pv_mirror_blocks; pv_meta_blocks; pv_commit_blocks })
  in
  (entries, csums, mirrors, provs)

let format ?dedup ?protection ~dev () =
  let t = make ?dedup ?prot:protection dev in
  (* Empty gen table: superblock alone describes the store. *)
  Devarray.write dev 0 (Blockdev.Data (encode_superblock t));
  Devarray.flush dev;
  t

let device t = t.dev
let protection t = t.prot
let read_class t = t.read_cls
let set_read_class t cls = t.read_cls <- cls

let set_observability t ?metrics ?spans ?probes () =
  t.obs_counters <-
    Option.map
      (fun m ->
        let pre = "store." ^ Devarray.name t.dev ^ "." in
        { c_commits = Metrics.counter m (pre ^ "commits");
          c_records_put = Metrics.counter m (pre ^ "records_put");
          c_pages_put = Metrics.counter m (pre ^ "pages_put");
          c_flush_us = Metrics.histogram m (pre ^ "flush_us") })
      metrics;
  t.obs_spans <- spans;
  t.obs_probes <- probes

(* --- commit ---------------------------------------------------------- *)

let chunk_string data =
  let n = String.length data in
  let nchunks = (n + Blockdev.block_size - 1) / Blockdev.block_size in
  List.init nchunks (fun i ->
      String.sub data (i * Blockdev.block_size)
        (min Blockdev.block_size (n - (i * Blockdev.block_size))))

let require_open t =
  match t.open_gen with
  | Some g -> g
  | None -> invalid_arg "Store: no open generation"

let require_closed t =
  if t.open_gen <> None then invalid_arg "Store: a generation is already open"

let begin_generation t ?base () =
  require_closed t;
  let g = t.next_gen in
  t.next_gen <- g + 1;
  Btree.begin_epoch t.tree g;
  let base =
    match base with
    | Some b -> Some b
    | None ->
      Hashtbl.fold (fun g' _ acc ->
          match acc with Some best when best >= g' -> acc | _ -> Some g')
        t.gens None
  in
  let root =
    match base with
    | None -> Btree.empty_root t.tree
    | Some b -> (
      match Hashtbl.find_opt t.gens b with
      | None -> invalid_arg (Printf.sprintf "Store: unknown base generation %d" b)
      | Some e ->
        (* The working tree holds its own reference; the base keeps
           its generation-table reference. *)
        Btree.retain_root t.tree e.root;
        e.root)
  in
  t.open_gen <- Some (g, root);
  Hashtbl.replace t.provs g (fresh_provenance g);
  g

let tree_insert t key value =
  let g, root = require_open t in
  let root' = Btree.insert t.tree ~root ~key value in
  t.open_gen <- Some (g, root')

let note_csum t block content =
  if t.prot.verify then Hashtbl.replace t.csums block (checksum_content content)

(* Queue a data block for the commit flush, recording its checksum and
   (when mirroring) allocating and queueing a replica in the same
   batch. *)
let queue_data t block content =
  note_csum t block content;
  t.pending_pages <- (block, content) :: t.pending_pages;
  (match open_prov t with
   | Some p -> p.pv_data_blocks <- p.pv_data_blocks + 1
   | None -> ());
  if t.prot.mirror && not (Hashtbl.mem t.mirrors block) then begin
    let m = Alloc.alloc t.alloc in
    Hashtbl.replace t.mirrors block m;
    t.pending_pages <- (m, content) :: t.pending_pages;
    match open_prov t with
    | Some p -> p.pv_mirror_blocks <- p.pv_mirror_blocks + 1
    | None -> ()
  end

(* A dedup hit (or an intra-batch duplicate) is one avoided write:
   credit the generation's provenance and the index's savings ledger. *)
let note_dedup_saved t ~hits ~bytes =
  if hits > 0 then begin
    Dedup.note_saved t.dedup ~bytes;
    match open_prov t with
    | Some p ->
      p.pv_dedup_hits <- p.pv_dedup_hits + hits;
      p.pv_dedup_saved_bytes <- p.pv_dedup_saved_bytes + bytes
    | None -> ()
  end

let put_record t ~oid data =
  let _, root = require_open t in
  (match t.obs_counters with
   | Some c -> Metrics.incr c.c_records_put
   | None -> ());
  (match open_prov t with
   | Some p ->
     p.pv_records <- p.pv_records + 1;
     p.pv_logical_bytes <- p.pv_logical_bytes + String.length data
   | None -> ());
  (* Stale chunks from a longer previous record are overwritten with
     immediates so their blocks are released. *)
  let old_chunks =
    match Btree.find t.tree ~root (key ~oid ~kind:kind_record_len ~index:1) with
    | Some (Btree.Imm n) -> Int64.to_int n
    | Some (Btree.Ptr _) | None -> 0
  in
  let chunks = chunk_string data in
  let nchunks = List.length chunks in
  List.iteri
    (fun i chunk ->
      let block = Alloc.alloc t.alloc in
      queue_data t block (Blockdev.Data chunk);
      tree_insert t (key ~oid ~kind:kind_record_chunk ~index:i) (Btree.Ptr block))
    chunks;
  let rec blank i =
    if i < old_chunks then begin
      tree_insert t (key ~oid ~kind:kind_record_chunk ~index:i) (Btree.Imm 0L);
      blank (i + 1)
    end
  in
  blank nchunks;
  tree_insert t (key ~oid ~kind:kind_record_len ~index:0)
    (Btree.Imm (Int64.of_int (String.length data)));
  tree_insert t (key ~oid ~kind:kind_record_len ~index:1)
    (Btree.Imm (Int64.of_int nchunks))

let put_page t ~oid ~pindex ~seed =
  let _ = require_open t in
  (match t.obs_counters with
   | Some c -> Metrics.incr c.c_pages_put
   | None -> ());
  (match open_prov t with
   | Some p ->
     p.pv_pages <- p.pv_pages + 1;
     p.pv_logical_bytes <- p.pv_logical_bytes + Blockdev.block_size
   | None -> ());
  let hash = Content.hash (Content.of_seed seed) in
  let block =
    match (if t.dedup_enabled then Dedup.find t.dedup ~hash else None) with
    | Some block ->
      Alloc.incref t.alloc block;
      note_dedup_saved t ~hits:1 ~bytes:Blockdev.block_size;
      block
    | None ->
      let block = Alloc.alloc t.alloc in
      queue_data t block (Blockdev.Seed seed);
      if t.dedup_enabled then Dedup.add t.dedup ~hash ~block;
      block
  in
  tree_insert t (key ~oid ~kind:kind_page ~index:pindex) (Btree.Ptr block)

(* Batched page ingest: dedup hits resolve to existing blocks; the
   distinct misses share one stripe-aware extent of fresh contiguous
   logical blocks, so the background flush fans the batch out as one
   contiguous physical run per device instead of scattered singleton
   writes. *)
let put_pages t ~oid pages =
  let _ = require_open t in
  let n = Array.length pages in
  (match t.obs_counters with
   | Some c -> Metrics.add c.c_pages_put n
   | None -> ());
  (match open_prov t with
   | Some p ->
     p.pv_pages <- p.pv_pages + n;
     p.pv_logical_bytes <- p.pv_logical_bytes + (n * Blockdev.block_size)
   | None -> ());
  if n > 0 then begin
    let hit = Array.make n (-1) in       (* resolved dedup-hit block, or -1 *)
    let slot_of = Array.make n (-1) in   (* index into the fresh extent *)
    let fresh_slots = Hashtbl.create 16 in
    let fresh_seeds = ref [] in
    let nmiss = ref 0 in
    let miss seed =
      let s = !nmiss in
      fresh_seeds := seed :: !fresh_seeds;
      incr nmiss;
      s
    in
    Array.iteri
      (fun i (_, seed) ->
        if not t.dedup_enabled then slot_of.(i) <- miss seed
        else begin
          let hash = Content.hash (Content.of_seed seed) in
          match Dedup.find t.dedup ~hash with
          | Some block ->
            Alloc.incref t.alloc block;
            hit.(i) <- block
          | None -> (
            match Hashtbl.find_opt fresh_slots hash with
            | Some s -> slot_of.(i) <- s
            | None ->
              let s = miss seed in
              Hashtbl.replace fresh_slots hash s;
              slot_of.(i) <- s)
        end)
      pages;
    (* Every page that did not need a fresh slot — a dedup hit or an
       intra-batch duplicate — is one avoided block write. *)
    note_dedup_saved t ~hits:(n - !nmiss) ~bytes:((n - !nmiss) * Blockdev.block_size);
    let ext = Alloc.alloc_extent t.alloc !nmiss in
    let seeds = Array.of_list (List.rev !fresh_seeds) in
    Array.iteri
      (fun s seed ->
        let block = ext.(s) in
        queue_data t block (Blockdev.Seed seed);
        if t.dedup_enabled then
          Dedup.add t.dedup ~hash:(Content.hash (Content.of_seed seed)) ~block)
      seeds;
    (* The first reference to a fresh block consumes the allocation's
       refcount; intra-batch duplicates add their own. *)
    let extent_used = Array.make !nmiss false in
    Array.iteri
      (fun i (pindex, _) ->
        let block =
          if hit.(i) >= 0 then hit.(i)
          else begin
            let s = slot_of.(i) in
            let b = ext.(s) in
            if extent_used.(s) then Alloc.incref t.alloc b
            else extent_used.(s) <- true;
            b
          end
        in
        tree_insert t (key ~oid ~kind:kind_page ~index:pindex) (Btree.Ptr block))
      pages
  end

let put_blob t ~oid ~index data =
  let _ = require_open t in
  if String.length data > Blockdev.block_size then
    invalid_arg "Store.put_blob: blob exceeds block size";
  (match open_prov t with
   | Some p ->
     p.pv_blobs <- p.pv_blobs + 1;
     p.pv_logical_bytes <- p.pv_logical_bytes + String.length data
   | None -> ());
  let hash = hash_string data in
  let block =
    match (if t.dedup_enabled then Dedup.find t.dedup ~hash else None) with
    | Some block ->
      Alloc.incref t.alloc block;
      note_dedup_saved t ~hits:1 ~bytes:(String.length data);
      block
    | None ->
      let block = Alloc.alloc t.alloc in
      queue_data t block (Blockdev.Data data);
      if t.dedup_enabled then Dedup.add t.dedup ~hash ~block;
      block
  in
  tree_insert t (key ~oid ~kind:kind_blob ~index) (Btree.Ptr block)

(* Checksum and mirror the B+tree node flush: observes the queued node
   writes and appends the replica writes to the same submission. *)
let meta_tee t writes =
  let extra = ref [] in
  List.iter
    (fun (b, c) ->
      note_csum t b c;
      if t.prot.mirror then begin
        let m =
          match Hashtbl.find_opt t.mirrors b with
          | Some m -> m
          | None ->
            let m = Alloc.alloc t.alloc in
            Hashtbl.replace t.mirrors b m;
            m
        in
        extra := (m, c) :: !extra
      end)
    writes;
  List.rev !extra

let write_superblock ?(after = Duration.zero) t =
  (* Allocate and queue the new generation table (and its mirror)
     before touching any in-memory state: an out-of-space or device
     failure here unwinds cleanly, with the fresh blocks reclaimed by
     the rollback rebuild. Only then free the table referenced by the
     superblock slot this write is about to overwrite (the other slot
     still points at [t.gentable_blocks]; the deferral pen keeps both
     tables unreusable until this superblock lands).

     The superblock is ordered after exactly its own dependencies —
     the table chunks just queued, the caller's completion group
     ([after], covering this generation's data and tree writes), and
     the previous superblock ([sb_horizon], which transitively covers
     every older generation). That replaces the old whole-array
     commit barrier: unrelated app I/O and *younger* epochs sharing
     the queues no longer gate this commit, yet a durable superblock
     still implies durable contents, and superblock durability stays
     monotone in commit order (the crash-prefix invariant). *)
  let table = encode_gentable t in
  let chunks = chunk_string table in
  let blocks = List.map (fun chunk -> (Alloc.alloc t.alloc, chunk)) chunks in
  let mirror_blocks =
    if t.prot.mirror then List.map (fun chunk -> (Alloc.alloc t.alloc, chunk)) chunks
    else []
  in
  let table_done =
    Devarray.write_async ~cls:Iosched.Deadline t.dev
      (List.map (fun (b, chunk) -> (b, Blockdev.Data chunk)) (blocks @ mirror_blocks))
  in
  List.iter (fun b -> Alloc.decref t.alloc b) t.prev_gentable_blocks;
  List.iter (fun b -> Alloc.decref t.alloc b) t.prev_gentable_mirror_blocks;
  t.prev_gentable_blocks <- t.gentable_blocks;
  t.prev_gentable_mirror_blocks <- t.gentable_mirror_blocks;
  t.gentable_blocks <- List.map fst blocks;
  t.gentable_mirror_blocks <- List.map fst mirror_blocks;
  t.gentable_csum <- hash_string table;
  t.commit_seq <- t.commit_seq + 1;
  let slot = t.commit_seq mod superblock_slots in
  let not_before = Duration.max after (Duration.max table_done t.sb_horizon) in
  let durable_at =
    Devarray.write_async ~not_before ~cls:Iosched.Deadline t.dev
      [ (slot, Blockdev.Data (encode_superblock t)) ]
  in
  (* Blocks freed since the previous superblock become reusable once
     this one is durable. *)
  (match Alloc.take_parked t.alloc with
   | [] -> ()
   | parked ->
     if Probe.on t.obs_probes Probe.Alloc_defer then
       Probe.fire (Option.get t.obs_probes) Probe.Alloc_defer
         ~dev:(Devarray.name t.dev) ~op:"park" ~gen:(-1) ~pgid:(-1) ~us:0.
         ~blocks:(List.length parked);
     t.deferred <- t.deferred @ [ (durable_at, parked) ]);
  t.sb_horizon <- durable_at;
  ignore (release_ready_frees t);
  durable_at

(* --- recovery core (shared by open, rollback and scrub) -------------- *)

exception Quarantine of gen * string

(* Rebuild reference counts by walking every generation tree: a
   block's count is the number of edges (parent links, value pointers,
   generation roots, table entries) that reach it. Each node's
   outgoing edges are counted exactly once, on first visit. A
   generation whose walk hits an unrepairable block is quarantined —
   dropped from the store and reported lost — and the walk restarts
   over the survivors. *)
let recover_refcounts t =
  let rec attempt () =
    Alloc.reset t.alloc;
    Dedup.reset t.dedup;
    List.iter (Alloc.mark_live t.alloc) t.gentable_blocks;
    List.iter (Alloc.mark_live t.alloc) t.prev_gentable_blocks;
    List.iter (Alloc.mark_live t.alloc) t.gentable_mirror_blocks;
    List.iter (Alloc.mark_live t.alloc) t.prev_gentable_mirror_blocks;
    let visited = Hashtbl.create 4096 in
    let mark_mirror block =
      match Hashtbl.find_opt t.mirrors block with
      | Some m -> Alloc.mark_live t.alloc m
      | None -> ()
    in
    let rec walk block =
      Alloc.mark_live t.alloc block;
      if not (Hashtbl.mem visited block) then begin
        Hashtbl.replace visited block ();
        mark_mirror block;
        match Btree.view t.tree block with
        | Btree.Internal_view children -> List.iter walk children
        | Btree.Leaf_view entries ->
          List.iter
            (fun (_, v) ->
              match v with
              | Btree.Ptr data_block ->
                Alloc.mark_live t.alloc data_block;
                (* Rebuild the dedup index from page blocks. *)
                if not (Hashtbl.mem visited data_block) then begin
                  Hashtbl.replace visited data_block ();
                  mark_mirror data_block;
                  (* Re-add content addresses. Identical content may sit
                     in several blocks (record chunks are not deduped at
                     write time), so first mapping wins. *)
                  let add_if_absent hash =
                    if Dedup.peek t.dedup ~hash = None then
                      Dedup.add t.dedup ~hash ~block:data_block
                  in
                  match verified_read t data_block with
                  | Blockdev.Seed s -> add_if_absent (Content.hash (Content.of_seed s))
                  | Blockdev.Data d -> add_if_absent (hash_string d)
                  | Blockdev.Zero -> ()
                end
              | Btree.Imm _ -> ())
            entries
      end
    in
    let gens_sorted =
      Hashtbl.fold (fun g e acc -> (g, e) :: acc) t.gens []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    match
      List.iter
        (fun (g, e) ->
          try walk e.root with
          | Fail (Unreadable_block { block; cause }) ->
            raise (Quarantine (g, Printf.sprintf "block %d: %s" block cause))
          | Serial.Corrupt msg -> raise (Quarantine (g, msg)))
        gens_sorted
    with
    | () -> ()
    | exception Quarantine (g, reason) ->
      Hashtbl.remove t.gens g;
      Hashtbl.remove t.provs g;
      t.quarantined <- (g, reason) :: t.quarantined;
      attempt ()
  in
  attempt ()

(* After a rebuild, drop integrity records of blocks that did not
   survive ([Alloc.reset] does not fire the free hooks). *)
let prune_protection t =
  let dead_csums =
    Hashtbl.fold
      (fun b _ acc -> if Alloc.refcount t.alloc b = 0 then b :: acc else acc)
      t.csums []
  in
  List.iter (Hashtbl.remove t.csums) dead_csums;
  let dead_mirrors =
    Hashtbl.fold
      (fun b _ acc -> if Alloc.refcount t.alloc b = 0 then b :: acc else acc)
      t.mirrors []
  in
  List.iter (Hashtbl.remove t.mirrors) dead_mirrors

let rebuild t =
  (* Cached nodes may describe state the device never saw (dirty nodes
     of an aborted generation); recovery trusts only the device. *)
  Btree.reset_cache t.tree;
  recover_refcounts t;
  prune_protection t;
  (* Deferred frees still gated by an in-flight superblock are
     quarantined rather than released: an older superblock referencing
     them could still win a post-crash recovery. They leak as holes
     the fresh pointer skips — reclaimed at the next full reopen. *)
  List.iter
    (fun (_, blocks) -> List.iter (Alloc.bump_fresh t.alloc) blocks)
    t.deferred;
  t.deferred <- []

(* --- commit (continued) ---------------------------------------------- *)

let note_flush t ~gen ~started ~durable_at ~data_blocks =
  (match t.obs_counters with
   | Some c ->
     Metrics.incr c.c_commits;
     Metrics.observe_duration c.c_flush_us (Duration.sub durable_at started)
   | None -> ());
  (match t.obs_spans with
   | Some spans ->
     Span.record spans ~track:("store." ^ Devarray.name t.dev) ~name:"store.flush"
       ~attrs:
         [ ("gen", string_of_int gen); ("data_blocks", string_of_int data_blocks) ]
       ~start_at:started ~end_at:durable_at ()
   | None -> ());
  if Probe.on t.obs_probes Probe.Store_commit then
    Probe.fire (Option.get t.obs_probes) Probe.Store_commit
      ~dev:(Devarray.name t.dev) ~op:"commit" ~gen ~pgid:(-1)
      ~us:(Duration.to_us (Duration.sub durable_at started))
      ~blocks:data_blocks

let commit_unchecked t ?name ?(cls = Iosched.Flush) () =
  let g, root = require_open t in
  let flush_started = Clock.now (Devarray.clock t.dev) in
  t.open_gen <- None;
  Hashtbl.replace t.gens g { root; name };
  (* Data pages fan out across all stripes (per-device extents,
     overlapping in simulated time); tree nodes follow on whichever
     stripes their blocks map to; the superblock waits on the max of
     this epoch's per-device completion times — tracked by a
     completion group so younger epochs and unrelated traffic sharing
     the queues don't gate it. *)
  ignore (Devarray.begin_group t.dev);
  let data_batch = List.rev t.pending_pages in
  t.pending_pages <- [];
  let data_blocks = List.length data_batch in
  if data_batch <> [] then ignore (Devarray.write_async ~cls t.dev data_batch);
  let prov = Hashtbl.find_opt t.provs g in
  (* The tee sees every flushed tree node, so provenance counts them
     even when the protection machinery (the tee's other job) is off. *)
  let counting_tee writes =
    let extra =
      if t.prot.verify || t.prot.mirror then meta_tee t writes else []
    in
    (match prov with
     | Some p ->
       p.pv_meta_blocks <- p.pv_meta_blocks + List.length writes;
       p.pv_mirror_blocks <- p.pv_mirror_blocks + List.length extra
     | None -> ());
    extra
  in
  ignore (Btree.flush_dirty ~tee:counting_tee ~cls t.tree);
  (* The gentable carries the provenance rows, so the commit-block
     count must be final before the table is encoded. Ints serialize
     fixed-width: a trial encoding has the same size as the real one,
     so the chunk count measured here is exact. *)
  (match prov with
   | Some p ->
     let chunks = List.length (chunk_string (encode_gentable t)) in
     p.pv_commit_blocks <-
       1 (* superblock *) + (chunks * if t.prot.mirror then 2 else 1)
   | None -> ());
  let after = Devarray.group_completion (Devarray.end_group t.dev) in
  let durable_at = write_superblock ~after t in
  let g, durable_at =
    if (Devarray.profile t.dev).Profile.volatile_cache then begin
      (* No power-loss protection: a synchronous flush is the only way
         to durability, and the application pays for it. *)
      Devarray.flush t.dev;
      (g, Clock.now (Devarray.clock t.dev))
    end
    else (g, durable_at)
  in
  Hashtbl.replace t.gen_durable g durable_at;
  note_flush t ~gen:g ~started:flush_started ~durable_at ~data_blocks;
  (g, durable_at)

let rollback t g =
  Hashtbl.remove t.gens g;
  Hashtbl.remove t.provs g;
  Hashtbl.remove t.gen_durable g;
  t.open_gen <- None;
  t.pending_pages <- [];
  Devarray.discard_group t.dev;
  rebuild t

let commit_result t ?name ?cls () =
  let g0 = match t.open_gen with Some (g, _) -> g | None -> fst (require_open t) in
  match commit_unchecked t ?name ?cls () with
  | res -> Ok res
  | exception Alloc.Out_of_space ->
    rollback t g0;
    Error Out_of_space
  | exception Fault.Io_error e ->
    (try rollback t g0 with Fault.Io_error _ | Fail _ -> ());
    Error (Device_failed (Fault.describe e))

let commit t ?name ?cls () =
  match commit_result t ?name ?cls () with
  | Ok res -> res
  | Error e -> raise (Fail e)

let abort_generation t =
  match t.open_gen with
  | None -> ()
  | Some (g, _) ->
    (* Discard the working tree wholesale and recompute allocator,
       dedup and protection state from the committed generations —
       robust even when the abort was triggered halfway through an
       allocation failure. *)
    Hashtbl.remove t.provs g;
    t.open_gen <- None;
    t.pending_pages <- [];
    Devarray.discard_group t.dev;
    rebuild t

let wait_durable t at = Devarray.await t.dev at

(* --- pipeline durability --------------------------------------------- *)

let gen_durable_at t g = Hashtbl.find_opt t.gen_durable g

let wait_all_durable t =
  if (Devarray.profile t.dev).Profile.volatile_cache then Devarray.flush t.dev
  else Devarray.await t.dev t.sb_horizon;
  ignore (release_ready_frees t)

let inflight_generations t =
  let now = Clock.now (Devarray.clock t.dev) in
  Hashtbl.fold
    (fun g at acc -> if Duration.(at > now) then g :: acc else acc)
    t.gen_durable []
  |> List.sort Int.compare

let has_open_generation t = t.open_gen <> None

(* --- reading --------------------------------------------------------- *)

let gen_root t g =
  match Hashtbl.find_opt t.gens g with
  | Some e -> Some e.root
  | None -> (
    (* Reading from the open generation is allowed (restores from the
       working tree are not, but tests peek). *)
    match t.open_gen with
    | Some (og, root) when og = g -> Some root
    | _ -> None)

let read_block_data t block =
  match verified_read t block with
  | Blockdev.Data s -> s
  | Blockdev.Seed _ | Blockdev.Zero ->
    raise (Serial.Corrupt (Printf.sprintf "Store: block %d is not a data block" block))

let read_record t g ~oid =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_record_len ~index:0) with
    | None | Some (Btree.Ptr _) -> None
    | Some (Btree.Imm len64) ->
      let len = Int64.to_int len64 in
      let nchunks = (len + Blockdev.block_size - 1) / Blockdev.block_size in
      let buf = Buffer.create len in
      for i = 0 to nchunks - 1 do
        match Btree.find t.tree ~root (key ~oid ~kind:kind_record_chunk ~index:i) with
        | Some (Btree.Ptr block) -> Buffer.add_string buf (read_block_data t block)
        | Some (Btree.Imm _) | None ->
          raise (Serial.Corrupt (Printf.sprintf "Store: missing chunk %d of oid %d" i oid))
      done;
      Some (Buffer.contents buf))

let read_blob t g ~oid ~index =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_blob ~index) with
    | Some (Btree.Ptr block) -> Some (read_block_data t block)
    | Some (Btree.Imm _) | None -> None)

let page_of_content block = function
  | Blockdev.Seed s -> s
  | Blockdev.Zero -> 0L
  | Blockdev.Data _ ->
    raise (Serial.Corrupt (Printf.sprintf "Store: page block %d holds metadata" block))

let read_page t g ~oid ~pindex =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_page ~index:pindex) with
    | Some (Btree.Ptr block) -> Some (page_of_content block (verified_read t block))
    | Some (Btree.Imm _) | None -> None)

let read_pages_batch t g ~oid ~pindexes =
  match gen_root t g with
  | None -> [||]
  | Some root ->
    (* Preallocated arrays end to end: locate into fixed buffers, one
       striped array read, map in place — no list churn on the restore
       hot path. *)
    let n = Array.length pindexes in
    let found = Array.make n 0 in
    let blocks = Array.make n 0 in
    let m = ref 0 in
    for i = 0 to n - 1 do
      match
        Btree.find t.tree ~root (key ~oid ~kind:kind_page ~index:pindexes.(i))
      with
      | Some (Btree.Ptr block) ->
        found.(!m) <- pindexes.(i);
        blocks.(!m) <- block;
        incr m
      | Some (Btree.Imm _) | None -> ()
    done;
    let m = !m in
    let contents = Devarray.read_many_arr ~cls:t.read_cls t.dev (Array.sub blocks 0 m) in
    Array.init m (fun i ->
        let block = blocks.(i) in
        (* Batch reads are best-effort DMA: a latent sector comes back
           [Zero]. The checksum catches the substitution (and any
           silent corruption) and the single-block verified path
           re-reads and repairs. *)
        let content =
          match
            (if t.prot.verify then Hashtbl.find_opt t.csums block else None)
          with
          | Some h when checksum_content contents.(i) <> h ->
            t.io.checksum_failures <- t.io.checksum_failures + 1;
            verified_read t block
          | _ -> contents.(i)
        in
        (found.(i), page_of_content block content))

let peek_page t g ~oid ~pindex =
  match gen_root t g with
  | None -> None
  | Some root -> (
    match Btree.find t.tree ~root (key ~oid ~kind:kind_page ~index:pindex) with
    | Some (Btree.Ptr block) ->
      let content = Devarray.peek t.dev block in
      let content =
        match (if t.prot.verify then Hashtbl.find_opt t.csums block else None) with
        | Some h when checksum_content content <> h ->
          t.io.checksum_failures <- t.io.checksum_failures + 1;
          verified_read t block
        | _ -> content
      in
      Some (page_of_content block content)
    | Some (Btree.Imm _) | None -> None)

let fold_page_indexes t g ~oid ~init ~f =
  match gen_root t g with
  | None -> init
  | Some root ->
    let lo = key ~oid ~kind:kind_page ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init ~f:(fun acc k v ->
        match v with
        | Btree.Ptr _ -> f acc (Int64.to_int (Int64.logand k 0xFFFF_FFFFL))
        | Btree.Imm _ -> acc)

let fold_pages t g ~oid ~init ~f =
  match gen_root t g with
  | None -> init
  | Some root ->
    let lo = key ~oid ~kind:kind_page ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init ~f:(fun acc k v ->
        match v with
        | Btree.Ptr block ->
          let pindex = Int64.to_int (Int64.logand k 0xFFFF_FFFFL) in
          f acc pindex (page_of_content block (verified_read t block))
        | Btree.Imm _ -> acc)

let fold_blobs t g ~oid ~init ~f =
  match gen_root t g with
  | None -> init
  | Some root ->
    let lo = key ~oid ~kind:kind_blob ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init ~f:(fun acc k v ->
        match v with
        | Btree.Ptr block ->
          f acc (Int64.to_int (Int64.logand k 0xFFFF_FFFFL)) (read_block_data t block)
        | Btree.Imm _ -> acc)

let page_count t g ~oid =
  match gen_root t g with
  | None -> 0
  | Some root ->
    let lo = key ~oid ~kind:kind_page ~index:0 in
    let hi = Int64.add lo 0xFFFF_FFFFL in
    Btree.fold_range t.tree ~root ~lo ~hi ~init:0 ~f:(fun acc _ v ->
        match v with Btree.Ptr _ -> acc + 1 | Btree.Imm _ -> acc)

let oids t g =
  match gen_root t g with
  | None -> []
  | Some root ->
    Btree.fold_range t.tree ~root ~lo:Int64.min_int ~hi:Int64.max_int ~init:[]
      ~f:(fun acc k _ ->
        let oid = Int64.to_int (Int64.div k 0x4_0000_0000L) in
        match acc with o :: _ when o = oid -> acc | _ -> oid :: acc)
    |> List.rev

(* --- generations ----------------------------------------------------- *)

let generations t =
  Hashtbl.fold (fun g _ acc -> g :: acc) t.gens [] |> List.sort Int.compare

let latest t =
  match generations t with [] -> None | gens -> Some (List.nth gens (List.length gens - 1))

let named t =
  Hashtbl.fold
    (fun g e acc -> match e.name with Some n -> (n, g) :: acc | None -> acc)
    t.gens []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find_named t name = List.assoc_opt name (named t)

let settle_durable t durable =
  if (Devarray.profile t.dev).Profile.volatile_cache then Devarray.flush t.dev
  else Devarray.await t.dev durable

let name_generation t g name =
  match Hashtbl.find_opt t.gens g with
  | None -> invalid_arg (Printf.sprintf "Store.name_generation: unknown generation %d" g)
  | Some e ->
    Hashtbl.replace t.gens g { e with name = Some name };
    settle_durable t (write_superblock t)

let gc t ~keep =
  require_closed t;
  let victims =
    List.filter (fun g -> not (List.mem g keep)) (generations t)
  in
  let before = Alloc.live_blocks t.alloc in
  List.iter
    (fun g ->
      match Hashtbl.find_opt t.gens g with
      | Some e ->
        Hashtbl.remove t.gens g;
        Hashtbl.remove t.provs g;
        Hashtbl.remove t.gen_durable g;
        Btree.release_root t.tree e.root
      | None -> ())
    victims;
  (* The release superblock drains in the background like any other
     commit; the deferral pen keeps the victims' blocks unreusable
     until it is durable, so there is nothing to await here. A
     volatile write cache still needs the explicit flush — completion
     times are not durability there. *)
  if victims <> [] then begin
    ignore (write_superblock t);
    if (Devarray.profile t.dev).Profile.volatile_cache then Devarray.flush t.dev
  end;
  before - Alloc.live_blocks t.alloc

(* --- recovery -------------------------------------------------------- *)

let open_ ~dev =
  (* A transient error on a superblock slot must not silently discard
     the newer slot; retry before giving up on it. *)
  let rec read_slot_retry slot attempt =
    match Devarray.read dev slot with
    | c -> Some c
    | exception Fault.Io_error (Fault.Transient _) when attempt < max_read_retries ->
      read_slot_retry slot (attempt + 1)
    | exception Fault.Io_error _ -> None
  in
  let read_slot slot =
    match read_slot_retry slot 0 with
    | Some (Blockdev.Data s) -> (try decode_superblock s with Serial.Corrupt _ -> None)
    | Some (Blockdev.Seed _) | Some Blockdev.Zero | None -> None
  in
  let candidates =
    List.filter_map read_slot (List.init superblock_slots Fun.id)
    |> List.sort (fun a b -> Int.compare b.sb_seq a.sb_seq)
  in
  let try_candidate sb =
    let t = make dev in
    t.prot <- { verify = sb.sb_verify; mirror = sb.sb_mirror };
    t.commit_seq <- sb.sb_seq;
    t.next_gen <- sb.sb_next_gen;
    t.gentable_blocks <- sb.sb_table;
    t.gentable_mirror_blocks <- sb.sb_table_mirror;
    t.gentable_csum <- sb.sb_table_csum;
    (* A store that never committed a generation has no table. *)
    if sb.sb_table = [] then Ok t
    else begin
      let read_chunk b =
        match device_read_retry t b 0 with
        | Ok (Blockdev.Data s) -> Some s
        | Ok _ | Error _ -> None
      in
      let read_table blocks =
        let rec go acc = function
          | [] -> Some (String.concat "" (List.rev acc))
          | b :: rest -> (
            match read_chunk b with
            | Some s -> go (s :: acc) rest
            | None -> None)
        in
        go [] blocks
      in
      let checked blocks =
        match read_table blocks with
        | Some s when hash_string s = sb.sb_table_csum -> Some s
        | Some _ | None -> None
      in
      let table =
        match checked sb.sb_table with
        | Some s -> Some s
        | None -> (
          match checked sb.sb_table_mirror with
          | Some s ->
            (* The mirror survived; heal the primary copy in place. *)
            (try
               List.iter2
                 (fun b c -> Devarray.write t.dev b (Blockdev.Data c))
                 sb.sb_table (chunk_string s)
             with Fault.Io_error _ | Invalid_argument _ -> ());
            t.repair_log <-
              List.map (fun b -> (b, Mirror)) sb.sb_table @ t.repair_log;
            t.io.repaired_from_mirror <-
              t.io.repaired_from_mirror + List.length sb.sb_table;
            Some s
          | None -> None)
      in
      match table with
      | None -> Error (Bad_generation_table "table unreadable in every copy")
      | Some data -> (
        match decode_gentable ~verify:t.prot.verify ~mirror:t.prot.mirror data with
        | exception Serial.Corrupt msg -> Error (Bad_generation_table msg)
        | entries, csums, mirrors, provs ->
          List.iter (fun (g, e) -> Hashtbl.replace t.gens g e) entries;
          List.iter (fun (b, c) -> Hashtbl.replace t.csums b c) csums;
          List.iter (fun (b, m) -> Hashtbl.replace t.mirrors b m) mirrors;
          List.iter (fun p -> Hashtbl.replace t.provs p.pv_gen p) provs;
          Ok t)
    end
  in
  let rec try_all last_err = function
    | [] -> (
      match last_err with
      | Some e -> Error e
      | None -> Error No_superblock)
    | sb :: rest -> (
      match try_candidate sb with
      | Ok t ->
        rebuild t;
        t.bbox_seq <- scan_bbox_seq t;
        Btree.begin_epoch t.tree t.next_gen;
        Ok t
      | Error e -> try_all (Some e) rest)
  in
  try_all None candidates

let open_exn ~dev =
  match open_ ~dev with Ok t -> t | Error e -> raise (Fail e)

(* --- introspection --------------------------------------------------- *)

type stats = {
  live_blocks : int;
  dedup_entries : int;
  dedup_hits : int;
  dedup_misses : int;
  dedup_bytes_saved : int;
  committed_generations : int;
}

let stats t =
  {
    live_blocks = Alloc.live_blocks t.alloc;
    dedup_entries = Dedup.entries t.dedup;
    dedup_hits = Dedup.hits t.dedup;
    dedup_misses = Dedup.misses t.dedup;
    dedup_bytes_saved = Dedup.bytes_saved t.dedup;
    committed_generations = Hashtbl.length t.gens;
  }

let capacity_blocks t = Alloc.capacity_blocks t.alloc

(* --- provenance inspection ------------------------------------------- *)

let gen_provenance t g = Hashtbl.find_opt t.provs g

(* Blocks reachable from a generation root, split into tree nodes and
   data blocks. Reads go through the verifying/self-repairing path, so
   the walk works identically on a live store and on one just reopened
   from disk (the fsck-style offline path). *)
let reachable_blocks t root =
  let meta = Hashtbl.create 256 in
  let data = Hashtbl.create 1024 in
  let rec walk block =
    if not (Hashtbl.mem meta block) then begin
      Hashtbl.replace meta block ();
      match Btree.view t.tree block with
      | Btree.Internal_view children -> List.iter walk children
      | Btree.Leaf_view entries ->
        List.iter
          (fun (_, v) ->
            match v with
            | Btree.Ptr b -> Hashtbl.replace data b ()
            | Btree.Imm _ -> ())
          entries
    end
  in
  walk root;
  (meta, data)

let kind_of_key k = Int64.to_int (Int64.rem (Int64.div k 0x1_0000_0000L) 4L)
let oid_of_key k = Int64.to_int (Int64.div k 0x4_0000_0000L)
let index_of_key k = Int64.to_int (Int64.logand k 0xFFFF_FFFFL)

type gen_report = {
  r_gen : gen;
  r_meta_blocks : int;
  r_data_blocks : int;
  r_mirror_blocks : int;
  r_record_entries : int;
  r_page_entries : int;
  r_blob_entries : int;
  r_record_bytes : int;
  r_logical_bytes : int;
  r_exclusive_blocks : int;
  r_shared_blocks : int;
}

let gen_report t g =
  match gen_root t g with
  | None -> None
  | Some root ->
    let meta, data = reachable_blocks t root in
    let record_entries = ref 0 in
    let page_entries = ref 0 in
    let blob_entries = ref 0 in
    let record_bytes = ref 0 in
    Btree.fold_range t.tree ~root ~lo:Int64.min_int ~hi:Int64.max_int ~init:()
      ~f:(fun () k v ->
        match (v, kind_of_key k) with
        | Btree.Imm len, 0 when index_of_key k = 0 ->
          incr record_entries;
          record_bytes := !record_bytes + Int64.to_int len
        | Btree.Ptr _, 2 -> incr page_entries
        | Btree.Ptr _, 3 -> incr blob_entries
        | _ -> ());
    let mirror_count set =
      Hashtbl.fold
        (fun b () acc -> if Hashtbl.mem t.mirrors b then acc + 1 else acc)
        set 0
    in
    (* Blocks also reachable from any other committed generation are
       shared (the COW B+tree structure sharing plus dedup). *)
    let others = Hashtbl.create 4096 in
    Hashtbl.iter
      (fun g' e ->
        if g' <> g then begin
          let m, d = reachable_blocks t e.root in
          Hashtbl.iter (fun b () -> Hashtbl.replace others b ()) m;
          Hashtbl.iter (fun b () -> Hashtbl.replace others b ()) d
        end)
      t.gens;
    let classify set (excl, shared) =
      Hashtbl.fold
        (fun b () (e, s) ->
          if Hashtbl.mem others b then (e, s + 1) else (e + 1, s))
        set (excl, shared)
    in
    let excl, shared = classify data (classify meta (0, 0)) in
    Some
      {
        r_gen = g;
        r_meta_blocks = Hashtbl.length meta;
        r_data_blocks = Hashtbl.length data;
        r_mirror_blocks = mirror_count meta + mirror_count data;
        r_record_entries = !record_entries;
        r_page_entries = !page_entries;
        r_blob_entries = !blob_entries;
        r_record_bytes = !record_bytes;
        r_logical_bytes = (!page_entries * Blockdev.block_size) + !record_bytes;
        r_exclusive_blocks = excl;
        r_shared_blocks = shared;
      }

type crosscheck = {
  x_reachable_blocks : int;
  x_live_blocks : int;
  x_within_1pct : bool;
}

(* The attribution-sum acceptance gate: every allocated block must be
   accounted for by walking the committed generations (tree nodes, data
   blocks, their mirrors) plus the commit machinery's own blocks (both
   generation-table copies and their mirrors). *)
let crosscheck t =
  require_closed t;
  let seen = Hashtbl.create 4096 in
  let add b = Hashtbl.replace seen b () in
  List.iter add t.gentable_blocks;
  List.iter add t.prev_gentable_blocks;
  List.iter add t.gentable_mirror_blocks;
  List.iter add t.prev_gentable_mirror_blocks;
  Hashtbl.iter
    (fun _ e ->
      let m, d = reachable_blocks t e.root in
      let with_mirrors tbl =
        Hashtbl.iter
          (fun b () ->
            add b;
            match Hashtbl.find_opt t.mirrors b with
            | Some mb -> add mb
            | None -> ())
          tbl
      in
      with_mirrors m;
      with_mirrors d)
    t.gens;
  let reachable = Hashtbl.length seen in
  let live = Alloc.live_blocks t.alloc in
  let within = abs (reachable - live) * 100 <= max live reachable in
  { x_reachable_blocks = reachable; x_live_blocks = live; x_within_1pct = within }

type oid_delta = {
  d_oid : int;
  d_pages_added : int;
  d_pages_removed : int;
  d_pages_changed : int;
}

type gen_diff = {
  df_from : gen;
  df_to : gen;
  df_oids_added : int list;
  df_oids_removed : int list;
  df_changed : oid_delta list;
  df_pages_added : int;
  df_pages_removed : int;
  df_pages_changed : int;
  df_bytes_delta : int;
  df_dedup_hits_delta : int;
  df_dedup_saved_delta : int;
}

(* Per-oid page-index -> block map of a generation. Under dedup,
   pointer equality is content equality, so comparing block pointers
   across generations detects changed pages without reading payloads;
   without dedup an unchanged page keeps its block (incremental
   checkpoints skip it), so the comparison still holds. *)
let page_map t root =
  let tbl = Hashtbl.create 64 in
  Btree.fold_range t.tree ~root ~lo:Int64.min_int ~hi:Int64.max_int ~init:()
    ~f:(fun () k v ->
      match v with
      | Btree.Ptr block when kind_of_key k = 2 ->
        let oid = oid_of_key k in
        let m =
          match Hashtbl.find_opt tbl oid with
          | Some m -> m
          | None ->
            let m = Hashtbl.create 64 in
            Hashtbl.replace tbl oid m;
            m
        in
        Hashtbl.replace m (index_of_key k) block
      | _ -> ());
  tbl

let diff t ~from_gen ~to_gen =
  let root g =
    match gen_root t g with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Store.diff: unknown generation %d" g)
  in
  let ma = page_map t (root from_gen) in
  let mb = page_map t (root to_gen) in
  let oids_added =
    Hashtbl.fold (fun o _ acc -> if Hashtbl.mem ma o then acc else o :: acc) mb []
    |> List.sort Int.compare
  in
  let oids_removed =
    Hashtbl.fold (fun o _ acc -> if Hashtbl.mem mb o then acc else o :: acc) ma []
    |> List.sort Int.compare
  in
  let all_oids = Hashtbl.create 64 in
  Hashtbl.iter (fun o _ -> Hashtbl.replace all_oids o ()) ma;
  Hashtbl.iter (fun o _ -> Hashtbl.replace all_oids o ()) mb;
  let empty = Hashtbl.create 1 in
  let changed =
    Hashtbl.fold
      (fun o () acc ->
        let pa = Option.value ~default:empty (Hashtbl.find_opt ma o) in
        let pb = Option.value ~default:empty (Hashtbl.find_opt mb o) in
        let added = ref 0 and removed = ref 0 and chg = ref 0 in
        Hashtbl.iter
          (fun pindex block ->
            match Hashtbl.find_opt pa pindex with
            | None -> incr added
            | Some b when b <> block -> incr chg
            | Some _ -> ())
          pb;
        Hashtbl.iter
          (fun pindex _ -> if not (Hashtbl.mem pb pindex) then incr removed)
          pa;
        if !added = 0 && !removed = 0 && !chg = 0 then acc
        else
          { d_oid = o; d_pages_added = !added; d_pages_removed = !removed;
            d_pages_changed = !chg }
          :: acc)
      all_oids []
    |> List.sort (fun a b -> Int.compare a.d_oid b.d_oid)
  in
  let sum f = List.fold_left (fun acc d -> acc + f d) 0 changed in
  let pages_added = sum (fun d -> d.d_pages_added) in
  let pages_removed = sum (fun d -> d.d_pages_removed) in
  let prov_field f g =
    match Hashtbl.find_opt t.provs g with Some p -> f p | None -> 0
  in
  {
    df_from = from_gen;
    df_to = to_gen;
    df_oids_added = oids_added;
    df_oids_removed = oids_removed;
    df_changed = changed;
    df_pages_added = pages_added;
    df_pages_removed = pages_removed;
    df_pages_changed = sum (fun d -> d.d_pages_changed);
    df_bytes_delta = (pages_added - pages_removed) * Blockdev.block_size;
    df_dedup_hits_delta =
      prov_field (fun p -> p.pv_dedup_hits) to_gen
      - prov_field (fun p -> p.pv_dedup_hits) from_gen;
    df_dedup_saved_delta =
      prov_field (fun p -> p.pv_dedup_saved_bytes) to_gen
      - prov_field (fun p -> p.pv_dedup_saved_bytes) from_gen;
  }

let io_stats t =
  { read_retries = t.io.read_retries;
    checksum_failures = t.io.checksum_failures;
    repaired_from_mirror = t.io.repaired_from_mirror;
    repaired_from_dedup = t.io.repaired_from_dedup;
    lost_blocks = t.io.lost_blocks }

(* --- fsck / scrub ----------------------------------------------------- *)

type fsck_report = {
  problems : string list;
  healed : (int * repair_origin) list;
  lost : (gen * string) list;
  scanned_blocks : int;
}

let fsck_ok r = r.problems = [] && r.lost = []

exception Bad_gen of string

let scrub_pass t scanned =
  (* Read every reachable block through the verifying, self-repairing
     path with cold caches, so latent sectors and rotted content are
     found and healed now rather than at the next restore. A
     generation with an unrepairable block is dropped and reported
     lost. The whole scan is background I/O. *)
  let saved_cls = t.read_cls in
  t.read_cls <- Iosched.Background;
  Fun.protect ~finally:(fun () -> t.read_cls <- saved_cls) @@ fun () ->
  Btree.reset_cache t.tree;
  let dropped = ref false in
  let scrub_gen root =
    let visited = Hashtbl.create 256 in
    let rec walk block =
      if not (Hashtbl.mem visited block) then begin
        Hashtbl.replace visited block ();
        incr scanned;
        match Btree.view t.tree block with
        | exception Fail (Unreadable_block { block; cause }) ->
          raise (Bad_gen (Printf.sprintf "block %d: %s" block cause))
        | exception Serial.Corrupt msg -> raise (Bad_gen msg)
        | Btree.Internal_view children -> List.iter walk children
        | Btree.Leaf_view entries ->
          List.iter
            (fun (_, v) ->
              match v with
              | Btree.Ptr b ->
                if not (Hashtbl.mem visited b) then begin
                  Hashtbl.replace visited b ();
                  incr scanned;
                  match verified_read t b with
                  | _ -> ()
                  | exception Fail (Unreadable_block { block; cause }) ->
                    raise (Bad_gen (Printf.sprintf "block %d: %s" block cause))
                end
              | Btree.Imm _ -> ())
            entries
      end
    in
    walk root
  in
  let gens_sorted =
    Hashtbl.fold (fun g e acc -> (g, e) :: acc) t.gens []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  List.iter
    (fun (g, e) ->
      try scrub_gen e.root
      with Bad_gen reason ->
        Hashtbl.remove t.gens g;
        Hashtbl.remove t.provs g;
        t.quarantined <- (g, reason) :: t.quarantined;
        dropped := true)
    gens_sorted;
  if !dropped then begin
    (* Losing a generation frees blocks; recompute counts and persist
       the shrunken table so the loss is visible after the next open. *)
    rebuild t;
    settle_durable t (write_superblock t)
  end

let fsck ?(scrub = false) t =
  require_closed t;
  let scanned = ref 0 in
  if scrub then scrub_pass t scanned;
  let problems = ref [] in
  let problem fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  (* Count reachable edges per block (generation roots, tree edges,
     value pointers, generation-table blocks, mirror-table entries). *)
  let edges : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let edge b = Hashtbl.replace edges b (1 + Option.value ~default:0 (Hashtbl.find_opt edges b)) in
  List.iter edge t.gentable_blocks;
  List.iter edge t.prev_gentable_blocks;
  List.iter edge t.gentable_mirror_blocks;
  List.iter edge t.prev_gentable_mirror_blocks;
  Hashtbl.iter
    (fun primary m ->
      edge m;
      if Alloc.refcount t.alloc m = 0 then
        problem "mirror %d of block %d is unallocated" m primary)
    t.mirrors;
  let visited = Hashtbl.create 4096 in
  let rec walk block =
    edge block;
    if not (Hashtbl.mem visited block) then begin
      Hashtbl.replace visited block ();
      if Alloc.refcount t.alloc block = 0 then
        problem "reachable block %d is unallocated" block;
      match Btree.view t.tree block with
      | exception Serial.Corrupt msg -> problem "node %d corrupt: %s" block msg
      | exception Fail e -> problem "node %d: %s" block (describe_error e)
      | Btree.Internal_view children -> List.iter walk children
      | Btree.Leaf_view entries ->
        List.iter
          (fun (_, v) ->
            match v with
            | Btree.Ptr data_block ->
              edge data_block;
              if Alloc.refcount t.alloc data_block = 0 then
                problem "data block %d is unallocated" data_block
            | Btree.Imm _ -> ())
          entries
    end
  in
  Hashtbl.iter (fun _ e -> walk e.root) t.gens;
  (* Reference counts must equal reachable edges. *)
  Hashtbl.iter
    (fun block n ->
      let rc = Alloc.refcount t.alloc block in
      if rc <> n then problem "block %d: refcount %d, reachable edges %d" block rc n)
    edges;
  (* Records must read back whole (an oid may hold only pages, which
     is fine; a corrupt or truncated record is not). *)
  Hashtbl.iter
    (fun g _ ->
      List.iter
        (fun oid ->
          match read_record t g ~oid with
          | Some _ | None -> ()
          | exception Serial.Corrupt msg ->
            problem "generation %d oid %d: %s" g oid msg
          | exception Fail e ->
            problem "generation %d oid %d: %s" g oid (describe_error e))
        (oids t g))
    t.gens;
  let healed = List.rev t.repair_log in
  t.repair_log <- [];
  let lost = List.rev t.quarantined in
  t.quarantined <- [];
  { problems = List.rev !problems; healed; lost; scanned_blocks = !scanned }

let drop_caches t =
  require_closed t;
  Btree.drop_cache t.tree
