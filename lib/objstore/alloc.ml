type t = {
  first_block : int;
  capacity_blocks : int option;
  stripes : int;
  refs : (int, int) Hashtbl.t;
  mutable free_list : int list;
  mutable next_fresh : int;
  mutable live : int;
  mutable on_free : (int -> unit) list;
  mutable defer_frees : bool;
  mutable parked : int list;
  mutable on_pressure : (unit -> bool) option;
}

exception Out_of_space

let create ~first_block ?capacity_blocks ?(stripes = 1) () =
  if first_block < 0 then invalid_arg "Alloc.create: negative first_block";
  if stripes < 1 then invalid_arg "Alloc.create: stripe count must be >= 1";
  { first_block; capacity_blocks; stripes; refs = Hashtbl.create 4096;
    free_list = []; next_fresh = first_block; live = 0; on_free = [];
    defer_frees = false; parked = []; on_pressure = None }

let stripes t = t.stripes
let capacity_blocks t = t.capacity_blocks

let add_on_free t f = t.on_free <- t.on_free @ [ f ]

let set_deferred_frees t v = t.defer_frees <- v
let set_pressure_hook t f = t.on_pressure <- Some f

let take_parked t =
  let p = t.parked in
  t.parked <- [];
  p

let release t blocks = t.free_list <- blocks @ t.free_list

(* Capacity pressure: before declaring the device full, give the owner
   a chance to settle deferred frees (blocks parked until the
   superblock that stops referencing them is durable). The hook
   returns true when it released something worth retrying for. *)
let under_pressure t =
  match t.on_pressure with None -> false | Some f -> f ()

let rec alloc t =
  match t.free_list with
  | b :: rest ->
    t.free_list <- rest;
    Hashtbl.replace t.refs b 1;
    t.live <- t.live + 1;
    b
  | [] ->
    let b = t.next_fresh in
    (match t.capacity_blocks with
     | Some cap when b >= cap ->
       if under_pressure t then alloc t else raise Out_of_space
     | _ ->
       t.next_fresh <- b + 1;
       Hashtbl.replace t.refs b 1;
       t.live <- t.live + 1;
       b)

(* A stripe-aware extent: [n] fresh {e contiguous} logical blocks.
   Under the device array's round-robin striping a contiguous logical
   run fans out across every stripe while staying physically
   contiguous on each device — the flush then needs one transfer per
   device instead of one per block. Extents larger than one stripe
   round are aligned to a stripe boundary so every device's share
   starts at the same physical offset. *)
let rec alloc_extent t n =
  if n < 0 then invalid_arg "Alloc.alloc_extent: negative size";
  if n = 0 then [||]
  else begin
    let start =
      if n < t.stripes || t.next_fresh mod t.stripes = 0 then t.next_fresh
      else begin
        let aligned = (t.next_fresh / t.stripes + 1) * t.stripes in
        (* The skipped tail of the partial stripe round is not lost:
           singleton allocations drain it from the free list. *)
        for b = aligned - 1 downto t.next_fresh do
          t.free_list <- b :: t.free_list
        done;
        aligned
      end
    in
    match t.capacity_blocks with
    | Some cap when start + n > cap ->
      (* Extents only take fresh space, so the pressure hook can't
         satisfy us directly — but settling deferred frees lets the
         caller fall back to singleton allocations from the free
         list. Retry once in case the pen covered the fresh tail. *)
      if under_pressure t then alloc_extent t n else raise Out_of_space
    | _ ->
      t.next_fresh <- start + n;
      t.live <- t.live + n;
      Array.init n (fun i ->
          let b = start + i in
          Hashtbl.replace t.refs b 1;
          b)
  end

let refcount t block = Option.value ~default:0 (Hashtbl.find_opt t.refs block)

let incref t block =
  match Hashtbl.find_opt t.refs block with
  | Some n when n > 0 -> Hashtbl.replace t.refs block (n + 1)
  | Some _ | None -> invalid_arg (Printf.sprintf "Alloc.incref: dead block %d" block)

let decref t block =
  match Hashtbl.find_opt t.refs block with
  | Some n when n > 1 -> Hashtbl.replace t.refs block (n - 1)
  | Some 1 ->
    Hashtbl.remove t.refs block;
    (* Side tables (checksums, dedup, mirrors) are cleaned at free
       time either way; deferral only gates when the block becomes
       reusable (see Store's superblock-durability pen). *)
    if t.defer_frees then t.parked <- block :: t.parked
    else t.free_list <- block :: t.free_list;
    t.live <- t.live - 1;
    List.iter (fun f -> f block) t.on_free
  | Some _ | None -> invalid_arg (Printf.sprintf "Alloc.decref: dead block %d" block)

let live_blocks t = t.live

let bump_fresh t block = if block >= t.next_fresh then t.next_fresh <- block + 1

let mark_live t block =
  (match Hashtbl.find_opt t.refs block with
   | Some n -> Hashtbl.replace t.refs block (n + 1)
   | None ->
     Hashtbl.replace t.refs block 1;
     t.live <- t.live + 1);
  if block >= t.next_fresh then t.next_fresh <- block + 1

let reset t =
  Hashtbl.reset t.refs;
  t.free_list <- [];
  t.parked <- [];
  t.next_fresh <- t.first_block;
  t.live <- 0
