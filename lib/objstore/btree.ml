open Aurora_simtime
open Aurora_device
open Aurora_posix

type value = Imm of int64 | Ptr of int

(* Maximum entries per node, sized so an encoded node fits one 4 KiB
   block: leaf entries are 17 bytes, internal entries 16. *)
let max_entries = 200

type node =
  | Leaf of (int64 * value) list        (* sorted by key *)
  | Internal of int64 list * int list   (* n keys, n+1 children *)

type cached = { mutable node : node; mutable epoch : int; mutable dirty : bool }

type t = {
  dev : Devarray.t;
  alloc : Alloc.t;
  cache : (int, cached) Hashtbl.t;
  mutable current_epoch : int;
  mutable reader : (int -> Blockdev.content) option;
}

let create ~dev ~alloc =
  let t = { dev; alloc; cache = Hashtbl.create 1024; current_epoch = 0;
            reader = None } in
  (* Freed blocks must leave the cache: a freed block index can be
     reallocated with new content. *)
  Alloc.add_on_free alloc (fun b -> Hashtbl.remove t.cache b);
  t

let set_reader t f = t.reader <- Some f

let begin_epoch t n = t.current_epoch <- n

(* --- node encoding ------------------------------------------------- *)

let encode_node node =
  let w = Serial.writer () in
  (match node with
   | Leaf entries ->
     Serial.w_u8 w 0;
     Serial.w_list w (fun w (k, v) ->
         Serial.w_int64 w k;
         match v with
         | Imm x ->
           Serial.w_u8 w 0;
           Serial.w_int64 w x
         | Ptr b ->
           Serial.w_u8 w 1;
           Serial.w_int w b)
       entries
   | Internal (keys, children) ->
     Serial.w_u8 w 1;
     Serial.w_list w Serial.w_int64 keys;
     Serial.w_list w Serial.w_int children);
  let s = Serial.contents w in
  assert (String.length s <= Blockdev.block_size);
  s

let decode_node data =
  let r = Serial.reader data in
  match Serial.r_u8 r with
  | 0 ->
    Leaf
      (Serial.r_list r (fun r ->
           let k = Serial.r_int64 r in
           let v =
             match Serial.r_u8 r with
             | 0 -> Imm (Serial.r_int64 r)
             | 1 -> Ptr (Serial.r_int r)
             | tag -> raise (Serial.Corrupt (Printf.sprintf "Btree: bad value tag %d" tag))
           in
           (k, v)))
  | 1 ->
    let keys = Serial.r_list r Serial.r_int64 in
    let children = Serial.r_list r Serial.r_int in
    if List.length children <> List.length keys + 1 then
      raise (Serial.Corrupt "Btree: child/key count mismatch");
    Internal (keys, children)
  | tag -> raise (Serial.Corrupt (Printf.sprintf "Btree: bad node tag %d" tag))

(* --- cache --------------------------------------------------------- *)

let read_cached t block =
  match Hashtbl.find_opt t.cache block with
  | Some c -> c
  | None ->
    let raw =
      match t.reader with
      | Some f -> f block
      | None -> Devarray.read t.dev block
    in
    let node =
      match raw with
      | Blockdev.Data s -> decode_node s
      | Blockdev.Seed _ | Blockdev.Zero ->
        raise (Serial.Corrupt (Printf.sprintf "Btree: block %d is not a node" block))
    in
    let c = { node; epoch = -1; dirty = false } in
    Hashtbl.replace t.cache block c;
    c

let new_node t node =
  let block = Alloc.alloc t.alloc in
  Hashtbl.replace t.cache block { node; epoch = t.current_epoch; dirty = true };
  block

let empty_root t = new_node t (Leaf [])

(* Reference bookkeeping: the tree holds one reference per edge
   (parent -> child) and per Ptr value stored in a leaf. Copying a
   node duplicates all its outgoing references. *)
let incref_contents t = function
  | Leaf entries ->
    List.iter (function _, Ptr b -> Alloc.incref t.alloc b | _, Imm _ -> ()) entries
  | Internal (_, children) -> List.iter (Alloc.incref t.alloc) children

(* Make the node at [block] writable in the current epoch; returns the
   block to use (either the same, or a private copy). The caller owns
   fixing up the parent edge (and decreffing [block] if the edge
   moves). *)
let cow t block =
  let c = read_cached t block in
  if c.epoch = t.current_epoch then block
  else begin
    incref_contents t c.node;
    new_node t c.node
  end

(* --- search -------------------------------------------------------- *)

let rec child_index keys key i =
  match keys with
  | [] -> i
  | k :: rest -> if key < k then i else child_index rest key (i + 1)

let rec find t ~root key =
  match (read_cached t root).node with
  | Leaf entries -> List.assoc_opt key entries
  | Internal (keys, children) ->
    let idx = child_index keys key 0 in
    find t ~root:(List.nth children idx) key

(* --- release / retain ---------------------------------------------- *)

let retain_root t root = Alloc.incref t.alloc root

let rec release_root t block =
  (* Read before decref: freeing evicts the cache entry. *)
  let node = (read_cached t block).node in
  if Alloc.refcount t.alloc block = 1 then begin
    (match node with
     | Leaf entries ->
       List.iter (function _, Ptr b -> Alloc.decref t.alloc b | _, Imm _ -> ()) entries
     | Internal (_, children) -> List.iter (release_root t) children);
    Alloc.decref t.alloc block
  end
  else Alloc.decref t.alloc block

(* --- insert -------------------------------------------------------- *)

let split_leaf entries =
  let n = List.length entries in
  let rec take i = function
    | [] -> ([], [])
    | x :: rest ->
      if i = 0 then ([], x :: rest)
      else
        let l, r = take (i - 1) rest in
        (x :: l, r)
  in
  let left, right = take (n / 2) entries in
  match right with
  | (sep, _) :: _ -> (left, sep, right)
  | [] -> invalid_arg "split_leaf: empty right half"

let split_internal keys children =
  (* Promote the middle key; left keeps [0, mid), right keeps
     (mid, n). *)
  let ka = Array.of_list keys and ca = Array.of_list children in
  let mid = Array.length ka / 2 in
  let sep = ka.(mid) in
  let lkeys = Array.to_list (Array.sub ka 0 mid) in
  let lchildren = Array.to_list (Array.sub ca 0 (mid + 1)) in
  let rkeys = Array.to_list (Array.sub ka (mid + 1) (Array.length ka - mid - 1)) in
  let rchildren = Array.to_list (Array.sub ca (mid + 1) (Array.length ca - mid - 1)) in
  (lkeys, lchildren, sep, rkeys, rchildren)

(* Insert into the subtree at [block]; returns the new block for this
   subtree plus an optional (separator, right sibling) when it split.
   The caller owns the edge to [block]: if the returned block differs,
   the caller must decref [block] and point its edge at the new one. *)
let rec insert_rec t block key value =
  let wblock = cow t block in
  let c = read_cached t wblock in
  match c.node with
  | Leaf entries ->
    let replaced = List.assoc_opt key entries in
    (match replaced with
     | Some (Ptr old) -> Alloc.decref t.alloc old
     | Some (Imm _) | None -> ());
    let entries =
      let without = if replaced = None then entries else List.remove_assoc key entries in
      List.merge (fun (a, _) (b, _) -> Int64.compare a b) without [ (key, value) ]
    in
    if List.length entries <= max_entries then begin
      c.node <- Leaf entries;
      c.dirty <- true;
      (wblock, None)
    end
    else begin
      let left, sep, right = split_leaf entries in
      c.node <- Leaf left;
      c.dirty <- true;
      let rblock = new_node t (Leaf right) in
      (wblock, Some (sep, rblock))
    end
  | Internal (keys, children) ->
    let idx = child_index keys key 0 in
    let old_child = List.nth children idx in
    let new_child, split = insert_rec t old_child key value in
    let children =
      if new_child == old_child then children
      else begin
        (* The edge moved to the private copy; dropping the old edge
           may orphan a whole subtree (cascade). *)
        release_root t old_child;
        List.mapi (fun i ch -> if i = idx then new_child else ch) children
      end
    in
    let keys, children =
      match split with
      | None -> (keys, children)
      | Some (sep, rblock) ->
        let rec insert_at i ks cs =
          match (ks, cs) with
          | ks, c0 :: crest when i = 0 -> (sep :: ks, c0 :: rblock :: crest)
          | k0 :: krest, c0 :: crest ->
            let ks', cs' = insert_at (i - 1) krest crest in
            (k0 :: ks', c0 :: cs')
          | _ -> invalid_arg "Btree: malformed internal node"
        in
        insert_at idx keys children
    in
    if List.length keys <= max_entries then begin
      c.node <- Internal (keys, children);
      c.dirty <- true;
      (wblock, None)
    end
    else begin
      let lkeys, lchildren, sep, rkeys, rchildren = split_internal keys children in
      c.node <- Internal (lkeys, lchildren);
      c.dirty <- true;
      let rblock = new_node t (Internal (rkeys, rchildren)) in
      (wblock, Some (sep, rblock))
    end

(* Consumes the caller's reference on [root]; the returned root carries
   the caller's reference instead. *)
let insert t ~root ~key value =
  let new_root, split = insert_rec t root key value in
  if new_root <> root then
    (* The caller's working reference moves to the private copy; if no
       generation still names the original, it is released in full. *)
    release_root t root;
  match split with
  | None -> new_root
  | Some (sep, rblock) ->
    (* The children's existing references become the new root's edges;
       the caller's reference is the fresh node itself. *)
    new_node t (Internal ([ sep ], [ new_root; rblock ]))

(* --- traversal ----------------------------------------------------- *)

let rec fold_range t ~root ~lo ~hi ~init ~f =
  match (read_cached t root).node with
  | Leaf entries ->
    List.fold_left
      (fun acc (k, v) -> if k >= lo && k <= hi then f acc k v else acc)
      init entries
  | Internal (keys, children) ->
    (* Visit children whose key range intersects [lo, hi]. Child i
       covers keys in [keys.(i-1), keys.(i)). *)
    let ka = Array.of_list keys in
    let n = Array.length ka in
    let acc = ref init in
    List.iteri
      (fun i child ->
        let child_lo = if i = 0 then Int64.min_int else ka.(i - 1) in
        let child_hi = if i = n then Int64.max_int else ka.(i) in
        if child_lo <= hi && lo < child_hi then
          acc := fold_range t ~root:child ~lo ~hi ~init:!acc ~f)
      children;
    !acc

(* --- flushing / cache management ----------------------------------- *)

let flush_dirty ?tee ?cls t =
  let dirty =
    Hashtbl.fold (fun b c acc -> if c.dirty then (b, c) :: acc else acc) t.cache []
  in
  let dirty = List.sort (fun (a, _) (b, _) -> Int.compare a b) dirty in
  let writes = List.map (fun (b, c) -> (b, Blockdev.Data (encode_node c.node))) dirty in
  List.iter (fun (_, c) -> c.dirty <- false) dirty;
  let writes =
    match tee with
    | Some f -> writes @ f writes
    | None -> writes
  in
  if writes = [] then Clock.now (Devarray.clock t.dev)
  else Devarray.write_async ?cls t.dev writes

let dirty_count t = Hashtbl.fold (fun _ c n -> if c.dirty then n + 1 else n) t.cache 0
let cached_count t = Hashtbl.length t.cache

let drop_cache t =
  if dirty_count t > 0 then invalid_arg "Btree.drop_cache: dirty nodes remain";
  Hashtbl.reset t.cache

let reset_cache t = Hashtbl.reset t.cache

type view = Leaf_view of (int64 * value) list | Internal_view of int list

let view t block =
  match (read_cached t block).node with
  | Leaf entries -> Leaf_view entries
  | Internal (_, children) -> Internal_view children

let rec node_depth t ~root =
  match (read_cached t root).node with
  | Leaf _ -> 1
  | Internal (_, children) -> 1 + node_depth t ~root:(List.hd children)
