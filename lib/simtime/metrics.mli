(** Named counters, gauges, and fixed-bucket histograms.

    One registry per simulated machine (owned by the kernel). Metric
    handles are found-or-created by name; looking a name up again
    returns the same handle, so instrumentation points can be written
    as [Metrics.incr (Metrics.counter m "dev.nvme.reads")] without
    threading handles around. The hot-path operations ({!incr},
    {!add}, {!set}, {!observe}) allocate nothing.

    Values are sim-time-stamped at snapshot time: {!snapshot} and
    {!to_json} record the registry clock's current instant, not wall
    time. *)

type t
type counter
type gauge
type histogram

val create : Clock.t -> t
val clock : t -> Clock.t

val on_snapshot : t -> (unit -> unit) -> unit
(** Register a pre-export hook. Hooks run (in registration order) at
    the start of every {!snapshot}, {!find}, and {!to_json} call, so a
    subsystem whose gauges are derived from live state can refresh
    them lazily and exported values are never stale. Re-entrant
    exports from inside a hook skip the hook pass rather than
    recursing. *)

(* --- registration (find-or-create) ---------------------------------- *)

val counter : t -> string -> counter
(** Find or create the counter named [name]. Raises [Invalid_argument]
    if the name is already registered as a different metric kind. *)

val gauge : t -> string -> gauge

val histogram : t -> ?bounds:float array -> string -> histogram
(** [bounds] are the inclusive upper edges of the finite buckets,
    strictly increasing; an implicit overflow bucket catches
    everything above the last edge. Defaults to
    {!default_duration_bounds_us}. Re-registering an existing
    histogram ignores [bounds] and returns the existing handle;
    registering a fresh one with empty or non-increasing bounds raises
    [Invalid_argument]. *)

val default_duration_bounds_us : float array
(** Log-spaced edges from 1 us to 1 s, suited to phase durations. *)

(* --- hot path -------------------------------------------------------- *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment: counters are
    monotone. *)

val count : counter -> int

val set : gauge -> float -> unit
val set_int : gauge -> int -> unit
val value : gauge -> float

val observe : histogram -> float -> unit
(** Record one sample. A sample lands in the first bucket whose upper
    edge is >= the value; values above every edge land in the
    overflow bucket. *)

val observe_duration : histogram -> Duration.t -> unit
(** {!observe} of the duration in microseconds (the unit every
    [*_us] histogram in the tree uses). *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
(** [nan] when empty. *)

val bucket_counts : histogram -> (float * int) list
(** Per-bucket (not cumulative) counts as [(upper_edge, count)]; the
    overflow bucket's edge is [infinity]. *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) by
    linear interpolation within the bucket holding the target rank.
    Ranks landing in the overflow bucket report the largest observed
    sample (not the last finite edge), and every estimate is clamped
    to that observed maximum. [nan] when the histogram is empty. *)

(* --- snapshot / export ----------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;  (** length = [Array.length bounds + 1] (overflow last) *)
      count : int;
      sum : float;
      max_seen : float;    (** largest observed sample; [nan] when empty *)
    }

val snapshot : t -> (string * value) list
(** Registration order. *)

val find : t -> string -> value option

val to_json : t -> string
(** The snapshot as a JSON object:
    [{"at_us": <now>, "metrics": {<name>: {...}, ...}}].
    Histograms include count/sum/mean/p50/p95/p99 and the bucket
    array. Non-finite floats are emitted as [null]. *)
