(* Dynamic tracepoints with online aggregation. See probe.mli.

   The registry is deliberately closure-free: predicates stay as ASTs
   and are interpreted per event, aggregation state lives in plain
   mutable cells. Interpretation only runs for subscribed points, so
   the cost is borne exactly by the queries asked. *)

type point = Dev_io | Store_commit | Ckpt_phase | Repl_msg | Alloc_defer

let points = [ Dev_io; Store_commit; Ckpt_phase; Repl_msg; Alloc_defer ]
let npoints = 5

let index = function
  | Dev_io -> 0
  | Store_commit -> 1
  | Ckpt_phase -> 2
  | Repl_msg -> 3
  | Alloc_defer -> 4

let point_name = function
  | Dev_io -> "dev.io"
  | Store_commit -> "store.commit"
  | Ckpt_phase -> "ckpt.phase"
  | Repl_msg -> "repl.msg"
  | Alloc_defer -> "alloc.defer"

let point_of_name = function
  | "dev.io" -> Some Dev_io
  | "store.commit" -> Some Store_commit
  | "ckpt.phase" -> Some Ckpt_phase
  | "repl.msg" -> Some Repl_msg
  | "alloc.defer" -> Some Alloc_defer
  | _ -> None

(* --- query DSL ------------------------------------------------------- *)

type field = Fdev | Fop | Fcls | Fgen | Fpgid | Fus | Fblocks
type cmp = Eq | Ne | Lt | Le | Gt | Ge
type value = Num of float | Str of string

type pred =
  | Cmp of field * cmp * value
  | And of pred * pred
  | Or of pred * pred

type agg =
  | Count
  | Sum of field
  | Min of field
  | Max of field
  | Avg of field
  | Quantize of field

type spec = {
  sp_point : point;
  sp_pred : pred option;
  sp_agg : agg;
  sp_by : field option;
}

let field_name = function
  | Fdev -> "dev"
  | Fop -> "op"
  | Fcls -> "cls"
  | Fgen -> "gen"
  | Fpgid -> "pgid"
  | Fus -> "us"
  | Fblocks -> "blocks"

let field_of_name = function
  | "dev" -> Some Fdev
  | "op" -> Some Fop
  | "cls" -> Some Fcls
  | "gen" -> Some Fgen
  | "pgid" -> Some Fpgid
  | "us" -> Some Fus
  | "blocks" -> Some Fblocks
  | _ -> None

let string_field = function Fdev | Fop | Fcls -> true | _ -> false

(* --- tokenizer ------------------------------------------------------- *)

type token =
  | Tident of string   (* bare identifiers, including dotted point names *)
  | Tnum of float
  | Tstr of string     (* quoted *)
  | Top of string      (* = != < <= > >= && || ( ) *)

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let err pos msg = Error (Printf.sprintf "%s at offset %d" msg pos) in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '.' || c = '_' || c = '-'
  in
  let is_num_start c = (c >= '0' && c <= '9') in
  let rec go i =
    if i >= n then Ok (List.rev !toks)
    else
      let c = s.[i] in
      if c = ' ' || c = '\t' || c = '\n' then go (i + 1)
      else if c = '(' || c = ')' then begin
        toks := Top (String.make 1 c) :: !toks;
        go (i + 1)
      end
      else if c = '&' then
        if i + 1 < n && s.[i + 1] = '&' then begin
          toks := Top "&&" :: !toks;
          go (i + 2)
        end
        else err i "expected '&&'"
      else if c = '|' then
        if i + 1 < n && s.[i + 1] = '|' then begin
          toks := Top "||" :: !toks;
          go (i + 2)
        end
        else err i "expected '||'"
      else if c = '!' then
        if i + 1 < n && s.[i + 1] = '=' then begin
          toks := Top "!=" :: !toks;
          go (i + 2)
        end
        else err i "expected '!='"
      else if c = '=' then
        if i + 1 < n && s.[i + 1] = '=' then begin
          toks := Top "=" :: !toks;
          go (i + 2)
        end
        else begin
          toks := Top "=" :: !toks;
          go (i + 1)
        end
      else if c = '<' || c = '>' then
        if i + 1 < n && s.[i + 1] = '=' then begin
          toks := Top (String.make 1 c ^ "=") :: !toks;
          go (i + 2)
        end
        else begin
          toks := Top (String.make 1 c) :: !toks;
          go (i + 1)
        end
      else if c = '"' then begin
        let buf = Buffer.create 8 in
        let rec scan j =
          if j >= n then err i "unterminated string"
          else if s.[j] = '"' then begin
            toks := Tstr (Buffer.contents buf) :: !toks;
            go (j + 1)
          end
          else if s.[j] = '\\' && j + 1 < n then begin
            Buffer.add_char buf s.[j + 1];
            scan (j + 2)
          end
          else begin
            Buffer.add_char buf s.[j];
            scan (j + 1)
          end
        in
        scan (i + 1)
      end
      else if is_num_start c || (c = '-' && i + 1 < n && is_num_start s.[i + 1])
      then begin
        let j = ref (if c = '-' then i + 1 else i) in
        while
          !j < n
          && (is_num_start s.[!j] || s.[!j] = '.' || s.[!j] = 'e'
             || s.[!j] = 'E'
             || ((s.[!j] = '+' || s.[!j] = '-')
                && !j > i
                && (s.[!j - 1] = 'e' || s.[!j - 1] = 'E')))
        do
          incr j
        done;
        let lit = String.sub s i (!j - i) in
        match float_of_string_opt lit with
        | Some f ->
          toks := Tnum f :: !toks;
          go !j
        | None -> err i (Printf.sprintf "bad number %S" lit)
      end
      else if is_ident_char c then begin
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        toks := Tident (String.sub s i (!j - i)) :: !toks;
        go !j
      end
      else err i (Printf.sprintf "unexpected character %C" c)
  in
  go 0

(* --- parser ---------------------------------------------------------- *)

exception Parse_error of string

let parse_field name =
  match field_of_name name with
  | Some f -> f
  | None -> raise (Parse_error (Printf.sprintf "unknown field %S" name))

let cmp_of_op = function
  | "=" -> Eq
  | "!=" -> Ne
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | op -> raise (Parse_error (Printf.sprintf "expected comparison, got %S" op))

(* Recursive-descent over the token list; && binds tighter than ||. *)
let parse_pred toks =
  let rec or_exp toks =
    let lhs, toks = and_exp toks in
    match toks with
    | Top "||" :: rest ->
      let rhs, toks = or_exp rest in
      (Or (lhs, rhs), toks)
    | _ -> (lhs, toks)
  and and_exp toks =
    let lhs, toks = atom toks in
    match toks with
    | Top "&&" :: rest ->
      let rhs, toks = and_exp rest in
      (And (lhs, rhs), toks)
    | _ -> (lhs, toks)
  and atom = function
    | Top "(" :: rest -> (
      let p, toks = or_exp rest in
      match toks with
      | Top ")" :: rest -> (p, rest)
      | _ -> raise (Parse_error "expected ')'"))
    | Tident f :: Top op :: rest -> (
      let field = parse_field f in
      let cmp = cmp_of_op op in
      match rest with
      | Tnum v :: rest ->
        if string_field field then
          raise
            (Parse_error
               (Printf.sprintf "field %s is a string, got a number"
                  (field_name field)))
        else (Cmp (field, cmp, Num v), rest)
      | Tstr v :: rest | Tident v :: rest ->
        if not (string_field field) then (
          (* numeric field, bare token: allow "nan"/"inf"-style idents *)
          match float_of_string_opt v with
          | Some f -> (Cmp (field, cmp, Num f), rest)
          | None ->
            raise
              (Parse_error
                 (Printf.sprintf "field %s is numeric, got a string"
                    (field_name field))))
        else if not (cmp = Eq || cmp = Ne) then
          raise (Parse_error "string fields only support = and !=")
        else (Cmp (field, cmp, Str v), rest)
      | _ -> raise (Parse_error "expected a value after comparison"))
    | _ -> raise (Parse_error "expected a comparison or '('")
  in
  or_exp toks

let numeric_arg name = function
  | [ Tident f ] ->
    let field = parse_field f in
    if string_field field then
      raise
        (Parse_error (Printf.sprintf "%s() needs a numeric field" name))
    else field
  | _ -> raise (Parse_error (Printf.sprintf "expected %s(FIELD)" name))

let parse_agg toks =
  (* Consumes NAME [( FIELD )]; returns the agg and the remainder. *)
  match toks with
  | Tident "count" :: rest -> (Count, rest)
  | Tident name :: Top "(" :: Tident f :: Top ")" :: rest ->
    let field = numeric_arg name [ Tident f ] in
    let agg =
      match name with
      | "sum" -> Sum field
      | "min" -> Min field
      | "max" -> Max field
      | "avg" -> Avg field
      | "quantize" -> Quantize field
      | _ -> raise (Parse_error (Printf.sprintf "unknown aggregation %S" name))
    in
    (agg, rest)
  | _ -> raise (Parse_error "expected an aggregation (count, sum(f), ...)")

let parse s =
  match tokenize s with
  | Error e -> Error e
  | Ok toks -> (
    try
      match toks with
      | Tident pname :: rest -> (
        match point_of_name pname with
        | None ->
          Error
            (Printf.sprintf "unknown probe %S; probes: %s" pname
               (String.concat " " (List.map point_name points)))
        | Some point ->
          let pred, rest =
            match rest with
            | Tident "where" :: rest ->
              let p, rest = parse_pred rest in
              (Some p, rest)
            | _ -> (None, rest)
          in
          let agg, rest =
            match rest with
            | Tident "agg" :: rest -> parse_agg rest
            | _ -> (Count, rest)
          in
          let by, rest =
            match rest with
            | Tident "by" :: Tident f :: rest -> (Some (parse_field f), rest)
            | Tident "by" :: _ -> raise (Parse_error "expected a field after 'by'")
            | _ -> (None, rest)
          in
          if rest <> [] then Error "trailing tokens after query"
          else Ok { sp_point = point; sp_pred = pred; sp_agg = agg; sp_by = by })
      | _ -> Error "expected a probe name"
    with Parse_error msg -> Error msg)

(* --- printer --------------------------------------------------------- *)

let print_num v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let print_value = function
  | Num v -> print_num v
  | Str s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' || c = '\\' then Buffer.add_char buf '\\';
        Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf

let cmp_name = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

(* Parenthesise || under && so the printed form re-parses to the same
   tree; && chains right-associate in the parser, so print them with
   explicit parens on a left-nested And. *)
let rec print_pred = function
  | Cmp (f, c, v) ->
    Printf.sprintf "%s %s %s" (field_name f) (cmp_name c) (print_value v)
  | And (a, b) ->
    Printf.sprintf "%s && %s" (print_and_operand a) (print_pred_tight b)
  | Or (a, b) -> Printf.sprintf "%s || %s" (print_or_operand a) (print_pred b)

and print_and_operand = function
  | (Or _ | And _) as p -> "(" ^ print_pred p ^ ")"
  | p -> print_pred p

and print_pred_tight = function
  | Or _ as p -> "(" ^ print_pred p ^ ")"
  | p -> print_pred p

and print_or_operand = function
  | Or _ as p -> "(" ^ print_pred p ^ ")"
  | p -> print_pred p

let print_agg = function
  | Count -> "count"
  | Sum f -> Printf.sprintf "sum(%s)" (field_name f)
  | Min f -> Printf.sprintf "min(%s)" (field_name f)
  | Max f -> Printf.sprintf "max(%s)" (field_name f)
  | Avg f -> Printf.sprintf "avg(%s)" (field_name f)
  | Quantize f -> Printf.sprintf "quantize(%s)" (field_name f)

let print spec =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (point_name spec.sp_point);
  (match spec.sp_pred with
  | Some p ->
    Buffer.add_string buf " where ";
    Buffer.add_string buf (print_pred p)
  | None -> ());
  Buffer.add_string buf " agg ";
  Buffer.add_string buf (print_agg spec.sp_agg);
  (match spec.sp_by with
  | Some f ->
    Buffer.add_string buf " by ";
    Buffer.add_string buf (field_name f)
  | None -> ());
  Buffer.contents buf

(* --- evaluation ------------------------------------------------------ *)

let num_of ~gen ~pgid ~us ~blocks = function
  | Fgen -> float_of_int gen
  | Fpgid -> float_of_int pgid
  | Fus -> us
  | Fblocks -> float_of_int blocks
  | Fdev | Fop | Fcls -> nan

let str_of ~dev ~op ~cls = function
  | Fdev -> dev
  | Fop -> op
  | Fcls -> cls
  | _ -> ""

let key_of ~dev ~op ~cls ~gen ~pgid ~us ~blocks = function
  | Fdev -> dev
  | Fop -> op
  | Fcls -> cls
  | Fgen -> string_of_int gen
  | Fpgid -> string_of_int pgid
  | Fus -> print_num us
  | Fblocks -> string_of_int blocks

let rec eval_pred p ~dev ~op ~cls ~gen ~pgid ~us ~blocks =
  match p with
  | And (a, b) ->
    eval_pred a ~dev ~op ~cls ~gen ~pgid ~us ~blocks
    && eval_pred b ~dev ~op ~cls ~gen ~pgid ~us ~blocks
  | Or (a, b) ->
    eval_pred a ~dev ~op ~cls ~gen ~pgid ~us ~blocks
    || eval_pred b ~dev ~op ~cls ~gen ~pgid ~us ~blocks
  | Cmp (f, c, Str s) -> (
    let v = str_of ~dev ~op ~cls f in
    match c with
    | Eq -> String.equal v s
    | Ne -> not (String.equal v s)
    | _ -> false)
  | Cmp (f, c, Num x) -> (
    let v = num_of ~gen ~pgid ~us ~blocks f in
    match c with
    | Eq -> v = x
    | Ne -> v <> x
    | Lt -> v < x
    | Le -> v <= x
    | Gt -> v > x
    | Ge -> v >= x)

let nquant = 64

let quantize_lower i = if i <= 0 then 0. else Float.pow 2. (float_of_int (i - 1))

let qbucket v =
  if not (v >= 1.0) (* catches nan and sub-1 values *) then 0
  else
    let i = 1 + int_of_float (Float.log2 v) in
    if i < 1 then 1 else if i >= nquant then nquant - 1 else i

(* --- registry -------------------------------------------------------- *)

type cell = {
  mutable c_n : int;
  mutable c_sum : float;
  mutable c_min : float;
  mutable c_max : float;
  c_buckets : int array; (* [||] unless quantize *)
}

type sub = {
  sub_id : int;
  spec : spec;
  cells : (string, cell) Hashtbl.t;
  mutable s_fired : int;
  mutable s_matched : int;
}

type t = {
  enabled_arr : bool array;
  mutable subs : sub list; (* newest first *)
  mutable next_id : int;
}

let create () =
  { enabled_arr = Array.make npoints false; subs = []; next_id = 1 }

let enabled t p = Array.unsafe_get t.enabled_arr (index p)

let on o p = match o with None -> false | Some t -> enabled t p

let recompute_enabled t =
  Array.fill t.enabled_arr 0 npoints false;
  List.iter
    (fun s -> t.enabled_arr.(index s.spec.sp_point) <- true)
    t.subs

let subscribe t spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  let sub =
    {
      sub_id = id;
      spec;
      cells = Hashtbl.create 16;
      s_fired = 0;
      s_matched = 0;
    }
  in
  t.subs <- sub :: t.subs;
  recompute_enabled t;
  id

let unsubscribe t id =
  t.subs <- List.filter (fun s -> s.sub_id <> id) t.subs;
  recompute_enabled t

let subscriptions t =
  List.rev_map (fun s -> (s.sub_id, s.spec)) t.subs

let cell_for sub key want_buckets =
  match Hashtbl.find_opt sub.cells key with
  | Some c -> c
  | None ->
    let c =
      {
        c_n = 0;
        c_sum = 0.;
        c_min = infinity;
        c_max = neg_infinity;
        c_buckets = (if want_buckets then Array.make nquant 0 else [||]);
      }
    in
    Hashtbl.add sub.cells key c;
    c

let update_cell c agg ~gen ~pgid ~us ~blocks =
  c.c_n <- c.c_n + 1;
  match agg with
  | Count -> ()
  | Sum f | Min f | Max f | Avg f ->
    let v = num_of ~gen ~pgid ~us ~blocks f in
    c.c_sum <- c.c_sum +. v;
    if v < c.c_min then c.c_min <- v;
    if v > c.c_max then c.c_max <- v
  | Quantize f ->
    let v = num_of ~gen ~pgid ~us ~blocks f in
    c.c_sum <- c.c_sum +. v;
    if v < c.c_min then c.c_min <- v;
    if v > c.c_max then c.c_max <- v;
    let b = qbucket v in
    c.c_buckets.(b) <- c.c_buckets.(b) + 1

let fire ?(cls = "") t point ~dev ~op ~gen ~pgid ~us ~blocks =
  List.iter
    (fun sub ->
      if sub.spec.sp_point = point then begin
        sub.s_fired <- sub.s_fired + 1;
        let matches =
          match sub.spec.sp_pred with
          | None -> true
          | Some p -> eval_pred p ~dev ~op ~cls ~gen ~pgid ~us ~blocks
        in
        if matches then begin
          sub.s_matched <- sub.s_matched + 1;
          let key =
            match sub.spec.sp_by with
            | None -> ""
            | Some f -> key_of ~dev ~op ~cls ~gen ~pgid ~us ~blocks f
          in
          let want_buckets =
            match sub.spec.sp_agg with Quantize _ -> true | _ -> false
          in
          let cell = cell_for sub key want_buckets in
          update_cell cell sub.spec.sp_agg ~gen ~pgid ~us ~blocks
        end
      end)
    t.subs

let reset t =
  List.iter
    (fun s ->
      Hashtbl.reset s.cells;
      s.s_fired <- 0;
      s.s_matched <- 0)
    t.subs

(* --- reports --------------------------------------------------------- *)

type row = {
  r_key : string;
  r_n : int;
  r_sum : float;
  r_min : float;
  r_max : float;
  r_buckets : int array;
}

type report = {
  rp_id : int;
  rp_spec : spec;
  rp_fired : int;
  rp_matched : int;
  rp_rows : row list;
}

let row_of_cell key c =
  {
    r_key = key;
    r_n = c.c_n;
    r_sum = c.c_sum;
    r_min = (if c.c_n = 0 || c.c_min = infinity then nan else c.c_min);
    r_max = (if c.c_n = 0 || c.c_max = neg_infinity then nan else c.c_max);
    r_buckets = Array.copy c.c_buckets;
  }

let report_of_sub s =
  let rows =
    Hashtbl.fold (fun k c acc -> row_of_cell k c :: acc) s.cells []
    |> List.sort (fun a b -> compare a.r_key b.r_key)
  in
  {
    rp_id = s.sub_id;
    rp_spec = s.spec;
    rp_fired = s.s_fired;
    rp_matched = s.s_matched;
    rp_rows = rows;
  }

let report t id =
  List.find_opt (fun s -> s.sub_id = id) t.subs
  |> Option.map report_of_sub

let reports t = List.rev_map report_of_sub t.subs

(* --- rendering ------------------------------------------------------- *)

let agg_value agg r =
  match agg with
  | Count -> float_of_int r.r_n
  | Sum _ -> r.r_sum
  | Min _ -> r.r_min
  | Max _ -> r.r_max
  | Avg _ | Quantize _ ->
    if r.r_n = 0 then nan else r.r_sum /. float_of_int r.r_n

let agg_label = function
  | Count -> "count"
  | Sum _ -> "sum"
  | Min _ -> "min"
  | Max _ -> "max"
  | Avg _ -> "avg"
  | Quantize _ -> "avg"

let render_quantize buf r =
  (* The classic DTrace bar chart: one line per non-empty power-of-two
     bucket, padded to the occupied range. *)
  let lo = ref nquant and hi = ref (-1) in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if i < !lo then lo := i;
        if i > !hi then hi := i
      end)
    r.r_buckets;
  if !hi >= 0 then begin
    let lo = max 0 (!lo - 1) and hi = min (nquant - 1) (!hi + 1) in
    let total = Array.fold_left ( + ) 0 r.r_buckets in
    Buffer.add_string buf
      (Printf.sprintf "  %12s %-40s %s\n" "value" "distribution" "count");
    for i = lo to hi do
      let c = r.r_buckets.(i) in
      let bar =
        if total = 0 then 0 else c * 40 / total
      in
      Buffer.add_string buf
        (Printf.sprintf "  %12.0f |%-40s %d\n" (quantize_lower i)
           (String.make bar '@') c)
    done
  end

let render rp =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (print rp.rp_spec);
  Buffer.add_string buf
    (Printf.sprintf "\n  fired %d, matched %d\n" rp.rp_fired rp.rp_matched);
  let quantize = match rp.rp_spec.sp_agg with Quantize _ -> true | _ -> false in
  List.iter
    (fun r ->
      let label = if r.r_key = "" then "(all)" else r.r_key in
      if quantize then begin
        Buffer.add_string buf (Printf.sprintf "  %s: n=%d\n" label r.r_n);
        render_quantize buf r
      end
      else
        Buffer.add_string buf
          (Printf.sprintf "  %-16s %s=%g n=%d\n" label
             (agg_label rp.rp_spec.sp_agg)
             (agg_value rp.rp_spec.sp_agg r)
             r.r_n))
    rp.rp_rows;
  if rp.rp_rows = [] then Buffer.add_string buf "  (no matching events)\n";
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_num v =
  if Float.is_finite v then Printf.sprintf "%g" v else "null"

let report_json rp =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"id\":%d,\"query\":\"%s\",\"point\":\"%s\",\"fired\":%d,\"matched\":%d,\"rows\":["
       rp.rp_id
       (json_escape (print rp.rp_spec))
       (point_name rp.rp_spec.sp_point)
       rp.rp_fired rp.rp_matched);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"key\":\"%s\",\"n\":%d,\"sum\":%s,\"min\":%s,\"max\":%s"
           (json_escape r.r_key) r.r_n (json_num r.r_sum) (json_num r.r_min)
           (json_num r.r_max));
      if Array.length r.r_buckets > 0 then begin
        Buffer.add_string buf ",\"buckets\":[";
        let first = ref true in
        Array.iteri
          (fun i c ->
            if c > 0 then begin
              if not !first then Buffer.add_char buf ',';
              first := false;
              Buffer.add_string buf
                (Printf.sprintf "{\"ge\":%s,\"count\":%d}"
                   (json_num (quantize_lower i))
                   c)
            end)
          r.r_buckets;
        Buffer.add_char buf ']'
      end;
      Buffer.add_char buf '}')
    rp.rp_rows;
  Buffer.add_string buf "]}";
  Buffer.contents buf
