(** Dynamic tracepoints with DTrace-style online aggregation.

    A registry holds a fixed set of named tracepoints ({!point}); the
    instrumented subsystems fire them with a flat argument record
    (device name, operation, generation, process-group id, duration in
    microseconds, block count). Firing sites guard on {!enabled} (or
    {!on} for an optional registry), which is a single array-indexed
    boolean read — with no subscriptions the disabled path performs no
    allocation and no call beyond that check, so probes compiled into
    the hot paths are free until someone asks a question.

    Questions are posed in a tiny expression DSL, one subscription per
    query:

    {v
      POINT [where PRED] [agg AGG] [by FIELD]

      POINT := dev.io | store.commit | ckpt.phase | repl.msg | alloc.defer
      PRED  := disjunctions (||) of conjunctions (&&) of comparisons,
               parenthesised freely; && binds tighter than ||
      CMP   := FIELD (= | != | < | <= | > | >=) VALUE
      AGG   := count | sum(F) | min(F) | max(F) | avg(F) | quantize(F)
      FIELD := dev | op | cls | gen | pgid | us | blocks
    v}

    e.g. ["dev.io where dev = nvme1 && us > 50 agg quantize(us) by op"].
    [quantize] is the DTrace power-of-two histogram. Matching events
    update in-registry aggregation cells keyed by the [by] field; no
    event log is retained. The registry is plain data (no closures), so
    it is safe to marshal along with the structures that reference it. *)

type t

type point =
  | Dev_io        (** every block-device command (read/write/oob) *)
  | Store_commit  (** an object-store generation reaching durability *)
  | Ckpt_phase    (** one checkpoint barrier phase (quiesce/serialize/...) *)
  | Repl_msg      (** a replication frame hitting the wire, or a ship *)
  | Alloc_defer   (** deferred-free lifecycle (park/release/settle) *)

val points : point list
val point_name : point -> string
val point_of_name : string -> point option

val create : unit -> t

val enabled : t -> point -> bool
(** True iff at least one live subscription targets the point. A plain
    array read; the intended firing-site guard. *)

val on : t option -> point -> bool
(** [on (Some t) p] is [enabled t p]; [on None p] is [false]. For
    subsystems that hold an optional registry. *)

val fire :
  ?cls:string -> t -> point ->
  dev:string -> op:string -> gen:int -> pgid:int -> us:float ->
  blocks:int -> unit
(** Deliver one event to every subscription on the point. Callers must
    only reach this under an {!enabled}/{!on} guard so argument
    computation is skipped on the disabled path. Fields that do not
    apply use [""] / [-1]. [cls] is the I/O scheduling class on
    [dev.io] events (["fg"] / ["flush"] / ["bg"] / ["deadline"]);
    it defaults to [""]. *)

(* --- query DSL ------------------------------------------------------- *)

type field = Fdev | Fop | Fcls | Fgen | Fpgid | Fus | Fblocks
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type value = Num of float | Str of string

type pred =
  | Cmp of field * cmp * value
  | And of pred * pred
  | Or of pred * pred

type agg =
  | Count
  | Sum of field
  | Min of field
  | Max of field
  | Avg of field
  | Quantize of field

type spec = {
  sp_point : point;
  sp_pred : pred option;
  sp_agg : agg;
  sp_by : field option;
}

val field_name : field -> string

val parse : string -> (spec, string) result
(** Parse a query; the error is a human-readable message with a
    position hint. *)

val print : spec -> string
(** Canonical rendering; [parse (print s)] returns [Ok s] for every
    well-formed [s] (string values are re-quoted, numbers printed
    shortest-exact). *)

(* --- subscriptions and reports --------------------------------------- *)

val subscribe : t -> spec -> int
(** Returns a subscription id; the point becomes {!enabled}. *)

val unsubscribe : t -> int -> unit
(** Unknown ids are ignored. Points with no remaining subscription
    become disabled again. *)

val subscriptions : t -> (int * spec) list

type row = {
  r_key : string;        (** the [by]-field value, [""] without [by] *)
  r_n : int;             (** matched events folded into this row *)
  r_sum : float;
  r_min : float;         (** [nan] when no numeric samples *)
  r_max : float;
  r_buckets : int array; (** power-of-two buckets (quantize only), else [||] *)
}

type report = {
  rp_id : int;
  rp_spec : spec;
  rp_fired : int;        (** events seen at the point since subscribe *)
  rp_matched : int;      (** events passing the predicate *)
  rp_rows : row list;    (** sorted by key *)
}

val report : t -> int -> report option
val reports : t -> report list

val reset : t -> unit
(** Zero every subscription's cells and counters (keep subscriptions). *)

val quantize_lower : int -> float
(** Lower edge of power-of-two bucket [i]: 0 for bucket 0, else
    [2.^(i-1)]. *)

val render : report -> string
(** Human-readable aggregation table (quantize renders the classic
    DTrace bar chart). *)

val report_json : report -> string
