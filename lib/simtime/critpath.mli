(** Checkpoint critical-path extraction over the span tree.

    One committed checkpoint generation leaves a dependency chain in
    the span recorder: the [ckpt] root with its barrier children
    ([ckpt.quiesce] → [ckpt.serialize] → [ckpt.cow_mark]), the
    background-flush window ([ckpt.flush] on the [ckpt.pipeline]
    track, opened by the pipeline when the epoch retires), the
    store-side commit ([store.flush]) and the per-stripe device
    transfers ([dev.write] on per-device tracks, ordered by the
    commit's completion group, with the superblock write last).

    {!analyze} walks that chain for one generation and splits the
    interval from barrier entry to superblock durability into
    contiguous blame segments:

    - [quiesce] / [serialize] / [cow_mark] — the stop window; their
      sum is the epoch's measured stop time (the bench gates the match
      at 1%),
    - [prep] — barrier exit to commit entry (recorder-ring
      serialization and put queuing),
    - [flush.<dev>] — commit entry to the superblock write, blamed on
      the binding stripe (the device whose completion-group horizon
      gated the superblock's [not_before]),
    - [superblock] — the ordered superblock write itself.

    Segments are contiguous by construction, so blame percentages sum
    to 100 exactly. Alongside the chain, overlapping {e antagonists}
    are measured (work that shares the window without being on the
    chain): backpressure waits ([ckpt.backpressure]), recorder tax
    ([ckpt.recorder]), replication shipping ([repl.ship]),
    out-of-band black-box writes ([dev.oob]), plus caller-supplied
    estimates (mirror-write amplification from provenance). *)

type segment = {
  sg_name : string;      (** quiesce, serialize, cow_mark, prep, flush.<dev>, superblock *)
  sg_track : string;     (** span track the blame lands on *)
  sg_start : Duration.t;
  sg_end : Duration.t;
  sg_us : float;
  sg_pct : float;        (** of barrier entry → durability *)
}

type antagonist = { an_name : string; an_us : float }

type report = {
  cp_gen : int;
  cp_pgid : int;
  cp_barrier_at : Duration.t;
  cp_durable_at : Duration.t;
  cp_stop_us : float;    (** sum of the three barrier segments *)
  cp_total_us : float;   (** barrier entry → durability *)
  cp_segments : segment list;      (** in chain order *)
  cp_antagonists : antagonist list; (** sorted, largest first *)
}

val analyze : Span.t -> ?gen:int -> ?extra:(string * float) list -> unit ->
  (report, string) result
(** Analyze generation [gen] (default: the newest generation with a
    finalized flush span). [extra] appends caller-computed antagonist
    estimates as [(name, us)]. Errors are human-readable: no
    checkpoint spans, unknown generation, or a generation whose flush
    never finalized. *)

val top_antagonist : report -> antagonist option

val publish : Metrics.t -> report -> unit
(** Export the report as the [ckpt.critpath.*] metrics family:
    per-segment [ckpt.critpath.<name>_pct] gauges,
    [ckpt.critpath.stop_us] / [.total_us] / [.gen] gauges,
    per-antagonist [ckpt.critpath.antagonist.<name>_us] gauges, an
    [.analyses] counter and a [ckpt.critpath.top.<antagonist>]
    counter naming the current top antagonist. *)

val render : report -> string
val to_json : report -> string
