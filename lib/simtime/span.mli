(** Typed spans: nested, sim-time-stamped intervals.

    Where {!Tracelog} records point events as strings, a span records
    a named interval with a parent, so a checkpoint becomes a tree —
    [ckpt] containing [ckpt.quiesce], [ckpt.serialize],
    [ckpt.cow_mark], with the background [store.flush] hanging off the
    same root. The recorder keeps a stack of open spans; {!start}
    parents the new span to the top of the stack, and completed
    intervals recorded with {!record} (device transfers, batched
    reads) parent the same way.

    The whole tree exports as Chrome [trace_event] JSON
    ({!to_chrome_json}), loadable in Perfetto / [chrome://tracing]:
    each [track] becomes a named thread row. *)

type t

type span = {
  id : int;
  name : string;
  track : string;
  parent : int;                    (** id of the parent span, [-1] for roots *)
  start_at : Duration.t;
  mutable end_at : Duration.t;
  mutable closed : bool;
  mutable attrs : (string * string) list;
}

val create : ?capacity:int -> Clock.t -> t
(** [capacity] (default 262144) bounds retained spans; once full, new
    spans are still timed and returned but not retained, and
    {!dropped} counts them. *)

val start : t -> ?track:string -> ?attrs:(string * string) list -> string -> span
(** Open a span at the clock's current instant, parented to the
    innermost open span. [track] defaults to ["cpu"]. *)

val finish : t -> ?attrs:(string * string) list -> span -> Duration.t
(** Close the span at the current instant and return its duration.
    Open descendants of the span that were never finished are closed
    at the same instant and counted by {!orphan_finishes}; finishing
    an already-closed span is also counted there (and is otherwise a
    no-op). [attrs] are appended. *)

val with_span : t -> ?track:string -> ?attrs:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [start] / run / [finish], exception-safe. *)

val record : t -> ?track:string -> ?attrs:(string * string) list -> name:string ->
  start_at:Duration.t -> end_at:Duration.t -> unit -> unit
(** Record an already-completed interval (an async device transfer
    whose endpoints are known). Parented to the innermost open span at
    the time of the call. *)

val spans : t -> span list
(** Retained spans in start order. *)

val find : t -> name:string -> span option
(** First retained span with the name. *)

val find_all : t -> name:string -> span list
val roots : t -> span list
val children : t -> span -> span list
val duration : span -> Duration.t

val dropped : t -> int
val orphan_finishes : t -> int
val open_count : t -> int

val clear : t -> unit
(** Forget every retained span and reset the counters. Open spans are
    detached: finishing one later is counted as an orphan finish. *)

val to_chrome_json : t -> string
(** Chrome [trace_event] JSON (the ["traceEvents"] array form).
    Spans are complete ([ph:"X"]) events with microsecond timestamps;
    each distinct track maps to a tid with a [thread_name] metadata
    record. Still-open spans are emitted as ending at the clock's
    current instant. *)
