type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;            (* strictly increasing upper edges *)
  counts : int array;              (* length bounds + 1; last = overflow *)
  mutable n : int;
  mutable sum : float;
  mutable vmax : float;            (* largest observed sample; -inf when empty *)
}

type metric =
  | Mcounter of counter
  | Mgauge of gauge
  | Mhistogram of histogram

type t = {
  clock : Clock.t;
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;     (* reverse registration order *)
  mutable hooks : (unit -> unit) list;  (* reverse registration order *)
  mutable in_hooks : bool;
}

let create clock =
  { clock; tbl = Hashtbl.create 64; order = []; hooks = []; in_hooks = false }

let clock t = t.clock

let on_snapshot t f = t.hooks <- f :: t.hooks

(* A hook that itself snapshots (directly or via a sync routine that
   reads gauges) must not recurse into the hook list. *)
let run_hooks t =
  if not t.in_hooks && t.hooks <> [] then begin
    t.in_hooks <- true;
    Fun.protect ~finally:(fun () -> t.in_hooks <- false)
      (fun () -> List.iter (fun f -> f ()) (List.rev t.hooks))
  end

let register t name m =
  Hashtbl.replace t.tbl name m;
  t.order <- name :: t.order

let kind_name = function
  | Mcounter _ -> "counter"
  | Mgauge _ -> "gauge"
  | Mhistogram _ -> "histogram"

let mismatch name existing wanted =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name existing) wanted)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Mcounter c) -> c
  | Some m -> mismatch name m "counter"
  | None ->
    let c = { c = 0 } in
    register t name (Mcounter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Mgauge g) -> g
  | Some m -> mismatch name m "gauge"
  | None ->
    let g = { g = 0.0 } in
    register t name (Mgauge g);
    g

(* 1us .. 1s, roughly 1-2-5 per decade: resolves both a 10 us quiesce
   and a 100 ms degraded flush on the same axis. *)
let default_duration_bounds_us =
  [| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.;
     1_000.; 2_000.; 5_000.; 10_000.; 20_000.; 50_000.;
     100_000.; 200_000.; 500_000.; 1_000_000. |]

let check_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: empty bounds";
  for i = 0 to n - 1 do
    if not (Float.is_finite bounds.(i)) then
      invalid_arg "Metrics.histogram: non-finite bound";
    if i > 0 && bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done

let histogram t ?(bounds = default_duration_bounds_us) name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Mhistogram h) -> h
  | Some m -> mismatch name m "histogram"
  | None ->
    check_bounds bounds;
    let h =
      { bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        n = 0; sum = 0.0; vmax = Float.neg_infinity }
    in
    register t name (Mhistogram h);
    h

(* --- hot path -------------------------------------------------------- *)

let incr c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  c.c <- c.c + n

let count c = c.c
let set g v = g.g <- v
let set_int g v = g.g <- float_of_int v
let value g = g.g

(* First bucket whose upper edge is >= v; the overflow bucket
   otherwise. Linear scan: bucket arrays are ~20 entries and the
   common phase durations land in the first few probes. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do Stdlib.incr i done;
  !i

let observe h v =
  let i = bucket_index h.bounds v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v > h.vmax then h.vmax <- v

let observe_duration h d = observe h (Duration.to_us d)

let hist_count h = h.n
let hist_sum h = h.sum
let hist_mean h = if h.n = 0 then Float.nan else h.sum /. float_of_int h.n

let bucket_counts h =
  let nb = Array.length h.bounds in
  List.init (nb + 1) (fun i ->
      ((if i < nb then h.bounds.(i) else Float.infinity), h.counts.(i)))

(* [max_seen] is the largest sample ever observed. Ranks landing in
   the overflow bucket report it instead of the last finite edge (a
   sample past the top edge used to be pinned to that edge, silently
   under-reporting p99/p100), and every interpolated estimate is
   clamped to it (a rank at the very top of a bucket cannot exceed
   what was actually seen). *)
let quantile_of ~bounds ~counts ~n ?(max_seen = Float.nan) q =
  if n = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int n in
    let nb = Array.length bounds in
    let overflow () =
      if Float.is_finite max_seen then max_seen else bounds.(nb - 1)
    in
    let clamp v =
      if Float.is_finite max_seen then Float.min v max_seen else v
    in
    let rec walk i cum =
      let c = counts.(i) in
      let cum' = cum +. float_of_int c in
      if cum' >= target && c > 0 then begin
        if i >= nb then overflow ()
        else begin
          let lower = if i = 0 then 0.0 else bounds.(i - 1) in
          let upper = bounds.(i) in
          let frac = (target -. cum) /. float_of_int c in
          clamp (lower +. (frac *. (upper -. lower)))
        end
      end
      else if i >= nb then overflow ()
      else walk (i + 1) cum'
    in
    walk 0 0.0
  end

let quantile h q =
  quantile_of ~bounds:h.bounds ~counts:h.counts ~n:h.n ~max_seen:h.vmax q

(* --- snapshot / export ----------------------------------------------- *)

type value =
  | Counter of int
  | Gauge of float
  | Histogram of {
      bounds : float array;
      counts : int array;
      count : int;
      sum : float;
      max_seen : float;
    }

let value_of = function
  | Mcounter c -> Counter c.c
  | Mgauge g -> Gauge g.g
  | Mhistogram h ->
    Histogram
      { bounds = Array.copy h.bounds; counts = Array.copy h.counts;
        count = h.n; sum = h.sum;
        max_seen = (if h.n = 0 then Float.nan else h.vmax) }

let snapshot t =
  run_hooks t;
  List.rev_map (fun name -> (name, value_of (Hashtbl.find t.tbl name))) t.order

let find t name =
  run_hooks t;
  Option.map value_of (Hashtbl.find_opt t.tbl name)

let jfloat b v =
  if Float.is_finite v then
    (* %.17g roundtrips but is noisy; 6 significant digits is plenty
       for microsecond-scale values. *)
    Buffer.add_string b (Printf.sprintf "%.6g" v)
  else Buffer.add_string b "null"

let jstring b s =
  Buffer.add_char b '"';
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"at_us\": ";
  jfloat b (Duration.to_us (Clock.now t.clock));
  Buffer.add_string b ", \"metrics\": {";
  let first = ref true in
  List.iter
    (fun (name, v) ->
      if !first then first := false else Buffer.add_string b ", ";
      jstring b name;
      Buffer.add_string b ": ";
      match v with
      | Counter c -> Buffer.add_string b (Printf.sprintf "{\"type\": \"counter\", \"value\": %d}" c)
      | Gauge g ->
        Buffer.add_string b "{\"type\": \"gauge\", \"value\": ";
        jfloat b g;
        Buffer.add_char b '}'
      | Histogram { bounds; counts; count; sum; max_seen } ->
        Buffer.add_string b (Printf.sprintf "{\"type\": \"histogram\", \"count\": %d, \"sum\": " count);
        jfloat b sum;
        Buffer.add_string b ", \"mean\": ";
        jfloat b (if count = 0 then Float.nan else sum /. float_of_int count);
        Buffer.add_string b ", \"max\": ";
        jfloat b max_seen;
        List.iter
          (fun q ->
            Buffer.add_string b (Printf.sprintf ", \"p%g\": " (q *. 100.));
            jfloat b (quantile_of ~bounds ~counts ~n:count ~max_seen q))
          [ 0.5; 0.95; 0.99 ];
        Buffer.add_string b ", \"buckets\": [";
        let nb = Array.length bounds in
        for i = 0 to nb do
          if i > 0 then Buffer.add_string b ", ";
          Buffer.add_string b "{\"le\": ";
          if i < nb then jfloat b bounds.(i) else Buffer.add_string b "\"+inf\"";
          Buffer.add_string b (Printf.sprintf ", \"count\": %d}" counts.(i))
        done;
        Buffer.add_string b "]}")
    (snapshot t);
  Buffer.add_string b "}}";
  Buffer.contents b
