(** Timestamped event trace.

    A ring buffer of simulated-time events, used by tests to assert
    ordering properties (e.g. "no external output released before its
    checkpoint became durable") and by examples for narration. *)

type t

type event = { at : Duration.t; subsystem : string; message : string }

val create : ?capacity:int -> Clock.t -> t
(** Default capacity 65536 events; older events are dropped. *)

val record : t -> subsystem:string -> string -> unit
val recordf : t -> subsystem:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val events : t -> event list
(** Oldest first. O(1) amortized: the list is memoized and invalidated
    only when a new event is recorded, so repeated queries between
    records share one materialization. *)

val dropped : t -> int
(** How many events the ring has overwritten (recorded minus
    retained). A non-zero value means {!events} is an incomplete
    suffix of the history. *)

val find : t -> subsystem:string -> substring:string -> event option
(** First event of the subsystem whose message contains the substring. *)

val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
