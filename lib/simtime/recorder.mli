(** The flight recorder: a bounded, generation-stamped telemetry ring
    that survives crashes through the single level store.

    Where {!Metrics} and {!Span} die with the kernel, the recorder's
    ring is serialized into every checkpoint generation as a
    store-managed object, so recovery and failover reopen to the
    telemetry of the last durable generation instead of an empty ring.
    The ring holds recent point events — checkpoint captures and
    retirements, replication ships and acks, SLO alerts, metrics
    snapshots, pipeline/repl state transitions — plus a crash-reason
    slot stamped by whoever performs the recovery (the crashing kernel
    cannot write it).

    Alongside the ring the recorder maintains a tiny {e black box}
    summary: the most recent capture marks (generation, pgroup,
    instant) and the replication ship/ack horizon. The store writes it
    to a dedicated slot outside any generation on every capture, which
    is what lets a post-mortem name the epochs that were in flight when
    the machine died — information the per-generation ring can never
    carry, because a ring recovered from durable generation [g] only
    knows about captures up to [g].

    Everything serializes with a self-contained, checksummed binary
    format (this library deliberately depends on nothing but [fmt]):
    {!export}/{!import_into} move the whole ring through a checkpoint
    record, {!export_blackbox}/{!import_blackbox} move the summary
    through the store's black-box slot. *)

type event = {
  ev_seq : int;          (** monotone sequence number, survives import *)
  ev_at : Duration.t;    (** simulated instant the event was logged *)
  ev_kind : string;      (** e.g. ["ckpt.capture"], ["repl.ack"], ["slo.alert"] *)
  ev_gen : int;          (** generation involved, [-1] when not applicable *)
  ev_detail : string;
  ev_attrs : (string * string) list;
}

(** One checkpoint capture, as remembered by the black box. *)
type capture_mark = { cm_gen : int; cm_pgid : int; cm_at : Duration.t }

(** The black-box summary: enough to reconstruct what was in flight.
    [bb_captures] are the newest capture marks, oldest first;
    [bb_repl] says a replication session was attached (distinguishes
    "no acks yet" from "no replication at all");
    [bb_acked_gen] is the last primary generation a standby
    acknowledged durable ([-1] when replication never acked);
    [bb_shipped] are generations shipped but not yet acked at write
    time. *)
type blackbox = {
  bb_seq : int;
  bb_at : Duration.t;
  bb_captures : capture_mark list;
  bb_repl : bool;
  bb_acked_gen : int;
  bb_shipped : int list;
}

type t

val create : ?capacity:int -> Clock.t -> t
(** [capacity] (default 256) bounds retained events; once full the
    oldest events are overwritten and {!dropped} counts them. *)

val clock : t -> Clock.t
val capacity : t -> int
val occupancy : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events the ring has overwritten since creation/import. *)

val events : t -> event list
(** Oldest first. *)

val log :
  t -> ?gen:int -> ?attrs:(string * string) list -> kind:string -> string -> unit
(** Append one event stamped with the clock's current instant. *)

(* --- structured entry points (each also logs an event) --------------- *)

val mark_inflight : t -> gen:int -> pgid:int -> unit
(** Add a capture mark for an epoch about to commit — no ring event.
    The checkpoint engine calls this {e before} queueing the epoch's
    writes, so the black box naming the epoch can be durable while the
    epoch itself is still in flight. Re-marking a generation refreshes
    its mark. *)

val unmark : t -> gen:int -> unit
(** Drop the capture mark for a generation whose commit aborted. *)

val note_capture : t -> gen:int -> pgid:int -> stop_us:float -> unit
(** A checkpoint capture committed (not necessarily durable yet).
    Logs the ring event and refreshes the epoch's capture mark. *)

val note_retire : t -> gen:int -> unit
(** A captured epoch's generation became durable and was retired. *)

val note_ship : t -> gen:int -> corr:string -> outcome:string -> unit
(** The replica session transmitted [gen] under correlation id [corr].
    Marks the generation shipped-unacked in the black box (unless the
    outcome was an ack). *)

val note_ack : t -> gen:int -> corr:string -> unit
(** The standby acknowledged [gen] durable. Advances the black box's
    ack horizon and clears shipped marks up to it. *)

val note_alert :
  t -> kind:string -> pgid:int -> observed_us:float -> target_us:float -> unit
(** An SLO breach. *)

val note_metrics : t -> (string * float) list -> unit
(** A compact metrics snapshot (selected scalar values). *)

val note_transition : t -> subsystem:string -> string -> unit
(** A pipeline/replication state transition, e.g.
    [note_transition r ~subsystem:"repl" "session degraded"]. *)

(* --- the crash-reason slot ------------------------------------------- *)

val crash_reason : t -> string option
val set_crash_reason : t -> string -> unit
(** Stamped by [recover]/[failover] with the detected cause (e.g.
    ["unclean shutdown: 2 epochs in flight"]); also logged as a
    ["crash"] event. *)

(* --- black-box accessors --------------------------------------------- *)

val last_capture : t -> capture_mark option
(** Newest capture mark, if any. *)

val captures : t -> capture_mark list
(** Retained capture marks, oldest first (bounded). *)

val repl_attached : t -> bool
val set_repl_attached : t -> bool -> unit
(** Whether a replication session is (or was) attached. Survives
    export/import so a post-mortem can tell "nothing acked yet" apart
    from "no replication configured". *)

val adopt_blackbox : t -> blackbox -> unit
(** Merge a recovered on-device summary into the live state: capture
    marks the ring missed (the box is written per capture and so is
    typically one epoch ahead of the stored ring), the replication
    flag, and the ship/ack horizon. Recovery calls this right after
    {!import_into}, keeping black-box state continuous across
    reboots. *)

val seed_repl_horizon : t -> acked:int -> unit
(** Advance the ack horizon without logging an event — used when a
    re-established replication session recovers its acked generation
    from the standby's durable state rather than from a live ACK. *)

val acked_gen : t -> int option
val shipped_unacked : t -> int list
(** Ascending. *)

(* --- serialization ---------------------------------------------------- *)

val export : t -> string
(** The whole recorder state (ring, counters, black-box summary,
    crash-reason slot) as a checksummed binary blob — what the
    checkpoint engine stores under the recorder oid each epoch. *)

val import_into : t -> string -> (unit, string) result
(** Replace [t]'s state with an exported blob's (the clock binding is
    kept). [Error] names the defect (bad magic, checksum mismatch,
    truncation) and leaves [t] untouched. *)

val export_blackbox : t -> string
(** Just the black-box summary, small enough for the store's
    single-block slot; stamped with a sequence number that increments
    per export. *)

val import_blackbox : string -> (blackbox, string) result
