type span = {
  id : int;
  name : string;
  track : string;
  parent : int;
  start_at : Duration.t;
  mutable end_at : Duration.t;
  mutable closed : bool;
  mutable attrs : (string * string) list;
}

type t = {
  clock : Clock.t;
  capacity : int;
  mutable rev : span list;           (* retained spans, newest first *)
  mutable len : int;
  mutable cache : span list option;  (* memoized [List.rev rev] *)
  mutable stack : span list;         (* open spans, innermost first *)
  mutable next_id : int;
  mutable dropped : int;
  mutable orphans : int;
}

let create ?(capacity = 262_144) clock =
  if capacity <= 0 then invalid_arg "Span.create: capacity <= 0";
  { clock; capacity; rev = []; len = 0; cache = None; stack = [];
    next_id = 0; dropped = 0; orphans = 0 }

let duration s = Duration.sub s.end_at s.start_at

let retain t s =
  if t.len >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    t.rev <- s :: t.rev;
    t.len <- t.len + 1;
    t.cache <- None
  end

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let parent_id t = match t.stack with [] -> -1 | s :: _ -> s.id

let start t ?(track = "cpu") ?(attrs = []) name =
  let now = Clock.now t.clock in
  let s =
    { id = fresh_id t; name; track; parent = parent_id t; start_at = now;
      end_at = now; closed = false; attrs }
  in
  retain t s;
  t.stack <- s :: t.stack;
  s

let close s now =
  s.end_at <- now;
  s.closed <- true

let finish t ?(attrs = []) s =
  let now = Clock.now t.clock in
  if s.closed then begin
    t.orphans <- t.orphans + 1;
    duration s
  end
  else begin
    s.attrs <- s.attrs @ attrs;
    if List.memq s t.stack then begin
      (* Close abandoned descendants on the way down. *)
      let rec pop = function
        | [] -> []
        | x :: rest ->
          if x == s then begin
            close x now;
            rest
          end
          else begin
            close x now;
            t.orphans <- t.orphans + 1;
            pop rest
          end
      in
      t.stack <- pop t.stack
    end
    else begin
      close s now;
      t.orphans <- t.orphans + 1
    end;
    duration s
  end

let with_span t ?track ?attrs name f =
  let s = start t ?track ?attrs name in
  match f () with
  | v ->
    ignore (finish t s);
    v
  | exception e ->
    ignore (finish t s);
    raise e

let record t ?(track = "cpu") ?(attrs = []) ~name ~start_at ~end_at () =
  let s =
    { id = fresh_id t; name; track; parent = parent_id t; start_at;
      end_at; closed = true; attrs }
  in
  retain t s

let spans t =
  match t.cache with
  | Some l -> l
  | None ->
    let l = List.rev t.rev in
    t.cache <- Some l;
    l

let find t ~name = List.find_opt (fun s -> String.equal s.name name) (spans t)
let find_all t ~name = List.filter (fun s -> String.equal s.name name) (spans t)
let roots t = List.filter (fun s -> s.parent = -1) (spans t)
let children t p = List.filter (fun s -> s.parent = p.id) (spans t)

let dropped t = t.dropped
let orphan_finishes t = t.orphans
let open_count t = List.length t.stack

let clear t =
  t.rev <- [];
  t.len <- 0;
  t.cache <- None;
  t.stack <- [];
  t.dropped <- 0;
  t.orphans <- 0

(* --- Chrome trace_event export --------------------------------------- *)

let escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_chrome_json t =
  let now = Clock.now t.clock in
  let b = Buffer.create 8192 in
  let tids = Hashtbl.create 8 in
  let tid_order = ref [] in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length tids + 1 in
      Hashtbl.replace tids track tid;
      tid_order := (track, tid) :: !tid_order;
      tid
  in
  (* Assign tids in first-use order before emitting metadata. *)
  List.iter (fun s -> ignore (tid_of s.track)) (spans t);
  Buffer.add_string b "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string b ",\n " in
  List.iter
    (fun (track, tid) ->
      sep ();
      Buffer.add_string b
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
      Buffer.add_string b (string_of_int tid);
      Buffer.add_string b ", \"args\": {\"name\": \"";
      escape b track;
      Buffer.add_string b "\"}}")
    (List.rev !tid_order);
  List.iter
    (fun s ->
      sep ();
      let end_at = if s.closed then s.end_at else now in
      let dur = Duration.to_us (Duration.sub end_at s.start_at) in
      Buffer.add_string b "{\"name\": \"";
      escape b s.name;
      Buffer.add_string b "\", \"cat\": \"aurora\", \"ph\": \"X\", \"ts\": ";
      Buffer.add_string b (Printf.sprintf "%.3f" (Duration.to_us s.start_at));
      Buffer.add_string b ", \"dur\": ";
      Buffer.add_string b (Printf.sprintf "%.3f" dur);
      Buffer.add_string b ", \"pid\": 1, \"tid\": ";
      Buffer.add_string b (string_of_int (tid_of s.track));
      Buffer.add_string b ", \"args\": {\"id\": ";
      Buffer.add_string b (string_of_int s.id);
      Buffer.add_string b ", \"parent\": ";
      Buffer.add_string b (string_of_int s.parent);
      List.iter
        (fun (k, v) ->
          Buffer.add_string b ", \"";
          escape b k;
          Buffer.add_string b "\": \"";
          escape b v;
          Buffer.add_string b "\"")
        s.attrs;
      Buffer.add_string b "}}")
    (spans t);
  Buffer.add_string b "]}";
  Buffer.contents b
