type event = {
  ev_seq : int;
  ev_at : Duration.t;
  ev_kind : string;
  ev_gen : int;
  ev_detail : string;
  ev_attrs : (string * string) list;
}

type capture_mark = { cm_gen : int; cm_pgid : int; cm_at : Duration.t }

type blackbox = {
  bb_seq : int;
  bb_at : Duration.t;
  bb_captures : capture_mark list;
  bb_repl : bool;
  bb_acked_gen : int;
  bb_shipped : int list;
}

(* Capture marks the black box retains: enough to cover any plausible
   in-flight window many times over, small enough that the summary
   always fits the store's single-block slot. *)
let max_capture_marks = 64

type t = {
  clock : Clock.t;
  capacity : int;
  ring : event option array;       (* circular, [head] = next write slot *)
  mutable head : int;
  mutable len : int;
  mutable seq : int;               (* next event sequence number *)
  mutable dropped : int;
  mutable crash : string option;
  mutable marks : capture_mark list;   (* newest first, bounded *)
  mutable repl : bool;                 (* a replication session is/was attached *)
  mutable acked : int;                 (* last acked primary gen, -1 none *)
  mutable shipped : int list;          (* shipped-unacked gens, ascending *)
  mutable bb_seq : int;                (* black-box export counter *)
}

let create ?(capacity = 256) clock =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity <= 0";
  { clock; capacity; ring = Array.make capacity None; head = 0; len = 0;
    seq = 0; dropped = 0; crash = None; marks = []; repl = false; acked = -1;
    shipped = []; bb_seq = 0 }

let clock t = t.clock
let capacity t = t.capacity
let occupancy t = t.len
let dropped t = t.dropped

let events t =
  let first = (t.head - t.len + t.capacity * 2) mod t.capacity in
  List.init t.len (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let push t e =
  if t.len >= t.capacity then t.dropped <- t.dropped + 1
  else t.len <- t.len + 1;
  t.ring.(t.head) <- Some e;
  t.head <- (t.head + 1) mod t.capacity

let log t ?(gen = -1) ?(attrs = []) ~kind detail =
  let e =
    { ev_seq = t.seq; ev_at = Clock.now t.clock; ev_kind = kind; ev_gen = gen;
      ev_detail = detail; ev_attrs = attrs }
  in
  t.seq <- t.seq + 1;
  push t e

(* --- structured entry points ----------------------------------------- *)

let mark_inflight t ~gen ~pgid =
  let mark = { cm_gen = gen; cm_pgid = pgid; cm_at = Clock.now t.clock } in
  let marks = mark :: List.filter (fun m -> m.cm_gen <> gen) t.marks in
  t.marks <-
    (if List.length marks > max_capture_marks then
       List.filteri (fun i _ -> i < max_capture_marks) marks
     else marks)

let unmark t ~gen = t.marks <- List.filter (fun m -> m.cm_gen <> gen) t.marks

let note_capture t ~gen ~pgid ~stop_us =
  log t ~gen
    ~attrs:[ ("pgid", string_of_int pgid);
             ("stop_us", Printf.sprintf "%.1f" stop_us) ]
    ~kind:"ckpt.capture"
    (Printf.sprintf "captured generation %d (pgroup %d)" gen pgid);
  (* Normally a no-op refresh: the checkpoint engine marked the epoch
     in flight before committing it. *)
  mark_inflight t ~gen ~pgid

let note_retire t ~gen =
  log t ~gen ~kind:"ckpt.retire" (Printf.sprintf "generation %d durable" gen)

let note_ship t ~gen ~corr ~outcome =
  log t ~gen
    ~attrs:[ ("corr", corr); ("outcome", outcome) ]
    ~kind:"repl.ship"
    (Printf.sprintf "shipped generation %d (%s)" gen outcome);
  if outcome <> "acked" && gen > t.acked && not (List.mem gen t.shipped) then
    t.shipped <- List.sort Int.compare (gen :: t.shipped)

let note_ack t ~gen ~corr =
  log t ~gen ~attrs:[ ("corr", corr) ] ~kind:"repl.ack"
    (Printf.sprintf "standby acked generation %d durable" gen);
  if gen > t.acked then t.acked <- gen;
  t.shipped <- List.filter (fun g -> g > t.acked) t.shipped

let note_alert t ~kind ~pgid ~observed_us ~target_us =
  log t
    ~attrs:[ ("pgid", string_of_int pgid);
             ("observed_us", Printf.sprintf "%.1f" observed_us);
             ("target_us", Printf.sprintf "%.1f" target_us) ]
    ~kind:"slo.alert"
    (Printf.sprintf "%s breach on pgroup %d: %.1f us (target %.1f us)" kind
       pgid observed_us target_us)

let note_metrics t kvs =
  log t
    ~attrs:(List.map (fun (k, v) -> (k, Printf.sprintf "%g" v)) kvs)
    ~kind:"metrics"
    (Printf.sprintf "metrics snapshot (%d values)" (List.length kvs))

let note_transition t ~subsystem detail =
  log t ~kind:(subsystem ^ ".state") detail

let crash_reason t = t.crash

let set_crash_reason t reason =
  t.crash <- Some reason;
  log t ~kind:"crash" reason

let last_capture t = match t.marks with [] -> None | m :: _ -> Some m
let captures t = List.rev t.marks
let repl_attached t = t.repl
let set_repl_attached t v = t.repl <- v

let adopt_blackbox t bb =
  (* Merge a recovered on-device summary into the live state. The box
     is written out-of-band on every capture, so it is typically newer
     than the ring recovered alongside it — notably it names the very
     generation that ring was stored in (the ring exports before its
     own epoch's mark). *)
  t.repl <- t.repl || bb.bb_repl;
  if bb.bb_acked_gen > t.acked then t.acked <- bb.bb_acked_gen;
  t.shipped <-
    List.filter
      (fun g -> g > t.acked)
      (List.sort_uniq Int.compare (bb.bb_shipped @ t.shipped));
  let extra =
    List.filter
      (fun m -> not (List.exists (fun m' -> m'.cm_gen = m.cm_gen) t.marks))
      bb.bb_captures
  in
  let marks =
    (* Newest first, as the live list keeps them; generations are
       monotone so ordering by gen preserves insertion order. *)
    List.sort (fun a b -> Int.compare b.cm_gen a.cm_gen) (extra @ t.marks)
  in
  t.marks <-
    (if List.length marks > max_capture_marks then
       List.filteri (fun i _ -> i < max_capture_marks) marks
     else marks)

let seed_repl_horizon t ~acked =
  if acked > t.acked then begin
    t.acked <- acked;
    t.shipped <- List.filter (fun g -> g > acked) t.shipped
  end
let acked_gen t = if t.acked < 0 then None else Some t.acked
let shipped_unacked t = t.shipped

(* --- self-contained binary serialization -----------------------------
   This library depends only on [fmt], so the recorder carries its own
   writer/reader: fixed-width 64-bit ints (big-endian), length-prefixed
   strings, an FNV-1a checksum over the payload, and a magic per
   format. Durations serialize as their nanosecond count. *)

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let w_i64 b v =
  for i = 7 downto 0 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (i * 8)) 0xFFL)))
  done

let w_int b v = w_i64 b (Int64.of_int v)

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_dur b d = w_int b (Duration.to_ns d)

exception Corrupt of string

type reader = { data : string; mutable pos : int }

let need r n =
  if r.pos + n > String.length r.data then raise (Corrupt "truncated")

let r_i64 r =
  need r 8;
  let v = ref 0L in
  for _ = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code r.data.[r.pos]));
    r.pos <- r.pos + 1
  done;
  !v

let r_int r = Int64.to_int (r_i64 r)

let r_str r =
  let n = r_int r in
  if n < 0 then raise (Corrupt "negative length");
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_dur r =
  let ns = r_int r in
  if ns < 0 then raise (Corrupt "negative duration");
  Duration.nanoseconds ns

let w_list b f l =
  w_int b (List.length l);
  List.iter (f b) l

let r_list r f =
  let n = r_int r in
  if n < 0 || n > 10_000_000 then raise (Corrupt "bad list length");
  List.init n (fun _ -> f r)

let seal ~magic payload =
  let b = Buffer.create (String.length payload + 32) in
  Buffer.add_string b magic;
  w_int b (String.length payload);
  Buffer.add_string b payload;
  w_i64 b (fnv1a payload);
  Buffer.contents b

let unseal ~magic blob =
  let ml = String.length magic in
  if String.length blob < ml || String.sub blob 0 ml <> magic then
    Error "bad magic"
  else begin
    let r = { data = blob; pos = ml } in
    match
      let n = r_int r in
      if n < 0 then raise (Corrupt "negative payload length");
      need r n;
      let payload = String.sub r.data r.pos n in
      r.pos <- r.pos + n;
      let csum = r_i64 r in
      (payload, csum)
    with
    | payload, csum ->
      if fnv1a payload <> csum then Error "checksum mismatch" else Ok payload
    | exception Corrupt msg -> Error msg
  end

let ring_magic = "AURORA-FREC-v1"
let bbox_magic = "AURORA-BBOX-v1"

let w_event b e =
  w_int b e.ev_seq;
  w_dur b e.ev_at;
  w_str b e.ev_kind;
  w_int b e.ev_gen;
  w_str b e.ev_detail;
  w_list b (fun b (k, v) -> w_str b k; w_str b v) e.ev_attrs

let r_event r =
  let ev_seq = r_int r in
  let ev_at = r_dur r in
  let ev_kind = r_str r in
  let ev_gen = r_int r in
  let ev_detail = r_str r in
  let ev_attrs = r_list r (fun r -> let k = r_str r in let v = r_str r in (k, v)) in
  { ev_seq; ev_at; ev_kind; ev_gen; ev_detail; ev_attrs }

let w_mark b m =
  w_int b m.cm_gen;
  w_int b m.cm_pgid;
  w_dur b m.cm_at

let r_mark r =
  let cm_gen = r_int r in
  let cm_pgid = r_int r in
  let cm_at = r_dur r in
  { cm_gen; cm_pgid; cm_at }

let export t =
  let b = Buffer.create 4096 in
  w_int b t.seq;
  w_int b t.dropped;
  (match t.crash with
   | None -> w_int b 0
   | Some reason -> w_int b 1; w_str b reason);
  w_int b (if t.repl then 1 else 0);
  w_int b t.acked;
  w_list b w_int t.shipped;
  w_list b w_mark (List.rev t.marks);
  w_list b w_event (events t);
  seal ~magic:ring_magic (Buffer.contents b)

let import_into t blob =
  match unseal ~magic:ring_magic blob with
  | Error _ as e -> e
  | Ok payload -> (
    match
      let r = { data = payload; pos = 0 } in
      let seq = r_int r in
      let dropped = r_int r in
      let crash = if r_int r = 1 then Some (r_str r) else None in
      let repl = r_int r = 1 in
      let acked = r_int r in
      let shipped = r_list r r_int in
      let marks = r_list r r_mark in
      let evs = r_list r r_event in
      (seq, dropped, crash, repl, acked, shipped, marks, evs)
    with
    | seq, dropped, crash, repl, acked, shipped, marks, evs ->
      Array.fill t.ring 0 t.capacity None;
      t.head <- 0;
      t.len <- 0;
      t.seq <- seq;
      t.dropped <- dropped;
      t.crash <- crash;
      t.repl <- repl;
      t.acked <- acked;
      t.shipped <- shipped;
      t.marks <- List.rev marks;
      List.iter (push t) evs;
      (* Imported events beyond our capacity count as drops, exactly as
         if they had flowed through this ring live. *)
      Ok ()
    | exception Corrupt msg -> Error msg)

let export_blackbox t =
  t.bb_seq <- t.bb_seq + 1;
  let b = Buffer.create 512 in
  w_int b t.bb_seq;
  w_dur b (Clock.now t.clock);
  w_list b w_mark (List.rev t.marks);
  w_int b (if t.repl then 1 else 0);
  w_int b t.acked;
  w_list b w_int t.shipped;
  seal ~magic:bbox_magic (Buffer.contents b)

let import_blackbox blob =
  match unseal ~magic:bbox_magic blob with
  | Error _ as e -> e
  | Ok payload -> (
    match
      let r = { data = payload; pos = 0 } in
      let bb_seq = r_int r in
      let bb_at = r_dur r in
      let bb_captures = r_list r r_mark in
      let bb_repl = r_int r = 1 in
      let bb_acked_gen = r_int r in
      let bb_shipped = r_list r r_int in
      { bb_seq; bb_at; bb_captures; bb_repl; bb_acked_gen; bb_shipped }
    with
    | bb -> Ok bb
    | exception Corrupt msg -> Error msg)
