(* Checkpoint critical-path extraction. See critpath.mli for the
   segment model. Everything here is a pure read of the span recorder:
   the analyzer can run any number of times, on live or just-restored
   machines, without perturbing what it measures. *)

type segment = {
  sg_name : string;
  sg_track : string;
  sg_start : Duration.t;
  sg_end : Duration.t;
  sg_us : float;
  sg_pct : float;
}

type antagonist = { an_name : string; an_us : float }

type report = {
  cp_gen : int;
  cp_pgid : int;
  cp_barrier_at : Duration.t;
  cp_durable_at : Duration.t;
  cp_stop_us : float;
  cp_total_us : float;
  cp_segments : segment list;
  cp_antagonists : antagonist list;
}

let attr (s : Span.span) k = List.assoc_opt k s.Span.attrs
let attr_int s k = Option.bind (attr s k) int_of_string_opt

let span_us (s : Span.span) =
  Duration.to_us (Duration.sub s.Span.end_at s.Span.start_at)

(* Overlap of a span with a window, in microseconds. *)
let overlap_us (s : Span.span) ~from_ ~until =
  let lo = Duration.max s.Span.start_at from_ in
  let hi = Duration.min s.Span.end_at until in
  if Duration.(hi > lo) then Duration.to_us (Duration.sub hi lo) else 0.

let find_root all ?gen () =
  let with_gen =
    List.filter_map
      (fun (s : Span.span) ->
        if s.Span.name = "ckpt" && s.Span.closed then
          Option.map (fun g -> (g, s)) (attr_int s "gen")
        else None)
      all
  in
  if with_gen = [] then Error "no checkpoint spans recorded"
  else
    let flush_of g =
      List.find_opt
        (fun (s : Span.span) ->
          s.Span.name = "ckpt.flush" && attr_int s "gen" = Some g)
        all
    in
    match gen with
    | Some g -> (
      match List.find_opt (fun (g', _) -> g' = g) with_gen with
      | None -> Error (Printf.sprintf "no checkpoint span for generation %d" g)
      | Some (g, root) -> (
        match flush_of g with
        | None ->
          Error
            (Printf.sprintf
               "generation %d was never finalized (degraded, or still in \
                the pipeline — drain it first)"
               g)
        | Some fl -> Ok (g, root, fl)))
    | None -> (
      let finalized =
        List.filter_map
          (fun (g, root) -> Option.map (fun fl -> (g, root, fl)) (flush_of g))
          with_gen
      in
      match
        List.fold_left
          (fun acc ((g, _, _) as c) ->
            match acc with
            | Some (g', _, _) when g' >= g -> acc
            | _ -> Some c)
          None finalized
      with
      | None -> Error "no finalized checkpoint generation in the span tree"
      | Some c -> Ok c)

let analyze spans ?gen ?(extra = []) () =
  let all = Span.spans spans in
  match find_root all ?gen () with
  | Error e -> Error e
  | Ok (g, root, flush_span) ->
    let barrier_at = root.Span.start_at in
    let durable_at = flush_span.Span.end_at in
    let pgid = Option.value ~default:(-1) (attr_int root "pgid") in
    let total_us = Duration.to_us (Duration.sub durable_at barrier_at) in
    if total_us <= 0. then
      Error (Printf.sprintf "generation %d has an empty window" g)
    else begin
      let child name =
        List.find_opt
          (fun (s : Span.span) -> s.Span.parent = root.Span.id && s.Span.name = name)
          all
      in
      let pct us = us /. total_us *. 100. in
      let seg name track s e =
        let us = Duration.to_us (Duration.sub e s) in
        { sg_name = name; sg_track = track; sg_start = s; sg_end = e;
          sg_us = us; sg_pct = pct us }
      in
      (* Barrier phases: contiguous children of the root, in order. *)
      let barrier_end = ref barrier_at in
      let barrier_segs =
        List.filter_map
          (fun name ->
            match child ("ckpt." ^ name) with
            | Some s ->
              barrier_end := s.Span.end_at;
              Some (seg name "cpu" s.Span.start_at s.Span.end_at)
            | None -> None)
          [ "quiesce"; "serialize"; "cow_mark" ]
      in
      let stop_us =
        List.fold_left (fun acc s -> acc +. s.sg_us) 0. barrier_segs
      in
      (* The store-side commit for this generation bounds the prep
         segment (recorder serialization, put queuing) on the right. *)
      let store_flush =
        List.find_opt
          (fun (s : Span.span) ->
            s.Span.name = "store.flush" && attr_int s "gen" = Some g)
          all
      in
      let commit_entry =
        match store_flush with
        | Some s -> Duration.max s.Span.start_at !barrier_end
        | None -> !barrier_end
      in
      let prep_seg =
        if Duration.(commit_entry > !barrier_end) then
          [ seg "prep" "cpu" !barrier_end commit_entry ]
        else []
      in
      (* Device writes inside the flush window. The superblock is the
         transfer that completes exactly at durability; the binding
         stripe is the device whose last non-superblock transfer
         completes latest (its completion-group horizon gated the
         superblock's not_before). *)
      let dev_writes =
        List.filter
          (fun (s : Span.span) ->
            s.Span.name = "dev.write"
            && Duration.(s.Span.end_at > commit_entry)
            && Duration.(s.Span.end_at <= durable_at))
          all
      in
      let superblock =
        List.find_opt
          (fun (s : Span.span) -> Duration.equal s.Span.end_at durable_at)
          dev_writes
      in
      let sb_start =
        match superblock with
        | Some s -> Duration.max s.Span.start_at commit_entry
        | None -> durable_at
      in
      let binding_track =
        let best = ref None in
        List.iter
          (fun (s : Span.span) ->
            let is_sb =
              match superblock with Some sb -> sb.Span.id = s.Span.id | None -> false
            in
            if (not is_sb) && Duration.(s.Span.end_at <= sb_start) then
              match !best with
              | Some (b : Span.span) when Duration.(b.Span.end_at >= s.Span.end_at) ->
                ()
              | _ -> best := Some s)
          dev_writes;
        match !best with
        | Some s -> s.Span.track
        | None -> (
          match store_flush with Some s -> s.Span.track | None -> "store")
      in
      let flush_seg =
        if Duration.(sb_start > commit_entry) then
          [ seg ("flush." ^ binding_track) binding_track commit_entry sb_start ]
        else []
      in
      let sb_seg =
        match superblock with
        | Some s when Duration.(durable_at > sb_start) ->
          [ seg "superblock" s.Span.track sb_start durable_at ]
        | _ ->
          (* No distinguishable superblock transfer (e.g. a volatile
             cache's synchronous flush): fold the tail into the flush
             segment so the chain still covers the window. *)
          if Duration.(durable_at > sb_start) then
            [ seg ("flush." ^ binding_track) binding_track sb_start durable_at ]
          else []
      in
      let segments = barrier_segs @ prep_seg @ flush_seg @ sb_seg in
      (* Antagonists: work overlapping the window without being on the
         chain. Clipped to the window. *)
      let sum_overlap name =
        List.fold_left
          (fun acc (s : Span.span) ->
            if s.Span.name = name then
              acc +. overlap_us s ~from_:barrier_at ~until:durable_at
            else acc)
          0. all
      in
      let repl_us =
        List.fold_left
          (fun acc (s : Span.span) ->
            if s.Span.name = "repl.ship" then
              match attr_int s "gen" with
              | Some g' when g' = g -> acc +. span_us s
              | _ -> acc +. overlap_us s ~from_:barrier_at ~until:durable_at
            else acc)
          0. all
      in
      (* Per-I/O-class rows: device traffic sharing the window with the
         chain, keyed by the scheduler class stamped on each transfer.
         The generation's own flush transfers (the [dev_writes] chain
         set) are excluded — only competing traffic is an antagonist. *)
      let chain_ids = List.map (fun (s : Span.span) -> s.Span.id) dev_writes in
      let cls_overlap cname =
        List.fold_left
          (fun acc (s : Span.span) ->
            if
              (s.Span.name = "dev.read" || s.Span.name = "dev.write")
              && attr s "cls" = Some cname
              && not (List.mem s.Span.id chain_ids)
            then acc +. overlap_us s ~from_:barrier_at ~until:durable_at
            else acc)
          0. all
      in
      let antagonists =
        [ ("backpressure", sum_overlap "ckpt.backpressure");
          ("recorder", sum_overlap "ckpt.recorder");
          ("repl_ship", repl_us);
          ("oob_writes", sum_overlap "dev.oob");
          ("io_fg", cls_overlap "fg");
          ("io_flush", cls_overlap "flush");
          ("io_bg", cls_overlap "bg");
          ("io_deadline", cls_overlap "deadline") ]
        @ extra
        |> List.filter (fun (_, us) -> us > 0.)
        |> List.map (fun (an_name, an_us) -> { an_name; an_us })
        |> List.sort (fun a b -> compare b.an_us a.an_us)
      in
      Ok
        {
          cp_gen = g;
          cp_pgid = pgid;
          cp_barrier_at = barrier_at;
          cp_durable_at = durable_at;
          cp_stop_us = stop_us;
          cp_total_us = total_us;
          cp_segments = segments;
          cp_antagonists = antagonists;
        }
    end

let top_antagonist r =
  match r.cp_antagonists with [] -> None | a :: _ -> Some a

(* Metric names must be stable identifiers: segment names embed device
   tracks ("flush.nvme.0"), which are already dot-safe. *)
let publish m r =
  Metrics.incr (Metrics.counter m "ckpt.critpath.analyses");
  Metrics.set_int (Metrics.gauge m "ckpt.critpath.gen") r.cp_gen;
  Metrics.set (Metrics.gauge m "ckpt.critpath.stop_us") r.cp_stop_us;
  Metrics.set (Metrics.gauge m "ckpt.critpath.total_us") r.cp_total_us;
  List.iter
    (fun s ->
      Metrics.set (Metrics.gauge m ("ckpt.critpath." ^ s.sg_name ^ "_pct")) s.sg_pct)
    r.cp_segments;
  List.iter
    (fun a ->
      Metrics.set
        (Metrics.gauge m ("ckpt.critpath.antagonist." ^ a.an_name ^ "_us"))
        a.an_us)
    r.cp_antagonists;
  match top_antagonist r with
  | Some a -> Metrics.incr (Metrics.counter m ("ckpt.critpath.top." ^ a.an_name))
  | None -> ()

let render r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "critical path: gen %d (pgroup %d), barrier %.1fus -> durable %.1fus \
        (%.1fus total, stop %.1fus)\n"
       r.cp_gen r.cp_pgid
       (Duration.to_us r.cp_barrier_at)
       (Duration.to_us r.cp_durable_at)
       r.cp_total_us r.cp_stop_us);
  Buffer.add_string buf
    (Printf.sprintf "  %-20s %-10s %12s %7s\n" "segment" "track" "us" "blame");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %-20s %-10s %12.1f %6.1f%% %s\n" s.sg_name s.sg_track
           s.sg_us s.sg_pct
           (String.make (int_of_float (s.sg_pct /. 2.5)) '#')))
    r.cp_segments;
  (match r.cp_antagonists with
  | [] -> Buffer.add_string buf "  antagonists: none\n"
  | ants ->
    Buffer.add_string buf "  antagonists (overlapping the window):\n";
    List.iter
      (fun a ->
        Buffer.add_string buf
          (Printf.sprintf "    %-18s %12.1f us\n" a.an_name a.an_us))
      ants;
    match ants with
    | top :: _ ->
      Buffer.add_string buf (Printf.sprintf "  top antagonist: %s\n" top.an_name)
    | [] -> ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"gen\":%d,\"pgid\":%d,\"barrier_at_us\":%.3f,\"durable_at_us\":%.3f,\
        \"stop_us\":%.3f,\"total_us\":%.3f,\"segments\":["
       r.cp_gen r.cp_pgid
       (Duration.to_us r.cp_barrier_at)
       (Duration.to_us r.cp_durable_at)
       r.cp_stop_us r.cp_total_us);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"track\":\"%s\",\"start_us\":%.3f,\
            \"end_us\":%.3f,\"us\":%.3f,\"pct\":%.3f}"
           (json_escape s.sg_name) (json_escape s.sg_track)
           (Duration.to_us s.sg_start)
           (Duration.to_us s.sg_end)
           s.sg_us s.sg_pct))
    r.cp_segments;
  Buffer.add_string buf "],\"antagonists\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"us\":%.3f}" (json_escape a.an_name)
           a.an_us))
    r.cp_antagonists;
  Buffer.add_string buf "],\"top_antagonist\":";
  (match top_antagonist r with
  | Some a -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape a.an_name))
  | None -> Buffer.add_string buf "null");
  Buffer.add_char buf '}';
  Buffer.contents buf
