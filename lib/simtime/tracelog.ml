type event = { at : Duration.t; subsystem : string; message : string }

type t = {
  clock : Clock.t;
  capacity : int;
  buf : event option array;
  mutable next : int; (* total events ever recorded *)
  mutable cache : event list option; (* memoized [events], oldest first *)
}

let create ?(capacity = 65536) clock =
  if capacity <= 0 then invalid_arg "Tracelog.create: capacity <= 0";
  { clock; capacity; buf = Array.make capacity None; next = 0; cache = None }

let record t ~subsystem message =
  let e = { at = Clock.now t.clock; subsystem; message } in
  t.buf.(t.next mod t.capacity) <- Some e;
  t.next <- t.next + 1;
  t.cache <- None

let recordf t ~subsystem fmt =
  Format.kasprintf (fun s -> record t ~subsystem s) fmt

let dropped t = if t.next > t.capacity then t.next - t.capacity else 0

let events t =
  match t.cache with
  | Some l -> l
  | None ->
    let start = if t.next > t.capacity then t.next - t.capacity else 0 in
    let rec collect i acc =
      if i < start then acc
      else
        match t.buf.(i mod t.capacity) with
        | None -> collect (i - 1) acc
        | Some e -> collect (i - 1) (e :: acc)
    in
    let l = collect (t.next - 1) [] in
    t.cache <- Some l;
    l

let find t ~subsystem ~substring =
  let matches e =
    String.equal e.subsystem subsystem
    &&
    let len_m = String.length e.message and len_s = String.length substring in
    let rec scan i =
      if i + len_s > len_m then false
      else if String.sub e.message i len_s = substring then true
      else scan (i + 1)
    in
    scan 0
  in
  List.find_opt matches (events t)

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.cache <- None

let pp_event ppf e =
  Format.fprintf ppf "[%a] %s: %s" Duration.pp e.at e.subsystem e.message
