open Aurora_simtime
open Aurora_device
open Aurora_posix
open Aurora_objstore

(* --- wire frames ------------------------------------------------------ *)

let frame_magic = "AURORA-REPL-v1"

(* Stop-and-wait ARQ: one data frame in flight, retransmits reuse its
   sequence number, ACK/NAK echo it. The session id fences frames from
   a dead incarnation of the session (a re-established session must
   not honor data still in flight from before a crash). *)
type payload =
  | Data of {
      seq : int;
      primary_gen : Store.gen;
      base : Store.gen option;  (* primary numbering; None = full image *)
      pgid : int;
      corr : string;            (* trace-correlation id for this generation *)
      image : string;
    }
  | Ack of { seq : int; primary_gen : Store.gen }
  | Nak of { seq : int; have : Store.gen option }

let encode_payload p =
  let w = Serial.writer () in
  (match p with
   | Data { seq; primary_gen; base; pgid; corr; image } ->
     Serial.w_u8 w 1;
     Serial.w_int w seq;
     Serial.w_int w primary_gen;
     Serial.w_option w Serial.w_int base;
     Serial.w_int w pgid;
     Serial.w_string w corr;
     Serial.w_string w image
   | Ack { seq; primary_gen } ->
     Serial.w_u8 w 2;
     Serial.w_int w seq;
     Serial.w_int w primary_gen
   | Nak { seq; have } ->
     Serial.w_u8 w 3;
     Serial.w_int w seq;
     Serial.w_option w Serial.w_int have);
  Serial.contents w

let decode_payload body =
  let r = Serial.reader body in
  let p =
    match Serial.r_u8 r with
    | 1 ->
      let seq = Serial.r_int r in
      let primary_gen = Serial.r_int r in
      let base = Serial.r_option r Serial.r_int in
      let pgid = Serial.r_int r in
      let corr = Serial.r_string r in
      let image = Serial.r_string r in
      Data { seq; primary_gen; base; pgid; corr; image }
    | 2 ->
      let seq = Serial.r_int r in
      let primary_gen = Serial.r_int r in
      Ack { seq; primary_gen }
    | 3 ->
      let seq = Serial.r_int r in
      let have = Serial.r_option r Serial.r_int in
      Nak { seq; have }
    | n -> raise (Serial.Corrupt (Printf.sprintf "replica frame tag %d" n))
  in
  Serial.expect_end r;
  p

(* Frame = magic, session id, CRC over the payload, payload. The CRC is
   the same FNV-1a the image format uses; a bit flipped anywhere in the
   payload (or a truncated frame) fails decode and the frame is treated
   as lost — retransmission recovers it. *)
let encode_frame ~sid p =
  let body = encode_payload p in
  let w = Serial.writer () in
  Serial.w_string w frame_magic;
  Serial.w_int w sid;
  Serial.w_int64 w (Sendrecv.checksum body);
  Serial.w_string w body;
  Serial.contents w

let decode_frame raw =
  match
    let r = Serial.reader raw in
    let m = Serial.r_string r in
    if not (String.equal m frame_magic) then raise (Serial.Corrupt "bad frame magic");
    let sid = Serial.r_int r in
    let crc = Serial.r_int64 r in
    let body = Serial.r_string r in
    Serial.expect_end r;
    if not (Int64.equal (Sendrecv.checksum body) crc) then
      raise (Serial.Corrupt "frame checksum mismatch");
    (sid, decode_payload body)
  with
  | v -> Ok v
  | exception Serial.Corrupt msg -> Error msg

(* --- sessions --------------------------------------------------------- *)

exception Session_failed of string

let () =
  Printexc.register_printer (function
    | Session_failed msg -> Some (Printf.sprintf "Replica.Session_failed(%s)" msg)
    | _ -> None)

type stats = {
  ships : int;
  acked : int;
  skipped : int;
  retransmits : int;
  resyncs : int;
  naks : int;
  duplicate_frames : int;
  corrupt_rejects : int;
  torn_imports : int;
  stale_frames : int;
  gave_up : int;
  full_images : int;
  delta_images : int;
  wire_bytes : int;
}

let zero_stats =
  { ships = 0; acked = 0; skipped = 0; retransmits = 0; resyncs = 0; naks = 0;
    duplicate_frames = 0; corrupt_rejects = 0; torn_imports = 0; stale_frames = 0;
    gave_up = 0; full_images = 0; delta_images = 0; wire_bytes = 0 }

type t = {
  link : Netlink.t;
  primary_side : Netlink.side;
  primary : Store.t;
  mutable standby : Store.t;
  clock : Clock.t;
  sid : int;
  ack_timeout : Duration.t;
  max_attempts : int;
  max_backoff : Duration.t;
  prng : Prng.t;  (* retransmission jitter *)
  metrics : Metrics.t option;
  spans : Span.t option;
  probes : Probe.t option;
  mutable next_seq : int;
  (* primary-side transmitter state *)
  mutable acked : Store.gen option;  (* last primary gen acked durable *)
  mutable state : [ `Idle | `Degraded ];
  (* standby-side receiver state (both ends live in one simulated
     universe, so the session object carries both) *)
  mutable rx_last_seq : int;
  mutable rx_latest : Store.gen option;  (* latest primary gen applied *)
  mutable map : (Store.gen * Store.gen) list;  (* primary -> standby, ascending *)
  mutable st : stats;
}

let repl_name_prefix = "repl.gen:"

(* The durable name carries the trace-correlation id the primary put
   on the wire ("repl.gen:<g>@<corr>"), so a timeline merged after
   failover can match the standby's imports to the primary's ship
   spans without the session object. Names without the suffix (or
   from before a corr existed) still parse. *)
let repl_gen_name ?corr g =
  match corr with
  | None -> Printf.sprintf "%s%d" repl_name_prefix g
  | Some c -> Printf.sprintf "%s%d@%s" repl_name_prefix g c

let parse_repl_gen_name name =
  let plen = String.length repl_name_prefix in
  if String.length name > plen && String.starts_with ~prefix:repl_name_prefix name
  then
    let rest = String.sub name plen (String.length name - plen) in
    let num =
      match String.index_opt rest '@' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    int_of_string_opt num
  else None

let parse_repl_corr name =
  if String.starts_with ~prefix:repl_name_prefix name then
    match String.index_opt name '@' with
    | Some i -> Some (String.sub name (i + 1) (String.length name - i - 1))
    | None -> None
  else None

let corr_id t ~gen = Printf.sprintf "s%d-g%d" t.sid gen

(* The durable session state: which primary generation each standby
   generation holds, recorded as generation names at import time. *)
let scan_mapping standby =
  Store.named standby
  |> List.filter_map (fun (name, sgen) ->
      match parse_repl_gen_name name with
      | Some pgen -> Some (pgen, sgen)
      | None -> None)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let session_counter = ref 0

let bump t f = t.st <- f t.st

let metric_incr t name =
  Option.iter (fun m -> Metrics.incr (Metrics.counter m name)) t.metrics

let establish ?(ack_timeout = Duration.milliseconds 5) ?(max_attempts = 10)
    ?(max_backoff = Duration.milliseconds 40) ?metrics ?spans ?probes ~link
    ~primary_side ~primary ~standby () =
  if max_attempts < 1 then invalid_arg "Replica.establish: max_attempts < 1";
  incr session_counter;
  let map = scan_mapping standby in
  (* A standby that acknowledged generations this primary no longer
     holds is AHEAD of it: the primary crashed before those became
     durable and recovered to an older committed prefix. Generation
     numbers past that prefix may be reused with different content, so
     nothing on such a standby can be trusted as a delta base.
     Quarantine the torn session state — reformat and resync in
     full. *)
  let ahead =
    match Store.latest primary with
    | None -> map <> []
    | Some pl -> List.exists (fun (p, _) -> p > pl) map
  in
  let standby, map =
    if ahead then (Store.format ~dev:(Store.device standby) (), [])
    else (standby, map)
  in
  let latest = match List.rev map with (p, _) :: _ -> Some p | [] -> None in
  (match metrics with
   | Some m when ahead -> Metrics.incr (Metrics.counter m "repl.quarantines")
   | _ -> ());
  {
    link; primary_side; primary; standby;
    clock = Devarray.clock (Store.device primary);
    sid = !session_counter;
    ack_timeout; max_attempts; max_backoff;
    prng = Prng.create ~seed:(Int64.of_int (0x5EED + !session_counter));
    metrics; spans; probes;
    next_seq = 1;
    acked = latest;
    state = `Idle;
    rx_last_seq = 0;
    rx_latest = latest;
    map;
    st = zero_stats;
  }

let state t = t.state
let stats t = t.st
let link t = t.link
let primary_store t = t.primary
let standby_store t = t.standby
let acked_gen t = t.acked
let mapping t = t.map
let standby_gen_of t pgen = List.assoc_opt pgen t.map
let standby_latest t = match List.rev t.map with p :: _ -> Some p | [] -> None

let lag t =
  let gens = Store.generations t.primary in
  match t.acked with
  | None -> List.length gens
  | Some a -> List.length (List.filter (fun g -> g > a) gens)

let standby_side t : Netlink.side =
  match t.primary_side with `A -> `B | `B -> `A

let send_frame t ~from_ p =
  let raw = encode_frame ~sid:t.sid p in
  bump t (fun s -> { s with wire_bytes = s.wire_bytes + String.length raw });
  if Probe.on t.probes Repl_msg then begin
    let op, gen, pgid =
      match p with
      | Data { primary_gen; pgid; _ } -> ("data", primary_gen, pgid)
      | Ack { primary_gen; _ } -> ("ack", primary_gen, -1)
      | Nak { have; _ } -> ("nak", Option.value have ~default:(-1), -1)
    in
    Probe.fire (Option.get t.probes) Repl_msg ~dev:"link" ~op ~gen ~pgid
      ~us:0.0 ~blocks:(String.length raw)
  end;
  ignore (Netlink.send t.link ~from_ raw)

(* --- standby end ------------------------------------------------------ *)

let standby_apply t ~seq ~primary_gen ~base ~corr ~image =
  if seq <= t.rx_last_seq then begin
    (* Duplicate (retransmit of something already applied, or a link
       duplication): re-ACK so the primary can move on; never
       re-import. *)
    bump t (fun s -> { s with duplicate_frames = s.duplicate_frames + 1 });
    metric_incr t "repl.duplicate_frames";
    match t.rx_latest with
    | Some g -> send_frame t ~from_:(standby_side t) (Ack { seq; primary_gen = g })
    | None -> send_frame t ~from_:(standby_side t) (Nak { seq; have = None })
  end
  else if List.mem_assoc primary_gen t.map then begin
    (* A fresh frame for a generation already applied durably: the ACK
       was lost and the primary gave up on that ship. Re-ACK instead of
       re-importing. *)
    t.rx_last_seq <- seq;
    bump t (fun s -> { s with duplicate_frames = s.duplicate_frames + 1 });
    metric_incr t "repl.duplicate_frames";
    send_frame t ~from_:(standby_side t) (Ack { seq; primary_gen })
  end
  else if
    (* A delta only applies on top of exactly the generation it was cut
       against; anything else (standby lost state in a crash, primary
       resumed an older session) is NAKed with what the standby holds
       so the primary can resync from the last common generation. *)
    match base with None -> false | Some b -> t.rx_latest <> Some b
  then begin
    bump t (fun s -> { s with naks = s.naks + 1 });
    send_frame t ~from_:(standby_side t) (Nak { seq; have = t.rx_latest })
  end
  else begin
    match
      (* ACK durability, not arrival: wait for the imported
         generation's superblock, record the primary-generation name
         durably, then acknowledge. *)
      let sgen, durable = Sendrecv.import t.standby image in
      Store.wait_durable t.standby durable;
      Store.name_generation t.standby sgen (repl_gen_name ~corr primary_gen);
      sgen
    with
    | exception Restore.Error (Restore.Bad_image _) ->
      (* Integrity-verified imports only: the torn image never reaches
         the store (the open generation, if any, is aborted) and the
         primary is told to resend. *)
      (try Store.abort_generation t.standby with _ -> ());
      bump t (fun s -> { s with corrupt_rejects = s.corrupt_rejects + 1 });
      metric_incr t "repl.corrupt_rejects";
      send_frame t ~from_:(standby_side t) (Nak { seq; have = t.rx_latest })
    | exception Store.Fail _ ->
      (* The standby's own media failed mid-import: abort the torn
         generation and NAK — a retransmit retries the import (transient
         device faults heal on retry; persistent ones keep the session
         degraded rather than ack anything unverified). *)
      (try Store.abort_generation t.standby with _ -> ());
      bump t (fun s -> { s with torn_imports = s.torn_imports + 1 });
      metric_incr t "repl.torn_imports";
      send_frame t ~from_:(standby_side t) (Nak { seq; have = t.rx_latest })
    | sgen ->
      t.rx_last_seq <- seq;
      t.rx_latest <- Some primary_gen;
      t.map <- t.map @ [ (primary_gen, sgen) ];
      send_frame t ~from_:(standby_side t) (Ack { seq; primary_gen })
  end

let pump_standby t =
  let side = standby_side t in
  let rec loop () =
    match Netlink.recv t.link ~side with
    | None -> ()
    | Some raw ->
      (match decode_frame raw with
       | Error _ ->
         bump t (fun s -> { s with corrupt_rejects = s.corrupt_rejects + 1 });
         metric_incr t "repl.corrupt_rejects"
       | Ok (sid, _) when sid <> t.sid ->
         bump t (fun s -> { s with stale_frames = s.stale_frames + 1 })
       | Ok (_, Data { seq; primary_gen; base; corr; image; pgid = _ }) ->
         standby_apply t ~seq ~primary_gen ~base ~corr ~image
       | Ok (_, (Ack _ | Nak _)) -> ());
      loop ()
  in
  loop ()

(* --- primary end ------------------------------------------------------ *)

let pump_primary t ~want_seq =
  let rec loop verdict =
    match Netlink.recv t.link ~side:t.primary_side with
    | None -> verdict
    | Some raw ->
      let verdict =
        match decode_frame raw with
        | Error _ ->
          bump t (fun s -> { s with corrupt_rejects = s.corrupt_rejects + 1 });
          metric_incr t "repl.corrupt_rejects";
          verdict
        | Ok (sid, _) when sid <> t.sid ->
          bump t (fun s -> { s with stale_frames = s.stale_frames + 1 });
          verdict
        | Ok (_, Ack { seq; primary_gen }) ->
          (match t.acked with
           | Some a when a >= primary_gen -> ()
           | _ -> t.acked <- Some primary_gen);
          if seq = want_seq then `Acked else verdict
        | Ok (_, Nak { seq; have }) ->
          if seq = want_seq then begin
            bump t (fun s -> { s with naks = s.naks + 1 });
            metric_incr t "repl.naks";
            (* The NAK carries the standby's view: adopt it as the last
               common generation. *)
            t.acked <- have;
            `Nak
          end
          else verdict
        | Ok (_, Data _) -> verdict
      in
      loop verdict
  in
  loop `Nothing

(* Advance the clock to the next frame arrival on either side, bounded
   by [deadline]. [false] = nothing arrives before the deadline (the
   clock is then at the deadline: a retransmission timeout). *)
let step_to_next_event t ~deadline =
  let next =
    match
      ( Netlink.next_arrival t.link ~side:(standby_side t),
        Netlink.next_arrival t.link ~side:t.primary_side )
    with
    | None, None -> None
    | Some a, None | None, Some a -> Some a
    | Some a, Some b -> Some (Duration.min a b)
  in
  match next with
  | Some a when Duration.(a <= deadline) ->
    Clock.advance_to t.clock a;
    true
  | Some _ | None ->
    Clock.advance_to t.clock deadline;
    false

(* --- shipping --------------------------------------------------------- *)

type ship_report = {
  sh_gen : Store.gen;
  sh_outcome : [ `Acked | `Gave_up | `Skipped ];
  sh_mode : [ `Delta of Store.gen | `Full ];
  sh_attempts : int;
  sh_resyncs : int;
  sh_rtt : Duration.t;
  sh_bytes : int;
  sh_corr : string;
}

(* Delta against the last acked generation when the primary still
   holds it; a gap (history GC outran the standby) forces a full
   resync. *)
let choose_mode t ~gen =
  match t.acked with
  | Some a when a < gen && List.mem a (Store.generations t.primary) -> `Delta a
  | Some _ | None -> `Full

let observe_rtt t rtt =
  Option.iter
    (fun m -> Metrics.observe_duration (Metrics.histogram m "repl.ack_rtt_us") rtt)
    t.metrics

let set_lag_gauge t =
  Option.iter (fun m -> Metrics.set_int (Metrics.gauge m "repl.lag") (lag t)) t.metrics

let ship t ~gen ~pgid =
  let already = match t.acked with Some a -> gen <= a | None -> false in
  if already then begin
    bump t (fun s -> { s with skipped = s.skipped + 1 });
    { sh_gen = gen; sh_outcome = `Skipped; sh_mode = `Full; sh_attempts = 0;
      sh_resyncs = 0; sh_rtt = Duration.zero; sh_bytes = 0;
      sh_corr = corr_id t ~gen }
  end
  else begin
    let started = Clock.now t.clock in
    bump t (fun s -> { s with ships = s.ships + 1 });
    metric_incr t "repl.ships";
    let resyncs = ref 0 in
    let attempts = ref 0 in
    let mode = ref (choose_mode t ~gen) in
    (match (!mode, t.acked) with
     | `Full, Some _ ->
       (* Gap: the base the standby holds is gone from the primary. *)
       incr resyncs;
       bump t (fun s -> { s with resyncs = s.resyncs + 1 });
       metric_incr t "repl.resyncs"
     | _ -> ());
    let bytes = ref 0 in
    let build () =
      let base = match !mode with `Delta a -> Some a | `Full -> None in
      (match !mode with
       | `Full -> bump t (fun s -> { s with full_images = s.full_images + 1 })
       | `Delta _ -> bump t (fun s -> { s with delta_images = s.delta_images + 1 }));
      let image = Sendrecv.export t.primary ~gen ~pgid ?base () in
      bytes := String.length image;
      let seq = t.next_seq in
      t.next_seq <- t.next_seq + 1;
      (seq, Data { seq; primary_gen = gen; base; pgid; corr = corr_id t ~gen; image })
    in
    let seq = ref 0 and frame = ref (Nak { seq = 0; have = None }) in
    let transmit () =
      let s, f = build () in
      seq := s;
      frame := f;
      attempts := 1;
      send_frame t ~from_:t.primary_side f
    in
    transmit ();
    let timeout = ref t.ack_timeout in
    let jitter () =
      (* Deterministic jitter, up to a quarter of the current timeout:
         decorrelates retransmissions from periodic partition edges. *)
      Duration.of_us_float (Prng.float t.prng (Duration.to_us !timeout /. 4.))
    in
    let rec await deadline =
      pump_standby t;
      match pump_primary t ~want_seq:!seq with
      | `Acked -> `Acked
      | `Nak ->
        if !resyncs >= 4 then `Gave_up
        else begin
          (* Resync from the last common generation the NAK reported
             (full when there is none usable). *)
          incr resyncs;
          bump t (fun s -> { s with resyncs = s.resyncs + 1 });
          metric_incr t "repl.resyncs";
          mode := choose_mode t ~gen;
          transmit ();
          timeout := t.ack_timeout;
          await (Duration.add (Clock.now t.clock) (Duration.add !timeout (jitter ())))
        end
      | `Nothing ->
        if step_to_next_event t ~deadline then await deadline
        else if !attempts >= t.max_attempts then `Gave_up
        else begin
          (* Retransmission timeout: same frame, same sequence number,
             exponential backoff plus jitter — all simulated time. *)
          incr attempts;
          bump t (fun s -> { s with retransmits = s.retransmits + 1 });
          metric_incr t "repl.retransmits";
          send_frame t ~from_:t.primary_side !frame;
          timeout := Duration.min t.max_backoff (Duration.scale !timeout 2);
          await (Duration.add (Clock.now t.clock) (Duration.add !timeout (jitter ())))
        end
    in
    let outcome =
      await (Duration.add (Clock.now t.clock) (Duration.add !timeout (jitter ())))
    in
    let rtt = Duration.sub (Clock.now t.clock) started in
    (match outcome with
     | `Acked ->
       t.state <- `Idle;
       bump t (fun s -> { s with acked = s.acked + 1 });
       metric_incr t "repl.acked";
       observe_rtt t rtt
     | `Gave_up ->
       t.state <- `Degraded;
       bump t (fun s -> { s with gave_up = s.gave_up + 1 });
       metric_incr t "repl.gave_up");
    set_lag_gauge t;
    if Probe.on t.probes Repl_msg then
      Probe.fire (Option.get t.probes) Repl_msg ~dev:"link" ~op:"ship" ~gen
        ~pgid ~us:(Duration.to_us rtt) ~blocks:!bytes;
    Option.iter
      (fun sp ->
        Span.record sp ~track:"repl" ~name:"repl.ship"
          ~attrs:
            [ ("gen", string_of_int gen);
              ("corr", corr_id t ~gen);
              ("mode", match !mode with `Full -> "full" | `Delta b -> Printf.sprintf "delta(%d)" b);
              ("attempts", string_of_int !attempts);
              ("outcome", match outcome with `Acked -> "acked" | `Gave_up -> "gave_up") ]
          ~start_at:started ~end_at:(Clock.now t.clock) ())
      t.spans;
    { sh_gen = gen; sh_outcome = (outcome :> [ `Acked | `Gave_up | `Skipped ]);
      sh_mode = !mode; sh_attempts = !attempts; sh_resyncs = !resyncs;
      sh_rtt = rtt; sh_bytes = !bytes; sh_corr = corr_id t ~gen }
  end

let ship_exn t ~gen ~pgid =
  let r = ship t ~gen ~pgid in
  if r.sh_outcome = `Gave_up then
    raise
      (Session_failed
         (Printf.sprintf "generation %d not acknowledged after %d attempts" gen
            r.sh_attempts));
  r

(* --- standby failure -------------------------------------------------- *)

let crash_standby t =
  let dev = Store.device t.standby in
  Devarray.crash dev;
  let s = Store.open_exn ~dev in
  t.standby <- s;
  let map = scan_mapping s in
  t.map <- map;
  t.rx_latest <- (match List.rev map with (p, _) :: _ -> Some p | [] -> None)
