open Aurora_simtime

type kind = Stop_time | Restore_latency

type alert = {
  al_kind : kind;
  al_pgid : int;
  al_at : Duration.t;
  al_observed_us : float;
  al_target_us : float;
  al_window_p99_us : float;
  al_top_procs : Types.proc_attribution list;
  al_top_objects : Types.obj_attribution list;
}

(* Fixed-size circular sample window; quantiles sort a copy on demand
   (the window is tens of entries, and only inspection paths ask). *)
type window = {
  buf : float array;
  mutable n : int;                 (* samples stored, <= Array.length buf *)
  mutable next : int;              (* write cursor *)
}

let make_window size = { buf = Array.make size 0.0; n = 0; next = 0 }

let window_add w v =
  w.buf.(w.next) <- v;
  w.next <- (w.next + 1) mod Array.length w.buf;
  if w.n < Array.length w.buf then w.n <- w.n + 1

let window_quantile w p =
  if p < 0.0 || p > 100.0 then invalid_arg "Slo.quantile: p outside [0,100]";
  if w.n = 0 then Float.nan
  else begin
    let s = Array.sub w.buf 0 w.n in
    Array.sort Float.compare s;
    (* Nearest rank, matching Stats.percentile. *)
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int w.n)) in
    s.(Int.max 0 (Int.min (w.n - 1) (rank - 1)))
  end

type t = {
  mutable stop_target : Duration.t option;
  mutable restore_target : Duration.t option;
  stop_window : window;
  restore_window : window;
  mutable alerts : alert list;     (* newest first *)
  max_alerts : int;
  top_k : int;
  mutable stop_breaches : int;
  mutable restore_breaches : int;
}

let create ?(window = 32) ?(max_alerts = 64) ?(top_k = 3) () =
  if window < 1 then invalid_arg "Slo.create: window must be >= 1";
  if max_alerts < 1 then invalid_arg "Slo.create: max_alerts must be >= 1";
  if top_k < 0 then invalid_arg "Slo.create: negative top_k";
  { stop_target = None; restore_target = None;
    stop_window = make_window window; restore_window = make_window window;
    alerts = []; max_alerts; top_k; stop_breaches = 0; restore_breaches = 0 }

let set_stop_target t d = t.stop_target <- d
let set_restore_target t d = t.restore_target <- d
let stop_target t = t.stop_target
let restore_target t = t.restore_target

let window_of t = function
  | Stop_time -> t.stop_window
  | Restore_latency -> t.restore_window

let samples t k = (window_of t k).n
let quantile t k p = window_quantile (window_of t k) p
let alerts t = t.alerts

let breaches t = function
  | Stop_time -> t.stop_breaches
  | Restore_latency -> t.restore_breaches

let kind_label = function
  | Stop_time -> "stop_time"
  | Restore_latency -> "restore_latency"

let retain t alert =
  let kept =
    List.filteri (fun i _ -> i < t.max_alerts - 1) t.alerts
  in
  t.alerts <- alert :: kept

let observe t ~kind ?metrics ?spans ~pgid ?attribution ~now observed =
  let w = window_of t kind in
  let observed_us = Duration.to_us observed in
  window_add w observed_us;
  let target =
    match kind with Stop_time -> t.stop_target | Restore_latency -> t.restore_target
  in
  match target with
  | Some target_d when Duration.(observed > target_d) ->
    (match kind with
     | Stop_time -> t.stop_breaches <- t.stop_breaches + 1
     | Restore_latency -> t.restore_breaches <- t.restore_breaches + 1);
    let top_procs, top_objects =
      match attribution with
      | Some a -> (Types.top_procs ~k:t.top_k a, Types.top_objects ~k:t.top_k a)
      | None -> ([], [])
    in
    let alert =
      { al_kind = kind; al_pgid = pgid; al_at = now;
        al_observed_us = observed_us;
        al_target_us = Duration.to_us target_d;
        al_window_p99_us = window_quantile w 99.0;
        al_top_procs = top_procs; al_top_objects = top_objects }
    in
    retain t alert;
    Option.iter
      (fun m -> Metrics.incr (Metrics.counter m ("slo.breach." ^ kind_label kind)))
      metrics;
    Option.iter
      (fun s ->
        let start_at =
          if Duration.(now > observed) then Duration.sub now observed
          else Duration.zero
        in
        Span.record s ~track:"slo"
          ~attrs:
            [ ("kind", kind_label kind);
              ("pgid", string_of_int pgid);
              ("observed_us", Printf.sprintf "%.1f" observed_us);
              ("target_us", Printf.sprintf "%.1f" alert.al_target_us) ]
          ~name:("slo.breach." ^ kind_label kind)
          ~start_at ~end_at:now ())
      spans;
    Some alert
  | Some _ | None -> None

let observe_stop t ?metrics ?spans ~pgid ?attribution ~now observed =
  observe t ~kind:Stop_time ?metrics ?spans ~pgid ?attribution ~now observed

let observe_restore t ?metrics ?spans ~pgid ?attribution ~now observed =
  observe t ~kind:Restore_latency ?metrics ?spans ~pgid ?attribution ~now observed

let clear t =
  t.stop_window.n <- 0;
  t.stop_window.next <- 0;
  t.restore_window.n <- 0;
  t.restore_window.next <- 0;
  t.alerts <- [];
  t.stop_breaches <- 0;
  t.restore_breaches <- 0
