(** Service-level-objective watchdog for the checkpoint pipeline.

    Aurora's pitch is a bounded application stop time (§3: "the
    application only stops for the serialization phase") and fast
    restores; this module turns those promises into watched numbers.
    It keeps a bounded rolling window of stop-time and restore-latency
    samples per machine, compares each new sample against optional
    targets, and on a breach records a typed {!alert} carrying the
    offending group's top-k attribution rows — so the alert answers
    not just "the stop time blew the budget" but "and these processes
    / VM objects paid for it".

    Breaches are also pushed into the observability plane: a
    [slo.breach.stop_time] / [slo.breach.restore_latency] counter in
    the metrics registry and an interval on the ["slo"] span track
    (visible in the Chrome trace next to the checkpoint that caused
    it). Targets are unset by default: an unconfigured watchdog only
    accumulates quantiles. *)

open Aurora_simtime

type kind = Stop_time | Restore_latency

type alert = {
  al_kind : kind;
  al_pgid : int;
  al_at : Duration.t;              (** sim-time instant of the breach *)
  al_observed_us : float;
  al_target_us : float;
  al_window_p99_us : float;        (** rolling p99 including this sample *)
  al_top_procs : Types.proc_attribution list;
  al_top_objects : Types.obj_attribution list;
      (** top-k rows of the attribution current at breach time;
          empty when the group has never been attributed (e.g. a
          restore before any checkpoint this boot). *)
}

type t

val create : ?window:int -> ?max_alerts:int -> ?top_k:int -> unit -> t
(** [window] (default 32) bounds the rolling sample windows;
    [max_alerts] (default 64) bounds retained alerts (oldest dropped);
    [top_k] (default 3) rows of each attribution kind are copied into
    an alert. *)

val set_stop_target : t -> Duration.t option -> unit
val set_restore_target : t -> Duration.t option -> unit
(** [None] stops watching that objective (existing alerts are kept). *)

val stop_target : t -> Duration.t option
val restore_target : t -> Duration.t option

val observe_stop :
  t -> ?metrics:Metrics.t -> ?spans:Span.t -> pgid:int ->
  ?attribution:Types.ckpt_attribution -> now:Duration.t -> Duration.t ->
  alert option
(** Record one checkpoint stop-time sample; returns the alert when the
    sample exceeds the target. [now] is the instant the sample ended
    (the breach interval [now - observed, now] is what lands on the
    ["slo"] span track). *)

val observe_restore :
  t -> ?metrics:Metrics.t -> ?spans:Span.t -> pgid:int ->
  ?attribution:Types.ckpt_attribution -> now:Duration.t -> Duration.t ->
  alert option

val alerts : t -> alert list
(** Newest first, at most [max_alerts]. *)

val breaches : t -> kind -> int
(** Total breaches observed (not bounded by [max_alerts]). *)

val samples : t -> kind -> int
(** Samples currently in the rolling window (at most [window]). *)

val quantile : t -> kind -> float -> float
(** [quantile t k p]: the [p]-th percentile ([0..100], nearest-rank)
    of the rolling window in microseconds; [nan] when empty. *)

val clear : t -> unit
(** Drop windows, alerts and breach counts (targets are kept). *)
