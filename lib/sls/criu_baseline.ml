open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_proc
open Aurora_objstore

let syscalls_per_object = 3

let checkpoint (k : Kernel.t) (g : Types.pgroup) ?name () =
  let store =
    match Types.primary_store g with
    | Some s -> s
    | None -> invalid_arg "Criu_baseline.checkpoint: group has no local backend"
  in
  let clock = k.Kernel.clock in
  let barrier_at = Clock.now clock in
  (* Metadata: same walk, but every record costs introspection
     syscalls on top of the serialization itself. *)
  let records = Serialize.snapshot_metadata k g in
  let introspection_cost =
    Duration.scale Costmodel.syscall_entry
      (syscalls_per_object * (List.length records.Serialize.items + 1))
  in
  Kernel.charge k introspection_cost;
  let metadata_copy = Duration.add records.Serialize.metadata_cost introspection_cost in
  (* Memory: full copy through the checkpointing process while the
     application is stopped — no COW, no incremental tracking. *)
  let copy_started = Clock.now clock in
  let captures =
    List.map
      (fun (obj, store_oid) ->
        let items = Vmobject.arm_for_checkpoint obj ~mode:`Full in
        Kernel.charge k (Costmodel.page_copy ~pages:(List.length items));
        (store_oid, items))
      records.Serialize.vm_objects
  in
  let pages_captured =
    List.fold_left (fun acc (_, items) -> acc + List.length items) 0 captures
  in
  let lazy_data_copy = Duration.sub (Clock.now clock) copy_started in
  let stop_time = Duration.sub (Clock.now clock) barrier_at in
  Stats.add_duration g.Types.stop_stats stop_time;
  let gen = Store.begin_generation store () in
  Store.put_record store ~oid:(Oidspace.manifest g.Types.pgid) records.Serialize.manifest;
  List.iter (fun (oid, record) -> Store.put_record store ~oid record)
    records.Serialize.items;
  List.iter
    (fun (store_oid, items) ->
      List.iter
        (fun item ->
          Store.put_page store ~oid:store_oid ~pindex:item.Vmobject.pindex
            ~seed:(Content.to_seed item.Vmobject.content))
        items)
    captures;
  Aurora_slsfs.Slsfs.checkpoint_fs store k.Kernel.fs ~popen_of_vid:(fun _ -> 0);
  let gen', durable_at = Store.commit store ?name () in
  assert (gen = gen');
  List.iter
    (fun (_, items) ->
      List.iter (Vmobject.release_flush_item ~pool:k.Kernel.pool) items)
    captures;
  g.Types.last_gen <- Some gen;
  let breakdown =
    {
      Types.gen;
      mode = `Full;
      (* CRIU has no in-kernel barrier; the ptrace freeze is part of
         the introspection cost already folded into metadata_copy. *)
      quiesce = Duration.zero;
      metadata_copy;
      lazy_data_copy;
      stop_time;
      pages_captured;
      records_written = List.length records.Serialize.items + 1;
      barrier_at;
      durable_at;
      status = `Ok;
    }
  in
  g.Types.last_breakdown <- Some breakdown;
  breakdown
