(** Hot-standby checkpoint replication over a faulty link.

    Replaces {!Sendrecv.ship}'s fire-and-forget with a session: framed,
    checksummed, sequence-numbered messages with explicit ACK/NAK. The
    primary streams delta exports against the last {e acked}
    generation, retransmits on timeout with exponential backoff plus
    jitter (all charged to simulated time), and falls back to a full
    resync from the last common generation after a gap (the base was
    garbage-collected) or a NAK. The standby imports only
    integrity-verified images — a frame whose CRC fails is dropped, an
    image whose checksum fails is rejected with a NAK and the open
    generation aborted — and ACKs {e durability}, not arrival: the ACK
    leaves only after the imported generation's superblock has landed.

    The standby records which primary generation each import
    corresponds to durably, by naming the generation
    ["repl.gen:<primary gen>"]. A session re-established over an
    existing standby store (after either end crashed) recovers that
    mapping from the generation table and resumes with deltas from the
    last common generation instead of starting over. *)

open Aurora_simtime
open Aurora_device
open Aurora_objstore

type t

exception Session_failed of string
(** Raised by the CLI-facing helpers when a session cannot make
    progress (e.g. the link never delivers within the retry budget). *)

type stats = {
  ships : int;             (** {!ship} calls that transmitted *)
  acked : int;             (** ships acknowledged durable by the standby *)
  skipped : int;           (** ships of already-acked generations *)
  retransmits : int;       (** timeout-driven re-sends *)
  resyncs : int;           (** full-image fallbacks after a gap or NAK *)
  naks : int;              (** NAK frames the primary accepted *)
  duplicate_frames : int;  (** data frames the standby had already applied *)
  corrupt_rejects : int;   (** frames or images that failed integrity *)
  torn_imports : int;      (** imports aborted by standby media failure *)
  stale_frames : int;      (** frames from a dead session incarnation *)
  gave_up : int;           (** ships abandoned after the retry budget *)
  full_images : int;
  delta_images : int;
  wire_bytes : int;        (** frame bytes offered, retransmits included *)
}

val establish :
  ?ack_timeout:Duration.t ->
  ?max_attempts:int ->
  ?max_backoff:Duration.t ->
  ?metrics:Metrics.t ->
  ?spans:Span.t ->
  ?probes:Probe.t ->
  link:Netlink.t ->
  primary_side:Netlink.side ->
  primary:Store.t ->
  standby:Store.t ->
  unit ->
  t
(** Open a session. [ack_timeout] (default 5 ms) is the initial
    retransmission timeout; it doubles per retry (plus deterministic
    jitter) up to [max_backoff] (default 40 ms); [max_attempts]
    (default 10) bounds transmissions of one frame. Replication state
    the standby store already carries (["repl.gen:*"] names) is
    recovered, so the session resumes where a predecessor stopped.
    [metrics]/[spans] attach the [repl.*] counters, the ack-RTT
    histogram and the ["repl"] span track; [probes] attaches the
    [repl.msg] tracepoint (fired per frame sent — op [data]/[ack]/[nak]
    with the wire size in [blocks] — and once per completed ship with
    op [ship] and the RTT in [us]).

    A standby carrying acknowledgements for generations the primary no
    longer holds is {e ahead} of it (the primary recovered to an older
    committed prefix; generation numbers past it may be reused with
    different content): such torn session state is quarantined — the
    standby is reformatted and the session resyncs in full. *)

type ship_report = {
  sh_gen : Store.gen;                          (** primary generation shipped *)
  sh_outcome : [ `Acked | `Gave_up | `Skipped ];
  sh_mode : [ `Delta of Store.gen | `Full ];
  sh_attempts : int;                           (** transmissions, first included *)
  sh_resyncs : int;                            (** mode switches during this ship *)
  sh_rtt : Duration.t;                         (** first send to durable ACK *)
  sh_bytes : int;                              (** image payload bytes *)
  sh_corr : string;                            (** trace-correlation id *)
}

val ship : t -> gen:Store.gen -> pgid:int -> ship_report
(** Drive one generation to the standby: export (delta against the
    last acked generation when possible), frame, send, and pump both
    ends of the link — importing, acking and retransmitting as the
    simulated clock advances — until the standby acknowledges
    durability or the retry budget runs out. [`Gave_up] leaves the
    session [`Degraded]; a later ship (e.g. after a partition heals)
    resynchronizes. *)

val ship_exn : t -> gen:Store.gen -> pgid:int -> ship_report
(** {!ship}, raising {!Session_failed} on [`Gave_up]. *)

val state : t -> [ `Idle | `Degraded ]
(** [`Degraded] after a gave-up ship, until an ACK next lands. *)

val lag : t -> int
(** Replication lag: committed primary generations newer than the last
    acked one (every committed generation when nothing was ever
    acked). *)

val acked_gen : t -> Store.gen option
(** The last primary generation the standby acknowledged durable. *)

val standby_latest : t -> (Store.gen * Store.gen) option
(** Newest replicated pair [(primary gen, standby gen)], if any. *)

val standby_gen_of : t -> Store.gen -> Store.gen option
(** The standby generation holding the given primary generation. *)

val mapping : t -> (Store.gen * Store.gen) list
(** All replicated pairs, ascending. *)

val stats : t -> stats
val link : t -> Netlink.t
val primary_store : t -> Store.t
val standby_store : t -> Store.t

val crash_standby : t -> unit
(** Power-fail the standby's device array and reopen its store: volatile
    state is lost, the store recovers to its committed prefix, and the
    session's receiver state (applied generations, dedup horizon) is
    rebuilt from the durable ["repl.gen:*"] names. Torn imports die with
    the open generation; the primary's next ship NAK-resyncs from the
    last common generation. *)

val repl_gen_name : ?corr:string -> Store.gen -> string
(** ["repl.gen:<g>"], or ["repl.gen:<g>@<corr>"] with the
    trace-correlation id — the durable name the standby gives the
    import of primary generation [g]. *)

val parse_repl_gen_name : string -> Store.gen option
(** Inverse of {!repl_gen_name} (the corr suffix, when present, is
    ignored); [None] for unrelated names. *)

val parse_repl_corr : string -> string option
(** The correlation id embedded in a replication generation name, if
    one is present. *)

val corr_id : t -> gen:Store.gen -> string
(** The deterministic trace-correlation id this session puts on the
    wire for [gen] (["s<session id>-g<gen>"]). Every data frame for a
    generation carries it; the standby persists it in the generation
    name, and the primary's ["repl.ship"] span and flight-recorder
    events carry the same id — which is what lets [sls timeline] merge
    both nodes' recorders into one trace. *)
