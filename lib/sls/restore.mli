(** The restore engine.

    Rebuilds a persistence group from a checkpoint generation into a
    kernel — the same kernel (rollback, debugging, serverless
    scale-out) or a freshly booted one (crash recovery, migration).
    The work splits into the phases Table 4 reports:

    - {b object store read}: pulling the manifest and records off the
      backend (free for an in-memory image whose caches are warm;
      real device time for a cold disk image);
    - {b metadata state}: recreating kernel objects, descriptor
      tables, processes and threads, and rebinding names/ports;
    - {b memory state}: recreating address spaces. No page is ever
      copied: an eager restore installs frames sharing the image's
      content, a lazy restore maps pages as faulting references into
      the image, and [Lazy_prefetch] eagerly pages in the
      checkpoint's recorded hot set.

    When the image is read from backing storage, metadata and memory
    recreation get cheaper by [Costmodel.implicit_restore_discount]
    ("reading in the checkpoint implicitly restores some application
    state"). *)

open Aurora_proc
open Aurora_objstore

(** Why a restore could not proceed: the generation holds no
    checkpoint of the group, a record the manifest references is gone
    (a partially shipped or garbage-collected image), or an imported
    image is malformed. Operational failures, not programming errors —
    the CLI reports them and exits 2, like store failures. *)
type error =
  | No_manifest of { gen : int; pgid : int }
  | Missing_record of { gen : int; oid : int; what : string }
  | Bad_image of string

exception Error of error

val describe_error : error -> string

val restore :
  Kernel.t ->
  store:Store.t ->
  gen:Store.gen ->
  pgid:int ->
  ?policy:Types.restore_policy ->
  ?from_disk:bool ->
  ?new_pids:bool ->
  unit ->
  int list * Types.restore_breakdown
(** Returns the restored pids (ascending). [policy] defaults to
    [Lazy_prefetch]. [from_disk] (default: inferred from the store
    device's profile) selects the implicit-restore discount.
    [new_pids] (default false) renumbers the restored processes — the
    serverless scale-out mode, where many instances of one image
    coexist; without it, a pid collision raises [Invalid_argument].
    Raises {!Error} if the generation holds no manifest for [pgid] or
    is missing a record the manifest references. *)

val restore_result :
  Kernel.t ->
  store:Store.t ->
  gen:Store.gen ->
  pgid:int ->
  ?policy:Types.restore_policy ->
  ?from_disk:bool ->
  ?new_pids:bool ->
  unit ->
  (int list * Types.restore_breakdown, error) result
(** {!restore} with the typed failure as a [result] instead of an
    exception. Other exceptions ([Invalid_argument], store failures)
    still propagate. *)

val kill_group : Kernel.t -> Types.pgroup -> unit
(** Terminate and reap every member process (the destructive half of
    rollback). *)
