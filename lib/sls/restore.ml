open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_posix
open Aurora_proc
open Aurora_vfs
open Aurora_objstore

(* A restore that cannot proceed is an expected operational failure —
   a mistyped generation, a partially shipped image — not a
   programming error, so it gets a typed error (surfaced by the CLI
   with exit code 2, like store failures) instead of [Failure]. *)
type error =
  | No_manifest of { gen : int; pgid : int }
  | Missing_record of { gen : int; oid : int; what : string }
  | Bad_image of string

exception Error of error

let describe_error = function
  | No_manifest { gen; pgid } ->
    Printf.sprintf "generation %d holds no checkpoint of pgroup %d" gen pgid
  | Missing_record { gen; oid; what } ->
    Printf.sprintf "generation %d is missing the %s record (oid %d)" gen what oid
  | Bad_image msg -> "bad image: " ^ msg

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Restore failure: " ^ describe_error e)
    | _ -> None)

let kill_group (k : Kernel.t) (g : Types.pgroup) =
  (* Zombies included: a crashed member still occupies its pid. *)
  List.iter
    (fun (p : Process.t) ->
      if Types.member k g p then begin
        if not (Process.is_zombie p) then Syscall.exit_process k p 137;
        Kernel.remove_proc k p.Process.pid
      end)
    (Kernel.processes k)

(* Pages of one VM object, restored per policy. Eager paths charge the
   device (real reads); lazy paths peek and leave the device cost to
   the fault. *)
let restore_object_pages (k : Kernel.t) store ~gen ~store_oid ~policy ~hot obj =
  let dev = Store.device store in
  let fault_cost =
    Profile.transfer_cost (Devarray.profile dev) ~op:`Read ~bytes:Blockdev.block_size
  in
  let hot_tbl = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace hot_tbl p ()) hot;
  (* Two passes over the index range — count, then fill preallocated
     buffers — so the prefetch hot path never builds lists. *)
  let n =
    Store.fold_page_indexes store gen ~oid:store_oid ~init:0
      ~f:(fun acc _ -> acc + 1)
  in
  let indexes = Array.make n 0 in
  ignore
    (Store.fold_page_indexes store gen ~oid:store_oid ~init:0
       ~f:(fun pos i ->
         indexes.(pos) <- i;
         pos + 1));
  let is_eager pindex =
    match policy with
    | Types.Eager -> true
    | Types.Lazy -> false
    | Types.Lazy_prefetch -> Hashtbl.mem hot_tbl pindex
  in
  let n_eager =
    Array.fold_left (fun acc i -> if is_eager i then acc + 1 else acc) 0 indexes
  in
  let eager_indexes = Array.make n_eager 0 in
  let lazy_indexes = Array.make (n - n_eager) 0 in
  let ei = ref 0 and li = ref 0 in
  Array.iter
    (fun i ->
      if is_eager i then begin
        eager_indexes.(!ei) <- i;
        incr ei
      end
      else begin
        lazy_indexes.(!li) <- i;
        incr li
      end)
    indexes;
  (* Eager pages come in as one batched command (prefetch pays the
     device latency once); lazy pages are mapped as faulting
     references into the image. The device time spent reading is
     returned separately so the breakdown can attribute it to the
     object-store-read phase. *)
  let resident = ref 0 and lazy_ = ref 0 in
  let prefetch_started = Clock.now k.Kernel.clock in
  let batch, read_time =
    Clock.lap k.Kernel.clock (fun () ->
        Store.read_pages_batch store gen ~oid:store_oid ~pindexes:eager_indexes)
  in
  if n_eager > 0 then begin
    Span.record k.Kernel.spans ~name:"restore.prefetch"
      ~attrs:[ ("pages", string_of_int (Array.length batch)) ]
      ~start_at:prefetch_started
      ~end_at:(Clock.now k.Kernel.clock) ();
    Metrics.observe_duration
      (Metrics.histogram k.Kernel.metrics "restore.prefetch_us")
      read_time
  end;
  Array.iter
    (fun (pindex, seed) ->
      Vmobject.install obj pindex (Frame.alloc k.Kernel.pool (Content.of_seed seed));
      incr resident)
    batch;
  Array.iter
    (fun pindex ->
      match Store.peek_page store gen ~oid:store_oid ~pindex with
      | Some seed ->
        Vmobject.install_paged_out obj pindex ~content:(Content.of_seed seed)
          ~read_cost:fault_cost;
        incr lazy_
      | None -> ())
    lazy_indexes;
  (!resident, !lazy_, read_time)

let restore_body (k : Kernel.t) ~store ~gen ~pgid ~policy ?from_disk
    ~new_pids ~root () =
  let clock = k.Kernel.clock in
  let spans = k.Kernel.spans in
  let metrics = k.Kernel.metrics in
  let started = Clock.now clock in
  let s_meta = Span.start spans "restore.metadata" in
  let dev = Store.device store in
  let from_disk =
    match from_disk with
    | Some b -> b
    | None -> (Devarray.profile dev).Profile.name <> Profile.dram.Profile.name
  in
  let discount d =
    if from_disk then Duration.scale_float d Costmodel.implicit_restore_discount else d
  in

  (* --- phase 1: object store read ----------------------------------- *)
  let manifest =
    match Store.read_record store gen ~oid:(Oidspace.manifest pgid) with
    | Some data -> Serialize.parse_manifest data
    | None -> raise (Error (No_manifest { gen; pgid }))
  in
  let proc_recs =
    List.map
      (fun pid ->
        match Store.read_record store gen ~oid:(Oidspace.proc pid) with
        | Some data -> Serialize.parse_proc data
        | None ->
          raise
            (Error (Missing_record { gen; oid = Oidspace.proc pid; what = "process" })))
      manifest.Serialize.pids
  in
  (* VM object records, transitively through shadow chains. *)
  let vmobj_recs = Hashtbl.create 32 in
  let rec load_vmobj obj_oid =
    if not (Hashtbl.mem vmobj_recs obj_oid) then begin
      match Store.read_record store gen ~oid:(Oidspace.vmobj obj_oid) with
      | None ->
        raise
          (Error
             (Missing_record { gen; oid = Oidspace.vmobj obj_oid; what = "vm object" }))
      | Some data ->
        let rec_ = Serialize.parse_vmobj data in
        Hashtbl.replace vmobj_recs obj_oid rec_;
        Option.iter load_vmobj rec_.Serialize.shadow_oid
    end
  in
  List.iter
    (fun pr ->
      List.iter
        (fun (e : Serialize.vm_entry_rec) -> load_vmobj e.Serialize.obj_oid)
        pr.Serialize.vm_entries)
    proc_recs;
  let kobj_recs =
    List.map
      (fun oid ->
        match Store.read_record store gen ~oid:(Oidspace.kobj oid) with
        | Some data -> (oid, data)
        | None ->
          raise
            (Error
               (Missing_record { gen; oid = Oidspace.kobj oid; what = "kernel object" })))
      manifest.Serialize.kobj_oids
  in
  let objstore_read = Duration.sub (Clock.now clock) started in

  (* --- phase 2: metadata state --------------------------------------- *)
  let meta_started = Clock.now clock in
  Kernel.charge k (discount Costmodel.restore_orchestrator_base);
  (* Kernel objects first (descriptor tables point at them). Shared
     memory segments are deferred: their backing VM objects are
     recreated by the memory phase, and the segment record must link
     to the real object. *)
  let placeholder_obj _oid ~npages:_ =
    Vmobject.create ~pool:k.Kernel.pool Vmobject.Anonymous
  in
  let deferred_shm = ref [] in
  List.iter
    (fun (oid, data) ->
      Kernel.charge k (discount Costmodel.restore_object);
      let kobj =
        Registry.deserialize_kobj (Serial.reader data) ~restore_obj:placeholder_obj
      in
      match kobj with
      | Registry.Kshm _ -> deferred_shm := (oid, data) :: !deferred_shm
      | _ ->
        Registry.remove k.Kernel.registry oid;
        Registry.register k.Kernel.registry kobj;
        (* Rebind names/ports for listeners. *)
        (match kobj with
         | Registry.Kusock s -> (
           match Unixsock.bound_name s with
           | Some name when Unixsock.state s <> Unixsock.Closed ->
             Hashtbl.replace k.Kernel.unix_ns name (Unixsock.oid s)
           | Some _ | None -> ())
         | Registry.Ktcp s -> (
           match (Unixsock.bound_name s, Unixsock.state s) with
           | Some _, Unixsock.Listening _ -> Netstack.rebind k.Kernel.netstack s
           | _ -> ())
         | Registry.Kpipe _ | Registry.Kshm _ | Registry.Kmsgq _ | Registry.Ksem _
         | Registry.Kkq _ -> ()))
    kobj_recs;

  (* Processes, threads, descriptor tables. *)
  (match manifest.Serialize.target with
   | `Container cid ->
     Kernel.ensure_container k ~cid ~name:manifest.Serialize.group_name
   | `Pids _ -> ());
  let shared_ofds = Hashtbl.create 16 in
  let vnode_of_vid vid =
    match Memfs.vnode_by_id k.Kernel.fs vid with
    | Some v -> v
    | None -> raise (Serial.Corrupt (Printf.sprintf "Restore: no vnode %d" vid))
  in
  let pid_map = Hashtbl.create 8 in
  let restored_procs =
    List.map
      (fun (pr : Serialize.proc_rec) ->
        Kernel.charge k (discount Costmodel.restore_proc_base);
        Kernel.charge k
          (discount
             (Duration.scale Costmodel.restore_thread (List.length pr.Serialize.threads)));
        let pid =
          if new_pids then begin
            let pid = k.Kernel.next_pid in
            k.Kernel.next_pid <- pid + 1;
            pid
          end
          else begin
            if Kernel.proc k pr.Serialize.pid <> None then
              invalid_arg
                (Printf.sprintf "Restore: pid %d already exists" pr.Serialize.pid);
            pr.Serialize.pid
          end
        in
        Hashtbl.replace pid_map pr.Serialize.pid pid;
        (pr, pid))
      proc_recs
  in
  let procs =
    List.map
      (fun ((pr : Serialize.proc_rec), pid) ->
        let vm = Vmmap.create ~clock ~pool:k.Kernel.pool () in
        let ppid =
          Option.value ~default:pr.Serialize.ppid
            (Hashtbl.find_opt pid_map pr.Serialize.ppid)
        in
        let p =
          Process.create ~pid ~ppid ~name:pr.Serialize.name
            ~container:
              (match manifest.Serialize.target with
              | `Container cid -> cid
              | `Pids _ -> pr.Serialize.container)
            ~vm ~program:"(restoring)"
        in
        p.Process.cwd <- pr.Serialize.cwd;
        p.Process.next_tid <- pr.Serialize.next_tid;
        p.Process.threads <- pr.Serialize.threads;
        Kernel.charge k
          (discount
             (Duration.scale Costmodel.restore_object
                (List.length pr.Serialize.vm_entries)));
        let fdt =
          Fd.deserialize_table
            (Serial.reader pr.Serialize.fd_blob)
            ~vnode_of_vid ~shared:shared_ofds
        in
        p.Process.fdtable <- fdt;
        Hashtbl.replace k.Kernel.procs pid p;
        (pr, p))
      restored_procs
  in
  (* Every distinct restored description holding a vnode re-opens it
     (this is what turns the checkpointed persistent-open count back
     into a live open count). *)
  let opened = Hashtbl.create 16 in
  Hashtbl.iter
    (fun ofd_oid (ofd : Fd.ofd) ->
      if not (Hashtbl.mem opened ofd_oid) then begin
        Hashtbl.replace opened ofd_oid ();
        match ofd.Fd.kind with
        | Fd.Vnode_file { vnode; _ } -> Memfs.open_vnode k.Kernel.fs vnode
        | Fd.Obj _ -> ()
      end)
    shared_ofds;
  if not new_pids then
    k.Kernel.next_pid <- max k.Kernel.next_pid manifest.Serialize.next_pid;
  let metadata_state = Duration.sub (Clock.now clock) meta_started in
  let metadata_phase = Span.finish spans s_meta in

  (* --- phase 3: memory state ------------------------------------------ *)
  let s_pagein = Span.start spans "restore.pagein" in
  let mem_started = Clock.now clock in
  let obj_map : (int, Vmobject.t) Hashtbl.t = Hashtbl.create 32 in
  let pages_resident = ref 0 and pages_lazy = ref 0 in
  let prefetch_read = ref Duration.zero in
  let rec materialize obj_oid =
    match Hashtbl.find_opt obj_map obj_oid with
    | Some obj -> obj
    | None ->
      let rec_ : Serialize.vmobj_rec = Hashtbl.find vmobj_recs obj_oid in
      let obj =
        match rec_.Serialize.shadow_oid with
        | None -> Vmobject.create ~pool:k.Kernel.pool rec_.Serialize.kind
        | Some backing_oid ->
          let backing = materialize backing_oid in
          let shadow = Vmobject.make_shadow backing in
          (* make_shadow keeps a reference on the backing for the
             shadow; the map's own working reference is dropped when
             the chain owner (the entry) takes over. *)
          shadow
      in
      Hashtbl.replace obj_map obj_oid obj;
      let r, l, read_time =
        restore_object_pages k store ~gen ~store_oid:(Oidspace.vmobj obj_oid) ~policy
          ~hot:rec_.Serialize.hot_pages obj
      in
      pages_resident := !pages_resident + r;
      pages_lazy := !pages_lazy + l;
      prefetch_read := Duration.add !prefetch_read read_time;
      obj
  in
  List.iter
    (fun ((pr : Serialize.proc_rec), (p : Process.t)) ->
      Kernel.charge k (discount Costmodel.vmspace_create);
      List.iter
        (fun (er : Serialize.vm_entry_rec) ->
          Kernel.charge k (discount Costmodel.restore_vm_entry);
          let obj = materialize er.Serialize.obj_oid in
          let entry =
            Vmmap.map_fixed p.Process.vm ~start_vpn:er.Serialize.start_vpn
              ~inheritance:er.Serialize.inheritance ~writable:er.Serialize.writable ~obj
              ~obj_offset:er.Serialize.obj_offset ~npages:er.Serialize.npages ()
          in
          entry.Vmmap.needs_copy <- er.Serialize.needs_copy;
          entry.Vmmap.persisted <- er.Serialize.persisted;
          entry.Vmmap.restore_policy <- er.Serialize.policy)
        pr.Serialize.vm_entries)
    procs;
  (* Mapping recreation cost: batched PTE inserts over every page that
     got a mapping-visible slot (resident or faultable). *)
  Kernel.charge k
    (discount (Costmodel.pte_map ~pages:(!pages_resident + !pages_lazy)));
  (* Drop the creation references: entries now own the objects. *)
  Hashtbl.iter (fun _ obj -> Vmobject.decref obj) obj_map;
  (* Device time spent prefetching pages belongs to the object-store
     read, not to address-space recreation. *)
  let memory_state =
    Duration.sub (Duration.sub (Clock.now clock) mem_started) !prefetch_read
  in
  let objstore_read = Duration.add objstore_read !prefetch_read in

  (* Deferred shared-memory segments: link to the restored backing
     objects (or materialize them if nothing mapped the segment). *)
  let resolve_shm_obj obj_oid ~npages:_ =
    let obj =
      match Hashtbl.find_opt obj_map obj_oid with
      | Some obj -> obj
      | None -> materialize obj_oid
    in
    Vmobject.incref obj;
    obj
  in
  List.iter
    (fun (oid, data) ->
      let kobj =
        Registry.deserialize_kobj (Serial.reader data) ~restore_obj:resolve_shm_obj
      in
      Registry.remove k.Kernel.registry oid;
      Registry.register k.Kernel.registry kobj)
    (List.rev !deferred_shm);

  let pagein_phase =
    Span.finish spans s_pagein
      ~attrs:
        [ ("resident", string_of_int !pages_resident);
          ("lazy", string_of_int !pages_lazy);
          ("objects", string_of_int (Hashtbl.length obj_map)) ]
  in
  let pids = List.map (fun (_, p) -> p.Process.pid) procs |> List.sort Int.compare in
  let total_latency = Duration.sub (Clock.now clock) started in
  ignore
    (Span.finish spans root ~attrs:[ ("procs", string_of_int (List.length procs)) ]);
  Metrics.incr (Metrics.counter metrics "restore.count");
  Metrics.add (Metrics.counter metrics "restore.pages_resident") !pages_resident;
  Metrics.add (Metrics.counter metrics "restore.pages_lazy") !pages_lazy;
  Metrics.add (Metrics.counter metrics "restore.objects") (Hashtbl.length obj_map);
  Metrics.add
    (Metrics.counter metrics "restore.bytes_read")
    (!pages_resident * Blockdev.block_size);
  Metrics.observe_duration (Metrics.histogram metrics "restore.total_us") total_latency;
  Metrics.observe_duration
    (Metrics.histogram metrics "restore.metadata_us")
    metadata_phase;
  Metrics.observe_duration (Metrics.histogram metrics "restore.pagein_us") pagein_phase;
  Tracelog.recordf k.Kernel.trace ~subsystem:"restore"
    "gen %d pgroup %d -> pids [%s] total=%.1fus" gen pgid
    (String.concat ";" (List.map string_of_int pids))
    (Duration.to_us total_latency);
  ( pids,
    {
      Types.objstore_read;
      memory_state;
      metadata_state;
      total_latency;
      pages_restored = !pages_resident;
      pages_lazy = !pages_lazy;
      procs_restored = List.length procs;
    } )

let restore (k : Kernel.t) ~store ~gen ~pgid ?(policy = Types.Lazy_prefetch) ?from_disk
    ?(new_pids = false) () =
  let spans = k.Kernel.spans in
  let root =
    Span.start spans "restore"
      ~attrs:[ ("gen", string_of_int gen); ("pgid", string_of_int pgid) ]
  in
  match restore_body k ~store ~gen ~pgid ~policy ?from_disk ~new_pids ~root () with
  | v -> v
  | exception e ->
    (* Close the span (and any open phase under it) so later spans do
       not parent under a dead restore attempt. *)
    ignore (Span.finish spans root ~attrs:[ ("error", Printexc.to_string e) ]);
    raise e

let restore_result (k : Kernel.t) ~store ~gen ~pgid ?policy ?from_disk ?new_pids () =
  match restore k ~store ~gen ~pgid ?policy ?from_disk ?new_pids () with
  | v -> Ok v
  | exception Error e -> Error e
