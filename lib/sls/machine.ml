open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_proc
open Aurora_vfs
open Aurora_objstore

type t = {
  kernel : Kernel.t;
  nvme : Devarray.t;
  memdev : Devarray.t;
  swap : Swap.t;
  disk_store : Store.t;
  mem_store : Store.t;
  mutable pgroups : Types.pgroup list;
  mutable next_pgid : int;
  extcons : Extconsist.t;
  mutable history_window : int;
  mutable recorded : Types.pgroup list;
  slo : Slo.t;
  mutable max_inflight_ckpts : int;
  (* Bound on captured-but-not-retired checkpoint epochs. 1 =
     synchronous (every barrier waits for its own flush); k > 1 hides
     up to k-1 flushes under execution. *)
  mutable pending_ckpts : Types.pending_ckpt list;
  (* Committed epochs whose writes are still draining, oldest first.
     Superblock ordering makes their durability times ascending. *)
  mutable standby : (int * Replica.t) option;
  (* Hot-standby replication session and the pgid whose checkpoints
     auto-ship through it. *)
  mutable postmortem : postmortem option;
  (* What the previous incarnation left in flight, computed once at
     boot by diffing the recovered flight recorder and the store's
     black box against the committed prefix. *)
}

and postmortem = {
  pm_crash_reason : string option;
  pm_recovered_gen : Store.gen option;
  pm_bbox_at : Duration.t option;
  pm_pending_epochs : Recorder.capture_mark list;
  pm_unacked_gens : Store.gen list;
  pm_open_spans : string list;
  pm_last_alerts : Recorder.event list;
  pm_events : Recorder.event list;
}

let clock t = t.kernel.Kernel.clock
let now t = Clock.now (clock t)
let metrics t = t.kernel.Kernel.metrics
let spans t = t.kernel.Kernel.spans
let recorder t = t.kernel.Kernel.recorder
let postmortem t = t.postmortem

(* Fold the pull-style counters (device/fault/store state kept by each
   layer) into gauges, so one snapshot carries both the push-style
   instrumentation and the layers' own accounting. Registered as a
   [Metrics.on_snapshot] hook at build time, so every export path
   (snapshot, find, to_json) sees fresh values without callers having
   to remember to sync. *)
let sync_metrics t =
  let m = metrics t in
  let set name v = Metrics.set_int (Metrics.gauge m name) v in
  List.iter
    (fun (label, dev) ->
      let st = Devarray.stats dev in
      set ("dev." ^ label ^ ".reads") st.Blockdev.reads;
      set ("dev." ^ label ^ ".writes") st.Blockdev.writes;
      set ("dev." ^ label ^ ".blocks_read_total") st.Blockdev.blocks_read;
      set ("dev." ^ label ^ ".blocks_written_total") st.Blockdev.blocks_written;
      set ("dev." ^ label ^ ".flushes") st.Blockdev.flushes;
      let ss = Devarray.sched_stats dev in
      List.iter
        (fun cls ->
          let i = Iosched.cls_index cls in
          let p = "dev." ^ label ^ ".sched." ^ Iosched.cls_name cls ^ "." in
          set (p ^ "ops") ss.Iosched.s_ops.(i);
          set (p ^ "blocks") ss.Iosched.s_blocks.(i);
          set (p ^ "service_us") (int_of_float ss.Iosched.s_service_us.(i)))
        [ Iosched.Foreground; Iosched.Flush; Iosched.Background;
          Iosched.Deadline ];
      let p = "dev." ^ label ^ ".sched." in
      set (p ^ "fg_gap_fills") ss.Iosched.s_fg_gap_fills;
      set (p ^ "fg_wait_us") (int_of_float ss.Iosched.s_fg_wait_us);
      set (p ^ "gaps_reserved_us") (int_of_float ss.Iosched.s_gaps_reserved_us);
      set (p ^ "gaps_used_us") (int_of_float ss.Iosched.s_gaps_used_us);
      set (p ^ "gaps_expired_us") (int_of_float ss.Iosched.s_gaps_expired_us);
      let f = Devarray.fault_stats dev in
      set ("fault." ^ label ^ ".transient_reads") f.Fault.transient_reads;
      set ("fault." ^ label ^ ".transient_writes") f.Fault.transient_writes;
      set ("fault." ^ label ^ ".latent_reads") f.Fault.latent_reads;
      set ("fault." ^ label ^ ".corruptions") f.Fault.corruptions)
    [ (Devarray.name t.nvme, t.nvme); (Devarray.name t.memdev, t.memdev) ];
  List.iter
    (fun store ->
      let label = Devarray.name (Store.device store) in
      let io = Store.io_stats store in
      set ("store." ^ label ^ ".io.read_retries") io.Store.read_retries;
      set ("store." ^ label ^ ".io.checksum_failures") io.Store.checksum_failures;
      set ("store." ^ label ^ ".io.repaired_from_mirror") io.Store.repaired_from_mirror;
      set ("store." ^ label ^ ".io.repaired_from_dedup") io.Store.repaired_from_dedup;
      set ("store." ^ label ^ ".io.lost_blocks") io.Store.lost_blocks;
      let st = Store.stats store in
      set ("store." ^ label ^ ".live_blocks") st.Store.live_blocks;
      set ("store." ^ label ^ ".generations") st.Store.committed_generations;
      set ("store." ^ label ^ ".dedup.entries") st.Store.dedup_entries;
      set ("store." ^ label ^ ".dedup.hits") st.Store.dedup_hits;
      set ("store." ^ label ^ ".dedup.misses") st.Store.dedup_misses;
      set ("store." ^ label ^ ".dedup.bytes_saved") st.Store.dedup_bytes_saved)
    [ t.disk_store; t.mem_store ];
  (match t.standby with
   | Some (_, repl) ->
     set "repl.lag" (Replica.lag repl);
     let link = Replica.link repl in
     List.iter
       (fun (label, side) ->
         let st = Netlink.stats link ~from_:side in
         set ("repl.link." ^ label ^ ".msgs_sent") st.Netlink.msgs_sent;
         set ("repl.link." ^ label ^ ".msgs_delivered") st.Netlink.msgs_delivered;
         set ("repl.link." ^ label ^ ".dropped") st.Netlink.dropped;
         set ("repl.link." ^ label ^ ".duplicated") st.Netlink.duplicated;
         set ("repl.link." ^ label ^ ".reordered") st.Netlink.reordered;
         set ("repl.link." ^ label ^ ".corrupted") st.Netlink.corrupted;
         set ("repl.link." ^ label ^ ".partition_drops") st.Netlink.partition_drops)
       [ ("tx", (`A : Netlink.side)); ("rx", `B) ]
   | None -> ());
  set "trace.events_dropped" (Tracelog.dropped t.kernel.Kernel.trace);
  set "trace.spans_dropped" (Span.dropped (spans t));
  set "trace.span_orphans" (Span.orphan_finishes (spans t));
  set "recorder.capacity" (Recorder.capacity (recorder t));
  set "recorder.occupancy" (Recorder.occupancy (recorder t));
  set "recorder.dropped" (Recorder.dropped (recorder t));
  set "ckpt.inflight_gens"
    (List.length
       (List.filter
          (fun (pc : Types.pending_ckpt) ->
            Duration.(pc.Types.pc_b.Types.durable_at > now t))
          t.pending_ckpts))

let build_on ?(max_inflight_ckpts = 2) ~kernel ~nvme ~memdev ~disk_store
    ~mem_store () =
  (* (Re)bind every layer's instrumentation to this kernel's registry
     and span recorder. On [boot] the devices survive from the previous
     incarnation (possibly unmarshaled from a universe file) and must
     not keep reporting into the dead kernel's handles. *)
  let metrics = kernel.Kernel.metrics and spans = kernel.Kernel.spans in
  let probes = kernel.Kernel.probes in
  Devarray.set_observability nvme ~metrics ~spans ~probes ();
  Devarray.set_observability memdev ~metrics ~spans ~probes ();
  Store.set_observability disk_store ~metrics ~spans ~probes ();
  Store.set_observability mem_store ~metrics ~spans ~probes ();
  let swap_dev =
    Blockdev.create ~metrics ~spans ~probes ~clock:kernel.Kernel.clock
      ~profile:(Devarray.profile nvme) "swap0"
  in
  let swap = Swap.create ~dev:swap_dev ~pool:kernel.Kernel.pool in
  let rec t =
    lazy
      {
        kernel; nvme; memdev; swap; disk_store; mem_store; pgroups = [];
        next_pgid = 1;
        extcons =
          Extconsist.install kernel ~groups:(fun () -> (Lazy.force t).pgroups);
        history_window = 8;
        recorded = [];
        slo = Slo.create ();
        max_inflight_ckpts;
        pending_ckpts = [];
        standby = None;
        postmortem = None;
      }
  in
  let m = Lazy.force t in
  (* Gauges derived from layer state refresh on every export. *)
  Metrics.on_snapshot metrics (fun () -> sync_metrics m);
  m

let create ?(storage_profile = Profile.optane_900p) ?stripes ?capacity_pages
    ?(fs_with_disk = false) ?dedup ?faults ?storage_blocks ?max_inflight_ckpts
    ?io_sched () =
  let kernel0 = Kernel.create ?capacity_pages () in
  let clock = kernel0.Kernel.clock in
  let fs =
    if fs_with_disk then
      Memfs.create ~backing:(Blockdev.create ~clock ~profile:storage_profile "fsdev0") ()
    else Memfs.create ()
  in
  kernel0.Kernel.fs <- fs;
  let nvme =
    Devarray.create ?stripes ?faults ?capacity_blocks:storage_blocks
      ?sched:io_sched ~clock ~profile:storage_profile "nvme"
  in
  let memdev = Devarray.create ~stripes:1 ~clock ~profile:Profile.dram "memdev" in
  let disk_store = Store.format ?dedup ~dev:nvme () in
  let mem_store = Store.format ~dev:memdev () in
  build_on ?max_inflight_ckpts ~kernel:kernel0 ~nvme ~memdev ~disk_store
    ~mem_store ()

(* --- persistence groups --------------------------------------------- *)

let disk_backend t = Types.Local { store = t.disk_store; kind = `Disk }
let memory_backend t = Types.Local { store = t.mem_store; kind = `Memory }

let persist_unattached t ?(interval = Duration.milliseconds 10) target =
  let g = Types.make_pgroup ~pgid:t.next_pgid ~target ~interval in
  g.Types.next_ckpt_at <- Duration.add (now t) interval;
  t.next_pgid <- t.next_pgid + 1;
  t.pgroups <- t.pgroups @ [ g ];
  g

let persist t ?interval ?(incremental = true) target =
  let g = persist_unattached t ?interval target in
  g.Types.incremental <- incremental;
  g.Types.backends <- [ disk_backend t ];
  g

let attach _t g backend = g.Types.backends <- g.Types.backends @ [ backend ]

let detach _t g backend =
  g.Types.backends <- List.filter (fun b -> not (b == backend)) g.Types.backends

(* --- checkpoints ----------------------------------------------------- *)

let gc_history t =
  let keep_named = List.map snd (Store.named t.disk_store) in
  let gens = Store.generations t.disk_store in
  let live =
    List.filteri (fun i _ -> i >= List.length gens - t.history_window) gens
  in
  (* Keep every group's restore anchor alive too. *)
  let anchors = List.filter_map (fun g -> g.Types.last_gen) t.pgroups in
  Store.gc t.disk_store ~keep:(keep_named @ live @ anchors)

(* Retire one epoch whose writes have landed (the clock has reached its
   durability time): finalize spans/histograms, then collect history —
   the generation is durable now, so releasing its predecessors is
   safe. *)
let complete_one t (pc : Types.pending_ckpt) =
  Ckpt.finalize t.kernel pc.Types.pc_group pc.Types.pc_b;
  ignore (gc_history t)

(* Retire every epoch the clock has already passed. Oldest first —
   superblock ordering makes durability times ascending, so the prefix
   test terminates at the first still-volatile epoch. *)
let complete_due t =
  let rec loop () =
    match t.pending_ckpts with
    | pc :: rest when Duration.(pc.Types.pc_b.Types.durable_at <= now t) ->
      t.pending_ckpts <- rest;
      complete_one t pc;
      loop ()
    | _ -> ()
  in
  loop ()

(* Drain the whole pipeline: block on each epoch's durability in
   order. *)
let rec drain_pipeline t =
  match t.pending_ckpts with
  | [] -> ()
  | pc :: rest ->
    (match Types.primary_store pc.Types.pc_group with
     | Some s -> Store.wait_durable s pc.Types.pc_b.Types.durable_at
     | None -> Clock.advance_to (clock t) pc.Types.pc_b.Types.durable_at);
    t.pending_ckpts <- rest;
    complete_one t pc;
    drain_pipeline t

let drain_storage t =
  (* Advance time without scheduling the applications (they would keep
     producing work) until every queued checkpoint epoch and store
     write is durable. Only the stores' own pipelines are awaited —
     unrelated raw device traffic no longer gates this. *)
  drain_pipeline t;
  Store.wait_all_durable t.disk_store;
  Store.wait_all_durable t.mem_store

(* Fold a ship's outcome into the flight recorder: the ring gets the
   ship/ack events (correlation id included, for [sls timeline]) and
   the black-box ack horizon advances — shared by the auto-ship path
   below and by CLI-driven replication. *)
let note_ship_report t (r : Replica.ship_report) =
  let rec_ = recorder t in
  match r.Replica.sh_outcome with
  | `Acked ->
    Recorder.note_ship rec_ ~gen:r.Replica.sh_gen ~corr:r.Replica.sh_corr
      ~outcome:"acked";
    Recorder.note_ack rec_ ~gen:r.Replica.sh_gen ~corr:r.Replica.sh_corr
  | `Gave_up ->
    Recorder.note_ship rec_ ~gen:r.Replica.sh_gen ~corr:r.Replica.sh_corr
      ~outcome:"gave_up";
    Recorder.note_transition rec_ ~subsystem:"repl"
      (Printf.sprintf "session degraded: generation %d unacknowledged"
         r.Replica.sh_gen)
  | `Skipped -> ()

let checkpoint_now t g ?mode ?name () =
  (* Retire anything that landed since the last barrier first: keeps
     the history window tight and the in-flight window honest. *)
  complete_due t;
  let window = max 1 t.max_inflight_ckpts in
  (* I/O class of this epoch's flush extents. When the pipeline has
     headroom the flush drains at [Flush] priority so foreground reads
     can overtake it; when this barrier will quiesce on its own epoch
     (window full, or the synchronous engine), the epoch is promoted to
     [Deadline] so durability is not delayed by the pacing gaps. *)
  let flush_cls =
    if window <= 1 || List.length t.pending_ckpts + 1 >= window then
      Iosched.Deadline
    else Iosched.Flush
  in
  let b = Ckpt.capture t.kernel g ?mode ?name ~flush_cls () in
  (* Feed the watchdog before any secondary-backend work moves the
     clock: the stop window ends when the application resumes. Breaches
     also land in the flight recorder, so they survive the crash they
     often precede. *)
  (if b.Types.status = `Ok then
     match
       Slo.observe_stop t.slo ~metrics:(metrics t) ~spans:(spans t)
         ~pgid:g.Types.pgid ?attribution:g.Types.last_attribution ~now:(now t)
         b.Types.stop_time
     with
     | Some al ->
       Recorder.note_alert (recorder t) ~kind:"stop_time" ~pgid:al.Slo.al_pgid
         ~observed_us:al.Slo.al_observed_us ~target_us:al.Slo.al_target_us
     | None -> ());
  let backpressure = ref Duration.zero in
  (match b.Types.status with
   | `Degraded _ ->
     (* The generation never committed: nothing to stamp, export or
        journal-truncate. Still try to reclaim history — freeing old
        generations is exactly what a full device needs. *)
     (try ignore (gc_history t)
      with Aurora_objstore.Alloc.Out_of_space | Store.Fail _ -> ())
   | `Ok ->
     Extconsist.on_checkpoint t.extcons g ~barrier:b.Types.barrier_at
       ~durable_at:b.Types.durable_at;
     (* The checkpoint bounds the record/replay journal. *)
     if List.memq g t.recorded then Rr.on_checkpoint g;
     (* Secondary backends: memory stores get their own generation (same
        engine, separate store); remotes receive the exported image.
        Exports run barrier-side — they read the primary's current
        device content, which is valid while the flush drains. *)
     let primary = Types.primary_store g in
     let is_primary backend =
       match (backend, primary) with
       | Types.Local { store; _ }, Some p -> store == p
       | _ -> false
     in
     List.iter
       (fun backend ->
         if not (is_primary backend) then
           match (backend, primary) with
           | Types.Local { store = secondary; _ }, Some p ->
             (* Mirror the image into the secondary store (memory
                backends for debugging, an NVDIMM tier, ...). *)
             let image = Sendrecv.export p ~gen:b.Types.gen ~pgid:g.Types.pgid () in
             ignore (Sendrecv.import secondary image)
           | Types.Remote { link; side }, Some p ->
             ignore (Sendrecv.ship link ~from_:side p ~gen:b.Types.gen ~pgid:g.Types.pgid ())
           | _, None -> ())
       g.Types.backends;
     (* Auto-ship to the hot standby: the replication session drives
        the image to durable acknowledgement (or gives up after its
        retry budget — a later checkpoint resynchronizes). Runs
        barrier-side like the other secondary backends. *)
     (match t.standby with
      | Some (pgid, repl) when pgid = g.Types.pgid ->
        note_ship_report t (Replica.ship repl ~gen:b.Types.gen ~pgid);
        (* Refresh the black box with the post-ship ack horizon: the
           copy written at capture predates this ship, and a crash from
           here on should not report an acked generation as unacked. *)
        (match Types.primary_store g with
         | Some s ->
           Store.write_blackbox s (Recorder.export_blackbox (recorder t))
         | None -> ())
      | _ -> ());
     (* The epoch joins the pipeline; history collection happens when
        it retires. Backpressure: a barrier may not leave more than
        the window in flight, so block on the oldest epochs until the
        pipeline is back under it. With a window of 1 this is exactly
        the synchronous engine. *)
     t.pending_ckpts <- t.pending_ckpts @ [ { Types.pc_group = g; pc_b = b } ];
     let bp_started = now t in
     while List.length t.pending_ckpts >= window do
       match t.pending_ckpts with
       | [] -> assert false
       | pc :: rest ->
         (match Types.primary_store pc.Types.pc_group with
          | Some s -> Store.wait_durable s pc.Types.pc_b.Types.durable_at
          | None -> Clock.advance_to (clock t) pc.Types.pc_b.Types.durable_at);
         t.pending_ckpts <- rest;
         complete_one t pc
     done;
     backpressure := Duration.sub (now t) bp_started;
     (* A non-zero wait leaves a span on the pipeline track: the
        critical-path analyzer charges it as an antagonist of whatever
        epoch it overlaps. *)
     if Duration.(!backpressure > zero) then
       Span.record (spans t) ~track:"ckpt.pipeline" ~name:"ckpt.backpressure"
         ~attrs:[ ("pgid", string_of_int g.Types.pgid) ]
         ~start_at:bp_started ~end_at:(now t) ());
  (* Saturation is visible, not silent: the wait (zero when the
     pipeline had room) is a histogram aligned 1:1 with ckpt.count. *)
  Metrics.observe_duration
    (Metrics.histogram (metrics t) "ckpt.backpressure_us")
    !backpressure;
  (* A compact per-checkpoint metrics snapshot rides in the ring, so a
     post-mortem sees the tail of the machine's vitals, not just its
     events. *)
  Recorder.note_metrics (recorder t)
    [ ("ckpt.stop_us", Duration.to_us b.Types.stop_time);
      ("ckpt.pages_captured", float_of_int b.Types.pages_captured);
      ("ckpt.backpressure_us", Duration.to_us !backpressure) ];
  b

(* --- the orchestrator loop ------------------------------------------- *)

let next_checkpoint_due t =
  List.fold_left
    (fun acc g ->
      if g.Types.backends = [] then acc
      else
        match acc with
        | None -> Some g.Types.next_ckpt_at
        | Some best -> Some (Duration.min best g.Types.next_ckpt_at))
    None t.pgroups

let fire_due_checkpoints t =
  List.iter
    (fun g ->
      if g.Types.backends <> [] && Duration.(now t >= g.Types.next_ckpt_at) then begin
        ignore (checkpoint_now t g ());
        g.Types.next_ckpt_at <- Duration.add (now t) g.Types.interval
      end)
    t.pgroups

let run t span =
  let deadline = Duration.add (now t) span in
  let rec loop () =
    complete_due t;
    ignore (Extconsist.release_due t.extcons);
    fire_due_checkpoints t;
    if Duration.(now t >= deadline) then ()
    else begin
      let horizon =
        match next_checkpoint_due t with
        | Some at when Duration.(at < deadline) -> at
        | Some _ | None -> deadline
      in
      (* Wake when the oldest in-flight epoch lands, too: retiring it
         promptly keeps the pipeline window open for the next
         barrier. *)
      let horizon =
        match t.pending_ckpts with
        | pc :: _ -> Duration.min horizon pc.Types.pc_b.Types.durable_at
        | [] -> horizon
      in
      (match Scheduler.run t.kernel ~until:horizon with
       | Scheduler.Deadline -> ()
       | Scheduler.Idle | Scheduler.All_exited ->
         (* Nothing to run: time passes to the next event anyway. *)
         Clock.advance_to (clock t) horizon);
      loop ()
    end
  in
  loop ()

let run_until_idle t =
  let rec loop guard =
    if guard = 0 then ()
    else begin
      complete_due t;
      ignore (Extconsist.release_due t.extcons);
      match Scheduler.run_until_idle t.kernel () with
      | Scheduler.All_exited | Scheduler.Idle ->
        if Extconsist.pending t.extcons > 0 then begin
          (* Let a checkpoint cover and release the buffered output;
             external consistency needs real durability, so drain the
             pipeline before releasing. *)
          fire_due_checkpoints t;
          List.iter
            (fun g ->
              if g.Types.backends <> [] then ignore (checkpoint_now t g ()))
            t.pgroups;
          drain_pipeline t;
          ignore (Extconsist.release_due t.extcons);
          loop (guard - 1)
        end
      | Scheduler.Deadline -> loop (guard - 1)
    end
  in
  loop 16

(* --- libsls syscall bridge -------------------------------------------- *)

(* Resolve the caller's persistence group and dispatch the Table 2
   operation. *)
let handle_sls_op t ~pid op =
  let group_of_pid () =
    match Kernel.proc t.kernel pid with
    | None -> invalid_arg "sls: unknown caller"
    | Some p -> (
      match List.find_opt (fun g -> Types.member t.kernel g p) t.pgroups with
      | Some g -> g
      | None -> invalid_arg "sls: caller is not in a persistence group")
  in
  match op with
  | Kernel.Sls_ntflush data ->
    (* No GC here: this is the application's low-latency log path; the
       accumulated micro-generations are collected by the next
       checkpoint cycle. *)
    Kernel.Sls_time (Ntlog.flush (group_of_pid ()) data)
  | Kernel.Sls_checkpoint ->
    let b = checkpoint_now t (group_of_pid ()) () in
    Kernel.Sls_time b.Types.durable_at
  | Kernel.Sls_barrier ->
    Ntlog.barrier (group_of_pid ());
    Kernel.Sls_time (now t)
  | Kernel.Sls_log_read -> Kernel.Sls_log (Ntlog.read (group_of_pid ()))
  | Kernel.Sls_log_truncate ->
    Ntlog.truncate (group_of_pid ());
    Kernel.Sls_time (now t)
  | Kernel.Sls_fdctl (fd, ext_consistency) -> (
    let p = Kernel.proc_exn t.kernel pid in
    match Aurora_posix.Fd.get p.Process.fdtable fd with
    | Some ofd ->
      ofd.Aurora_posix.Fd.flags.Aurora_posix.Fd.ext_consistency <- ext_consistency;
      Kernel.Sls_time (now t)
    | None -> invalid_arg (Printf.sprintf "sls_fdctl: bad descriptor %d" fd))
  | Kernel.Sls_mctl (vpn, persist) -> (
    let p = Kernel.proc_exn t.kernel pid in
    match Aurora_vm.Vmmap.entry_at p.Process.vm vpn with
    | Some entry ->
      entry.Aurora_vm.Vmmap.persisted <- persist;
      Kernel.Sls_time (now t)
    | None -> invalid_arg "sls_mctl: vpn not mapped")

let enable_sls_calls t =
  t.kernel.Kernel.sls_ops <- Some (fun ~pid op -> handle_sls_op t ~pid op)

(* --- record/replay ----------------------------------------------------- *)

let enable_recording t g =
  if not (List.memq g t.recorded) then begin
    t.recorded <- g :: t.recorded;
    (* Compose the interposition: external consistency first (it may
       claim outbound bytes), then journal bytes whose receiver is in
       a recorded group. *)
    t.kernel.Kernel.send_hook <-
      Some
        (fun ~src ~ofd ~data ->
          let verdict = Extconsist.handle t.extcons ~src ~ofd ~data in
          (match (verdict, Aurora_posix.Unixsock.state src) with
           | `Deliver, Aurora_posix.Unixsock.Connected { peer } ->
             List.iter
               (fun rg ->
                 match Extconsist.endpoint_owner t.kernel peer with
                 | Some receiver when Types.member t.kernel rg receiver -> (
                   (* Only *boundary* traffic is nondeterministic input:
                      intra-group bytes replay by re-execution. *)
                   match Extconsist.endpoint_owner t.kernel (Aurora_posix.Unixsock.oid src) with
                   | Some sender when Types.member t.kernel rg sender -> ()
                   | Some _ | None -> Rr.record_input rg ~peer_oid:peer data)
                 | Some _ | None -> ())
               t.recorded
           | _ -> ());
          verdict)
  end

(* --- restore / clone -------------------------------------------------- *)

let store_of_backend = function
  | Types.Local { store; _ } -> Some store
  | Types.Remote _ -> None

let restore_group t g ?gen ?policy ?from () =
  let store =
    match from with
    | Some b -> (
      match store_of_backend b with
      | Some s -> s
      | None -> invalid_arg "Machine.restore_group: remote backends cannot restore")
    | None -> (
      match Types.primary_store g with
      | Some s -> s
      | None -> invalid_arg "Machine.restore_group: no local backend")
  in
  let gen =
    match gen with
    | Some g -> g
    | None -> (
      match Store.latest store with
      | Some g -> g
      | None -> invalid_arg "Machine.restore_group: store has no checkpoints")
  in
  Restore.kill_group t.kernel g;
  let pids, rb =
    Restore.restore t.kernel ~store ~gen ~pgid:g.Types.pgid ?policy ()
  in
  (match
     Slo.observe_restore t.slo ~metrics:(metrics t) ~spans:(spans t)
       ~pgid:g.Types.pgid ?attribution:g.Types.last_attribution ~now:(now t)
       rb.Types.total_latency
   with
   | Some al ->
     Recorder.note_alert (recorder t) ~kind:"restore_latency"
       ~pgid:al.Slo.al_pgid ~observed_us:al.Slo.al_observed_us
       ~target_us:al.Slo.al_target_us
   | None -> ());
  (pids, rb)

let clone_group t g ?gen ?policy () =
  let store =
    match Types.primary_store g with
    | Some s -> s
    | None -> invalid_arg "Machine.clone_group: no local backend"
  in
  let gen =
    match gen with
    | Some g -> g
    | None -> (
      match Store.latest store with
      | Some g -> g
      | None -> invalid_arg "Machine.clone_group: store has no checkpoints")
  in
  Restore.restore t.kernel ~store ~gen ~pgid:g.Types.pgid ?policy ~new_pids:true ()

let rollback_and_replay t g =
  let gen =
    match g.Types.last_gen with
    | Some gen -> gen
    | None -> invalid_arg "rollback_and_replay: group was never checkpointed"
  in
  Restore.kill_group t.kernel g;
  let pids, _ = Restore.restore t.kernel ~store:(Option.get (Types.primary_store g))
      ~gen ~pgid:g.Types.pgid () in
  let replayed = Rr.replay t.kernel g in
  (pids, replayed)

let set_slo_targets t ?stop_time ?restore_latency () =
  Slo.set_stop_target t.slo stop_time;
  Slo.set_restore_target t.slo restore_latency

let slo_alerts t = Slo.alerts t.slo

let last_attribution g = g.Types.last_attribution

let ps t =
  List.map
    (fun (p : Process.t) ->
      let state =
        if Process.is_zombie p then "zombie"
        else if List.exists Thread.is_runnable p.Process.threads then "run"
        else "sleep"
      in
      (p.Process.pid, p.Process.name, p.Process.container, state))
    (Kernel.processes t.kernel)

(* --- failure ----------------------------------------------------------- *)

let crash t =
  (* In-flight epochs die with the machine: whatever their writes had
     not reached durably is reverted by the device crash, and recovery
     reopens to the newest durable superblock — a committed prefix. *)
  t.pending_ckpts <- [];
  Devarray.crash t.nvme;
  Devarray.crash t.memdev;
  Memfs.crash t.kernel.Kernel.fs;
  Extconsist.uninstall t.extcons

(* Reconstruct what was in flight when the previous incarnation died:
   import the flight-recorder ring stored with the last durable
   generation, read the store's black box, and diff both against the
   committed prefix. The black box names every recent capture; a mark
   whose generation lies beyond the store's tip belongs to an epoch
   that never became durable — the committed-prefix invariant makes
   generation loss a suffix, so [> tip] is exact (and immune to
   history GC, which only removes generations at or below the tip). *)
let forensics ~kernel ~disk_store =
  let recorder = kernel.Kernel.recorder in
  let recovered_gen =
    match Store.latest disk_store with
    | Some gen -> (
      match Store.read_record disk_store gen ~oid:Oidspace.recorder with
      | Some blob -> (
        match Recorder.import_into recorder blob with
        | Ok () -> Some gen
        | Error _ -> None)
      | None -> None)
    | None -> None
  in
  let bbox =
    match Store.read_blackbox disk_store with
    | None -> None
    | Some payload -> Result.to_option (Recorder.import_blackbox payload)
  in
  (* Keep the live recorder's black-box state continuous across the
     reboot: the on-device box is one epoch ahead of the stored ring
     (it even names the generation that ring was recovered from). *)
  Option.iter (Recorder.adopt_blackbox recorder) bbox;
  match (recovered_gen, bbox) with
  | None, None -> None
  | _ ->
    let tip = match recovered_gen with Some g -> g | None -> 0 in
    let pending, unacked, bbox_at =
      match bbox with
      | None -> ([], [], None)
      | Some bb ->
        let pending =
          List.filter (fun m -> m.Recorder.cm_gen > tip) bb.Recorder.bb_captures
        in
        let unacked =
          if not bb.Recorder.bb_repl then []
          else
            List.sort_uniq Int.compare
              (List.filter
                 (fun g -> g > bb.Recorder.bb_acked_gen)
                 (bb.Recorder.bb_shipped
                 @ List.map (fun m -> m.Recorder.cm_gen) bb.Recorder.bb_captures))
        in
        (pending, unacked, Some bb.Recorder.bb_at)
    in
    let crash_reason =
      if pending = [] then None
      else begin
        let reason =
          Printf.sprintf "unclean shutdown: %d epoch%s in flight (gen %s)"
            (List.length pending)
            (if List.length pending = 1 then "" else "s")
            (String.concat ", "
               (List.map (fun m -> string_of_int m.Recorder.cm_gen) pending))
        in
        Recorder.set_crash_reason recorder reason;
        Some reason
      end
    in
    let evs = Recorder.events recorder in
    let open_spans =
      (* The newest open-spans snapshot the dying machine logged. *)
      match
        List.find_opt
          (fun e -> e.Recorder.ev_kind = "spans.open")
          (List.rev evs)
      with
      | None -> []
      | Some e ->
        if e.Recorder.ev_detail = "" then []
        else List.map String.trim (String.split_on_char ',' e.Recorder.ev_detail)
    in
    Some
      { pm_crash_reason = crash_reason;
        pm_recovered_gen = recovered_gen;
        pm_bbox_at = bbox_at;
        pm_pending_epochs = pending;
        pm_unacked_gens = unacked;
        pm_open_spans = open_spans;
        pm_last_alerts =
          List.filter (fun e -> e.Recorder.ev_kind = "slo.alert") evs;
        pm_events = evs }

let boot ?max_inflight_ckpts ~nvme () =
  (* Boot: a fresh kernel on existing hardware, sharing wall time with
     the device. *)
  match Store.open_ ~dev:nvme with
  | Error e -> Error e
  | Ok disk_store ->
    let kernel = Kernel.create ~clock:(Devarray.clock nvme) () in
    (* The conventional in-memory file system is rebuilt from the last
       durable generation (the SLS file system view of the world) — if a
       checkpoint ever captured one. *)
    (match Store.latest disk_store with
     | Some gen
       when Store.read_record disk_store gen ~oid:Oidspace.fs_manifest_oid <> None ->
       kernel.Kernel.fs <- Aurora_slsfs.Slsfs.restore_fs disk_store gen
     | Some _ | None -> ());
    let pm = forensics ~kernel ~disk_store in
    let memdev =
      Devarray.create ~stripes:1 ~clock:(Devarray.clock nvme) ~profile:Profile.dram
        "memdev"
    in
    let mem_store = Store.format ~dev:memdev () in
    let m =
      build_on ?max_inflight_ckpts ~kernel ~nvme ~memdev ~disk_store ~mem_store
        ()
    in
    m.postmortem <- pm;
    Ok m

let boot_exn ?max_inflight_ckpts ~nvme () =
  match boot ?max_inflight_ckpts ~nvme () with
  | Ok t -> t
  | Error e -> raise (Store.Fail e)

let recover t = boot_exn ~max_inflight_ckpts:t.max_inflight_ckpts ~nvme:t.nvme ()

(* --- replication ------------------------------------------------------- *)

let attach_standby t ?faults ?(link_profile = Profile.net_10gbe) ?ack_timeout
    ?max_attempts ?standby_dev g =
  if t.standby <> None then
    invalid_arg "Machine.attach_standby: a standby is already attached";
  let link = Netlink.create ?faults ~clock:(clock t) ~profile:link_profile () in
  let store =
    match standby_dev with
    | Some dev ->
      (* Re-attach an existing standby (e.g. after the primary
         recovered): the session resumes from the replication state
         the standby's generation table carries. *)
      Store.open_exn ~dev
    | None ->
      let dev =
        Devarray.create ~stripes:1 ~clock:(clock t)
          ~profile:(Devarray.profile t.nvme) "standby"
      in
      Store.format ~dev ()
  in
  let repl =
    Replica.establish ?ack_timeout ?max_attempts ~metrics:(metrics t)
      ~spans:(spans t) ~probes:t.kernel.Kernel.probes ~link ~primary_side:`A
      ~primary:t.disk_store ~standby:store ()
  in
  t.standby <- Some (g.Types.pgid, repl);
  let rec_ = recorder t in
  Recorder.set_repl_attached rec_ true;
  (* A session over an existing standby recovers its ack horizon from
     the standby's durable state; fold it into the recorder so a later
     post-mortem does not re-report those generations as unacked. *)
  (match Replica.acked_gen repl with
   | Some a -> Recorder.seed_repl_horizon rec_ ~acked:a
   | None -> ());
  Recorder.note_transition rec_ ~subsystem:"repl"
    (Printf.sprintf "standby attached (pgroup %d)" g.Types.pgid);
  repl

let standby_session t = Option.map snd t.standby

let detach_standby t =
  if t.standby <> None then
    Recorder.note_transition (recorder t) ~subsystem:"repl" "standby detached";
  t.standby <- None

type failover_report = {
  fo_rpo : int;
  fo_primary_latest : Store.gen option;
  fo_promoted_gen : Store.gen option;
  fo_standby_generations : int;
}

let failover t =
  match t.standby with
  | None -> invalid_arg "Machine.failover: no standby attached"
  | Some (_pgid, repl) ->
    let started = now t in
    (* RPO = committed primary generations the standby never
       acknowledged durable: what this primary loss costs. *)
    let rpo = Replica.lag repl in
    let standby = Replica.standby_store repl in
    let promoted_gen = Option.map snd (Replica.standby_latest repl) in
    let standby_generations = List.length (Store.generations standby) in
    (* The generations this failover abandons: committed on the primary,
       never acknowledged durable by the standby. *)
    let unacked_at_failover =
      let gens = Store.generations t.disk_store in
      match Replica.acked_gen repl with
      | None -> gens
      | Some a -> List.filter (fun g -> g > a) gens
    in
    t.standby <- None;
    let promoted =
      boot_exn ~max_inflight_ckpts:t.max_inflight_ckpts
        ~nvme:(Store.device standby) ()
    in
    Span.record (spans t) ~track:"repl" ~name:"repl.failover"
      ~attrs:
        [ ("rpo_generations", string_of_int rpo);
          ("promoted_gen",
           match promoted_gen with Some g -> string_of_int g | None -> "-") ]
      ~start_at:started ~end_at:(now t) ();
    (* The promoted machine's recorder (rehydrated from the last shipped
       ring during boot) takes the failover stamp, and its post-mortem
       reports the RPO loss from the primary's point of view — the data
       a standby-side ring alone could never name. *)
    let prec = recorder promoted in
    let reason =
      Printf.sprintf "failover: primary lost, RPO %d generation%s" rpo
        (if rpo = 1 then "" else "s")
    in
    Recorder.set_crash_reason prec reason;
    Recorder.log prec
      ~attrs:
        [ ("rpo_generations", string_of_int rpo);
          ("promoted_gen",
           match promoted_gen with Some g -> string_of_int g | None -> "-") ]
      ~kind:"repl.failover" reason;
    let base =
      match promoted.postmortem with
      | Some pm -> pm
      | None ->
        { pm_crash_reason = None;
          pm_recovered_gen = Store.latest promoted.disk_store;
          pm_bbox_at = None; pm_pending_epochs = []; pm_unacked_gens = [];
          pm_open_spans = []; pm_last_alerts = []; pm_events = [] }
    in
    promoted.postmortem <-
      Some
        { base with
          pm_crash_reason = Some reason;
          pm_unacked_gens = unacked_at_failover;
          pm_events = Recorder.events prec };
    ( promoted,
      { fo_rpo = rpo; fo_primary_latest = Store.latest t.disk_store;
        fo_promoted_gen = promoted_gen;
        fo_standby_generations = standby_generations } )

(* --- critical path ---------------------------------------------------- *)

let critical_path ?gen t =
  match Critpath.analyze (spans t) ?gen () with
  | Error _ as e -> e
  | Ok r ->
    (* Mirror writes ride inside the commit's own transfers, so the
       span tree cannot attribute them; estimate the tax from
       provenance through the device profile instead. *)
    let r =
      match Store.gen_provenance t.disk_store r.Critpath.cp_gen with
      | Some pv when pv.Store.pv_mirror_blocks > 0 ->
        let us =
          Duration.to_us
            (Profile.transfer_cost (Devarray.profile t.nvme) ~op:`Write
               ~bytes:(pv.Store.pv_mirror_blocks * Blockdev.block_size))
        in
        let ants =
          { Critpath.an_name = "mirror_writes"; an_us = us }
          :: r.Critpath.cp_antagonists
          |> List.sort (fun a b -> Float.compare b.Critpath.an_us a.Critpath.an_us)
        in
        { r with Critpath.cp_antagonists = ants }
      | _ -> r
    in
    Critpath.publish (metrics t) r;
    Ok r
