(** The checkpoint engine.

    One call = one checkpoint of one persistence group:

    + {b Barrier} (the application is stopped — in the cooperative
      simulation, nothing else runs while this code does): copy all
      metadata into memory buffers ({!Serialize.snapshot_metadata})
      and arm copy-on-write over the pages to capture — everything
      resident for a full checkpoint, the object-level dirty sets for
      an incremental one. Both phases charge the clock; their durations
      are Table 3's "metadata copy" and "lazy data copy" rows, and
      their sum is the application stop time.
    + {b Background flush}: write records, pages and the file system
      into a new object-store generation and commit. This consumes
      device-timeline capacity but not application time (the
      orchestrator core does the work); the returned breakdown carries
      the absolute durability instant.

    The captured page frames stay referenced until the store has their
    contents, exactly like Aurora holding originals "while Aurora
    flushes the original page". *)

open Aurora_proc

val capture :
  Kernel.t ->
  Types.pgroup ->
  ?mode:[ `Full | `Incremental ] ->
  ?name:string ->
  ?with_fs:bool ->
  ?flush_cls:Aurora_device.Iosched.cls ->
  unit ->
  Types.ckpt_breakdown
(** Barrier + background submission only: quiesce, serialize, arm COW,
    queue the generation's writes and commit. Returns as soon as the
    app can run again; the generation is committed but possibly not
    yet durable ([durable_at] is in the future). The caller owns
    calling {!finalize} once the clock passes [durable_at] — the
    machine keeps a bounded pipeline of such epochs in flight.
    [mode] defaults to the group's configured [incremental] flag;
    [with_fs] (default true) also checkpoints the file system.
    [flush_cls] is the I/O class of the epoch's flush extents
    (default [Flush]; the machine promotes to [Deadline] when the
    pipeline window is full and the caller will quiesce on this
    epoch). Raises [Invalid_argument] when the group has no local
    backend. *)

val finalize : Kernel.t -> Types.pgroup -> Types.ckpt_breakdown -> unit
(** Completion continuation for one captured epoch: charges the retire
    cost, records the [ckpt.pipeline] flush span and the
    [ckpt.flush_us] / [ckpt.durable_lag_us] histograms. Call exactly
    once per [`Ok] capture, after the clock has reached its
    [durable_at]; degraded captures are a no-op. *)

val checkpoint :
  Kernel.t ->
  Types.pgroup ->
  ?mode:[ `Full | `Incremental ] ->
  ?name:string ->
  ?with_fs:bool ->
  unit ->
  Types.ckpt_breakdown
(** Synchronous convenience: {!capture} immediately followed by
    {!finalize} (the unpipelined shape). Arguments as in {!capture}. *)
