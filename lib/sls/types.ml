open Aurora_simtime
open Aurora_device
open Aurora_proc
open Aurora_objstore

type backend =
  | Local of { store : Store.t; kind : [ `Disk | `Memory | `Nvdimm ] }
  | Remote of { link : Netlink.t; side : Netlink.side }

type target = [ `Container of int | `Pids of int list ]

type ckpt_breakdown = {
  gen : Store.gen;
  mode : [ `Full | `Incremental ];
  quiesce : Duration.t;
  metadata_copy : Duration.t;
  lazy_data_copy : Duration.t;
  stop_time : Duration.t;
  pages_captured : int;
  records_written : int;
  barrier_at : Duration.t;
  durable_at : Duration.t;
  status : [ `Ok | `Degraded of string ];
  (* [`Degraded reason]: the generation could not commit (device full
     or failed) and was aborted; the group keeps running on its last
     good checkpoint. *)
}

type restore_breakdown = {
  objstore_read : Duration.t;
  memory_state : Duration.t;
  metadata_state : Duration.t;
  total_latency : Duration.t;
  pages_restored : int;
  pages_lazy : int;
  procs_restored : int;
}

type restore_policy = Eager | Lazy | Lazy_prefetch

type obj_attribution = {
  a_oid : int;
  a_store_oid : int;
  a_pages : int;
  a_bytes : int;
  a_metadata_bytes : int;
  a_cow_breaks : int;
  a_chain_depth : int;
  a_owner_pid : int option;
}

type proc_attribution = {
  p_pid : int;
  p_name : string;
  p_pages : int;
  p_bytes : int;
  p_metadata_bytes : int;
  p_cow_breaks : int;
  p_objects : int;
}

type ckpt_attribution = {
  at_gen : Store.gen;
  at_pages_total : int;
  at_bytes_total : int;
  at_metadata_bytes_total : int;
  at_objects : obj_attribution list;
  at_procs : proc_attribution list;
}

type pgroup = {
  pgid : int;
  mutable target : target;
  mutable backends : backend list;
  mutable interval : Duration.t;
  mutable incremental : bool;
  mutable last_gen : Store.gen option;
  mutable last_barrier : Duration.t;
  mutable next_ckpt_at : Duration.t;
  mutable last_breakdown : ckpt_breakdown option;
  mutable last_attribution : ckpt_attribution option;
  mutable log_counts : (int * int) list;
  stop_stats : Stats.t;
}

(* One captured-but-not-yet-retired checkpoint epoch: the breakdown of
   a generation whose writes are still draining on the device array.
   The machine keeps these oldest-first, bounded by its in-flight
   window. *)
type pending_ckpt = { pc_group : pgroup; pc_b : ckpt_breakdown }

let make_pgroup ~pgid ~target ~interval =
  { pgid; target; backends = []; interval; incremental = true; last_gen = None;
    last_barrier = Duration.zero; next_ckpt_at = interval; last_breakdown = None;
    last_attribution = None; log_counts = []; stop_stats = Stats.create () }

let primary_store g =
  List.find_map (function Local { store; _ } -> Some store | Remote _ -> None) g.backends

let remotes g =
  List.filter_map
    (function Remote { link; side } -> Some (link, side) | Local _ -> None)
    g.backends

let member kernel g (p : Process.t) =
  ignore kernel;
  match g.target with
  | `Container cid -> p.Process.container = cid
  | `Pids pids -> List.mem p.Process.pid pids

let member_pids kernel g =
  Kernel.processes kernel
  |> List.filter (fun p -> member kernel g p && not (Process.is_zombie p))
  |> List.map (fun p -> p.Process.pid)

let pp_ckpt_breakdown ppf b =
  Format.fprintf ppf
    "gen=%d %s quiesce=%aus metadata=%aus lazy-copy=%aus stop=%aus pages=%d records=%d%s"
    b.gen
    (match b.mode with `Full -> "full" | `Incremental -> "incr")
    Duration.pp_us b.quiesce Duration.pp_us b.metadata_copy Duration.pp_us
    b.lazy_data_copy Duration.pp_us
    b.stop_time b.pages_captured b.records_written
    (match b.status with
     | `Ok -> ""
     | `Degraded reason -> " DEGRADED (" ^ reason ^ ")")

(* Attribution rows ordered by checkpoint cost: pages captured, then
   bytes, then id for determinism. *)
let top_objects ?(k = max_int) a =
  let cmp (x : obj_attribution) (y : obj_attribution) =
    match Int.compare y.a_pages x.a_pages with
    | 0 -> (
      match Int.compare y.a_bytes x.a_bytes with
      | 0 -> Int.compare x.a_oid y.a_oid
      | c -> c)
    | c -> c
  in
  List.filteri (fun i _ -> i < k) (List.sort cmp a.at_objects)

let top_procs ?(k = max_int) a =
  let cmp (x : proc_attribution) (y : proc_attribution) =
    match Int.compare y.p_pages x.p_pages with
    | 0 -> (
      match Int.compare y.p_bytes x.p_bytes with
      | 0 -> Int.compare x.p_pid y.p_pid
      | c -> c)
    | c -> c
  in
  List.filteri (fun i _ -> i < k) (List.sort cmp a.at_procs)

let pp_restore_breakdown ppf b =
  Format.fprintf ppf
    "objstore=%aus memory=%aus metadata=%aus total=%aus resident=%d lazy=%d procs=%d"
    Duration.pp_us b.objstore_read Duration.pp_us b.memory_state Duration.pp_us
    b.metadata_state Duration.pp_us b.total_latency b.pages_restored b.pages_lazy
    b.procs_restored
