(** A simulated Aurora machine: kernel + devices + orchestrator.

    This is the top of the system diagram (Figure 1): the kernel with
    its POSIX object model, the storage devices (an Optane-class NVMe
    drive for the disk store, a DRAM region for memory-backed
    ephemeral checkpoints, a swap device), the SLS orchestrator with
    its persistence groups and periodic checkpoint schedule, and the
    external-consistency buffer.

    {!run} advances simulated time: the scheduler executes programs,
    checkpoints fire on each group's interval (100x per second by
    default), buffered external output is released as checkpoints
    become durable, and old generations are garbage-collected past the
    configured history window. *)

open Aurora_simtime
open Aurora_device
open Aurora_proc
open Aurora_objstore

type t = {
  kernel : Kernel.t;
  nvme : Devarray.t;
  memdev : Devarray.t;
  swap : Aurora_vm.Swap.t;
  disk_store : Store.t;
  mem_store : Store.t;
  mutable pgroups : Types.pgroup list;
  mutable next_pgid : int;
  extcons : Extconsist.t;
  mutable history_window : int;  (** generations kept on disk (plus named ones) *)
  mutable recorded : Types.pgroup list;  (** groups with input recording on *)
  slo : Slo.t;  (** stop-time / restore-latency watchdog *)
  mutable max_inflight_ckpts : int;
  (** Bound on captured-but-not-retired checkpoint epochs (default 2).
      1 = synchronous: every barrier waits for its own flush. k > 1
      pipelines: up to k-1 flushes drain under execution; a barrier
      that would exceed the window blocks on the oldest epoch and
      charges the wait to [ckpt.backpressure_us]. *)
  mutable pending_ckpts : Types.pending_ckpt list;
  (** Committed epochs whose writes are still draining, oldest first. *)
  mutable standby : (int * Replica.t) option;
  (** Hot-standby replication session, with the pgid whose checkpoints
      auto-ship through it. Managed by {!attach_standby} /
      {!failover}. *)
  mutable postmortem : postmortem option;
  (** What the previous incarnation left in flight — computed once at
      {!boot} by {!forensics}; read it through {!postmortem}. *)
}

(** The post-mortem: a reconstruction of "what was in flight when we
    died", computed at boot by diffing the recovered flight-recorder
    ring (stored with the last durable generation) and the store's
    black box against the committed prefix. *)
and postmortem = {
  pm_crash_reason : string option;
      (** Stamped by this boot when the black box names epochs beyond
          the committed prefix (["unclean shutdown: ..."]), or by
          {!failover} (["failover: ..."]); [None] after a clean
          shutdown. *)
  pm_recovered_gen : Store.gen option;
      (** The durable generation whose flight-recorder ring was
          reopened; [None] when no generation carried one. *)
  pm_bbox_at : Duration.t option;
      (** Instant the black box was last written — an upper bound on
          when the previous incarnation was still alive. *)
  pm_pending_epochs : Recorder.capture_mark list;
      (** Checkpoint epochs captured but never durable: committed by
          the dying machine, lost with the crash. Oldest first. *)
  pm_unacked_gens : Store.gen list;
      (** Generations a replication session had not seen acknowledged
          durable by the standby (empty when none was attached). *)
  pm_open_spans : string list;
      (** Span names open at the last capture the ring recorded. *)
  pm_last_alerts : Recorder.event list;
      (** SLO breach events the recovered ring retained, oldest
          first. *)
  pm_events : Recorder.event list;  (** the full recovered ring *)
}

val create :
  ?storage_profile:Profile.t ->
  ?stripes:int ->
  ?capacity_pages:int ->
  ?fs_with_disk:bool ->
  ?dedup:bool ->
  ?faults:Fault.plan ->
  ?storage_blocks:int ->
  ?max_inflight_ckpts:int ->
  ?io_sched:Iosched.config ->
  unit ->
  t
(** A fresh machine. [storage_profile] (default Optane 900P) is the
    disk store's device. [stripes] (default the profile's, normally 1)
    stripes the disk store over that many independent device queues —
    the paper's four-drive testbed. [fs_with_disk] (default false)
    gives the conventional file system its own backing device — used
    by the database baselines that fsync. [dedup] (default true)
    controls the object store's content deduplication (ablation
    bench). [faults] attaches a deterministic media-fault plan to the
    disk array; the disk store then formats with checksum verification
    and mirroring on. [storage_blocks] caps the disk array's logical
    capacity — checkpoints degrade (not crash) when it fills.
    [max_inflight_ckpts] (default 2) bounds the checkpoint pipeline —
    see the field above. [io_sched] (default {!Iosched.Fifo}) selects
    the disk array's I/O scheduler: [Wdrr _] paces checkpoint-flush
    and background traffic so foreground reads can slot into reserved
    gaps instead of queueing behind whole flush batches. *)

val clock : t -> Clock.t
val now : t -> Duration.t

val metrics : t -> Metrics.t
(** The machine-wide metrics registry (the kernel's). Devices, stores,
    checkpoint and restore all report into it. *)

val spans : t -> Span.t
(** The machine-wide span recorder: checkpoint/restore phase trees
    plus device-transfer and store-flush spans. Export with
    {!Span.to_chrome_json}. *)

val recorder : t -> Recorder.t
(** The machine's flight recorder (the kernel's). The checkpoint
    engine serializes it into every generation and keeps the store's
    black-box slot fresh; {!boot} rehydrates it from the last durable
    generation. *)

val postmortem : t -> postmortem option
(** The forensic reconstruction computed when this machine booted on
    existing storage: [None] on a freshly formatted machine or when
    neither a recorder ring nor a black box was recoverable. *)

val sync_metrics : t -> unit
(** Fold pull-style state — device/fault counters, store IO-repair and
    dedup/occupancy stats, tracelog/span drop counts — into gauges in
    {!metrics}. Registered as a [Metrics.on_snapshot] hook at build
    time, so every snapshot/export already sees fresh values; calling
    it explicitly is only needed to refresh a gauge handle read
    directly via [Metrics.value]. *)

val set_slo_targets :
  t -> ?stop_time:Duration.t -> ?restore_latency:Duration.t -> unit -> unit
(** Configure the SLO watchdog ({!Slo}): omitted targets are cleared.
    Every committed checkpoint's stop time and every
    {!restore_group}'s total latency is checked; a breach records an
    {!Slo.alert} (carrying the group's top-k attribution rows), bumps
    the [slo.breach.*] counters, and lands on the ["slo"] span
    track. *)

val slo_alerts : t -> Slo.alert list
(** Recorded breaches, newest first. *)

val last_attribution : Types.pgroup -> Types.ckpt_attribution option
(** The per-process / per-object cost attribution of the group's most
    recent committed checkpoint, if any. *)

(* --- persistence groups (the Table 1 CLI surface) ------------------- *)

val persist :
  t -> ?interval:Duration.t -> ?incremental:bool -> Types.target -> Types.pgroup
(** `sls persist`: register an application for transparent persistence
    (default interval 10 ms, incremental). The disk store is attached
    automatically as the primary backend. *)

val persist_unattached : t -> ?interval:Duration.t -> Types.target -> Types.pgroup
(** A group with no backends (attach explicitly). *)

val attach : t -> Types.pgroup -> Types.backend -> unit
val detach : t -> Types.pgroup -> Types.backend -> unit
val memory_backend : t -> Types.backend
val disk_backend : t -> Types.backend

val checkpoint_now :
  t -> Types.pgroup -> ?mode:[ `Full | `Incremental ] -> ?name:string -> unit ->
  Types.ckpt_breakdown
(** `sls checkpoint`: barrier + capture to every attached backend
    (remotes receive the exported image) and enqueue the epoch on the
    flush pipeline. Also stamps the external-consistency buffer.
    Returns as soon as the in-flight window has room again (see
    [max_inflight_ckpts]); the returned breakdown's [durable_at] may
    be in the future. Epochs that already landed are retired first —
    finalizing their spans/histograms and garbage-collecting
    history. *)

val complete_due : t -> unit
(** Retire every in-flight epoch whose durability time the clock has
    passed (oldest first). {!run}, {!checkpoint_now} and
    {!drain_storage} call this themselves; exposed for fixtures that
    drive the clock manually. *)

val drain_pipeline : t -> unit
(** Block (advance the clock) until every in-flight epoch is durable
    and retired. *)

val run : t -> Duration.t -> unit
(** Advance the machine by a span of simulated time. *)

val run_until_idle : t -> unit
(** Run until no thread can progress and all checkpoint work is
    quiesced (at most one more periodic checkpoint per group). *)

val restore_group :
  t -> Types.pgroup -> ?gen:Store.gen -> ?policy:Types.restore_policy ->
  ?from:Types.backend -> unit -> int list * Types.restore_breakdown
(** `sls restore`: (re)create the group's processes from a checkpoint
    (default: the latest generation of the primary backend). Existing
    member processes are killed first. *)

val clone_group :
  t -> Types.pgroup -> ?gen:Store.gen -> ?policy:Types.restore_policy -> unit ->
  int list * Types.restore_breakdown
(** Serverless scale-out: restore another instance of the image with
    fresh pids, alongside the running one. *)

val ps : t -> (int * string * int * string) list
(** `sls ps`: (pid, name, container, state). *)

val enable_sls_calls : t -> unit
(** Install the libsls syscall bridge so simulated programs can invoke
    [Syscall.sls] (ntflush, manual checkpoints, barriers, log
    replay). *)

val enable_recording : t -> Types.pgroup -> unit
(** Record/replay integration (§4): journal every byte entering the
    group from outside before delivery. Checkpoints truncate the
    journal ("only keeping the records since the last checkpoint"). *)

val rollback_and_replay : t -> Types.pgroup -> int list * int
(** Roll the group back to its last checkpoint and re-deliver the
    journaled inputs into the restored endpoints: the §4 failure
    workflow ("witness the last seconds before a crash"). Returns the
    restored pids and the number of inputs replayed. The caller runs
    the scheduler to watch the re-execution. *)

(* --- replication ---------------------------------------------------- *)

val attach_standby :
  t ->
  ?faults:Netlink.fault_plan ->
  ?link_profile:Profile.t ->
  ?ack_timeout:Duration.t ->
  ?max_attempts:int ->
  ?standby_dev:Devarray.t ->
  Types.pgroup ->
  Replica.t
(** Attach a hot standby for the group: a fresh single-stripe device
    array (same storage profile as the primary) behind a {!Netlink}
    link (default profile 10 GbE) carrying the optional [faults] plan,
    and a {!Replica} session through it. Every subsequent committed
    checkpoint of the group auto-ships through the session (see
    {!checkpoint_now}). [standby_dev] re-attaches an existing standby
    device instead — after a primary crash and {!recover}, the new
    session resumes from the replication state recorded durably on the
    standby. Raises [Invalid_argument] when a standby is already
    attached. *)

val standby_session : t -> Replica.t option

val detach_standby : t -> unit
(** Stop auto-shipping; the session and its store are abandoned. *)

val note_ship_report : t -> Replica.ship_report -> unit
(** Fold a ship's outcome into the flight recorder: ring events
    (correlation id included) plus the black-box ack horizon. The
    auto-ship path does this itself; callers driving {!Replica.ship}
    directly (e.g. the CLI) use this to keep the recorder honest. *)

type failover_report = {
  fo_rpo : int;
      (** RPO: committed primary generations the standby never
          acknowledged durable — what this primary loss costs. *)
  fo_primary_latest : Store.gen option;
  fo_promoted_gen : Store.gen option;
      (** The standby generation (standby numbering) the promoted
          machine resumes from. *)
  fo_standby_generations : int;
}

val failover : t -> t * failover_report
(** Promote the standby: boot a fresh machine on the standby's device
    (its store recovers to the committed, integrity-verified prefix it
    acknowledged) and report the RPO. The old machine stops shipping;
    call {!restore_group} on the promoted machine to resurrect the
    applications. Raises [Invalid_argument] when no standby is
    attached. *)

(* --- failure -------------------------------------------------------- *)

val crash : t -> unit
(** Power failure: volatile device caches and all kernel state are
    lost. The machine object must not be used afterwards except as the
    argument of {!recover}. *)

val boot :
  ?max_inflight_ckpts:int -> nvme:Devarray.t -> unit -> (t, Store.error) result
(** Boot a fresh machine on an existing storage device (recover its
    object store; restore the file system from the latest generation
    when one exists). The CLI uses this to resume a universe whose
    only surviving state is the disk. [Error] is the store's typed
    recovery failure (no superblock, unreadable generation table,
    ...). *)

val boot_exn : ?max_inflight_ckpts:int -> nvme:Devarray.t -> unit -> t
(** {!boot}, raising [Store.Fail] on error. *)

val recover : t -> t
(** Boot a new machine on the survivors: same clock (wall time moves
    on), same storage devices; the object store is re-opened from its
    superblocks and the file system restored from the latest
    generation. Persistence groups are re-registered (empty: call
    {!restore_group} to resurrect applications). *)

val gc_history : t -> int
(** Apply the history window now; returns blocks freed. *)

val drain_storage : t -> unit
(** Advance the clock (without scheduling applications) until every
    in-flight checkpoint epoch is retired and both stores' pipelines
    are durable. Crash-test fixtures use this to define "the store
    caught up". Unlike the device queues' [busy_until], unrelated raw
    device traffic does not gate this. *)

val critical_path : ?gen:int -> t -> (Critpath.report, string) result
(** {!Critpath.analyze} over this machine's span recorder (default:
    the newest finalized generation), augmented with a [mirror_writes]
    antagonist estimated from the generation's provenance (mirror
    blocks through the device profile's write cost — mirror traffic
    rides inside the commit's own transfers, so the span tree cannot
    see it separately). The report is also published as the
    [ckpt.critpath.*] metrics family. *)
