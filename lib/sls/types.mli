(** Shared SLS types: persistence groups, backends, breakdowns.

    A persistence group is the unit of transparent persistence (§3:
    "Aurora provides persistence for individual processes, process
    trees or containers"); it carries one or more attached backends —
    the paper's `sls attach` allows "attaching multiple backends at
    the same time, e.g., sending an application's incremental
    checkpoints to both a local disk and a remote machine". *)

open Aurora_simtime
open Aurora_device
open Aurora_proc
open Aurora_objstore

type backend =
  | Local of { store : Store.t; kind : [ `Disk | `Memory | `Nvdimm ] }
      (** object store on a local device; the first Local backend of a
          group is its primary (restore source) *)
  | Remote of { link : Netlink.t; side : Netlink.side }
      (** stream serialized checkpoints to a peer host *)

type target = [ `Container of int | `Pids of int list ]

(** Stop-time breakdown of one checkpoint, mirroring Table 3's rows. *)
type ckpt_breakdown = {
  gen : Store.gen;
  mode : [ `Full | `Incremental ];
  quiesce : Duration.t;         (** parking the group's threads at the barrier *)
  metadata_copy : Duration.t;
  lazy_data_copy : Duration.t;  (** COW arming during the barrier *)
  stop_time : Duration.t;
  pages_captured : int;
  records_written : int;
  barrier_at : Duration.t;      (** when the barrier began *)
  durable_at : Duration.t;      (** absolute durability time on the primary *)
  status : [ `Ok | `Degraded of string ];
      (** [`Degraded reason]: the generation could not commit (device
          full or failed) and was aborted; [gen] was never durable and
          the group keeps serving from its last good checkpoint. *)
}

(** Restore-time breakdown, mirroring Table 4's rows. *)
type restore_breakdown = {
  objstore_read : Duration.t;
  memory_state : Duration.t;
  metadata_state : Duration.t;
  total_latency : Duration.t;
  pages_restored : int;   (** made resident eagerly *)
  pages_lazy : int;       (** left to fault from the image *)
  procs_restored : int;
}

type restore_policy =
  | Eager          (** bring every page in now *)
  | Lazy           (** map nothing; fault everything from the image *)
  | Lazy_prefetch  (** eagerly page in the checkpoint's hot set (§3's
                       clock-driven optimization), fault the rest *)

type pgroup = {
  pgid : int;
  mutable target : target;
  mutable backends : backend list;
  mutable interval : Duration.t;        (** default 10 ms: "100x per second" *)
  mutable incremental : bool;
  mutable last_gen : Store.gen option;
  mutable last_barrier : Duration.t;
  mutable next_ckpt_at : Duration.t;
  mutable last_breakdown : ckpt_breakdown option;
  mutable log_counts : (int * int) list; (** cached log lengths, by store oid *)
  stop_stats : Stats.t;                 (** stop time per checkpoint, us *)
}

val make_pgroup : pgid:int -> target:target -> interval:Duration.t -> pgroup
val primary_store : pgroup -> Store.t option
val remotes : pgroup -> (Aurora_device.Netlink.t * Aurora_device.Netlink.side) list
val member : Kernel.t -> pgroup -> Process.t -> bool
val member_pids : Kernel.t -> pgroup -> int list
(** Live pids in the group, ascending (zombies excluded). *)

val pp_ckpt_breakdown : Format.formatter -> ckpt_breakdown -> unit
val pp_restore_breakdown : Format.formatter -> restore_breakdown -> unit
