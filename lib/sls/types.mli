(** Shared SLS types: persistence groups, backends, breakdowns.

    A persistence group is the unit of transparent persistence (§3:
    "Aurora provides persistence for individual processes, process
    trees or containers"); it carries one or more attached backends —
    the paper's `sls attach` allows "attaching multiple backends at
    the same time, e.g., sending an application's incremental
    checkpoints to both a local disk and a remote machine". *)

open Aurora_simtime
open Aurora_device
open Aurora_proc
open Aurora_objstore

type backend =
  | Local of { store : Store.t; kind : [ `Disk | `Memory | `Nvdimm ] }
      (** object store on a local device; the first Local backend of a
          group is its primary (restore source) *)
  | Remote of { link : Netlink.t; side : Netlink.side }
      (** stream serialized checkpoints to a peer host *)

type target = [ `Container of int | `Pids of int list ]

(** Stop-time breakdown of one checkpoint, mirroring Table 3's rows. *)
type ckpt_breakdown = {
  gen : Store.gen;
  mode : [ `Full | `Incremental ];
  quiesce : Duration.t;         (** parking the group's threads at the barrier *)
  metadata_copy : Duration.t;
  lazy_data_copy : Duration.t;  (** COW arming during the barrier *)
  stop_time : Duration.t;
  pages_captured : int;
  records_written : int;
  barrier_at : Duration.t;      (** when the barrier began *)
  durable_at : Duration.t;      (** absolute durability time on the primary *)
  status : [ `Ok | `Degraded of string ];
      (** [`Degraded reason]: the generation could not commit (device
          full or failed) and was aborted; [gen] was never durable and
          the group keeps serving from its last good checkpoint. *)
}

(** Restore-time breakdown, mirroring Table 4's rows. *)
type restore_breakdown = {
  objstore_read : Duration.t;
  memory_state : Duration.t;
  metadata_state : Duration.t;
  total_latency : Duration.t;
  pages_restored : int;   (** made resident eagerly *)
  pages_lazy : int;       (** left to fault from the image *)
  procs_restored : int;
}

type restore_policy =
  | Eager          (** bring every page in now *)
  | Lazy           (** map nothing; fault everything from the image *)
  | Lazy_prefetch  (** eagerly page in the checkpoint's hot set (§3's
                       clock-driven optimization), fault the rest *)

(** Who-caused-what accounting for one checkpoint. The invariant the
    whole provenance layer rests on: object rows partition the
    breakdown ([Σ a_pages = pages_captured], and likewise bytes), and
    process rows partition the object rows (each captured object is
    attributed to exactly one owner), so both views sum {e exactly} to
    the totals the engine reported. *)

type obj_attribution = {
  a_oid : int;            (** VM object id *)
  a_store_oid : int;      (** oid its pages live under in the store *)
  a_pages : int;          (** pages captured from this object *)
  a_bytes : int;          (** page payload + serialized object record *)
  a_metadata_bytes : int; (** serialized object record alone *)
  a_cow_breaks : int;     (** writes that raced the flush since last ckpt *)
  a_chain_depth : int;    (** shadow-chain depth walked at capture *)
  a_owner_pid : int option; (** owning process ([None]: kernel/shared) *)
}

type proc_attribution = {
  p_pid : int;            (** 0 stands for the kernel/shared row *)
  p_name : string;
  p_pages : int;
  p_bytes : int;
  p_metadata_bytes : int; (** proc record + owned object records *)
  p_cow_breaks : int;
  p_objects : int;        (** objects attributed to this process *)
}

type ckpt_attribution = {
  at_gen : Store.gen;
  at_pages_total : int;
  at_bytes_total : int;
  at_metadata_bytes_total : int;
  at_objects : obj_attribution list;
  at_procs : proc_attribution list;
}

type pgroup = {
  pgid : int;
  mutable target : target;
  mutable backends : backend list;
  mutable interval : Duration.t;        (** default 10 ms: "100x per second" *)
  mutable incremental : bool;
  mutable last_gen : Store.gen option;
  mutable last_barrier : Duration.t;
  mutable next_ckpt_at : Duration.t;
  mutable last_breakdown : ckpt_breakdown option;
  mutable last_attribution : ckpt_attribution option;
  mutable log_counts : (int * int) list; (** cached log lengths, by store oid *)
  stop_stats : Stats.t;                 (** stop time per checkpoint, us *)
}

type pending_ckpt = { pc_group : pgroup; pc_b : ckpt_breakdown }
(** One captured-but-not-yet-retired checkpoint epoch: committed, with
    its writes still draining toward [pc_b.durable_at]. The machine
    keeps these oldest-first, bounded by its in-flight window. *)

val make_pgroup : pgid:int -> target:target -> interval:Duration.t -> pgroup
val primary_store : pgroup -> Store.t option
val remotes : pgroup -> (Aurora_device.Netlink.t * Aurora_device.Netlink.side) list
val member : Kernel.t -> pgroup -> Process.t -> bool
val member_pids : Kernel.t -> pgroup -> int list
(** Live pids in the group, ascending (zombies excluded). *)

val top_objects : ?k:int -> ckpt_attribution -> obj_attribution list
(** Object rows by descending checkpoint cost (pages, then bytes),
    truncated to the top [k] (default: all). *)

val top_procs : ?k:int -> ckpt_attribution -> proc_attribution list

val pp_ckpt_breakdown : Format.formatter -> ckpt_breakdown -> unit
val pp_restore_breakdown : Format.formatter -> restore_breakdown -> unit
