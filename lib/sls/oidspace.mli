(** Store object-id namespaces.

    The object store indexes everything by a flat integer oid;
    checkpoint records for different kernds of state live in disjoint
    tagged ranges so a process record can never collide with a vnode
    or a VM object. Tag 2 (vnodes) is shared with [Aurora_slsfs]. *)

val manifest : int -> int
(** Per-persistence-group application manifest record (pids,
    container, name tables), by pgroup id. *)

val fs_manifest_oid : int
(** Owned by [Aurora_slsfs]; listed here for the full map. *)

val kobj : int -> int
(** Kernel objects (pipes, sockets, shm, ...) by registry oid. *)

val vnode : int -> int
(** File system vnodes by vid (= [Aurora_slsfs.Slsfs.oid_of_vid]). *)

val proc : int -> int
(** Processes by pid. *)

val vmobj : int -> int
(** VM objects by their [Vmobject.oid]. *)

val ntlog : int -> int
(** Per-group persistent append-only log (`sls_ntflush`). *)

val rrlog : int -> int
(** Per-group record/replay input journal. *)

val recorder : int
(** The machine-wide flight-recorder ring, persisted once per
    checkpoint generation. *)
