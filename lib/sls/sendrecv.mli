(** Checkpoint shipping: the machinery behind `sls send` / `sls recv`.

    A checkpoint generation is exported as one self-contained byte
    image — "all information required to recreate the application,
    even across reboots and machines" — and imported into another
    store as a fresh generation. Shipping it over a {!Netlink.t}
    models live migration and remote persistence; writing it to a
    file (the CLI's pipe mode) is the same bytes.

    Incremental feeds simply export successive generations: the
    receiving store's content-addressed deduplication collapses the
    unchanged pages, so the wire is the only place the full image
    costs anything (and a delta export against a base generation
    avoids even that). *)

open Aurora_simtime
open Aurora_device
open Aurora_objstore

val export :
  Store.t -> gen:Store.gen -> pgid:int -> ?base:Store.gen -> ?with_fs:bool -> unit -> string
(** Serialize everything the group's checkpoint needs. With [base],
    pages and blobs identical in the base generation are omitted (an
    incremental shipment; the receiver must already hold the base).
    [with_fs] defaults to true. Reads are charged to the clock (the
    sender really reads its store). Raises {!Restore.Error} when the
    generation holds no checkpoint of [pgid] or a referenced record
    is missing. *)

val import : Store.t -> string -> Store.gen * Duration.t
(** Write an exported image into the store as a new generation; returns
    it with its durability instant. Raises {!Restore.Error}
    ([Bad_image]) when the payload is not an Aurora image or the
    whole-image checksum does not match — a bit flipped in a file or
    on the wire is rejected before any record reaches the store. *)

val checksum : string -> int64
(** The 64-bit FNV-1a digest {!export} seals images with (and
    {!import} verifies). Exposed for the replication layer, which uses
    the same construction over its protocol frames. *)

val ship :
  Netlink.t -> from_:Netlink.side -> Store.t -> gen:Store.gen -> pgid:int ->
  ?base:Store.gen -> unit -> Duration.t
(** Export and transmit; returns the arrival time at the peer. *)

val receive : Netlink.t -> side:Netlink.side -> Store.t -> (Store.gen * Duration.t) option
(** Import the next arrived image, if any. *)

val image_bytes : string -> int
(** Size accessor for benches (identity on the payload length). *)
