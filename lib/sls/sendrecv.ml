open Aurora_device
open Aurora_posix
open Aurora_objstore

let magic = "AURORA-IMAGE-v2"
let page_padding = String.make (Aurora_device.Blockdev.block_size - 8) '\000'

(* FNV-1a, 64-bit. The image travels over wires and through files the
   store's per-block checksums never see; one digest over the whole
   body turns any in-flight bit flip into a typed [Bad_image] instead
   of a silently-imported corrupt generation. *)
let checksum s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

(* Object ids whose records make up the group's checkpoint. *)
let image_oids store ~gen ~pgid ~with_fs =
  let manifest_oid = Oidspace.manifest pgid in
  let manifest =
    match Store.read_record store gen ~oid:manifest_oid with
    | Some data -> Serialize.parse_manifest data
    | None -> raise (Restore.Error (Restore.No_manifest { gen; pgid }))
  in
  let record_oids = ref [ manifest_oid ] in
  (* The flight-recorder ring rides along when the generation carries
     one, so a promoted standby reopens to the primary's telemetry. *)
  if Store.read_record store gen ~oid:Oidspace.recorder <> None then
    record_oids := Oidspace.recorder :: !record_oids;
  let vm_oids = ref [] in
  let seen_vm = Hashtbl.create 16 in
  let rec add_vm oid =
    if not (Hashtbl.mem seen_vm oid) then begin
      Hashtbl.replace seen_vm oid ();
      vm_oids := oid :: !vm_oids;
      record_oids := Oidspace.vmobj oid :: !record_oids;
      match Store.read_record store gen ~oid:(Oidspace.vmobj oid) with
      | None ->
        raise
          (Restore.Error
             (Restore.Missing_record
                { gen; oid = Oidspace.vmobj oid; what = "vm object" }))
      | Some data ->
        Option.iter add_vm (Serialize.parse_vmobj data).Serialize.shadow_oid
    end
  in
  List.iter
    (fun pid ->
      let oid = Oidspace.proc pid in
      record_oids := oid :: !record_oids;
      match Store.read_record store gen ~oid with
      | None -> raise (Restore.Error (Restore.Missing_record { gen; oid; what = "process" }))
      | Some data ->
        List.iter
          (fun (e : Serialize.vm_entry_rec) -> add_vm e.Serialize.obj_oid)
          (Serialize.parse_proc data).Serialize.vm_entries)
    manifest.Serialize.pids;
  List.iter
    (fun oid -> record_oids := Oidspace.kobj oid :: !record_oids)
    manifest.Serialize.kobj_oids;
  let vnode_oids =
    if not with_fs then []
    else
      match Store.read_record store gen ~oid:Oidspace.fs_manifest_oid with
      | None -> []
      | Some data ->
        let r = Serial.reader data in
        let root_vid = Serial.r_int r in
        let _paths =
          Serial.r_list r (fun r ->
              let _ = Serial.r_string r in
              let _ = Serial.r_int r in
              let _ = Serial.r_u8 r in
              ())
        in
        let vids = Serial.r_list r Serial.r_int in
        record_oids := Oidspace.fs_manifest_oid :: !record_oids;
        List.filter_map
          (fun vid -> if vid = root_vid then None else Some (Oidspace.vnode vid))
          vids
  in
  record_oids := vnode_oids @ !record_oids;
  (List.rev !record_oids, List.rev_map Oidspace.vmobj !vm_oids, vnode_oids)

let export store ~gen ~pgid ?base ?(with_fs = true) () =
  (* Image reads are replication traffic, not application reads: demote
     them so a concurrent ship does not steal the reserved foreground
     gaps from the application's own page faults. *)
  let saved_cls = Store.read_class store in
  Store.set_read_class store Iosched.Background;
  Fun.protect ~finally:(fun () -> Store.set_read_class store saved_cls)
  @@ fun () ->
  let record_oids, page_oids, blob_oids = image_oids store ~gen ~pgid ~with_fs in
  let w = Serial.writer () in
  Serial.w_int w pgid;
  Serial.w_list w (fun w oid ->
      Serial.w_int w oid;
      match Store.read_record store gen ~oid with
      | Some data -> Serial.w_string w data
      | None ->
        raise (Restore.Error (Restore.Missing_record { gen; oid; what = "image" })))
    record_oids;
  Serial.w_list w (fun w oid ->
      Serial.w_int w oid;
      let pages =
        Store.fold_pages store gen ~oid ~init:[] ~f:(fun acc pindex seed ->
            let unchanged =
              match base with
              | None -> false
              | Some b -> Store.read_page store b ~oid ~pindex = Some seed
            in
            if unchanged then acc else (pindex, seed) :: acc)
      in
      Serial.w_list w (fun w (pindex, seed) ->
          Serial.w_int w pindex;
          Serial.w_int64 w seed;
          (* Pad to the page size: the wire carries whole pages, and
             link-cost accounting is by payload length. *)
          Serial.w_string w page_padding)
        (List.rev pages))
    page_oids;
  Serial.w_list w (fun w oid ->
      Serial.w_int w oid;
      let blobs =
        Store.fold_blobs store gen ~oid ~init:[] ~f:(fun acc index data ->
            let unchanged =
              match base with
              | None -> false
              | Some b -> Store.read_blob store b ~oid ~index = Some data
            in
            if unchanged then acc else (index, data) :: acc)
      in
      Serial.w_list w (fun w (index, data) ->
          Serial.w_int w index;
          Serial.w_string w data)
        (List.rev blobs))
    blob_oids;
  let body = Serial.contents w in
  let out = Serial.writer () in
  Serial.w_string out magic;
  Serial.w_int64 out (checksum body);
  Serial.w_string out body;
  Serial.contents out

let import store image =
  let r = Serial.reader image in
  (match Serial.r_string r with
   | s when String.equal s magic -> ()
   | _ -> raise (Restore.Error (Restore.Bad_image "bad magic"))
   | exception Serial.Corrupt msg ->
     raise (Restore.Error (Restore.Bad_image msg)));
  let body =
    match
      let expect = Serial.r_int64 r in
      let body = Serial.r_string r in
      (expect, body)
    with
    | expect, body ->
      if not (Int64.equal (checksum body) expect) then
        raise (Restore.Error (Restore.Bad_image "image checksum mismatch"));
      body
    | exception Serial.Corrupt msg ->
      raise (Restore.Error (Restore.Bad_image msg))
  in
  let r = Serial.reader body in
  let _pgid = Serial.r_int r in
  ignore (Store.begin_generation store ());
  let records =
    Serial.r_list r (fun r ->
        let oid = Serial.r_int r in
        let data = Serial.r_string r in
        (oid, data))
  in
  List.iter (fun (oid, data) -> Store.put_record store ~oid data) records;
  let pages =
    Serial.r_list r (fun r ->
        let oid = Serial.r_int r in
        let ps =
          Serial.r_list r (fun r ->
              let pindex = Serial.r_int r in
              let seed = Serial.r_int64 r in
              let _padding = Serial.r_string r in
              (pindex, seed))
        in
        (oid, ps))
  in
  List.iter
    (fun (oid, ps) ->
      List.iter (fun (pindex, seed) -> Store.put_page store ~oid ~pindex ~seed) ps)
    pages;
  let blobs =
    Serial.r_list r (fun r ->
        let oid = Serial.r_int r in
        let bs =
          Serial.r_list r (fun r ->
              let index = Serial.r_int r in
              let data = Serial.r_string r in
              (index, data))
        in
        (oid, bs))
  in
  List.iter
    (fun (oid, bs) ->
      List.iter (fun (index, data) -> Store.put_blob store ~oid ~index data) bs)
    blobs;
  Store.commit store ()

let ship link ~from_ store ~gen ~pgid ?base () =
  let image = export store ~gen ~pgid ?base () in
  Netlink.send link ~from_ image

let receive link ~side store =
  match Netlink.recv link ~side with
  | None -> None
  | Some image -> Some (import store image)

let image_bytes image = String.length image
