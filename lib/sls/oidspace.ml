
let fs_manifest_oid = Aurora_slsfs.Slsfs.fs_manifest_oid

let tag n id =
  if id < 0 || id >= 1 lsl 24 then invalid_arg "Oidspace: id out of range";
  (n lsl 24) lor id

let manifest pgid =
  if pgid < 0 || pgid >= 1 lsl 20 then invalid_arg "Oidspace.manifest: bad pgid";
  16 + pgid

let kobj id = tag 1 id
let vnode id = Aurora_slsfs.Slsfs.oid_of_vid id
let proc id = tag 3 id
let vmobj id = tag 4 id
let ntlog pgid = tag 5 pgid
let rrlog pgid = tag 6 pgid
let recorder = tag 7 0
