open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_posix
open Aurora_proc
open Aurora_vfs
open Aurora_objstore

(* Count, per vnode, the open file descriptions captured by this
   checkpoint — the value of Aurora's on-disk open reference count. *)
let persistent_opens (k : Kernel.t) (g : Types.pgroup) =
  let counts = Hashtbl.create 16 in
  let seen_ofds = Hashtbl.create 32 in
  List.iter
    (fun (p : Process.t) ->
      if Types.member k g p && not (Process.is_zombie p) then
        List.iter
          (fun (_, ofd) ->
            if not (Hashtbl.mem seen_ofds ofd.Fd.ofd_oid) then begin
              Hashtbl.replace seen_ofds ofd.Fd.ofd_oid ();
              match ofd.Fd.kind with
              | Fd.Vnode_file { vnode; _ } ->
                let c =
                  Option.value ~default:0 (Hashtbl.find_opt counts vnode.Vnode.vid)
                in
                Hashtbl.replace counts vnode.Vnode.vid (c + 1)
              | Fd.Obj _ -> ()
            end)
          (Fd.descriptors p.Process.fdtable))
    (Kernel.processes k);
  fun vid -> Option.value ~default:0 (Hashtbl.find_opt counts vid)

let checkpoint (k : Kernel.t) (g : Types.pgroup) ?mode ?name ?(with_fs = true) () =
  let store =
    match Types.primary_store g with
    | Some s -> s
    | None -> invalid_arg "Ckpt.checkpoint: group has no local backend"
  in
  let mode =
    match mode with
    | Some m -> m
    | None -> if g.Types.incremental then `Incremental else `Full
  in
  let clock = k.Kernel.clock in
  let spans = k.Kernel.spans in
  let metrics = k.Kernel.metrics in
  let barrier_at = Clock.now clock in
  let root =
    Span.start spans "ckpt"
      ~attrs:
        [ ("pgid", string_of_int g.Types.pgid);
          ("mode", match mode with `Full -> "full" | `Incremental -> "incr") ]
  in

  (* --- barrier: quiesce ---------------------------------------------- *)
  (* Park every member at the barrier before touching its state: IPI +
     run-queue removal per process, a rendezvous share per thread.
     Counted inside the stop window. *)
  let s_quiesce = Span.start spans "ckpt.quiesce" in
  List.iter
    (fun (p : Process.t) ->
      if Types.member k g p && not (Process.is_zombie p) then begin
        Kernel.charge k Costmodel.quiesce_proc;
        Kernel.charge k
          (Duration.scale Costmodel.quiesce_thread (List.length p.Process.threads))
      end)
    (Kernel.processes k);
  let quiesce = Span.finish spans s_quiesce in

  (* --- barrier: metadata copy --------------------------------------- *)
  let s_serialize = Span.start spans "ckpt.serialize" in
  let records = Serialize.snapshot_metadata k g in
  let metadata_copy = records.Serialize.metadata_cost in
  ignore (Span.finish spans s_serialize);

  (* --- barrier: COW arming ("lazy data copy") ------------------------ *)
  let s_cow = Span.start spans "ckpt.cow_mark" in
  let arm_started = Clock.now clock in
  let arm_mode = match mode with `Full -> `Full | `Incremental -> `Dirty_only in
  let captures =
    (* Arrays with the count computed once: the capture set is walked
       three more times below (charge, flush, release) and a busy
       checkpoint holds tens of thousands of pages. *)
    List.map
      (fun (obj, store_oid) ->
        let items = Array.of_list (Vmobject.arm_for_checkpoint obj ~mode:arm_mode) in
        let npages = Array.length items in
        Kernel.charge k (Costmodel.cow_arm ~pages:npages);
        (store_oid, items, npages))
      records.Serialize.vm_objects
  in
  let pages_captured = List.fold_left (fun acc (_, _, n) -> acc + n) 0 captures in
  let lazy_data_copy = Duration.sub (Clock.now clock) arm_started in
  ignore (Span.finish spans s_cow ~attrs:[ ("pages", string_of_int pages_captured) ]);
  let stop_time = Duration.sub (Clock.now clock) barrier_at in
  g.Types.last_barrier <- barrier_at;
  Stats.add_duration g.Types.stop_stats stop_time;

  (* --- background: flush into the object store ----------------------- *)
  (* The orchestrator core does this work while the application runs;
     it consumes device-queue time but not application CPU time. *)
  let gen = Store.begin_generation store () in
  (* A full or failing device must degrade the checkpoint, not kill
     the machine: abort the open generation (the store rebuilds its
     state from committed generations) and keep serving from the last
     good checkpoint. *)
  let outcome =
    match
      Store.put_record store ~oid:(Oidspace.manifest g.Types.pgid)
        records.Serialize.manifest;
      List.iter (fun (oid, record) -> Store.put_record store ~oid record)
        records.Serialize.items;
      List.iter
        (fun (store_oid, items, _) ->
          (* One batched put per object: distinct pages land in a single
             stripe-aware extent, so the device array sees one transfer
             per stripe instead of one command per page. *)
          Store.put_pages store ~oid:store_oid
            (Array.map
               (fun item ->
                 (item.Vmobject.pindex, Content.to_seed item.Vmobject.content))
               items))
        captures;
      if with_fs then
        Aurora_slsfs.Slsfs.checkpoint_fs store k.Kernel.fs
          ~popen_of_vid:(persistent_opens k g);
      Store.commit store ?name ()
    with
    | gen', durable_at ->
      assert (gen = gen');
      Ok durable_at
    | exception Alloc.Out_of_space ->
      Store.abort_generation store;
      Error "device out of space"
    | exception Store.Fail e ->
      (* [Store.commit] already rolled the generation back. *)
      Store.abort_generation store;
      Error (Store.describe_error e)
  in
  (* The flush has the data now (or never will); release the held
     frames either way. *)
  List.iter
    (fun (_, items, _) ->
      Array.iter (Vmobject.release_flush_item ~pool:k.Kernel.pool) items)
    captures;
  let status, durable_at =
    match outcome with
    | Ok durable_at ->
      g.Types.last_gen <- Some gen;
      (`Ok, durable_at)
    | Error reason -> (`Degraded reason, barrier_at)
  in
  ignore
    (Span.finish spans root
       ~attrs:
         [ ("gen", string_of_int gen);
           ("pages", string_of_int pages_captured);
           ("status",
            match status with `Ok -> "ok" | `Degraded r -> "degraded: " ^ r) ]);
  (* Phase histograms and counters. The flush window (barrier end to
     durability) only exists for committed checkpoints. *)
  Metrics.incr (Metrics.counter metrics "ckpt.count");
  Metrics.add (Metrics.counter metrics "ckpt.pages_captured") pages_captured;
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.stop_us") stop_time;
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.quiesce_us") quiesce;
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.serialize_us") metadata_copy;
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.cow_mark_us") lazy_data_copy;
  (match status with
   | `Ok ->
     (* Background-flush window: end of the stop window to durability. *)
     Metrics.observe_duration
       (Metrics.histogram metrics "ckpt.flush_us")
       (Duration.sub durable_at (Duration.add barrier_at stop_time))
   | `Degraded _ -> Metrics.incr (Metrics.counter metrics "ckpt.degraded"));
  let breakdown =
    {
      Types.gen;
      mode;
      quiesce;
      metadata_copy;
      lazy_data_copy;
      stop_time;
      pages_captured;
      records_written = List.length records.Serialize.items + 1;
      barrier_at;
      durable_at;
      status;
    }
  in
  g.Types.last_breakdown <- Some breakdown;
  Tracelog.recordf k.Kernel.trace ~subsystem:"ckpt"
    "pgroup %d gen %d %s stop=%.1fus pages=%d%s" g.Types.pgid gen
    (match mode with `Full -> "full" | `Incremental -> "incr")
    (Duration.to_us stop_time) pages_captured
    (match status with `Ok -> "" | `Degraded r -> " degraded: " ^ r);
  breakdown
