open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_posix
open Aurora_proc
open Aurora_vfs
open Aurora_objstore

(* Count, per vnode, the open file descriptions captured by this
   checkpoint — the value of Aurora's on-disk open reference count. *)
let persistent_opens (k : Kernel.t) (g : Types.pgroup) =
  let counts = Hashtbl.create 16 in
  let seen_ofds = Hashtbl.create 32 in
  List.iter
    (fun (p : Process.t) ->
      if Types.member k g p && not (Process.is_zombie p) then
        List.iter
          (fun (_, ofd) ->
            if not (Hashtbl.mem seen_ofds ofd.Fd.ofd_oid) then begin
              Hashtbl.replace seen_ofds ofd.Fd.ofd_oid ();
              match ofd.Fd.kind with
              | Fd.Vnode_file { vnode; _ } ->
                let c =
                  Option.value ~default:0 (Hashtbl.find_opt counts vnode.Vnode.vid)
                in
                Hashtbl.replace counts vnode.Vnode.vid (c + 1)
              | Fd.Obj _ -> ()
            end)
          (Fd.descriptors p.Process.fdtable))
    (Kernel.processes k);
  fun vid -> Option.value ~default:0 (Hashtbl.find_opt counts vid)

(* --- attribution ----------------------------------------------------- *)

(* Simulated page payload: one 4 KiB block per captured page. *)
let page_bytes = 4096

(* Build the who-caused-what view of one capture set. Object rows come
   straight from the arrays the barrier captured, so their page sums
   equal [pages_captured] by construction; process rows partition the
   object rows (each object goes to the lowest-pid member that maps it,
   or to the pid-0 kernel/shared row when nothing does — shm backing
   reachable only through the registry, for instance), so the two views
   sum to the same totals exactly. *)
let attribution (k : Kernel.t) (g : Types.pgroup) ~gen
    (records : Serialize.records) captures =
  let rec_len = Hashtbl.create 64 in
  List.iter
    (fun (oid, r) -> Hashtbl.replace rec_len oid (String.length r))
    records.Serialize.items;
  let len_of oid = Option.value ~default:0 (Hashtbl.find_opt rec_len oid) in
  let procs =
    Kernel.processes k
    |> List.filter (fun p -> Types.member k g p && not (Process.is_zombie p))
    |> List.sort (fun (a : Process.t) b -> Int.compare a.Process.pid b.Process.pid)
  in
  let owner = Hashtbl.create 64 in
  List.iter
    (fun (p : Process.t) ->
      List.iter
        (fun e ->
          if e.Vmmap.persisted then begin
            (* Claim the whole shadow chain: a fork's COW layers belong
               to whichever member saw the chain first (lowest pid). *)
            let rec claim obj =
              if not (Hashtbl.mem owner (Vmobject.oid obj)) then
                Hashtbl.replace owner (Vmobject.oid obj) p.Process.pid;
              Option.iter claim (Vmobject.shadow_of obj)
            in
            claim e.Vmmap.obj
          end)
        (Vmmap.entries p.Process.vm))
    procs;
  let objects =
    List.map2
      (fun (obj, _) (store_oid, _items, npages) ->
        let metadata_bytes = len_of store_oid in
        let cow_breaks = Vmobject.cow_breaks obj in
        Vmobject.reset_cow_breaks obj;
        {
          Types.a_oid = Vmobject.oid obj;
          a_store_oid = store_oid;
          a_pages = npages;
          a_bytes = (npages * page_bytes) + metadata_bytes;
          a_metadata_bytes = metadata_bytes;
          a_cow_breaks = cow_breaks;
          a_chain_depth = Vmobject.chain_depth obj;
          a_owner_pid = Hashtbl.find_opt owner (Vmobject.oid obj);
        })
      records.Serialize.vm_objects captures
  in
  let by_pid = Hashtbl.create 16 in
  let bump pid ~pages ~bytes ~meta ~cow ~objs =
    let p0, b0, m0, c0, o0 =
      Option.value ~default:(0, 0, 0, 0, 0) (Hashtbl.find_opt by_pid pid)
    in
    Hashtbl.replace by_pid pid
      (p0 + pages, b0 + bytes, m0 + meta, c0 + cow, o0 + objs)
  in
  List.iter
    (fun (a : Types.obj_attribution) ->
      bump
        (Option.value ~default:0 a.Types.a_owner_pid)
        ~pages:a.Types.a_pages ~bytes:a.Types.a_bytes
        ~meta:a.Types.a_metadata_bytes ~cow:a.Types.a_cow_breaks ~objs:1)
    objects;
  List.iter
    (fun (p : Process.t) ->
      let len = len_of (Oidspace.proc p.Process.pid) in
      bump p.Process.pid ~pages:0 ~bytes:len ~meta:len ~cow:0 ~objs:0)
    procs;
  (* Whatever metadata is neither an object record nor a process record
     (manifest, kernel objects, fs image) lands on the shared row, so
     the process rows keep summing to the full byte total. *)
  let manifest_len = String.length records.Serialize.manifest in
  let items_bytes =
    List.fold_left (fun acc (_, r) -> acc + String.length r) 0
      records.Serialize.items
  in
  let object_meta =
    List.fold_left (fun acc a -> acc + a.Types.a_metadata_bytes) 0 objects
  in
  let proc_meta =
    List.fold_left
      (fun acc (p : Process.t) -> acc + len_of (Oidspace.proc p.Process.pid))
      0 procs
  in
  let shared_meta = items_bytes + manifest_len - object_meta - proc_meta in
  bump 0 ~pages:0 ~bytes:shared_meta ~meta:shared_meta ~cow:0 ~objs:0;
  let name_of pid =
    if pid = 0 then "(shared)"
    else
      match List.find_opt (fun (p : Process.t) -> p.Process.pid = pid) procs with
      | Some p -> p.Process.name
      | None -> Printf.sprintf "pid%d" pid
  in
  let proc_rows =
    Hashtbl.fold
      (fun pid (pages, bytes, meta, cow, objs) acc ->
        {
          Types.p_pid = pid;
          p_name = name_of pid;
          p_pages = pages;
          p_bytes = bytes;
          p_metadata_bytes = meta;
          p_cow_breaks = cow;
          p_objects = objs;
        }
        :: acc)
      by_pid []
    |> List.sort (fun a b -> Int.compare a.Types.p_pid b.Types.p_pid)
  in
  let pages_total = List.fold_left (fun acc a -> acc + a.Types.a_pages) 0 objects in
  let metadata_total = items_bytes + manifest_len in
  {
    Types.at_gen = gen;
    at_pages_total = pages_total;
    at_bytes_total = (pages_total * page_bytes) + metadata_total;
    at_metadata_bytes_total = metadata_total;
    at_objects = objects;
    at_procs = proc_rows;
  }

let capture (k : Kernel.t) (g : Types.pgroup) ?mode ?name ?(with_fs = true)
    ?flush_cls () =
  let store =
    match Types.primary_store g with
    | Some s -> s
    | None -> invalid_arg "Ckpt.checkpoint: group has no local backend"
  in
  let mode =
    match mode with
    | Some m -> m
    | None -> if g.Types.incremental then `Incremental else `Full
  in
  let clock = k.Kernel.clock in
  let spans = k.Kernel.spans in
  let metrics = k.Kernel.metrics in
  let barrier_at = Clock.now clock in
  let root =
    Span.start spans "ckpt"
      ~attrs:
        [ ("pgid", string_of_int g.Types.pgid);
          ("mode", match mode with `Full -> "full" | `Incremental -> "incr") ]
  in

  (* --- barrier: quiesce ---------------------------------------------- *)
  (* Park every member at the barrier before touching its state: IPI +
     run-queue removal per process, a rendezvous share per thread.
     Counted inside the stop window. *)
  let s_quiesce = Span.start spans "ckpt.quiesce" in
  List.iter
    (fun (p : Process.t) ->
      if Types.member k g p && not (Process.is_zombie p) then begin
        Kernel.charge k Costmodel.quiesce_proc;
        Kernel.charge k
          (Duration.scale Costmodel.quiesce_thread (List.length p.Process.threads))
      end)
    (Kernel.processes k);
  let quiesce = Span.finish spans s_quiesce in

  (* --- barrier: metadata copy --------------------------------------- *)
  let s_serialize = Span.start spans "ckpt.serialize" in
  let records = Serialize.snapshot_metadata k g in
  let metadata_copy = records.Serialize.metadata_cost in
  ignore (Span.finish spans s_serialize);

  (* --- barrier: COW arming ("lazy data copy") ------------------------ *)
  let s_cow = Span.start spans "ckpt.cow_mark" in
  let arm_started = Clock.now clock in
  let arm_mode = match mode with `Full -> `Full | `Incremental -> `Dirty_only in
  let captures =
    (* Arrays with the count computed once: the capture set is walked
       three more times below (charge, flush, release) and a busy
       checkpoint holds tens of thousands of pages. *)
    List.map
      (fun (obj, store_oid) ->
        let items = Array.of_list (Vmobject.arm_for_checkpoint obj ~mode:arm_mode) in
        let npages = Array.length items in
        Kernel.charge k (Costmodel.cow_arm ~pages:npages);
        (store_oid, items, npages))
      records.Serialize.vm_objects
  in
  let pages_captured = List.fold_left (fun acc (_, _, n) -> acc + n) 0 captures in
  let lazy_data_copy = Duration.sub (Clock.now clock) arm_started in
  ignore (Span.finish spans s_cow ~attrs:[ ("pages", string_of_int pages_captured) ]);
  let stop_time = Duration.sub (Clock.now clock) barrier_at in
  g.Types.last_barrier <- barrier_at;
  Stats.add_duration g.Types.stop_stats stop_time;

  (* --- background: flush into the object store ----------------------- *)
  (* The orchestrator core does this work while the application runs;
     it consumes device-queue time but not application CPU time. *)
  let gen = Store.begin_generation store () in
  (* Flight recorder: serialize the telemetry ring into this epoch as a
     store-managed object. The snapshot is taken before this capture's
     own mark is logged, so a recovered ring never describes an epoch
     that was not committed by the time the ring was stored. The copy
     is charged here — off the stop path — and tracked against its own
     budget (the ckpt-rate sweep gates it at <1% of stop time). *)
  let recorder = k.Kernel.recorder in
  (* Snapshot the spans still open at this capture (the checkpoint's
     own root included): after a crash they are the intervals that
     never finished, which is exactly what the post-mortem reports. *)
  let open_spans =
    List.filter (fun s -> not s.Span.closed) (Span.spans spans)
  in
  if open_spans <> [] then
    Recorder.log recorder ~gen:(-1)
      ~attrs:[ ("count", string_of_int (List.length open_spans)) ]
      ~kind:"spans.open"
      (String.concat ", " (List.map (fun s -> s.Span.name) open_spans));
  let ring_blob = Recorder.export recorder in
  (* Its own child span: the critical-path analyzer measures the
     recorder tax as an antagonist overlapping the epoch window. *)
  let s_rec = Span.start spans "ckpt.recorder" in
  Kernel.charge k
    (Costmodel.page_copy
       ~pages:((String.length ring_blob + page_bytes - 1) / page_bytes));
  Metrics.observe_duration
    (Metrics.histogram metrics "ckpt.recorder_us")
    (Span.finish spans s_rec);
  (* Attribution is barrier-side data (who dirtied what), valid even if
     the flush below degrades; reading it also resets the per-object
     COW-break counters for the next cycle. *)
  let attrib = attribution k g ~gen records captures in
  let attrib =
    (* The ring is checkpoint metadata like the manifest: an explicit
       object row (zero pages) plus the shared process row keep the
       `sls top` byte totals honest about recorder overhead. *)
    let ring_len = String.length ring_blob in
    let recorder_row =
      {
        Types.a_oid = Oidspace.recorder;
        a_store_oid = Oidspace.recorder;
        a_pages = 0;
        a_bytes = ring_len;
        a_metadata_bytes = ring_len;
        a_cow_breaks = 0;
        a_chain_depth = 1;
        a_owner_pid = None;
      }
    in
    let procs =
      List.map
        (fun (p : Types.proc_attribution) ->
          if p.Types.p_pid = 0 then
            { p with
              Types.p_bytes = p.Types.p_bytes + ring_len;
              p_metadata_bytes = p.Types.p_metadata_bytes + ring_len;
              p_objects = p.Types.p_objects + 1 }
          else p)
        attrib.Types.at_procs
    in
    { attrib with
      Types.at_bytes_total = attrib.Types.at_bytes_total + ring_len;
      at_metadata_bytes_total = attrib.Types.at_metadata_bytes_total + ring_len;
      at_objects = attrib.Types.at_objects @ [ recorder_row ];
      at_procs = procs }
  in
  g.Types.last_attribution <- Some attrib;
  (* Name this epoch in the black box BEFORE queueing its writes: the
     box rides a dedicated out-of-band device queue, so it can be
     durable while the epoch flush below is still draining — which is
     the only way a crash that loses the epoch can still find it
     named. An aborted commit retracts the mark (and rewrites the box)
     below. *)
  Recorder.mark_inflight recorder ~gen ~pgid:g.Types.pgid;
  Store.write_blackbox store (Recorder.export_blackbox recorder);
  (* A full or failing device must degrade the checkpoint, not kill
     the machine: abort the open generation (the store rebuilds its
     state from committed generations) and keep serving from the last
     good checkpoint. *)
  let outcome =
    match
      Store.put_record store ~oid:(Oidspace.manifest g.Types.pgid)
        records.Serialize.manifest;
      Store.put_record store ~oid:Oidspace.recorder ring_blob;
      List.iter (fun (oid, record) -> Store.put_record store ~oid record)
        records.Serialize.items;
      List.iter
        (fun (store_oid, items, _) ->
          (* One batched put per object: distinct pages land in a single
             stripe-aware extent, so the device array sees one transfer
             per stripe instead of one command per page. *)
          Store.put_pages store ~oid:store_oid
            (Array.map
               (fun item ->
                 (item.Vmobject.pindex, Content.to_seed item.Vmobject.content))
               items))
        captures;
      if with_fs then
        Aurora_slsfs.Slsfs.checkpoint_fs store k.Kernel.fs
          ~popen_of_vid:(persistent_opens k g);
      Store.commit store ?name ?cls:flush_cls ()
    with
    | gen', durable_at ->
      assert (gen = gen');
      (* The capture committed: log it and refresh the black box (the
         pre-commit copy above already names this epoch; this one also
         carries the post-barrier ship/ack horizon). *)
      Recorder.note_capture recorder ~gen ~pgid:g.Types.pgid
        ~stop_us:(Duration.to_us stop_time);
      Store.write_blackbox store (Recorder.export_blackbox recorder);
      Ok durable_at
    | exception Alloc.Out_of_space ->
      Store.abort_generation store;
      Recorder.unmark recorder ~gen;
      Recorder.log recorder
        ~attrs:[ ("gen", string_of_int gen) ]
        ~kind:"ckpt.degraded" "device out of space";
      (* Retract the tentative mark from the on-device box too, so a
         later crash does not report the aborted epoch as pending. *)
      Store.write_blackbox store (Recorder.export_blackbox recorder);
      Error "device out of space"
    | exception Store.Fail e ->
      (* [Store.commit] already rolled the generation back. *)
      Store.abort_generation store;
      Recorder.unmark recorder ~gen;
      Recorder.log recorder
        ~attrs:[ ("gen", string_of_int gen) ]
        ~kind:"ckpt.degraded" (Store.describe_error e);
      Store.write_blackbox store (Recorder.export_blackbox recorder);
      Error (Store.describe_error e)
  in
  (* The flush has the data now (or never will); release the held
     frames either way. *)
  List.iter
    (fun (_, items, _) ->
      Array.iter (Vmobject.release_flush_item ~pool:k.Kernel.pool) items)
    captures;
  let status, durable_at =
    match outcome with
    | Ok durable_at ->
      g.Types.last_gen <- Some gen;
      (`Ok, durable_at)
    | Error reason -> (`Degraded reason, barrier_at)
  in
  ignore
    (Span.finish spans root
       ~attrs:
         [ ("gen", string_of_int gen);
           ("pages", string_of_int pages_captured);
           ("status",
            match status with `Ok -> "ok" | `Degraded r -> "degraded: " ^ r) ]);
  (* Phase histograms and counters. The flush window (barrier end to
     durability) only exists for committed checkpoints. *)
  Metrics.incr (Metrics.counter metrics "ckpt.count");
  Metrics.add (Metrics.counter metrics "ckpt.pages_captured") pages_captured;
  Metrics.add
    (Metrics.counter metrics "ckpt.cow_breaks")
    (List.fold_left
       (fun acc a -> acc + a.Types.a_cow_breaks)
       0 attrib.Types.at_objects);
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.stop_us") stop_time;
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.quiesce_us") quiesce;
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.serialize_us") metadata_copy;
  Metrics.observe_duration (Metrics.histogram metrics "ckpt.cow_mark_us") lazy_data_copy;
  (* The flush window (barrier end to durability) is observed by
     {!finalize} when the generation's writes land — possibly several
     epochs later under pipelining. *)
  (match status with
   | `Ok -> ()
   | `Degraded _ -> Metrics.incr (Metrics.counter metrics "ckpt.degraded"));
  let breakdown =
    {
      Types.gen;
      mode;
      quiesce;
      metadata_copy;
      lazy_data_copy;
      stop_time;
      pages_captured;
      (* manifest + recorder ring + per-object/process/kobj records *)
      records_written = List.length records.Serialize.items + 2;
      barrier_at;
      durable_at;
      status;
    }
  in
  g.Types.last_breakdown <- Some breakdown;
  if Probe.enabled k.Kernel.probes Probe.Ckpt_phase then begin
    let fire op d =
      Probe.fire k.Kernel.probes Probe.Ckpt_phase ~dev:"" ~op ~gen
        ~pgid:g.Types.pgid ~us:(Duration.to_us d) ~blocks:pages_captured
    in
    fire "quiesce" quiesce;
    fire "serialize" metadata_copy;
    fire "cow_mark" lazy_data_copy;
    fire "stop" stop_time
  end;
  Tracelog.recordf k.Kernel.trace ~subsystem:"ckpt"
    "pgroup %d gen %d %s stop=%.1fus pages=%d%s" g.Types.pgid gen
    (match mode with `Full -> "full" | `Incremental -> "incr")
    (Duration.to_us stop_time) pages_captured
    (match status with `Ok -> "" | `Degraded r -> " degraded: " ^ r);
  breakdown

(* Completion side of the pipeline: runs when the clock has passed the
   generation's durability instant (the machine retires epochs oldest
   first). Charges the small retire cost off the stop path, closes the
   flush span on its own track and lands the flush/lag histograms. *)
let finalize (k : Kernel.t) (g : Types.pgroup) (b : Types.ckpt_breakdown) =
  match b.Types.status with
  | `Degraded _ -> ()
  | `Ok ->
    let metrics = k.Kernel.metrics in
    Kernel.charge k Costmodel.ckpt_retire;
    Recorder.note_retire k.Kernel.recorder ~gen:b.Types.gen;
    let flush_started = Duration.add b.Types.barrier_at b.Types.stop_time in
    (* Background-flush window: end of the stop window to durability. *)
    Metrics.observe_duration
      (Metrics.histogram metrics "ckpt.flush_us")
      (Duration.sub b.Types.durable_at flush_started);
    (* How long the epoch stayed volatile after releasing the app. *)
    Metrics.observe_duration
      (Metrics.histogram metrics "ckpt.durable_lag_us")
      (Duration.sub b.Types.durable_at b.Types.barrier_at);
    Span.record k.Kernel.spans ~track:"ckpt.pipeline" ~name:"ckpt.flush"
      ~attrs:
        [ ("pgid", string_of_int g.Types.pgid);
          ("gen", string_of_int b.Types.gen) ]
      ~start_at:flush_started ~end_at:b.Types.durable_at ();
    if Probe.enabled k.Kernel.probes Probe.Ckpt_phase then
      Probe.fire k.Kernel.probes Probe.Ckpt_phase ~dev:"" ~op:"flush"
        ~gen:b.Types.gen ~pgid:g.Types.pgid
        ~us:(Duration.to_us (Duration.sub b.Types.durable_at flush_started))
        ~blocks:b.Types.pages_captured

let checkpoint (k : Kernel.t) (g : Types.pgroup) ?mode ?name ?with_fs () =
  let b = capture k g ?mode ?name ?with_fs () in
  finalize k g b;
  b
