open Aurora_simtime

type cls = Foreground | Flush | Background | Deadline

type config =
  | Fifo
  | Wdrr of {
      fg_weight : int;
      flush_weight : int;
      bg_weight : int;
      quantum_us : float;
    }

let default_wdrr =
  Wdrr { fg_weight = 1; flush_weight = 16; bg_weight = 4; quantum_us = 400. }

let cls_name = function
  | Foreground -> "fg"
  | Flush -> "flush"
  | Background -> "bg"
  | Deadline -> "deadline"

let cls_index = function
  | Foreground -> 0
  | Flush -> 1
  | Background -> 2
  | Deadline -> 3

let config_name = function Fifo -> "fifo" | Wdrr _ -> "wdrr"

(* A reserved slice of device idle time: pacing inserts it between bulk
   transfers, gap-fill consumes it. Half-open [g_start, g_end). *)
type gap = { g_start : Duration.t; g_end : Duration.t }

(* Plain data only — devices (and their schedulers) are marshalled into
   CLI universe files, so no closures may be reachable from here. *)
type t = {
  cfg : config;
  mutable horizon : Duration.t;   (* bulk queue drains at this time *)
  mutable acc : Duration.t;       (* bulk service since the last reserved gap *)
  mutable gaps : gap list;        (* unconsumed slack, sorted by g_start *)
  st_ops : int array;
  st_blocks : int array;
  st_service_us : float array;
  mutable st_fg_gap_fills : int;
  mutable st_fg_wait_us : float;
  mutable st_gaps_reserved_us : float;
  mutable st_gaps_used_us : float;
  mutable st_gaps_expired_us : float;
}

let create cfg =
  { cfg; horizon = Duration.zero; acc = Duration.zero; gaps = [];
    st_ops = Array.make 4 0; st_blocks = Array.make 4 0;
    st_service_us = Array.make 4 0.;
    st_fg_gap_fills = 0; st_fg_wait_us = 0.;
    st_gaps_reserved_us = 0.; st_gaps_used_us = 0.; st_gaps_expired_us = 0. }

let config t = t.cfg
let horizon t = t.horizon

(* Gaps the clock has passed are gone: the device sat idle through
   them. The list is sorted, so stop at the first live gap (trimming
   its already-elapsed prefix). *)
let prune t ~now =
  let rec go = function
    | [] -> []
    | g :: rest ->
      if Duration.(g.g_end <= now) then begin
        t.st_gaps_expired_us <-
          t.st_gaps_expired_us +. Duration.to_us (Duration.sub g.g_end g.g_start);
        go rest
      end
      else if Duration.(g.g_start < now) then begin
        t.st_gaps_expired_us <-
          t.st_gaps_expired_us +. Duration.to_us (Duration.sub now g.g_start);
        { g with g_start = now } :: rest
      end
      else g :: rest
  in
  t.gaps <- go t.gaps

(* Serve a foreground/deadline op from the earliest reserved gap that
   fits it whole; leftover slack on either side stays reserved. *)
let try_fill t ~arrival ~cost =
  let rec go seen = function
    | [] -> None
    | g :: rest ->
      let s = Duration.max g.g_start arrival in
      let e = Duration.add s cost in
      if Duration.(e <= g.g_end) then begin
        let keep =
          (if Duration.(g.g_start < s) then [ { g with g_end = s } ] else [])
          @ (if Duration.(e < g.g_end) then [ { g with g_start = e } ] else [])
        in
        t.gaps <- List.rev_append seen (keep @ rest);
        t.st_fg_gap_fills <- t.st_fg_gap_fills + 1;
        t.st_gaps_used_us <- t.st_gaps_used_us +. Duration.to_us cost;
        Some s
      end
      else go (g :: seen) rest
  in
  go [] t.gaps

(* Walk a bulk transfer across the pacing quanta: every [quantum] of
   bulk service, reserve a gap of [quantum * fg_weight / weight] and
   skip the timeline past it. Gaps are created in increasing order, so
   tail-append keeps the list sorted. *)
let paced t ~arrival ~fg_weight ~weight ~quantum ~cost =
  let start = Duration.max arrival t.horizon in
  let gap_len = Duration.div (Duration.scale quantum fg_weight) weight in
  let pos = ref start and remaining = ref cost in
  while Duration.(!remaining > zero) do
    let room = Duration.sub quantum t.acc in
    let chunk = Duration.min !remaining room in
    pos := Duration.add !pos chunk;
    t.acc <- Duration.add t.acc chunk;
    remaining := Duration.sub !remaining chunk;
    if Duration.(t.acc >= quantum) then begin
      t.gaps <- t.gaps @ [ { g_start = !pos; g_end = Duration.add !pos gap_len } ];
      t.st_gaps_reserved_us <- t.st_gaps_reserved_us +. Duration.to_us gap_len;
      pos := Duration.add !pos gap_len;
      t.acc <- Duration.zero
    end
  done;
  t.horizon <- !pos;
  (start, !pos)

let account t ~cls ~cost ~blocks =
  let i = cls_index cls in
  t.st_ops.(i) <- t.st_ops.(i) + 1;
  t.st_blocks.(i) <- t.st_blocks.(i) + blocks;
  t.st_service_us.(i) <- t.st_service_us.(i) +. Duration.to_us cost

let note_unscheduled t ~cls ~cost ~blocks = account t ~cls ~cost ~blocks

let schedule ?(not_before = Duration.zero) t ~now ~cls ~cost ~blocks =
  account t ~cls ~cost ~blocks;
  let arrival = Duration.max now not_before in
  match t.cfg with
  | Fifo ->
    (* Bit-identical to the historical single busy_until queue. *)
    let start = Duration.max arrival t.horizon in
    let completion = Duration.add start cost in
    t.horizon <- completion;
    (start, completion)
  | Wdrr { fg_weight; flush_weight; bg_weight; quantum_us } ->
    prune t ~now;
    let quantum = Duration.of_us_float quantum_us in
    (match cls with
     | Foreground | Deadline ->
       let start =
         match try_fill t ~arrival ~cost with
         | Some s -> s
         | None ->
           let s = Duration.max arrival t.horizon in
           t.horizon <- Duration.add s cost;
           s
       in
       t.st_fg_wait_us <-
         t.st_fg_wait_us +. Duration.to_us (Duration.sub start arrival);
       (start, Duration.add start cost)
     | Flush -> paced t ~arrival ~fg_weight ~weight:flush_weight ~quantum ~cost
     | Background -> paced t ~arrival ~fg_weight ~weight:bg_weight ~quantum ~cost)

let extend t dur = t.horizon <- Duration.add t.horizon dur

let reset_to t now =
  List.iter
    (fun g ->
      t.st_gaps_expired_us <-
        t.st_gaps_expired_us +. Duration.to_us (Duration.sub g.g_end g.g_start))
    t.gaps;
  t.gaps <- [];
  t.acc <- Duration.zero;
  t.horizon <- now

type stats = {
  s_ops : int array;
  s_blocks : int array;
  s_service_us : float array;
  s_fg_gap_fills : int;
  s_fg_wait_us : float;
  s_gaps_reserved_us : float;
  s_gaps_used_us : float;
  s_gaps_expired_us : float;
}

let stats t =
  { s_ops = Array.copy t.st_ops; s_blocks = Array.copy t.st_blocks;
    s_service_us = Array.copy t.st_service_us;
    s_fg_gap_fills = t.st_fg_gap_fills; s_fg_wait_us = t.st_fg_wait_us;
    s_gaps_reserved_us = t.st_gaps_reserved_us;
    s_gaps_used_us = t.st_gaps_used_us;
    s_gaps_expired_us = t.st_gaps_expired_us }

let zero_stats =
  { s_ops = Array.make 4 0; s_blocks = Array.make 4 0;
    s_service_us = Array.make 4 0.;
    s_fg_gap_fills = 0; s_fg_wait_us = 0.;
    s_gaps_reserved_us = 0.; s_gaps_used_us = 0.; s_gaps_expired_us = 0. }

let add_stats a b =
  { s_ops = Array.init 4 (fun i -> a.s_ops.(i) + b.s_ops.(i));
    s_blocks = Array.init 4 (fun i -> a.s_blocks.(i) + b.s_blocks.(i));
    s_service_us = Array.init 4 (fun i -> a.s_service_us.(i) +. b.s_service_us.(i));
    s_fg_gap_fills = a.s_fg_gap_fills + b.s_fg_gap_fills;
    s_fg_wait_us = a.s_fg_wait_us +. b.s_fg_wait_us;
    s_gaps_reserved_us = a.s_gaps_reserved_us +. b.s_gaps_reserved_us;
    s_gaps_used_us = a.s_gaps_used_us +. b.s_gaps_used_us;
    s_gaps_expired_us = a.s_gaps_expired_us +. b.s_gaps_expired_us }
