open Aurora_simtime

type t = {
  name : string;
  read_latency : Duration.t;
  write_latency : Duration.t;
  read_bw : float;
  write_bw : float;
  flush_latency : Duration.t;
  volatile_cache : bool;
  stripes : int;
}

let striped t n =
  if n < 1 then invalid_arg "Profile.striped: stripe count must be >= 1";
  { t with stripes = n }

let gib = 1024. *. 1024. *. 1024.

(* Intel Optane SSD 900P datasheet: 10 us typical latency, 2.5 GB/s
   sequential read, 2.0 GB/s sequential write; 3D XPoint media with
   power-loss-protected write path. *)
let optane_900p = {
  name = "optane-900p";
  read_latency = Duration.microseconds 10;
  write_latency = Duration.microseconds 10;
  read_bw = 2.5 *. gib;
  write_bw = 2.0 *. gib;
  flush_latency = Duration.microseconds 2;
  volatile_cache = false;
  stripes = 1;
}

let nand_ssd = {
  name = "nand-ssd";
  read_latency = Duration.microseconds 80;
  write_latency = Duration.microseconds 20;
  read_bw = 3.0 *. gib;
  write_bw = 1.5 *. gib;
  flush_latency = Duration.microseconds 500;
  volatile_cache = true;
  stripes = 1;
}

let nvdimm = {
  name = "nvdimm";
  read_latency = Duration.nanoseconds 300;
  write_latency = Duration.nanoseconds 100;
  read_bw = 6.0 *. gib;
  write_bw = 2.0 *. gib;
  flush_latency = Duration.nanoseconds 500;
  volatile_cache = false;
  stripes = 1;
}

let dram = {
  name = "dram";
  read_latency = Duration.nanoseconds 90;
  write_latency = Duration.nanoseconds 90;
  read_bw = 20.0 *. gib;
  write_bw = 20.0 *. gib;
  flush_latency = Duration.zero;
  volatile_cache = true; (* DRAM contents never survive a crash *)
  stripes = 1;
}

let spinning_disk = {
  name = "spinning-disk";
  read_latency = Duration.milliseconds 8;
  write_latency = Duration.milliseconds 8;
  read_bw = 150. *. 1024. *. 1024.;
  write_bw = 120. *. 1024. *. 1024.;
  flush_latency = Duration.milliseconds 10;
  volatile_cache = true;
  stripes = 1;
}

let net_10gbe = {
  name = "net-10gbe";
  read_latency = Duration.microseconds 15;
  write_latency = Duration.microseconds 15;
  read_bw = 1.25 *. gib;
  write_bw = 1.25 *. gib;
  flush_latency = Duration.zero;
  volatile_cache = true;
  stripes = 1;
}

let transfer_cost t ~op ~bytes =
  if bytes < 0 then invalid_arg "Profile.transfer_cost: negative size";
  let latency, bw =
    match op with
    | `Read -> (t.read_latency, t.read_bw)
    | `Write -> (t.write_latency, t.write_bw)
  in
  Duration.add latency (Duration.of_sec_float (float_of_int bytes /. bw))

let pp ppf t =
  Format.fprintf ppf "%s(rlat=%a wlat=%a rbw=%.1fGB/s wbw=%.1fGB/s)"
    t.name Duration.pp t.read_latency Duration.pp t.write_latency
    (t.read_bw /. gib) (t.write_bw /. gib)
