(** A striped array of independent block devices.

    The paper's testbed stripes checkpoint I/O across four Intel
    Optane 900P drives; sub-millisecond stop times rely on the
    background flush draining all of them in parallel. This layer
    models that: N {!Blockdev.t} queues behind one logical block
    address space, round-robin striped —

    {v logical b  ->  device (b mod n), physical (b / n) v}

    so a contiguous logical extent fans out across every device while
    each device receives a contiguous physical run. Every submission
    is partitioned per device, contiguous physical blocks are
    coalesced into extents (one transfer charge per extent per
    device), and the array's completion time is the {e max} over the
    devices touched — parallel submissions genuinely overlap in
    simulated time, so an N-stripe flush of K blocks finishes in ~1/N
    the single-device time.

    With [stripes = 1] the mapping is the identity and the array
    behaves exactly like the single device it wraps. *)

open Aurora_simtime

type t

val create : ?sched:Iosched.config -> ?stripes:int -> ?capacity_blocks:int ->
  ?faults:Fault.plan ->
  ?metrics:Metrics.t -> ?spans:Span.t -> ?probes:Probe.t ->
  clock:Clock.t -> profile:Profile.t -> string -> t
(** [create ~clock ~profile name] builds devices [name.0] ..
    [name.n-1]. [sched] selects each device's I/O scheduler
    ({!Iosched.Fifo} by default). [stripes] defaults to the profile's
    stripe count; [capacity_blocks] is the {e logical} capacity, split
    evenly. [faults] attaches a deterministic media-fault plan: each
    device gets its own seeded {!Fault.injector}; the plan's logical
    latent blocks and dropped stripe indices are resolved through the
    stripe map. Raises [Invalid_argument] when [stripes < 1]. *)

val set_observability :
  t -> ?metrics:Metrics.t -> ?spans:Span.t -> ?probes:Probe.t -> unit -> unit
(** Rebind (or detach) instrumentation on every stripe — see
    {!Blockdev.set_observability}. *)

val stripes : t -> int
val devices : t -> Blockdev.t array
val name : t -> string
val profile : t -> Profile.t
val clock : t -> Clock.t

val capacity_blocks : t -> int option
(** Logical capacity of the whole array ([None] = unbounded). The
    store bounds its allocator with this so exhaustion surfaces as a
    typed out-of-space, not a device-level write failure. *)

val locate : t -> int -> int * int
(** [locate t b] is [(device index, physical block)] for logical block
    [b]. Total on non-negative blocks; with {!logical} it forms a
    bijection. *)

val logical : t -> dev:int -> phys:int -> int
(** Inverse of {!locate}. *)

(* --- synchronous I/O ------------------------------------------------ *)

val read : ?cls:Iosched.cls -> t -> int -> Blockdev.content
val peek : t -> int -> Blockdev.content

val read_many : ?cls:Iosched.cls -> t -> int list -> Blockdev.content list
(** One command per device touched, issued at the same simulated
    instant; the clock advances to the slowest device's completion.
    Results are in request order. [cls] defaults to [Foreground]. *)

val read_many_arr : ?cls:Iosched.cls -> t -> int array -> Blockdev.content array
(** Array variant of {!read_many} for preallocated hot paths: same
    batching and timing, results in request order, no list churn. *)

val write : ?cls:Iosched.cls -> t -> int -> Blockdev.content -> unit
val write_many : ?cls:Iosched.cls -> t -> (int * Blockdev.content) list -> unit
(** Striped synchronous write: submits per-device extents in parallel
    and blocks until the slowest device completes. *)

(* --- asynchronous I/O and the commit barrier ------------------------ *)

val write_async :
  ?not_before:Duration.t -> ?cls:Iosched.cls -> t ->
  (int * Blockdev.content) list -> Duration.t
(** Partition the writes per device, coalesce contiguous physical
    blocks into extents, queue one submission per device, and return
    the {e max} completion time. Does not advance the clock. [cls]
    defaults to [Flush]. *)

val write_oob : t -> (int * Blockdev.content) list -> Duration.t
(** Out-of-band control write: dedicated per-device submission queues
    charged from now rather than behind queued transfers, so the write
    can become durable while earlier data submissions still drain.
    Used for the store's black-box slot; see {!Blockdev.write_oob}. *)

val write_barrier : ?cls:Iosched.cls -> t -> (int * Blockdev.content) list -> Duration.t
(** The commit barrier: the writes start only after {e every} device
    queue (as of submission) has drained — a superblock ordered after
    in-flight data on all stripes. Returns the completion time. *)

val busy_until : t -> Duration.t
(** Max over the devices: when the whole array is idle. *)

(* --- completion groups ----------------------------------------------- *)

type group
(** Per-stripe completion horizon for one commit epoch's writes. While
    a group is open, every async submission's per-device completion is
    recorded into it; awaiting the group then covers exactly that
    epoch's I/O — not unrelated app traffic or younger epochs that
    happen to share the queues. Plain data (no closures): arrays are
    marshalled into CLI universe files. *)

val begin_group : t -> group
(** Open a group and make it current. Submissions from now until
    {!end_group} are attributed to it. *)

val end_group : t -> group
(** Close the current group and return it. Raises [Invalid_argument]
    when no group is open. *)

val discard_group : t -> unit
(** Drop any open group without returning it (error-path cleanup). *)

val group_completion : group -> Duration.t
(** Max completion over the group's stripes — when all of the epoch's
    writes are durable. [Duration.zero] for an empty group. *)

val await_group : t -> group -> unit
(** Advance the clock to {!group_completion} and settle the devices. *)

val group_extents : group -> int
val group_blocks : group -> int
(** Transfer and block counts attributed to the group. *)

val await : t -> Duration.t -> unit
val flush : t -> unit
val crash : t -> unit

(* --- stats ---------------------------------------------------------- *)

val stats : t -> Blockdev.stats
(** Aggregate: field-wise sum of {!device_stats}. *)

val device_stats : t -> Blockdev.stats array

(** Per-class scheduler accounting summed over the stripes. *)
val sched_stats : t -> Iosched.stats

val reset_stats : t -> unit
val used_blocks : t -> int

(* --- fault injection ------------------------------------------------- *)

val has_faults : t -> bool
(** Whether any device carries a fault injector. The store uses this
    to turn on its integrity machinery by default. *)

val inject_latent : t -> int -> unit
(** Mark a {e logical} block as a latent sector error: every read of
    it fails until something rewrites the block. Creates a zero-rate
    injector on the owning device if none is attached. *)

val drop_device : t -> int -> unit
(** Fail device [d] outright: every subsequent command addressed to
    it raises. Raises [Invalid_argument] on a bad index. *)

val fault_stats : t -> Fault.stats
(** Aggregate injected-fault counters over all devices. *)
