(** Simulated full-duplex network link between two hosts.

    Both ends share one simulated clock (the simulation models a single
    universe). Each direction serializes transmissions through its own
    bandwidth queue; a message arrives one wire latency after its last
    byte is on the wire. Payloads are opaque strings — the SLS
    send/recv machinery ships serialized checkpoint records over
    this.

    A seeded {!fault_plan} (in the style of {!Fault}) makes the link
    lossy: per-direction drop / duplicate / reorder probabilities,
    payload bit-flip corruption, and timed partition windows during
    which nothing crosses the wire. Each direction draws from its own
    deterministic SplitMix64 stream derived from the plan's root seed,
    so runs are reproducible bit-for-bit. *)

open Aurora_simtime

type t
type side = [ `A | `B ]

(* --- fault plans ----------------------------------------------------- *)

type fault_plan = {
  seed : int64;
  drop_rate : float;        (** P(message silently lost), per message *)
  duplicate_rate : float;   (** P(message delivered twice) *)
  reorder_rate : float;     (** P(message held back past younger sends) *)
  corrupt_rate : float;     (** P(one payload bit flipped in flight) *)
  partitions : (Duration.t * Duration.t) list;
      (** Absolute sim-time windows [start, stop) during which every
          send is lost (both directions). *)
}

val fault_plan :
  ?seed:int64 -> ?drop:float -> ?duplicate:float -> ?reorder:float ->
  ?corrupt:float -> ?partitions:(Duration.t * Duration.t) list -> unit ->
  fault_plan
(** All rates default to zero. Raises [Invalid_argument] on a rate
    outside [0,1] or a partition window that ends before it starts. *)

val no_faults : fault_plan
val plan_is_none : fault_plan -> bool

(* --- per-direction accounting ---------------------------------------- *)

type dir_stats = {
  msgs_sent : int;          (** messages offered to this direction *)
  bytes_sent : int;
  msgs_delivered : int;     (** messages handed to the receiver *)
  bytes_delivered : int;
  dropped : int;            (** lost to the drop rate *)
  duplicated : int;
  reordered : int;
  corrupted : int;
  partition_drops : int;    (** lost to a partition window *)
}

val zero_stats : dir_stats

(* --- the link --------------------------------------------------------- *)

val create :
  clock:Clock.t -> profile:Profile.t -> ?faults:fault_plan -> unit -> t
(** The profile's [write_latency] is the one-way wire latency and
    [write_bw] the link bandwidth. [faults] defaults to
    {!no_faults}. *)

val send : t -> from_:side -> string -> Duration.t
(** Queue a message from one side; returns its absolute arrival time at
    the peer (what it would have been, for a message the fault plan
    lost). Does not advance the clock (transmission is
    asynchronous). *)

val recv : t -> side:side -> string option
(** Next message addressed to [side] that has already arrived, if
    any. *)

val recv_blocking : t -> side:side -> string option
(** Like {!recv}, but if a message is still in flight, advances the
    clock to its arrival. [None] only when nothing is queued at all. *)

val next_arrival : t -> side:side -> Duration.t option
(** Arrival time of the earliest in-flight message addressed to
    [side], if any — the event horizon a protocol pump sleeps to. *)

val pending : t -> side:side -> int
(** Messages queued for [side], whether or not they have arrived. *)

val in_partition : t -> Duration.t -> bool
(** Whether the given instant falls inside a partition window. *)

val faults : t -> fault_plan

val stats : t -> from_:side -> dir_stats
(** Counters for the direction that carries messages sent from
    [from_]. *)

val bytes_sent : t -> int
(** Total payload bytes ever queued, both directions. *)
