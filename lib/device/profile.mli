(** Storage and interconnect device profiles.

    A profile captures the first-order performance model of a device:
    fixed per-command latency, streaming bandwidth, and cache
    volatility. Transfer cost is [latency + bytes/bandwidth], the
    standard linear model; it is deliberately simple but calibrated
    from public datasheets so that the paper's quantitative argument
    (flash now rivals the memory bus) is reproduced by accounting
    rather than assumption. *)

open Aurora_simtime

type t = {
  name : string;
  read_latency : Duration.t;   (** fixed cost per read command *)
  write_latency : Duration.t;  (** fixed cost per write command *)
  read_bw : float;             (** bytes per second, streaming reads *)
  write_bw : float;            (** bytes per second, streaming writes *)
  flush_latency : Duration.t;  (** cost of a cache-flush barrier *)
  volatile_cache : bool;       (** completed writes lost on crash until flushed *)
  stripes : int;               (** independent drives a {!Devarray} built on this
                                   profile stripes across (the paper's testbed
                                   uses four Optane 900Ps); 1 = a single device *)
}

val striped : t -> int -> t
(** [striped p n] is [p] with its default stripe count set to [n].
    Raises [Invalid_argument] when [n < 1]. *)

val optane_900p : t
(** Intel Optane 900P (the paper's testbed): ~10 us latency,
    2.5/2.0 GB/s read/write, power-loss-protected cache. *)

val nand_ssd : t
(** Commodity NAND flash NVMe: ~80 us read latency, volatile cache. *)

val nvdimm : t
(** Byte-addressable persistent memory on the DIMM bus. *)

val dram : t
(** Main memory treated as an (ephemeral) backing device — the
    "memory backend" used for debugging and speculation checkpoints. *)

val spinning_disk : t
(** A 7200 rpm spinning disk: the hardware era that made earlier
    single-level stores (EROS, KeyKOS) impractical; used by the
    historical-ablation bench. *)

val net_10gbe : t
(** 10 GbE NIC link: the paper's remote-persistence backend. The
    [read_latency]/[write_latency] fields model one-way wire latency. *)

val transfer_cost : t -> op:[ `Read | `Write ] -> bytes:int -> Duration.t
(** Cost of one command moving [bytes] payload. Raises
    [Invalid_argument] on negative sizes. *)

val pp : Format.formatter -> t -> unit
