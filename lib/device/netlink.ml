open Aurora_simtime

type side = [ `A | `B ]

(* --- fault plans ------------------------------------------------------ *)

(* Seeded network-fault plans in the style of {!Fault}: rates are per
   message, drawn from a per-direction SplitMix64 stream derived from
   the plan's root seed, so the fault sequence each direction sees does
   not depend on the other direction's traffic. *)

type fault_plan = {
  seed : int64;
  drop_rate : float;
  duplicate_rate : float;
  reorder_rate : float;
  corrupt_rate : float;
  partitions : (Duration.t * Duration.t) list;
}

let no_faults =
  { seed = 1L; drop_rate = 0.; duplicate_rate = 0.; reorder_rate = 0.;
    corrupt_rate = 0.; partitions = [] }

let check_rate name r =
  if not (Float.is_finite r) || r < 0. || r > 1. then
    invalid_arg (Printf.sprintf "Netlink.fault_plan: %s rate %g not in [0,1]" name r)

let fault_plan ?(seed = 42L) ?(drop = 0.) ?(duplicate = 0.) ?(reorder = 0.)
    ?(corrupt = 0.) ?(partitions = []) () =
  check_rate "drop" drop;
  check_rate "duplicate" duplicate;
  check_rate "reorder" reorder;
  check_rate "corrupt" corrupt;
  List.iter
    (fun (s, e) ->
      if Duration.(e < s) then
        invalid_arg "Netlink.fault_plan: partition window ends before it starts")
    partitions;
  { seed; drop_rate = drop; duplicate_rate = duplicate; reorder_rate = reorder;
    corrupt_rate = corrupt; partitions }

let plan_is_none p =
  p.drop_rate = 0. && p.duplicate_rate = 0. && p.reorder_rate = 0.
  && p.corrupt_rate = 0. && p.partitions = []

(* --- per-direction state ---------------------------------------------- *)

type dir_stats = {
  msgs_sent : int;
  bytes_sent : int;
  msgs_delivered : int;
  bytes_delivered : int;
  dropped : int;
  duplicated : int;
  reordered : int;
  corrupted : int;
  partition_drops : int;
}

let zero_stats =
  { msgs_sent = 0; bytes_sent = 0; msgs_delivered = 0; bytes_delivered = 0;
    dropped = 0; duplicated = 0; reordered = 0; corrupted = 0;
    partition_drops = 0 }

type direction = {
  mutable busy_until : Duration.t;
  (* In-flight messages ordered by arrival time (reordering faults can
     make a later send overtake an earlier one, so this is a sorted
     list, not a FIFO). *)
  mutable inbox : (Duration.t * string) list;
  prng : Prng.t;
  mutable st : dir_stats;
}

type t = {
  clock : Clock.t;
  profile : Profile.t;
  faults : fault_plan;
  a_to_b : direction;
  b_to_a : direction;
  mutable bytes_sent : int;
}

let create ~clock ~profile ?(faults = no_faults) () =
  let dir i =
    (* Independent deterministic stream per direction, same derivation
       as {!Fault.injector}'s per-device streams. *)
    let seed =
      Int64.logxor faults.seed
        (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)
    in
    { busy_until = Duration.zero; inbox = []; prng = Prng.create ~seed;
      st = zero_stats }
  in
  { clock; profile; faults; a_to_b = dir 0; b_to_a = dir 1; bytes_sent = 0 }

let faults t = t.faults

let direction_to t (side : side) =
  match side with `A -> t.b_to_a | `B -> t.a_to_b

let direction_from t (side : side) =
  match side with `A -> t.a_to_b | `B -> t.b_to_a

let in_partition t at =
  List.exists
    (fun (s, e) -> Duration.(s <= at) && Duration.(at < e))
    t.faults.partitions

(* Stable insert: equal arrival times keep send order. *)
let insert dir arrival payload =
  let rec go = function
    | [] -> [ (arrival, payload) ]
    | ((a, _) as hd) :: tl when Duration.(a <= arrival) -> hd :: go tl
    | rest -> (arrival, payload) :: rest
  in
  dir.inbox <- go dir.inbox

let draw prng rate = rate > 0. && Prng.float prng 1.0 < rate

let flip_bit prng payload =
  if String.length payload = 0 then payload
  else begin
    let b = Bytes.of_string payload in
    let i = Prng.int prng (Bytes.length b) in
    let bit = Prng.int prng 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    Bytes.unsafe_to_string b
  end

let send t ~from_ payload =
  let dir = direction_from t from_ in
  let bytes = String.length payload in
  let now = Clock.now t.clock in
  dir.st <-
    { dir.st with msgs_sent = dir.st.msgs_sent + 1;
      bytes_sent = dir.st.bytes_sent + bytes };
  t.bytes_sent <- t.bytes_sent + bytes;
  let wire_time =
    Duration.of_sec_float (float_of_int bytes /. t.profile.Profile.write_bw)
  in
  let start = Duration.max now dir.busy_until in
  let last_byte = Duration.add start wire_time in
  dir.busy_until <- last_byte;
  let arrival = Duration.add last_byte t.profile.Profile.write_latency in
  let p = t.faults in
  if in_partition t now then
    (* The wire is cut: the transmission happens (the sender charged
       the bandwidth) but nothing reaches the peer. *)
    dir.st <- { dir.st with partition_drops = dir.st.partition_drops + 1 }
  else if draw dir.prng p.drop_rate then
    dir.st <- { dir.st with dropped = dir.st.dropped + 1 }
  else begin
    let payload =
      if draw dir.prng p.corrupt_rate then begin
        dir.st <- { dir.st with corrupted = dir.st.corrupted + 1 };
        flip_bit dir.prng payload
      end
      else payload
    in
    let arrival =
      if draw dir.prng p.reorder_rate then begin
        dir.st <- { dir.st with reordered = dir.st.reordered + 1 };
        (* Delay past the next few transmissions so a younger message
           can overtake this one. *)
        let hold =
          Duration.scale_float
            (Duration.add wire_time t.profile.Profile.write_latency)
            (1.0 +. Prng.float dir.prng 3.0)
        in
        Duration.add arrival hold
      end
      else arrival
    in
    insert dir arrival payload;
    if draw dir.prng p.duplicate_rate then begin
      dir.st <- { dir.st with duplicated = dir.st.duplicated + 1 };
      insert dir (Duration.add arrival t.profile.Profile.write_latency) payload
    end
  end;
  arrival

let recv t ~side =
  let dir = direction_to t side in
  match dir.inbox with
  | (arrival, payload) :: rest when Duration.(arrival <= Clock.now t.clock) ->
    dir.inbox <- rest;
    dir.st <-
      { dir.st with msgs_delivered = dir.st.msgs_delivered + 1;
        bytes_delivered = dir.st.bytes_delivered + String.length payload };
    Some payload
  | _ -> None

let recv_blocking t ~side =
  let dir = direction_to t side in
  match dir.inbox with
  | [] -> None
  | (arrival, payload) :: rest ->
    dir.inbox <- rest;
    Clock.advance_to t.clock arrival;
    dir.st <-
      { dir.st with msgs_delivered = dir.st.msgs_delivered + 1;
        bytes_delivered = dir.st.bytes_delivered + String.length payload };
    Some payload

let next_arrival t ~side =
  match (direction_to t side).inbox with
  | (arrival, _) :: _ -> Some arrival
  | [] -> None

let pending t ~side = List.length (direction_to t side).inbox
let stats t ~from_ = (direction_from t from_).st
let bytes_sent t = t.bytes_sent
