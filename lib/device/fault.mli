(** Seeded, deterministic media-fault injection.

    Real persistent stores are engineered against more than clean power
    loss: drives return transient I/O errors, develop latent sector
    errors that persist until the sector is rewritten, silently corrupt
    bits, and occasionally fail outright. A {!plan} describes which of
    these a simulated device array should exhibit; every draw comes
    from a SplitMix64 stream derived from the plan's seed, so a fault
    schedule is reproducible bit-for-bit — the property the fuzz tests
    and the fault-sweep bench rely on.

    Semantics implemented by {!Blockdev}:
    - {e transient} errors fail a single command probabilistically;
      the same sector succeeds on retry. The device controller retries
      writes internally with exponential backoff (charged as extra
      queue time); reads surface the error for the store's retry
      policy.
    - {e latent sector} errors fail every read of the sector until it
      is rewritten (writes remap the sector and clear the error) —
      read-repair by rewriting is exactly what heals them.
    - {e corruption} silently flips a bit in the written payload; only
      an end-to-end checksum can catch it.
    - a {e dropped} device fails every command addressed to it. *)

(** What a device array should suffer. Rates are per-block
    probabilities in [0,1]; [latent_blocks] are {e logical} (array)
    block numbers seeded as latent sector errors; [dropped_stripes]
    are device indices that fail outright. *)
type plan = private {
  seed : int64;
  transient_read_rate : float;
  transient_write_rate : float;
  corruption_rate : float;
  latent_blocks : int list;
  dropped_stripes : int list;
}

val plan :
  ?seed:int64 ->
  ?transient_read:float ->
  ?transient_write:float ->
  ?corruption:float ->
  ?latent_blocks:int list ->
  ?dropped_stripes:int list ->
  unit ->
  plan
(** All rates default to 0. Raises [Invalid_argument] on a rate
    outside [0,1] or a negative latent block. *)

val none : plan
val is_none : plan -> bool

(* --- errors ---------------------------------------------------------- *)

type error =
  | Transient of { dev : string; op : [ `Read | `Write ]; phys : int }
  | Latent of { dev : string; phys : int }
  | Dropped of { dev : string }

exception Io_error of error
(** Raised by device commands that fail under the plan. [phys] is the
    {e physical} (per-device) block number; [dev] names the device. *)

val describe : error -> string
val pp_error : Format.formatter -> error -> unit

(* --- per-device injectors -------------------------------------------- *)

(** Injected-fault counters (monotone; snapshot semantics). *)
type stats = {
  transient_reads : int;   (** injected transient read errors *)
  transient_writes : int;  (** injected transient write errors (each retried) *)
  latent_reads : int;      (** reads that hit a latent sector *)
  corruptions : int;       (** blocks silently corrupted on write *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

type injector
(** One device's live fault state: its PRNG stream, latent-sector set,
    dropped flag and counters. Attached to a {!Blockdev.t}. *)

val injector : ?dev_index:int -> plan -> injector
(** [dev_index] (default 0) derives an independent stream per array
    device from the plan's root seed. The plan's [latent_blocks] /
    [dropped_stripes] are {e not} applied here — they are logical and
    the array applies them through its stripe map. *)

val stats : injector -> stats

val draw_transient_read : injector -> bool
val draw_transient_write : injector -> bool
val draw_corruption : injector -> bool
(** Draw from the stream; [true] means inject (and count) a fault. *)

val is_dropped : injector -> bool
val set_dropped : injector -> bool -> unit

val is_latent : injector -> int -> bool
val note_latent : injector -> unit
(** Count a read that hit a latent sector. *)

val add_latent : injector -> int -> unit
(** Mark a physical block as a latent sector error. *)

val clear_latent : injector -> int -> unit
(** A write remaps the sector: the latent error disappears. *)

val latent_count : injector -> int

val pick : injector -> int -> int
(** Uniform draw in [0, bound) from the injector's stream (which bit
    to flip when corrupting). *)
