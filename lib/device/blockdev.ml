open Aurora_simtime

let block_size = 4096

type content =
  | Data of string
  | Seed of int64
  | Zero

type slot = { mutable current : content; mutable durable : content }

type stats = {
  reads : int;
  writes : int;
  blocks_read : int;
  blocks_written : int;
  flushes : int;
}

(* An async submission in flight: the writes become durable (on
   power-loss-protected caches) once the simulated clock passes
   [done_at]; a crash before that drops them. *)
type batch = { done_at : Duration.t; writes : (int * content) list }

(* Metric handles for one device. Plain data only (mutable ints and
   arrays): the CLI marshals whole device arrays into the universe
   file, so nothing reachable from a device may hold a closure. *)
type counters = {
  c_commands : Metrics.counter;
  c_blocks_read : Metrics.counter;
  c_blocks_written : Metrics.counter;
  c_xfer_us : Metrics.histogram;
}

type t = {
  name : string;
  clock : Clock.t;
  profile : Profile.t;
  capacity_blocks : int option;
  slots : (int, slot) Hashtbl.t;
  sched : Iosched.t;                   (* queue state; horizon = busy_until *)
  mutable pending : batch list;        (* in-flight batches, newest first *)
  mutable st : stats;
  mutable faults : Fault.injector option;
  mutable obs_counters : counters option;
  mutable obs_spans : Span.t option;
  mutable obs_probes : Probe.t option;
}

let zero_stats = { reads = 0; writes = 0; blocks_read = 0; blocks_written = 0; flushes = 0 }

let make_counters name m =
  let pre = "dev." ^ name ^ "." in
  { c_commands = Metrics.counter m (pre ^ "commands");
    c_blocks_read = Metrics.counter m (pre ^ "blocks_read");
    c_blocks_written = Metrics.counter m (pre ^ "blocks_written");
    c_xfer_us = Metrics.histogram m (pre ^ "xfer_us") }

let create ?(sched = Iosched.Fifo) ?capacity_blocks ?faults ?metrics ?spans ?probes
    ~clock ~profile name =
  { name; clock; profile; capacity_blocks; slots = Hashtbl.create 4096;
    sched = Iosched.create sched; pending = []; st = zero_stats; faults;
    obs_counters = Option.map (make_counters name) metrics;
    obs_spans = spans; obs_probes = probes }

let set_observability t ?metrics ?spans ?probes () =
  t.obs_counters <- Option.map (make_counters t.name) metrics;
  t.obs_spans <- spans;
  t.obs_probes <- probes

let name t = t.name
let profile t = t.profile
let clock t = t.clock
let capacity_blocks t = t.capacity_blocks
let busy_until t = Iosched.horizon t.sched
let sched_stats t = Iosched.stats t.sched
let faults t = t.faults
let set_faults t inj = t.faults <- inj

let check_index t i =
  if i < 0 then invalid_arg "Blockdev: negative block index";
  match t.capacity_blocks with
  | Some cap when i >= cap ->
    invalid_arg (Printf.sprintf "Blockdev %s: block %d beyond capacity %d" t.name i cap)
  | _ -> ()

let slot t i =
  check_index t i;
  match Hashtbl.find_opt t.slots i with
  | Some s -> s
  | None ->
    let s = { current = Zero; durable = Zero } in
    Hashtbl.replace t.slots i s;
    s

(* Charge a synchronous command: the device may still be draining its
   queue, so completion is max(now, busy_until) + cost. *)
let note_command t ~op ~blocks cost =
  match t.obs_counters with
  | None -> ()
  | Some c ->
    Metrics.incr c.c_commands;
    Metrics.observe_duration c.c_xfer_us cost;
    (match op with
     | `Read -> Metrics.add c.c_blocks_read blocks
     | `Write -> Metrics.add c.c_blocks_written blocks)

let charge_sync t ~cls ~op ~blocks =
  let cost = Profile.transfer_cost t.profile ~op ~bytes:(blocks * block_size) in
  let _start, completion =
    Iosched.schedule t.sched ~now:(Clock.now t.clock) ~cls ~cost ~blocks
  in
  note_command t ~op ~blocks cost;
  if Probe.on t.obs_probes Probe.Dev_io then
    Probe.fire (Option.get t.obs_probes) Probe.Dev_io ~dev:t.name
      ~op:(match op with `Read -> "read" | `Write -> "write")
      ~cls:(Iosched.cls_name cls)
      ~gen:(-1) ~pgid:(-1) ~us:(Duration.to_us cost) ~blocks;
  Clock.advance_to t.clock completion

(* The command's time is charged before the fault surfaces: a failed
   read costs as much as a successful one. *)
let inject_read_fault t i =
  match t.faults with
  | None -> ()
  | Some inj ->
    if Fault.is_dropped inj then raise (Fault.Io_error (Fault.Dropped { dev = t.name }));
    if Fault.draw_transient_read inj then
      raise (Fault.Io_error (Fault.Transient { dev = t.name; op = `Read; phys = i }));
    if Fault.is_latent inj i then begin
      Fault.note_latent inj;
      raise (Fault.Io_error (Fault.Latent { dev = t.name; phys = i }))
    end

let read ?(cls = Iosched.Foreground) t i =
  charge_sync t ~cls ~op:`Read ~blocks:1;
  t.st <- { t.st with reads = t.st.reads + 1; blocks_read = t.st.blocks_read + 1 };
  inject_read_fault t i;
  (slot t i).current

let peek t i = (slot t i).current

(* Batch reads are best-effort DMA: a dropped device or latent sector
   yields [Zero] for the affected blocks instead of failing the whole
   transfer (and transient errors are not injected per block). Callers
   that need certainty — the store — verify each payload against its
   checksum and re-issue failed blocks as single reads, which do
   surface faults. *)
let batch_content t i =
  match t.faults with
  | None -> (slot t i).current
  | Some inj ->
    if Fault.is_dropped inj then Zero
    else if Fault.is_latent inj i then begin
      Fault.note_latent inj;
      Zero
    end
    else (slot t i).current

let read_many_async ?(cls = Iosched.Foreground) t indices =
  let n = List.length indices in
  let completion =
    if n = 0 then Duration.max (Clock.now t.clock) (busy_until t)
    else begin
      let cost = Profile.transfer_cost t.profile ~op:`Read ~bytes:(n * block_size) in
      let start, completion =
        Iosched.schedule t.sched ~now:(Clock.now t.clock) ~cls ~cost ~blocks:n
      in
      t.st <- { t.st with reads = t.st.reads + 1; blocks_read = t.st.blocks_read + n };
      note_command t ~op:`Read ~blocks:n cost;
      (match t.obs_spans with
       | None -> ()
       | Some spans ->
         Span.record spans ~track:t.name ~name:"dev.read"
           ~attrs:[ ("blocks", string_of_int n); ("cls", Iosched.cls_name cls) ]
           ~start_at:start ~end_at:completion ());
      if Probe.on t.obs_probes Probe.Dev_io then
        Probe.fire (Option.get t.obs_probes) Probe.Dev_io ~dev:t.name
          ~op:"read" ~cls:(Iosched.cls_name cls)
          ~gen:(-1) ~pgid:(-1) ~us:(Duration.to_us cost) ~blocks:n;
      completion
    end
  in
  (List.map (fun i -> batch_content t i) indices, completion)

let read_many ?cls t indices =
  let contents, completion = read_many_async ?cls t indices in
  Clock.advance_to t.clock completion;
  contents

let store_block t ~completed (i, c) =
  (match c with
   | Data s when String.length s > block_size ->
     invalid_arg "Blockdev.write: content larger than a block"
   | Data _ | Seed _ | Zero -> ());
  let s = slot t i in
  s.current <- c;
  if completed && not t.profile.Profile.volatile_cache then s.durable <- c

let corrupt_content inj = function
  | Data s when String.length s > 0 ->
    let b = Bytes.of_string s in
    let pos = Fault.pick inj (Bytes.length b) in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl Fault.pick inj 8)));
    Data (Bytes.to_string b)
  | Data _ -> Data "\x01"
  | Seed s -> Seed (Int64.logxor s (Int64.shift_left 1L (Fault.pick inj 63)))
  | Zero -> Seed 0x00DEAD_BEEFL

let max_write_retries = 4

(* Apply the fault model to a write submission. Transient write errors
   are retried by the device controller with exponential backoff — the
   returned extra cost is added to the transfer and so shows up in
   simulated time; retries exhausted raises. A write that lands clears
   any latent error on its sector (the drive remaps it), which is what
   makes read-repair-by-rewrite actually heal. Silent corruption
   replaces the stored payload; only an end-to-end checksum can tell. *)
let apply_write_faults t writes =
  match t.faults with
  | None -> (writes, Duration.zero)
  | Some inj ->
    if Fault.is_dropped inj then raise (Fault.Io_error (Fault.Dropped { dev = t.name }));
    let retry_cost = ref Duration.zero in
    let writes =
      List.map
        (fun (i, c) ->
          let rec attempt n =
            if Fault.draw_transient_write inj then begin
              if n >= max_write_retries then
                raise
                  (Fault.Io_error (Fault.Transient { dev = t.name; op = `Write; phys = i }));
              retry_cost :=
                Duration.add !retry_cost
                  (Duration.scale t.profile.Profile.write_latency (1 lsl n));
              attempt (n + 1)
            end
          in
          attempt 0;
          Fault.clear_latent inj i;
          if Fault.draw_corruption inj then (i, corrupt_content inj c) else (i, c))
        writes
    in
    (writes, !retry_cost)

let write_many ?(cls = Iosched.Foreground) t writes =
  let writes, retry_cost = apply_write_faults t writes in
  let n = List.length writes in
  if n > 0 then charge_sync t ~cls ~op:`Write ~blocks:n;
  if Duration.(retry_cost > zero) then begin
    Iosched.extend t.sched retry_cost;
    (match Iosched.config t.sched with
     | Iosched.Fifo -> Clock.advance_to t.clock (busy_until t)
     | Iosched.Wdrr _ ->
       (* The retried command may have been served from reserved slack
          ahead of the queue tail; the caller still waits out the
          retries, but not the whole bulk horizon. *)
       Clock.advance t.clock retry_cost)
  end;
  t.st <- { t.st with writes = t.st.writes + 1; blocks_written = t.st.blocks_written + n };
  List.iter (store_block t ~completed:true) writes

let write ?cls t i c = write_many ?cls t [ (i, c) ]

(* Queue one transfer per extent (latency charged per extent, bandwidth
   per block); the whole submission completes — and, on non-volatile
   caches, becomes durable — at the time the last extent drains. *)
let write_extents ?not_before ?(cls = Iosched.Flush) t extents =
  let extents = List.filter (fun e -> e <> []) extents in
  let extents, retry_cost =
    if t.faults = None then (extents, Duration.zero)
    else begin
      let total = ref Duration.zero in
      let extents =
        List.map
          (fun e ->
            let e', c = apply_write_faults t e in
            total := Duration.add !total c;
            e')
          extents
      in
      (extents, !total)
    end
  in
  let nblocks = List.fold_left (fun acc e -> acc + List.length e) 0 extents
  and nextents = List.length extents in
  if nextents = 0 then begin
    let start = Duration.max (Clock.now t.clock) (busy_until t) in
    match not_before with
    | Some at -> Duration.max start at
    | None -> start
  end
  else begin
    let cost =
      List.fold_left
        (fun acc e ->
          Duration.add acc
            (Profile.transfer_cost t.profile ~op:`Write
               ~bytes:(List.length e * block_size)))
        (* Controller-internal write retries extend the transfer. *)
        retry_cost extents
    in
    let start, completion =
      Iosched.schedule t.sched ~now:(Clock.now t.clock) ?not_before ~cls ~cost
        ~blocks:nblocks
    in
    t.st <- { t.st with writes = t.st.writes + nextents;
                        blocks_written = t.st.blocks_written + nblocks };
    (match t.obs_counters with
     | None -> ()
     | Some c ->
       Metrics.add c.c_commands nextents;
       Metrics.add c.c_blocks_written nblocks;
       Metrics.observe_duration c.c_xfer_us cost);
    (match t.obs_spans with
     | None -> ()
     | Some spans ->
       Span.record spans ~track:t.name ~name:"dev.write"
         ~attrs:
           [ ("blocks", string_of_int nblocks); ("extents", string_of_int nextents);
             ("cls", Iosched.cls_name cls) ]
         ~start_at:start ~end_at:completion ());
    if Probe.on t.obs_probes Probe.Dev_io then
      Probe.fire (Option.get t.obs_probes) Probe.Dev_io ~dev:t.name ~op:"write"
        ~cls:(Iosched.cls_name cls)
        ~gen:(-1) ~pgid:(-1) ~us:(Duration.to_us cost) ~blocks:nblocks;
    (* Content is visible immediately (the store serializes access),
       but the batch is remembered as in-flight so a crash before
       completion can drop it; completion also gates durability on
       non-volatile caches. *)
    let writes = List.concat extents in
    List.iter (store_block t ~completed:false) writes;
    t.pending <- { done_at = completion; writes } :: t.pending;
    completion
  end

let write_async ?not_before ?cls t writes = write_extents ?not_before ?cls t [ writes ]

(* A small control write on its own submission queue: charged from the
   current instant instead of behind queued data transfers — modeling a
   separate NVMe queue pair for out-of-band metadata (the store's black
   box). It does not extend [busy_until], so a crash can find it
   durable while an earlier, larger data submission is still in flight.
   Crash and durability semantics are otherwise write_async's. *)
let write_oob t writes =
  let writes, retry_cost = apply_write_faults t writes in
  let n = List.length writes in
  if n = 0 then Clock.now t.clock
  else begin
    let start = Clock.now t.clock in
    let cost =
      Duration.add retry_cost
        (Profile.transfer_cost t.profile ~op:`Write ~bytes:(n * block_size))
    in
    let completion = Duration.add start cost in
    (* Timing stays out-of-band (its own queue pair, charged from now),
       but the traffic is accounted to the Background class. *)
    Iosched.note_unscheduled t.sched ~cls:Iosched.Background ~cost ~blocks:n;
    t.st <- { t.st with writes = t.st.writes + 1;
                        blocks_written = t.st.blocks_written + n };
    (match t.obs_counters with
     | None -> ()
     | Some c ->
       Metrics.add c.c_commands 1;
       Metrics.add c.c_blocks_written n;
       Metrics.observe_duration c.c_xfer_us cost);
    (* OOB writes get their own span: the critical-path analyzer must
       see black-box traffic overlapping the flush window to blame it. *)
    (match t.obs_spans with
     | None -> ()
     | Some spans ->
       Span.record spans ~track:t.name ~name:"dev.oob"
         ~attrs:[ ("blocks", string_of_int n); ("cls", "bg") ]
         ~start_at:start ~end_at:completion ());
    if Probe.on t.obs_probes Probe.Dev_io then
      Probe.fire (Option.get t.obs_probes) Probe.Dev_io ~dev:t.name ~op:"oob"
        ~cls:"bg"
        ~gen:(-1) ~pgid:(-1) ~us:(Duration.to_us cost) ~blocks:n;
    List.iter (store_block t ~completed:false) writes;
    t.pending <- { done_at = completion; writes } :: t.pending;
    completion
  end

let settle_pending t =
  (* Batches whose completion time has passed are done: their writes
     are durable (unless the cache is volatile). Oldest first, so a
     block rewritten by a later batch keeps the later content. *)
  let now = Clock.now t.clock in
  let still, done_ =
    List.partition (fun b -> Duration.(b.done_at > now)) t.pending
  in
  if not t.profile.Profile.volatile_cache then
    List.iter
      (fun batch -> List.iter (fun (i, c) -> (slot t i).durable <- c) batch.writes)
      (List.rev done_);
  t.pending <- still

let settle t = settle_pending t

let await t completion =
  Clock.advance_to t.clock completion;
  settle_pending t

let flush t =
  Clock.advance_to t.clock (busy_until t);
  Clock.advance t.clock t.profile.Profile.flush_latency;
  t.pending <- [];
  t.st <- { t.st with flushes = t.st.flushes + 1 };
  Hashtbl.iter (fun _ s -> s.durable <- s.current) t.slots

let crash t =
  (* Batches that completed (in simulated time) before the failure are
     durable; queued-but-incomplete ones never happened. *)
  settle_pending t;
  t.pending <- [];
  Iosched.reset_to t.sched (Clock.now t.clock);
  Hashtbl.iter (fun _ s -> s.current <- s.durable) t.slots

let stats t = t.st
let reset_stats t = t.st <- zero_stats

let used_blocks t =
  Hashtbl.fold (fun _ s acc -> match s.current with Zero -> acc | _ -> acc + 1) t.slots 0
