(** Simulated block storage device.

    A block device stores fixed-size (4 KiB) blocks of opaque content
    behind a {!Profile.t} performance model. Writes land in the device
    write cache and become durable only after {!flush} (immediately, if
    the profile's cache is power-loss protected). {!crash} reverts every
    non-durable block — this is what the crash-consistency tests lean
    on.

    Two submission modes mirror how Aurora uses storage:
    - synchronous ([read]/[write]/[flush]) advance the simulated clock
      to command completion, and
    - asynchronous ([write_async]) queue work on the device timeline
      and return the absolute completion time without blocking the
      caller — this models the orchestrator flushing checkpoints "in
      the background concurrently with application execution". *)

open Aurora_simtime

val block_size : int
(** 4096 bytes. *)

type content =
  | Data of string     (** serialized metadata; length <= [block_size] *)
  | Seed of int64      (** a page payload, identified by its content seed *)
  | Zero

type t

val create :
  ?sched:Iosched.config ->
  ?capacity_blocks:int -> ?faults:Fault.injector -> ?metrics:Metrics.t ->
  ?spans:Span.t -> ?probes:Probe.t -> clock:Clock.t -> profile:Profile.t ->
  string -> t
(** [create ~clock ~profile name]. [sched] selects the I/O scheduler
    ({!Iosched.Fifo} by default — the historical single-queue timing,
    bit-exact). [capacity_blocks] defaults to unlimited; when set,
    writes past the capacity raise [Invalid_argument]. [faults]
    attaches a media-fault injector (default: a perfect device).
    [metrics] registers per-device counters ([dev.<name>.commands],
    [.blocks_read], [.blocks_written]) and a transfer-duration
    histogram ([dev.<name>.xfer_us]); [spans] records batched
    transfers ([dev.read] / [dev.write] / [dev.oob]) on a track named
    after the device, each carrying a [cls] attribute; [probes] fires
    the [dev.io] tracepoint per command ([op] read/write/oob, [cls]
    fg/flush/bg/deadline). *)

val set_observability :
  t -> ?metrics:Metrics.t -> ?spans:Span.t -> ?probes:Probe.t -> unit -> unit
(** Rebind (or, with no arguments, detach) the instrumentation. A
    machine booted on an existing device calls this so the device
    reports into the new kernel's registry. *)

val name : t -> string
val profile : t -> Profile.t
val clock : t -> Clock.t

val capacity_blocks : t -> int option
(** The configured capacity; [None] means unbounded. *)

val faults : t -> Fault.injector option
val set_faults : t -> Fault.injector option -> unit

val read : ?cls:Iosched.cls -> t -> int -> content
(** Synchronous single-block read; charges the clock. [cls] defaults
    to [Foreground]. Unwritten blocks read as [Zero]. Raises
    [Invalid_argument] on negative index. Under a fault injector,
    raises {!Fault.Io_error} — the command's time is charged either
    way — for a dropped device, an injected transient error, or a
    latent sector. *)

val read_many : ?cls:Iosched.cls -> t -> int list -> content list
(** One command: latency charged once, bandwidth per block. Batch
    reads are best-effort: blocks on latent sectors (or a dropped
    device) come back [Zero] instead of failing the transfer — callers
    that need certainty verify checksums and re-issue single reads. *)

val read_many_async : ?cls:Iosched.cls -> t -> int list -> content list * Duration.t
(** Queue one read command and return the contents together with the
    absolute completion time {e without} advancing the clock. The
    device array uses this to issue reads on several devices at the
    same simulated instant and then wait for the slowest. *)

val peek : t -> int -> content
(** Read without charging the clock or the stats counters. For
    simulator-internal use only: precomputing what a future fault will
    return, where the fault itself charges the read cost (lazy
    restore), or assertions in tests. *)

val write : ?cls:Iosched.cls -> t -> int -> content -> unit
(** Synchronous write into the device cache; charges the clock. [cls]
    defaults to [Foreground]. The block is durable only after {!flush}
    (or immediately when the profile has a non-volatile cache).

    Under a fault injector: transient write errors are retried by the
    controller with exponential backoff (the extra time is charged to
    the transfer; exhausting the bounded retries raises
    {!Fault.Io_error}), a completed write clears any latent error on
    its sector, and the payload may be silently corrupted. A dropped
    device raises. These semantics apply to every write entry point
    below as well. *)

val write_many : ?cls:Iosched.cls -> t -> (int * content) list -> unit

val write_async :
  ?not_before:Duration.t -> ?cls:Iosched.cls -> t -> (int * content) list ->
  Duration.t
(** Queue the writes on the device timeline; returns the absolute
    simulated time at which they complete (and, for non-volatile
    caches, become durable). Does not advance the clock. [cls]
    defaults to [Flush] — checkpoint extents are the dominant async
    traffic. [not_before] delays the transfer's start past the given
    absolute time even if the queue drains earlier — the commit
    barrier: a superblock write ordered after in-flight data on
    {e other} devices of an array. *)

val write_extents :
  ?not_before:Duration.t -> ?cls:Iosched.cls -> t -> (int * content) list list ->
  Duration.t
(** Like {!write_async}, but each inner list is one contiguous extent
    and is charged as its own transfer (latency per extent, bandwidth
    per block). Durability semantics are per-submission: all extents
    complete together at the returned time. Empty extents are
    ignored. *)

val write_oob : t -> (int * content) list -> Duration.t
(** A small control write on a dedicated submission queue: completion
    is charged from {e now} rather than behind queued data transfers
    (a separate NVMe queue pair), so it can become durable while an
    earlier, larger submission is still draining. Used for the store's
    black-box slot. Crash and durability semantics match
    {!write_async}; [busy_until] is not extended. Accounted to the
    [Background] class without being scheduled. *)

val await : t -> Duration.t -> unit
(** Advance the clock to the given absolute completion time if it is in
    the future — i.e. block on an async write. *)

val settle : t -> unit
(** Mark async batches whose completion time has passed durable
    (non-volatile caches) without advancing the clock. {!await} and
    {!crash} call this implicitly; a device array calls it after
    advancing the shared clock itself. *)

val busy_until : t -> Duration.t
(** The absolute time at which the device's queue drains. *)

val flush : t -> unit
(** Durability barrier: waits for queued writes, pays the profile's
    flush latency, marks all completed writes durable. *)

val crash : t -> unit
(** Power failure: every block whose latest write was not durable
    reverts to its last durable content. Async batches whose
    completion time already passed in simulated time did finish and
    survive (on non-volatile caches); still-queued batches are
    dropped. *)

(** Operation counters, for bandwidth/volume reporting in benches. *)
type stats = {
  reads : int;          (** read commands *)
  writes : int;         (** write commands *)
  blocks_read : int;
  blocks_written : int;
  flushes : int;
}

val stats : t -> stats

(** Per-class scheduler accounting (ops, blocks, service time, gap
    reservation/fill/expiry). *)
val sched_stats : t -> Iosched.stats

val reset_stats : t -> unit
val used_blocks : t -> int
(** Number of distinct blocks ever written and still holding content. *)
