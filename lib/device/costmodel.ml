open Aurora_simtime

let syscall_entry = Duration.nanoseconds 400
let context_switch = Duration.nanoseconds 1_200
let page_fault_trap = Duration.nanoseconds 800
let cow_fault_service = Duration.nanoseconds 3_000
let zero_fill_fault = Duration.nanoseconds 1_500

let per_page ns_per_page pages =
  if pages < 0 then invalid_arg "Costmodel: negative page count";
  Duration.nanoseconds (int_of_float (Float.round (ns_per_page *. float_of_int pages)))

let cow_arm ~pages = per_page 9.8 pages
let pte_map ~pages = per_page 0.7 pages
let page_copy ~pages = per_page 250.0 pages
let page_hash ~pages = per_page 500.0 pages

let quiesce_proc = Duration.microseconds 3
let quiesce_thread = Duration.nanoseconds 600

let serialize_proc_base = Duration.microseconds 25
let serialize_thread = Duration.microseconds 4
let serialize_object = Duration.microseconds 2
let serialize_vm_entry = Duration.nanoseconds 1_500
let serialize_vmobj = Duration.nanoseconds 700

let restore_proc_base = Duration.microseconds 8
let restore_thread = Duration.microseconds 3
let restore_object = Duration.nanoseconds 250
let restore_vm_entry = Duration.nanoseconds 500
let vmspace_create = Duration.microseconds 120
let restore_orchestrator_base = Duration.microseconds 230

let implicit_restore_discount = 0.85

let ckpt_retire = Duration.microseconds 2
