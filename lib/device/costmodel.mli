(** CPU-side cost model for simulated kernel operations.

    Every constant is calibrated against either public microarchitecture
    data (Skylake-SP, the paper's testbed CPU) or back-solved from the
    paper's own breakdowns so that the *mechanisms* — not the tables —
    produce the numbers. Per-item costs are exposed as batch functions
    ([~pages:int -> Duration.t]) so sub-nanosecond per-item rates do not
    lose precision to integer rounding.

    Calibration notes (see DESIGN.md §3 for the experiment mapping):
    - [cow_arm]: Table 3 reports 5145.9 us of lazy data copy for a full
      checkpoint of a 2 GiB (524,288-page) working set, i.e. ~9.8 ns per
      page of PTE write-protection with amortized TLB shootdown.
    - [pte_map]: Table 4 reports 494.4 us of memory-state restore for
      the same working set with no data copied — pure mapping
      recreation, ~0.7 ns per batched PTE insert plus per-entry and
      per-space bases.
    - Serialization costs reproduce the ~240–270 us metadata-copy rows
      given a Redis-scale object population (tens of descriptors,
      ~100 address-space entries, a few threads). *)

open Aurora_simtime

val syscall_entry : Duration.t
(** Trap + dispatch of one system call (~400 ns on Skylake). *)

val context_switch : Duration.t
(** Involuntary thread switch including scheduler work (~1.2 us). *)

val page_fault_trap : Duration.t
(** Fault trap + VM lookup before any handling (~800 ns). *)

val cow_fault_service : Duration.t
(** Servicing one copy-on-write fault: frame allocation, 4 KiB copy,
    remap (~3 us — the paper attributes most checkpoint overhead to
    "servicing COW faults while the application runs"). *)

val zero_fill_fault : Duration.t
(** Demand-zero fault service (~1.5 us). *)

val cow_arm : pages:int -> Duration.t
(** Write-protecting [pages] PTEs during the checkpoint barrier
    ("applying COW tracking through page table manipulations"). *)

val pte_map : pages:int -> Duration.t
(** Batched insertion of [pages] mappings during restore. *)

val page_copy : pages:int -> Duration.t
(** Memory-to-memory copy of [pages] 4 KiB pages at DRAM bandwidth. *)

val page_hash : pages:int -> Duration.t
(** Content-hashing pages for object-store deduplication. *)

val quiesce_proc : Duration.t
(** Parking one process at the checkpoint barrier: IPI, run-queue
    removal, wait for the in-flight syscall to reach a quiescent
    point (~3 us). Charged inside the stop window, before metadata
    serialization begins. *)

val quiesce_thread : Duration.t
(** Per-thread share of the barrier rendezvous (~0.6 us). *)

val serialize_proc_base : Duration.t
(** Fixed cost to serialize one process record (credentials, signal
    state, session linkage — ~25 us). *)

val serialize_thread : Duration.t
(** One thread context: registers, FPU state, kernel stack (~4 us). *)

val serialize_object : Duration.t
(** One generic POSIX object record (~2 us). *)

val serialize_vm_entry : Duration.t
(** One address-space map entry (~1.5 us). *)

val serialize_vmobj : Duration.t
(** One VM object's metadata record (kind, shadow link, hot set —
    ~0.7 us; the page contents are captured separately). *)

val restore_proc_base : Duration.t
val restore_thread : Duration.t
val restore_object : Duration.t
(** Recreating one POSIX object from its record (~0.25 us; cheap
    because the image parse pre-populates the registry). *)

val restore_vm_entry : Duration.t
val vmspace_create : Duration.t
(** Creating an empty address space: pmap allocation, kernel
    bookkeeping (~120 us). *)

val restore_orchestrator_base : Duration.t
(** Fixed orchestrator cost per restore: image lookup, registry
    setup, persistence-group bookkeeping (~230 us). *)

val implicit_restore_discount : float
(** Multiplier (< 1) applied to memory/metadata restore costs when the
    checkpoint is being read from a backing store, because "reading in
    the checkpoint implicitly restores some application state"
    (Table 4's disk column). *)

val ckpt_retire : Duration.t
(** Completion-side cost of retiring one pipelined checkpoint epoch
    when its generation's writes land: finalizing the breakdown,
    closing the flush span, releasing the epoch's bookkeeping (~2 us,
    charged off the stop path — this is the CPU half of "background
    flush"). *)
