open Aurora_simtime

(* --- fault plans ----------------------------------------------------- *)

type plan = {
  seed : int64;
  transient_read_rate : float;
  transient_write_rate : float;
  corruption_rate : float;
  latent_blocks : int list;
  dropped_stripes : int list;
}

let none =
  { seed = 1L; transient_read_rate = 0.; transient_write_rate = 0.;
    corruption_rate = 0.; latent_blocks = []; dropped_stripes = [] }

let check_rate name r =
  if not (Float.is_finite r) || r < 0. || r > 1. then
    invalid_arg (Printf.sprintf "Fault.plan: %s rate %g not in [0,1]" name r)

let plan ?(seed = 42L) ?(transient_read = 0.) ?(transient_write = 0.)
    ?(corruption = 0.) ?(latent_blocks = []) ?(dropped_stripes = []) () =
  check_rate "transient_read" transient_read;
  check_rate "transient_write" transient_write;
  check_rate "corruption" corruption;
  List.iter
    (fun b -> if b < 0 then invalid_arg "Fault.plan: negative latent block")
    latent_blocks;
  { seed; transient_read_rate = transient_read;
    transient_write_rate = transient_write; corruption_rate = corruption;
    latent_blocks; dropped_stripes }

let is_none p =
  p.transient_read_rate = 0. && p.transient_write_rate = 0.
  && p.corruption_rate = 0. && p.latent_blocks = [] && p.dropped_stripes = []

(* --- errors ---------------------------------------------------------- *)

type error =
  | Transient of { dev : string; op : [ `Read | `Write ]; phys : int }
  | Latent of { dev : string; phys : int }
  | Dropped of { dev : string }

exception Io_error of error

let describe = function
  | Transient { dev; op; phys } ->
    Printf.sprintf "transient %s error on %s block %d"
      (match op with `Read -> "read" | `Write -> "write")
      dev phys
  | Latent { dev; phys } -> Printf.sprintf "latent sector error on %s block %d" dev phys
  | Dropped { dev } -> Printf.sprintf "device %s dropped" dev

let pp_error ppf e = Format.pp_print_string ppf (describe e)

let () =
  Printexc.register_printer (function
    | Io_error e -> Some (Printf.sprintf "Fault.Io_error(%s)" (describe e))
    | _ -> None)

(* --- per-device injectors -------------------------------------------- *)

type stats = {
  transient_reads : int;
  transient_writes : int;
  latent_reads : int;
  corruptions : int;
}

let zero_stats =
  { transient_reads = 0; transient_writes = 0; latent_reads = 0; corruptions = 0 }

let add_stats a b =
  { transient_reads = a.transient_reads + b.transient_reads;
    transient_writes = a.transient_writes + b.transient_writes;
    latent_reads = a.latent_reads + b.latent_reads;
    corruptions = a.corruptions + b.corruptions }

type injector = {
  transient_read_rate : float;
  transient_write_rate : float;
  corruption_rate : float;
  prng : Prng.t;
  latent : (int, unit) Hashtbl.t;
  mutable is_dropped : bool;
  mutable st : stats;
}

let injector ?(dev_index = 0) p =
  (* Each device of an array gets an independent deterministic stream
     derived from the plan's root seed, so fault sequences do not
     depend on the order devices happen to be exercised in. *)
  let seed =
    Int64.logxor p.seed
      (Int64.mul (Int64.of_int (dev_index + 1)) 0x9E3779B97F4A7C15L)
  in
  { transient_read_rate = p.transient_read_rate;
    transient_write_rate = p.transient_write_rate;
    corruption_rate = p.corruption_rate;
    prng = Prng.create ~seed;
    latent = Hashtbl.create 8;
    is_dropped = false;
    st = zero_stats }

let stats inj = inj.st

let draw inj rate = rate > 0. && Prng.float inj.prng 1.0 < rate

let draw_transient_read inj =
  if draw inj inj.transient_read_rate then begin
    inj.st <- { inj.st with transient_reads = inj.st.transient_reads + 1 };
    true
  end
  else false

let draw_transient_write inj =
  if draw inj inj.transient_write_rate then begin
    inj.st <- { inj.st with transient_writes = inj.st.transient_writes + 1 };
    true
  end
  else false

let draw_corruption inj =
  if draw inj inj.corruption_rate then begin
    inj.st <- { inj.st with corruptions = inj.st.corruptions + 1 };
    true
  end
  else false

let is_dropped inj = inj.is_dropped
let set_dropped inj v = inj.is_dropped <- v

let is_latent inj phys = Hashtbl.mem inj.latent phys

let note_latent inj =
  inj.st <- { inj.st with latent_reads = inj.st.latent_reads + 1 }

let add_latent inj phys =
  if phys < 0 then invalid_arg "Fault.add_latent: negative block";
  Hashtbl.replace inj.latent phys ()

let clear_latent inj phys = Hashtbl.remove inj.latent phys

let latent_count inj = Hashtbl.length inj.latent

let pick inj bound = Prng.int inj.prng bound
