(** Priority-aware device I/O scheduling.

    Every submission to a {!Blockdev.t} carries a class:

    - [Foreground]: latency-sensitive reads — application store reads,
      fault-driven page-ins, restore prefetch.
    - [Flush]: checkpoint epoch extents — bulk, throughput-bound,
      deadline-free until the pipeline window fills.
    - [Background]: scrub, read-repair rewrites, replication export,
      out-of-band recorder traffic.
    - [Deadline]: barrier-bound writes — superblocks, generation
      tables, and epochs a quiescing caller is already waiting on.
      Never paced, and promoted into reserved slack like foreground.

    Two configurations:

    - [Fifo] reproduces the single [busy_until] queue bit-exactly:
      every submission starts at [max now (queue drain)] regardless of
      class. The default; all historical timing is unchanged.
    - [Wdrr] is a weighted deficit-round-robin dispatcher adapted to
      the analytic device model. Completion times must be final at
      submission (callers persist them as durability horizons), so
      priority cannot preempt retroactively. Instead, bulk classes are
      {e paced}: after every [quantum] of Flush/Background service the
      dispatcher reserves a gap of [quantum * fg_weight / class_weight]
      on the device timeline. Foreground and Deadline submissions fill
      the earliest reserved gap that fits (their latency is bounded by
      roughly one quantum instead of the whole queue depth); when no
      gap fits they fall back to the queue tail. Unused gaps expire as
      the clock passes them — the reservation is the bounded
      throughput tax the bulk classes pay for isolation
      ([fg_weight / class_weight], ~6% for Flush at the defaults).

    The scheduler state is plain data (no closures): devices are
    marshalled into CLI universe files. *)

open Aurora_simtime

type cls = Foreground | Flush | Background | Deadline

type config =
  | Fifo
  | Wdrr of {
      fg_weight : int;     (** reserved-slack numerator *)
      flush_weight : int;  (** pacing denominator for [Flush] *)
      bg_weight : int;     (** pacing denominator for [Background] *)
      quantum_us : float;  (** bulk service between reserved gaps *)
    }

val default_wdrr : config
(** [Wdrr { fg_weight = 1; flush_weight = 16; bg_weight = 4;
    quantum_us = 400. }]: Flush pays ~6.25% elongation and reserves a
    25 us foreground slot every 400 us of bulk service — enough for a
    couple of 4 KiB reads per gap at Optane latencies. *)

val cls_name : cls -> string
(** ["fg"] / ["flush"] / ["bg"] / ["deadline"] — the value of the
    [dev.io] probe's [cls] field and the [cls] span attribute. *)

val config_name : config -> string
(** ["fifo"] or ["wdrr"]. *)

type t

val create : config -> t
val config : t -> config

val horizon : t -> Duration.t
(** When the device queue drains — the scheduler's [busy_until]. *)

val schedule :
  ?not_before:Duration.t -> t -> now:Duration.t -> cls:cls ->
  cost:Duration.t -> blocks:int -> Duration.t * Duration.t
(** [(start, completion)] for one submission of [cost] device time.
    [not_before] delays the start past an absolute instant (the commit
    barrier). Under [Fifo], [start = max now not_before (horizon)] and
    the horizon advances to [completion] — the legacy arithmetic.
    Under [Wdrr], Foreground/Deadline gap-fill when possible (the
    horizon does not move), Flush/Background are paced (the horizon
    advances past the inserted gaps). Completion is final: it never
    changes after this call returns. *)

val extend : t -> Duration.t -> unit
(** Push the horizon out by a duration that was charged outside
    {!schedule} — controller-internal write retries. *)

val reset_to : t -> Duration.t -> unit
(** Crash/power-fail: the queue is gone. Horizon collapses to [now],
    reserved gaps and pacing credit are dropped. *)

type stats = {
  s_ops : int array;          (** scheduled submissions, per class *)
  s_blocks : int array;       (** blocks, per class *)
  s_service_us : float array; (** device time charged, per class *)
  s_fg_gap_fills : int;       (** Foreground/Deadline ops served from a gap *)
  s_fg_wait_us : float;       (** total Foreground/Deadline queue wait *)
  s_gaps_reserved_us : float; (** slack inserted by pacing *)
  s_gaps_used_us : float;     (** slack consumed by gap-fills *)
  s_gaps_expired_us : float;  (** slack the clock passed unused *)
}

val cls_index : cls -> int
(** Index into the per-class stats arrays: [Foreground]=0, [Flush]=1,
    [Background]=2, [Deadline]=3. *)

val stats : t -> stats
val zero_stats : stats
val add_stats : stats -> stats -> stats

val note_unscheduled : t -> cls:cls -> cost:Duration.t -> blocks:int -> unit
(** Account a submission that bypasses the queue (the out-of-band
    lane) under its class without scheduling it. *)
