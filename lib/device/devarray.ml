open Aurora_simtime

(* A completion group attributes the writes of one commit epoch to a
   per-stripe completion horizon, so a later barrier can await exactly
   that epoch's I/O instead of [busy_until] of everything (which would
   also cover unrelated app traffic and younger epochs). Plain data —
   device arrays are marshalled into CLI universe files, so no
   closures here. *)
type group = {
  done_at : Duration.t array; (* per-stripe completion horizon *)
  mutable g_extents : int;
  mutable g_blocks : int;
}

type t = {
  name : string;
  stripes : int;
  devs : Blockdev.t array;
  mutable current : group option;
}

let create ?sched ?stripes ?capacity_blocks ?faults ?metrics ?spans ?probes ~clock
    ~profile name =
  let stripes =
    match stripes with Some n -> n | None -> profile.Profile.stripes
  in
  if stripes < 1 then invalid_arg "Devarray.create: stripe count must be >= 1";
  let per_dev_capacity =
    Option.map (fun cap -> (cap + stripes - 1) / stripes) capacity_blocks
  in
  let injectors =
    match faults with
    | None -> Array.make stripes None
    | Some plan when Fault.is_none plan -> Array.make stripes None
    | Some plan ->
      let injectors =
        Array.init stripes (fun i -> Some (Fault.injector ~dev_index:i plan))
      in
      (* The plan speaks logical block numbers and device indices;
         resolve them through the stripe map. *)
      List.iter
        (fun b ->
          if b < 0 then invalid_arg "Devarray.create: negative latent block";
          match injectors.(b mod stripes) with
          | Some inj -> Fault.add_latent inj (b / stripes)
          | None -> ())
        plan.Fault.latent_blocks;
      List.iter
        (fun d ->
          if d >= 0 && d < stripes then
            match injectors.(d) with
            | Some inj -> Fault.set_dropped inj true
            | None -> ())
        plan.Fault.dropped_stripes;
      injectors
  in
  let devs =
    Array.init stripes (fun i ->
        Blockdev.create ?sched ?capacity_blocks:per_dev_capacity
          ?faults:injectors.(i) ?metrics ?spans ?probes ~clock ~profile
          (Printf.sprintf "%s.%d" name i))
  in
  { name; stripes; devs; current = None }

let set_observability t ?metrics ?spans ?probes () =
  Array.iter
    (fun dev -> Blockdev.set_observability dev ?metrics ?spans ?probes ())
    t.devs

let stripes t = t.stripes
let devices t = t.devs
let name t = t.name
let profile t = Blockdev.profile t.devs.(0)
let clock t = Blockdev.clock t.devs.(0)

(* Every device has the same per-device capacity; the stripe map is a
   bijection onto [0, stripes * per_dev). *)
let capacity_blocks t =
  Option.map
    (fun per_dev -> per_dev * t.stripes)
    (Blockdev.capacity_blocks t.devs.(0))

let locate t b =
  if b < 0 then invalid_arg "Devarray: negative block index";
  (b mod t.stripes, b / t.stripes)

let logical t ~dev ~phys =
  if dev < 0 || dev >= t.stripes then invalid_arg "Devarray.logical: bad device";
  if phys < 0 then invalid_arg "Devarray.logical: negative block";
  (phys * t.stripes) + dev

(* Partition logical writes into per-device (phys, content) lists,
   preserving submission order within each device. *)
let partition t writes =
  let per_dev = Array.make t.stripes [] in
  List.iter
    (fun (b, c) ->
      let d, phys = locate t b in
      per_dev.(d) <- (phys, c) :: per_dev.(d))
    writes;
  Array.map List.rev per_dev

(* Coalesce a device's writes into extents of contiguous physical
   blocks. A stable sort keeps rewrite order for duplicate blocks. *)
let extents_of writes =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) writes in
  let flush_run run acc = if run = [] then acc else List.rev run :: acc in
  let rec go acc run prev = function
    | [] -> List.rev (flush_run run acc)
    | (phys, c) :: rest ->
      if prev >= 0 && phys <= prev + 1 then go acc ((phys, c) :: run) phys rest
      else go (flush_run run acc) [ (phys, c) ] phys rest
  in
  go [] [] (-1) sorted

(* --- synchronous I/O ------------------------------------------------ *)

let read ?cls t b =
  let d, phys = locate t b in
  Blockdev.read ?cls t.devs.(d) phys

let peek t b =
  let d, phys = locate t b in
  Blockdev.peek t.devs.(d) phys

let read_many ?cls t indices =
  (* Issue one command per device touched, all starting now; the
     caller waits for the slowest. Results keep request order. *)
  let n = List.length indices in
  let per_dev = Array.make t.stripes [] in
  List.iteri
    (fun pos b ->
      let d, phys = locate t b in
      per_dev.(d) <- (pos, phys) :: per_dev.(d))
    indices;
  let results = Array.make n Blockdev.Zero in
  let completion = ref Duration.zero in
  Array.iteri
    (fun d reqs ->
      match List.rev reqs with
      | [] -> ()
      | reqs ->
        let contents, done_at =
          Blockdev.read_many_async ?cls t.devs.(d) (List.map snd reqs)
        in
        completion := Duration.max !completion done_at;
        List.iter2 (fun (pos, _) c -> results.(pos) <- c) reqs contents)
    per_dev;
  if n > 0 then begin
    Clock.advance_to (clock t) !completion;
    Array.iter Blockdev.settle t.devs
  end;
  Array.to_list results

(* Array variant for preallocated hot paths (restore prefetch):
   identical semantics to {!read_many}, zero list churn. *)
let read_many_arr ?cls t indices =
  let n = Array.length indices in
  let results = Array.make n Blockdev.Zero in
  if n > 0 then begin
    let per_dev = Array.make t.stripes [] in
    Array.iteri
      (fun pos b ->
        let d, phys = locate t b in
        per_dev.(d) <- (pos, phys) :: per_dev.(d))
      indices;
    let completion = ref Duration.zero in
    Array.iteri
      (fun d reqs ->
        match List.rev reqs with
        | [] -> ()
        | reqs ->
          let contents, done_at =
            Blockdev.read_many_async ?cls t.devs.(d) (List.map snd reqs)
          in
          completion := Duration.max !completion done_at;
          List.iter2 (fun (pos, _) c -> results.(pos) <- c) reqs contents)
      per_dev;
    Clock.advance_to (clock t) !completion;
    Array.iter Blockdev.settle t.devs
  end;
  results

(* --- asynchronous I/O ----------------------------------------------- *)

let submit ?not_before ?cls t writes =
  let per_dev = partition t writes in
  let completion = ref Duration.zero in
  Array.iteri
    (fun d dev_writes ->
      if dev_writes <> [] then begin
        let exts = extents_of dev_writes in
        let done_at = Blockdev.write_extents ?not_before ?cls t.devs.(d) exts in
        completion := Duration.max !completion done_at;
        match t.current with
        | None -> ()
        | Some g ->
          g.done_at.(d) <- Duration.max g.done_at.(d) done_at;
          g.g_extents <- g.g_extents + List.length exts;
          g.g_blocks <- g.g_blocks + List.length dev_writes
      end)
    per_dev;
  !completion

(* Out-of-band control writes: each touched device takes them on its
   dedicated submission queue (see {!Blockdev.write_oob}), so they can
   land while larger queued data transfers are still draining. *)
let write_oob t writes =
  let per_dev = partition t writes in
  let completion = ref Duration.zero in
  Array.iteri
    (fun d dev_writes ->
      if dev_writes <> [] then
        completion :=
          Duration.max !completion (Blockdev.write_oob t.devs.(d) dev_writes))
    per_dev;
  !completion

(* --- completion groups ----------------------------------------------- *)

let begin_group t =
  let g =
    { done_at = Array.make t.stripes Duration.zero; g_extents = 0; g_blocks = 0 }
  in
  t.current <- Some g;
  g

let end_group t =
  match t.current with
  | None -> invalid_arg "Devarray.end_group: no group open"
  | Some g ->
    t.current <- None;
    g

let discard_group t = t.current <- None

let group_completion g = Array.fold_left Duration.max Duration.zero g.done_at
let group_extents g = g.g_extents
let group_blocks g = g.g_blocks

let busy_until t =
  Array.fold_left
    (fun acc dev -> Duration.max acc (Blockdev.busy_until dev))
    Duration.zero t.devs

let write_async ?not_before ?cls t writes =
  let completion = submit ?not_before ?cls t writes in
  if Duration.equal completion Duration.zero then
    Duration.max (Clock.now (clock t)) (busy_until t)
  else completion

let write_barrier ?cls t writes =
  write_async ~not_before:(busy_until t) ?cls t writes

let await t completion =
  Clock.advance_to (clock t) completion;
  Array.iter Blockdev.settle t.devs

let await_group t g = await t (group_completion g)

let write_many ?cls t writes = await t (write_async ?cls t writes)

let write ?cls t b c = write_many ?cls t [ (b, c) ]

let flush t =
  (* Drain every queue first so the per-device flush barriers overlap
     the drain instead of serializing behind each other. *)
  Clock.advance_to (clock t) (busy_until t);
  Array.iter Blockdev.flush t.devs

let crash t = Array.iter Blockdev.crash t.devs

(* --- stats ---------------------------------------------------------- *)

let device_stats t = Array.map Blockdev.stats t.devs

let stats t =
  Array.fold_left
    (fun acc (s : Blockdev.stats) ->
      Blockdev.
        {
          reads = acc.reads + s.reads;
          writes = acc.writes + s.writes;
          blocks_read = acc.blocks_read + s.blocks_read;
          blocks_written = acc.blocks_written + s.blocks_written;
          flushes = acc.flushes + s.flushes;
        })
    Blockdev.{ reads = 0; writes = 0; blocks_read = 0; blocks_written = 0; flushes = 0 }
    (device_stats t)

let sched_stats t =
  Array.fold_left
    (fun acc dev -> Iosched.add_stats acc (Blockdev.sched_stats dev))
    Iosched.zero_stats t.devs

let reset_stats t = Array.iter Blockdev.reset_stats t.devs

let used_blocks t =
  Array.fold_left (fun acc dev -> acc + Blockdev.used_blocks dev) 0 t.devs

(* --- fault injection -------------------------------------------------- *)

let has_faults t =
  Array.exists (fun dev -> Blockdev.faults dev <> None) t.devs

(* Tests and the fault-sweep bench inject faults mid-run; a device
   without an injector gets a zero-rate one on demand. *)
let injector_of t d =
  if d < 0 || d >= t.stripes then invalid_arg "Devarray: bad device index";
  match Blockdev.faults t.devs.(d) with
  | Some inj -> inj
  | None ->
    let inj = Fault.injector ~dev_index:d (Fault.plan ()) in
    Blockdev.set_faults t.devs.(d) (Some inj);
    inj

let inject_latent t b =
  let d, phys = locate t b in
  Fault.add_latent (injector_of t d) phys

let drop_device t d = Fault.set_dropped (injector_of t d) true

let fault_stats t =
  Array.fold_left
    (fun acc dev ->
      match Blockdev.faults dev with
      | Some inj -> Fault.add_stats acc (Fault.stats inj)
      | None -> acc)
    Fault.zero_stats t.devs
