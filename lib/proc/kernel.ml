open Aurora_simtime
open Aurora_vm
open Aurora_posix
open Aurora_vfs

type send_hook =
  src:Unixsock.t -> ofd:Fd.ofd -> data:string -> [ `Deliver | `Buffered of int ]

type sls_op =
  | Sls_ntflush of string
  | Sls_checkpoint
  | Sls_barrier
  | Sls_log_read
  | Sls_log_truncate
  | Sls_fdctl of int * bool
  | Sls_mctl of int * bool

type sls_result = Sls_time of Duration.t | Sls_log of string list

type t = {
  clock : Clock.t;
  pool : Frame.pool;
  registry : Registry.t;
  netstack : Netstack.t;
  mutable fs : Memfs.t;
  unix_ns : (string, int) Hashtbl.t;
  procs : (int, Process.t) Hashtbl.t;
  mutable next_pid : int;
  containers : (int, Container.t) Hashtbl.t;
  mutable next_cid : int;
  trace : Tracelog.t;
  metrics : Metrics.t;
  spans : Span.t;
  recorder : Recorder.t;
  probes : Probe.t;
  prng : Prng.t;
  mutable send_hook : send_hook option;
  mutable sls_ops : (pid:int -> sls_op -> sls_result) option;
}

let create ?clock ?fs ?capacity_pages ?(seed = 0xA407AL) () =
  let clock = match clock with Some c -> c | None -> Clock.create () in
  let fs = match fs with Some fs -> fs | None -> Memfs.create () in
  let t =
    { clock; pool = Frame.create_pool ?capacity_pages (); registry = Registry.create ();
      netstack = Netstack.create (); fs; unix_ns = Hashtbl.create 8;
      procs = Hashtbl.create 16; next_pid = 1; containers = Hashtbl.create 4;
      next_cid = 1; trace = Tracelog.create clock; metrics = Metrics.create clock;
      spans = Span.create clock; recorder = Recorder.create clock;
      probes = Probe.create ();
      prng = Prng.create ~seed;
      send_hook = None; sls_ops = None }
  in
  Hashtbl.replace t.containers 0 Container.host;
  t

let charge t d = Clock.advance t.clock d

let spawn t ?(container = 0) ?(parent = 0) ~name ~program () =
  if not (Hashtbl.mem t.containers container) then
    invalid_arg (Printf.sprintf "Kernel.spawn: no container %d" container);
  let pid = t.next_pid in
  t.next_pid <- t.next_pid + 1;
  let vm = Vmmap.create ~clock:t.clock ~pool:t.pool () in
  let p = Process.create ~pid ~ppid:parent ~name ~container ~vm ~program in
  Hashtbl.replace t.procs pid p;
  Tracelog.recordf t.trace ~subsystem:"proc" "spawn pid=%d name=%s program=%s" pid name
    program;
  p

let proc t pid = Hashtbl.find_opt t.procs pid

let proc_exn t pid =
  match proc t pid with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Kernel: no process %d" pid)

let processes t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.procs []
  |> List.sort (fun a b -> Int.compare a.Process.pid b.Process.pid)

let container_procs t cid =
  List.filter (fun p -> p.Process.container = cid) (processes t)

let new_container t ~name =
  let cid = t.next_cid in
  t.next_cid <- t.next_cid + 1;
  let c = { Container.cid; name } in
  Hashtbl.replace t.containers cid c;
  c

let ensure_container t ~cid ~name =
  if not (Hashtbl.mem t.containers cid) then begin
    Hashtbl.replace t.containers cid { Container.cid; name };
    if cid >= t.next_cid then t.next_cid <- cid + 1
  end

let remove_proc t pid = Hashtbl.remove t.procs pid
let lookup_stream t oid = Registry.stream t.registry oid

let pp ppf t =
  Format.fprintf ppf "kernel(t=%a, %d procs, %d objects)" Clock.pp t.clock
    (Hashtbl.length t.procs) (Registry.count t.registry)
