(** The simulated kernel instance: one per machine.

    Owns the clock, physical memory, the POSIX object registry, the
    network stack, the file system, the process table, and containers.
    The SLS orchestrator (in [aurora_sls]) attaches to a kernel; its
    external-consistency machinery interposes on socket transmission
    through [send_hook]. *)

open Aurora_simtime
open Aurora_vm
open Aurora_posix
open Aurora_vfs

type send_hook =
  src:Unixsock.t -> ofd:Fd.ofd -> data:string -> [ `Deliver | `Buffered of int ]
(** Called before delivering stream data. [`Buffered n] claims the
    data (n bytes accepted into the consistency buffer); [`Deliver]
    lets the kernel deliver immediately. *)

(** The libsls "system calls" available to simulated programs; the SLS
    machine installs the handler ([sls_ops]). The flush/checkpoint/
    barrier operations return [Sls_time]; log reads return [Sls_log]. *)
type sls_op =
  | Sls_ntflush of string
  | Sls_checkpoint
  | Sls_barrier
  | Sls_log_read
  | Sls_log_truncate
  | Sls_fdctl of int * bool  (** descriptor, external consistency *)
  | Sls_mctl of int * bool   (** a vpn inside the region, persist flag *)

type sls_result = Sls_time of Duration.t | Sls_log of string list

type t = {
  clock : Clock.t;
  pool : Frame.pool;
  registry : Registry.t;
  netstack : Netstack.t;
  mutable fs : Memfs.t;
  unix_ns : (string, int) Hashtbl.t; (** unix-socket bind names -> listener oid *)
  procs : (int, Process.t) Hashtbl.t;
  mutable next_pid : int;
  containers : (int, Container.t) Hashtbl.t;
  mutable next_cid : int;
  trace : Tracelog.t;
  metrics : Metrics.t;  (** the machine-wide metrics registry *)
  spans : Span.t;       (** the machine-wide span recorder *)
  recorder : Recorder.t;
  (** the crash-surviving flight recorder; the checkpoint engine
      persists it through the store each epoch *)
  probes : Probe.t;
  (** the machine-wide dynamic-tracepoint registry; devices, the
      store, the checkpoint engine and replication fire into it *)
  prng : Prng.t;
  mutable send_hook : send_hook option;
  mutable sls_ops : (pid:int -> sls_op -> sls_result) option;
}

val create : ?clock:Clock.t -> ?fs:Memfs.t -> ?capacity_pages:int -> ?seed:int64 -> unit -> t

val charge : t -> Duration.t -> unit
(** Advance the clock (application compute, kernel work). *)

val spawn :
  t -> ?container:int -> ?parent:int -> name:string -> program:string -> unit -> Process.t
(** Create a process with a fresh address space running [program]. *)

val proc : t -> int -> Process.t option
val proc_exn : t -> int -> Process.t
val processes : t -> Process.t list
(** Sorted by pid. *)

val container_procs : t -> int -> Process.t list
val new_container : t -> name:string -> Container.t
val ensure_container : t -> cid:int -> name:string -> unit
(** Restore path: make sure a container id exists. *)

val remove_proc : t -> int -> unit

val lookup_stream : t -> int -> Unixsock.t option
(** Resolver handed to socket operations (unix + tcp endpoints). *)

val pp : Format.formatter -> t -> unit
