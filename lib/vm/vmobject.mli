(** Mach-derived virtual memory objects.

    A VM object is the unit of memory backing: an ordered collection of
    pages, optionally layered over a [shadow] (backing) object — the
    chain structure FreeBSD inherited from Mach that fork-time
    copy-on-write builds. Aurora's key VM change lives here too:

    - {b Checkpoint arming} ({!arm_for_checkpoint}): during the
      serialization barrier the orchestrator write-protects pages and
      takes stable references for the asynchronous flush. A later write
      to an armed page triggers Aurora's modified COW: a {e new} frame
      replaces the old one {e inside the same object}, so every process
      mapping the object observes the new page (shared-memory semantics
      are preserved — the problem §3 describes with standard fork COW),
      while the flush keeps the original.
    - {b Object-level dirty tracking}: dirtiness is recorded per
      (object, page), not per process, so a page shared by many
      processes is flushed exactly once per checkpoint ("it thus never
      flushes the same page twice for shared memory or COW memory
      regions").
    - {b Heat counters} approximate the clock algorithm's access
      history; the checkpoint stores the hot set so lazy restore can
      eagerly page in the hottest pages. *)

open Aurora_simtime

type kind = Anonymous | Vnode of int  (** [Vnode v]: file-backed, vnode id [v] *)

type pslot =
  | Resident of Frame.t
  | Paged_out of { content : Content.t; read_cost : Duration.t }
      (** swapped out, or left behind in the image by a lazy restore;
          faulting it in costs [read_cost] of device time *)

type t

val create : pool:Frame.pool -> kind -> t
val oid : t -> int
val kind : t -> kind
val refcount : t -> int
val incref : t -> unit
val decref : t -> unit
(** At zero, releases all resident frames and drops the shadow
    reference. *)

val shadow_of : t -> t option
val make_shadow : t -> t
(** A fresh empty object backed by [t] (for fork COW); takes a
    reference on [t]. *)

(** Result of resolving a page index through the shadow chain. The
    owner is the object in the chain that holds the page. *)
type resolution =
  | Found of { owner : t; slot : pslot }
  | Absent

val resolve : t -> int -> resolution
val slot_of : t -> int -> pslot option
(** Direct lookup in this object only (no chain walk). *)

val install : t -> int -> Frame.t -> unit
(** Install a frame at a page index, replacing (and releasing) any
    resident predecessor. *)

val install_paged_out : t -> int -> content:Content.t -> read_cost:Duration.t -> unit

val page_in : t -> int -> Frame.t -> unit
(** Replace a [Paged_out] slot with a resident frame. Raises
    [Invalid_argument] if the slot is not paged out. *)

val page_out : t -> int -> read_cost:Duration.t -> Content.t
(** Convert a resident page to [Paged_out]; returns the content (for
    the swap writer). Raises [Invalid_argument] if not resident or if
    the frame is shared (refcount > 1). *)

val remove_page : t -> int -> unit

(* --- checkpoint support ------------------------------------------- *)

(** One page captured by a checkpoint barrier. [frame] is [Some] (with
    an extra reference held for the flusher) when the page was
    resident; the flusher must [release_flush_item] when done. *)
type flush_item = { pindex : int; content : Content.t; frame : Frame.t option }

val arm_for_checkpoint : t -> mode:[ `Full | `Dirty_only ] -> flush_item list
(** Write-protect pages and return stable captures for flushing.
    [`Full] captures every page; [`Dirty_only] captures pages written
    since the previous arming (plus never-captured pages). Clears the
    dirty set; already-armed clean pages stay armed. *)

val release_flush_item : pool:Frame.pool -> flush_item -> unit
val is_armed : t -> int -> bool
val armed_count : t -> int
val dirty_count : t -> int
val mark_dirty : t -> int -> unit

val disarm_for_write : t -> int -> Frame.t
(** Aurora's checkpoint-COW fault on an armed resident page: allocate a
    copy, install it in place (all mappers now share the new frame),
    unarm, mark dirty; returns the new frame. Raises
    [Invalid_argument] if the page is not armed-resident. *)

val cow_breaks : t -> int
(** COW breaks ({!disarm_for_write} faults) taken against this object
    since the last {!reset_cow_breaks} — the "writes that raced a
    checkpoint" attribution signal. *)

val reset_cow_breaks : t -> unit
(** Zero the COW-break counter (the checkpoint engine resets it after
    folding the count into the attribution it publishes). *)

(* --- heat / clock ------------------------------------------------- *)

val touch : t -> int -> unit
(** Record an access: bumps the page's heat counter and the frame's
    accessed bit. *)

val heat : t -> int -> int
val age_heat : t -> unit
(** Halve all heat counters (aging step of the clock approximation). *)

val hot_pages : t -> limit:int -> int list
(** Up to [limit] page indexes, hottest first. *)

(* --- iteration / stats -------------------------------------------- *)

val fold_pages : t -> init:'a -> f:('a -> int -> pslot -> 'a) -> 'a
(** Over this object's own pages (not the chain), in increasing page
    index order. *)

val resident_count : t -> int
val page_count : t -> int
val chain_depth : t -> int
val pp : Format.formatter -> t -> unit
