open Aurora_simtime

type kind = Anonymous | Vnode of int

type pslot =
  | Resident of Frame.t
  | Paged_out of { content : Content.t; read_cost : Duration.t }

type t = {
  oid : int;
  kind : kind;
  pool : Frame.pool;
  pages : (int, pslot) Hashtbl.t;
  mutable shadow : t option;
  mutable refcount : int;
  dirty : (int, unit) Hashtbl.t;
  armed : (int, unit) Hashtbl.t;
  heat : (int, int) Hashtbl.t;
  mutable cow_breaks : int;
}

let next_oid = ref 0

let create ~pool kind =
  incr next_oid;
  { oid = !next_oid; kind; pool; pages = Hashtbl.create 64; shadow = None;
    refcount = 1; dirty = Hashtbl.create 64; armed = Hashtbl.create 64;
    heat = Hashtbl.create 64; cow_breaks = 0 }

let oid t = t.oid
let kind t = t.kind
let refcount t = t.refcount
let shadow_of t = t.shadow

let incref t =
  if t.refcount <= 0 then invalid_arg "Vmobject.incref: dead object";
  t.refcount <- t.refcount + 1

let release_slot t = function
  | Resident f -> Frame.decref t.pool f
  | Paged_out _ -> ()

let rec decref t =
  if t.refcount <= 0 then invalid_arg "Vmobject.decref: dead object";
  t.refcount <- t.refcount - 1;
  if t.refcount = 0 then begin
    Hashtbl.iter (fun _ slot -> release_slot t slot) t.pages;
    Hashtbl.reset t.pages;
    match t.shadow with
    | None -> ()
    | Some backing ->
      t.shadow <- None;
      decref backing
  end

let make_shadow t =
  incref t;
  let s = create ~pool:t.pool t.kind in
  s.shadow <- Some t;
  s

type resolution =
  | Found of { owner : t; slot : pslot }
  | Absent

let rec resolve t pindex =
  match Hashtbl.find_opt t.pages pindex with
  | Some slot -> Found { owner = t; slot }
  | None -> (
    match t.shadow with
    | Some backing -> resolve backing pindex
    | None -> Absent)

let slot_of t pindex = Hashtbl.find_opt t.pages pindex

let install t pindex frame =
  (match Hashtbl.find_opt t.pages pindex with
   | Some slot -> release_slot t slot
   | None -> ());
  Hashtbl.replace t.pages pindex (Resident frame)

let install_paged_out t pindex ~content ~read_cost =
  (match Hashtbl.find_opt t.pages pindex with
   | Some slot -> release_slot t slot
   | None -> ());
  Hashtbl.replace t.pages pindex (Paged_out { content; read_cost })

let page_in t pindex frame =
  match Hashtbl.find_opt t.pages pindex with
  | Some (Paged_out _) -> Hashtbl.replace t.pages pindex (Resident frame)
  | Some (Resident _) -> invalid_arg "Vmobject.page_in: page already resident"
  | None -> invalid_arg "Vmobject.page_in: no such page"

let page_out t pindex ~read_cost =
  match Hashtbl.find_opt t.pages pindex with
  | Some (Resident f) ->
    if f.Frame.refcount > 1 then invalid_arg "Vmobject.page_out: frame is shared";
    let content = f.Frame.content in
    Frame.decref t.pool f;
    Hashtbl.replace t.pages pindex (Paged_out { content; read_cost });
    content
  | Some (Paged_out _) -> invalid_arg "Vmobject.page_out: already paged out"
  | None -> invalid_arg "Vmobject.page_out: no such page"

let remove_page t pindex =
  match Hashtbl.find_opt t.pages pindex with
  | None -> ()
  | Some slot ->
    release_slot t slot;
    Hashtbl.remove t.pages pindex;
    Hashtbl.remove t.dirty pindex;
    Hashtbl.remove t.armed pindex;
    Hashtbl.remove t.heat pindex

(* --- checkpoint support ------------------------------------------- *)

type flush_item = { pindex : int; content : Content.t; frame : Frame.t option }

let capture t pindex =
  match Hashtbl.find_opt t.pages pindex with
  | Some (Resident f) ->
    Frame.incref f;
    Some { pindex; content = f.Frame.content; frame = Some f }
  | Some (Paged_out { content; _ }) -> Some { pindex; content; frame = None }
  | None -> None

let sorted_keys h =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) h [] in
  List.sort Int.compare keys

let arm_for_checkpoint t ~mode =
  let to_capture =
    match mode with
    | `Full ->
      let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
      List.sort Int.compare keys
    | `Dirty_only ->
      (* Dirty pages, plus pages never captured by any checkpoint
         (present but neither armed nor dirty can only mean "captured
         before and unmodified since", so those are skipped). A page is
         "never captured" exactly when it is dirty — pages are marked
         dirty at birth — so the dirty set is complete. *)
      sorted_keys t.dirty
  in
  let items =
    List.filter_map
      (fun pindex ->
        match capture t pindex with
        | Some item ->
          Hashtbl.replace t.armed pindex ();
          Some item
        | None ->
          (* dirty entry for a page that was since unmapped *)
          None)
      to_capture
  in
  Hashtbl.reset t.dirty;
  items

let release_flush_item ~pool item =
  match item.frame with
  | Some f -> Frame.decref pool f
  | None -> ()

let is_armed t pindex = Hashtbl.mem t.armed pindex
let cow_breaks t = t.cow_breaks
let reset_cow_breaks t = t.cow_breaks <- 0
let armed_count t = Hashtbl.length t.armed
let dirty_count t = Hashtbl.length t.dirty

let mark_dirty t pindex = Hashtbl.replace t.dirty pindex ()

let disarm_for_write t pindex =
  if not (Hashtbl.mem t.armed pindex) then
    invalid_arg "Vmobject.disarm_for_write: page not armed";
  match Hashtbl.find_opt t.pages pindex with
  | Some (Resident old_frame) ->
    (* Aurora's COW: a new page shared between all processes mapping
       this object; the old frame stays alive while the flusher holds
       its reference. *)
    let fresh = Frame.alloc t.pool old_frame.Frame.content in
    Frame.decref t.pool old_frame;
    Hashtbl.replace t.pages pindex (Resident fresh);
    Hashtbl.remove t.armed pindex;
    t.cow_breaks <- t.cow_breaks + 1;
    mark_dirty t pindex;
    fresh
  | Some (Paged_out _) | None ->
    invalid_arg "Vmobject.disarm_for_write: page not resident"

(* --- heat / clock ------------------------------------------------- *)

let touch t pindex =
  (match Hashtbl.find_opt t.pages pindex with
   | Some (Resident f) -> f.Frame.accessed <- true
   | Some (Paged_out _) | None -> ());
  let h = Option.value ~default:0 (Hashtbl.find_opt t.heat pindex) in
  Hashtbl.replace t.heat pindex (h + 1)

let heat t pindex = Option.value ~default:0 (Hashtbl.find_opt t.heat pindex)

let age_heat t =
  let halved = Hashtbl.fold (fun k v acc -> (k, v / 2) :: acc) t.heat [] in
  List.iter
    (fun (k, v) -> if v = 0 then Hashtbl.remove t.heat k else Hashtbl.replace t.heat k v)
    halved

let hot_pages t ~limit =
  if limit < 0 then invalid_arg "Vmobject.hot_pages: negative limit";
  let all = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.heat [] in
  let sorted =
    List.sort (fun (ka, va) (kb, vb) ->
        match Int.compare vb va with 0 -> Int.compare ka kb | c -> c)
      all
  in
  List.filteri (fun i _ -> i < limit) sorted |> List.map fst

(* --- iteration / stats -------------------------------------------- *)

let fold_pages t ~init ~f =
  let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  let keys = List.sort Int.compare keys in
  List.fold_left (fun acc k -> f acc k (Hashtbl.find t.pages k)) init keys

let resident_count t =
  Hashtbl.fold (fun _ s acc -> match s with Resident _ -> acc + 1 | Paged_out _ -> acc)
    t.pages 0

let page_count t = Hashtbl.length t.pages

let rec chain_depth t =
  match t.shadow with None -> 1 | Some backing -> 1 + chain_depth backing

let pp ppf t =
  Format.fprintf ppf "obj#%d(%s pages=%d dirty=%d armed=%d depth=%d refs=%d)"
    t.oid
    (match t.kind with Anonymous -> "anon" | Vnode v -> Printf.sprintf "vnode:%d" v)
    (page_count t) (dirty_count t) (armed_count t) (chain_depth t) t.refcount
