(* Tests for the process layer: contexts, fork semantics, the
   cooperative scheduler (wakeups, sleeps, deadlock detection), and
   syscalls exercised by small state-machine programs — the same
   machinery the example applications run on. *)

open Aurora_simtime
open Aurora_posix
open Aurora_proc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Test programs                                                       *)
(* ------------------------------------------------------------------ *)

(* Exits immediately with status 42. *)
let () = Program.register ~name:"test/exit42" (fun _k _p _th -> Program.Exit_program 42)

(* Writes its pc into memory [reg1]=vpn for reg2 iterations, then
   exits 0. *)
let () =
  Program.register ~name:"test/writer" (fun k p th ->
      let ctx = th.Thread.context in
      let vpn = Context.reg_int ctx 1 in
      let count = Context.reg_int ctx 2 in
      if ctx.Context.pc >= count then Program.Exit_program 0
      else begin
        Syscall.mem_write k p ~vpn:(vpn + (ctx.Context.pc mod 4)) ~offset:0
          ~value:(Int64.of_int ctx.Context.pc);
        ctx.Context.pc <- ctx.Context.pc + 1;
        Program.Continue
      end)

(* Producer: writes reg2 messages into pipe write-fd reg1, then closes
   it and exits. *)
let () =
  Program.register ~name:"test/producer" (fun k p th ->
      let ctx = th.Thread.context in
      let wfd = Context.reg_int ctx 1 in
      let total = Context.reg_int ctx 2 in
      if ctx.Context.pc >= total then begin
        Syscall.close k p wfd;
        Program.Exit_program 0
      end
      else
        match Syscall.write k p wfd (Printf.sprintf "msg-%03d;" ctx.Context.pc) with
        | `Written _ ->
          ctx.Context.pc <- ctx.Context.pc + 1;
          Program.Continue
        | `Would_block -> (
          match Fd.get p.Process.fdtable wfd with
          | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_write oid)
          | _ -> Program.Exit_program 1)
        | `Broken -> Program.Exit_program 1)

(* Consumer: reads pipe read-fd reg1 until EOF; accumulates byte count
   in reg3; exits with 0. *)
let () =
  Program.register ~name:"test/consumer" (fun k p th ->
      let ctx = th.Thread.context in
      let rfd = Context.reg_int ctx 1 in
      match Syscall.read k p rfd ~len:64 with
      | `Data s ->
        Context.set_reg_int ctx 3 (Context.reg_int ctx 3 + String.length s);
        Program.Continue
      | `Would_block -> (
        match Fd.get p.Process.fdtable rfd with
        | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_read oid)
        | _ -> Program.Exit_program 1)
      | `Eof ->
        Syscall.close k p rfd;
        Program.Exit_program 0)

(* Forker: forks; the child exits 7; the parent waits and exits with
   the child's status. pc: 0 = fork, 1 = wait. *)
let () =
  Program.register ~name:"test/forker" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 ->
        if Context.reg ctx 0 = 0L && p.Process.ppid <> 0 then
          (* We are the child (reg0 = 0 after fork). *)
          Program.Exit_program 7
        else begin
          ignore (Syscall.fork k p th);
          ctx.Context.pc <- 1;
          (* Both parent and child resume at pc 1... the child's reg0
             is 0, so route it at the next step. *)
          Program.Continue
        end
      | 1 ->
        if Context.reg ctx 0 = 0L then Program.Exit_program 7 (* child *)
        else (
          match Syscall.waitpid k p (-1) with
          | `Reaped (_, status) -> Program.Exit_program status
          | `Would_block -> Program.Block (Thread.Wait_child (-1)))
      | _ -> Program.Exit_program 99)

(* Sleeper: sleeps reg1 microseconds (absolute deadline computed on
   first step), then exits 0. *)
let () =
  Program.register ~name:"test/sleeper" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 ->
        let dl =
          Duration.add (Clock.now k.Kernel.clock)
            (Duration.microseconds (Context.reg_int ctx 1))
        in
        Context.set_reg ctx 4 (Int64.of_int (Duration.to_ns dl));
        ctx.Context.pc <- 1;
        Program.Block (Syscall.sleep_until k p dl)
      | _ ->
        let dl = Duration.nanoseconds (Int64.to_int (Context.reg ctx 4)) in
        if Duration.(Clock.now k.Kernel.clock >= dl) then Program.Exit_program 0
        else Program.Block (Thread.Wait_sleep_until dl))

(* Echo server: listens on tcp reg1, accepts one connection, echoes
   whatever arrives until EOF, then exits. pc 0=setup, 1=accept,
   2=echo loop (conn fd in reg5). *)
let () =
  Program.register ~name:"test/echo-server" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 ->
        let fd = Syscall.socket k p `Tcp in
        Syscall.bind_listen k p fd ~addr:(string_of_int (Context.reg_int ctx 1))
          ~backlog:4;
        Context.set_reg_int ctx 6 fd;
        ctx.Context.pc <- 1;
        Program.Continue
      | 1 -> (
        let lfd = Context.reg_int ctx 6 in
        match Syscall.accept k p lfd with
        | `Fd conn ->
          Context.set_reg_int ctx 5 conn;
          ctx.Context.pc <- 2;
          Program.Continue
        | `Would_block -> (
          match Fd.get p.Process.fdtable lfd with
          | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_accept oid)
          | _ -> Program.Exit_program 1))
      | _ -> (
        let conn = Context.reg_int ctx 5 in
        match Syscall.read k p conn ~len:128 with
        | `Data s ->
          ignore (Syscall.write k p conn s);
          Program.Continue
        | `Would_block -> (
          match Fd.get p.Process.fdtable conn with
          | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_read oid)
          | _ -> Program.Exit_program 1)
        | `Eof -> Program.Exit_program 0))

(* Client: connects to tcp reg1, sends "ping", waits for the 4-byte
   echo, exits 0 on success. *)
let () =
  Program.register ~name:"test/client" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 -> (
        let fd = Syscall.socket k p `Tcp in
        match Syscall.connect k p fd ~addr:(string_of_int (Context.reg_int ctx 1)) with
        | `Ok ->
          Context.set_reg_int ctx 5 fd;
          ignore (Syscall.write k p fd "ping");
          ctx.Context.pc <- 1;
          Program.Continue
        | `Refused ->
          (* Server may not have bound yet; retry shortly. *)
          Syscall.close k p fd;
          Program.Block
            (Thread.Wait_sleep_until
               (Duration.add (Clock.now k.Kernel.clock) (Duration.microseconds 10))))
      | _ -> (
        let fd = Context.reg_int ctx 5 in
        match Syscall.read k p fd ~len:16 with
        | `Data "ping" ->
          Syscall.close k p fd;
          Program.Exit_program 0
        | `Data _ -> Program.Exit_program 2
        | `Would_block -> (
          match Fd.get p.Process.fdtable fd with
          | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_read oid)
          | _ -> Program.Exit_program 1)
        | `Eof -> Program.Exit_program 3))

(* ------------------------------------------------------------------ *)
(* Tests                                                               *)
(* ------------------------------------------------------------------ *)

let test_exit_status () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"x" ~program:"test/exit42" () in
  let reason = Scheduler.run_until_idle k () in
  check_bool "all exited" true (reason = Scheduler.All_exited);
  check_int "status" 42 (Option.get p.Process.exit_status)

let test_unknown_program_dies () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"x" ~program:"no/such/binary" () in
  ignore (Scheduler.run_until_idle k ());
  check_int "sigsys-ish" 127 (Option.get p.Process.exit_status)

let test_writer_program_memory () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"w" ~program:"test/writer" () in
  let e = Syscall.mmap_anon k p ~npages:4 in
  let ctx = (Process.main_thread p).Thread.context in
  Context.set_reg_int ctx 1 e.Aurora_vm.Vmmap.start_vpn;
  Context.set_reg_int ctx 2 100;
  ignore (Scheduler.run_until_idle k ());
  check_int "exit" 0 (Option.get p.Process.exit_status)

let test_pipe_producer_consumer () =
  let k = Kernel.create () in
  let prod = Kernel.spawn k ~name:"prod" ~program:"test/producer" () in
  let cons = Kernel.spawn k ~name:"cons" ~program:"test/consumer" () in
  (* Create a pipe in the producer, hand the read end to the consumer
     (simulating inheritance). *)
  let rfd, wfd = Syscall.pipe k prod in
  let r_ofd = Option.get (Fd.get prod.Process.fdtable rfd) in
  r_ofd.Fd.refcount <- r_ofd.Fd.refcount + 1;
  Fd.install_at cons.Process.fdtable 3 r_ofd;
  ignore (Fd.release prod.Process.fdtable rfd);
  Context.set_reg_int (Process.main_thread prod).Thread.context 1 wfd;
  Context.set_reg_int (Process.main_thread prod).Thread.context 2 500;
  Context.set_reg_int (Process.main_thread cons).Thread.context 1 3;
  ignore (Scheduler.run_until_idle k ());
  check_int "producer done" 0 (Option.get prod.Process.exit_status);
  check_int "consumer done" 0 (Option.get cons.Process.exit_status);
  (* 500 messages x 8 bytes *)
  check_int "all bytes crossed" 4000
    (Context.reg_int (Process.main_thread cons).Thread.context 3)

let test_fork_and_wait () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"f" ~program:"test/forker" () in
  ignore (Scheduler.run_until_idle k ());
  check_int "parent got child status" 7 (Option.get p.Process.exit_status);
  (* Child was reaped. *)
  check_int "one process left" 1 (List.length (Kernel.processes k))

let test_sleep_advances_clock () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"s" ~program:"test/sleeper" () in
  Context.set_reg_int (Process.main_thread p).Thread.context 1 5_000; (* 5 ms *)
  ignore (Scheduler.run_until_idle k ());
  check_int "exited" 0 (Option.get p.Process.exit_status);
  check_bool "clock jumped past deadline" true
    Duration.(Clock.now k.Kernel.clock >= Duration.milliseconds 5)

let test_echo_server_client () =
  let k = Kernel.create () in
  let srv = Kernel.spawn k ~name:"srv" ~program:"test/echo-server" () in
  let cli = Kernel.spawn k ~name:"cli" ~program:"test/client" () in
  Context.set_reg_int (Process.main_thread srv).Thread.context 1 7000;
  Context.set_reg_int (Process.main_thread cli).Thread.context 1 7000;
  ignore (Scheduler.run_until_idle k ());
  check_int "client round trip" 0 (Option.get cli.Process.exit_status)

let test_determinism () =
  let run () =
    let k = Kernel.create () in
    let prod = Kernel.spawn k ~name:"prod" ~program:"test/producer" () in
    let cons = Kernel.spawn k ~name:"cons" ~program:"test/consumer" () in
    let rfd, wfd = Syscall.pipe k prod in
    let r_ofd = Option.get (Fd.get prod.Process.fdtable rfd) in
    r_ofd.Fd.refcount <- r_ofd.Fd.refcount + 1;
    Fd.install_at cons.Process.fdtable 3 r_ofd;
    ignore (Fd.release prod.Process.fdtable rfd);
    Context.set_reg_int (Process.main_thread prod).Thread.context 1 wfd;
    Context.set_reg_int (Process.main_thread prod).Thread.context 2 200;
    Context.set_reg_int (Process.main_thread cons).Thread.context 1 3;
    ignore (Scheduler.run_until_idle k ());
    Duration.to_ns (Clock.now k.Kernel.clock)
  in
  check_int "bit-identical reruns" (run ()) (run ())

let test_idle_detection () =
  (* A consumer with no producer and an open write end: blocked
     forever -> Idle, not livelock. *)
  let k = Kernel.create () in
  let cons = Kernel.spawn k ~name:"cons" ~program:"test/consumer" () in
  let rfd, _wfd = Syscall.pipe k cons in
  Context.set_reg_int (Process.main_thread cons).Thread.context 1 rfd;
  let reason = Scheduler.run_until_idle k () in
  check_bool "idle" true (reason = Scheduler.Idle)

let test_run_until_deadline () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"s" ~program:"test/sleeper" () in
  Context.set_reg_int (Process.main_thread p).Thread.context 1 1_000_000; (* 1 s *)
  let reason = Scheduler.run k ~until:(Duration.milliseconds 10) in
  check_bool "deadline stop" true (reason = Scheduler.Deadline);
  check_bool "still alive" true (p.Process.exit_status = None)

let test_zombie_until_reaped () =
  let k = Kernel.create () in
  let parent = Kernel.spawn k ~name:"p" ~program:"test/exit42" () in
  let child = Kernel.spawn k ~parent:parent.Process.pid ~name:"c" ~program:"test/exit42" () in
  ignore (Scheduler.run_until_idle k ());
  check_bool "child zombie retained" true (Kernel.proc k child.Process.pid <> None);
  (match Syscall.waitpid k parent (-1) with
   | `Reaped (pid, 42) -> check_int "reaped child" child.Process.pid pid
   | _ -> Alcotest.fail "expected reap");
  check_bool "child gone" true (Kernel.proc k child.Process.pid = None)

let test_fork_copies_memory_cow () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"p" ~program:"test/exit42" () in
  let e = Syscall.mmap_anon k p ~npages:2 in
  let vpn = e.Aurora_vm.Vmmap.start_vpn in
  Syscall.mem_write k p ~vpn ~offset:0 ~value:11L;
  let th = Process.main_thread p in
  let child = Syscall.fork k p th in
  check_bool "child sees parent memory" true
    (Int64.equal (Syscall.mem_read k p ~vpn ~offset:0)
       (Syscall.mem_read k child ~vpn ~offset:0));
  Syscall.mem_write k child ~vpn ~offset:0 ~value:22L;
  check_bool "cow isolation" false
    (Int64.equal (Syscall.mem_read k p ~vpn ~offset:0)
       (Syscall.mem_read k child ~vpn ~offset:0));
  check_bool "fork sets regs" true
    (Context.reg (Process.main_thread child).Thread.context 0 = 0L
    && Context.reg th.Thread.context 0 = Int64.of_int child.Process.pid)

let test_exit_closes_fds () =
  let k = Kernel.create () in
  let a = Kernel.spawn k ~name:"a" ~program:"test/exit42" () in
  let b = Kernel.spawn k ~name:"b" ~program:"test/consumer" () in
  let rfd, wfd = Syscall.pipe k a in
  (* Hand the read end to b. *)
  let r_ofd = Option.get (Fd.get a.Process.fdtable rfd) in
  r_ofd.Fd.refcount <- r_ofd.Fd.refcount + 1;
  Fd.install_at b.Process.fdtable 5 r_ofd;
  ignore (Fd.release a.Process.fdtable rfd);
  Context.set_reg_int (Process.main_thread b).Thread.context 1 5;
  ignore wfd;
  (* When a exits, the write end closes, so b must see EOF and exit
     cleanly rather than idle forever. *)
  ignore (Scheduler.run_until_idle k ());
  check_int "b exited via eof" 0 (Option.get b.Process.exit_status)

let test_shm_between_processes () =
  let k = Kernel.create () in
  let a = Kernel.spawn k ~name:"a" ~program:"test/exit42" () in
  let b = Kernel.spawn k ~name:"b" ~program:"test/exit42" () in
  let oid = Syscall.shm_open k a ~flavor:Shm.Posix_shm ~name:"/seg" ~npages:4 in
  let oid' = Syscall.shm_open k b ~flavor:Shm.Posix_shm ~name:"/seg" ~npages:4 in
  check_int "same segment by name" oid oid';
  let ea = Syscall.shm_attach k a oid in
  let eb = Syscall.shm_attach k b oid in
  Syscall.mem_write k a ~vpn:ea.Aurora_vm.Vmmap.start_vpn ~offset:0 ~value:5L;
  check_bool "visible across processes" true
    (Int64.equal
       (Syscall.mem_read k a ~vpn:ea.Aurora_vm.Vmmap.start_vpn ~offset:0)
       (Syscall.mem_read k b ~vpn:eb.Aurora_vm.Vmmap.start_vpn ~offset:0))

let test_containers () =
  let k = Kernel.create () in
  let c = Kernel.new_container k ~name:"web" in
  let p1 = Kernel.spawn k ~container:c.Container.cid ~name:"a" ~program:"test/exit42" () in
  let _p2 = Kernel.spawn k ~name:"b" ~program:"test/exit42" () in
  let members = Kernel.container_procs k c.Container.cid in
  check_int "one member" 1 (List.length members);
  check_int "right member" p1.Process.pid (List.hd members).Process.pid;
  check_bool "bad container rejected" true
    (try
       ignore (Kernel.spawn k ~container:99 ~name:"x" ~program:"test/exit42" ());
       false
     with Invalid_argument _ -> true)


let test_tcp_close_releases_port () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"srv" ~program:"test/exit42" () in
  let fd = Syscall.socket k p `Tcp in
  Syscall.bind_listen k p fd ~addr:"9000" ~backlog:2;
  check_bool "port taken" true
    (Aurora_posix.Netstack.listener_on k.Kernel.netstack ~port:9000 <> None);
  Syscall.close k p fd;
  check_bool "port released on close" true
    (Aurora_posix.Netstack.listener_on k.Kernel.netstack ~port:9000 = None);
  (* And it can be bound again. *)
  let fd2 = Syscall.socket k p `Tcp in
  Syscall.bind_listen k p fd2 ~addr:"9000" ~backlog:2;
  check_bool "rebindable" true
    (Aurora_posix.Netstack.listener_on k.Kernel.netstack ~port:9000 <> None)

let test_unix_bind_namespace_released () =
  let k = Kernel.create () in
  let p = Kernel.spawn k ~name:"srv" ~program:"test/exit42" () in
  let fd = Syscall.socket k p `Unix in
  Syscall.bind_listen k p fd ~addr:"/run/app.sock" ~backlog:2;
  check_bool "name bound" true (Hashtbl.mem k.Kernel.unix_ns "/run/app.sock");
  Syscall.close k p fd;
  check_bool "name released" true (not (Hashtbl.mem k.Kernel.unix_ns "/run/app.sock"))

let test_context_serialize_roundtrip () =
  let ctx = Context.create ~program:"test/writer" in
  ctx.Context.pc <- 17;
  Context.set_reg ctx 3 123456789L;
  let w = Serial.writer () in
  Context.serialize ctx w;
  let ctx' = Context.deserialize (Serial.reader (Serial.contents w)) in
  Alcotest.(check string) "program" "test/writer" ctx'.Context.program;
  check_int "pc" 17 ctx'.Context.pc;
  check_bool "regs" true (Int64.equal 123456789L (Context.reg ctx' 3))

let test_thread_serialize_blocked () =
  let th = Thread.create ~tid:3 ~program:"test/consumer" in
  th.Thread.state <- Thread.Blocked (Thread.Wait_read 55);
  let w = Serial.writer () in
  Thread.serialize th w;
  let th' = Thread.deserialize (Serial.reader (Serial.contents w)) in
  check_int "tid" 3 th'.Thread.tid;
  check_bool "still blocked on same object" true
    (th'.Thread.state = Thread.Blocked (Thread.Wait_read 55))

let () =
  Alcotest.run "proc"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "exit status" `Quick test_exit_status;
          Alcotest.test_case "unknown program dies" `Quick test_unknown_program_dies;
          Alcotest.test_case "writer program" `Quick test_writer_program_memory;
          Alcotest.test_case "zombie until reaped" `Quick test_zombie_until_reaped;
          Alcotest.test_case "exit closes descriptors" `Quick test_exit_closes_fds;
        ] );
      ( "fork",
        [
          Alcotest.test_case "fork + waitpid" `Quick test_fork_and_wait;
          Alcotest.test_case "fork cow memory" `Quick test_fork_copies_memory_cow;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "pipe producer/consumer" `Quick test_pipe_producer_consumer;
          Alcotest.test_case "sleep advances clock" `Quick test_sleep_advances_clock;
          Alcotest.test_case "echo server/client" `Quick test_echo_server_client;
          Alcotest.test_case "deterministic reruns" `Quick test_determinism;
          Alcotest.test_case "idle detection" `Quick test_idle_detection;
          Alcotest.test_case "deadline stop" `Quick test_run_until_deadline;
        ] );
      ( "objects",
        [
          Alcotest.test_case "shm across processes" `Quick test_shm_between_processes;
          Alcotest.test_case "containers" `Quick test_containers;
          Alcotest.test_case "tcp port lifecycle" `Quick test_tcp_close_releases_port;
          Alcotest.test_case "unix name lifecycle" `Quick
            test_unix_bind_namespace_released;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "context roundtrip" `Quick test_context_serialize_roundtrip;
          Alcotest.test_case "blocked thread roundtrip" `Quick
            test_thread_serialize_blocked;
        ] );
    ]
