(* Tests for the POSIX object layer: serialization substrate, FIFOs,
   pipes, Unix sockets, shared memory, message queues, semaphores,
   kqueues, the TCP netstack, fd tables, and the object registry.
   Every object class gets a serialize -> deserialize roundtrip test:
   that roundtrip IS the checkpoint path. *)

open Aurora_vm
open Aurora_posix

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Serial                                                              *)
(* ------------------------------------------------------------------ *)

let test_serial_roundtrip () =
  let w = Serial.writer () in
  Serial.w_int w 42;
  Serial.w_int64 w (-7L);
  Serial.w_bool w true;
  Serial.w_string w "hello\000world";
  Serial.w_option w Serial.w_int (Some 5);
  Serial.w_option w Serial.w_int None;
  Serial.w_list w Serial.w_string [ "a"; "bb"; "" ];
  let r = Serial.reader (Serial.contents w) in
  check_int "int" 42 (Serial.r_int r);
  check_bool "int64" true (Int64.equal (-7L) (Serial.r_int64 r));
  check_bool "bool" true (Serial.r_bool r);
  check_str "string with nul" "hello\000world" (Serial.r_string r);
  Alcotest.(check (option int)) "some" (Some 5) (Serial.r_option r Serial.r_int);
  Alcotest.(check (option int)) "none" None (Serial.r_option r Serial.r_int);
  Alcotest.(check (list string)) "list" [ "a"; "bb"; "" ]
    (Serial.r_list r Serial.r_string);
  Serial.expect_end r

let test_serial_corrupt_detection () =
  let w = Serial.writer () in
  Serial.w_string w "data";
  let s = Serial.contents w in
  let truncated = String.sub s 0 (String.length s - 1) in
  check_bool "truncated detected" true
    (try
       ignore (Serial.r_string (Serial.reader truncated));
       false
     with Serial.Corrupt _ -> true);
  let r = Serial.reader s in
  ignore (Serial.r_string r);
  check_bool "at end" true (Serial.at_end r);
  let r2 = Serial.reader (s ^ "x") in
  ignore (Serial.r_string r2);
  check_bool "trailing detected" true
    (try
       Serial.expect_end r2;
       false
     with Serial.Corrupt _ -> true)

let prop_serial_string_roundtrip =
  QCheck.Test.make ~name:"serial string roundtrip" QCheck.string (fun s ->
      let w = Serial.writer () in
      Serial.w_string w s;
      String.equal s (Serial.r_string (Serial.reader (Serial.contents w))))

let prop_serial_int_roundtrip =
  QCheck.Test.make ~name:"serial int roundtrip" QCheck.int (fun i ->
      let w = Serial.writer () in
      Serial.w_int w i;
      Int.equal i (Serial.r_int (Serial.reader (Serial.contents w))))

(* ------------------------------------------------------------------ *)
(* Fifo                                                                *)
(* ------------------------------------------------------------------ *)

let test_fifo_order () =
  let f = Fifo.create ~capacity:10 in
  check_int "push all" 3 (Fifo.push f "abc");
  check_int "push more" 3 (Fifo.push f "def");
  check_str "fifo order" "abcd" (Fifo.pop f ~max:4);
  check_str "rest" "ef" (Fifo.pop f ~max:100);
  check_bool "empty" true (Fifo.is_empty f)

let test_fifo_capacity () =
  let f = Fifo.create ~capacity:4 in
  check_int "partial accept" 4 (Fifo.push f "abcdef");
  check_int "full" 0 (Fifo.push f "x");
  check_str "kept prefix" "abcd" (Fifo.pop f ~max:10)

let test_fifo_peek () =
  let f = Fifo.create ~capacity:100 in
  ignore (Fifo.push f "hello ");
  ignore (Fifo.push f "world");
  ignore (Fifo.pop f ~max:3);
  check_str "peek after partial pop" "lo world" (Fifo.peek_all f);
  check_int "length consistent" 8 (Fifo.length f)

let prop_fifo_preserves_bytes =
  QCheck.Test.make ~name:"fifo preserves byte stream"
    QCheck.(list_of_size Gen.(int_range 1 20) (string_of_size Gen.(int_range 0 50)))
    (fun chunks ->
      let f = Fifo.create ~capacity:2000 in
      let accepted = Buffer.create 64 in
      List.iter
        (fun c ->
          let n = Fifo.push f c in
          Buffer.add_string accepted (String.sub c 0 n))
        chunks;
      let out = Buffer.create 64 in
      let rec drain () =
        let s = Fifo.pop f ~max:7 in
        if s <> "" then begin
          Buffer.add_string out s;
          drain ()
        end
      in
      drain ();
      String.equal (Buffer.contents accepted) (Buffer.contents out))

let test_fifo_serialize () =
  let f = Fifo.create ~capacity:64 in
  ignore (Fifo.push f "in flight data");
  ignore (Fifo.pop f ~max:3);
  let w = Serial.writer () in
  Fifo.serialize f w;
  let g = Fifo.deserialize (Serial.reader (Serial.contents w)) in
  check_str "contents preserved" "flight data" (Fifo.peek_all g);
  check_int "capacity preserved" 64 (Fifo.capacity g)

(* ------------------------------------------------------------------ *)
(* Pipe                                                                *)
(* ------------------------------------------------------------------ *)

let test_pipe_basic () =
  let p = Pipe.create ~oid:1 () in
  (match Pipe.write p "hello" with
   | `Written 5 -> ()
   | _ -> Alcotest.fail "write failed");
  (match Pipe.read p ~max:3 with
   | `Data s -> check_str "read" "hel" s
   | _ -> Alcotest.fail "read failed");
  (match Pipe.read p ~max:10 with
   | `Data s -> check_str "rest" "lo" s
   | _ -> Alcotest.fail "read2 failed");
  check_bool "would block when empty" true (Pipe.read p ~max:1 = `Would_block)

let test_pipe_eof_and_epipe () =
  let p = Pipe.create ~oid:1 () in
  ignore (Pipe.write p "tail");
  Pipe.close_write p;
  (match Pipe.read p ~max:10 with
   | `Data s -> check_str "drain before eof" "tail" s
   | _ -> Alcotest.fail "drain failed");
  check_bool "eof" true (Pipe.read p ~max:1 = `Eof);
  let q = Pipe.create ~oid:2 () in
  Pipe.close_read q;
  check_bool "broken pipe" true (Pipe.write q "x" = `Broken)

let test_pipe_full () =
  let p = Pipe.create ~oid:1 ~capacity:4 () in
  (match Pipe.write p "abcdef" with
   | `Written 4 -> ()
   | _ -> Alcotest.fail "partial write expected");
  check_bool "full blocks" true (Pipe.write p "x" = `Would_block)

let test_pipe_serialize_roundtrip () =
  let p = Pipe.create ~oid:7 () in
  ignore (Pipe.write p "buffered bytes survive checkpoint");
  Pipe.close_write p;
  let w = Serial.writer () in
  Pipe.serialize p w;
  let q = Pipe.deserialize (Serial.reader (Serial.contents w)) in
  check_int "oid" 7 (Pipe.oid q);
  check_bool "write end closed" false (Pipe.write_open q);
  (match Pipe.read q ~max:100 with
   | `Data s -> check_str "buffer restored" "buffered bytes survive checkpoint" s
   | _ -> Alcotest.fail "restored read failed");
  check_bool "eof after drain" true (Pipe.read q ~max:1 = `Eof)

(* ------------------------------------------------------------------ *)
(* Unix sockets                                                        *)
(* ------------------------------------------------------------------ *)

let with_pair f =
  let a, b = Unixsock.socketpair ~oid_a:10 ~oid_b:11 in
  let table = Hashtbl.create 4 in
  Hashtbl.replace table 10 a;
  Hashtbl.replace table 11 b;
  f a b (Hashtbl.find_opt table)

let test_usock_pair_transfer () =
  with_pair (fun a b lookup ->
      (match Unixsock.send a ~lookup "ping" with
       | `Sent 4 -> ()
       | _ -> Alcotest.fail "send failed");
      (match Unixsock.recv b ~max:10 with
       | `Data s -> check_str "received" "ping" s
       | _ -> Alcotest.fail "recv failed");
      check_bool "empty blocks" true (Unixsock.recv b ~max:1 = `Would_block))

let test_usock_close_eof () =
  with_pair (fun a b lookup ->
      ignore (Unixsock.send a ~lookup "last");
      Unixsock.close a ~lookup;
      (match Unixsock.recv b ~max:10 with
       | `Data s -> check_str "drain" "last" s
       | _ -> Alcotest.fail "drain failed");
      check_bool "eof after peer close" true (Unixsock.recv b ~max:1 = `Eof);
      check_bool "send to closed resets" true (Unixsock.send b ~lookup "x" = `Reset))

let test_usock_listen_accept () =
  let table = Hashtbl.create 4 in
  let lookup oid = Hashtbl.find_opt table oid in
  let server = Unixsock.create ~oid:1 () in
  Hashtbl.replace table 1 server;
  Unixsock.listen server ~name:"/tmp/srv.sock" ~backlog:2;
  let client = Unixsock.create ~oid:2 () in
  Hashtbl.replace table 2 client;
  (match Unixsock.connect client ~listener:server ~peer_oid:3 with
   | `Connected server_end ->
     Hashtbl.replace table 3 server_end;
     (match Unixsock.accept server with
      | `Endpoint oid -> check_int "accepted endpoint" 3 oid
      | `Would_block -> Alcotest.fail "accept should succeed");
     ignore (Unixsock.send client ~lookup "hello server");
     (match Unixsock.recv server_end ~max:100 with
      | `Data s -> check_str "server got it" "hello server" s
      | _ -> Alcotest.fail "server recv failed")
   | `Refused -> Alcotest.fail "connect refused")

let test_usock_backlog_refuses () =
  let server = Unixsock.create ~oid:1 () in
  Unixsock.listen server ~name:"s" ~backlog:1;
  let c1 = Unixsock.create ~oid:2 () in
  let c2 = Unixsock.create ~oid:3 () in
  (match Unixsock.connect c1 ~listener:server ~peer_oid:4 with
   | `Connected _ -> ()
   | `Refused -> Alcotest.fail "first connect should succeed");
  check_bool "backlog full" true
    (match Unixsock.connect c2 ~listener:server ~peer_oid:5 with
     | `Refused -> true
     | `Connected _ -> false)

let test_usock_serialize_with_inflight () =
  (* The CRIU pain point: a socket checkpointed with in-flight data. *)
  with_pair (fun a b lookup ->
      ignore (Unixsock.send a ~lookup "in flight");
      let w = Serial.writer () in
      Unixsock.serialize b w;
      let b' = Unixsock.deserialize (Serial.reader (Serial.contents w)) in
      check_int "oid preserved" 11 (Unixsock.oid b');
      (match Unixsock.state b' with
       | Unixsock.Connected { peer } -> check_int "peer oid" 10 peer
       | _ -> Alcotest.fail "state lost");
      match Unixsock.recv b' ~max:100 with
      | `Data s -> check_str "in-flight data restored" "in flight" s
      | _ -> Alcotest.fail "restored recv failed")

(* ------------------------------------------------------------------ *)
(* Shm / Msgq / Semaphore / Kqueue                                     *)
(* ------------------------------------------------------------------ *)

let test_shm_attach_serialize () =
  let pool = Frame.create_pool () in
  let s = Shm.create ~oid:5 ~pool ~flavor:Shm.Posix_shm ~name:"/shm0" ~npages:8 in
  Shm.attach s;
  Shm.attach s;
  check_int "attach count" 2 (Shm.attach_count s);
  let w = Serial.writer () in
  Shm.serialize s w;
  let restored_pool = Frame.create_pool () in
  let restore_obj _oid ~npages:_ = Vmobject.create ~pool:restored_pool Vmobject.Anonymous in
  let s' = Shm.deserialize (Serial.reader (Serial.contents w)) ~restore_obj in
  check_str "name" "/shm0" (Shm.name s');
  check_int "npages" 8 (Shm.npages s');
  check_int "attach count restored" 2 (Shm.attach_count s')

let test_msgq_selective_recv () =
  let q = Msgq.create ~oid:1 ~key:"q1" () in
  check_bool "send a" true (Msgq.send q ~mtype:1 "a" = `Ok);
  check_bool "send b" true (Msgq.send q ~mtype:2 "b" = `Ok);
  check_bool "send c" true (Msgq.send q ~mtype:1 "c" = `Ok);
  (match Msgq.recv q ~mtype:2 () with
   | `Msg (2, "b") -> ()
   | _ -> Alcotest.fail "selective recv failed");
  (match Msgq.recv q () with
   | `Msg (1, "a") -> ()
   | _ -> Alcotest.fail "fifo recv failed");
  check_int "one left" 1 (Msgq.message_count q)

let test_msgq_limit_and_serialize () =
  let q = Msgq.create ~oid:1 ~max_bytes:8 ~key:"q" () in
  check_bool "fits" true (Msgq.send q ~mtype:1 "12345678" = `Ok);
  check_bool "overflows" true (Msgq.send q ~mtype:1 "x" = `Would_block);
  let w = Serial.writer () in
  Msgq.serialize q w;
  let q' = Msgq.deserialize (Serial.reader (Serial.contents w)) in
  check_int "bytes restored" 8 (Msgq.bytes_used q');
  match Msgq.recv q' () with
  | `Msg (1, "12345678") -> ()
  | _ -> Alcotest.fail "restored message wrong"

let test_semaphore () =
  let s = Semaphore.create ~oid:1 ~value:1 ~name:"/sem" () in
  check_bool "first wait ok" true (Semaphore.try_wait s = `Ok);
  check_bool "second blocks" true (Semaphore.try_wait s = `Would_block);
  Semaphore.post s;
  check_bool "after post" true (Semaphore.try_wait s = `Ok);
  let w = Serial.writer () in
  Semaphore.post s;
  Semaphore.post s;
  Semaphore.serialize s w;
  let s' = Semaphore.deserialize (Serial.reader (Serial.contents w)) in
  check_int "value restored" 2 (Semaphore.value s')

let test_kqueue_coalesce_and_roundtrip () =
  let k = Kqueue.create ~oid:1 () in
  Kqueue.register k ~ident:3 Kqueue.Evt_read;
  Kqueue.register k ~ident:4 Kqueue.Evt_write;
  Kqueue.trigger k ~ident:3 Kqueue.Evt_read;
  Kqueue.trigger k ~ident:3 Kqueue.Evt_read; (* coalesces *)
  Kqueue.trigger k ~ident:9 Kqueue.Evt_read; (* unregistered: dropped *)
  check_int "pending" 1 (Kqueue.pending_count k);
  let w = Serial.writer () in
  Kqueue.serialize k w;
  let k' = Kqueue.deserialize (Serial.reader (Serial.contents w)) in
  check_int "registrations restored" 2 (List.length (Kqueue.registered k'));
  (match Kqueue.harvest k' ~max:10 with
   | [ (3, Kqueue.Evt_read) ] -> ()
   | _ -> Alcotest.fail "pending event lost");
  check_int "drained" 0 (Kqueue.pending_count k')

(* ------------------------------------------------------------------ *)
(* Netstack                                                            *)
(* ------------------------------------------------------------------ *)

let test_netstack_connect () =
  let ns = Netstack.create () in
  let table = Hashtbl.create 4 in
  let lookup oid = Hashtbl.find_opt table oid in
  let server = Unixsock.create ~oid:1 () in
  Hashtbl.replace table 1 server;
  Netstack.listen ns server ~port:6379 ~backlog:8;
  check_bool "listener registered" true (Netstack.listener_on ns ~port:6379 = Some 1);
  let client = Unixsock.create ~oid:2 () in
  Hashtbl.replace table 2 client;
  (match Netstack.connect ns ~src:client ~port:6379 ~peer_oid:3 ~lookup with
   | `Connected server_end ->
     Hashtbl.replace table 3 server_end;
     ignore (Unixsock.send client ~lookup "GET k");
     (match Unixsock.recv server_end ~max:100 with
      | `Data s -> check_str "request arrived" "GET k" s
      | _ -> Alcotest.fail "tcp recv failed")
   | `Refused -> Alcotest.fail "tcp connect refused");
  check_bool "unknown port refused" true
    (match
       Netstack.connect ns ~src:(Unixsock.create ~oid:9 ()) ~port:1 ~peer_oid:10 ~lookup
     with
     | `Refused -> true
     | `Connected _ -> false)

let test_netstack_port_conflict_and_rebind () =
  let ns = Netstack.create () in
  let s1 = Unixsock.create ~oid:1 () in
  Netstack.listen ns s1 ~port:80 ~backlog:1;
  check_bool "conflict rejected" true
    (try
       Netstack.listen ns (Unixsock.create ~oid:2 ()) ~port:80 ~backlog:1;
       false
     with Invalid_argument _ -> true);
  (* Serialize the port table, restore, and rebind the endpoint. *)
  let w = Serial.writer () in
  Netstack.serialize ns w;
  let ns' = Netstack.deserialize (Serial.reader (Serial.contents w)) in
  check_bool "binding restored" true (Netstack.listener_on ns' ~port:80 = Some 1);
  Netstack.release_port ns' ~port:80;
  Netstack.rebind ns' s1;
  check_bool "rebind works" true (Netstack.listener_on ns' ~port:80 = Some 1)

(* ------------------------------------------------------------------ *)
(* Fd tables                                                           *)
(* ------------------------------------------------------------------ *)

let test_fd_lowest_free () =
  let t = Fd.create_table () in
  let o1 = Fd.make_ofd ~oid:1 (Fd.Obj 100) in
  let o2 = Fd.make_ofd ~oid:2 (Fd.Obj 101) in
  let o3 = Fd.make_ofd ~oid:3 (Fd.Obj 102) in
  check_int "fd 0" 0 (Fd.install t o1);
  check_int "fd 1" 1 (Fd.install t o2);
  ignore (Fd.release t 0);
  check_int "reuses 0" 0 (Fd.install t o3)

let test_fd_dup_shares_offset () =
  let t = Fd.create_table () in
  let ofd = Fd.make_ofd ~oid:1 (Fd.Obj 100) in
  let fd = Fd.install t ofd in
  let fd2 = Option.get (Fd.dup t fd) in
  (Option.get (Fd.get t fd)).Fd.offset <- 42;
  check_int "offset shared through dup" 42 (Option.get (Fd.get t fd2)).Fd.offset;
  check_bool "release shared" true (Fd.release t fd = `Shared);
  check_bool "release last" true
    (match Fd.release t fd2 with `Last _ -> true | _ -> false)

let test_fd_fork_shares_and_cloexec () =
  let t = Fd.create_table () in
  let keep = Fd.make_ofd ~oid:1 (Fd.Obj 100) in
  let reaped = Fd.make_ofd ~oid:2 (Fd.Obj 101) in
  reaped.Fd.flags.Fd.cloexec <- true;
  let fd_keep = Fd.install t keep in
  let _fd_reaped = Fd.install t reaped in
  let child = Fd.fork_table t in
  check_bool "cloexec dropped" true (List.length (Fd.descriptors child) = 1);
  (Option.get (Fd.get child fd_keep)).Fd.offset <- 9;
  check_int "ofd shared across fork" 9 (Option.get (Fd.get t fd_keep)).Fd.offset

let test_fd_table_serialize_preserves_sharing () =
  let open Aurora_vfs in
  let t = Fd.create_table () in
  let v = Vnode.create Vnode.Reg in
  let file = Fd.make_ofd ~oid:1 (Fd.Vnode_file { vnode = v; append = true }) in
  file.Fd.offset <- 1234;
  let fd0 = Fd.install t file in
  let fd1 = Option.get (Fd.dup t fd0) in
  let pipe_end = Fd.make_ofd ~oid:2 ~role:`Pipe_read (Fd.Obj 50) in
  let _fd2 = Fd.install t pipe_end in
  let w = Serial.writer () in
  Fd.serialize_table t ~vid_of_vnode:(fun vn -> vn.Vnode.vid) w;
  let shared = Hashtbl.create 4 in
  let t' =
    Fd.deserialize_table
      (Serial.reader (Serial.contents w))
      ~vnode_of_vid:(fun _ -> v)
      ~shared
  in
  check_int "three descriptors" 3 (List.length (Fd.descriptors t'));
  let a = Option.get (Fd.get t' fd0) and b = Option.get (Fd.get t' fd1) in
  check_bool "dup sharing preserved" true (a == b);
  check_int "offset preserved" 1234 a.Fd.offset;
  check_bool "ext consistency default on" true a.Fd.flags.Fd.ext_consistency;
  (match (Option.get (Fd.get t' 2)).Fd.role with
   | `Pipe_read -> ()
   | _ -> Alcotest.fail "role lost");
  check_int "shared table carries both ofds" 2 (Hashtbl.length shared)

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_register_find () =
  let reg = Registry.create () in
  let oid = Registry.fresh_oid reg in
  let p = Pipe.create ~oid () in
  Registry.register reg (Registry.Kpipe p);
  check_bool "found as pipe" true (Registry.pipe reg oid <> None);
  check_bool "not a sem" true (Registry.sem reg oid = None);
  check_bool "duplicate rejected" true
    (try
       Registry.register reg (Registry.Kpipe p);
       false
     with Invalid_argument _ -> true);
  Registry.remove reg oid;
  check_int "removed" 0 (Registry.count reg)

let test_registry_stream_accessor () =
  let reg = Registry.create () in
  let u = Unixsock.create ~oid:(Registry.fresh_oid reg) () in
  let t = Unixsock.create ~oid:(Registry.fresh_oid reg) () in
  Registry.register reg (Registry.Kusock u);
  Registry.register reg (Registry.Ktcp t);
  check_bool "usock via stream" true (Registry.stream reg (Unixsock.oid u) <> None);
  check_bool "tcp via stream" true (Registry.stream reg (Unixsock.oid t) <> None);
  check_bool "tcp not a usock" true (Registry.usock reg (Unixsock.oid t) = None)

let test_registry_fold_deterministic () =
  let reg = Registry.create () in
  (* Register out of order; fold must visit by increasing oid. *)
  let s9 = Semaphore.create ~oid:9 ~name:"a" () in
  let s3 = Semaphore.create ~oid:3 ~name:"b" () in
  Registry.register reg (Registry.Ksem s9);
  Registry.register reg (Registry.Ksem s3);
  let order = Registry.fold reg ~init:[] ~f:(fun acc k -> Registry.kobj_oid k :: acc) in
  Alcotest.(check (list int)) "ascending" [ 9; 3 ] order;
  (* fresh_oid never collides with reserved ones *)
  check_bool "oid above reserved" true (Registry.fresh_oid reg > 9)

let test_registry_kobj_roundtrip () =
  let pool = Frame.create_pool () in
  let objs =
    [
      Registry.Kpipe (Pipe.create ~oid:1 ());
      Registry.Kusock (fst (Unixsock.socketpair ~oid_a:2 ~oid_b:3));
      Registry.Ktcp (Unixsock.create ~oid:4 ());
      Registry.Kshm (Shm.create ~oid:5 ~pool ~flavor:Shm.Sysv_shm ~name:"k" ~npages:2);
      Registry.Kmsgq (Msgq.create ~oid:6 ~key:"q" ());
      Registry.Ksem (Semaphore.create ~oid:7 ~name:"s" ());
      Registry.Kkq (Kqueue.create ~oid:8 ());
    ]
  in
  let restore_obj _ ~npages:_ = Vmobject.create ~pool Vmobject.Anonymous in
  List.iter
    (fun kobj ->
      let w = Serial.writer () in
      Registry.serialize_kobj kobj w;
      let kobj' =
        Registry.deserialize_kobj (Serial.reader (Serial.contents w)) ~restore_obj
      in
      check_int
        (Printf.sprintf "roundtrip oid for %s" (Registry.kobj_class kobj))
        (Registry.kobj_oid kobj) (Registry.kobj_oid kobj');
      check_str "class preserved" (Registry.kobj_class kobj) (Registry.kobj_class kobj'))
    objs

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "posix"
    [
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "corruption detection" `Quick test_serial_corrupt_detection;
          qt prop_serial_string_roundtrip;
          qt prop_serial_int_roundtrip;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "fifo order" `Quick test_fifo_order;
          Alcotest.test_case "capacity" `Quick test_fifo_capacity;
          Alcotest.test_case "peek" `Quick test_fifo_peek;
          Alcotest.test_case "serialize" `Quick test_fifo_serialize;
          qt prop_fifo_preserves_bytes;
        ] );
      ( "pipe",
        [
          Alcotest.test_case "read/write" `Quick test_pipe_basic;
          Alcotest.test_case "eof and epipe" `Quick test_pipe_eof_and_epipe;
          Alcotest.test_case "full pipe blocks" `Quick test_pipe_full;
          Alcotest.test_case "checkpoint roundtrip" `Quick test_pipe_serialize_roundtrip;
        ] );
      ( "unixsock",
        [
          Alcotest.test_case "socketpair transfer" `Quick test_usock_pair_transfer;
          Alcotest.test_case "close gives eof/reset" `Quick test_usock_close_eof;
          Alcotest.test_case "listen/accept" `Quick test_usock_listen_accept;
          Alcotest.test_case "backlog refusal" `Quick test_usock_backlog_refuses;
          Alcotest.test_case "checkpoint with in-flight data" `Quick
            test_usock_serialize_with_inflight;
        ] );
      ( "ipc-objects",
        [
          Alcotest.test_case "shm attach + roundtrip" `Quick test_shm_attach_serialize;
          Alcotest.test_case "msgq selective recv" `Quick test_msgq_selective_recv;
          Alcotest.test_case "msgq limits + roundtrip" `Quick test_msgq_limit_and_serialize;
          Alcotest.test_case "semaphore" `Quick test_semaphore;
          Alcotest.test_case "kqueue coalesce + roundtrip" `Quick
            test_kqueue_coalesce_and_roundtrip;
        ] );
      ( "netstack",
        [
          Alcotest.test_case "listen/connect/accept" `Quick test_netstack_connect;
          Alcotest.test_case "port conflicts + rebind" `Quick
            test_netstack_port_conflict_and_rebind;
        ] );
      ( "fd",
        [
          Alcotest.test_case "lowest free descriptor" `Quick test_fd_lowest_free;
          Alcotest.test_case "dup shares description" `Quick test_fd_dup_shares_offset;
          Alcotest.test_case "fork shares, cloexec drops" `Quick
            test_fd_fork_shares_and_cloexec;
          Alcotest.test_case "serialize preserves sharing" `Quick
            test_fd_table_serialize_preserves_sharing;
        ] );
      ( "registry",
        [
          Alcotest.test_case "register/find/remove" `Quick test_registry_register_find;
          Alcotest.test_case "stream accessor" `Quick test_registry_stream_accessor;
          Alcotest.test_case "fold deterministic" `Quick test_registry_fold_deterministic;
          Alcotest.test_case "all classes roundtrip" `Quick test_registry_kobj_roundtrip;
        ] );
    ]
