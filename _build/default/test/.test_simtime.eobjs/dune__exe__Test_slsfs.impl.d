test/test_slsfs.ml: Alcotest Aurora_device Aurora_objstore Aurora_simtime Aurora_slsfs Aurora_vfs Blockdev Bytes Clock List Memfs Option Profile Slsfs Store String Vnode
