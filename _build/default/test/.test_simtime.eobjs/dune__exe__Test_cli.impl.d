test/test_cli.ml: Alcotest Array Aurora_cli Buffer Bytes Filename Fun String Sys Unix
