test/test_objstore.mli:
