test/test_objstore.ml: Alcotest Alloc Aurora_device Aurora_objstore Aurora_simtime Blockdev Btree Clock Duration Fun Gen Hashtbl Int Int64 List Printf Profile QCheck QCheck_alcotest Store String
