test/test_posix.mli:
