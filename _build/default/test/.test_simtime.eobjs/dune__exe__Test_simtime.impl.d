test/test_simtime.ml: Alcotest Array Aurora_simtime Clock Duration Float Format Gen Int64 List Prng QCheck QCheck_alcotest Stats Tracelog
