test/test_sls.mli:
