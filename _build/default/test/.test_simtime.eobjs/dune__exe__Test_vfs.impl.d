test/test_vfs.ml: Alcotest Aurora_device Aurora_simtime Aurora_vfs Blockdev Bytes Char Clock Duration Gen Memfs Profile QCheck QCheck_alcotest String Vnode
