test/test_device.ml: Alcotest Aurora_device Aurora_simtime Blockdev Clock Costmodel Duration Format Gen Hashtbl Int64 List Netlink Profile QCheck QCheck_alcotest String
