test/test_slsfs.mli:
