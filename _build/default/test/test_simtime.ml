(* Unit and property tests for the simulated-time substrate:
   durations, clock, PRNG, statistics, trace log. *)

open Aurora_simtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let duration_t : Duration.t Alcotest.testable =
  Alcotest.testable Duration.pp Duration.equal

(* ------------------------------------------------------------------ *)
(* Duration                                                            *)
(* ------------------------------------------------------------------ *)

let test_duration_units () =
  check_int "us" 1_000 (Duration.to_ns (Duration.microseconds 1));
  check_int "ms" 1_000_000 (Duration.to_ns (Duration.milliseconds 1));
  check_int "s" 1_000_000_000 (Duration.to_ns (Duration.seconds 1));
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (Duration.to_us (Duration.nanoseconds 2_500))

let test_duration_arith () =
  let a = Duration.microseconds 5 and b = Duration.microseconds 3 in
  Alcotest.check duration_t "add" (Duration.microseconds 8) (Duration.add a b);
  Alcotest.check duration_t "sub" (Duration.microseconds 2) (Duration.sub a b);
  Alcotest.check duration_t "sub saturates" Duration.zero (Duration.sub b a);
  Alcotest.check duration_t "scale" (Duration.microseconds 15) (Duration.scale a 3);
  Alcotest.check duration_t "div" (Duration.nanoseconds 2_500) (Duration.div a 2)

let test_duration_float_conv () =
  Alcotest.check duration_t "of_us_float rounds"
    (Duration.nanoseconds 9_800)
    (Duration.of_us_float 9.8);
  Alcotest.check duration_t "of_sec_float"
    (Duration.milliseconds 1)
    (Duration.of_sec_float 0.001);
  Alcotest.check duration_t "scale_float"
    (Duration.nanoseconds 1_500)
    (Duration.scale_float (Duration.microseconds 1) 1.5)

let test_duration_invalid () =
  Alcotest.check_raises "negative ns" (Invalid_argument "Duration.nanoseconds: negative")
    (fun () -> ignore (Duration.nanoseconds (-1)));
  Alcotest.check_raises "negative float"
    (Invalid_argument "Duration.of_us_float: negative or non-finite")
    (fun () -> ignore (Duration.of_us_float (-1.0)))

let test_duration_compare () =
  let a = Duration.microseconds 1 and b = Duration.microseconds 2 in
  check_bool "lt" true Duration.(a < b);
  check_bool "le" true Duration.(a <= a);
  check_bool "gt" true Duration.(b > a);
  Alcotest.check duration_t "min" a (Duration.min a b);
  Alcotest.check duration_t "max" b (Duration.max a b)

let test_duration_pp () =
  Alcotest.(check string) "us table format" "950.8"
    (Format.asprintf "%a" Duration.pp_us (Duration.nanoseconds 950_800));
  Alcotest.(check string) "adaptive ms" "5.414ms"
    (Format.asprintf "%a" Duration.pp (Duration.of_us_float 5413.8))

let prop_duration_add_assoc =
  QCheck.Test.make ~name:"duration add is associative/commutative"
    QCheck.(triple (int_bound 1_000_000) (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b, c) ->
      let d = Duration.nanoseconds in
      Duration.equal
        (Duration.add (d a) (Duration.add (d b) (d c)))
        (Duration.add (Duration.add (d a) (d b)) (d c))
      && Duration.equal (Duration.add (d a) (d b)) (Duration.add (d b) (d a)))

let prop_duration_sub_saturates =
  QCheck.Test.make ~name:"duration sub never negative"
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (a, b) ->
      let d = Duration.nanoseconds in
      Duration.to_ns (Duration.sub (d a) (d b)) >= 0)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_advance () =
  let c = Clock.create () in
  Alcotest.check duration_t "starts at zero" Duration.zero (Clock.now c);
  Clock.advance c (Duration.microseconds 10);
  Alcotest.check duration_t "advanced" (Duration.microseconds 10) (Clock.now c)

let test_clock_advance_to () =
  let c = Clock.create () in
  Clock.advance_to c (Duration.microseconds 5);
  Clock.advance_to c (Duration.microseconds 3); (* in the past: no-op *)
  Alcotest.check duration_t "monotone" (Duration.microseconds 5) (Clock.now c)

let test_clock_lap () =
  let c = Clock.create () in
  Clock.advance c (Duration.microseconds 100);
  let result, elapsed =
    Clock.lap c (fun () ->
        Clock.advance c (Duration.microseconds 7);
        42)
  in
  check_int "result" 42 result;
  Alcotest.check duration_t "elapsed" (Duration.microseconds 7) elapsed

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    check_bool "same stream" true (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b))
  done

let test_prng_split_independent () =
  let parent = Prng.create ~seed:7L in
  let child = Prng.split parent in
  let x = Prng.next_int64 child in
  (* A replayed parent yields the same child stream. *)
  let parent' = Prng.create ~seed:7L in
  let child' = Prng.split parent' in
  check_bool "split deterministic" true (Int64.equal x (Prng.next_int64 child'))

let test_prng_int_bounds () =
  let t = Prng.create ~seed:1L in
  for _ = 1 to 1_000 do
    let x = Prng.int t 17 in
    check_bool "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (Prng.int t 0))

let test_prng_zipf_skew () =
  (* With theta=0.99, the most popular item dominates a uniform draw. *)
  let t = Prng.create ~seed:3L in
  let n = 1000 and draws = 20_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Prng.zipf t ~n ~theta:0.99 in
    check_bool "zipf in range" true (k >= 0 && k < n);
    counts.(k) <- counts.(k) + 1
  done;
  let top = counts.(0) in
  check_bool "skewed head" true (top > draws / 20);
  (* theta = 0 degenerates to uniform: head should be near draws/n. *)
  let u = Prng.create ~seed:3L in
  let ucounts = Array.make n 0 in
  for _ = 1 to draws do
    let k = Prng.zipf u ~n ~theta:0.0 in
    ucounts.(k) <- ucounts.(k) + 1
  done;
  check_bool "uniform head is small" true (ucounts.(0) < draws / 100)

let test_prng_shuffle_permutes () =
  let t = Prng.create ~seed:9L in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let prop_prng_float_range =
  QCheck.Test.make ~name:"prng float in [0,bound)"
    QCheck.(pair int64 (float_bound_exclusive 1000.0))
    (fun (seed, bound) ->
      QCheck.assume (bound > 0.0);
      let t = Prng.create ~seed in
      let x = Prng.float t bound in
      x >= 0.0 && x < bound)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "count" 5 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.max_value s);
  Alcotest.(check (float 1e-9)) "total" 15.0 (Stats.total s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 1.5)) "p99" 99.0 (Stats.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.0)

let test_stats_empty () =
  let s = Stats.create () in
  check_bool "mean nan" true (Float.is_nan (Stats.mean s));
  check_bool "median nan" true (Float.is_nan (Stats.median s))

let test_stats_duration () =
  let s = Stats.create () in
  Stats.add_duration s (Duration.microseconds 250);
  Alcotest.(check (float 1e-9)) "recorded as us" 250.0 (Stats.mean s)

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean between min and max"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min_value s -. 1e-9
      && Stats.mean s <= Stats.max_value s +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Tracelog                                                            *)
(* ------------------------------------------------------------------ *)

let test_trace_order () =
  let clock = Clock.create () in
  let log = Tracelog.create clock in
  Tracelog.record log ~subsystem:"a" "first";
  Clock.advance clock (Duration.microseconds 1);
  Tracelog.record log ~subsystem:"b" "second";
  match Tracelog.events log with
  | [ e1; e2 ] ->
    Alcotest.(check string) "first msg" "first" e1.Tracelog.message;
    Alcotest.(check string) "second msg" "second" e2.Tracelog.message;
    check_bool "time order" true Duration.(e1.Tracelog.at <= e2.Tracelog.at)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_trace_find () =
  let clock = Clock.create () in
  let log = Tracelog.create clock in
  Tracelog.recordf log ~subsystem:"ckpt" "generation %d durable" 7;
  check_bool "found" true
    (Tracelog.find log ~subsystem:"ckpt" ~substring:"generation 7" <> None);
  check_bool "wrong subsystem" true
    (Tracelog.find log ~subsystem:"vm" ~substring:"generation 7" = None)

let test_trace_ring_overflow () =
  let clock = Clock.create () in
  let log = Tracelog.create ~capacity:4 clock in
  for i = 1 to 10 do
    Tracelog.recordf log ~subsystem:"x" "event %d" i
  done;
  let evs = Tracelog.events log in
  check_int "keeps capacity" 4 (List.length evs);
  match evs with
  | first :: _ -> Alcotest.(check string) "oldest kept" "event 7" first.Tracelog.message
  | [] -> Alcotest.fail "empty"

let test_trace_clear () =
  let clock = Clock.create () in
  let log = Tracelog.create clock in
  Tracelog.record log ~subsystem:"x" "e";
  Tracelog.clear log;
  check_int "cleared" 0 (List.length (Tracelog.events log))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "simtime"
    [
      ( "duration",
        [
          Alcotest.test_case "units" `Quick test_duration_units;
          Alcotest.test_case "arithmetic" `Quick test_duration_arith;
          Alcotest.test_case "float conversions" `Quick test_duration_float_conv;
          Alcotest.test_case "invalid inputs" `Quick test_duration_invalid;
          Alcotest.test_case "comparisons" `Quick test_duration_compare;
          Alcotest.test_case "formatting" `Quick test_duration_pp;
          qt prop_duration_add_assoc;
          qt prop_duration_sub_saturates;
        ] );
      ( "clock",
        [
          Alcotest.test_case "advance" `Quick test_clock_advance;
          Alcotest.test_case "advance_to is monotone" `Quick test_clock_advance_to;
          Alcotest.test_case "lap" `Quick test_clock_lap;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          qt prop_prng_float_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "durations in us" `Quick test_stats_duration;
          qt prop_stats_mean_bounded;
        ] );
      ( "tracelog",
        [
          Alcotest.test_case "ordering" `Quick test_trace_order;
          Alcotest.test_case "find" `Quick test_trace_find;
          Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow;
          Alcotest.test_case "clear" `Quick test_trace_clear;
        ] );
    ]
