(* Tests for the application layer: workload purity, the KV store's
   three persistence modes (including crash-recovery equality and the
   fork-snapshot path), the LSM tree's WAL/manifest machinery, the
   serverless runtime, and record/replay over rollback. *)

open Aurora_simtime
open Aurora_proc
open Aurora_sls
open Aurora_apps

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)
(* ------------------------------------------------------------------ *)

let test_workload_pure () =
  let spec = Workload.read_heavy ~nkeys:10_000 in
  for opnum = 0 to 500 do
    let a = Workload.op_of spec ~opnum in
    let b = Workload.op_of spec ~opnum in
    check_bool "pure function" true (a = b)
  done

let test_workload_bounds_and_mix () =
  let spec = Workload.read_heavy ~nkeys:1_000 in
  let writes = ref 0 and hot = ref 0 in
  let n = 20_000 in
  for opnum = 0 to n - 1 do
    let kind, key, _ = Workload.op_of spec ~opnum in
    check_bool "key in range" true (key >= 0 && key < 1_000);
    if Workload.is_write kind then incr writes;
    if key < 200 then incr hot
  done;
  (* ~10% writes, ~80%+ hot accesses. *)
  check_bool "write ratio" true (!writes > n / 20 && !writes < n / 5);
  check_bool "hot skew" true (!hot > n * 7 / 10)

let test_workload_page_mapping () =
  check_int "key 0" 0 (Workload.page_of_key 0);
  check_int "key 511 same page" 0 (Workload.page_of_key 511);
  check_int "key 512 next page" 1 (Workload.page_of_key 512);
  check_int "offset" 8 (Workload.offset_of_key 513);
  check_int "pages for 1000 keys" 2
    (Workload.pages_needed (Workload.uniform_5050 ~nkeys:1000))

(* ------------------------------------------------------------------ *)
(* KV store                                                            *)
(* ------------------------------------------------------------------ *)

let run_kv_ops m p ~until_ops =
  let k = m.Machine.kernel in
  let guard = ref 0 in
  while Kvstore.ops_done p < until_ops && !guard < 2_000_000 do
    ignore (Scheduler.step_all k);
    incr guard
  done;
  check_bool "made progress" true (Kvstore.ops_done p >= until_ops)

let test_kv_ephemeral_runs () =
  let m = Machine.create () in
  let c = Kvstore.default_config ~nkeys:4096 () in
  let p = Kvstore.spawn m.Machine.kernel { c with Kvstore.ops_limit = 2_000 } in
  Machine.run_until_idle m;
  check_int "completed all ops" 2_000 (Kvstore.ops_done p);
  check_int "clean exit" 0 (Option.get p.Process.exit_status)

let test_kv_wal_crash_recovery_equality () =
  (* Run with WAL persistence, crash, recover in a new process: the
     data region must be bit-identical. *)
  let m = Machine.create ~fs_with_disk:true () in
  let k = m.Machine.kernel in
  let cfg =
    { (Kvstore.default_config ~mode:Kvstore.Wal ~nkeys:2048 ()) with
      Kvstore.ops_limit = 0; snapshot_every = 0 (* no fork snapshots here *);
      fsync_every = 1 }
  in
  let p = Kvstore.spawn k cfg in
  run_kv_ops m p ~until_ops:1_500;
  let digest_before = Kvstore.region_digest k p cfg in
  let ops_before = Kvstore.ops_done p in
  (* Power failure: the process dies, memory is gone, the fsynced WAL
     survives. *)
  Syscall.exit_process k p 137;
  Kernel.remove_proc k p.Process.pid;
  Aurora_vfs.Memfs.crash k.Kernel.fs;
  let p' = Kvstore.spawn k ~recover:true cfg in
  (* Let recovery run (pc 0 does the whole replay in one step). The
     recovered cursor lands at the last logged mutation — trailing
     reads are not in the log (exactly like AOF replay) — so it may
     trail the pre-crash op count by a few read-only operations. *)
  ignore (Scheduler.step_all k);
  check_bool "op counter recovered to the last mutation" true
    (let r = Kvstore.ops_done p' in
     r <= ops_before && r > ops_before - 64);
  check_bool "region identical after recovery" true
    (Int64.equal digest_before (Kvstore.region_digest k p' cfg))

let test_kv_fork_snapshot_cycle () =
  (* Fork-snapshot + truncated WAL: recovery uses snapshot + tail. *)
  let m = Machine.create ~fs_with_disk:true () in
  let k = m.Machine.kernel in
  let cfg =
    { (Kvstore.default_config ~mode:Kvstore.Wal ~nkeys:1024 ()) with
      Kvstore.snapshot_every = 400; fsync_every = 1; ops_per_step = 16 }
  in
  let p = Kvstore.spawn k cfg in
  run_kv_ops m p ~until_ops:1_400;
  (* Let snapshot children finish and be reaped. *)
  Machine.run m (Duration.milliseconds 50);
  check_bool "snapshot file exists" true
    (Aurora_vfs.Memfs.lookup_opt k.Kernel.fs Kvstore.snapshot_path <> None);
  let digest_before = Kvstore.region_digest k p cfg in
  let ops_before = Kvstore.ops_done p in
  Syscall.exit_process k p 137;
  Kernel.remove_proc k p.Process.pid;
  Aurora_vfs.Memfs.crash k.Kernel.fs;
  let p' = Kvstore.spawn k ~recover:true cfg in
  ignore (Scheduler.step_all k);
  check_bool "ops recovered via snapshot+wal" true
    (let r = Kvstore.ops_done p' in
     r <= ops_before && r > ops_before - 64);
  check_bool "region identical" true
    (Int64.equal digest_before (Kvstore.region_digest k p' cfg))

let test_kv_aurora_mode_recovery () =
  (* The Aurora port: ntflush log + SLS restore + repair replay. *)
  let m = Machine.create () in
  Machine.enable_sls_calls m;
  let k = m.Machine.kernel in
  let container = Kernel.new_container k ~name:"redis" in
  let cfg =
    { (Kvstore.default_config ~mode:Kvstore.Aurora ~nkeys:1024 ()) with
      Kvstore.ops_per_step = 8 }
  in
  let p = Kvstore.spawn k ~container:container.Container.cid cfg in
  let g = Machine.persist m (`Container container.Container.cid) in
  run_kv_ops m p ~until_ops:200;
  (* Checkpoint covers ops < 200... *)
  let b = Machine.checkpoint_now m g () in
  Api.sls_log_truncate m g;
  ignore b;
  (* ...then more ops arrive, each ntflushed. *)
  run_kv_ops m p ~until_ops:280;
  (* Wait until the device queue is empty so every micro-generation is
     durable (the app keeps serving meanwhile), then capture the
     pre-crash state. *)
  Machine.drain_storage m;
  let digest_before = Kvstore.region_digest k p cfg in
  let ops_before = Kvstore.ops_done p in
  Machine.crash m;
  let m' = Machine.recover m in
  Machine.enable_sls_calls m';
  let g' = Machine.persist m' (`Container container.Container.cid) in
  let pids, _ = Machine.restore_group m' g' () in
  let p' = Kernel.proc_exn m'.Machine.kernel (List.hd pids) in
  (* The restored image is at the checkpoint; repair replays the log
     tail. *)
  Kvstore.repair_after_restore p';
  ignore (Scheduler.step_all m'.Machine.kernel);
  check_bool "ops repaired to the last logged mutation" true
    (let r = Kvstore.ops_done p' in
     r <= ops_before && r > ops_before - 64);
  check_bool "region identical after sls recovery" true
    (Int64.equal digest_before (Kvstore.region_digest m'.Machine.kernel p' cfg))

let test_kv_server_roundtrip () =
  let m = Machine.create () in
  let k = m.Machine.kernel in
  let cfg = Kvstore.default_config ~nkeys:512 () in
  let _server, client, fd = Kvstore.spawn_server_pair k cfg in
  Kvstore.client_request k client ~fd ~opnum:42;
  ignore (Scheduler.run_until_idle k ());
  match Kvstore.client_reply k client ~fd with
  | Some reply -> check_int "8-byte reply" 8 (String.length reply)
  | None -> Alcotest.fail "no reply from kv server"

(* ------------------------------------------------------------------ *)
(* LSM tree                                                            *)
(* ------------------------------------------------------------------ *)

let lsm_fixture () =
  let m = Machine.create ~fs_with_disk:true () in
  let k = m.Machine.kernel in
  let p = Kernel.spawn k ~name:"db" ~program:"aurora/kv-client" () in
  (m, k, p)

let test_lsm_put_get_delete () =
  let _, k, p = lsm_fixture () in
  let t = Lsmtree.create k p ~dir:"/db" ~memtable_limit:4 Lsmtree.Wal_fsync in
  Lsmtree.put t ~key:"alpha" ~value:"1";
  Lsmtree.put t ~key:"beta" ~value:"2";
  Alcotest.(check (option string)) "get hit" (Some "1") (Lsmtree.get t ~key:"alpha");
  Alcotest.(check (option string)) "get miss" None (Lsmtree.get t ~key:"gamma");
  Lsmtree.delete t ~key:"alpha";
  Alcotest.(check (option string)) "deleted" None (Lsmtree.get t ~key:"alpha");
  Lsmtree.put t ~key:"beta" ~value:"2b";
  Alcotest.(check (option string)) "overwrite" (Some "2b") (Lsmtree.get t ~key:"beta")

let test_lsm_flush_and_levels () =
  let _, k, p = lsm_fixture () in
  let t = Lsmtree.create k p ~dir:"/db" ~memtable_limit:4 Lsmtree.Wal_fsync in
  for i = 0 to 19 do
    Lsmtree.put t ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  check_bool "tables flushed" true (Lsmtree.sstable_count t >= 4);
  (* Reads hit older levels. *)
  Alcotest.(check (option string)) "old key from sstable" (Some "0")
    (Lsmtree.get t ~key:"k000");
  check_int "twenty live entries" 20 (List.length (Lsmtree.entries t))

let test_lsm_compaction () =
  let _, k, p = lsm_fixture () in
  let t = Lsmtree.create k p ~dir:"/db" ~memtable_limit:4 Lsmtree.Wal_fsync in
  for i = 0 to 19 do
    Lsmtree.put t ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  Lsmtree.delete t ~key:"k005";
  let before = Lsmtree.entries t in
  Lsmtree.compact t;
  check_int "single table after compaction" 1 (Lsmtree.sstable_count t);
  check_bool "contents preserved" true (Lsmtree.entries t = before);
  Alcotest.(check (option string)) "tombstone applied" None (Lsmtree.get t ~key:"k005")

let test_lsm_wal_crash_recovery () =
  let _, k, p = lsm_fixture () in
  let t = Lsmtree.create k p ~dir:"/db" ~memtable_limit:100 Lsmtree.Wal_fsync in
  for i = 0 to 9 do
    Lsmtree.put t ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int (i * i))
  done;
  Lsmtree.delete t ~key:"k3";
  let before = Lsmtree.entries t in
  (* Everything is in the memtable; the fsynced WAL is the only
     durable copy. *)
  check_int "nothing flushed" 0 (Lsmtree.sstable_count t);
  Aurora_vfs.Memfs.crash k.Kernel.fs;
  let t' = Lsmtree.recover k p ~dir:"/db" Lsmtree.Wal_fsync in
  check_bool "recovered equals pre-crash" true (Lsmtree.entries t' = before)

let test_lsm_flush_then_crash_recovery () =
  let _, k, p = lsm_fixture () in
  let t = Lsmtree.create k p ~dir:"/db" ~memtable_limit:4 Lsmtree.Wal_fsync in
  for i = 0 to 10 do
    Lsmtree.put t ~key:(Printf.sprintf "k%02d" i) ~value:(string_of_int i)
  done;
  let before = Lsmtree.entries t in
  Aurora_vfs.Memfs.crash k.Kernel.fs;
  let t' = Lsmtree.recover k p ~dir:"/db" Lsmtree.Wal_fsync in
  check_bool "tables + wal tail recovered" true (Lsmtree.entries t' = before)

let test_lsm_aurora_port_recovery () =
  let m = Machine.create () in
  Machine.enable_sls_calls m;
  let k = m.Machine.kernel in
  let container = Kernel.new_container k ~name:"rocks" in
  let p =
    Kernel.spawn k ~container:container.Container.cid ~name:"db"
      ~program:"aurora/kv-client" ()
  in
  let _g = Machine.persist m (`Container container.Container.cid) in
  let t = Lsmtree.create k p ~dir:"/db" ~memtable_limit:100 Lsmtree.Aurora_log in
  for i = 0 to 9 do
    Lsmtree.put t ~key:(Printf.sprintf "k%d" i) ~value:(string_of_int i)
  done;
  let before = Lsmtree.entries t in
  (* No fsync ever happened; durability came from sls_ntflush. Wait
     out the device, then rebuild from the SLS log. *)
  Machine.run m (Duration.milliseconds 2);
  let t' = Lsmtree.recover k p ~dir:"/db" Lsmtree.Aurora_log in
  check_bool "aurora log recovery equals pre-crash" true (Lsmtree.entries t' = before)

(* ------------------------------------------------------------------ *)
(* Serverless                                                          *)
(* ------------------------------------------------------------------ *)

let test_serverless_invoke () =
  let m = Machine.create () in
  let k = m.Machine.kernel in
  let inst = Serverless.spawn k (Serverless.default_config ()) in
  ignore (Scheduler.run_until_idle k ());
  check_bool "initialized" true (Serverless.initialized inst.Serverless.func);
  Serverless.invoke k inst ~id:1;
  Serverless.invoke k inst ~id:2;
  ignore (Scheduler.run_until_idle k ());
  check_int "two invocations" 2 (Serverless.invocations inst.Serverless.func);
  check_bool "reply arrived" true (Serverless.reply k inst <> None)

let test_serverless_warm_start_clone () =
  let m = Machine.create () in
  let k = m.Machine.kernel in
  let container = Kernel.new_container k ~name:"fn" in
  let inst =
    Serverless.spawn k ~container:container.Container.cid
      (Serverless.default_config ())
  in
  ignore (Scheduler.run_until_idle k ());
  let g = Machine.persist m (`Container container.Container.cid) in
  ignore (Machine.checkpoint_now m g ());
  (* Scale out: clone three instances from the image. *)
  let clones =
    List.init 3 (fun _ ->
        let pids, _ = Machine.clone_group m g () in
        List.hd pids)
  in
  List.iter
    (fun pid ->
      match Serverless.wire_restored k ~func_pid:pid with
      | None -> Alcotest.fail "clone vanished"
      | Some clone ->
        Serverless.invoke k clone ~id:7;
        ignore (Scheduler.run_until_idle k ());
        check_bool
          (Printf.sprintf "clone %d handled an invocation" pid)
          true
          (Serverless.invocations clone.Serverless.func
           > Serverless.invocations inst.Serverless.func - 1))
    clones;
  (* Dedup: a second, different function checkpoints into the same
     store; its runtime pages are identical to the first function's
     and must dedup away. *)
  let container2 = Kernel.new_container k ~name:"fn2" in
  let inst2 =
    Serverless.spawn k ~container:container2.Container.cid
      (Serverless.default_config ~func_id:1 ())
  in
  ignore inst2;
  ignore (Scheduler.run_until_idle k ());
  let g2 = Machine.persist m (`Container container2.Container.cid) in
  let hits_before =
    (Aurora_objstore.Store.stats m.Machine.disk_store).Aurora_objstore.Store.dedup_hits
  in
  ignore (Machine.checkpoint_now m g2 ());
  let hits_after =
    (Aurora_objstore.Store.stats m.Machine.disk_store).Aurora_objstore.Store.dedup_hits
  in
  let runtime_pages = (Serverless.default_config ()).Serverless.runtime_pages in
  check_bool "runtime pages deduplicated across functions" true
    (hits_after - hits_before >= runtime_pages)

(* ------------------------------------------------------------------ *)
(* Record/replay                                                       *)
(* ------------------------------------------------------------------ *)

let test_recreplay_reproduces_state () =
  let m = Machine.create () in
  let k = m.Machine.kernel in
  let container = Kernel.new_container k ~name:"svc" in
  let cfg = Kvstore.default_config ~nkeys:512 () in
  let server =
    Kernel.spawn k ~container:container.Container.cid ~name:"kv-server"
      ~program:"aurora/kv-server" ()
  in
  let client = Kernel.spawn k ~name:"cli" ~program:"aurora/kv-client" () in
  let sfd, cfd = Syscall.socketpair k server in
  let c_ofd = Option.get (Aurora_posix.Fd.get server.Process.fdtable cfd) in
  c_ofd.Aurora_posix.Fd.refcount <- c_ofd.Aurora_posix.Fd.refcount + 1;
  let client_fd = Aurora_posix.Fd.install client.Process.fdtable c_ofd in
  ignore (Aurora_posix.Fd.release server.Process.fdtable cfd);
  Kvstore.spawn_server k cfg ~fd:sfd server;
  (* The server replies cross the group boundary; disable external
     consistency on its socket so replay comparisons see results
     immediately. *)
  Api.sls_fdctl server ~fd:sfd ~ext_consistency:false;
  let g = Machine.persist m (`Container container.Container.cid) in
  let rr = Recreplay.create m g in
  let deliver opnum_s =
    Kvstore.client_request k client ~fd:client_fd ~opnum:(int_of_string opnum_s);
    ignore (Scheduler.run_until_idle k ());
    ignore (Kvstore.client_reply k client ~fd:client_fd)
  in
  (* Checkpoint the quiescent server, then feed recorded inputs. *)
  ignore (Scheduler.run_until_idle k ());
  ignore (Machine.checkpoint_now m g ());
  Recreplay.on_checkpoint rr;
  List.iter
    (fun i ->
      Recreplay.record_input rr (string_of_int i);
      deliver (string_of_int i))
    [ 3; 14; 15; 92; 65 ];
  check_int "five records" 5 (Recreplay.log_length rr);
  let digest_before = Kvstore.region_digest k server cfg in
  let ops_before = Kvstore.ops_done server in
  (* Roll back and replay: state must reproduce exactly. *)
  let replayed = Recreplay.rollback_and_replay rr ~deliver in
  check_int "replayed all" 5 replayed;
  let server' = Kernel.proc_exn k server.Process.pid in
  check_int "op count reproduced" ops_before (Kvstore.ops_done server');
  check_bool "state bit-identical" true
    (Int64.equal digest_before (Kvstore.region_digest k server' cfg))



let test_lsm_auto_compaction_bounds_tables () =
  let _, k, p = lsm_fixture () in
  let t =
    Lsmtree.create k p ~dir:"/db" ~memtable_limit:2 ~compaction_threshold:4
      Lsmtree.Wal_fsync
  in
  for i = 0 to 99 do
    Lsmtree.put t ~key:(Printf.sprintf "k%03d" i) ~value:(string_of_int i)
  done;
  check_bool "table count bounded by auto-compaction" true
    (Lsmtree.sstable_count t <= 5);
  check_int "all entries live" 100 (List.length (Lsmtree.entries t))

(* Model-based LSM property: random operation sequences, interleaved
   with flushes, compactions and crash/recover cycles, always agree
   with a plain map. *)
type lsm_op =
  | L_put of int * string
  | L_del of int
  | L_flush
  | L_compact
  | L_crash_recover

let lsm_op_gen =
  let open QCheck.Gen in
  frequency
    [
      (8, map2 (fun k v -> L_put (k mod 20, v))
           small_nat (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)));
      (3, map (fun k -> L_del (k mod 20)) small_nat);
      (2, return L_flush);
      (1, return L_compact);
      (2, return L_crash_recover);
    ]

let pp_lsm_op = function
  | L_put (k, v) -> Printf.sprintf "put k%d=%s" k v
  | L_del k -> Printf.sprintf "del k%d" k
  | L_flush -> "flush"
  | L_compact -> "compact"
  | L_crash_recover -> "crash+recover"

let prop_lsm_matches_model =
  QCheck.Test.make ~name:"lsm agrees with a model map across crashes" ~count:40
    (QCheck.make
       ~print:(fun ops -> String.concat "; " (List.map pp_lsm_op ops))
       QCheck.Gen.(list_size (int_range 1 60) lsm_op_gen))
    (fun ops ->
      let _, k, p = lsm_fixture () in
      let t = ref (Lsmtree.create k p ~dir:"/db" ~memtable_limit:5 Lsmtree.Wal_fsync) in
      let model = Hashtbl.create 16 in
      let key i = Printf.sprintf "k%02d" i in
      List.iter
        (fun op ->
          match op with
          | L_put (i, v) ->
            Hashtbl.replace model (key i) v;
            Lsmtree.put !t ~key:(key i) ~value:v
          | L_del i ->
            Hashtbl.remove model (key i);
            Lsmtree.delete !t ~key:(key i)
          | L_flush -> Lsmtree.flush_memtable !t
          | L_compact -> Lsmtree.compact !t
          | L_crash_recover ->
            Aurora_vfs.Memfs.crash k.Kernel.fs;
            t := Lsmtree.recover k p ~dir:"/db" Lsmtree.Wal_fsync)
        ops;
      let expected =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      if Lsmtree.entries !t = expected then true
      else
        QCheck.Test.fail_reportf "lsm diverged from model:@.lsm   %s@.model %s"
          (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) (Lsmtree.entries !t)))
          (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) expected)))

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "apps"
    [
      ( "workload",
        [
          Alcotest.test_case "pure" `Quick test_workload_pure;
          Alcotest.test_case "bounds and mix" `Quick test_workload_bounds_and_mix;
          Alcotest.test_case "page mapping" `Quick test_workload_page_mapping;
        ] );
      ( "kvstore",
        [
          Alcotest.test_case "ephemeral run" `Quick test_kv_ephemeral_runs;
          Alcotest.test_case "wal crash recovery equality" `Quick
            test_kv_wal_crash_recovery_equality;
          Alcotest.test_case "fork-snapshot cycle" `Quick test_kv_fork_snapshot_cycle;
          Alcotest.test_case "aurora-port recovery" `Quick test_kv_aurora_mode_recovery;
          Alcotest.test_case "served requests" `Quick test_kv_server_roundtrip;
        ] );
      ( "lsmtree",
        [
          Alcotest.test_case "put/get/delete" `Quick test_lsm_put_get_delete;
          Alcotest.test_case "flush and levels" `Quick test_lsm_flush_and_levels;
          Alcotest.test_case "compaction" `Quick test_lsm_compaction;
          Alcotest.test_case "wal crash recovery" `Quick test_lsm_wal_crash_recovery;
          Alcotest.test_case "flush + wal tail recovery" `Quick
            test_lsm_flush_then_crash_recovery;
          Alcotest.test_case "aurora-port recovery" `Quick test_lsm_aurora_port_recovery;
          Alcotest.test_case "auto-compaction bounds tables" `Quick
            test_lsm_auto_compaction_bounds_tables;
          qt prop_lsm_matches_model;
        ] );
      ( "serverless",
        [
          Alcotest.test_case "init + invoke" `Quick test_serverless_invoke;
          Alcotest.test_case "warm-start clones" `Quick test_serverless_warm_start_clone;
        ] );
      ( "recreplay",
        [
          Alcotest.test_case "rollback + replay reproduces state" `Quick
            test_recreplay_reproduces_state;
        ] );
    ]
