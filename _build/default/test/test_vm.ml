(* Tests for the VM subsystem: page contents, frames, Mach-style
   objects with shadow chains, fork COW, Aurora's checkpoint COW with
   object-level dirty tracking, the clock algorithm, and swap. *)

open Aurora_simtime
open Aurora_device
open Aurora_vm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let content_t : Content.t Alcotest.testable = Alcotest.testable Content.pp Content.equal

let mkmap ?capacity_pages () =
  let clock = Clock.create () in
  let pool = Frame.create_pool ?capacity_pages () in
  (clock, pool, Vmmap.create ~clock ~pool ())

(* ------------------------------------------------------------------ *)
(* Content                                                             *)
(* ------------------------------------------------------------------ *)

let test_content_write_changes () =
  let c = Content.zero in
  let c' = Content.write c ~offset:0 ~value:1L in
  check_bool "changed" false (Content.equal c c');
  check_bool "zero detection" true (Content.is_zero c);
  check_bool "nonzero" false (Content.is_zero c')

let test_content_deterministic () =
  let a = Content.write (Content.of_seed 5L) ~offset:8 ~value:99L in
  let b = Content.write (Content.of_seed 5L) ~offset:8 ~value:99L in
  Alcotest.check content_t "same writes same content" a b;
  check_bool "hash agrees" true (Int64.equal (Content.hash a) (Content.hash b))

let test_content_order_sensitive () =
  let base = Content.of_seed 1L in
  let ab =
    Content.write (Content.write base ~offset:0 ~value:1L) ~offset:8 ~value:2L
  in
  let ba =
    Content.write (Content.write base ~offset:8 ~value:2L) ~offset:0 ~value:1L
  in
  check_bool "order matters" false (Content.equal ab ba)

let test_content_bytes () =
  let b = Content.to_bytes Content.zero in
  check_int "page size" 4096 (Bytes.length b);
  check_bool "zero page is zeroes" true (Bytes.for_all (fun c -> c = '\000') b);
  let nz = Content.to_bytes (Content.of_seed 7L) in
  check_bool "nonzero differs" false (Bytes.equal b nz);
  check_bool "expansion deterministic" true
    (Bytes.equal nz (Content.to_bytes (Content.of_seed 7L)))

let test_content_offset_bounds () =
  check_bool "bad offset" true
    (try
       ignore (Content.write Content.zero ~offset:4096 ~value:0L);
       false
     with Invalid_argument _ -> true)

let prop_content_write_injective_ish =
  QCheck.Test.make ~name:"different values give different content"
    QCheck.(triple int64 int64 (int_bound 4095))
    (fun (v1, v2, off) ->
      QCheck.assume (not (Int64.equal v1 v2));
      let a = Content.write Content.zero ~offset:off ~value:v1 in
      let b = Content.write Content.zero ~offset:off ~value:v2 in
      not (Content.equal a b))

(* ------------------------------------------------------------------ *)
(* Frame pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_frame_refcounting () =
  let pool = Frame.create_pool () in
  let f = Frame.alloc pool Content.zero in
  check_int "resident" 1 (Frame.resident pool);
  Frame.incref f;
  Frame.decref pool f;
  check_int "still resident" 1 (Frame.resident pool);
  Frame.decref pool f;
  check_int "released" 0 (Frame.resident pool);
  check_bool "double free" true
    (try
       Frame.decref pool f;
       false
     with Invalid_argument _ -> true)

let test_frame_capacity_pressure () =
  let pool = Frame.create_pool ~capacity_pages:2 () in
  let _ = Frame.alloc pool Content.zero in
  let _ = Frame.alloc pool Content.zero in
  check_int "no pressure" 0 (Frame.over_capacity pool);
  let _ = Frame.alloc pool Content.zero in
  check_int "one over" 1 (Frame.over_capacity pool);
  check_int "total monotone" 3 (Frame.total_allocated pool)

(* ------------------------------------------------------------------ *)
(* Vmobject basics                                                     *)
(* ------------------------------------------------------------------ *)

let test_object_install_resolve () =
  let pool = Frame.create_pool () in
  let o = Vmobject.create ~pool Vmobject.Anonymous in
  let f = Frame.alloc pool (Content.of_seed 3L) in
  Vmobject.install o 5 f;
  (match Vmobject.resolve o 5 with
   | Vmobject.Found { owner; slot = Vmobject.Resident g } ->
     check_bool "owner is o" true (owner == o);
     check_bool "frame" true (g == f)
   | _ -> Alcotest.fail "expected resident");
  check_bool "absent elsewhere" true (Vmobject.resolve o 6 = Vmobject.Absent)

let test_object_shadow_resolution () =
  let pool = Frame.create_pool () in
  let base = Vmobject.create ~pool Vmobject.Anonymous in
  let f = Frame.alloc pool (Content.of_seed 11L) in
  Vmobject.install base 0 f;
  let shadow = Vmobject.make_shadow base in
  (match Vmobject.resolve shadow 0 with
   | Vmobject.Found { owner; _ } -> check_bool "resolves to base" true (owner == base)
   | Vmobject.Absent -> Alcotest.fail "chain walk failed");
  (* A page installed in the shadow occludes the base. *)
  let f2 = Frame.alloc pool (Content.of_seed 12L) in
  Vmobject.install shadow 0 f2;
  (match Vmobject.resolve shadow 0 with
   | Vmobject.Found { owner; _ } -> check_bool "shadow occludes" true (owner == shadow)
   | Vmobject.Absent -> Alcotest.fail "lost page");
  check_int "chain depth" 2 (Vmobject.chain_depth shadow)

let test_object_decref_releases_chain () =
  let pool = Frame.create_pool () in
  let base = Vmobject.create ~pool Vmobject.Anonymous in
  Vmobject.install base 0 (Frame.alloc pool Content.zero);
  let shadow = Vmobject.make_shadow base in
  Vmobject.install shadow 1 (Frame.alloc pool Content.zero);
  Vmobject.decref base; (* drop creator's ref; shadow still holds one *)
  check_int "still resident" 2 (Frame.resident pool);
  Vmobject.decref shadow;
  check_int "all released" 0 (Frame.resident pool)

let test_object_replace_releases_old () =
  let pool = Frame.create_pool () in
  let o = Vmobject.create ~pool Vmobject.Anonymous in
  Vmobject.install o 0 (Frame.alloc pool (Content.of_seed 1L));
  Vmobject.install o 0 (Frame.alloc pool (Content.of_seed 2L));
  check_int "old frame released" 1 (Frame.resident pool)

(* ------------------------------------------------------------------ *)
(* Checkpoint arming and Aurora COW                                    *)
(* ------------------------------------------------------------------ *)

let test_arm_full_captures_everything () =
  let pool = Frame.create_pool () in
  let o = Vmobject.create ~pool Vmobject.Anonymous in
  for i = 0 to 9 do
    Vmobject.install o i (Frame.alloc pool (Content.of_seed (Int64.of_int i)))
  done;
  let items = Vmobject.arm_for_checkpoint o ~mode:`Full in
  check_int "all captured" 10 (List.length items);
  check_int "all armed" 10 (Vmobject.armed_count o);
  check_int "dirty cleared" 0 (Vmobject.dirty_count o);
  List.iter (Vmobject.release_flush_item ~pool) items

let test_arm_dirty_only_captures_dirty () =
  let pool = Frame.create_pool () in
  let o = Vmobject.create ~pool Vmobject.Anonymous in
  for i = 0 to 9 do
    Vmobject.install o i (Frame.alloc pool (Content.of_seed (Int64.of_int i)));
    Vmobject.mark_dirty o i
  done;
  let first = Vmobject.arm_for_checkpoint o ~mode:`Dirty_only in
  check_int "first incremental = everything dirty" 10 (List.length first);
  List.iter (Vmobject.release_flush_item ~pool) first;
  (* Nothing dirty now: next incremental captures nothing. *)
  let second = Vmobject.arm_for_checkpoint o ~mode:`Dirty_only in
  check_int "clean incremental empty" 0 (List.length second);
  (* Dirty three pages; only they are captured. *)
  let f = Vmobject.disarm_for_write o 0 in
  ignore f;
  Vmobject.mark_dirty o 5 (* simulate an unarmed write *);
  let third = Vmobject.arm_for_checkpoint o ~mode:`Dirty_only in
  check_int "only dirtied captured" 2 (List.length third);
  List.iter (Vmobject.release_flush_item ~pool) third

let test_flush_item_keeps_frame_alive () =
  let pool = Frame.create_pool () in
  let o = Vmobject.create ~pool Vmobject.Anonymous in
  Vmobject.install o 0 (Frame.alloc pool (Content.of_seed 9L));
  let items = Vmobject.arm_for_checkpoint o ~mode:`Full in
  (* COW write replaces the page; the flusher's reference must keep the
     old frame's content stable. *)
  let fresh = Vmobject.disarm_for_write o 0 in
  fresh.Frame.content <- Content.write fresh.Frame.content ~offset:0 ~value:1L;
  (match items with
   | [ item ] ->
     Alcotest.check content_t "captured content unchanged" (Content.of_seed 9L)
       item.Vmobject.content;
     (match item.Vmobject.frame with
      | Some f ->
        Alcotest.check content_t "old frame intact" (Content.of_seed 9L)
          f.Frame.content
      | None -> Alcotest.fail "expected a frame capture");
     check_int "both frames resident" 2 (Frame.resident pool);
     Vmobject.release_flush_item ~pool item;
     check_int "old frame released after flush" 1 (Frame.resident pool)
   | _ -> Alcotest.fail "expected one item")

let test_disarm_requires_armed () =
  let pool = Frame.create_pool () in
  let o = Vmobject.create ~pool Vmobject.Anonymous in
  Vmobject.install o 0 (Frame.alloc pool Content.zero);
  check_bool "not armed" true
    (try
       ignore (Vmobject.disarm_for_write o 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Vmmap: mapping, faults, fork COW                                    *)
(* ------------------------------------------------------------------ *)

let test_map_read_write () =
  let _, _, m = mkmap () in
  let e = Vmmap.map_anonymous m ~npages:4 () in
  let vpn = e.Vmmap.start_vpn in
  Alcotest.check content_t "reads zero before write" Content.zero (Vmmap.read m ~vpn);
  Vmmap.write m ~vpn ~offset:0 ~value:42L;
  check_bool "nonzero after write" false (Content.is_zero (Vmmap.read m ~vpn));
  check_int "zero-fill fault counted" 1 (Vmmap.faults m).Vmmap.zero_fill

let test_map_unmapped_faults () =
  let _, _, m = mkmap () in
  check_bool "segv" true
    (try
       ignore (Vmmap.read m ~vpn:0);
       false
     with Vmmap.Fault _ -> true)

let test_map_readonly_faults () =
  let _, _, m = mkmap () in
  let e = Vmmap.map_anonymous m ~writable:false ~npages:1 () in
  check_bool "write to ro" true
    (try
       Vmmap.write m ~vpn:e.Vmmap.start_vpn ~offset:0 ~value:1L;
       false
     with Vmmap.Fault _ -> true)

let test_fork_cow_isolation () =
  let _, _, parent = mkmap () in
  let e = Vmmap.map_anonymous parent ~npages:2 () in
  let vpn = e.Vmmap.start_vpn in
  Vmmap.write parent ~vpn ~offset:0 ~value:1L;
  let before = Vmmap.read parent ~vpn in
  let child = Vmmap.fork parent in
  (* Child sees parent's page... *)
  Alcotest.check content_t "child inherits" before (Vmmap.read child ~vpn);
  (* ...child write does not affect parent... *)
  Vmmap.write child ~vpn ~offset:8 ~value:2L;
  Alcotest.check content_t "parent unchanged" before (Vmmap.read parent ~vpn);
  check_bool "child changed" false (Content.equal before (Vmmap.read child ~vpn));
  (* ...and parent write after fork does not affect child's snapshot. *)
  let child_view = Vmmap.read child ~vpn in
  Vmmap.write parent ~vpn ~offset:16 ~value:3L;
  Alcotest.check content_t "child isolated" child_view (Vmmap.read child ~vpn);
  check_bool "fork cow faults counted" true ((Vmmap.faults child).Vmmap.fork_cow >= 1)

let test_fork_shared_entry_shares () =
  let _, _, parent = mkmap () in
  let e = Vmmap.map_anonymous parent ~inheritance:`Share ~npages:1 () in
  let vpn = e.Vmmap.start_vpn in
  Vmmap.write parent ~vpn ~offset:0 ~value:1L;
  let child = Vmmap.fork parent in
  Vmmap.write child ~vpn ~offset:8 ~value:2L;
  Alcotest.check content_t "shared both ways" (Vmmap.read parent ~vpn)
    (Vmmap.read child ~vpn)

let test_shared_object_two_maps () =
  let clock = Clock.create () in
  let pool = Frame.create_pool () in
  let m1 = Vmmap.create ~clock ~pool () in
  let m2 = Vmmap.create ~clock ~pool () in
  let obj = Vmobject.create ~pool Vmobject.Anonymous in
  let e1 = Vmmap.map_object m1 ~obj ~obj_offset:0 ~npages:2 () in
  let e2 = Vmmap.map_object m2 ~obj ~obj_offset:0 ~npages:2 () in
  Vmobject.decref obj; (* creator's reference; maps hold their own *)
  Vmmap.write m1 ~vpn:e1.Vmmap.start_vpn ~offset:0 ~value:7L;
  Alcotest.check content_t "shm visible across processes"
    (Vmmap.read m1 ~vpn:e1.Vmmap.start_vpn)
    (Vmmap.read m2 ~vpn:e2.Vmmap.start_vpn)

let test_aurora_cow_preserves_sharing () =
  (* The paper's §3 scenario: two processes share memory; a checkpoint
     arms the page; a write by one process must produce a new page
     seen by BOTH (standard fork COW would privatize it). *)
  let clock = Clock.create () in
  let pool = Frame.create_pool () in
  let m1 = Vmmap.create ~clock ~pool () in
  let m2 = Vmmap.create ~clock ~pool () in
  let obj = Vmobject.create ~pool Vmobject.Anonymous in
  let e1 = Vmmap.map_object m1 ~obj ~obj_offset:0 ~npages:1 () in
  let e2 = Vmmap.map_object m2 ~obj ~obj_offset:0 ~npages:1 () in
  Vmmap.write m1 ~vpn:e1.Vmmap.start_vpn ~offset:0 ~value:1L;
  let items = Vmobject.arm_for_checkpoint obj ~mode:`Dirty_only in
  check_int "page captured" 1 (List.length items);
  (* Write from process 2 triggers Aurora COW. *)
  Vmmap.write m2 ~vpn:e2.Vmmap.start_vpn ~offset:8 ~value:2L;
  check_int "ckpt cow fault" 1 (Vmmap.faults m2).Vmmap.ckpt_cow;
  Alcotest.check content_t "process 1 sees process 2's write"
    (Vmmap.read m2 ~vpn:e2.Vmmap.start_vpn)
    (Vmmap.read m1 ~vpn:e1.Vmmap.start_vpn);
  (* And the captured content is the pre-write snapshot. *)
  (match items with
   | [ item ] ->
     check_bool "snapshot isolated" false
       (Content.equal item.Vmobject.content (Vmmap.read m1 ~vpn:e1.Vmmap.start_vpn));
     Vmobject.release_flush_item ~pool item
   | _ -> Alcotest.fail "one item");
  Vmobject.decref obj

let test_write_to_armed_charges_cow () =
  let clock, _, m = mkmap () in
  let e = Vmmap.map_anonymous m ~npages:1 () in
  let vpn = e.Vmmap.start_vpn in
  Vmmap.write m ~vpn ~offset:0 ~value:1L;
  let items = Vmobject.arm_for_checkpoint e.Vmmap.obj ~mode:`Dirty_only in
  let before = Clock.now clock in
  Vmmap.write m ~vpn ~offset:0 ~value:2L;
  let elapsed = Duration.sub (Clock.now clock) before in
  check_bool "cow fault cost charged" true
    Duration.(elapsed >= Costmodel.cow_fault_service);
  (* Second write to the same page is now free of COW cost. *)
  let before2 = Clock.now clock in
  Vmmap.write m ~vpn ~offset:0 ~value:3L;
  check_bool "subsequent write cheap" true
    Duration.(Duration.sub (Clock.now clock) before2 < Costmodel.cow_fault_service);
  List.iter (Vmobject.release_flush_item ~pool:(Vmmap.pool m)) items

let test_never_flush_twice () =
  (* A page shared by two processes and written by both between
     checkpoints appears exactly once in the next capture. *)
  let clock = Clock.create () in
  let pool = Frame.create_pool () in
  let m1 = Vmmap.create ~clock ~pool () in
  let m2 = Vmmap.create ~clock ~pool () in
  let obj = Vmobject.create ~pool Vmobject.Anonymous in
  let e1 = Vmmap.map_object m1 ~obj ~obj_offset:0 ~npages:1 () in
  let e2 = Vmmap.map_object m2 ~obj ~obj_offset:0 ~npages:1 () in
  Vmmap.write m1 ~vpn:e1.Vmmap.start_vpn ~offset:0 ~value:1L;
  Vmmap.write m2 ~vpn:e2.Vmmap.start_vpn ~offset:8 ~value:2L;
  let items = Vmobject.arm_for_checkpoint obj ~mode:`Dirty_only in
  check_int "flushed once" 1 (List.length items);
  List.iter (Vmobject.release_flush_item ~pool) items;
  Vmobject.decref obj

let test_major_fault_paged_out () =
  let clock, _, m = mkmap () in
  let e = Vmmap.map_anonymous m ~npages:1 () in
  let vpn = e.Vmmap.start_vpn in
  Vmmap.write m ~vpn ~offset:0 ~value:5L;
  let content = Vmmap.read m ~vpn in
  let cost = Duration.microseconds 50 in
  ignore (Vmobject.page_out e.Vmmap.obj e.Vmmap.obj_offset ~read_cost:cost);
  let before = Clock.now clock in
  Alcotest.check content_t "content back from swap" content (Vmmap.read m ~vpn);
  check_bool "major fault charged device cost" true
    Duration.(Duration.sub (Clock.now clock) before >= cost);
  check_int "major fault counted" 1 (Vmmap.faults m).Vmmap.major

let test_resident_and_distinct () =
  let _, _, m = mkmap () in
  let e1 = Vmmap.map_anonymous m ~npages:4 () in
  let _e2 = Vmmap.map_anonymous m ~npages:4 () in
  Vmmap.write m ~vpn:e1.Vmmap.start_vpn ~offset:0 ~value:1L;
  Vmmap.write m ~vpn:(e1.Vmmap.start_vpn + 1) ~offset:0 ~value:1L;
  check_int "resident" 2 (Vmmap.resident_pages m);
  check_int "mapped extent" 8 (Vmmap.total_pages m);
  check_int "distinct objects" 2 (List.length (Vmmap.distinct_objects m))

let test_unmap_releases () =
  let _, pool, m = mkmap () in
  let e = Vmmap.map_anonymous m ~npages:2 () in
  Vmmap.write m ~vpn:e.Vmmap.start_vpn ~offset:0 ~value:1L;
  check_int "resident before" 1 (Frame.resident pool);
  Vmmap.unmap m e;
  check_int "released" 0 (Frame.resident pool);
  check_bool "vpn now unmapped" true
    (try
       ignore (Vmmap.read m ~vpn:e.Vmmap.start_vpn);
       false
     with Vmmap.Fault _ -> true)

let prop_fork_preserves_contents =
  QCheck.Test.make ~name:"fork preserves all parent page contents"
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 15) int64))
    (fun writes ->
      let _, _, parent = mkmap () in
      let e = Vmmap.map_anonymous parent ~npages:16 () in
      let base = e.Vmmap.start_vpn in
      List.iter (fun (p, v) -> Vmmap.write parent ~vpn:(base + p) ~offset:0 ~value:v)
        writes;
      let child = Vmmap.fork parent in
      List.for_all
        (fun (p, _) ->
          Content.equal (Vmmap.read parent ~vpn:(base + p)) (Vmmap.read child ~vpn:(base + p)))
        writes)

let prop_cow_write_isolation =
  QCheck.Test.make ~name:"post-fork writes never leak across COW"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 20) (pair (int_bound 7) int64))
        (list_of_size Gen.(int_range 1 20) (pair (int_bound 7) int64)))
    (fun (parent_writes, child_writes) ->
      let _, _, parent = mkmap () in
      let e = Vmmap.map_anonymous parent ~npages:8 () in
      let base = e.Vmmap.start_vpn in
      List.iter (fun (p, v) -> Vmmap.write parent ~vpn:(base + p) ~offset:0 ~value:v)
        parent_writes;
      let child = Vmmap.fork parent in
      let parent_before = List.init 8 (fun i -> Vmmap.read parent ~vpn:(base + i)) in
      List.iter (fun (p, v) -> Vmmap.write child ~vpn:(base + p) ~offset:8 ~value:v)
        child_writes;
      let parent_after = List.init 8 (fun i -> Vmmap.read parent ~vpn:(base + i)) in
      List.for_all2 Content.equal parent_before parent_after)

let prop_incremental_capture_equals_dirty =
  QCheck.Test.make ~name:"incremental checkpoint captures exactly dirtied pages"
    QCheck.(list_of_size Gen.(int_range 1 40) (int_bound 31))
    (fun touched ->
      let _, pool, m = mkmap () in
      let e = Vmmap.map_anonymous m ~npages:32 () in
      let base = e.Vmmap.start_vpn in
      (* Populate and take a first checkpoint. *)
      for i = 0 to 31 do
        Vmmap.write m ~vpn:(base + i) ~offset:0 ~value:1L
      done;
      let first = Vmobject.arm_for_checkpoint e.Vmmap.obj ~mode:`Dirty_only in
      List.iter (Vmobject.release_flush_item ~pool) first;
      (* Touch a random subset. *)
      List.iter (fun p -> Vmmap.write m ~vpn:(base + p) ~offset:0 ~value:9L) touched;
      let expected = List.sort_uniq Int.compare touched in
      let second = Vmobject.arm_for_checkpoint e.Vmmap.obj ~mode:`Dirty_only in
      let captured =
        List.sort Int.compare (List.map (fun i -> i.Vmobject.pindex) second)
      in
      List.iter (Vmobject.release_flush_item ~pool) second;
      captured = expected)


let prop_fork_chain_generations =
  (* A chain of forks (grandparent -> parent -> child -> ...), each
     generation writing after its fork: every process's view must
     match an independent model, however deep the shadow chains get. *)
  QCheck.Test.make ~name:"deep fork chains preserve per-process isolation" ~count:40
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 1 30)
                                    (pair (int_bound 7) int64)))
    (fun (depth, writes) ->
      let _, _, root = mkmap () in
      let e = Vmmap.map_anonymous root ~npages:8 () in
      let base = e.Vmmap.start_vpn in
      (* Model: per-generation array of page values (as content). *)
      let maps = ref [ root ] in
      let models = ref [ Array.make 8 Content.zero ] in
      let apply m model (page, v) =
        Vmmap.write m ~vpn:(base + page) ~offset:0 ~value:v;
        model.(page) <- Content.write model.(page) ~offset:0 ~value:v
      in
      (* Seed the root. *)
      List.iter (apply root (List.hd !models)) writes;
      for _ = 1 to depth do
        let parent = List.hd !maps in
        let parent_model = List.hd !models in
        let child = Vmmap.fork parent in
        let child_model = Array.copy parent_model in
        (* Interleave writes in child then parent (distinct values). *)
        List.iteri
          (fun i (page, v) ->
            if i mod 2 = 0 then apply child child_model (page, Int64.add v 1L)
            else apply parent parent_model (page, Int64.sub v 1L))
          writes;
        maps := child :: !maps;
        models := child_model :: !models
      done;
      List.for_all2
        (fun m model ->
          let ok = ref true in
          for i = 0 to 7 do
            if not (Content.equal model.(i) (Vmmap.read m ~vpn:(base + i))) then
              ok := false
          done;
          !ok)
        !maps !models)

(* ------------------------------------------------------------------ *)
(* Clock algorithm and swap                                            *)
(* ------------------------------------------------------------------ *)

let test_clock_second_chance () =
  let _, _, m = mkmap () in
  let e = Vmmap.map_anonymous m ~npages:4 () in
  let base = e.Vmmap.start_vpn in
  for i = 0 to 3 do
    Vmmap.write m ~vpn:(base + i) ~offset:0 ~value:1L
  done;
  let alg = Clockalg.create () in
  let objs = [ e.Vmmap.obj ] in
  (* All accessed bits set: first sweep must make two passes and still
     find victims (bits cleared on first revolution). *)
  let victims = Clockalg.sweep alg ~objects:objs ~want:2 in
  check_int "two victims" 2 (List.length victims);
  (* Re-touch one page: it should survive the next sweep. *)
  Vmmap.write m ~vpn:base ~offset:0 ~value:2L;
  let remaining = Clockalg.sweep alg ~objects:objs ~want:4 in
  check_bool "touched page spared on first pass" true
    (List.for_all
       (fun v ->
         (* victims are evicted lazily by swap; here frames remain, so
            just check we got some victims *)
         v.Clockalg.frame.Frame.refcount >= 1)
       remaining)

let test_hot_set_ranking () =
  let _, _, m = mkmap () in
  let e = Vmmap.map_anonymous m ~npages:8 () in
  let base = e.Vmmap.start_vpn in
  for i = 0 to 7 do
    Vmmap.write m ~vpn:(base + i) ~offset:0 ~value:1L
  done;
  (* Heat up pages 2 and 5. *)
  for _ = 1 to 10 do
    ignore (Vmmap.read m ~vpn:(base + 2))
  done;
  for _ = 1 to 5 do
    ignore (Vmmap.read m ~vpn:(base + 5))
  done;
  let hot = Clockalg.hot_set ~objects:[ e.Vmmap.obj ] ~limit:2 in
  (match hot with
   | [ (_, p1); (_, p2) ] ->
     check_int "hottest" (e.Vmmap.obj_offset + 2) p1;
     check_int "second" (e.Vmmap.obj_offset + 5) p2
   | _ -> Alcotest.fail "expected two hot pages");
  (* Aging halves the counters. *)
  let before = Vmobject.heat e.Vmmap.obj (e.Vmmap.obj_offset + 2) in
  Clockalg.age ~objects:[ e.Vmmap.obj ];
  check_int "aged" (before / 2) (Vmobject.heat e.Vmmap.obj (e.Vmmap.obj_offset + 2))

let test_swap_rebalance () =
  let clock = Clock.create () in
  let pool = Frame.create_pool ~capacity_pages:8 () in
  let m = Vmmap.create ~clock ~pool () in
  let dev = Blockdev.create ~clock ~profile:Profile.optane_900p "swap0" in
  let swap = Swap.create ~dev ~pool in
  let e = Vmmap.map_anonymous m ~npages:16 () in
  let base = e.Vmmap.start_vpn in
  for i = 0 to 15 do
    Vmmap.write m ~vpn:(base + i) ~offset:0 ~value:(Int64.of_int (i + 1))
  done;
  check_int "over capacity" 8 (Frame.over_capacity pool);
  let evicted = Swap.rebalance swap ~objects:(Vmmap.distinct_objects m) in
  check_int "evicted to fit" 8 evicted;
  check_int "pressure relieved" 0 (Frame.over_capacity pool);
  check_int "swap accounted" 8 (Swap.pages_swapped swap);
  (* Contents still correct: faults bring pages back. *)
  for i = 0 to 15 do
    let c = Vmmap.read m ~vpn:(base + i) in
    check_bool "content survived swap" false (Content.is_zero c)
  done;
  check_bool "major faults occurred" true ((Vmmap.faults m).Vmmap.major >= 1)

let test_swap_roundtrip_content () =
  let clock = Clock.create () in
  let pool = Frame.create_pool ~capacity_pages:4 () in
  let m = Vmmap.create ~clock ~pool () in
  let dev = Blockdev.create ~clock ~profile:Profile.nand_ssd "swap0" in
  let swap = Swap.create ~dev ~pool in
  let e = Vmmap.map_anonymous m ~npages:8 () in
  let base = e.Vmmap.start_vpn in
  let expected =
    List.init 8 (fun i ->
        Vmmap.write m ~vpn:(base + i) ~offset:0 ~value:(Int64.of_int (i * 7));
        Vmmap.read m ~vpn:(base + i))
  in
  ignore (Swap.rebalance swap ~objects:(Vmmap.distinct_objects m));
  List.iteri
    (fun i c -> Alcotest.check content_t "roundtrip" c (Vmmap.read m ~vpn:(base + i)))
    expected

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vm"
    [
      ( "content",
        [
          Alcotest.test_case "write changes content" `Quick test_content_write_changes;
          Alcotest.test_case "deterministic" `Quick test_content_deterministic;
          Alcotest.test_case "order sensitive" `Quick test_content_order_sensitive;
          Alcotest.test_case "byte expansion" `Quick test_content_bytes;
          Alcotest.test_case "offset bounds" `Quick test_content_offset_bounds;
          qt prop_content_write_injective_ish;
        ] );
      ( "frame",
        [
          Alcotest.test_case "refcounting" `Quick test_frame_refcounting;
          Alcotest.test_case "capacity pressure" `Quick test_frame_capacity_pressure;
        ] );
      ( "vmobject",
        [
          Alcotest.test_case "install/resolve" `Quick test_object_install_resolve;
          Alcotest.test_case "shadow resolution" `Quick test_object_shadow_resolution;
          Alcotest.test_case "decref releases chain" `Quick test_object_decref_releases_chain;
          Alcotest.test_case "replace releases old frame" `Quick
            test_object_replace_releases_old;
        ] );
      ( "checkpoint-cow",
        [
          Alcotest.test_case "full captures everything" `Quick
            test_arm_full_captures_everything;
          Alcotest.test_case "incremental captures dirty" `Quick
            test_arm_dirty_only_captures_dirty;
          Alcotest.test_case "flush capture stable under writes" `Quick
            test_flush_item_keeps_frame_alive;
          Alcotest.test_case "disarm requires armed" `Quick test_disarm_requires_armed;
          Alcotest.test_case "aurora cow preserves sharing" `Quick
            test_aurora_cow_preserves_sharing;
          Alcotest.test_case "armed write charges cow cost" `Quick
            test_write_to_armed_charges_cow;
          Alcotest.test_case "shared page flushed once" `Quick test_never_flush_twice;
          qt prop_incremental_capture_equals_dirty;
        ] );
      ( "vmmap",
        [
          Alcotest.test_case "map/read/write" `Quick test_map_read_write;
          Alcotest.test_case "unmapped faults" `Quick test_map_unmapped_faults;
          Alcotest.test_case "read-only faults" `Quick test_map_readonly_faults;
          Alcotest.test_case "fork cow isolation" `Quick test_fork_cow_isolation;
          Alcotest.test_case "fork shared entry" `Quick test_fork_shared_entry_shares;
          Alcotest.test_case "shared object across maps" `Quick test_shared_object_two_maps;
          Alcotest.test_case "major fault from swap" `Quick test_major_fault_paged_out;
          Alcotest.test_case "residency accounting" `Quick test_resident_and_distinct;
          Alcotest.test_case "unmap releases frames" `Quick test_unmap_releases;
          qt prop_fork_preserves_contents;
          qt prop_cow_write_isolation;
          qt prop_fork_chain_generations;
        ] );
      ( "clock-swap",
        [
          Alcotest.test_case "second chance" `Quick test_clock_second_chance;
          Alcotest.test_case "hot set ranking" `Quick test_hot_set_ranking;
          Alcotest.test_case "rebalance under pressure" `Quick test_swap_rebalance;
          Alcotest.test_case "swap roundtrip" `Quick test_swap_roundtrip_content;
        ] );
    ]
