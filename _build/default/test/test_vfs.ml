(* Tests for the VFS: vnode data operations, namespace operations,
   fsync durability, crash semantics, and the anonymous-file edge case
   Aurora's on-disk open reference count fixes. *)

open Aurora_simtime
open Aurora_device
open Aurora_vfs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let b = Bytes.of_string
let s = Bytes.to_string

(* ------------------------------------------------------------------ *)
(* Vnode                                                               *)
(* ------------------------------------------------------------------ *)

let test_vnode_rw () =
  let v = Vnode.create Vnode.Reg in
  Vnode.write v ~off:0 (b "hello world");
  check_str "read back" "hello world" (s (Vnode.read v ~off:0 ~len:100));
  check_str "partial" "world" (s (Vnode.read v ~off:6 ~len:5));
  check_int "size" 11 v.Vnode.size

let test_vnode_holes () =
  let v = Vnode.create Vnode.Reg in
  Vnode.write v ~off:10000 (b "far");
  check_int "sparse size" 10003 v.Vnode.size;
  let hole = Vnode.read v ~off:0 ~len:10 in
  check_bool "holes read as zero" true (Bytes.for_all (fun c -> c = '\000') hole);
  check_str "data present" "far" (s (Vnode.read v ~off:10000 ~len:3))

let test_vnode_cross_chunk () =
  let v = Vnode.create Vnode.Reg in
  let data = String.init 10000 (fun i -> Char.chr (i mod 256)) in
  Vnode.write v ~off:100 (b data);
  check_str "cross-chunk roundtrip" data (s (Vnode.read v ~off:100 ~len:10000))

let test_vnode_append_truncate () =
  let v = Vnode.create Vnode.Reg in
  Vnode.append v (b "abc");
  Vnode.append v (b "def");
  check_str "appended" "abcdef" (s (Vnode.read v ~off:0 ~len:10));
  Vnode.truncate v 4;
  check_int "shrunk" 4 v.Vnode.size;
  check_str "tail gone" "abcd" (s (Vnode.read v ~off:0 ~len:10));
  (* Re-extend: the truncated tail must read as zeroes. *)
  Vnode.truncate v 6;
  let tail = Vnode.read v ~off:4 ~len:2 in
  check_bool "zero after re-extend" true (Bytes.for_all (fun c -> c = '\000') tail)

let test_vnode_dirty_tracking () =
  let v = Vnode.create Vnode.Reg in
  Vnode.write v ~off:0 (b "x");
  Vnode.write v ~off:5000 (b "y");
  Alcotest.(check (list int)) "two dirty chunks" [ 0; 1 ] (Vnode.dirty_chunks v);
  Vnode.clear_dirty v;
  Alcotest.(check (list int)) "cleared" [] (Vnode.dirty_chunks v);
  Vnode.write v ~off:4096 (b "z");
  Alcotest.(check (list int)) "only touched chunk" [ 1 ] (Vnode.dirty_chunks v)

let test_vnode_dir_rejects_io () =
  let v = Vnode.create Vnode.Dir in
  check_bool "dir read rejected" true
    (try
       ignore (Vnode.read v ~off:0 ~len:1);
       false
     with Invalid_argument _ -> true)

let prop_vnode_write_read =
  QCheck.Test.make ~name:"vnode write/read roundtrip at any offset"
    QCheck.(pair (int_bound 20000) (string_of_size Gen.(int_range 1 500)))
    (fun (off, data) ->
      let v = Vnode.create Vnode.Reg in
      Vnode.write v ~off (Bytes.of_string data);
      String.equal data (Bytes.to_string (Vnode.read v ~off ~len:(String.length data))))

(* ------------------------------------------------------------------ *)
(* Memfs namespace                                                     *)
(* ------------------------------------------------------------------ *)

let test_memfs_create_lookup () =
  let fs = Memfs.create () in
  ignore (Memfs.mkdir fs "/etc");
  let v = Memfs.create_file fs "/etc/passwd" in
  check_bool "lookup finds it" true (Memfs.lookup fs "/etc/passwd" == v);
  check_bool "missing raises" true
    (try
       ignore (Memfs.lookup fs "/etc/shadow");
       false
     with Memfs.Error _ -> true);
  check_bool "duplicate rejected" true
    (try
       ignore (Memfs.create_file fs "/etc/passwd");
       false
     with Memfs.Error _ -> true)

let test_memfs_readdir () =
  let fs = Memfs.create () in
  ignore (Memfs.mkdir fs "/d");
  ignore (Memfs.create_file fs "/d/b");
  ignore (Memfs.create_file fs "/d/a");
  Alcotest.(check (list string)) "sorted entries" [ "a"; "b" ] (Memfs.readdir fs "/d")

let test_memfs_link_unlink () =
  let fs = Memfs.create () in
  let v = Memfs.create_file fs "/f" in
  Memfs.link fs ~existing:"/f" ~path:"/g";
  check_int "two links" 2 v.Vnode.nlink;
  Memfs.unlink fs "/f";
  check_bool "still reachable via g" true (Memfs.lookup fs "/g" == v);
  Memfs.unlink fs "/g";
  check_bool "vnode reclaimed" true (Memfs.vnode_by_id fs v.Vnode.vid = None)

let test_memfs_rename_replaces () =
  let fs = Memfs.create () in
  let src = Memfs.create_file fs "/new" in
  Vnode.write src ~off:0 (b "fresh");
  let old = Memfs.create_file fs "/current" in
  Vnode.write old ~off:0 (b "stale");
  Memfs.rename fs ~src:"/new" ~dst:"/current";
  check_bool "dst now src vnode" true (Memfs.lookup fs "/current" == src);
  check_bool "src name gone" true (Memfs.lookup_opt fs "/new" = None);
  check_bool "old vnode reclaimed" true (Memfs.vnode_by_id fs old.Vnode.vid = None)

let test_memfs_anonymous_file_lifecycle () =
  let fs = Memfs.create () in
  let v = Memfs.create_file fs "/tmpfile" in
  Memfs.open_vnode fs v;
  Memfs.unlink fs "/tmpfile";
  (* Unlinked but open: still alive and writable. *)
  check_bool "alive while open" true (Memfs.vnode_by_id fs v.Vnode.vid <> None);
  Vnode.write v ~off:0 (b "scratch");
  Memfs.close_vnode fs v;
  check_bool "reclaimed on close" true (Memfs.vnode_by_id fs v.Vnode.vid = None)

let test_memfs_path_of_vid () =
  let fs = Memfs.create () in
  ignore (Memfs.mkdir fs "/a");
  ignore (Memfs.mkdir fs "/a/b");
  let v = Memfs.create_file fs "/a/b/c" in
  Alcotest.(check (option string)) "path found" (Some "/a/b/c")
    (Memfs.path_of_vid fs v.Vnode.vid);
  Alcotest.(check (option string)) "root" (Some "/")
    (Memfs.path_of_vid fs (Memfs.root fs).Vnode.vid)

(* ------------------------------------------------------------------ *)
(* Durability: fsync and crash                                         *)
(* ------------------------------------------------------------------ *)

let mkfs_with_disk () =
  let clock = Clock.create () in
  let dev = Blockdev.create ~clock ~profile:Profile.nand_ssd "disk0" in
  (clock, dev, Memfs.create ~backing:dev ())

let test_fsync_durability () =
  let _, _, fs = mkfs_with_disk () in
  ignore (Memfs.mkdir fs "/db");
  let v = Memfs.create_file fs "/db/wal" in
  Vnode.write v ~off:0 (b "record-1|record-2|");
  Memfs.fsync fs v;
  Vnode.write v ~off:18 (b "record-3|");
  (* record-3 not synced *)
  Memfs.crash fs;
  let v' = Memfs.lookup fs "/db/wal" in
  check_str "synced data survives" "record-1|record-2|"
    (s (Vnode.read v' ~off:0 ~len:v'.Vnode.size));
  check_int "size reverted to fsync point" 18 v'.Vnode.size

let test_crash_without_fsync_loses_data () =
  let _, _, fs = mkfs_with_disk () in
  let v = Memfs.create_file fs "/data" in
  Vnode.write v ~off:0 (b "never synced");
  Memfs.crash fs;
  let v' = Memfs.lookup fs "/data" in
  check_int "contents lost" 0 v'.Vnode.size

let test_fsync_charges_device_time () =
  let clock, _, fs = mkfs_with_disk () in
  let v = Memfs.create_file fs "/f" in
  Vnode.write v ~off:0 (Bytes.make 40960 'x'); (* 10 chunks *)
  let before = Clock.now clock in
  Memfs.fsync fs v;
  let elapsed = Duration.sub (Clock.now clock) before in
  (* At least the device's write latency + flush latency. *)
  check_bool "fsync took device time" true
    Duration.(elapsed >= Profile.nand_ssd.Profile.flush_latency)

let test_fsync_only_dirty_chunks () =
  let _, dev, fs = mkfs_with_disk () in
  let v = Memfs.create_file fs "/f" in
  Vnode.write v ~off:0 (Bytes.make 40960 'x');
  Memfs.fsync fs v;
  let after_first = (Blockdev.stats dev).Blockdev.blocks_written in
  Vnode.write v ~off:0 (b "y"); (* one chunk dirty *)
  Memfs.fsync fs v;
  let after_second = (Blockdev.stats dev).Blockdev.blocks_written in
  check_int "second fsync wrote one block" 1 (after_second - after_first)

let test_crash_reclaims_anonymous_files () =
  (* The POSIX behaviour Aurora must work around. *)
  let _, _, fs = mkfs_with_disk () in
  let v = Memfs.create_file fs "/anon" in
  Memfs.open_vnode fs v;
  Vnode.write v ~off:0 (b "data");
  Memfs.fsync fs v;
  Memfs.unlink fs "/anon";
  Memfs.crash fs;
  check_bool "anonymous file gone after crash" true
    (Memfs.vnode_by_id fs v.Vnode.vid = None)

let test_persistent_open_pins_anonymous_file () =
  (* Aurora's fix: the on-disk open reference count keeps the vnode. *)
  let _, _, fs = mkfs_with_disk () in
  let v = Memfs.create_file fs "/anon" in
  Memfs.open_vnode fs v;
  Vnode.write v ~off:0 (b "precious");
  Memfs.fsync fs v;
  v.Vnode.persistent_open <- 1;
  Memfs.unlink fs "/anon";
  Memfs.crash fs;
  (match Memfs.vnode_by_id fs v.Vnode.vid with
   | None -> Alcotest.fail "anonymous file lost despite persistent open count"
   | Some v' ->
     check_str "contents recovered" "precious" (s (Vnode.read v' ~off:0 ~len:8)))

let test_ramdisk_crash_loses_all () =
  let fs = Memfs.create () in
  let v = Memfs.create_file fs "/f" in
  Vnode.write v ~off:0 (b "volatile");
  Memfs.crash fs;
  let v' = Memfs.lookup fs "/f" in
  check_int "ram disk empty after crash" 0 v'.Vnode.size

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vfs"
    [
      ( "vnode",
        [
          Alcotest.test_case "read/write" `Quick test_vnode_rw;
          Alcotest.test_case "sparse holes" `Quick test_vnode_holes;
          Alcotest.test_case "cross-chunk io" `Quick test_vnode_cross_chunk;
          Alcotest.test_case "append/truncate" `Quick test_vnode_append_truncate;
          Alcotest.test_case "dirty tracking" `Quick test_vnode_dirty_tracking;
          Alcotest.test_case "directories reject io" `Quick test_vnode_dir_rejects_io;
          qt prop_vnode_write_read;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "create/lookup" `Quick test_memfs_create_lookup;
          Alcotest.test_case "readdir" `Quick test_memfs_readdir;
          Alcotest.test_case "link/unlink" `Quick test_memfs_link_unlink;
          Alcotest.test_case "rename replaces atomically" `Quick test_memfs_rename_replaces;
          Alcotest.test_case "anonymous file lifecycle" `Quick
            test_memfs_anonymous_file_lifecycle;
          Alcotest.test_case "path_of_vid" `Quick test_memfs_path_of_vid;
        ] );
      ( "durability",
        [
          Alcotest.test_case "fsync survives crash" `Quick test_fsync_durability;
          Alcotest.test_case "unsynced data lost" `Quick test_crash_without_fsync_loses_data;
          Alcotest.test_case "fsync charges device time" `Quick
            test_fsync_charges_device_time;
          Alcotest.test_case "fsync writes only dirty chunks" `Quick
            test_fsync_only_dirty_chunks;
          Alcotest.test_case "crash reclaims anonymous files" `Quick
            test_crash_reclaims_anonymous_files;
          Alcotest.test_case "persistent open pins anonymous file" `Quick
            test_persistent_open_pins_anonymous_file;
          Alcotest.test_case "ram disk crash" `Quick test_ramdisk_crash_loses_all;
        ] );
    ]
