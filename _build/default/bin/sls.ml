let () = exit (Aurora_cli.Cli.main ())
