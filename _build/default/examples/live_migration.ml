(* Live migration over the network (`sls send` / `sls recv`, §3.1).

   A running application is checkpointed, shipped over a simulated
   10 GbE link to a second machine, and resumed there mid-computation.
   A follow-up incremental shipment shows the delta-size advantage.

   Run with: dune exec examples/live_migration.exe *)

open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_proc
open Aurora_sls

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  Program.register ~name:"example/worker" (fun k p th ->
      let ctx = th.Thread.context in
      if ctx.Context.pc = 0 then begin
        (* 1 MiB of state, of which only a small working set is hot. *)
        let e = Syscall.mmap_anon k p ~npages:256 in
        Context.set_reg_int ctx 1 e.Vmmap.start_vpn;
        for i = 0 to 255 do
          Syscall.mem_write k p ~vpn:(e.Vmmap.start_vpn + i) ~offset:0
            ~value:(Int64.of_int i)
        done;
        ctx.Context.pc <- 1;
        Program.Continue
      end
      else begin
        let step = Context.reg_int ctx 2 + 1 in
        Context.set_reg_int ctx 2 step;
        Syscall.mem_write k p
          ~vpn:(Context.reg_int ctx 1 + (step mod 8))
          ~offset:0 ~value:(Int64.of_int step);
        Program.Continue
      end)

let steps p = Context.reg_int (Process.main_thread p).Thread.context 2

let () =
  say "== Live migration ==";
  let src = Machine.create () in
  let k = src.Machine.kernel in
  let c = Kernel.new_container k ~name:"job" in
  let p = Kernel.spawn k ~container:c.Container.cid ~name:"worker"
      ~program:"example/worker" () in
  let g = Machine.persist src (`Container c.Container.cid) in
  Machine.run src (Duration.milliseconds 2);
  say "source machine: worker at step %d" (steps p);

  (* Checkpoint and ship the image. *)
  let b = Machine.checkpoint_now src g () in
  let link = Netlink.create ~clock:(Machine.clock src) ~profile:Profile.net_10gbe () in
  let image =
    Sendrecv.export src.Machine.disk_store ~gen:b.Types.gen ~pgid:g.Types.pgid ()
  in
  let arrival = Netlink.send link ~from_:`A image in
  say "shipped %d KiB image over 10 GbE (arrives %.1f us later)"
    (Sendrecv.image_bytes image / 1024)
    (Duration.to_us (Duration.sub arrival (Machine.now src)));

  (* The destination machine receives and resumes it. *)
  let dst = Machine.create () in
  Clock.advance_to (Machine.clock dst) arrival;
  Clock.advance_to (Machine.clock src) arrival;
  (match Netlink.recv link ~side:`B with
   | None -> failwith "image lost in transit"
   | Some image ->
     let gen, durable = Sendrecv.import dst.Machine.disk_store image in
     Aurora_objstore.Store.wait_durable dst.Machine.disk_store durable;
     dst.Machine.kernel.Kernel.fs <-
       Aurora_slsfs.Slsfs.restore_fs dst.Machine.disk_store gen;
     let g' = Machine.persist dst (`Container c.Container.cid) in
     let pids, breakdown = Machine.restore_group dst g' ~gen () in
     let p' = Kernel.proc_exn dst.Machine.kernel (List.hd pids) in
     say "destination: restored pid %d at step %d in %.1f us"
       p'.Process.pid (steps p') (Duration.to_us breakdown.Types.total_latency);
     Machine.run dst (Duration.milliseconds 2);
     say "destination: worker continued to step %d" (steps p'));

  (* Incremental feed: the next shipment is a delta. *)
  Machine.run src (Duration.milliseconds 1);
  let b2 = Machine.checkpoint_now src g () in
  let delta =
    Sendrecv.export src.Machine.disk_store ~gen:b2.Types.gen ~pgid:g.Types.pgid
      ~base:b.Types.gen ()
  in
  say "";
  say "continuous replication: next increment is %d KiB (vs %d KiB full) - %s"
    (Sendrecv.image_bytes delta / 1024)
    (Sendrecv.image_bytes image / 1024)
    "'continually feed incremental checkpoints to a remote host'"
