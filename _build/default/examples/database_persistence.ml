(* Databases on Aurora (§4): replacing fork-snapshot + write-ahead-log
   persistence with the SLS primitives.

   The same key-value store runs twice: once persisting the classic
   way (AOF fsync per write, periodic fork snapshots) and once as the
   Aurora port (sls_ntflush per write, checkpoints absorb the log).
   Both survive a crash with bit-identical state; the port pays far
   less per operation.

   Run with: dune exec examples/database_persistence.exe *)

open Aurora_simtime
open Aurora_proc
open Aurora_sls
open Aurora_apps

let say fmt = Printf.printf (fmt ^^ "\n%!")
let nkeys = 512 * 1024

let run_ops m p ~until_ops =
  let k = m.Machine.kernel in
  let per_op = Stats.create () in
  while Kvstore.ops_done p < until_ops do
    let t0 = Machine.now m in
    ignore (Scheduler.step_all k);
    Stats.add_duration per_op (Duration.sub (Machine.now m) t0)
  done;
  per_op

let () =
  say "== Database persistence: classic vs Aurora port ==";

  (* --- the classic arrangement ------------------------------------- *)
  let m = Machine.create ~fs_with_disk:true () in
  let k = m.Machine.kernel in
  let cfg =
    { (Kvstore.default_config ~mode:Kvstore.Wal ~nkeys ()) with
      Kvstore.ops_per_step = 1; fsync_every = 1; snapshot_every = 1_000 }
  in
  let p = Kvstore.spawn k cfg in
  ignore (Scheduler.step_all k);
  let classic = run_ops m p ~until_ops:2_000 in
  say "classic (fork+WAL):  %s" (Format.asprintf "%a" Stats.pp_summary classic);
  let digest = Kvstore.region_digest k p cfg in
  Syscall.exit_process k p 137;
  Kernel.remove_proc k p.Process.pid;
  Aurora_vfs.Memfs.crash k.Kernel.fs;
  let t0 = Machine.now m in
  let p' = Kvstore.spawn k ~recover:true cfg in
  ignore (Scheduler.step_all k);
  say "  crash recovery: %.1f us; state identical: %b"
    (Duration.to_us (Duration.sub (Machine.now m) t0))
    (Int64.equal digest (Kvstore.region_digest k p' cfg));

  (* --- the Aurora port ---------------------------------------------- *)
  let m = Machine.create () in
  Machine.enable_sls_calls m;
  let k = m.Machine.kernel in
  let c = Kernel.new_container k ~name:"redis" in
  let cfg =
    { (Kvstore.default_config ~mode:Kvstore.Aurora ~nkeys ()) with
      Kvstore.ops_per_step = 1 }
  in
  let p = Kvstore.spawn k ~container:c.Container.cid cfg in
  let g = Machine.persist m (`Container c.Container.cid) in
  ignore (Scheduler.step_all k);
  let port = run_ops m p ~until_ops:2_000 in
  say "aurora port:         %s" (Format.asprintf "%a" Stats.pp_summary port);
  (* A checkpoint absorbs the log... *)
  let b = Machine.checkpoint_now m g () in
  Api.sls_log_truncate m g;
  Aurora_objstore.Store.wait_durable m.Machine.disk_store b.Types.durable_at;
  (* ...a few more writes land in the ntflush log only... *)
  let more = run_ops m p ~until_ops:2_200 in
  ignore more;
  Machine.drain_storage m;
  let digest = Kvstore.region_digest k p cfg in
  let ops = Kvstore.ops_done p in
  (* ...and the machine dies. *)
  Machine.crash m;
  let m' = Machine.recover m in
  Machine.enable_sls_calls m';
  let g' = Machine.persist m' (`Container c.Container.cid) in
  let t0 = Machine.now m' in
  let pids, _ = Machine.restore_group m' g' () in
  let p' = Kernel.proc_exn m'.Machine.kernel (List.hd pids) in
  Kvstore.repair_after_restore p';
  ignore (Scheduler.step_all m'.Machine.kernel);
  say "  crash recovery (restore + log replay): %.1f us; ops %d -> %d; state identical: %b"
    (Duration.to_us (Duration.sub (Machine.now m') t0))
    ops (Kvstore.ops_done p')
    (Int64.equal digest (Kvstore.region_digest m'.Machine.kernel p' cfg));
  say "";
  say "mean us/op: classic %.2f vs port %.2f (%.1fx) - and the port has no"
    (Stats.mean classic) (Stats.mean port)
    (Stats.mean classic /. Stats.mean port);
  say "fsync-ordering code to get wrong (the LevelDB/PostgreSQL bugs of Section 2)"
