(* Crash forensics with record/replay (§4).

   "Aurora's low overhead checkpointing makes record/replay practical
   in production, enabling developers to capture an application
   moments before a crash." A service processes requests from the
   outside world; every boundary input is journaled transparently;
   checkpoints keep the journal short. When the service hits a fatal
   bug, the developer rolls it back to the last checkpoint and watches
   the final requests re-execute deterministically — including the one
   that kills it.

   Run with: dune exec examples/crash_forensics.exe *)

open Aurora_vm
open Aurora_posix
open Aurora_proc
open Aurora_sls

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  Program.register ~name:"example/world" (fun _ _ _ ->
      Program.Block Aurora_proc.Thread.Wait_forever)

(* The service: parses one-byte commands. 'a'..'y' are normal work;
   'z' trips an assertion (the bug). *)
let () =
  Program.register ~name:"example/fragile-service" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 ->
        let e = Syscall.mmap_anon k p ~npages:1 in
        Context.set_reg_int ctx 2 e.Vmmap.start_vpn;
        ctx.Context.pc <- 1;
        Program.Continue
      | _ -> (
        let fd = Context.reg_int ctx 1 in
        match Syscall.read k p fd ~len:1 with
        | `Data "z" ->
          (* The bug: a request the service cannot survive. *)
          Program.Exit_program 134 (* simulated SIGABRT *)
        | `Data _ ->
          let n = Context.reg_int ctx 3 + 1 in
          Context.set_reg_int ctx 3 n;
          Syscall.mem_write k p ~vpn:(Context.reg_int ctx 2) ~offset:0
            ~value:(Int64.of_int n);
          Program.Continue
        | `Would_block -> (
          match Fd.get p.Process.fdtable fd with
          | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_read oid)
          | _ -> Program.Exit_program 1)
        | `Eof -> Program.Exit_program 0))

let () =
  say "== Crash forensics with record/replay ==";
  let m = Machine.create () in
  let k = m.Machine.kernel in
  let c = Kernel.new_container k ~name:"prod" in
  let server = Kernel.spawn k ~container:c.Container.cid ~name:"service"
      ~program:"example/fragile-service" () in
  let client = Kernel.spawn k ~name:"world" ~program:"example/world" () in
  let sfd, cfd = Syscall.socketpair k server in
  let c_ofd = Option.get (Fd.get server.Process.fdtable cfd) in
  c_ofd.Fd.refcount <- c_ofd.Fd.refcount + 1;
  let client_fd = Fd.install client.Process.fdtable c_ofd in
  ignore (Fd.release server.Process.fdtable cfd);
  Context.set_reg_int (Process.main_thread server).Thread.context 1 sfd;

  (* Production setup: persistence + transparent input recording. *)
  let g = Machine.persist m (`Container c.Container.cid) in
  Machine.enable_recording m g;
  ignore (Scheduler.run_until_idle k ());
  ignore (Machine.checkpoint_now m g ());
  say "service running under checkpoints; boundary inputs are journaled";

  (* Traffic arrives... the last request is the killer. *)
  let requests = [ "a"; "b"; "c"; "q"; "z" ] in
  List.iter
    (fun req ->
      ignore (Syscall.write k client client_fd req);
      ignore (Scheduler.run_until_idle k ()))
    requests;
  let dead = Kernel.proc_exn k server.Process.pid in
  say "service CRASHED with status %d after %d requests"
    (Option.get dead.Process.exit_status)
    (List.length requests);
  say "journal since the last checkpoint: %d records (bounded by checkpointing)"
    (List.length (Rr.recorded g));

  (* Forensics: roll back and watch it happen again, deterministically. *)
  say "";
  say "rolling back to the last checkpoint and replaying the journal...";
  let pids, replayed = Machine.rollback_and_replay m g in
  say "restored pid %d; %d recorded inputs re-delivered" (List.hd pids) replayed;
  ignore (Scheduler.run_until_idle k ());
  let server' = Kernel.proc_exn k (List.hd pids) in
  (match server'.Process.exit_status with
   | Some 134 ->
     say "the service crashed AGAIN with status 134 after reprocessing %d requests -"
       (Context.reg_int (Process.main_thread server').Thread.context 3);
     say "the developer can now single-step those last moments at will"
   | Some s -> say "unexpected exit %d" s
   | None -> say "unexpected: service survived the replay");
  say "";
  say "(the journal is one checkpoint-interval long: 'a very small disk and";
  say " CPU overhead compared to standalone RR' - Section 4)"
