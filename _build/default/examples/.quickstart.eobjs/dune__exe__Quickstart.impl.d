examples/quickstart.ml: Aurora_proc Aurora_simtime Aurora_sls Aurora_vm Container Context Duration Format Int64 Kernel List Machine Printf Process Program Stats Syscall Thread Types Vmmap
