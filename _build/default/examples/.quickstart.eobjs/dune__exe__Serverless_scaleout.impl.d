examples/serverless_scaleout.ml: Aurora_apps Aurora_objstore Aurora_proc Aurora_simtime Aurora_sls Container Duration Format Kernel List Machine Printf Scheduler Serverless Stats Store Types
