examples/quickstart.mli:
