examples/crash_forensics.mli:
