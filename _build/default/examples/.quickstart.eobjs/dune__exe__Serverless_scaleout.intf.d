examples/serverless_scaleout.mli:
