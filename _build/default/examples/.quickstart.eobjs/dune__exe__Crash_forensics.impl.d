examples/crash_forensics.ml: Aurora_posix Aurora_proc Aurora_sls Aurora_vm Container Context Fd Int64 Kernel List Machine Option Printf Process Program Rr Scheduler Syscall Thread Vmmap
