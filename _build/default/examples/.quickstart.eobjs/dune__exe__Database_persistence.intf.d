examples/database_persistence.mli:
