examples/speculation.ml: Api Aurora_proc Aurora_simtime Aurora_sls Aurora_vm Container Context Duration Float Int64 Kernel List Machine Printf Process Program Syscall Thread Types Vmmap
