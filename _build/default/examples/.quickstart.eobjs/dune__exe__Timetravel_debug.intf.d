examples/timetravel_debug.mli:
