examples/speculation.mli:
