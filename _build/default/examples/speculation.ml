(* Application-level speculation with rollback (§4).

   A client sends data to a flaky server and continues optimistically,
   assuming delivery succeeded. When the transfer turns out to have
   failed, the SLS rolls the client back to its pre-send checkpoint;
   Aurora "notifies the client of the rollback, allowing it to try a
   more conservative code path" — here, register 15.

   Run with: dune exec examples/speculation.exe *)

open Aurora_simtime
open Aurora_vm
open Aurora_proc
open Aurora_sls

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* The speculating client: does some work (r2 counts completed work
   units built on top of the speculative send). r15 is the rollback
   notification: when set, it switches to the conservative path
   (r3 = 1) and redoes the work. *)
let () =
  Program.register ~name:"example/speculator" (fun k p th ->
      let ctx = th.Thread.context in
      if ctx.Context.pc = 0 then begin
        let e = Syscall.mmap_anon k p ~npages:4 in
        Context.set_reg_int ctx 1 e.Vmmap.start_vpn;
        ctx.Context.pc <- 1;
        Program.Continue
      end
      else begin
        if Context.reg ctx 15 = 1L then begin
          (* Rollback notification: take the conservative path. *)
          Context.set_reg ctx 15 0L;
          Context.set_reg_int ctx 3 1
        end;
        let work = Context.reg_int ctx 2 + 1 in
        Context.set_reg_int ctx 2 work;
        Syscall.mem_write k p ~vpn:(Context.reg_int ctx 1) ~offset:0
          ~value:(Int64.of_int work);
        Program.Continue
      end)

let reg p i = Context.reg_int (Process.main_thread p).Thread.context i

let () =
  say "== Speculative execution with rollback ==";
  let m = Machine.create () in
  let k = m.Machine.kernel in
  let c = Kernel.new_container k ~name:"spec" in
  let p = Kernel.spawn k ~container:c.Container.cid ~name:"speculator"
      ~program:"example/speculator" () in
  let g = Machine.persist m (`Container c.Container.cid) in

  (* Reach a stable point and checkpoint it: the speculation anchor. *)
  Machine.run m (Duration.microseconds 100);
  ignore (Api.sls_checkpoint m g ());
  let anchor = reg p 2 in
  say "checkpoint at work unit %d; client now SENDS data speculatively" anchor;
  say "and keeps working without waiting for the acknowledgement...";

  (* Speculative progress on top of the unacknowledged send. *)
  Machine.run m (Duration.microseconds 300);
  say "speculative progress: work unit %d (path: %s)" (reg p 2)
    (if reg p 3 = 0 then "optimistic" else "conservative");

  (* The transfer failed: roll the client back to the anchor. *)
  say "";
  say "...the transfer FAILED. rolling the client back:";
  let pids = Api.sls_rollback m g in
  let p' = Kernel.proc_exn k (List.hd pids) in
  say "rolled back to work unit %d; rollback notification delivered (r15)"
    (reg p' 2);

  (* The client observes the notification and retries conservatively. *)
  Machine.run m (Duration.microseconds 300);
  say "after retry: work unit %d (path: %s)" (reg p' 2)
    (if reg p' 3 = 0 then "optimistic" else "conservative");
  say "";
  say "(the rollback cost one restore - %.1f us - instead of a protocol redesign)"
    (match g.Types.last_breakdown with
     | Some b -> Duration.to_us b.Types.stop_time
     | None -> Float.nan)
