(* Serverless warm starts and scale-out (§4).

   One function runtime is initialized once and checkpointed; "scaling
   out amounts to repeatedly restoring an already checkpointed
   application". Instances share unmodified pages in the object store,
   so each additional function costs a small delta.

   Run with: dune exec examples/serverless_scaleout.exe *)

open Aurora_simtime
open Aurora_proc
open Aurora_objstore
open Aurora_sls
open Aurora_apps

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  say "== Serverless scale-out ==";
  let m = Machine.create () in
  let k = m.Machine.kernel in

  (* Cold start: boot the runtime and let it initialize. *)
  let c = Kernel.new_container k ~name:"runtime" in
  let cold_start_begin = Machine.now m in
  let inst = Serverless.spawn k ~container:c.Container.cid (Serverless.default_config ()) in
  ignore (Scheduler.run_until_idle k ());
  let cold_start = Duration.sub (Machine.now m) cold_start_begin in
  say "cold start (runtime init): %.1f us" (Duration.to_us cold_start);

  (* Checkpoint the initialized instance: the warm-start image. *)
  let g = Machine.persist m (`Container c.Container.cid) in
  let b = Machine.checkpoint_now m g () in
  Store.wait_durable m.Machine.disk_store b.Types.durable_at;
  say "initialized image checkpointed (generation %d)" b.Types.gen;

  (* Warm starts: restore a clone per invocation. *)
  say "";
  say "%6s %18s %14s" "clone" "restore (us)" "handled";
  let restore_stats = Stats.create () in
  for i = 1 to 10 do
    let pids, breakdown = Machine.clone_group m g () in
    Stats.add_duration restore_stats breakdown.Types.total_latency;
    match Serverless.wire_restored k ~func_pid:(List.hd pids) with
    | None -> failwith "clone vanished"
    | Some clone ->
      Serverless.invoke k clone ~id:i;
      ignore (Scheduler.run_until_idle k ());
      say "%6d %18.1f %14d" i
        (Duration.to_us breakdown.Types.total_latency)
        (Serverless.invocations clone.Serverless.func)
  done;
  say "";
  say "warm-start restore: %s (vs %.1f us cold start)"
    (Format.asprintf "%a" Stats.pp_summary restore_stats)
    (Duration.to_us cold_start);

  (* Density: a different function checkpoints into the same store and
     costs only its delta - the runtime pages dedup away. *)
  let before = (Store.stats m.Machine.disk_store).Store.live_blocks in
  let c2 = Kernel.new_container k ~name:"runtime2" in
  let inst2 =
    Serverless.spawn k ~container:c2.Container.cid
      (Serverless.default_config ~func_id:1 ())
  in
  ignore inst2;
  ignore (Scheduler.run_until_idle k ());
  let g2 = Machine.persist m (`Container c2.Container.cid) in
  ignore (Machine.checkpoint_now m g2 ());
  let st = Store.stats m.Machine.disk_store in
  say "a second (different) function checkpointed: +%d blocks over %d - only its"
    (st.Store.live_blocks - before) before;
  say "delta is new ('machines could potentially hold billions of functions');";
  say "dedup hits so far: %d" st.Store.dedup_hits;
  ignore inst
