(* Quickstart: transparent persistence in five steps.

   A counter application runs with no persistence code at all. Aurora
   checkpoints it 100x per second; the machine loses power; the
   application is restored and resumes counting exactly where the last
   checkpoint left it — "developers design programs as if they never
   crash".

   Run with: dune exec examples/quickstart.exe *)

open Aurora_simtime
open Aurora_vm
open Aurora_proc
open Aurora_sls

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* The application: bumps a counter in its memory forever. It knows
   nothing about persistence. *)
let () =
  Program.register ~name:"example/counter" (fun k p th ->
      let ctx = th.Thread.context in
      if ctx.Context.pc = 0 then begin
        let e = Syscall.mmap_anon k p ~npages:1 in
        Context.set_reg_int ctx 1 e.Vmmap.start_vpn;
        ctx.Context.pc <- 1;
        Program.Continue
      end
      else begin
        let count = Context.reg_int ctx 2 + 1 in
        Context.set_reg_int ctx 2 count;
        Syscall.mem_write k p ~vpn:(Context.reg_int ctx 1) ~offset:0
          ~value:(Int64.of_int count);
        Program.Continue
      end)

let counter_value p = Context.reg_int (Process.main_thread p).Thread.context 2

let () =
  say "== Aurora quickstart ==";
  (* 1. Boot a machine (kernel + Optane-class NVMe + object store). *)
  let m = Machine.create () in
  let k = m.Machine.kernel in

  (* 2. Run an ordinary application in a container. *)
  let c = Kernel.new_container k ~name:"demo" in
  let p = Kernel.spawn k ~container:c.Container.cid ~name:"counter"
      ~program:"example/counter" () in
  say "spawned pid %d running 'example/counter' (no persistence code in it)"
    p.Process.pid;

  (* 3. `sls persist`: transparent checkpoints every 10 ms. *)
  let g = Machine.persist m (`Container c.Container.cid) in
  Machine.run m (Duration.milliseconds 50);
  say "after 50 ms: counter = %d, %d checkpoints taken (stop time %s)"
    (counter_value p)
    (Stats.count g.Types.stop_stats)
    (Format.asprintf "%a" Stats.pp_summary g.Types.stop_stats);

  (* 4. Power failure. Everything volatile is gone. *)
  let before_crash = counter_value p in
  Machine.crash m;
  say "power failure! (counter was %d; DRAM and kernel state are gone)"
    before_crash;

  (* 5. Boot, restore, resume. *)
  let m' = Machine.recover m in
  let g' = Machine.persist m' (`Container c.Container.cid) in
  let pids, breakdown = Machine.restore_group m' g' () in
  let p' = Kernel.proc_exn m'.Machine.kernel (List.hd pids) in
  say "restored pid %d in %.1f simulated us (objstore %.1f / metadata %.1f / memory %.1f)"
    p'.Process.pid
    (Duration.to_us breakdown.Types.total_latency)
    (Duration.to_us breakdown.Types.objstore_read)
    (Duration.to_us breakdown.Types.metadata_state)
    (Duration.to_us breakdown.Types.memory_state);
  say "counter resumed at %d (within one checkpoint interval of %d)"
    (counter_value p') before_crash;
  Machine.run m' (Duration.milliseconds 5);
  say "after 5 more ms it reached %d - oblivious to the interruption"
    (counter_value p')
