(* Time-travel debugging (§4, "Debugging and Speculation").

   An application corrupts an invariant at an unknown point. Aurora's
   incremental checkpoints "leave old ones intact", so we bisect the
   checkpoint history to find the first generation where the invariant
   is violated, then restore the last good one and watch the bug
   happen.

   Run with: dune exec examples/timetravel_debug.exe *)

open Aurora_simtime
open Aurora_vm
open Aurora_proc
open Aurora_objstore
open Aurora_sls

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* The buggy application: keeps two counters that must stay equal, but
   after step 700 a "bug" increments only one of them. *)
let () =
  Program.register ~name:"example/buggy" (fun k p th ->
      let ctx = th.Thread.context in
      if ctx.Context.pc = 0 then begin
        let e = Syscall.mmap_anon k p ~npages:2 in
        Context.set_reg_int ctx 1 e.Vmmap.start_vpn;
        ctx.Context.pc <- 1;
        Program.Continue
      end
      else begin
        let step = Context.reg_int ctx 2 + 1 in
        Context.set_reg_int ctx 2 step;
        let base = Context.reg_int ctx 1 in
        Syscall.mem_write k p ~vpn:base ~offset:0 ~value:(Int64.of_int step);
        if step <= 700 then
          Syscall.mem_write k p ~vpn:(base + 1) ~offset:0 ~value:(Int64.of_int step)
        else () (* the bug: the twin counter stops being updated *);
        Program.Continue
      end)

(* The invariant check: both counter pages hold identical content
   history (their seeds match when updated in lockstep). *)
let invariant_holds k p =
  let ctx = (Process.main_thread p).Thread.context in
  let base = Context.reg_int ctx 1 in
  let a = Syscall.mem_page k p ~vpn:base in
  let b = Syscall.mem_page k p ~vpn:(base + 1) in
  Content.equal a b

let () =
  say "== Time-travel debugging ==";
  let m = Machine.create () in
  let k = m.Machine.kernel in
  let c = Kernel.new_container k ~name:"debug" in
  let _p = Kernel.spawn k ~container:c.Container.cid ~name:"buggy"
      ~program:"example/buggy" () in
  let g = Machine.persist m ~interval:(Duration.microseconds 100)
      (`Container c.Container.cid) in
  (* Keep plenty of history for the bisection. *)
  m.Machine.history_window <- 1_000;
  Machine.run m (Duration.milliseconds 3);
  say "ran the app under 10 kHz checkpoints; it has corrupted its invariant by now";

  let gens = Store.generations m.Machine.disk_store in
  say "checkpoint history: %d generations" (List.length gens);

  (* Bisect: find the first generation where the invariant is broken.
     Restoring from an image never disturbs it, so we can probe as
     often as we like. *)
  let probe gen =
    let pids, _ = Machine.restore_group m g ~gen () in
    let p = Kernel.proc_exn k (List.hd pids) in
    let ok = invariant_holds k p in
    let step = Context.reg_int (Process.main_thread p).Thread.context 2 in
    (ok, step)
  in
  let arr = Array.of_list gens in
  let lo = ref 0 and hi = ref (Array.length arr - 1) in
  let probes = ref 0 in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    incr probes;
    let ok, step = probe arr.(mid) in
    say "probe %d: generation %d (app step %d) -> invariant %s" !probes arr.(mid)
      step (if ok then "holds" else "VIOLATED");
    if ok then lo := mid else hi := mid
  done;
  let _, good_step = probe arr.(!lo) in
  let _, bad_step = probe arr.(!hi) in
  say "";
  say "first bad checkpoint: generation %d (step %d); last good: generation %d (step %d)"
    arr.(!hi) bad_step arr.(!lo) good_step;
  say "(the bug fires at step 701 - found with %d probes over %d checkpoints)"
    !probes (Array.length arr);

  (* Restore the last good image and watch the bug happen live. *)
  let pids, _ = Machine.restore_group m g ~gen:arr.(!lo) () in
  let p = Kernel.proc_exn k (List.hd pids) in
  ignore (Scheduler.run k ~until:(Duration.add (Machine.now m) (Duration.microseconds 50)));
  say "restored the last good image and re-ran: invariant now %s (deterministic replay)"
    (if invariant_holds k p then "holds" else "VIOLATED")
