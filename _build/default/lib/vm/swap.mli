(** Swap: paging memory out to a backing device under pressure.

    Aurora integrates swap with checkpointing: a page swapped out due
    to memory pressure keeps its content reachable (the [Paged_out]
    slot carries it), so "when pages are swapped out due to memory
    pressure they are incorporated into the subsequent checkpoint"
    works without re-reading the device at checkpoint time, while
    faults pay the device's real read cost. *)

open Aurora_device

type t

val create : dev:Blockdev.t -> pool:Frame.pool -> t
(** The device's profile determines the major-fault cost of every page
    this swapper evicts. *)

val rebalance : t -> objects:Vmobject.t list -> int
(** If the pool is over capacity, clock-sweep the given objects and
    page victims out to the swap device until residency fits (or no
    more evictable pages exist). Returns the number of pages evicted;
    charges the clock for the device writes. *)

val evict : t -> objects:Vmobject.t list -> want:int -> int
(** Unconditionally evict up to [want] pages (used by tests and by the
    lazy-restore bench to construct cold memory). *)

val pages_swapped : t -> int
(** Total pages ever written to swap. *)
