open Aurora_device

type t = {
  dev : Blockdev.t;
  pool : Frame.pool;
  clockalg : Clockalg.t;
  mutable next_slot : int;
  mutable pages_swapped : int;
}

let create ~dev ~pool =
  { dev; pool; clockalg = Clockalg.create (); next_slot = 0; pages_swapped = 0 }

let read_cost t =
  Profile.transfer_cost (Blockdev.profile t.dev) ~op:`Read ~bytes:Blockdev.block_size

let evict t ~objects ~want =
  let victims = Clockalg.sweep t.clockalg ~objects ~want in
  let cost = read_cost t in
  let writes =
    List.map
      (fun { Clockalg.obj; pindex; frame = _ } ->
        let slot = t.next_slot in
        t.next_slot <- t.next_slot + 1;
        let content = Vmobject.page_out obj pindex ~read_cost:cost in
        (slot, Blockdev.Seed (Content.to_seed content)))
      victims
  in
  if writes <> [] then begin
    Blockdev.write_many t.dev writes;
    t.pages_swapped <- t.pages_swapped + List.length writes
  end;
  List.length writes

let rebalance t ~objects =
  let over = Frame.over_capacity t.pool in
  if over = 0 then 0 else evict t ~objects ~want:over

let pages_swapped t = t.pages_swapped
