(** Clock (second-chance) page replacement, plus the hot-set extraction
    Aurora's lazy restore uses.

    The sweep walks resident pages of the given objects in a stable
    circular order: pages whose accessed bit is set get a second chance
    (the bit is cleared); pages found cold are returned as eviction
    victims. Frames shared by more than one reference (COW sharing,
    in-flight flushes) are skipped — evicting them would need reverse
    mapping machinery the simulation does not model.

    [Vmobject.hot_pages] provides the per-object heat ranking; this
    module adds the cross-object selection used when a checkpoint
    records which pages to page in eagerly on restore ("Aurora uses the
    clock page replacement algorithm to optimize restore by eagerly
    paging in the hottest pages"). *)

type victim = { obj : Vmobject.t; pindex : int; frame : Frame.t }

type t

val create : unit -> t
(** Sweep state (the clock hand position persists across sweeps). *)

val sweep : t -> objects:Vmobject.t list -> want:int -> victim list
(** Find up to [want] eviction victims. May return fewer when most
    pages are hot or shared; at most two full revolutions are made per
    call. *)

val hot_set : objects:Vmobject.t list -> limit:int -> (Vmobject.t * int) list
(** The globally hottest [limit] (object, pindex) pairs, hottest
    first; ties broken by (object id, page index) for determinism. *)

val age : objects:Vmobject.t list -> unit
(** Apply one aging step to every object's heat counters. *)
