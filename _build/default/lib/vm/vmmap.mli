(** Per-process address spaces.

    An address space is an ordered list of map entries, each covering a
    page-aligned virtual range backed by a {!Vmobject.t} at some
    offset. Addresses here are virtual page numbers (vpn); byte
    offsets only appear inside a page. The write path implements the
    full fault taxonomy and charges the simulated clock accordingly:

    - demand-zero fill on first touch of an anonymous page,
    - fork copy-on-write through shadow objects ([needs_copy]),
    - Aurora's checkpoint copy-on-write on armed pages,
    - major faults on [Paged_out] pages (swap or lazy-restore image),
      charged at the backing device's read cost.

    Entries carry the two knobs `sls_mctl` exposes: whether the range
    is persisted at all, and its lazy-restore policy. *)

open Aurora_simtime

type restore_policy = [ `Lazy | `Eager | `Hot ]

type entry = {
  eid : int;
  mutable start_vpn : int;
  mutable npages : int;
  mutable obj : Vmobject.t;
  mutable obj_offset : int;     (** page index in [obj] of [start_vpn] *)
  mutable writable : bool;
  mutable inheritance : [ `Share | `Copy ];
  mutable needs_copy : bool;    (** fork COW: shadow before first write *)
  mutable persisted : bool;     (** sls_mctl include/exclude *)
  mutable restore_policy : restore_policy;
}

type fault_counts = {
  mutable zero_fill : int;
  mutable fork_cow : int;
  mutable ckpt_cow : int;
  mutable major : int;
}

type t

val create : clock:Clock.t -> pool:Frame.pool -> unit -> t
val asid : t -> int
val clock : t -> Clock.t
val pool : t -> Frame.pool
val entries : t -> entry list
(** Sorted by [start_vpn]. *)

val faults : t -> fault_counts

val map_anonymous :
  t -> ?inheritance:[ `Share | `Copy ] -> ?writable:bool -> npages:int -> unit -> entry
(** A fresh anonymous mapping placed after the highest existing entry.
    Inheritance defaults to [`Copy] (private memory). *)

val map_object :
  t ->
  ?inheritance:[ `Share | `Copy ] ->
  ?writable:bool ->
  obj:Vmobject.t ->
  obj_offset:int ->
  npages:int ->
  unit ->
  entry
(** Map an existing object (shared memory, file mappings); takes a
    reference on it. Inheritance defaults to [`Share]. *)

val map_fixed :
  t ->
  start_vpn:int ->
  ?inheritance:[ `Share | `Copy ] ->
  ?writable:bool ->
  obj:Vmobject.t ->
  obj_offset:int ->
  npages:int ->
  unit ->
  entry
(** Restore path: map an object at an exact virtual address (the
    checkpointed layout must be reproduced). Raises [Invalid_argument]
    if the range overlaps an existing entry. Takes a reference on the
    object. *)

val unmap : t -> entry -> unit
val destroy : t -> unit
(** Unmaps everything; the space must not be used afterwards. *)

val entry_at : t -> int -> entry option
(** The entry covering a vpn, if mapped. *)

exception Fault of string
(** Raised on access to an unmapped vpn or write to a read-only
    mapping (the simulated SIGSEGV). *)

val read : t -> vpn:int -> Content.t
(** Content of the page at [vpn] (zero if never written). Touches the
    page's heat. *)

val read_value : t -> vpn:int -> offset:int -> int64
(** A representative 64-bit load: hashes page content with the offset
    (the simulation does not track individual words). *)

val write : t -> vpn:int -> offset:int -> value:int64 -> unit
(** Store with full fault handling, as described above. *)

val load_page : t -> vpn:int -> Content.t -> unit
(** Overwrite a whole page (a page-sized [read(2)] into memory, e.g. a
    database loading a snapshot). Same fault handling as {!write},
    plus one page-copy charge. *)

val fork : t -> t
(** A child address space: [`Share] entries alias the same object,
    [`Copy] entries become copy-on-write via shadow chains (both parent
    and child [needs_copy] until first write). *)

val resident_pages : t -> int
(** Resident pages reachable through this space's entries (each
    (object, pindex) counted once). *)

val total_pages : t -> int
(** Sum of entry sizes (the mapped virtual extent). *)

val distinct_objects : t -> Vmobject.t list
(** Objects referenced by entries, deduplicated, entry order. Includes
    shadow-chain backing objects. *)

val pp : Format.formatter -> t -> unit
