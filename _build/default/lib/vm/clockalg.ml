type victim = { obj : Vmobject.t; pindex : int; frame : Frame.t }

type t = { mutable hand : int }

let create () = { hand = 0 }

(* Resident, evictable (unshared) pages of the objects, in a stable
   order: (object id, page index). *)
let resident_pages objects =
  let pages =
    List.concat_map
      (fun obj ->
        Vmobject.fold_pages obj ~init:[] ~f:(fun acc pindex slot ->
            match slot with
            | Vmobject.Resident frame -> (obj, pindex, frame) :: acc
            | Vmobject.Paged_out _ -> acc)
        |> List.rev)
      objects
  in
  Array.of_list pages

let sweep t ~objects ~want =
  if want < 0 then invalid_arg "Clockalg.sweep: negative want";
  let pages = resident_pages objects in
  let n = Array.length pages in
  if n = 0 || want = 0 then []
  else begin
    let victims = ref [] in
    let found = ref 0 in
    let steps = ref 0 in
    (* Two revolutions: the first clears accessed bits, the second can
       then evict pages untouched since. *)
    while !found < want && !steps < 2 * n do
      let obj, pindex, frame = pages.(t.hand mod n) in
      t.hand <- t.hand + 1;
      incr steps;
      if frame.Frame.refcount = 1 then begin
        if frame.Frame.accessed then frame.Frame.accessed <- false
        else begin
          victims := { obj; pindex; frame } :: !victims;
          incr found
        end
      end
    done;
    List.rev !victims
  end

let hot_set ~objects ~limit =
  if limit < 0 then invalid_arg "Clockalg.hot_set: negative limit";
  let scored =
    List.concat_map
      (fun obj ->
        List.map (fun pindex -> (Vmobject.heat obj pindex, obj, pindex))
          (Vmobject.hot_pages obj ~limit:max_int))
      objects
  in
  let compare_hotness (ha, oa, pa) (hb, ob, pb) =
    match Int.compare hb ha with
    | 0 -> (
      match Int.compare (Vmobject.oid oa) (Vmobject.oid ob) with
      | 0 -> Int.compare pa pb
      | c -> c)
    | c -> c
  in
  List.sort compare_hotness scored
  |> List.filteri (fun i _ -> i < limit)
  |> List.map (fun (_, obj, pindex) -> (obj, pindex))

let age ~objects = List.iter Vmobject.age_heat objects
