type t = {
  id : int;
  mutable content : Content.t;
  mutable refcount : int;
  mutable accessed : bool;
}

type pool = {
  capacity : int option;
  mutable next_id : int;
  mutable resident : int;
  mutable total_allocated : int;
  live : (int, t) Hashtbl.t;
}

let create_pool ?capacity_pages () =
  (match capacity_pages with
   | Some c when c <= 0 -> invalid_arg "Frame.create_pool: capacity <= 0"
   | _ -> ());
  { capacity = capacity_pages; next_id = 0; resident = 0; total_allocated = 0;
    live = Hashtbl.create 4096 }

let alloc pool content =
  let f = { id = pool.next_id; content; refcount = 1; accessed = true } in
  pool.next_id <- pool.next_id + 1;
  pool.resident <- pool.resident + 1;
  pool.total_allocated <- pool.total_allocated + 1;
  Hashtbl.replace pool.live f.id f;
  f

let incref f =
  if f.refcount <= 0 then invalid_arg "Frame.incref: dead frame";
  f.refcount <- f.refcount + 1

let decref pool f =
  if f.refcount <= 0 then invalid_arg "Frame.decref: dead frame";
  f.refcount <- f.refcount - 1;
  if f.refcount = 0 then begin
    pool.resident <- pool.resident - 1;
    Hashtbl.remove pool.live f.id
  end

let resident pool = pool.resident
let total_allocated pool = pool.total_allocated
let capacity pool = pool.capacity

let over_capacity pool =
  match pool.capacity with
  | None -> 0
  | Some c -> if pool.resident > c then pool.resident - c else 0

let live_frames pool =
  let frames = Hashtbl.fold (fun _ f acc -> f :: acc) pool.live [] in
  List.sort (fun a b -> Int.compare a.id b.id) frames
