type t = int64

let zero = 0L
let of_seed s = s
let to_seed s = s

(* SplitMix64 finalizer: good avalanche, cheap. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let write t ~offset ~value =
  if offset < 0 || offset >= 4096 then invalid_arg "Content.write: offset outside page";
  (* Mix the store into the seed; include the offset so stores to
     different locations commute differently. *)
  let x = Int64.logxor (Int64.of_int offset) (Int64.mul value 0x9E3779B97F4A7C15L) in
  mix (Int64.add (Int64.mul t 0x2545F4914F6CDD1DL) x)

let hash t = mix (Int64.logxor t 0xA5A5A5A5A5A5A5A5L)
let equal = Int64.equal
let is_zero t = Int64.equal t 0L

let to_bytes t =
  let b = Bytes.create 4096 in
  if is_zero t then b
  else begin
    let state = ref t in
    for i = 0 to 511 do
      state := Int64.add !state 0x9E3779B97F4A7C15L;
      Bytes.set_int64_le b (i * 8) (mix !state)
    done;
    b
  end

let pp ppf t = Format.fprintf ppf "0x%Lx" t
