lib/vm/vmmap.mli: Aurora_simtime Clock Content Format Frame Vmobject
