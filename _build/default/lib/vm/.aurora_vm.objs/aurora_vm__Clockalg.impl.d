lib/vm/clockalg.ml: Array Frame Int List Vmobject
