lib/vm/frame.ml: Content Hashtbl Int List
