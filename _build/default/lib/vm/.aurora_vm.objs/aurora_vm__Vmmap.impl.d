lib/vm/vmmap.ml: Aurora_device Aurora_simtime Blockdev Clock Content Costmodel Format Frame Hashtbl Int Int64 List Printf Vmobject
