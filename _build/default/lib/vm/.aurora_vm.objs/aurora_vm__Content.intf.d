lib/vm/content.mli: Format
