lib/vm/frame.mli: Content
