lib/vm/swap.ml: Aurora_device Blockdev Clockalg Content Frame List Profile Vmobject
