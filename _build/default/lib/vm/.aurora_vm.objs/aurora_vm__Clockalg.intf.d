lib/vm/clockalg.mli: Frame Vmobject
