lib/vm/vmobject.mli: Aurora_simtime Content Duration Format Frame
