lib/vm/vmobject.ml: Aurora_simtime Content Duration Format Frame Hashtbl Int List Option Printf
