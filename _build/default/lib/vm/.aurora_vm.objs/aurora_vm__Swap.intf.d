lib/vm/swap.mli: Aurora_device Blockdev Frame Vmobject
