lib/vm/content.ml: Bytes Format Int64
