open Aurora_simtime
open Aurora_device

type restore_policy = [ `Lazy | `Eager | `Hot ]

type entry = {
  eid : int;
  mutable start_vpn : int;
  mutable npages : int;
  mutable obj : Vmobject.t;
  mutable obj_offset : int;
  mutable writable : bool;
  mutable inheritance : [ `Share | `Copy ];
  mutable needs_copy : bool;
  mutable persisted : bool;
  mutable restore_policy : restore_policy;
}

type fault_counts = {
  mutable zero_fill : int;
  mutable fork_cow : int;
  mutable ckpt_cow : int;
  mutable major : int;
}

type t = {
  asid : int;
  clock : Clock.t;
  pool : Frame.pool;
  mutable entries : entry list; (* sorted by start_vpn *)
  mutable next_vpn : int;
  mutable next_eid : int;
  faults : fault_counts;
}

let next_asid = ref 0

let create ~clock ~pool () =
  incr next_asid;
  { asid = !next_asid; clock; pool; entries = []; next_vpn = 0x1000; next_eid = 0;
    faults = { zero_fill = 0; fork_cow = 0; ckpt_cow = 0; major = 0 } }

let asid t = t.asid
let clock t = t.clock
let pool t = t.pool
let entries t = t.entries
let faults t = t.faults

let insert_entry t e =
  t.entries <-
    List.sort (fun a b -> Int.compare a.start_vpn b.start_vpn) (e :: t.entries)

let fresh_eid t =
  t.next_eid <- t.next_eid + 1;
  t.next_eid

let alloc_range t npages =
  let start = t.next_vpn in
  t.next_vpn <- t.next_vpn + npages + 16; (* guard gap *)
  start

let map_anonymous t ?(inheritance = `Copy) ?(writable = true) ~npages () =
  if npages <= 0 then invalid_arg "Vmmap.map_anonymous: npages <= 0";
  let obj = Vmobject.create ~pool:t.pool Vmobject.Anonymous in
  let e =
    { eid = fresh_eid t; start_vpn = alloc_range t npages; npages; obj;
      obj_offset = 0; writable; inheritance; needs_copy = false;
      persisted = true; restore_policy = `Hot }
  in
  insert_entry t e;
  e

let map_object t ?(inheritance = `Share) ?(writable = true) ~obj ~obj_offset ~npages () =
  if npages <= 0 then invalid_arg "Vmmap.map_object: npages <= 0";
  if obj_offset < 0 then invalid_arg "Vmmap.map_object: negative offset";
  Vmobject.incref obj;
  let e =
    { eid = fresh_eid t; start_vpn = alloc_range t npages; npages; obj; obj_offset;
      writable; inheritance; needs_copy = false; persisted = true;
      restore_policy = `Hot }
  in
  insert_entry t e;
  e

let map_fixed t ~start_vpn ?(inheritance = `Share) ?(writable = true) ~obj ~obj_offset
    ~npages () =
  if npages <= 0 then invalid_arg "Vmmap.map_fixed: npages <= 0";
  let overlaps e =
    start_vpn < e.start_vpn + e.npages && e.start_vpn < start_vpn + npages
  in
  if List.exists overlaps t.entries then invalid_arg "Vmmap.map_fixed: range overlaps";
  Vmobject.incref obj;
  let e =
    { eid = fresh_eid t; start_vpn; npages; obj; obj_offset; writable; inheritance;
      needs_copy = false; persisted = true; restore_policy = `Hot }
  in
  insert_entry t e;
  if start_vpn + npages + 16 > t.next_vpn then t.next_vpn <- start_vpn + npages + 16;
  e

let unmap t e =
  if not (List.memq e t.entries) then invalid_arg "Vmmap.unmap: entry not in this map";
  t.entries <- List.filter (fun x -> not (x == e)) t.entries;
  Vmobject.decref e.obj

let destroy t =
  List.iter (fun e -> Vmobject.decref e.obj) t.entries;
  t.entries <- []

let entry_at t vpn =
  List.find_opt (fun e -> vpn >= e.start_vpn && vpn < e.start_vpn + e.npages) t.entries

exception Fault of string

let require_entry t vpn =
  match entry_at t vpn with
  | Some e -> e
  | None -> raise (Fault (Printf.sprintf "as#%d: unmapped vpn 0x%x" t.asid vpn))

let pindex_of e vpn = e.obj_offset + (vpn - e.start_vpn)

(* Demand fault on read: pull a paged-out page in, or observe zero.
   Reads through the whole shadow chain. *)
let read t ~vpn =
  let e = require_entry t vpn in
  let pindex = pindex_of e vpn in
  match Vmobject.resolve e.obj pindex with
  | Vmobject.Found { owner; slot = Vmobject.Resident f } ->
    Vmobject.touch owner pindex;
    f.Frame.content
  | Vmobject.Found { owner; slot = Vmobject.Paged_out { content; read_cost } } ->
    (* Major fault: bring the page in from its backing device. *)
    t.faults.major <- t.faults.major + 1;
    Clock.advance t.clock Costmodel.page_fault_trap;
    Clock.advance t.clock read_cost;
    let frame = Frame.alloc t.pool content in
    Vmobject.page_in owner pindex frame;
    Vmobject.touch owner pindex;
    content
  | Vmobject.Absent -> Content.zero

let read_value t ~vpn ~offset =
  if offset < 0 || offset >= Blockdev.block_size then
    invalid_arg "Vmmap.read_value: offset outside page";
  let content = read t ~vpn in
  Int64.logxor (Content.hash content) (Int64.of_int offset)

(* The write path: resolve the page, handling in order
   (1) fork-COW shadowing, (2) major fault page-in, (3) checkpoint-COW
   on armed pages, (4) copy-up from a backing object, (5) demand-zero. *)
let write t ~vpn ~offset ~value =
  let e = require_entry t vpn in
  if not e.writable then
    raise (Fault (Printf.sprintf "as#%d: write to read-only vpn 0x%x" t.asid vpn));
  if e.needs_copy then begin
    e.obj <- Vmobject.make_shadow e.obj;
    (* make_shadow took a reference on the backing for the shadow;
       the entry's own reference moves to the shadow, so drop the
       entry's reference on the old object. *)
    (match Vmobject.shadow_of e.obj with
     | Some backing -> Vmobject.decref backing
     | None -> assert false);
    e.needs_copy <- false
  end;
  let pindex = pindex_of e vpn in
  let apply frame =
    frame.Frame.content <- Content.write frame.Frame.content ~offset ~value;
    frame.Frame.accessed <- true
  in
  (match Vmobject.resolve e.obj pindex with
   | Vmobject.Found { owner; slot } when owner == e.obj -> (
     match slot with
     | Vmobject.Resident f ->
       if Vmobject.is_armed owner pindex then begin
         (* Aurora checkpoint COW: new frame shared by all mappers. *)
         t.faults.ckpt_cow <- t.faults.ckpt_cow + 1;
         Clock.advance t.clock Costmodel.page_fault_trap;
         Clock.advance t.clock Costmodel.cow_fault_service;
         let fresh = Vmobject.disarm_for_write owner pindex in
         apply fresh
       end
       else begin
         Vmobject.mark_dirty owner pindex;
         apply f
       end
     | Vmobject.Paged_out { content; read_cost } ->
       t.faults.major <- t.faults.major + 1;
       Clock.advance t.clock Costmodel.page_fault_trap;
       Clock.advance t.clock read_cost;
       let frame = Frame.alloc t.pool content in
       Vmobject.page_in owner pindex frame;
       (* Was armed while paged out? The image still holds the old
          content, so writing the fresh resident copy is safe; it just
          becomes dirty for the next checkpoint. *)
       if Vmobject.is_armed owner pindex then begin
         t.faults.ckpt_cow <- t.faults.ckpt_cow + 1;
         Clock.advance t.clock Costmodel.cow_fault_service;
         let fresh = Vmobject.disarm_for_write owner pindex in
         apply fresh
       end
       else begin
         Vmobject.mark_dirty owner pindex;
         apply frame
       end)
   | Vmobject.Found { owner = _; slot } ->
     (* Page lives in a backing object: fork-COW copy-up into e.obj. *)
     t.faults.fork_cow <- t.faults.fork_cow + 1;
     Clock.advance t.clock Costmodel.page_fault_trap;
     Clock.advance t.clock Costmodel.cow_fault_service;
     let content =
       match slot with
       | Vmobject.Resident f -> f.Frame.content
       | Vmobject.Paged_out { content; read_cost } ->
         t.faults.major <- t.faults.major + 1;
         Clock.advance t.clock read_cost;
         content
     in
     let frame = Frame.alloc t.pool content in
     Vmobject.install e.obj pindex frame;
     Vmobject.mark_dirty e.obj pindex;
     apply frame
   | Vmobject.Absent ->
     t.faults.zero_fill <- t.faults.zero_fill + 1;
     Clock.advance t.clock Costmodel.page_fault_trap;
     Clock.advance t.clock Costmodel.zero_fill_fault;
     let frame = Frame.alloc t.pool Content.zero in
     Vmobject.install e.obj pindex frame;
     Vmobject.mark_dirty e.obj pindex;
     apply frame);
  Vmobject.touch e.obj pindex

let load_page t ~vpn content =
  (* Route through the write path for the fault taxonomy, then replace
     the whole contents, paying one in-memory page copy. *)
  write t ~vpn ~offset:0 ~value:0L;
  let e = require_entry t vpn in
  let pindex = pindex_of e vpn in
  (match Vmobject.resolve e.obj pindex with
   | Vmobject.Found { owner; slot = Vmobject.Resident f } when owner == e.obj ->
     f.Frame.content <- content
   | _ -> assert false);
  Clock.advance t.clock (Costmodel.page_copy ~pages:1)

let fork t =
  let child = create ~clock:t.clock ~pool:t.pool () in
  child.next_vpn <- t.next_vpn;
  let clone_entry e =
    (match e.inheritance with
     | `Share -> Vmobject.incref e.obj
     | `Copy ->
       Vmobject.incref e.obj;
       (* Both sides must now copy before writing into the shared
          backing object. *)
       e.needs_copy <- true);
    { e with
      eid = fresh_eid child;
      needs_copy = (match e.inheritance with `Share -> false | `Copy -> true);
    }
  in
  child.entries <- List.map clone_entry t.entries;
  child

let distinct_objects t =
  let seen = Hashtbl.create 16 in
  let add acc obj =
    let id = Vmobject.oid obj in
    if Hashtbl.mem seen id then acc
    else begin
      Hashtbl.replace seen id ();
      obj :: acc
    end
  in
  let rec add_chain acc obj =
    let acc = add acc obj in
    match Vmobject.shadow_of obj with
    | Some backing when not (Hashtbl.mem seen (Vmobject.oid backing)) ->
      add_chain acc backing
    | Some _ | None -> acc
  in
  List.rev (List.fold_left (fun acc e -> add_chain acc e.obj) [] t.entries)

let resident_pages t =
  List.fold_left (fun acc obj -> acc + Vmobject.resident_count obj) 0 (distinct_objects t)

let total_pages t = List.fold_left (fun acc e -> acc + e.npages) 0 t.entries

let pp ppf t =
  Format.fprintf ppf "as#%d(%d entries, %d pages mapped, %d resident)"
    t.asid (List.length t.entries) (total_pages t) (resident_pages t)
