(** Physical page frames and the physical-memory pool.

    A frame is one resident 4 KiB physical page: content plus a
    reference count (frames are shared by COW, by shared mappings, and
    by in-flight checkpoint flushes) and an accessed bit for the clock
    replacement algorithm. The pool tracks residency against an
    optional capacity, which is what creates memory pressure for the
    swap machinery. *)

type t = {
  id : int;
  mutable content : Content.t;
  mutable refcount : int;
  mutable accessed : bool;
}

type pool

val create_pool : ?capacity_pages:int -> unit -> pool
(** [capacity_pages] bounds residency; [None] means unbounded. *)

val alloc : pool -> Content.t -> t
(** A fresh frame with refcount 1. Never fails; use {!over_capacity}
    to detect pressure and trigger eviction. *)

val incref : t -> unit

val decref : pool -> t -> unit
(** Drops a reference; at zero the frame leaves residency. Raises
    [Invalid_argument] on a dead frame (refcount already 0). *)

val resident : pool -> int
(** Live frames (refcount > 0). *)

val total_allocated : pool -> int
(** Frames ever allocated — monotone; used by benches for fault
    counting. *)

val capacity : pool -> int option
val over_capacity : pool -> int
(** How many pages beyond capacity are resident (0 when unbounded or
    under capacity). *)

val live_frames : pool -> t list
(** Snapshot of live frames, in allocation order; used by the clock
    sweep. *)
