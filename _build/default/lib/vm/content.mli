(** Page contents, represented compactly.

    A 4 KiB page's content is represented by a 64-bit seed rather than
    by the bytes themselves, so simulating a 2 GiB working set costs
    half a million small records instead of two gigabytes. The mapping
    seed -> bytes is deterministic and injective-in-practice (a
    SplitMix64 expansion), so content identity — which is what
    copy-on-write, dirty tracking, and the object store's deduplication
    actually depend on — is preserved: equal seeds mean equal pages.

    [write] folds a (64-bit offset, value) store into the seed with a
    mixing function, so distinct write sequences yield distinct
    contents with overwhelming probability. *)

type t

val zero : t
(** The all-zeroes page. *)

val of_seed : int64 -> t
val to_seed : t -> int64

val write : t -> offset:int -> value:int64 -> t
(** The content after storing [value] at byte [offset] (0 <= offset <
    4096). Folding is order-sensitive, like real memory. *)

val hash : t -> int64
(** Content hash used by the object store's deduplication index. *)

val equal : t -> t -> bool
val is_zero : t -> bool

val to_bytes : t -> bytes
(** Materialize the full 4 KiB deterministic expansion. Used only by
    tests that need byte-level checks. *)

val pp : Format.formatter -> t -> unit
