lib/posix/registry.ml: Hashtbl Int Kqueue List Msgq Oidgen Pipe Printf Semaphore Serial Shm Unixsock
