lib/posix/fd.mli: Aurora_vfs Hashtbl Serial Vnode
