lib/posix/semaphore.mli: Serial
