lib/posix/netstack.ml: Hashtbl Int List Printf Serial String Unixsock
