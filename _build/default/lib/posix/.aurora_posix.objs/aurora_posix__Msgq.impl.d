lib/posix/msgq.ml: List Serial String
