lib/posix/registry.mli: Aurora_vm Kqueue Msgq Oidgen Pipe Semaphore Serial Shm Unixsock Vmobject
