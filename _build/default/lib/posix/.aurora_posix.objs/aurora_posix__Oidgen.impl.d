lib/posix/oidgen.ml:
