lib/posix/unixsock.mli: Serial
