lib/posix/fd.ml: Aurora_vfs Hashtbl Int List Printf Serial Vnode
