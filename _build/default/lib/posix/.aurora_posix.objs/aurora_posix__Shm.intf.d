lib/posix/shm.mli: Aurora_vm Frame Serial Vmobject
