lib/posix/fifo.mli: Serial
