lib/posix/fifo.ml: Buffer Queue Serial String
