lib/posix/pipe.ml: Fifo Serial
