lib/posix/oidgen.mli:
