lib/posix/unixsock.ml: Fifo List Printf Serial
