lib/posix/shm.ml: Aurora_vm Printf Serial Vmobject
