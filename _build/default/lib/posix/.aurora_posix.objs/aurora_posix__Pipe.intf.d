lib/posix/pipe.mli: Serial
