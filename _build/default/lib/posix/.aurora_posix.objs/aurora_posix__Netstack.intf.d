lib/posix/netstack.mli: Serial Unixsock
