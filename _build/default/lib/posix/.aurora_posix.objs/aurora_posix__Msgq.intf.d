lib/posix/msgq.mli: Serial
