lib/posix/serial.ml: Buffer Bytes Char Format Int64 List String
