lib/posix/kqueue.ml: List Printf Serial
