lib/posix/serial.mli:
