lib/posix/semaphore.ml: Serial
