lib/posix/kqueue.mli: Serial
