type t = { mutable next : int }

let create () = { next = 1 }

let next t =
  let v = t.next in
  t.next <- t.next + 1;
  v

let reserve_above t v = if v >= t.next then t.next <- v + 1
