(** The kernel object registry: every first-class POSIX object, by oid.

    This is the table the orchestrator walks at checkpoint time ("each
    POSIX object ... contains code that continuously serializes and
    stores the state in the object store" — §3): each entry knows how
    to serialize itself into one record and to be recreated from it.
    Objects referenced from several processes appear here once, which
    is what guarantees single serialization and restored sharing. *)

open Aurora_vm

type kobj =
  | Kpipe of Pipe.t
  | Kusock of Unixsock.t
  | Ktcp of Unixsock.t  (** TCP endpoint (stream impl shared with Unix sockets) *)
  | Kshm of Shm.t
  | Kmsgq of Msgq.t
  | Ksem of Semaphore.t
  | Kkq of Kqueue.t

val kobj_oid : kobj -> int
val kobj_class : kobj -> string

type t

val create : unit -> t
val oids : t -> Oidgen.t
val fresh_oid : t -> int
val register : t -> kobj -> unit
(** Raises [Invalid_argument] on duplicate oid. *)

val find : t -> int -> kobj option
val remove : t -> int -> unit
val count : t -> int
val fold : t -> init:'a -> f:('a -> kobj -> 'a) -> 'a
(** In increasing oid order (deterministic checkpoints). *)

(* typed accessors, for the syscall layer *)
val pipe : t -> int -> Pipe.t option
val usock : t -> int -> Unixsock.t option
val tcp : t -> int -> Unixsock.t option
val stream : t -> int -> Unixsock.t option
(** Either a Unix socket or a TCP endpoint. *)

val shm : t -> int -> Shm.t option
val msgq : t -> int -> Msgq.t option
val sem : t -> int -> Semaphore.t option
val kq : t -> int -> Kqueue.t option

val serialize_kobj : kobj -> Serial.writer -> unit
val deserialize_kobj :
  Serial.reader -> restore_obj:(int -> npages:int -> Vmobject.t) -> kobj
(** [restore_obj] resolves checkpointed VM object oids for shared
    memory segments. *)
