type t = {
  oid : int;
  fifo : Fifo.t;
  mutable read_open : bool;
  mutable write_open : bool;
}

let default_capacity = 65536

let create ~oid ?(capacity = default_capacity) () =
  { oid; fifo = Fifo.create ~capacity; read_open = true; write_open = true }

let oid t = t.oid
let buffered t = Fifo.length t.fifo

let write t data =
  if not t.read_open then `Broken
  else if Fifo.space t.fifo = 0 then `Would_block
  else `Written (Fifo.push t.fifo data)

let read t ~max =
  if not (Fifo.is_empty t.fifo) then `Data (Fifo.pop t.fifo ~max)
  else if not t.write_open then `Eof
  else `Would_block

let close_read t = t.read_open <- false
let close_write t = t.write_open <- false
let read_open t = t.read_open
let write_open t = t.write_open

let serialize t w =
  Serial.w_int w t.oid;
  Fifo.serialize t.fifo w;
  Serial.w_bool w t.read_open;
  Serial.w_bool w t.write_open

let deserialize r =
  let oid = Serial.r_int r in
  let fifo = Fifo.deserialize r in
  let read_open = Serial.r_bool r in
  let write_open = Serial.r_bool r in
  { oid; fifo; read_open; write_open }
