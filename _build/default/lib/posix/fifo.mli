(** Bounded byte FIFO: the buffer inside pipes and socket endpoints.

    Chunk-queue implementation so large transfers do not degrade to
    quadratic copying. The full contents are serializable — in-flight
    data is part of an object's checkpoint (the CRIU pain point the
    paper cites for Unix sockets). *)

type t

val create : capacity:int -> t
val capacity : t -> int
val length : t -> int
val space : t -> int
val is_empty : t -> bool

val push : t -> string -> int
(** Appends up to [space] bytes; returns how many were accepted. *)

val pop : t -> max:int -> string
(** Removes and returns up to [max] buffered bytes (possibly [""]). *)

val peek_all : t -> string
(** The full buffered contents without consuming them. *)

val clear : t -> unit

val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
