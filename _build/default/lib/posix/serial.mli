(** Binary serialization for checkpoint records.

    Every first-class POSIX object serializes itself through this
    module into real bytes — the resulting record sizes are what the
    object store charges to the storage devices, so serialization is
    not token-level pretend: a pipe with a full buffer genuinely costs
    more blocks than an empty one.

    Encoding: little-endian fixed-width integers, length-prefixed
    strings, tag bytes for options/lists. Readers validate lengths and
    raise {!Corrupt} rather than returning garbage. *)

type writer

val writer : unit -> writer
val w_u8 : writer -> int -> unit
val w_int : writer -> int -> unit
(** 63-bit OCaml int, 8 bytes on the wire. *)

val w_int64 : writer -> int64 -> unit
val w_bool : writer -> bool -> unit
val w_string : writer -> string -> unit
val w_bytes : writer -> bytes -> unit
val w_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit
val w_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val w_pair : writer -> (writer -> 'a -> unit) -> (writer -> 'b -> unit) -> 'a * 'b -> unit
val contents : writer -> string
val size : writer -> int

type reader

exception Corrupt of string

val reader : string -> reader
val r_u8 : reader -> int
val r_int : reader -> int
val r_int64 : reader -> int64
val r_bool : reader -> bool
val r_string : reader -> string
val r_bytes : reader -> bytes
val r_option : reader -> (reader -> 'a) -> 'a option
val r_list : reader -> (reader -> 'a) -> 'a list
val r_pair : reader -> (reader -> 'a) -> (reader -> 'b) -> 'a * 'b
val at_end : reader -> bool
val expect_end : reader -> unit
(** Raises {!Corrupt} if trailing bytes remain — catches records that
    were framed incorrectly. *)
