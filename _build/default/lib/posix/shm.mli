(** Shared memory segments (POSIX [shm_open] and System V [shmget]).

    A segment is a named handle on a VM object; processes attach it
    with [Vmmap.map_object], so sharing, COW checkpointing, and
    flush-once dirty tracking all come from the VM layer. The segment
    record itself serializes only metadata — the pages travel with the
    VM object in the memory part of the checkpoint. *)

open Aurora_vm

type flavor = Posix_shm | Sysv_shm

type t

val create :
  oid:int -> pool:Frame.pool -> flavor:flavor -> name:string -> npages:int -> t
val oid : t -> int
val name : t -> string
val flavor : t -> flavor
val npages : t -> int
val vmobject : t -> Vmobject.t
val attach : t -> unit
val detach : t -> unit
val attach_count : t -> int

val serialize : t -> Serial.writer -> unit
(** Writes metadata including the backing VM object's oid. *)

val deserialize : Serial.reader -> restore_obj:(int -> npages:int -> Vmobject.t) -> t
(** [restore_obj] maps a checkpointed VM object oid to the recreated
    object (the memory restorer owns that table). *)
