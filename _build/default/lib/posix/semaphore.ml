type t = { oid : int; name : string; mutable value : int }

let create ~oid ?(value = 0) ~name () =
  if value < 0 then invalid_arg "Semaphore.create: negative value";
  { oid; name; value }

let oid t = t.oid
let name t = t.name
let value t = t.value
let post t = t.value <- t.value + 1

let try_wait t =
  if t.value > 0 then begin
    t.value <- t.value - 1;
    `Ok
  end
  else `Would_block

let serialize t w =
  Serial.w_int w t.oid;
  Serial.w_string w t.name;
  Serial.w_int w t.value

let deserialize r =
  let oid = Serial.r_int r in
  let name = Serial.r_string r in
  let value = Serial.r_int r in
  { oid; name; value }
