
type kobj =
  | Kpipe of Pipe.t
  | Kusock of Unixsock.t
  | Ktcp of Unixsock.t
  | Kshm of Shm.t
  | Kmsgq of Msgq.t
  | Ksem of Semaphore.t
  | Kkq of Kqueue.t

let kobj_oid = function
  | Kpipe p -> Pipe.oid p
  | Kusock s | Ktcp s -> Unixsock.oid s
  | Kshm s -> Shm.oid s
  | Kmsgq q -> Msgq.oid q
  | Ksem s -> Semaphore.oid s
  | Kkq k -> Kqueue.oid k

let kobj_class = function
  | Kpipe _ -> "pipe"
  | Kusock _ -> "unix-socket"
  | Ktcp _ -> "tcp-socket"
  | Kshm _ -> "shared-memory"
  | Kmsgq _ -> "message-queue"
  | Ksem _ -> "semaphore"
  | Kkq _ -> "kqueue"

type t = { objs : (int, kobj) Hashtbl.t; oids : Oidgen.t }

let create () = { objs = Hashtbl.create 64; oids = Oidgen.create () }
let oids t = t.oids
let fresh_oid t = Oidgen.next t.oids

let register t kobj =
  let oid = kobj_oid kobj in
  if Hashtbl.mem t.objs oid then
    invalid_arg (Printf.sprintf "Registry.register: duplicate oid %d" oid);
  Oidgen.reserve_above t.oids oid;
  Hashtbl.replace t.objs oid kobj

let find t oid = Hashtbl.find_opt t.objs oid
let remove t oid = Hashtbl.remove t.objs oid
let count t = Hashtbl.length t.objs

let fold t ~init ~f =
  let oids = Hashtbl.fold (fun oid _ acc -> oid :: acc) t.objs [] in
  let oids = List.sort Int.compare oids in
  List.fold_left (fun acc oid -> f acc (Hashtbl.find t.objs oid)) init oids

let pipe t oid = match find t oid with Some (Kpipe p) -> Some p | _ -> None
let usock t oid = match find t oid with Some (Kusock s) -> Some s | _ -> None
let tcp t oid = match find t oid with Some (Ktcp s) -> Some s | _ -> None

let stream t oid =
  match find t oid with Some (Kusock s) | Some (Ktcp s) -> Some s | _ -> None

let shm t oid = match find t oid with Some (Kshm s) -> Some s | _ -> None
let msgq t oid = match find t oid with Some (Kmsgq q) -> Some q | _ -> None
let sem t oid = match find t oid with Some (Ksem s) -> Some s | _ -> None
let kq t oid = match find t oid with Some (Kkq k) -> Some k | _ -> None

let class_tag = function
  | Kpipe _ -> 0
  | Kusock _ -> 1
  | Ktcp _ -> 2
  | Kshm _ -> 3
  | Kmsgq _ -> 4
  | Ksem _ -> 5
  | Kkq _ -> 6

let serialize_kobj kobj w =
  Serial.w_u8 w (class_tag kobj);
  match kobj with
  | Kpipe p -> Pipe.serialize p w
  | Kusock s | Ktcp s -> Unixsock.serialize s w
  | Kshm s -> Shm.serialize s w
  | Kmsgq q -> Msgq.serialize q w
  | Ksem s -> Semaphore.serialize s w
  | Kkq k -> Kqueue.serialize k w

let deserialize_kobj r ~restore_obj =
  match Serial.r_u8 r with
  | 0 -> Kpipe (Pipe.deserialize r)
  | 1 -> Kusock (Unixsock.deserialize r)
  | 2 -> Ktcp (Unixsock.deserialize r)
  | 3 -> Kshm (Shm.deserialize r ~restore_obj)
  | 4 -> Kmsgq (Msgq.deserialize r)
  | 5 -> Ksem (Semaphore.deserialize r)
  | 6 -> Kkq (Kqueue.deserialize r)
  | v -> raise (Serial.Corrupt (Printf.sprintf "Registry: bad class tag %d" v))
