(** File descriptors and open file descriptions.

    POSIX separates the small-integer descriptor (per-process) from the
    open file description (shared: [dup] aliases it within a process,
    [fork] shares it across processes; the offset and flags live
    there). Aurora checkpoints descriptions as first-class objects so
    that sharing — e.g. a parent and child appending to one log with a
    shared offset — survives restore exactly.

    The [ext_consistency] flag is `sls_fdctl`'s per-descriptor switch:
    when set (the default), output crossing the persistence-group
    boundary is buffered until the covering checkpoint is durable. *)

open Aurora_vfs

type kind =
  | Vnode_file of { vnode : Vnode.t; mutable append : bool }
  | Obj of int  (** kernel object by oid (pipe end, socket, ...) *)

type flags = {
  mutable cloexec : bool;
  mutable nonblock : bool;
  mutable ext_consistency : bool;
}

type ofd = {
  ofd_oid : int;
  mutable kind : kind;
  mutable offset : int;
  flags : flags;
  mutable refcount : int;
  role : [ `Plain | `Pipe_read | `Pipe_write ];
      (** which end of a pipe this description represents *)
}

val make_ofd : oid:int -> ?role:[ `Plain | `Pipe_read | `Pipe_write ] -> kind -> ofd

type table

val create_table : unit -> table

val install : table -> ofd -> int
(** Lowest-free-descriptor allocation, as POSIX requires. *)

val install_at : table -> int -> ofd -> unit
(** dup2-style placement; implicitly closes (releases) any descriptor
    already there — the caller must have handled that first via
    {!release}. Raises [Invalid_argument] if occupied. *)

val get : table -> int -> ofd option
val descriptors : table -> (int * ofd) list
(** Sorted by descriptor number. *)

val dup : table -> int -> int option
(** New descriptor sharing the same description. *)

val release : table -> int -> [ `Last of ofd | `Shared | `Bad_fd ]
(** Close a descriptor. [`Last] means this was the final reference to
    the description: the caller must release the underlying object
    (close the pipe end, drop the vnode open count, ...). *)

val fork_table : table -> table
(** The child's table: same descriptions, shared (refcounts bumped). *)

val serialize_table : table -> vid_of_vnode:(Vnode.t -> int) -> Serial.writer -> unit
(** Writes (fd -> description oid) plus each distinct description once. *)

val deserialize_table :
  Serial.reader ->
  vnode_of_vid:(int -> Vnode.t) ->
  shared:(int, ofd) Hashtbl.t ->
  table
(** [shared] carries descriptions already restored for other processes
    in the same checkpoint, so cross-process sharing is preserved. *)
