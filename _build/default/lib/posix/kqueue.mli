(** kqueue-style event queues (FreeBSD's event notification object).

    Filters are registered per identifier; subsystems raise events with
    {!trigger}; applications harvest them with {!harvest}. Level
    semantics are simplified to a pending queue, which is all the
    simulated applications need, but the object checkpoints and
    restores with registrations and undelivered events intact. *)

type filter = Evt_read | Evt_write | Evt_timer | Evt_user

type t

val create : oid:int -> unit -> t
val oid : t -> int
val register : t -> ident:int -> filter -> unit
val unregister : t -> ident:int -> filter -> unit
val registered : t -> (int * filter) list
val trigger : t -> ident:int -> filter -> unit
(** Queues an event if (ident, filter) is registered; duplicate
    pending events coalesce (kqueue semantics). *)

val harvest : t -> max:int -> (int * filter) list
(** Dequeue up to [max] pending events, oldest first. *)

val pending_count : t -> int
val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
