type t = {
  capacity : int;
  chunks : string Queue.t;
  mutable head_off : int; (* consumed prefix of the front chunk *)
  mutable length : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Fifo.create: capacity <= 0";
  { capacity; chunks = Queue.create (); head_off = 0; length = 0 }

let capacity t = t.capacity
let length t = t.length
let space t = t.capacity - t.length
let is_empty t = t.length = 0

let push t data =
  let n = min (String.length data) (space t) in
  if n > 0 then begin
    Queue.push (if n = String.length data then data else String.sub data 0 n) t.chunks;
    t.length <- t.length + n
  end;
  n

let pop t ~max =
  if max < 0 then invalid_arg "Fifo.pop: negative max";
  let want = min max t.length in
  let out = Buffer.create want in
  while Buffer.length out < want do
    let chunk = Queue.peek t.chunks in
    let avail = String.length chunk - t.head_off in
    let take = min avail (want - Buffer.length out) in
    Buffer.add_substring out chunk t.head_off take;
    if take = avail then begin
      ignore (Queue.pop t.chunks);
      t.head_off <- 0
    end
    else t.head_off <- t.head_off + take
  done;
  t.length <- t.length - want;
  Buffer.contents out

let peek_all t =
  let out = Buffer.create t.length in
  let first = ref true in
  Queue.iter
    (fun chunk ->
      if !first then begin
        Buffer.add_substring out chunk t.head_off (String.length chunk - t.head_off);
        first := false
      end
      else Buffer.add_string out chunk)
    t.chunks;
  Buffer.contents out

let clear t =
  Queue.clear t.chunks;
  t.head_off <- 0;
  t.length <- 0

let serialize t w =
  Serial.w_int w t.capacity;
  Serial.w_string w (peek_all t)

let deserialize r =
  let capacity = Serial.r_int r in
  let data = Serial.r_string r in
  let t = create ~capacity in
  if push t data <> String.length data then
    raise (Serial.Corrupt "Fifo.deserialize: contents exceed capacity");
  t
