(** Kernel object identifiers.

    Every first-class object (pipe, socket, shared memory segment,
    open file description, process, VM object reference, ...) carries
    a machine-unique oid. Checkpoints use oids as the cross-reference
    currency: shared objects are serialized once and re-linked by oid
    on restore. *)

type t

val create : unit -> t
val next : t -> int
val reserve_above : t -> int -> unit
(** Ensure future ids exceed the given value — used on restore so
    recreated objects can keep their checkpointed oids without
    colliding with fresh allocations. *)
