open Aurora_vm

type flavor = Posix_shm | Sysv_shm

type t = {
  oid : int;
  flavor : flavor;
  name : string;
  npages : int;
  obj : Vmobject.t;
  mutable attach_count : int;
}

let create ~oid ~pool ~flavor ~name ~npages =
  if npages <= 0 then invalid_arg "Shm.create: npages <= 0";
  { oid; flavor; name; npages; obj = Vmobject.create ~pool Vmobject.Anonymous;
    attach_count = 0 }

let oid t = t.oid
let name t = t.name
let flavor t = t.flavor
let npages t = t.npages
let vmobject t = t.obj
let attach t = t.attach_count <- t.attach_count + 1

let detach t =
  if t.attach_count <= 0 then invalid_arg "Shm.detach: not attached";
  t.attach_count <- t.attach_count - 1

let attach_count t = t.attach_count

let serialize t w =
  Serial.w_int w t.oid;
  Serial.w_u8 w (match t.flavor with Posix_shm -> 0 | Sysv_shm -> 1);
  Serial.w_string w t.name;
  Serial.w_int w t.npages;
  Serial.w_int w (Vmobject.oid t.obj);
  Serial.w_int w t.attach_count

let deserialize r ~restore_obj =
  let oid = Serial.r_int r in
  let flavor =
    match Serial.r_u8 r with
    | 0 -> Posix_shm
    | 1 -> Sysv_shm
    | v -> raise (Serial.Corrupt (Printf.sprintf "Shm: bad flavor tag %d" v))
  in
  let name = Serial.r_string r in
  let npages = Serial.r_int r in
  let obj_oid = Serial.r_int r in
  let attach_count = Serial.r_int r in
  { oid; flavor; name; npages; obj = restore_obj obj_oid ~npages; attach_count }
