(** POSIX pipes as first-class checkpointable objects.

    A pipe is one kernel object (buffer plus end states) referenced by
    two open file descriptions. All IO is non-blocking at this layer;
    callers translate [`Would_block] into scheduler wait states. *)

type t

val default_capacity : int
(** 64 KiB, as on FreeBSD. *)

val create : oid:int -> ?capacity:int -> unit -> t
val oid : t -> int
val buffered : t -> int

val write : t -> string -> [ `Written of int | `Would_block | `Broken ]
(** [`Broken] once the read end is closed (the simulated EPIPE). *)

val read : t -> max:int -> [ `Data of string | `Would_block | `Eof ]
(** [`Eof] when the buffer is drained and the write end is closed. *)

val close_read : t -> unit
val close_write : t -> unit
val read_open : t -> bool
val write_open : t -> bool

val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
