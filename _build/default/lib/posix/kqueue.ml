type filter = Evt_read | Evt_write | Evt_timer | Evt_user

type t = {
  oid : int;
  mutable registered : (int * filter) list;
  mutable pending : (int * filter) list; (* oldest first *)
}

let create ~oid () = { oid; registered = []; pending = [] }
let oid t = t.oid

let register t ~ident filter =
  if not (List.mem (ident, filter) t.registered) then
    t.registered <- t.registered @ [ (ident, filter) ]

let unregister t ~ident filter =
  t.registered <- List.filter (fun e -> e <> (ident, filter)) t.registered;
  t.pending <- List.filter (fun e -> e <> (ident, filter)) t.pending

let registered t = t.registered

let trigger t ~ident filter =
  if List.mem (ident, filter) t.registered && not (List.mem (ident, filter) t.pending)
  then t.pending <- t.pending @ [ (ident, filter) ]

let harvest t ~max =
  if max < 0 then invalid_arg "Kqueue.harvest: negative max";
  let rec take n = function
    | [] -> ([], [])
    | rest when n = 0 -> ([], rest)
    | e :: rest ->
      let taken, left = take (n - 1) rest in
      (e :: taken, left)
  in
  let events, rest = take max t.pending in
  t.pending <- rest;
  events

let pending_count t = List.length t.pending

let int_of_filter = function
  | Evt_read -> 0
  | Evt_write -> 1
  | Evt_timer -> 2
  | Evt_user -> 3

let filter_of_int = function
  | 0 -> Evt_read
  | 1 -> Evt_write
  | 2 -> Evt_timer
  | 3 -> Evt_user
  | v -> raise (Serial.Corrupt (Printf.sprintf "Kqueue: bad filter tag %d" v))

let w_event w (ident, f) =
  Serial.w_int w ident;
  Serial.w_u8 w (int_of_filter f)

let r_event r =
  let ident = Serial.r_int r in
  let f = filter_of_int (Serial.r_u8 r) in
  (ident, f)

let serialize t w =
  Serial.w_int w t.oid;
  Serial.w_list w w_event t.registered;
  Serial.w_list w w_event t.pending

let deserialize r =
  let oid = Serial.r_int r in
  let registered = Serial.r_list r r_event in
  let pending = Serial.r_list r r_event in
  { oid; registered; pending }
