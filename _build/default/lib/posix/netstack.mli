(** Loopback TCP networking.

    Connected TCP endpoints share their implementation with
    {!Unixsock} — in the simulation both are reliable in-kernel byte
    streams; what distinguishes TCP is addressing (ports) and that a
    TCP peer may sit {e outside} the persistence group, which is where
    the SLS external-consistency machinery interposes (see
    [Aurora_sls.Extconsist]). Cross-machine connections are bridged by
    the orchestrator over {!Aurora_device.Netlink}.

    The [t] value is one machine's port table. *)

type endpoint = Unixsock.t

type t

val create : unit -> t

val listen : t -> endpoint -> port:int -> backlog:int -> unit
(** Bind and listen. Raises [Invalid_argument] if the port is taken or
    the endpoint is not fresh. *)

val listener_on : t -> port:int -> int option
(** The listening endpoint's oid, if any. *)

val connect :
  t ->
  src:endpoint ->
  port:int ->
  peer_oid:int ->
  lookup:(int -> endpoint option) ->
  [ `Connected of endpoint | `Refused ]
(** Three-way handshake condensed: creates the server-side endpoint
    and queues it on the listener's accept queue. *)

val release_port : t -> port:int -> unit

val rebind : t -> endpoint -> unit
(** Re-enter a restored listening endpoint into the port table (its
    bound name encodes the port). *)

val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
