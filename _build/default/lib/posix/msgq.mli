(** System V message queues. *)

type t

val create : oid:int -> ?max_bytes:int -> key:string -> unit -> t
val oid : t -> int
val key : t -> string
val bytes_used : t -> int
val message_count : t -> int

val send : t -> mtype:int -> string -> [ `Ok | `Would_block ]
(** [mtype] must be positive; [`Would_block] when the queue byte limit
    would be exceeded. *)

val recv : t -> ?mtype:int -> unit -> [ `Msg of int * string | `Would_block ]
(** Without [mtype], the oldest message; with [mtype], the oldest
    message of that type (System V selective receive). *)

val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
