open Aurora_vfs

type kind =
  | Vnode_file of { vnode : Vnode.t; mutable append : bool }
  | Obj of int

type flags = {
  mutable cloexec : bool;
  mutable nonblock : bool;
  mutable ext_consistency : bool;
}

type ofd = {
  ofd_oid : int;
  mutable kind : kind;
  mutable offset : int;
  flags : flags;
  mutable refcount : int;
  role : [ `Plain | `Pipe_read | `Pipe_write ];
}

let make_ofd ~oid ?(role = `Plain) kind =
  { ofd_oid = oid; kind; offset = 0;
    flags = { cloexec = false; nonblock = false; ext_consistency = true };
    refcount = 1; role }

type table = { fds : (int, ofd) Hashtbl.t; mutable next_probe : int }

let create_table () = { fds = Hashtbl.create 16; next_probe = 0 }

let lowest_free t =
  let rec probe fd = if Hashtbl.mem t.fds fd then probe (fd + 1) else fd in
  probe 0

let install t ofd =
  let fd = lowest_free t in
  Hashtbl.replace t.fds fd ofd;
  fd

let install_at t fd ofd =
  if fd < 0 then invalid_arg "Fd.install_at: negative descriptor";
  if Hashtbl.mem t.fds fd then invalid_arg "Fd.install_at: descriptor occupied";
  Hashtbl.replace t.fds fd ofd

let get t fd = Hashtbl.find_opt t.fds fd

let descriptors t =
  Hashtbl.fold (fun fd ofd acc -> (fd, ofd) :: acc) t.fds []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let dup t fd =
  match get t fd with
  | None -> None
  | Some ofd ->
    ofd.refcount <- ofd.refcount + 1;
    Some (install t ofd)

let release t fd =
  match get t fd with
  | None -> `Bad_fd
  | Some ofd ->
    Hashtbl.remove t.fds fd;
    ofd.refcount <- ofd.refcount - 1;
    if ofd.refcount = 0 then `Last ofd else `Shared

let fork_table t =
  let child = create_table () in
  Hashtbl.iter
    (fun fd ofd ->
      if not ofd.flags.cloexec then begin
        ofd.refcount <- ofd.refcount + 1;
        Hashtbl.replace child.fds fd ofd
      end)
    t.fds;
  child

(* --- serialization ------------------------------------------------ *)

let w_kind w ~vid_of_vnode = function
  | Vnode_file { vnode; append } ->
    Serial.w_u8 w 0;
    Serial.w_int w (vid_of_vnode vnode);
    Serial.w_bool w append
  | Obj oid ->
    Serial.w_u8 w 1;
    Serial.w_int w oid

let r_kind r ~vnode_of_vid =
  match Serial.r_u8 r with
  | 0 ->
    let vid = Serial.r_int r in
    let append = Serial.r_bool r in
    Vnode_file { vnode = vnode_of_vid vid; append }
  | 1 -> Obj (Serial.r_int r)
  | v -> raise (Serial.Corrupt (Printf.sprintf "Fd: bad kind tag %d" v))

let w_role w = function
  | `Plain -> Serial.w_u8 w 0
  | `Pipe_read -> Serial.w_u8 w 1
  | `Pipe_write -> Serial.w_u8 w 2

let r_role r =
  match Serial.r_u8 r with
  | 0 -> `Plain
  | 1 -> `Pipe_read
  | 2 -> `Pipe_write
  | v -> raise (Serial.Corrupt (Printf.sprintf "Fd: bad role tag %d" v))

let w_ofd w ~vid_of_vnode ofd =
  Serial.w_int w ofd.ofd_oid;
  w_kind w ~vid_of_vnode ofd.kind;
  Serial.w_int w ofd.offset;
  Serial.w_bool w ofd.flags.cloexec;
  Serial.w_bool w ofd.flags.nonblock;
  Serial.w_bool w ofd.flags.ext_consistency;
  w_role w ofd.role

let r_ofd r ~vnode_of_vid =
  let ofd_oid = Serial.r_int r in
  let kind = r_kind r ~vnode_of_vid in
  let offset = Serial.r_int r in
  let cloexec = Serial.r_bool r in
  let nonblock = Serial.r_bool r in
  let ext_consistency = Serial.r_bool r in
  let role = r_role r in
  { ofd_oid; kind; offset; flags = { cloexec; nonblock; ext_consistency };
    refcount = 0; role }

let serialize_table t ~vid_of_vnode w =
  let descs = descriptors t in
  (* Each distinct description once, then the fd -> oid mapping. *)
  let seen = Hashtbl.create 8 in
  let distinct =
    List.filter
      (fun (_, ofd) ->
        if Hashtbl.mem seen ofd.ofd_oid then false
        else begin
          Hashtbl.replace seen ofd.ofd_oid ();
          true
        end)
      descs
  in
  Serial.w_list w (fun w (_, ofd) -> w_ofd w ~vid_of_vnode ofd) distinct;
  Serial.w_list w (fun w (fd, ofd) ->
      Serial.w_int w fd;
      Serial.w_int w ofd.ofd_oid)
    descs

let deserialize_table r ~vnode_of_vid ~shared =
  let distinct = Serial.r_list r (fun r -> r_ofd r ~vnode_of_vid) in
  List.iter
    (fun ofd ->
      if not (Hashtbl.mem shared ofd.ofd_oid) then Hashtbl.replace shared ofd.ofd_oid ofd)
    distinct;
  let mapping =
    Serial.r_list r (fun r ->
        let fd = Serial.r_int r in
        let oid = Serial.r_int r in
        (fd, oid))
  in
  let t = create_table () in
  List.iter
    (fun (fd, oid) ->
      match Hashtbl.find_opt shared oid with
      | None -> raise (Serial.Corrupt (Printf.sprintf "Fd: unresolved ofd oid %d" oid))
      | Some ofd ->
        ofd.refcount <- ofd.refcount + 1;
        Hashtbl.replace t.fds fd ofd)
    mapping;
  t
