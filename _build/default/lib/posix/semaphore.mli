(** Counting semaphores (POSIX named / System V style). *)

type t

val create : oid:int -> ?value:int -> name:string -> unit -> t
val oid : t -> int
val name : t -> string
val value : t -> int
val post : t -> unit
val try_wait : t -> [ `Ok | `Would_block ]
val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
