type endpoint = Unixsock.t

type t = { ports : (int, int) Hashtbl.t (* port -> listener oid *) }

let create () = { ports = Hashtbl.create 16 }

let port_name port = Printf.sprintf "tcp:%d" port

let port_of_name name =
  match String.split_on_char ':' name with
  | [ "tcp"; p ] -> int_of_string_opt p
  | _ -> None

let listen t ep ~port ~backlog =
  if Hashtbl.mem t.ports port then
    invalid_arg (Printf.sprintf "Netstack.listen: port %d in use" port);
  Unixsock.listen ep ~name:(port_name port) ~backlog;
  Hashtbl.replace t.ports port (Unixsock.oid ep)

let listener_on t ~port = Hashtbl.find_opt t.ports port

let connect t ~src ~port ~peer_oid ~lookup =
  match Hashtbl.find_opt t.ports port with
  | None -> `Refused
  | Some listener_oid -> (
    match lookup listener_oid with
    | None -> `Refused
    | Some listener -> Unixsock.connect src ~listener ~peer_oid)

let release_port t ~port = Hashtbl.remove t.ports port

let rebind t ep =
  match Unixsock.bound_name ep with
  | Some name -> (
    match port_of_name name with
    | Some port -> Hashtbl.replace t.ports port (Unixsock.oid ep)
    | None -> invalid_arg "Netstack.rebind: endpoint has no port binding")
  | None -> invalid_arg "Netstack.rebind: endpoint not bound"

let serialize t w =
  let bindings =
    Hashtbl.fold (fun port oid acc -> (port, oid) :: acc) t.ports []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  Serial.w_list w (fun w (port, oid) ->
      Serial.w_int w port;
      Serial.w_int w oid)
    bindings

let deserialize r =
  let bindings =
    Serial.r_list r (fun r ->
        let port = Serial.r_int r in
        let oid = Serial.r_int r in
        (port, oid))
  in
  let t = create () in
  List.iter (fun (port, oid) -> Hashtbl.replace t.ports port oid) bindings;
  t
