type state =
  | Fresh
  | Listening of { backlog : int; mutable pending : int list }
  | Connected of { mutable peer : int }
  | Closed

type t = {
  oid : int;
  inbox : Fifo.t;
  mutable state : state;
  mutable bound_name : string option;
  mutable peer_closed : bool;
}

let default_capacity = 65536

let create ~oid ?(capacity = default_capacity) () =
  { oid; inbox = Fifo.create ~capacity; state = Fresh; bound_name = None;
    peer_closed = false }

let oid t = t.oid
let state t = t.state
let bound_name t = t.bound_name
let buffered t = Fifo.length t.inbox

let socketpair ~oid_a ~oid_b =
  let a = create ~oid:oid_a () and b = create ~oid:oid_b () in
  a.state <- Connected { peer = oid_b };
  b.state <- Connected { peer = oid_a };
  (a, b)

let listen t ~name ~backlog =
  (match t.state with
   | Fresh -> ()
   | Listening _ | Connected _ | Closed ->
     invalid_arg "Unixsock.listen: endpoint not fresh");
  if backlog <= 0 then invalid_arg "Unixsock.listen: backlog <= 0";
  t.bound_name <- Some name;
  t.state <- Listening { backlog; pending = [] }

let connect t ~listener ~peer_oid =
  match (t.state, listener.state) with
  | Fresh, Listening l when List.length l.pending < l.backlog ->
    let server_end = create ~oid:peer_oid () in
    server_end.state <- Connected { peer = t.oid };
    t.state <- Connected { peer = peer_oid };
    l.pending <- l.pending @ [ peer_oid ];
    `Connected server_end
  | _ -> `Refused

let accept t =
  match t.state with
  | Listening l -> (
    match l.pending with
    | [] -> `Would_block
    | oid :: rest ->
      l.pending <- rest;
      `Endpoint oid)
  | Fresh | Connected _ | Closed -> `Would_block

let send t ~lookup data =
  match t.state with
  | Connected { peer } -> (
    match lookup peer with
    | Some p when p.state <> Closed ->
      if Fifo.space p.inbox = 0 then `Would_block else `Sent (Fifo.push p.inbox data)
    | Some _ | None -> `Reset)
  | Fresh | Listening _ | Closed -> `Reset

let deliver t data = Fifo.push t.inbox data

let recv t ~max =
  if not (Fifo.is_empty t.inbox) then `Data (Fifo.pop t.inbox ~max)
  else if t.peer_closed || t.state = Closed then `Eof
  else
    match t.state with
    | Connected _ -> `Would_block
    | Fresh | Listening _ -> `Would_block
    | Closed -> `Eof

let close t ~lookup =
  (match t.state with
   | Connected { peer } -> (
     match lookup peer with
     | Some p -> p.peer_closed <- true
     | None -> ())
   | Fresh | Listening _ | Closed -> ());
  t.state <- Closed

let tag_of_state = function
  | Fresh -> 0
  | Listening _ -> 1
  | Connected _ -> 2
  | Closed -> 3

let serialize t w =
  Serial.w_int w t.oid;
  Fifo.serialize t.inbox w;
  Serial.w_u8 w (tag_of_state t.state);
  (match t.state with
   | Fresh | Closed -> ()
   | Listening { backlog; pending } ->
     Serial.w_int w backlog;
     Serial.w_list w Serial.w_int pending
   | Connected { peer } -> Serial.w_int w peer);
  Serial.w_option w Serial.w_string t.bound_name;
  Serial.w_bool w t.peer_closed

let deserialize r =
  let oid = Serial.r_int r in
  let inbox = Fifo.deserialize r in
  let state =
    match Serial.r_u8 r with
    | 0 -> Fresh
    | 1 ->
      let backlog = Serial.r_int r in
      let pending = Serial.r_list r Serial.r_int in
      Listening { backlog; pending }
    | 2 -> Connected { peer = Serial.r_int r }
    | 3 -> Closed
    | v -> raise (Serial.Corrupt (Printf.sprintf "Unixsock: bad state tag %d" v))
  in
  let bound_name = Serial.r_option r Serial.r_string in
  let peer_closed = Serial.r_bool r in
  { oid; inbox; state; bound_name; peer_closed }
