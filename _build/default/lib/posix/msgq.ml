type t = {
  oid : int;
  key : string;
  max_bytes : int;
  mutable msgs : (int * string) list; (* oldest first *)
  mutable used : int;
}

let create ~oid ?(max_bytes = 16384) ~key () =
  if max_bytes <= 0 then invalid_arg "Msgq.create: max_bytes <= 0";
  { oid; key; max_bytes; msgs = []; used = 0 }

let oid t = t.oid
let key t = t.key
let bytes_used t = t.used
let message_count t = List.length t.msgs

let send t ~mtype data =
  if mtype <= 0 then invalid_arg "Msgq.send: mtype must be positive";
  if t.used + String.length data > t.max_bytes then `Would_block
  else begin
    t.msgs <- t.msgs @ [ (mtype, data) ];
    t.used <- t.used + String.length data;
    `Ok
  end

let recv t ?mtype () =
  let matches (ty, _) = match mtype with None -> true | Some want -> ty = want in
  match List.find_opt matches t.msgs with
  | None -> `Would_block
  | Some ((ty, data) as msg) ->
    let removed = ref false in
    t.msgs <-
      List.filter
        (fun m ->
          if (not !removed) && m == msg then begin
            removed := true;
            false
          end
          else true)
        t.msgs;
    t.used <- t.used - String.length data;
    `Msg (ty, data)

let serialize t w =
  Serial.w_int w t.oid;
  Serial.w_string w t.key;
  Serial.w_int w t.max_bytes;
  Serial.w_list w (fun w (ty, d) ->
      Serial.w_int w ty;
      Serial.w_string w d)
    t.msgs

let deserialize r =
  let oid = Serial.r_int r in
  let key = Serial.r_string r in
  let max_bytes = Serial.r_int r in
  let msgs =
    Serial.r_list r (fun r ->
        let ty = Serial.r_int r in
        let d = Serial.r_string r in
        (ty, d))
  in
  let used = List.fold_left (fun acc (_, d) -> acc + String.length d) 0 msgs in
  { oid; key; max_bytes; msgs; used }
