(** Unix domain (local) stream sockets.

    Each value is one endpoint; connected endpoints reference each
    other by oid (the serialization currency — the module never holds
    direct peer pointers, so checkpointing a socket pair is two
    independent records plus the oid link, exactly the paper's
    first-class-object treatment; contrast CRIU's seven-year Unix
    socket saga, §2).

    The name space (path -> listening endpoint) is owned by the caller
    (one per machine); peer resolution goes through the [lookup]
    callback so this module stays free of registry dependencies. *)

type state =
  | Fresh
  | Listening of { backlog : int; mutable pending : int list }
      (** oids of endpoints awaiting accept, oldest first *)
  | Connected of { mutable peer : int }
  | Closed

type t

val create : oid:int -> ?capacity:int -> unit -> t
val oid : t -> int
val state : t -> state
val bound_name : t -> string option

val socketpair : oid_a:int -> oid_b:int -> t * t
(** Two connected endpoints (the [socketpair(2)] shortcut). *)

val listen : t -> name:string -> backlog:int -> unit
(** Raises [Invalid_argument] unless the endpoint is [Fresh]. *)

val connect :
  t -> listener:t -> peer_oid:int -> [ `Connected of t | `Refused ]
(** Connect [t] to a listening endpoint: creates the server-side
    endpoint (with oid [peer_oid]), queues it for accept. [`Refused]
    when the backlog is full or the target is not listening. *)

val accept : t -> [ `Endpoint of int | `Would_block ]
(** Dequeue a pending connection's endpoint oid. *)

val send : t -> lookup:(int -> t option) -> string ->
  [ `Sent of int | `Would_block | `Reset ]
(** Deliver into the peer's inbox. [`Reset] when unconnected or the
    peer is gone/closed. *)

val deliver : t -> string -> int
(** Push bytes straight into this endpoint's inbox, regardless of
    connection state — kernel-side delivery of data that was already
    in flight (the external-consistency buffer uses this: output is
    released even if the sending descriptor has since closed). Returns
    bytes accepted. *)

val recv : t -> max:int -> [ `Data of string | `Would_block | `Eof ]
val close : t -> lookup:(int -> t option) -> unit
(** Marks closed; a connected peer observes EOF after draining. *)

val buffered : t -> int

val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
