type writer = Buffer.t

let writer () = Buffer.create 256
let w_u8 b v =
  if v < 0 || v > 255 then invalid_arg "Serial.w_u8: out of range";
  Buffer.add_char b (Char.chr v)

let w_int64 b v = Buffer.add_int64_le b v
let w_int b v = w_int64 b (Int64.of_int v)
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_bytes b s = w_string b (Bytes.unsafe_to_string s)

let w_option b f = function
  | None -> w_u8 b 0
  | Some v ->
    w_u8 b 1;
    f b v

let w_list b f xs =
  w_int b (List.length xs);
  List.iter (f b) xs

let w_pair b fa fb (a, v) =
  fa b a;
  fb b v

let contents b = Buffer.contents b
let size b = Buffer.length b

type reader = { data : string; mutable pos : int }

exception Corrupt of string

let corrupt fmt = Format.kasprintf (fun s -> raise (Corrupt s)) fmt
let reader data = { data; pos = 0 }

let need r n =
  if r.pos + n > String.length r.data then
    corrupt "truncated record: need %d bytes at %d of %d" n r.pos (String.length r.data)

let r_u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_int64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r = Int64.to_int (r_int64 r)

let r_bool r =
  match r_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "bad bool tag %d" v

let r_string r =
  let len = r_int r in
  if len < 0 then corrupt "negative string length %d" len;
  need r len;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let r_bytes r = Bytes.of_string (r_string r)

let r_option r f =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | v -> corrupt "bad option tag %d" v

let r_list r f =
  let n = r_int r in
  if n < 0 then corrupt "negative list length %d" n;
  List.init n (fun _ -> f r)

let r_pair r fa fb =
  let a = fa r in
  let b = fb r in
  (a, b)

let at_end r = r.pos = String.length r.data

let expect_end r =
  if not (at_end r) then
    corrupt "trailing bytes: %d of %d consumed" r.pos (String.length r.data)
