lib/cli/cli.mli:
