(** The `sls` command line interface (Table 1).

    A CLI invocation operates on a {e universe}: a simulated machine
    whose only durable state is its NVMe device, persisted between
    invocations in a host file (default [./aurora.universe], override
    with [--universe]). Each command boots the machine from the device
    — exactly an SLS's worldview: processes exist between runs only as
    checkpoints — restores the registered applications, performs its
    work, checkpoints, and saves the device back.

    Commands: [init], [spawn] (run a built-in demo application under
    persistence), [run], [ps], [checkpoint], [restore], [gens],
    [send], [recv], [crash], [attach], [detach]. See [sls --help]. *)

val main : unit -> int
(** Evaluate the command line; returns the exit status. *)

val run : argv:string array -> int
(** Like {!main} with an explicit argument vector (tests). *)
