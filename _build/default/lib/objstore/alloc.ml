type t = {
  first_block : int;
  capacity_blocks : int option;
  refs : (int, int) Hashtbl.t;
  mutable free_list : int list;
  mutable next_fresh : int;
  mutable live : int;
  mutable on_free : (int -> unit) list;
}

let create ~first_block ?capacity_blocks () =
  if first_block < 0 then invalid_arg "Alloc.create: negative first_block";
  { first_block; capacity_blocks; refs = Hashtbl.create 4096; free_list = [];
    next_fresh = first_block; live = 0; on_free = [] }

let add_on_free t f = t.on_free <- t.on_free @ [ f ]

let alloc t =
  let block =
    match t.free_list with
    | b :: rest ->
      t.free_list <- rest;
      b
    | [] ->
      let b = t.next_fresh in
      (match t.capacity_blocks with
       | Some cap when b >= cap -> failwith "Alloc: device full"
       | _ -> ());
      t.next_fresh <- b + 1;
      b
  in
  Hashtbl.replace t.refs block 1;
  t.live <- t.live + 1;
  block

let refcount t block = Option.value ~default:0 (Hashtbl.find_opt t.refs block)

let incref t block =
  match Hashtbl.find_opt t.refs block with
  | Some n when n > 0 -> Hashtbl.replace t.refs block (n + 1)
  | Some _ | None -> invalid_arg (Printf.sprintf "Alloc.incref: dead block %d" block)

let decref t block =
  match Hashtbl.find_opt t.refs block with
  | Some n when n > 1 -> Hashtbl.replace t.refs block (n - 1)
  | Some 1 ->
    Hashtbl.remove t.refs block;
    t.free_list <- block :: t.free_list;
    t.live <- t.live - 1;
    List.iter (fun f -> f block) t.on_free
  | Some _ | None -> invalid_arg (Printf.sprintf "Alloc.decref: dead block %d" block)

let live_blocks t = t.live

let mark_live t block =
  (match Hashtbl.find_opt t.refs block with
   | Some n -> Hashtbl.replace t.refs block (n + 1)
   | None ->
     Hashtbl.replace t.refs block 1;
     t.live <- t.live + 1);
  if block >= t.next_fresh then t.next_fresh <- block + 1

let reset t =
  Hashtbl.reset t.refs;
  t.free_list <- [];
  t.next_fresh <- t.first_block;
  t.live <- 0
