lib/objstore/dedup.ml: Alloc Hashtbl
