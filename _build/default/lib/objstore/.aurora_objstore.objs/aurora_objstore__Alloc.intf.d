lib/objstore/alloc.mli:
