lib/objstore/dedup.mli: Alloc
