lib/objstore/alloc.ml: Hashtbl List Option Printf
