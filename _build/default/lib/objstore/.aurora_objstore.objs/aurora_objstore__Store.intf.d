lib/objstore/store.mli: Aurora_device Aurora_simtime Blockdev Duration
