lib/objstore/btree.ml: Alloc Array Aurora_device Aurora_posix Aurora_simtime Blockdev Clock Hashtbl Int Int64 List Printf Serial String
