lib/objstore/btree.mli: Alloc Aurora_device Aurora_simtime Blockdev Duration
