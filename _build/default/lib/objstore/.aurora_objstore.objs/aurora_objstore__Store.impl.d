lib/objstore/store.ml: Alloc Aurora_device Aurora_posix Aurora_simtime Aurora_vm Blockdev Btree Buffer Char Clock Content Dedup Format Fun Hashtbl Int Int64 List Option Printf Profile Serial String
