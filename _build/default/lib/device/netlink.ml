open Aurora_simtime

type side = [ `A | `B ]

type direction = {
  mutable busy_until : Duration.t;
  inbox : (Duration.t * string) Queue.t; (* arrival time, payload *)
}

type t = {
  clock : Clock.t;
  profile : Profile.t;
  a_to_b : direction;
  b_to_a : direction;
  mutable bytes_sent : int;
}

let create ~clock ~profile () =
  let dir () = { busy_until = Duration.zero; inbox = Queue.create () } in
  { clock; profile; a_to_b = dir (); b_to_a = dir (); bytes_sent = 0 }

let direction_to t (side : side) =
  match side with `A -> t.b_to_a | `B -> t.a_to_b

let send t ~from_ payload =
  let dir = match from_ with `A -> t.a_to_b | `B -> t.b_to_a in
  let bytes = String.length payload in
  let wire_time =
    Duration.of_sec_float (float_of_int bytes /. t.profile.Profile.write_bw)
  in
  let start = Duration.max (Clock.now t.clock) dir.busy_until in
  let last_byte = Duration.add start wire_time in
  dir.busy_until <- last_byte;
  let arrival = Duration.add last_byte t.profile.Profile.write_latency in
  Queue.push (arrival, payload) dir.inbox;
  t.bytes_sent <- t.bytes_sent + bytes;
  arrival

let recv t ~side =
  let dir = direction_to t side in
  match Queue.peek_opt dir.inbox with
  | Some (arrival, payload) when Duration.(arrival <= Clock.now t.clock) ->
    ignore (Queue.pop dir.inbox);
    Some payload
  | Some _ | None -> None

let recv_blocking t ~side =
  let dir = direction_to t side in
  match Queue.peek_opt dir.inbox with
  | None -> None
  | Some (arrival, payload) ->
    ignore (Queue.pop dir.inbox);
    Clock.advance_to t.clock arrival;
    Some payload

let pending t ~side = Queue.length (direction_to t side).inbox
let bytes_sent t = t.bytes_sent
