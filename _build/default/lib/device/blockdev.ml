open Aurora_simtime

let block_size = 4096

type content =
  | Data of string
  | Seed of int64
  | Zero

type slot = { mutable current : content; mutable durable : content; mutable is_durable : bool }

type stats = {
  reads : int;
  writes : int;
  blocks_read : int;
  blocks_written : int;
  flushes : int;
}

type t = {
  name : string;
  clock : Clock.t;
  profile : Profile.t;
  capacity_blocks : int option;
  slots : (int, slot) Hashtbl.t;
  mutable busy_until : Duration.t;     (* device queue drains at this time *)
  mutable pending : (int * content) list list; (* async batches not yet completed *)
  mutable st : stats;
}

let zero_stats = { reads = 0; writes = 0; blocks_read = 0; blocks_written = 0; flushes = 0 }

let create ?capacity_blocks ~clock ~profile name =
  { name; clock; profile; capacity_blocks; slots = Hashtbl.create 4096;
    busy_until = Duration.zero; pending = []; st = zero_stats }

let name t = t.name
let profile t = t.profile
let clock t = t.clock
let busy_until t = t.busy_until

let check_index t i =
  if i < 0 then invalid_arg "Blockdev: negative block index";
  match t.capacity_blocks with
  | Some cap when i >= cap ->
    invalid_arg (Printf.sprintf "Blockdev %s: block %d beyond capacity %d" t.name i cap)
  | _ -> ()

let slot t i =
  check_index t i;
  match Hashtbl.find_opt t.slots i with
  | Some s -> s
  | None ->
    let s = { current = Zero; durable = Zero; is_durable = true } in
    Hashtbl.replace t.slots i s;
    s

(* Charge a synchronous command: the device may still be draining its
   queue, so completion is max(now, busy_until) + cost. *)
let charge_sync t ~op ~blocks =
  let cost = Profile.transfer_cost t.profile ~op ~bytes:(blocks * block_size) in
  let start = Duration.max (Clock.now t.clock) t.busy_until in
  let completion = Duration.add start cost in
  t.busy_until <- completion;
  Clock.advance_to t.clock completion

let read t i =
  charge_sync t ~op:`Read ~blocks:1;
  t.st <- { t.st with reads = t.st.reads + 1; blocks_read = t.st.blocks_read + 1 };
  (slot t i).current

let peek t i = (slot t i).current

let read_many t indices =
  let n = List.length indices in
  if n > 0 then charge_sync t ~op:`Read ~blocks:n;
  t.st <- { t.st with reads = t.st.reads + 1; blocks_read = t.st.blocks_read + n };
  List.map (fun i -> (slot t i).current) indices

let store_block t ~completed (i, c) =
  (match c with
   | Data s when String.length s > block_size ->
     invalid_arg "Blockdev.write: content larger than a block"
   | Data _ | Seed _ | Zero -> ());
  let s = slot t i in
  s.current <- c;
  if completed && not t.profile.Profile.volatile_cache then begin
    s.durable <- c;
    s.is_durable <- true
  end
  else s.is_durable <- false

let write_many t writes =
  let n = List.length writes in
  if n > 0 then charge_sync t ~op:`Write ~blocks:n;
  t.st <- { t.st with writes = t.st.writes + 1; blocks_written = t.st.blocks_written + n };
  List.iter (store_block t ~completed:true) writes

let write t i c = write_many t [ (i, c) ]

let write_async t writes =
  let n = List.length writes in
  let cost = Profile.transfer_cost t.profile ~op:`Write ~bytes:(n * block_size) in
  let start = Duration.max (Clock.now t.clock) t.busy_until in
  let completion = Duration.add start cost in
  t.busy_until <- completion;
  t.st <- { t.st with writes = t.st.writes + 1; blocks_written = t.st.blocks_written + n };
  (* Content is visible immediately (the store serializes access), but
     the batch is remembered as in-flight so a crash before completion
     can drop it; completion also gates durability on non-volatile
     caches. *)
  List.iter (store_block t ~completed:false) writes;
  t.pending <- writes :: t.pending;
  completion

let settle_pending t =
  (* All queued batches complete once the clock reaches busy_until. *)
  if Duration.(Clock.now t.clock >= t.busy_until) then begin
    if not t.profile.Profile.volatile_cache then
      List.iter
        (fun batch ->
          List.iter
            (fun (i, _) ->
              let s = slot t i in
              s.durable <- s.current;
              s.is_durable <- true)
            batch)
        t.pending;
    t.pending <- []
  end

let await t completion =
  Clock.advance_to t.clock completion;
  settle_pending t

let flush t =
  Clock.advance_to t.clock t.busy_until;
  Clock.advance t.clock t.profile.Profile.flush_latency;
  t.pending <- [];
  t.st <- { t.st with flushes = t.st.flushes + 1 };
  Hashtbl.iter
    (fun _ s ->
      if not s.is_durable then begin
        s.durable <- s.current;
        s.is_durable <- true
      end)
    t.slots

let crash t =
  (* Queued-but-incomplete async batches never happened. *)
  settle_pending t;
  let dropped = Hashtbl.create 16 in
  List.iter
    (fun batch -> List.iter (fun (i, _) -> Hashtbl.replace dropped i ()) batch)
    t.pending;
  t.pending <- [];
  t.busy_until <- Clock.now t.clock;
  Hashtbl.iter
    (fun i s ->
      if Hashtbl.mem dropped i || not s.is_durable then begin
        s.current <- s.durable;
        s.is_durable <- true
      end)
    t.slots

let stats t = t.st
let reset_stats t = t.st <- zero_stats

let used_blocks t =
  Hashtbl.fold (fun _ s acc -> match s.current with Zero -> acc | _ -> acc + 1) t.slots 0
