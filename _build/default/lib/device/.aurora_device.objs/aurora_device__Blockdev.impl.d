lib/device/blockdev.ml: Aurora_simtime Clock Duration Hashtbl List Printf Profile String
