lib/device/profile.mli: Aurora_simtime Duration Format
