lib/device/netlink.mli: Aurora_simtime Clock Duration Profile
