lib/device/costmodel.mli: Aurora_simtime Duration
