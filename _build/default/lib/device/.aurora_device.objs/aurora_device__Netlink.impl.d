lib/device/netlink.ml: Aurora_simtime Clock Duration Profile Queue String
