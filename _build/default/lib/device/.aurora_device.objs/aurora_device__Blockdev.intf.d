lib/device/blockdev.mli: Aurora_simtime Clock Duration Profile
