lib/device/profile.ml: Aurora_simtime Duration Format
