lib/device/costmodel.ml: Aurora_simtime Duration Float
