(** Simulated full-duplex network link between two hosts.

    Both ends share one simulated clock (the simulation models a single
    universe). Each direction serializes transmissions through its own
    bandwidth queue; a message arrives one wire latency after its last
    byte is on the wire. Payloads are opaque strings — the SLS
    send/recv machinery ships serialized checkpoint records over
    this. *)

open Aurora_simtime

type t
type side = [ `A | `B ]

val create : clock:Clock.t -> profile:Profile.t -> unit -> t
(** The profile's [write_latency] is the one-way wire latency and
    [write_bw] the link bandwidth. *)

val send : t -> from_:side -> string -> Duration.t
(** Queue a message from one side; returns its absolute arrival time at
    the peer. Does not advance the clock (transmission is
    asynchronous). *)

val recv : t -> side:side -> string option
(** Next message addressed to [side] that has already arrived, if
    any. *)

val recv_blocking : t -> side:side -> string option
(** Like {!recv}, but if a message is still in flight, advances the
    clock to its arrival. [None] only when nothing is queued at all. *)

val pending : t -> side:side -> int
(** Messages queued for [side], whether or not they have arrived. *)

val bytes_sent : t -> int
(** Total payload bytes ever queued, both directions. *)
