open Aurora_simtime

type vtype = Reg | Dir

type t = {
  vid : int;
  vtype : vtype;
  mutable nlink : int;
  mutable open_count : int;
  mutable persistent_open : int;
  mutable size : int;
  chunks : (int, bytes) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  mutable mtime : Duration.t;
}

let chunk_size = 4096
let next_vid = ref 0

let create ?vid vtype =
  let vid =
    match vid with
    | None ->
      incr next_vid;
      !next_vid
    | Some v ->
      if v > !next_vid then next_vid := v;
      v
  in
  { vid; vtype; nlink = 1; open_count = 0; persistent_open = 0;
    size = 0; chunks = Hashtbl.create 8; dirty = Hashtbl.create 8;
    mtime = Duration.zero }

let check_reg t op =
  if t.vtype <> Reg then invalid_arg (Printf.sprintf "Vnode.%s: not a regular file" op)

let read t ~off ~len =
  check_reg t "read";
  if off < 0 || len < 0 then invalid_arg "Vnode.read: negative offset or length";
  let len = if off >= t.size then 0 else min len (t.size - off) in
  let out = Bytes.make len '\000' in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let ci = abs / chunk_size and coff = abs mod chunk_size in
    let n = min (chunk_size - coff) (len - !pos) in
    (match Hashtbl.find_opt t.chunks ci with
     | Some chunk ->
       let avail = Bytes.length chunk - coff in
       if avail > 0 then Bytes.blit chunk coff out !pos (min n avail)
     | None -> ());
    pos := !pos + n
  done;
  out

let ensure_chunk t ci =
  match Hashtbl.find_opt t.chunks ci with
  | Some c when Bytes.length c = chunk_size -> c
  | Some c ->
    let full = Bytes.make chunk_size '\000' in
    Bytes.blit c 0 full 0 (Bytes.length c);
    Hashtbl.replace t.chunks ci full;
    full
  | None ->
    let full = Bytes.make chunk_size '\000' in
    Hashtbl.replace t.chunks ci full;
    full

let write t ~off data =
  check_reg t "write";
  if off < 0 then invalid_arg "Vnode.write: negative offset";
  let len = Bytes.length data in
  let pos = ref 0 in
  while !pos < len do
    let abs = off + !pos in
    let ci = abs / chunk_size and coff = abs mod chunk_size in
    let n = min (chunk_size - coff) (len - !pos) in
    let chunk = ensure_chunk t ci in
    Bytes.blit data !pos chunk coff n;
    Hashtbl.replace t.dirty ci ();
    pos := !pos + n
  done;
  if off + len > t.size then t.size <- off + len

let append t data = write t ~off:t.size data

let truncate t new_size =
  check_reg t "truncate";
  if new_size < 0 then invalid_arg "Vnode.truncate: negative size";
  if new_size < t.size then begin
    let last_chunk = if new_size = 0 then -1 else (new_size - 1) / chunk_size in
    let to_remove =
      Hashtbl.fold (fun ci _ acc -> if ci > last_chunk then ci :: acc else acc) t.chunks []
    in
    List.iter (Hashtbl.remove t.chunks) to_remove;
    (* Zero the tail of the boundary chunk so re-extension reads
       zeroes, and mark it dirty. *)
    if last_chunk >= 0 then begin
      match Hashtbl.find_opt t.chunks last_chunk with
      | Some chunk ->
        let keep = new_size - (last_chunk * chunk_size) in
        Bytes.fill chunk keep (Bytes.length chunk - keep) '\000';
        Hashtbl.replace t.dirty last_chunk ()
      | None -> ()
    end
  end;
  t.size <- new_size

let dirty_chunks t =
  List.sort Int.compare (Hashtbl.fold (fun ci () acc -> ci :: acc) t.dirty [])

let clear_dirty t = Hashtbl.reset t.dirty
let chunk_count t = Hashtbl.length t.chunks

let equal_data a b =
  a.size = b.size
  &&
  let rec chunks_equal ci =
    if ci * chunk_size >= a.size then true
    else
      let bytes_a = read a ~off:(ci * chunk_size) ~len:chunk_size in
      let bytes_b = read b ~off:(ci * chunk_size) ~len:chunk_size in
      Bytes.equal bytes_a bytes_b && chunks_equal (ci + 1)
  in
  chunks_equal 0

let pp ppf t =
  Format.fprintf ppf "vnode#%d(%s size=%d nlink=%d open=%d popen=%d)"
    t.vid
    (match t.vtype with Reg -> "reg" | Dir -> "dir")
    t.size t.nlink t.open_count t.persistent_open
