open Aurora_device

exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

type t = {
  root : Vnode.t;
  vnodes : (int, Vnode.t) Hashtbl.t;
  dirents : (int, (string, int) Hashtbl.t) Hashtbl.t; (* dir vid -> name -> vid *)
  backing : Blockdev.t option;
  block_map : (int * int, int) Hashtbl.t; (* (vid, chunk) -> device block *)
  durable_size : (int, int) Hashtbl.t;    (* vid -> size recorded at fsync *)
  mutable next_block : int;
}

let create ?backing () =
  let root = Vnode.create Vnode.Dir in
  let t =
    { root; vnodes = Hashtbl.create 64; dirents = Hashtbl.create 16; backing;
      block_map = Hashtbl.create 64; durable_size = Hashtbl.create 64;
      next_block = 0 }
  in
  Hashtbl.replace t.vnodes root.Vnode.vid root;
  Hashtbl.replace t.dirents root.Vnode.vid (Hashtbl.create 8);
  t

let root t = t.root

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then err "relative path %S" path;
  String.split_on_char '/' path |> List.filter (fun s -> s <> "")

let entries_of t dir =
  if dir.Vnode.vtype <> Vnode.Dir then err "vnode#%d is not a directory" dir.Vnode.vid;
  match Hashtbl.find_opt t.dirents dir.Vnode.vid with
  | Some e -> e
  | None ->
    let e = Hashtbl.create 8 in
    Hashtbl.replace t.dirents dir.Vnode.vid e;
    e

let vnode_by_id t vid = Hashtbl.find_opt t.vnodes vid

let lookup_in t dir name =
  match Hashtbl.find_opt (entries_of t dir) name with
  | None -> None
  | Some vid -> vnode_by_id t vid

let rec walk t dir = function
  | [] -> dir
  | name :: rest -> (
    match lookup_in t dir name with
    | Some v -> walk t v rest
    | None -> err "no such path component %S" name)

let lookup t path = walk t t.root (split_path path)
let lookup_opt t path = try Some (lookup t path) with Error _ -> None

let parent_and_name t path =
  match List.rev (split_path path) with
  | [] -> err "cannot operate on /"
  | name :: rev_dirs -> (walk t t.root (List.rev rev_dirs), name)

let add_entry t dir name vnode =
  let entries = entries_of t dir in
  if Hashtbl.mem entries name then err "path component %S already exists" name;
  Hashtbl.replace entries name vnode.Vnode.vid

let mkdir t path =
  let dir, name = parent_and_name t path in
  let v = Vnode.create Vnode.Dir in
  add_entry t dir name v;
  Hashtbl.replace t.vnodes v.Vnode.vid v;
  Hashtbl.replace t.dirents v.Vnode.vid (Hashtbl.create 8);
  v

let create_file t path =
  let dir, name = parent_and_name t path in
  let v = Vnode.create Vnode.Reg in
  add_entry t dir name v;
  Hashtbl.replace t.vnodes v.Vnode.vid v;
  v

let link t ~existing ~path =
  let v = lookup t existing in
  if v.Vnode.vtype = Vnode.Dir then err "cannot hard-link a directory";
  let dir, name = parent_and_name t path in
  add_entry t dir name v;
  v.Vnode.nlink <- v.Vnode.nlink + 1

let reclaim t v =
  Hashtbl.remove t.vnodes v.Vnode.vid;
  Hashtbl.remove t.dirents v.Vnode.vid;
  let stale =
    Hashtbl.fold (fun (vid, ci) _ acc -> if vid = v.Vnode.vid then (vid, ci) :: acc else acc)
      t.block_map []
  in
  List.iter (Hashtbl.remove t.block_map) stale;
  Hashtbl.remove t.durable_size v.Vnode.vid

let maybe_reclaim t v =
  if v.Vnode.nlink = 0 && v.Vnode.open_count = 0 then reclaim t v

let unlink t path =
  let dir, name = parent_and_name t path in
  match lookup_in t dir name with
  | None -> err "unlink: no such path %s" path
  | Some v ->
    if v.Vnode.vtype = Vnode.Dir && Hashtbl.length (entries_of t v) > 0 then
      err "unlink: directory not empty";
    Hashtbl.remove (entries_of t dir) name;
    v.Vnode.nlink <- v.Vnode.nlink - 1;
    maybe_reclaim t v

let rename t ~src ~dst =
  let sdir, sname = parent_and_name t src in
  match lookup_in t sdir sname with
  | None -> err "rename: no such path %s" src
  | Some v ->
    let ddir, dname = parent_and_name t dst in
    (* Atomically replace the destination if present. *)
    (match lookup_in t ddir dname with
     | Some existing when existing == v -> ()
     | Some existing ->
       Hashtbl.remove (entries_of t ddir) dname;
       existing.Vnode.nlink <- existing.Vnode.nlink - 1;
       maybe_reclaim t existing
     | None -> ());
    Hashtbl.remove (entries_of t sdir) sname;
    Hashtbl.replace (entries_of t ddir) dname v.Vnode.vid

let readdir t path =
  let dir = lookup t path in
  Hashtbl.fold (fun name _ acc -> name :: acc) (entries_of t dir) []
  |> List.sort String.compare

let open_vnode _t v = v.Vnode.open_count <- v.Vnode.open_count + 1

let close_vnode t v =
  if v.Vnode.open_count <= 0 then err "close: vnode#%d not open" v.Vnode.vid;
  v.Vnode.open_count <- v.Vnode.open_count - 1;
  maybe_reclaim t v

let block_for t vid ci =
  match Hashtbl.find_opt t.block_map (vid, ci) with
  | Some b -> b
  | None ->
    let b = t.next_block in
    t.next_block <- t.next_block + 1;
    Hashtbl.replace t.block_map (vid, ci) b;
    b

let fsync t v =
  match t.backing with
  | None -> Vnode.clear_dirty v
  | Some dev ->
    let writes =
      List.map
        (fun ci ->
          let data =
            Vnode.read v ~off:(ci * Vnode.chunk_size) ~len:Vnode.chunk_size
          in
          (block_for t v.Vnode.vid ci, Blockdev.Data (Bytes.to_string data)))
        (Vnode.dirty_chunks v)
    in
    if writes <> [] then Blockdev.write_many dev writes;
    Blockdev.flush dev;
    Hashtbl.replace t.durable_size v.Vnode.vid v.Vnode.size;
    Vnode.clear_dirty v

let adopt t v =
  Hashtbl.replace t.vnodes v.Vnode.vid v;
  if v.Vnode.vtype = Vnode.Dir && not (Hashtbl.mem t.dirents v.Vnode.vid) then
    Hashtbl.replace t.dirents v.Vnode.vid (Hashtbl.create 8)

let attach t ~path v =
  let dir, name = parent_and_name t path in
  add_entry t dir name v

let live_vnodes t =
  Hashtbl.fold (fun _ v acc -> v :: acc) t.vnodes []
  |> List.sort (fun a b -> Int.compare a.Vnode.vid b.Vnode.vid)

let sync_all t = List.iter (fun v -> if v.Vnode.vtype = Vnode.Reg then fsync t v) (live_vnodes t)

let crash t =
  (match t.backing with
   | Some dev -> Blockdev.crash dev
   | None -> ());
  List.iter
    (fun v ->
      if v.Vnode.vtype = Vnode.Reg then begin
        (* Anonymous files (unlinked but open) are reclaimed by a
           conventional file system — unless Aurora's on-disk open
           reference count pins them. *)
        if v.Vnode.nlink = 0 && v.Vnode.persistent_open = 0 then reclaim t v
        else begin
          v.Vnode.open_count <- 0;
          match t.backing with
          | None ->
            (* Pure RAM disk: contents are gone. *)
            Hashtbl.reset v.Vnode.chunks;
            Vnode.clear_dirty v;
            v.Vnode.size <- 0
          | Some dev ->
            (* Revert contents to what reached the device; size reverts
               to the inode state recorded by the last fsync. *)
            Hashtbl.reset v.Vnode.chunks;
            Vnode.clear_dirty v;
            Hashtbl.iter
              (fun (vid, ci) block ->
                if vid = v.Vnode.vid then
                  match Blockdev.read dev block with
                  | Blockdev.Data s ->
                    Hashtbl.replace v.Vnode.chunks ci (Bytes.of_string s)
                  | Blockdev.Seed _ | Blockdev.Zero -> ())
              t.block_map;
            v.Vnode.size <-
              Option.value ~default:0 (Hashtbl.find_opt t.durable_size v.Vnode.vid)
        end
      end
      else v.Vnode.open_count <- 0)
    (live_vnodes t)

let path_of_vid t vid =
  let rec search dir_vid prefix =
    match Hashtbl.find_opt t.dirents dir_vid with
    | None -> None
    | Some entries ->
      Hashtbl.fold
        (fun name child acc ->
          match acc with
          | Some _ -> acc
          | None ->
            let path = prefix ^ "/" ^ name in
            if child = vid then Some path
            else
              match vnode_by_id t child with
              | Some v when v.Vnode.vtype = Vnode.Dir -> search child path
              | _ -> None)
        entries None
  in
  if vid = t.root.Vnode.vid then Some "/" else search t.root.Vnode.vid ""
