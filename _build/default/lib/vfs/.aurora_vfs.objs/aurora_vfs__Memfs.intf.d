lib/vfs/memfs.mli: Aurora_device Blockdev Vnode
