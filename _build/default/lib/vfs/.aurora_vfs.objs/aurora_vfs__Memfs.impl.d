lib/vfs/memfs.ml: Aurora_device Blockdev Bytes Format Hashtbl Int List Option String Vnode
