lib/vfs/vnode.ml: Aurora_simtime Bytes Duration Format Hashtbl Int List Printf
