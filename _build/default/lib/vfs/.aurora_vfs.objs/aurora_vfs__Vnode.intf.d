lib/vfs/vnode.mli: Aurora_simtime Duration Format Hashtbl
