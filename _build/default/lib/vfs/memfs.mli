(** An in-memory POSIX file system with optional backing device.

    Namespace operations (lookup, create, link, unlink, rename, mkdir)
    over {!Vnode.t}s, plus the durability model that the database
    baselines and the crash tests need:

    - writes hit the page cache (vnode chunks) only;
    - [fsync] pushes a vnode's dirty chunks to the backing device and
      flushes it, charging real device time — this is the cost the
      paper says databases pay today and Aurora's explicit persistence
      primitive avoids;
    - [crash] models power loss for a {e conventional} file system:
      all cache-only state reverts to what reached the device, and
      unlinked-but-open vnodes are reclaimed {e unless} their
      [persistent_open] count is positive (the Aurora file system's
      on-disk open reference count — §3's anonymous-file fix). *)

open Aurora_device

type t

val create : ?backing:Blockdev.t -> unit -> t
(** Without [backing], [fsync] is free and [crash] loses everything
    except Aurora-pinned vnodes (a pure RAM disk). *)

exception Error of string
(** Raised on namespace errors: missing paths, duplicate creation,
    unlink of an open directory, etc. *)

val root : t -> Vnode.t
val lookup : t -> string -> Vnode.t
(** Absolute-path lookup; raises {!Error} if any component is
    missing. *)

val lookup_opt : t -> string -> Vnode.t option
val mkdir : t -> string -> Vnode.t
val create_file : t -> string -> Vnode.t
(** Raises {!Error} if the path already exists. *)

val link : t -> existing:string -> path:string -> unit
val unlink : t -> string -> unit
(** Removes the name; the vnode survives while it has links or open
    descriptions (the anonymous-file state). *)

val rename : t -> src:string -> dst:string -> unit
(** Replaces [dst] if it exists (atomic rename, the crash-consistency
    building block journaling databases rely on). *)

val readdir : t -> string -> string list
(** Sorted entry names. *)

val open_vnode : t -> Vnode.t -> unit
(** Account an open file description. *)

val close_vnode : t -> Vnode.t -> unit
(** Drop an open; reclaims the vnode if it is also unlinked. *)

val fsync : t -> Vnode.t -> unit
(** Write the vnode's dirty chunks to the backing device and flush. *)

val sync_all : t -> unit

val crash : t -> unit
(** Power loss, as described above. The namespace itself is preserved
    only for names that were synced at least once or never touched;
    for simplicity the namespace tree survives but unsynced file
    {e contents} revert and anonymous vnodes are reclaimed. *)

val adopt : t -> Vnode.t -> unit
(** Restore path: register an externally created vnode (possibly
    nameless — an anonymous file) with this file system. For
    directories an empty entry table is created. *)

val attach : t -> path:string -> Vnode.t -> unit
(** Restore path: enter a name for an adopted vnode without touching
    its link count (the checkpointed [nlink] is already correct). *)

val live_vnodes : t -> Vnode.t list
val vnode_by_id : t -> int -> Vnode.t option
val path_of_vid : t -> int -> string option
(** Some linked path for the vnode, if any (for `sls ps`-style
    listings and checkpoint metadata). *)
