(** Vnodes: the in-kernel representation of file system objects.

    File data lives in page-sized chunks of real bytes (unlike
    anonymous memory, which is seed-compressed) so that applications —
    write-ahead logs, LSM SSTables — observe genuine byte semantics.

    Two reference counts matter for Aurora:
    - [open_count] is the ordinary in-memory count of open file
      descriptions. A POSIX file system reclaims an unlinked vnode when
      this reaches zero — and therefore loses unlinked-but-open
      ("anonymous") files across a crash.
    - [persistent_open] is Aurora's on-disk open reference count
      (§3: "we solve this by maintaining an on-disk open reference
      count storing the number of persistent virtual file system
      vnodes"), maintained by the SLS file system so restoration can
      resurrect anonymous files. *)

open Aurora_simtime

type vtype = Reg | Dir

type t = {
  vid : int;
  vtype : vtype;
  mutable nlink : int;
  mutable open_count : int;
  mutable persistent_open : int;
  mutable size : int;
  chunks : (int, bytes) Hashtbl.t; (* chunk index -> up-to-4096-byte data *)
  dirty : (int, unit) Hashtbl.t;   (* chunks modified since last fsync/flush *)
  mutable mtime : Duration.t;
}

val chunk_size : int

val create : ?vid:int -> vtype -> t
(** Fresh vnode with one link and no data. [vid] forces the identifier
    (restore paths must preserve checkpointed vnode ids); the global
    id counter is reserved past it. *)

val read : t -> off:int -> len:int -> bytes
(** Reads clamp at [size]; holes read as zeroes. Raises
    [Invalid_argument] on negative [off]/[len] or on a directory. *)

val write : t -> off:int -> bytes -> unit
(** Extends the file as needed; marks touched chunks dirty. *)

val append : t -> bytes -> unit
val truncate : t -> int -> unit
(** Shrink or extend to the given size. *)

val dirty_chunks : t -> int list
(** Sorted indexes of chunks modified since the last {!clear_dirty}. *)

val clear_dirty : t -> unit
val chunk_count : t -> int
val equal_data : t -> t -> bool
(** Byte-for-byte comparison of file contents. *)

val pp : Format.formatter -> t -> unit
