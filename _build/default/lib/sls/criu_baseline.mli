(** A CRIU-style checkpoint baseline, for comparison benches.

    CRIU "pieces together application state by querying the kernel
    through system calls and the proc file system" (§2) — from outside
    the kernel, which forces it to (a) pay syscall round-trips per
    queried object and (b) copy memory through the querying process
    rather than arming COW in the VM subsystem, stopping the
    application for the duration. This module reproduces that cost
    structure over the same serializers, so the Aurora-vs-CRIU gap in
    the F-baseline bench comes from the architecture, not from
    unrelated implementation differences.

    The output is a normal store generation: restore works with the
    standard engine. *)

open Aurora_proc

val syscalls_per_object : int
(** Introspection round-trips charged per queried kernel object. *)

val checkpoint :
  Kernel.t -> Types.pgroup -> ?name:string -> unit -> Types.ckpt_breakdown
(** Stop-the-world checkpoint: metadata via syscall introspection,
    memory via full copy during the stop. [lazy_data_copy] holds the
    memory-copy time so the breakdown stays comparable with
    [Ckpt.checkpoint]. *)
