(** The per-group persistent append-only log behind `sls_ntflush`.

    Each flush is its own micro-generation in the group's primary
    store, so a record is durable independently of (and usually long
    before) the next periodic checkpoint — this is the low-latency
    primitive the database ports use in place of their write-ahead
    logs. Records are replayed (oldest first) by a restored
    application to repair state newer than its checkpoint, and
    truncated once a checkpoint has absorbed them. *)

open Aurora_simtime

val flush : ?oid:int -> Types.pgroup -> string -> Duration.t
(** Append one record (at most one block); returns its durability
    instant. [oid] selects the log (default: the group's `sls_ntflush`
    log; the record/replay journal passes its own). Raises
    [Invalid_argument] on oversized records or a group with no local
    backend. *)

val read : ?oid:int -> Types.pgroup -> string list
val truncate : ?oid:int -> Types.pgroup -> unit
val barrier : Types.pgroup -> unit
(** Wait until the group's last checkpoint is durable. *)

val wait : Types.pgroup -> Duration.t -> unit
(** Wait until an absolute durability instant (e.g. {!flush}'s
    result). *)
