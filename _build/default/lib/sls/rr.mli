(** Kernel-integrated record/replay (§4, "Debugging and Speculation").

    Once enabled for a persistence group, every byte entering the
    group from outside (stream traffic whose receiver is a member) is
    journaled to the group's record/replay log before delivery —
    transparently, through the same send-hook interposition point the
    external-consistency machinery uses. Each checkpoint truncates the
    journal, which is exactly how "Aurora integrates with record/replay
    systems to bound record log size by only keeping the records since
    the last checkpoint".

    {!rollback_and_replay} is the §4 failure workflow: "the
    application is rolled back to this checkpoint and replays the
    remaining log" — the recorded inputs are re-delivered into the
    restored endpoints, and the deterministic simulation reproduces
    the pre-failure execution exactly (asserted by the tests). *)

val log_oid : Types.pgroup -> int

val record_input : Types.pgroup -> peer_oid:int -> string -> unit
(** Journal one boundary input (called by the machine's send hook;
    exposed for tests and for journaling non-socket nondeterminism). *)

val recorded : Types.pgroup -> (int * string) list
(** The journal since the last checkpoint: (destination endpoint oid,
    data), oldest first. *)

val on_checkpoint : Types.pgroup -> unit
(** Truncate the journal (the covering checkpoint captured its
    effects). *)

val replay : Aurora_proc.Kernel.t -> Types.pgroup -> int
(** Re-deliver every journaled input into its (restored) destination
    endpoint; returns how many were delivered. Entries whose endpoint
    no longer exists are skipped. *)
