open Aurora_posix
open Aurora_proc

let log_oid (g : Types.pgroup) = Oidspace.rrlog g.Types.pgid

let encode ~peer_oid data =
  let w = Serial.writer () in
  Serial.w_int w peer_oid;
  Serial.w_string w data;
  Serial.contents w

let decode entry =
  let r = Serial.reader entry in
  let peer_oid = Serial.r_int r in
  let data = Serial.r_string r in
  (peer_oid, data)

let record_input (g : Types.pgroup) ~peer_oid data =
  ignore (Ntlog.flush ~oid:(log_oid g) g (encode ~peer_oid data))

let recorded (g : Types.pgroup) = List.map decode (Ntlog.read ~oid:(log_oid g) g)
let on_checkpoint (g : Types.pgroup) = Ntlog.truncate ~oid:(log_oid g) g

let replay (k : Kernel.t) (g : Types.pgroup) =
  List.fold_left
    (fun n (peer_oid, data) ->
      match Kernel.lookup_stream k peer_oid with
      | Some peer ->
        ignore (Unixsock.deliver peer data);
        n + 1
      | None -> n)
    0 (recorded g)
