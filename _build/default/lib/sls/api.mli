(** libsls: the developer API of Table 2.

    These are the calls modified applications use to control and
    optimize persistence — the database port in [Aurora_apps.Kvstore]
    is built entirely on them:

    - {!sls_checkpoint} / {!sls_restore} / {!sls_rollback} manipulate
      whole-application state explicitly;
    - {!sls_ntflush} is the persistent append-only log primitive ("a
      low latency flush ... to a storage medium"; applications repair
      their data structures from it after a restore);
    - {!sls_barrier} blocks until the latest checkpoint is durable;
    - {!sls_mctl} includes/excludes memory regions and sets their
      lazy-restore policy;
    - {!sls_fdctl} toggles external consistency per descriptor. *)

open Aurora_simtime
open Aurora_vm
open Aurora_proc
open Aurora_objstore

val sls_checkpoint : Machine.t -> Types.pgroup -> ?name:string -> unit -> Store.gen
(** Manual checkpoint (Table 2's [sls_checkpoint()]); returns the
    image's generation. *)

val sls_restore :
  Machine.t -> Types.pgroup -> ?gen:Store.gen -> ?policy:Types.restore_policy -> unit ->
  int list
(** Restore a checkpoint (replacing the running group); returns the
    pids. *)

val sls_rollback : Machine.t -> Types.pgroup -> int list
(** Roll the group back to its last checkpoint. Raises
    [Invalid_argument] when the group has never been checkpointed. The
    returned pids' programs observe the rollback (register 15 is set
    to 1 in every restored thread — the paper's "Aurora notifies the
    client of the rollback" hook). *)

val sls_barrier : Machine.t -> Types.pgroup -> unit
(** Wait (advance the clock) until the group's last checkpoint is
    durable on its primary backend. *)

val sls_ntflush : Machine.t -> Types.pgroup -> string -> Duration.t
(** Append a record to the group's persistent log and queue it to
    storage; returns the durability instant (combine with
    {!sls_barrier_until} to block on it). *)

val sls_barrier_until : Machine.t -> Duration.t -> unit

val sls_log_read : Machine.t -> Types.pgroup -> string list
(** The persistent log's surviving records, oldest first (what a
    restored application replays). *)

val sls_log_truncate : Machine.t -> Types.pgroup -> unit
(** Drop the log (after its contents are absorbed by a checkpoint). *)

val sls_mctl :
  Machine.t -> Process.t -> Vmmap.entry -> persist:bool ->
  ?policy:Vmmap.restore_policy -> unit -> unit

val sls_fdctl : Process.t -> fd:int -> ext_consistency:bool -> unit
