open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_posix
open Aurora_proc

type records = {
  manifest : string;
  items : (int * string) list;
  vm_objects : (Vmobject.t * int) list;
  metadata_cost : Duration.t;
}

type manifest_rec = {
  pids : int list;
  target : Types.target;
  group_name : string;
  unix_ns : (string * int) list;
  kobj_oids : int list;
  next_pid : int;
  netstack : string;
}

type vm_entry_rec = {
  start_vpn : int;
  npages : int;
  obj_oid : int;
  obj_offset : int;
  writable : bool;
  inheritance : [ `Share | `Copy ];
  needs_copy : bool;
  persisted : bool;
  policy : Vmmap.restore_policy;
}

type proc_rec = {
  pid : int;
  ppid : int;
  name : string;
  container : int;
  cwd : string;
  next_tid : int;
  threads : Thread.t list;
  vm_entries : vm_entry_rec list;
  fd_blob : string;
}

type vmobj_rec = {
  vm_oid : int;
  kind : Vmobject.kind;
  shadow_oid : int option;
  hot_pages : int list;
}

(* How many of the hottest pages a checkpoint remembers for
   prefetching at restore (per VM object). Sized to cover a service's
   genuinely hot region at a page-in cost (one batched read) that
   stays well under the full-image eager cost. *)
let hot_set_limit = 1024

(* --- manifest -------------------------------------------------------- *)

let serialize_manifest (m : manifest_rec) =
  let w = Serial.writer () in
  Serial.w_list w Serial.w_int m.pids;
  (match m.target with
   | `Container cid ->
     Serial.w_u8 w 0;
     Serial.w_int w cid
   | `Pids pids ->
     Serial.w_u8 w 1;
     Serial.w_list w Serial.w_int pids);
  Serial.w_string w m.group_name;
  Serial.w_list w (fun w (name, oid) ->
      Serial.w_string w name;
      Serial.w_int w oid)
    m.unix_ns;
  Serial.w_list w Serial.w_int m.kobj_oids;
  Serial.w_int w m.next_pid;
  Serial.w_string w m.netstack;
  Serial.contents w

let parse_manifest data =
  let r = Serial.reader data in
  let pids = Serial.r_list r Serial.r_int in
  let target =
    match Serial.r_u8 r with
    | 0 -> `Container (Serial.r_int r)
    | 1 -> `Pids (Serial.r_list r Serial.r_int)
    | v -> raise (Serial.Corrupt (Printf.sprintf "manifest: bad target tag %d" v))
  in
  let group_name = Serial.r_string r in
  let unix_ns =
    Serial.r_list r (fun r ->
        let name = Serial.r_string r in
        let oid = Serial.r_int r in
        (name, oid))
  in
  let kobj_oids = Serial.r_list r Serial.r_int in
  let next_pid = Serial.r_int r in
  let netstack = Serial.r_string r in
  { pids; target; group_name; unix_ns; kobj_oids; next_pid; netstack }

(* --- vm entries ------------------------------------------------------ *)

let w_policy w = function
  | `Lazy -> Serial.w_u8 w 0
  | `Eager -> Serial.w_u8 w 1
  | `Hot -> Serial.w_u8 w 2

let r_policy r : Vmmap.restore_policy =
  match Serial.r_u8 r with
  | 0 -> `Lazy
  | 1 -> `Eager
  | 2 -> `Hot
  | v -> raise (Serial.Corrupt (Printf.sprintf "vm entry: bad policy tag %d" v))

let w_vm_entry w (e : Vmmap.entry) =
  Serial.w_int w e.Vmmap.start_vpn;
  Serial.w_int w e.Vmmap.npages;
  Serial.w_int w (Vmobject.oid e.Vmmap.obj);
  Serial.w_int w e.Vmmap.obj_offset;
  Serial.w_bool w e.Vmmap.writable;
  Serial.w_u8 w (match e.Vmmap.inheritance with `Share -> 0 | `Copy -> 1);
  Serial.w_bool w e.Vmmap.needs_copy;
  Serial.w_bool w e.Vmmap.persisted;
  w_policy w e.Vmmap.restore_policy

let r_vm_entry r =
  let start_vpn = Serial.r_int r in
  let npages = Serial.r_int r in
  let obj_oid = Serial.r_int r in
  let obj_offset = Serial.r_int r in
  let writable = Serial.r_bool r in
  let inheritance =
    match Serial.r_u8 r with
    | 0 -> `Share
    | 1 -> `Copy
    | v -> raise (Serial.Corrupt (Printf.sprintf "vm entry: bad inheritance %d" v))
  in
  let needs_copy = Serial.r_bool r in
  let persisted = Serial.r_bool r in
  let policy = r_policy r in
  { start_vpn; npages; obj_oid; obj_offset; writable; inheritance; needs_copy;
    persisted; policy }

(* --- processes ------------------------------------------------------- *)

let serialize_proc (k : Kernel.t) (p : Process.t) =
  let w = Serial.writer () in
  Serial.w_int w p.Process.pid;
  Serial.w_int w p.Process.ppid;
  Serial.w_string w p.Process.name;
  Serial.w_int w p.Process.container;
  Serial.w_string w p.Process.cwd;
  Serial.w_int w p.Process.next_tid;
  Serial.w_list w (fun w th -> Thread.serialize th w) p.Process.threads;
  let persisted_entries =
    List.filter (fun e -> e.Vmmap.persisted) (Vmmap.entries p.Process.vm)
  in
  Serial.w_list w w_vm_entry persisted_entries;
  let fdw = Serial.writer () in
  Fd.serialize_table p.Process.fdtable
    ~vid_of_vnode:(fun v -> v.Aurora_vfs.Vnode.vid)
    fdw;
  Serial.w_string w (Serial.contents fdw);
  ignore k;
  Serial.contents w

let parse_proc data =
  let r = Serial.reader data in
  let pid = Serial.r_int r in
  let ppid = Serial.r_int r in
  let name = Serial.r_string r in
  let container = Serial.r_int r in
  let cwd = Serial.r_string r in
  let next_tid = Serial.r_int r in
  let threads = Serial.r_list r Thread.deserialize in
  let vm_entries = Serial.r_list r r_vm_entry in
  let fd_blob = Serial.r_string r in
  { pid; ppid; name; container; cwd; next_tid; threads; vm_entries; fd_blob }

(* --- vm objects ------------------------------------------------------ *)

let serialize_vmobj obj =
  let w = Serial.writer () in
  Serial.w_int w (Vmobject.oid obj);
  (match Vmobject.kind obj with
   | Vmobject.Anonymous -> Serial.w_u8 w 0
   | Vmobject.Vnode vid ->
     Serial.w_u8 w 1;
     Serial.w_int w vid);
  Serial.w_option w Serial.w_int
    (Option.map Vmobject.oid (Vmobject.shadow_of obj));
  Serial.w_list w Serial.w_int (Vmobject.hot_pages obj ~limit:hot_set_limit);
  Serial.contents w

let parse_vmobj data =
  let r = Serial.reader data in
  let vm_oid = Serial.r_int r in
  let kind =
    match Serial.r_u8 r with
    | 0 -> Vmobject.Anonymous
    | 1 -> Vmobject.Vnode (Serial.r_int r)
    | v -> raise (Serial.Corrupt (Printf.sprintf "vmobj: bad kind tag %d" v))
  in
  let shadow_oid = Serial.r_option r Serial.r_int in
  let hot_pages = Serial.r_list r Serial.r_int in
  { vm_oid; kind; shadow_oid; hot_pages }

(* --- the barrier-side walk ------------------------------------------ *)

(* Kernel objects reachable from the group: everything referenced from
   member descriptor tables (following stream peers), plus the named
   IPC objects — shared memory segments, System V queues and
   semaphores are machine-wide names, so they travel with every
   checkpoint. *)
let reachable_kobjs (k : Kernel.t) procs =
  let reg = k.Kernel.registry in
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let rec add_oid oid =
    if not (Hashtbl.mem seen oid) then begin
      Hashtbl.replace seen oid ();
      match Registry.find reg oid with
      | None -> ()
      | Some kobj ->
        out := kobj :: !out;
        (* Follow stream peers so connected endpoints restore as a
           pair (in-flight data included). *)
        (match kobj with
         | Registry.Kusock s | Registry.Ktcp s -> (
           match Unixsock.state s with
           | Unixsock.Connected { peer } -> add_oid peer
           | Unixsock.Listening { pending; _ } -> List.iter add_oid pending
           | Unixsock.Fresh | Unixsock.Closed -> ())
         | Registry.Kpipe _ | Registry.Kshm _ | Registry.Kmsgq _
         | Registry.Ksem _ | Registry.Kkq _ -> ())
    end
  in
  List.iter
    (fun (p : Process.t) ->
      List.iter
        (fun (_, ofd) ->
          match ofd.Fd.kind with
          | Fd.Obj oid -> add_oid oid
          | Fd.Vnode_file _ -> ())
        (Fd.descriptors p.Process.fdtable))
    procs;
  Registry.fold reg ~init:() ~f:(fun () kobj ->
      match kobj with
      | Registry.Kmsgq _ | Registry.Ksem _ | Registry.Kshm _ ->
        add_oid (Registry.kobj_oid kobj)
      | Registry.Kpipe _ | Registry.Kusock _ | Registry.Ktcp _ | Registry.Kkq _ -> ());
  List.rev !out

let snapshot_metadata (k : Kernel.t) (g : Types.pgroup) =
  let clock = k.Kernel.clock in
  let started = Clock.now clock in
  let procs =
    Kernel.processes k
    |> List.filter (fun p -> Types.member k g p && not (Process.is_zombie p))
  in
  (* Collect the distinct VM objects (whole shadow chains) mapped by
     the group, with persisted entries only. *)
  let vm_seen = Hashtbl.create 64 in
  let vm_objects = ref [] in
  let rec add_chain obj =
    let oid = Vmobject.oid obj in
    if not (Hashtbl.mem vm_seen oid) then begin
      Hashtbl.replace vm_seen oid ();
      vm_objects := (obj, Oidspace.vmobj oid) :: !vm_objects;
      Option.iter add_chain (Vmobject.shadow_of obj)
    end
  in
  List.iter
    (fun (p : Process.t) ->
      List.iter
        (fun e -> if e.Vmmap.persisted then add_chain e.Vmmap.obj)
        (Vmmap.entries p.Process.vm))
    procs;
  (* Kernel objects (computed before emission: shared-memory backing
     objects must join the captured set even when nothing maps them). *)
  let kobjs = reachable_kobjs k procs in
  List.iter
    (fun kobj ->
      match kobj with
      | Registry.Kshm s -> add_chain (Shm.vmobject s)
      | Registry.Kpipe _ | Registry.Kusock _ | Registry.Ktcp _ | Registry.Kmsgq _
      | Registry.Ksem _ | Registry.Kkq _ -> ())
    kobjs;
  let vm_objects = List.rev !vm_objects in
  let items = ref [] in
  let emit oid record = items := (oid, record) :: !items in
  (* Processes: base + threads + vm entries + descriptors. *)
  List.iter
    (fun (p : Process.t) ->
      Kernel.charge k Costmodel.serialize_proc_base;
      Kernel.charge k
        (Duration.scale Costmodel.serialize_thread (List.length p.Process.threads));
      Kernel.charge k
        (Duration.scale Costmodel.serialize_vm_entry
           (List.length (Vmmap.entries p.Process.vm)));
      Kernel.charge k
        (Duration.scale Costmodel.serialize_object
           (List.length (Fd.descriptors p.Process.fdtable)));
      emit (Oidspace.proc p.Process.pid) (serialize_proc k p))
    procs;
  (* VM object metadata (page contents travel separately). *)
  List.iter
    (fun (obj, store_oid) ->
      Kernel.charge k Costmodel.serialize_vmobj;
      emit store_oid (serialize_vmobj obj))
    vm_objects;
  (* Kernel objects. *)
  List.iter
    (fun kobj ->
      Kernel.charge k Costmodel.serialize_object;
      let w = Serial.writer () in
      Registry.serialize_kobj kobj w;
      emit (Oidspace.kobj (Registry.kobj_oid kobj)) (Serial.contents w))
    kobjs;
  (* Manifest: group shape plus the name tables restore must rebuild. *)
  let serialized_kobj_oids = Hashtbl.create 32 in
  List.iter
    (fun kobj -> Hashtbl.replace serialized_kobj_oids (Registry.kobj_oid kobj) ())
    kobjs;
  let unix_ns =
    Hashtbl.fold
      (fun name oid acc ->
        if Hashtbl.mem serialized_kobj_oids oid then (name, oid) :: acc else acc)
      k.Kernel.unix_ns []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let nsw = Serial.writer () in
  Netstack.serialize k.Kernel.netstack nsw;
  let manifest =
    serialize_manifest
      {
        pids = List.map (fun p -> p.Process.pid) procs;
        target = g.Types.target;
        group_name = Printf.sprintf "pgroup-%d" g.Types.pgid;
        unix_ns;
        kobj_oids = List.map Registry.kobj_oid kobjs;
        next_pid = k.Kernel.next_pid;
        netstack = Serial.contents nsw;
      }
  in
  {
    manifest;
    items = List.rev !items;
    vm_objects;
    metadata_cost = Duration.sub (Clock.now clock) started;
  }
