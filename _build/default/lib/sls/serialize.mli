(** Application serialization: the metadata half of a checkpoint.

    [snapshot_metadata] runs inside the serialization barrier. It walks
    the persistence group — processes, threads, descriptor tables,
    address-space maps, reachable kernel objects, global IPC names —
    and copies everything into in-memory records, charging the
    simulated clock per item (this is Table 3's "metadata copy" row).
    Every shared object is serialized exactly once, keyed by its store
    oid.

    The module also owns the record formats' parsers, used by the
    restore engine and by `sls send`. *)

open Aurora_simtime
open Aurora_vm
open Aurora_proc

type records = {
  manifest : string;
  items : (int * string) list;
      (** (store oid, record), manifest excluded; deterministic order *)
  vm_objects : (Vmobject.t * int) list;
      (** live objects to capture pages from, with their store oids *)
  metadata_cost : Duration.t;  (** clock time charged while copying *)
}

val snapshot_metadata : Kernel.t -> Types.pgroup -> records

(* --- parsed record shapes ------------------------------------------ *)

type manifest_rec = {
  pids : int list;
  target : Types.target;
  group_name : string;
  unix_ns : (string * int) list;
  kobj_oids : int list;     (** registry oids of every serialized kernel object *)
  next_pid : int;
  netstack : string;        (** opaque [Netstack.serialize] payload *)
}

type vm_entry_rec = {
  start_vpn : int;
  npages : int;
  obj_oid : int;            (** the checkpointed [Vmobject.oid] *)
  obj_offset : int;
  writable : bool;
  inheritance : [ `Share | `Copy ];
  needs_copy : bool;
  persisted : bool;
  policy : Vmmap.restore_policy;
}

type proc_rec = {
  pid : int;
  ppid : int;
  name : string;
  container : int;
  cwd : string;
  next_tid : int;
  threads : Thread.t list;
  vm_entries : vm_entry_rec list;
  fd_blob : string;         (** nested [Fd.serialize_table] payload *)
}

type vmobj_rec = {
  vm_oid : int;
  kind : Vmobject.kind;
  shadow_oid : int option;
  hot_pages : int list;     (** for Lazy_prefetch restore *)
}

val parse_manifest : string -> manifest_rec
val parse_proc : string -> proc_rec
val parse_vmobj : string -> vmobj_rec

val serialize_manifest : manifest_rec -> string
(** Exposed for `sls send` re-targeting. *)
