open Aurora_posix
open Aurora_objstore

let primary_exn (g : Types.pgroup) =
  match Types.primary_store g with
  | Some s -> s
  | None -> invalid_arg "sls log: persistence group has no local backend"

let log_count store gen ~oid =
  match Store.read_record store gen ~oid with
  | None -> 0
  | Some data -> Serial.r_int (Serial.reader data)

let cached_count (g : Types.pgroup) store ~oid =
  match List.assoc_opt oid g.Types.log_counts with
  | Some n -> n
  | None -> (
    match Store.latest store with Some gen -> log_count store gen ~oid | None -> 0)

let set_cached_count (g : Types.pgroup) ~oid n =
  g.Types.log_counts <- (oid, n) :: List.remove_assoc oid g.Types.log_counts

let flush ?oid (g : Types.pgroup) data =
  let store = primary_exn g in
  let oid = Option.value ~default:(Oidspace.ntlog g.Types.pgid) oid in
  (* The log length is cached on the group; the store read happens
     only on the first flush after a boot/restore. *)
  let count = cached_count g store ~oid in
  set_cached_count g ~oid (count + 1);
  if String.length data > Aurora_device.Blockdev.block_size then
    invalid_arg "sls_ntflush: record exceeds one block";
  ignore (Store.begin_generation store ());
  Store.put_blob store ~oid ~index:count data;
  let w = Serial.writer () in
  Serial.w_int w (count + 1);
  Store.put_record store ~oid (Serial.contents w);
  let gen, durable_at = Store.commit store () in
  g.Types.last_gen <- Some gen;
  durable_at

let read ?oid (g : Types.pgroup) =
  let store = primary_exn g in
  let oid = Option.value ~default:(Oidspace.ntlog g.Types.pgid) oid in
  match Store.latest store with
  | None -> []
  | Some gen ->
    let count = log_count store gen ~oid in
    List.init count (fun i ->
        match Store.read_blob store gen ~oid ~index:i with
        | Some data -> data
        | None -> invalid_arg (Printf.sprintf "sls log: missing entry %d" i))

let truncate ?oid (g : Types.pgroup) =
  let store = primary_exn g in
  let oid = Option.value ~default:(Oidspace.ntlog g.Types.pgid) oid in
  set_cached_count g ~oid 0;
  ignore (Store.begin_generation store ());
  let w = Serial.writer () in
  Serial.w_int w 0;
  Store.put_record store ~oid (Serial.contents w);
  let gen, _ = Store.commit store () in
  g.Types.last_gen <- Some gen

let barrier (g : Types.pgroup) =
  match g.Types.last_breakdown with
  | None -> ()
  | Some b -> Store.wait_durable (primary_exn g) b.Types.durable_at

let wait (g : Types.pgroup) at = Store.wait_durable (primary_exn g) at
