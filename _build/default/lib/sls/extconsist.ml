open Aurora_simtime
open Aurora_posix
open Aurora_proc

type item = {
  peer_oid : int;  (* delivery target: the receiving endpoint *)
  data : string;
  sent_at : Duration.t;
  pgid : int;
  mutable release_at : Duration.t option; (* None until a checkpoint covers it *)
}

type t = {
  kernel : Kernel.t;
  groups : unit -> Types.pgroup list;
  mutable items : item list; (* oldest first *)
  mutable buffered_total : int;
}

(* The process owning a descriptor over this object, if any. *)
let endpoint_owner' (k : Kernel.t) oid =
  List.find_opt
    (fun (p : Process.t) ->
      (not (Process.is_zombie p))
      && List.exists
           (fun (_, ofd) ->
             match ofd.Fd.kind with Fd.Obj o -> o = oid | Fd.Vnode_file _ -> false)
           (Fd.descriptors p.Process.fdtable))
    (Kernel.processes k)

let group_of t (p : Process.t) =
  List.find_opt (fun g -> Types.member t.kernel g p) (t.groups ())

(* Buffer when the sender is persisted and the peer is outside the
   sender's group (including peers owned by nobody — e.g. remote
   hosts). *)
let should_buffer t (src : Unixsock.t) =
  match endpoint_owner' t.kernel (Unixsock.oid src) with
  | None -> None
  | Some sender -> (
    match group_of t sender with
    | None -> None
    | Some g -> (
      match Unixsock.state src with
      | Unixsock.Connected { peer } -> (
        match endpoint_owner' t.kernel peer with
        | Some receiver when Types.member t.kernel g receiver -> None
        | Some _ | None -> Some g)
      | _ -> None))

let hook t ~src ~ofd ~data =
  ignore ofd;
  match should_buffer t src with
  | None -> `Deliver
  | Some g -> (
    match Unixsock.state src with
    | Unixsock.Connected { peer } ->
      t.items <-
        t.items
        @ [
            { peer_oid = peer; data; sent_at = Clock.now t.kernel.Kernel.clock;
              pgid = g.Types.pgid; release_at = None };
          ];
      t.buffered_total <- t.buffered_total + 1;
      `Buffered (String.length data)
    | _ -> `Deliver)

let handle t ~src ~ofd ~data = hook t ~src ~ofd ~data

let install kernel ~groups =
  let t = { kernel; groups; items = []; buffered_total = 0 } in
  kernel.Kernel.send_hook <- Some (fun ~src ~ofd ~data -> hook t ~src ~ofd ~data);
  t

let uninstall t = t.kernel.Kernel.send_hook <- None

let on_checkpoint t (g : Types.pgroup) ~barrier ~durable_at =
  List.iter
    (fun item ->
      if
        item.pgid = g.Types.pgid && item.release_at = None
        && Duration.(item.sent_at <= barrier)
      then item.release_at <- Some durable_at)
    t.items

let release_due t =
  let now = Clock.now t.kernel.Kernel.clock in
  let due, rest =
    List.partition
      (fun item ->
        match item.release_at with
        | Some at -> Duration.(at <= now)
        | None -> false)
      t.items
  in
  t.items <- rest;
  let delivered = ref 0 in
  List.iter
    (fun item ->
      (* The data was already accepted by the kernel at send time, so
         delivery goes straight into the peer's inbox — even if the
         sending descriptor has since closed. A vanished peer means
         nobody can ever observe the bytes: dropped. *)
      match Kernel.lookup_stream t.kernel item.peer_oid with
      | None -> ()
      | Some peer ->
        if Unixsock.deliver peer item.data < String.length item.data then
          (* Inbox full: requeue the tail on the next tick. *)
          t.items <- t.items @ [ item ]
        else incr delivered)
    due;
  !delivered

let endpoint_owner = endpoint_owner'

let pending t = List.length t.items
let pending_bytes t = List.fold_left (fun acc i -> acc + String.length i.data) 0 t.items
let buffered_total t = t.buffered_total
