open Aurora_vm
open Aurora_posix
open Aurora_proc
open Aurora_objstore

let sls_checkpoint machine g ?name () =
  (Machine.checkpoint_now machine g ?name ()).Types.gen

let sls_restore machine g ?gen ?policy () =
  fst (Machine.restore_group machine g ?gen ?policy ())

let sls_rollback machine g =
  match g.Types.last_gen with
  | None -> invalid_arg "sls_rollback: group was never checkpointed"
  | Some gen ->
    let pids = fst (Machine.restore_group machine g ~gen ()) in
    (* Notify the application: register 15 of every restored thread is
       set, so speculative code paths can take the conservative
       route. *)
    List.iter
      (fun pid ->
        match Kernel.proc machine.Machine.kernel pid with
        | Some p ->
          List.iter
            (fun th -> Context.set_reg th.Thread.context 15 1L)
            p.Process.threads
        | None -> ())
      pids;
    pids

let sls_barrier _machine g = Ntlog.barrier g

let sls_ntflush machine g data =
  ignore machine;
  Ntlog.flush g data

let sls_barrier_until machine at =
  Store.wait_durable machine.Machine.disk_store at

let sls_log_read machine g =
  ignore machine;
  Ntlog.read g

let sls_log_truncate machine g =
  ignore machine;
  Ntlog.truncate g

let sls_mctl machine p entry ~persist ?policy () =
  ignore machine;
  if not (List.memq entry (Vmmap.entries p.Process.vm)) then
    invalid_arg "sls_mctl: entry does not belong to this process";
  entry.Vmmap.persisted <- persist;
  Option.iter (fun pol -> entry.Vmmap.restore_policy <- pol) policy

let sls_fdctl (p : Process.t) ~fd ~ext_consistency =
  match Fd.get p.Process.fdtable fd with
  | Some ofd -> ofd.Fd.flags.Fd.ext_consistency <- ext_consistency
  | None -> invalid_arg (Printf.sprintf "sls_fdctl: bad descriptor %d" fd)
