lib/sls/sendrecv.ml: Aurora_device Aurora_objstore Aurora_posix Hashtbl List Netlink Oidspace Option Printf Serial Serialize Store String
