lib/sls/types.mli: Aurora_device Aurora_objstore Aurora_proc Aurora_simtime Duration Format Kernel Netlink Process Stats Store
