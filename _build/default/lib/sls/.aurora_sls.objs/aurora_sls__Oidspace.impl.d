lib/sls/oidspace.ml: Aurora_slsfs
