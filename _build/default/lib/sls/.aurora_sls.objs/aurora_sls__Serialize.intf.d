lib/sls/serialize.mli: Aurora_proc Aurora_simtime Aurora_vm Duration Kernel Thread Types Vmmap Vmobject
