lib/sls/criu_baseline.ml: Aurora_device Aurora_objstore Aurora_proc Aurora_simtime Aurora_slsfs Aurora_vm Clock Content Costmodel Duration Kernel List Oidspace Serialize Stats Store Types Vmobject
