lib/sls/types.ml: Aurora_device Aurora_objstore Aurora_proc Aurora_simtime Duration Format Kernel List Netlink Process Stats Store
