lib/sls/api.mli: Aurora_objstore Aurora_proc Aurora_simtime Aurora_vm Duration Machine Process Store Types Vmmap
