lib/sls/extconsist.ml: Aurora_posix Aurora_proc Aurora_simtime Clock Duration Fd Kernel List Process String Types Unixsock
