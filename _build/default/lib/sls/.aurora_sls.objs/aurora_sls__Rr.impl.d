lib/sls/rr.ml: Aurora_posix Aurora_proc Kernel List Ntlog Oidspace Serial Types Unixsock
