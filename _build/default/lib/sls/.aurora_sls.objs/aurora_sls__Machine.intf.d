lib/sls/machine.mli: Aurora_device Aurora_objstore Aurora_proc Aurora_simtime Aurora_vm Blockdev Clock Duration Extconsist Kernel Profile Store Types
