lib/sls/sendrecv.mli: Aurora_device Aurora_objstore Aurora_simtime Duration Netlink Store
