lib/sls/ntlog.ml: Aurora_device Aurora_objstore Aurora_posix List Oidspace Option Printf Serial Store String Types
