lib/sls/criu_baseline.mli: Aurora_proc Kernel Types
