lib/sls/rr.mli: Aurora_proc Types
