lib/sls/extconsist.mli: Aurora_posix Aurora_proc Aurora_simtime Duration Kernel Process Types
