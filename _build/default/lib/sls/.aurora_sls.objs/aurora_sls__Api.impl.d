lib/sls/api.ml: Aurora_objstore Aurora_posix Aurora_proc Aurora_vm Context Fd Kernel List Machine Ntlog Option Printf Process Store Thread Types Vmmap
