lib/sls/oidspace.mli:
