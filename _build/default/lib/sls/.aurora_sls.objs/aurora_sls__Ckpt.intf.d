lib/sls/ckpt.mli: Aurora_proc Kernel Types
