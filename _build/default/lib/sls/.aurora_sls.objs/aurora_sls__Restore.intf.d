lib/sls/restore.mli: Aurora_objstore Aurora_proc Kernel Store Types
