lib/sls/ntlog.mli: Aurora_simtime Duration Types
