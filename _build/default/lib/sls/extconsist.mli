(** External consistency (§3.2, after Nightingale et al.'s "Rethink
    the Sync").

    Output from a persisted application that crosses the persistence
    group boundary must not be observed by the outside world until the
    checkpoint covering it is durable — otherwise a crash could roll
    the application back past state a remote peer already acted on.
    This module interposes on stream transmission (via
    [Kernel.send_hook]): data sent on a descriptor with the
    [ext_consistency] flag to a peer outside the sender's group is
    buffered; each checkpoint stamps the buffered items it covers with
    its durability instant; the orchestrator's tick releases them once
    the clock passes it.

    `sls_fdctl` clears the per-descriptor flag for peers that can
    tolerate observing unpersisted state, trading consistency for
    latency (the F-extcons bench quantifies the trade). *)

open Aurora_simtime
open Aurora_proc

type t

val install : Kernel.t -> groups:(unit -> Types.pgroup list) -> t
(** Registers the send hook. [groups] provides the live group list
    (the machine owns it). *)

val handle :
  t -> src:Aurora_posix.Unixsock.t -> ofd:Aurora_posix.Fd.ofd -> data:string ->
  [ `Deliver | `Buffered of int ]
(** The hook body, exposed so the machine can compose it with other
    interposition (input recording). *)

val endpoint_owner : Kernel.t -> int -> Process.t option
(** The process holding a descriptor over the endpoint, if any. *)

val on_checkpoint : t -> Types.pgroup -> barrier:Duration.t -> durable_at:Duration.t -> unit
(** Stamp buffered items sent by this group at or before [barrier]:
    they become releasable at [durable_at]. *)

val release_due : t -> int
(** Deliver every releasable buffered item whose release time has
    passed; returns how many were delivered. *)

val pending : t -> int
val pending_bytes : t -> int
val buffered_total : t -> int
(** Items ever buffered (for the bench's accounting). *)

val uninstall : t -> unit
