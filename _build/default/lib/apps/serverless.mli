(** Serverless function runtimes (§4's first application).

    A function instance is a container with one process: on start it
    initializes a language runtime (touching [runtime_pages] of memory
    with content that is {e identical across all functions} — this is
    what the object store deduplicates: "each function is a small
    delta over the runtime container's checkpoint") and then loads
    function-specific state ([func_pages], keyed by [func_id]).
    Initialized, it parks waiting for invocations on a stream;
    each invocation touches a request working set and replies.

    Warm start = checkpoint an initialized instance once, then restore
    (clone) it per invocation — Table 4's serverless columns and the
    F-dedup density figure both drive this module. *)

open Aurora_proc

type config = {
  runtime_pages : int;   (** shared language runtime image *)
  func_pages : int;      (** function-specific state *)
  func_id : int;
  touch_per_invoke : int;  (** request working set, in pages *)
}

val default_config : ?func_id:int -> unit -> config
(** 192 runtime pages + 8 function pages — a hello-world footprint
    (~800 KiB). *)

type instance = {
  func : Process.t;
  invoker : Process.t;   (** parked holder of the client end *)
  fd : int;              (** invoker's descriptor for requests *)
}

val spawn : Kernel.t -> ?container:int -> config -> instance
val initialized : Process.t -> bool
val invocations : Process.t -> int

val invoke : Kernel.t -> instance -> id:int -> unit
(** Queue one invocation (drive the scheduler to let it execute). *)

val reply : Kernel.t -> instance -> string option
(** Collect a finished invocation's reply, if one arrived. *)

val wire_restored : Kernel.t -> func_pid:int -> instance option
(** After restoring/cloning a checkpointed instance: find the restored
    function process and build a fresh invoker wired to a {e new}
    socketpair (the checkpointed peer belonged to the old instance).
    Returns [None] if the pid does not exist. *)
