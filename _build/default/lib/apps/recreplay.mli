(** Record/replay integration (§4, "Debugging and Speculation").

    Aurora bounds a record/replay system's log to the records since
    the last checkpoint: the recorder journals every nondeterministic
    input through the SLS persistent log; each checkpoint truncates
    it. "On a failure, the application is rolled back to this
    checkpoint and replays the remaining log" — so a developer
    witnesses the final moments before a crash from a log only one
    checkpoint-interval long.

    The deterministic simulator makes replay exact: rolling back and
    re-delivering the recorded inputs reproduces the pre-failure state
    bit-for-bit (asserted by the tests).

    This module is the {e application-driven} integration (the app
    journals its own inputs). For transparent kernel-side journaling
    of all boundary traffic, see [Aurora_sls.Rr] and
    [Machine.enable_recording]. *)

open Aurora_sls

type t

val create : Machine.t -> Types.pgroup -> t

val record_input : t -> string -> unit
(** Journal one nondeterministic input durably (before delivering it
    to the application). *)

val on_checkpoint : t -> unit
(** Called after a checkpoint: drops the now-covered prefix ("only
    keeping the records since the last checkpoint"). *)

val log_length : t -> int

val rollback_and_replay : t -> deliver:(string -> unit) -> int
(** Roll the group back to its last checkpoint and re-deliver every
    recorded input through [deliver]; returns how many were
    replayed. *)
