(** A log-structured merge tree (the RocksDB-shaped baseline).

    A memtable absorbs writes; when it exceeds its limit it is flushed
    to an immutable sorted-table file; tables are merged by
    compaction; a MANIFEST file (replaced by atomic rename) names the
    live tables. All IO goes through the simulated syscall layer of a
    host process, so device time and fsync costs are real.

    Durability is the experiment knob (§4):
    - [Wal_fsync]: every write appends to a write-ahead log and
      fsyncs — the classic arrangement whose "subtle semantic issues
      ... lead to data loss bugs in even mature projects";
    - [Aurora_log]: the port — the WAL is replaced by `sls_ntflush`
      (one call, no fsync semantics) and recovery replays the SLS
      log. Table files and compaction stay identical.

    The memtable lives in OCaml state (this library is the *baseline
    persistence machinery*; transparent whole-process checkpointing
    is exercised by {!Kvstore}, whose state lives in simulated
    memory). *)

open Aurora_proc

type persistence = Wal_fsync | Aurora_log

type t

val create :
  Kernel.t -> Process.t -> dir:string -> ?memtable_limit:int ->
  ?compaction_threshold:int -> persistence -> t
(** Fresh tree rooted at [dir] (created if missing). [memtable_limit]
    (default 64 entries) triggers flushes; when the live table count
    exceeds [compaction_threshold] (default 8; size-tiered, single
    level) a compaction runs automatically. *)

val recover : Kernel.t -> Process.t -> dir:string -> persistence -> t
(** Rebuild from MANIFEST + tables, then replay the WAL (or SLS log)
    tail into the memtable. *)

val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val delete : t -> key:string -> unit

val flush_memtable : t -> unit
(** Force the memtable into a new sorted table. *)

val compact : t -> unit
(** Merge every live table (newest wins, tombstones dropped) into
    one. *)

val entries : t -> (string * string) list
(** Full logical contents, sorted by key (the equality oracle for
    crash tests). *)

val sstable_count : t -> int
val memtable_size : t -> int
val dir : t -> string
