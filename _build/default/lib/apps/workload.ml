type kind = Get | Set | Incr | Del

type spec = {
  nkeys : int;
  write_pct : int;
  hot_key_pct : int;
  hot_access_pct : int;
}

let check spec =
  if spec.nkeys <= 0 then invalid_arg "Workload: nkeys <= 0";
  let pct name v = if v < 0 || v > 100 then invalid_arg ("Workload: bad " ^ name) in
  pct "write_pct" spec.write_pct;
  pct "hot_key_pct" spec.hot_key_pct;
  pct "hot_access_pct" spec.hot_access_pct;
  spec

let uniform_5050 ~nkeys =
  check { nkeys; write_pct = 50; hot_key_pct = 100; hot_access_pct = 100 }

let read_heavy ~nkeys =
  check { nkeys; write_pct = 10; hot_key_pct = 20; hot_access_pct = 80 }

let write_heavy ~nkeys =
  check { nkeys; write_pct = 90; hot_key_pct = 100; hot_access_pct = 100 }

(* SplitMix64 finalizer — one hash per decision keeps op_of pure. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_to_int h bound =
  Int64.to_int (Int64.shift_right_logical h 2) mod bound

let op_of spec ~opnum =
  let h1 = mix (Int64.of_int ((opnum * 4) + 1)) in
  let h2 = mix (Int64.of_int ((opnum * 4) + 2)) in
  let h3 = mix (Int64.of_int ((opnum * 4) + 3)) in
  let h4 = mix (Int64.of_int ((opnum * 4) + 4)) in
  let kind =
    if hash_to_int h1 100 >= spec.write_pct then Get
    else
      (* Redis-style mutation mix. *)
      match hash_to_int h4 10 with
      | 0 -> Del
      | 1 | 2 -> Incr
      | _ -> Set
  in
  let hot_keys = max 1 (spec.nkeys * spec.hot_key_pct / 100) in
  let key =
    if hash_to_int h2 100 < spec.hot_access_pct then hash_to_int h3 hot_keys
    else hash_to_int h3 spec.nkeys
  in
  (kind, key, h3)

let is_write = function Get -> false | Set | Incr | Del -> true

let keys_per_page = 512
let page_of_key key = key / keys_per_page
let offset_of_key key = key mod keys_per_page * 8
let pages_needed spec = (spec.nkeys + keys_per_page - 1) / keys_per_page
