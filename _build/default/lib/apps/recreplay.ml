open Aurora_sls

type t = { machine : Machine.t; group : Types.pgroup }

let create machine group = { machine; group }

let record_input t input =
  let durable = Api.sls_ntflush t.machine t.group input in
  Api.sls_barrier_until t.machine durable

let on_checkpoint t = Api.sls_log_truncate t.machine t.group
let log_length t = List.length (Api.sls_log_read t.machine t.group)

let rollback_and_replay t ~deliver =
  let entries = Api.sls_log_read t.machine t.group in
  ignore (Api.sls_rollback t.machine t.group);
  List.iter deliver entries;
  List.length entries
