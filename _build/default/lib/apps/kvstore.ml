open Aurora_vm
open Aurora_posix
open Aurora_proc

type mode = Ephemeral | Wal | Aurora

type config = {
  spec : Workload.spec;
  mode : mode;
  ops_limit : int;
  snapshot_every : int;
  fsync_every : int;
  ops_per_step : int;
  preload : bool;
}

let default_config ?(mode = Ephemeral) ~nkeys () =
  { spec = Workload.uniform_5050 ~nkeys; mode; ops_limit = 0; snapshot_every = 50_000;
    fsync_every = 1; ops_per_step = 32; preload = false }

let wal_path = "/kv/wal"
let snapshot_path = "/kv/dump"
let snapshot_tmp = "/kv/dump.tmp"

let npages c = Workload.pages_needed c.spec

(* Register allocation (see the .mli of Context for the model):
   r1 base vpn, r2 npages, r3 ops limit, r4 ops done, r5 mode,
   r6 wal/server fd, r7 nkeys, r8 write_pct, r9 hot params packed,
   r10 snapshot period, r11 ops since snapshot, r12 fsync period,
   r13 recover flag, r14 ops per step. r0 is the fork result. *)

let mode_tag = function Ephemeral -> 0 | Wal -> 1 | Aurora -> 2

let spec_of_ctx ctx =
  {
    Workload.nkeys = Context.reg_int ctx 7;
    write_pct = Context.reg_int ctx 8;
    hot_key_pct = Context.reg_int ctx 9 / 1000;
    hot_access_pct = Context.reg_int ctx 9 mod 1000;
  }

(* --- log records ------------------------------------------------------ *)

let wal_record ~opnum ~key ~value =
  let b = Bytes.create 24 in
  Bytes.set_int64_le b 0 (Int64.of_int opnum);
  Bytes.set_int64_le b 8 (Int64.of_int key);
  Bytes.set_int64_le b 16 value;
  Bytes.to_string b

let parse_wal_record s off =
  ( Int64.to_int (String.get_int64_le s off),
    Int64.to_int (String.get_int64_le s (off + 8)),
    String.get_int64_le s (off + 16) )

(* --- the data region -------------------------------------------------- *)

let apply_set k p ~base ~key ~value =
  Syscall.mem_write k p ~vpn:(base + Workload.page_of_key key)
    ~offset:(Workload.offset_of_key key) ~value

let apply_get k p ~base ~key =
  Syscall.mem_read k p ~vpn:(base + Workload.page_of_key key)
    ~offset:(Workload.offset_of_key key)

(* --- setup / recovery -------------------------------------------------- *)

let ensure_kv_dir k p =
  match Aurora_vfs.Memfs.lookup_opt k.Kernel.fs "/kv" with
  | Some _ -> ()
  | None -> Syscall.mkdir k p "/kv"

let load_snapshot k p ~base =
  match Aurora_vfs.Memfs.lookup_opt k.Kernel.fs snapshot_path with
  | None -> 0
  | Some _ ->
    let fd = Syscall.open_file k p snapshot_path in
    let header =
      match Syscall.read k p fd ~len:16 with
      | `Data s when String.length s = 16 -> s
      | _ -> raise (Syscall.Sys_error "kvstore: bad snapshot header")
    in
    let snap_pages = Int64.to_int (String.get_int64_le header 0) in
    let snap_ops = Int64.to_int (String.get_int64_le header 8) in
    for i = 0 to snap_pages - 1 do
      match Syscall.read k p fd ~len:4096 with
      | `Data s when String.length s = 4096 ->
        (* First 8 bytes carry the page's content identity. *)
        Syscall.mem_load_page k p ~vpn:(base + i)
          (Content.of_seed (String.get_int64_le s 0))
      | _ -> raise (Syscall.Sys_error "kvstore: truncated snapshot")
    done;
    Syscall.close k p fd;
    snap_ops

let replay_wal k p ~base ~from_op =
  match Aurora_vfs.Memfs.lookup_opt k.Kernel.fs wal_path with
  | None -> from_op
  | Some _ ->
    let fd = Syscall.open_file k p wal_path in
    let next = ref from_op in
    let rec drain () =
      match Syscall.read k p fd ~len:(24 * 256) with
      | `Data s ->
        let n = String.length s / 24 in
        for i = 0 to n - 1 do
          let opnum, key, value = parse_wal_record s (i * 24) in
          if opnum >= !next then begin
            apply_set k p ~base ~key ~value;
            next := opnum + 1
          end
        done;
        drain ()
      | `Eof | `Would_block -> ()
    in
    drain ();
    Syscall.close k p fd;
    !next

let replay_sls_log k p ~base ~from_op =
  match Syscall.sls k p Kernel.Sls_log_read with
  | Kernel.Sls_log entries ->
    List.fold_left
      (fun next entry ->
        let opnum, key, value = parse_wal_record entry 0 in
        if opnum >= next then begin
          apply_set k p ~base ~key ~value;
          opnum + 1
        end
        else next)
      from_op entries
  | Kernel.Sls_time _ -> from_op

(* --- the program ------------------------------------------------------- *)

let dump_snapshot k p ctx =
  (* The forked child: write the (COW-frozen) region to a temp file,
     fsync, atomically rename. The header records the op count so log
     replay knows where to resume. *)
  let base = Context.reg_int ctx 1 and pages = Context.reg_int ctx 2 in
  let fd = Syscall.open_file k p ~create:true snapshot_tmp in
  let header = Bytes.create 16 in
  Bytes.set_int64_le header 0 (Int64.of_int pages);
  Bytes.set_int64_le header 8 (Context.reg ctx 4);
  ignore (Syscall.write k p fd (Bytes.to_string header));
  for i = 0 to pages - 1 do
    let content = Syscall.mem_page k p ~vpn:(base + i) in
    (* Page dump format: the 8-byte content identity followed by
       padding to the page size (the full 4 KiB hits the device, which
       is what the fsync cost model needs to see). *)
    let page_bytes = Bytes.make 4096 '\000' in
    Bytes.set_int64_le page_bytes 0 (Content.to_seed content);
    ignore (Syscall.write k p fd (Bytes.to_string page_bytes))
  done;
  Syscall.fsync k p fd;
  Syscall.close k p fd;
  Syscall.rename k p ~src:snapshot_tmp ~dst:snapshot_path

let do_one_op k p ctx ~opnum =
  let base = Context.reg_int ctx 1 in
  let spec = spec_of_ctx ctx in
  let kind, key, value = Workload.op_of spec ~opnum in
  match kind with
  | Workload.Get -> ignore (apply_get k p ~base ~key)
  | Workload.Set | Workload.Incr | Workload.Del ->
    (* The mutation's concrete stored value; the log records it, so
       replay never recomputes (INCR is read-modify-write). *)
    let value =
      match kind with
      | Workload.Set -> value
      | Workload.Incr -> Int64.add (apply_get k p ~base ~key) 1L
      | Workload.Del -> 0L
      | Workload.Get -> assert false
    in
    apply_set k p ~base ~key ~value;
    (match Context.reg_int ctx 5 with
     | 1 ->
       (* AOF append; fsync per policy. *)
       ignore
         (Syscall.write k p (Context.reg_int ctx 6) (wal_record ~opnum ~key ~value));
       let period = max 1 (Context.reg_int ctx 12) in
       if opnum mod period = 0 then Syscall.fsync k p (Context.reg_int ctx 6)
     | 2 -> ignore (Syscall.sls k p (Kernel.Sls_ntflush (wal_record ~opnum ~key ~value)))
     | _ -> ())

let step_serve k p th =
  let ctx = th.Thread.context in
  let limit = Context.reg_int ctx 3 in
  let batch = max 1 (Context.reg_int ctx 14) in
  let start = Context.reg_int ctx 4 in
  if limit > 0 && start >= limit then Program.Exit_program 0
  else begin
    let n = if limit > 0 then min batch (limit - start) else batch in
    for i = 0 to n - 1 do
      do_one_op k p ctx ~opnum:(start + i)
    done;
    Context.set_reg_int ctx 4 (start + n);
    Context.set_reg_int ctx 11 (Context.reg_int ctx 11 + n);
    (* Reap any finished snapshot child. The log is deliberately NOT
       truncated here: operations logged between the fork and the reap
       are only in the log, so recovery filters replay by the
       snapshot's recorded operation count instead (compaction of the
       covered prefix is elided). *)
    (match Syscall.waitpid k p (-1) with
     | `Reaped _ | `Would_block -> ());
    (* Fork-snapshot when due. *)
    let period = Context.reg_int ctx 10 in
    if Context.reg_int ctx 5 = 1 && period > 0 && Context.reg_int ctx 11 >= period
    then begin
      Context.set_reg_int ctx 11 0;
      ctx.Context.pc <- 3;
      ignore (Syscall.fork k p th)
    end;
    Program.Continue
  end

let () =
  Program.register ~name:"aurora/kvstore" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 ->
        (* Setup: data region, files, optional recovery. *)
        ensure_kv_dir k p;
        let pages = Context.reg_int ctx 2 in
        let e = Syscall.mmap_anon k p ~npages:pages in
        Context.set_reg_int ctx 1 e.Vmmap.start_vpn;
        let base = e.Vmmap.start_vpn in
        (match (Context.reg_int ctx 5, Context.reg_int ctx 13) with
         | 1, 1 ->
           let snap_ops = load_snapshot k p ~base in
           let next = replay_wal k p ~base ~from_op:snap_ops in
           Context.set_reg_int ctx 4 next
         | _, 3 ->
           (* Preload: make the whole region resident (the benchmark's
              warmed working set). *)
           for i = 0 to pages - 1 do
             Syscall.mem_write k p ~vpn:(base + i) ~offset:0
               ~value:(Int64.of_int (0xBEEF0000 + i))
           done
         | _ -> ());
        if Context.reg_int ctx 5 = 1 then
          Context.set_reg_int ctx 6
            (Syscall.open_file k p ~create:true ~append:true wal_path);
        ctx.Context.pc <- 1;
        Program.Continue
      | 1 -> step_serve k p th
      | 2 ->
        (* Snapshot child. *)
        dump_snapshot k p ctx;
        Program.Exit_program 0
      | 3 ->
        (* Fork return dispatch: the child dumps, the parent serves. *)
        if Context.reg ctx 0 = 0L then ctx.Context.pc <- 2 else ctx.Context.pc <- 1;
        Program.Continue
      | 4 ->
        (* Post-restore repair (Aurora mode): replay the ntflush log
           tail over the restored memory image. *)
        let base = Context.reg_int ctx 1 in
        let next = replay_sls_log k p ~base ~from_op:(Context.reg_int ctx 4) in
        Context.set_reg_int ctx 4 next;
        ctx.Context.pc <- 1;
        Program.Continue
      | _ -> Program.Exit_program 99)

(* The served variant: executes client-numbered operations arriving on
   a stream, replying with the value read/written. *)
let () =
  Program.register ~name:"aurora/kv-server" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 ->
        let pages = Context.reg_int ctx 2 in
        let e = Syscall.mmap_anon k p ~npages:pages in
        Context.set_reg_int ctx 1 e.Vmmap.start_vpn;
        ctx.Context.pc <- 1;
        Program.Continue
      | _ -> (
        let fd = Context.reg_int ctx 6 in
        match Syscall.read k p fd ~len:8 with
        | `Data s when String.length s = 8 ->
          let opnum = Int64.to_int (String.get_int64_le s 0) in
          let base = Context.reg_int ctx 1 in
          let spec = spec_of_ctx ctx in
          let kind, key, value = Workload.op_of spec ~opnum in
          let result =
            match kind with
            | Workload.Get -> apply_get k p ~base ~key
            | Workload.Set ->
              apply_set k p ~base ~key ~value;
              value
            | Workload.Incr ->
              let v = Int64.add (apply_get k p ~base ~key) 1L in
              apply_set k p ~base ~key ~value:v;
              v
            | Workload.Del ->
              apply_set k p ~base ~key ~value:0L;
              0L
          in
          let reply = Bytes.create 8 in
          Bytes.set_int64_le reply 0 result;
          (match Syscall.write k p fd (Bytes.to_string reply) with
           | `Written _ | `Would_block | `Broken -> ());
          Context.set_reg_int ctx 4 (Context.reg_int ctx 4 + 1);
          Program.Continue
        | `Data _ -> Program.Continue (* partial request: ignore *)
        | `Would_block -> (
          match Fd.get p.Process.fdtable fd with
          | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_read oid)
          | _ -> Program.Exit_program 1)
        | `Eof -> Program.Exit_program 0))

(* A parked holder for the client end of the server socket. *)
let () =
  Program.register ~name:"aurora/kv-client" (fun _ _ _ -> Program.Block Thread.Wait_forever)

(* --- module API -------------------------------------------------------- *)

let configure_ctx ctx c ~recover =
  Context.set_reg_int ctx 2 (npages c);
  Context.set_reg_int ctx 3 c.ops_limit;
  Context.set_reg_int ctx 5 (mode_tag c.mode);
  Context.set_reg_int ctx 7 c.spec.Workload.nkeys;
  Context.set_reg_int ctx 8 c.spec.Workload.write_pct;
  Context.set_reg_int ctx 9
    ((c.spec.Workload.hot_key_pct * 1000) + c.spec.Workload.hot_access_pct);
  Context.set_reg_int ctx 10 c.snapshot_every;
  Context.set_reg_int ctx 12 c.fsync_every;
  Context.set_reg_int ctx 13 (if recover then 1 else if c.preload then 3 else 0);
  Context.set_reg_int ctx 14 c.ops_per_step

let spawn k ?(container = 0) ?(recover = false) c =
  let p = Kernel.spawn k ~container ~name:"kvstore" ~program:"aurora/kvstore" () in
  configure_ctx (Process.main_thread p).Thread.context c ~recover;
  p

let spawn_server k ?container c ~fd p =
  ignore k;
  ignore container;
  let ctx = (Process.main_thread p).Thread.context in
  configure_ctx ctx c ~recover:false;
  Context.set_reg_int ctx 6 fd

let spawn_server_pair k ?(container = 0) c =
  let server = Kernel.spawn k ~container ~name:"kv-server" ~program:"aurora/kv-server" () in
  let client = Kernel.spawn k ~name:"kv-client" ~program:"aurora/kv-client" () in
  let sfd, cfd = Syscall.socketpair k server in
  let c_ofd = Option.get (Fd.get server.Process.fdtable cfd) in
  c_ofd.Fd.refcount <- c_ofd.Fd.refcount + 1;
  let client_fd = 4 in
  Fd.install_at client.Process.fdtable client_fd c_ofd;
  ignore (Fd.release server.Process.fdtable cfd);
  let ctx = (Process.main_thread server).Thread.context in
  configure_ctx ctx c ~recover:false;
  Context.set_reg_int ctx 6 sfd;
  (server, client, client_fd)

let client_request k p ~fd ~opnum =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int opnum);
  match Syscall.write k p fd (Bytes.to_string b) with
  | `Written _ -> ()
  | `Would_block | `Broken -> invalid_arg "Kvstore.client_request: send failed"

let client_reply k p ~fd =
  match Syscall.read k p fd ~len:8 with
  | `Data s -> Some s
  | `Would_block | `Eof -> None

let ops_done (p : Process.t) = Context.reg_int (Process.main_thread p).Thread.context 4
let base_vpn (p : Process.t) = Context.reg_int (Process.main_thread p).Thread.context 1

let page_content k p c ~page =
  ignore k;
  ignore c;
  Vmmap.read p.Process.vm ~vpn:(base_vpn p + page)

let region_digest k p c =
  ignore k;
  let base = base_vpn p in
  let acc = ref 0L in
  for i = 0 to npages c - 1 do
    let content = Vmmap.read p.Process.vm ~vpn:(base + i) in
    acc := Content.hash (Content.of_seed (Int64.add !acc (Content.hash content)))
  done;
  !acc

let repair_after_restore (p : Process.t) =
  (Process.main_thread p).Thread.context.Context.pc <- 4
