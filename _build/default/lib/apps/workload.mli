(** Workload shapes shared by the applications and benches.

    Simulated programs must derive each operation purely from their
    (serializable) cursor — a checkpointed program resumes mid-workload
    and must regenerate the same remaining stream. [op_of] is that
    pure function: operation number -> (kind, key, value).

    The skew model is the 80/20 hot-set approximation: a fraction of
    operations target the hot prefix of the key space. It reproduces
    the page-locality property that matters here (dirty-set size
    versus working-set size under incremental checkpointing) without
    needing non-serializable generator state. *)

type kind = Get | Set | Incr | Del

type spec = {
  nkeys : int;
  write_pct : int;       (** 0..100 *)
  hot_key_pct : int;     (** hot prefix size as %% of the key space *)
  hot_access_pct : int;  (** %% of accesses that hit the hot prefix *)
}

val uniform_5050 : nkeys:int -> spec
val read_heavy : nkeys:int -> spec
(** 90%% reads, 80/20 skew — a cache-like profile. *)

val write_heavy : nkeys:int -> spec
(** 90%% writes, uniform — the checkpoint-stressing profile used to
    dirty wide working sets. *)

val op_of : spec -> opnum:int -> kind * int * int64
(** Pure: the [opnum]-th operation (kind, key, payload value). The
    write share splits 70% SET / 20% INCR / 10% DEL, the Redis-style
    mutation mix. *)

val is_write : kind -> bool

val keys_per_page : int
(** 512 eight-byte slots per 4 KiB page. *)

val page_of_key : int -> int
val offset_of_key : int -> int
val pages_needed : spec -> int
