open Aurora_posix
open Aurora_proc

type persistence = Wal_fsync | Aurora_log

(* Memtable entries: [None] is a tombstone. *)
type t = {
  kernel : Kernel.t;
  proc : Process.t;
  dir : string;
  memtable_limit : int;
  compaction_threshold : int;
  persistence : persistence;
  mutable memtable : (string * string option) list; (* newest first *)
  mutable tables : int list;   (* live table numbers, newest first *)
  mutable next_table : int;
  mutable wal_fd : int;        (* Wal_fsync only *)
  mutable wal_seq : int;
}

let dir t = t.dir
let memtable_size t = List.length t.memtable
let sstable_count t = List.length t.tables

let manifest_path t = t.dir ^ "/MANIFEST"
let wal_path t = t.dir ^ "/wal"
let table_path t n = Printf.sprintf "%s/%06d.sst" t.dir n

(* --- file helpers ------------------------------------------------------ *)

let read_whole k p path =
  let fd = Syscall.open_file k p path in
  let buf = Buffer.create 256 in
  let rec drain () =
    match Syscall.read k p fd ~len:65536 with
    | `Data s ->
      Buffer.add_string buf s;
      drain ()
    | `Eof | `Would_block -> ()
  in
  drain ();
  Syscall.close k p fd;
  Buffer.contents buf

let write_whole k p path data ~fsync =
  let tmp = path ^ ".tmp" in
  let fd = Syscall.open_file k p ~create:true tmp in
  ignore (Syscall.write k p fd data);
  if fsync then Syscall.fsync k p fd;
  Syscall.close k p fd;
  Syscall.rename k p ~src:tmp ~dst:path

(* --- on-disk formats ---------------------------------------------------- *)

let encode_entries entries =
  let w = Serial.writer () in
  Serial.w_list w (fun w (key, value) ->
      Serial.w_string w key;
      Serial.w_option w Serial.w_string value)
    entries;
  Serial.contents w

let decode_entries data =
  Serial.r_list (Serial.reader data) (fun r ->
      let key = Serial.r_string r in
      let value = Serial.r_option r Serial.r_string in
      (key, value))

let encode_manifest tables next_table =
  let w = Serial.writer () in
  Serial.w_list w Serial.w_int tables;
  Serial.w_int w next_table;
  Serial.contents w

let decode_manifest data =
  let r = Serial.reader data in
  let tables = Serial.r_list r Serial.r_int in
  let next_table = Serial.r_int r in
  (tables, next_table)

let wal_entry ~seq ~key ~value =
  let w = Serial.writer () in
  Serial.w_int w seq;
  Serial.w_string w key;
  Serial.w_option w Serial.w_string value;
  Serial.contents w

let decode_wal data =
  let r = Serial.reader data in
  let out = ref [] in
  (try
     while not (Serial.at_end r) do
       let seq = Serial.r_int r in
       let key = Serial.r_string r in
       let value = Serial.r_option r Serial.r_string in
       out := (seq, key, value) :: !out
     done
   with Serial.Corrupt _ -> () (* torn tail write: ignore, like real WALs *));
  List.rev !out

(* --- construction ------------------------------------------------------- *)

let ensure_dir k p path =
  match Aurora_vfs.Memfs.lookup_opt k.Kernel.fs path with
  | Some _ -> ()
  | None -> Syscall.mkdir k p path

let open_wal t =
  if t.persistence = Wal_fsync then
    t.wal_fd <- Syscall.open_file t.kernel t.proc ~create:true ~append:true (wal_path t)

let create k p ~dir ?(memtable_limit = 64) ?(compaction_threshold = 8) persistence =
  if memtable_limit <= 0 then invalid_arg "Lsmtree.create: memtable_limit <= 0";
  if compaction_threshold <= 1 then
    invalid_arg "Lsmtree.create: compaction_threshold <= 1";
  ensure_dir k p dir;
  let t =
    { kernel = k; proc = p; dir; memtable_limit; compaction_threshold; persistence;
      memtable = []; tables = []; next_table = 1; wal_fd = -1; wal_seq = 0 }
  in
  write_whole k p (manifest_path t) (encode_manifest [] 1) ~fsync:true;
  open_wal t;
  t

(* --- persistence -------------------------------------------------------- *)

let log_write t ~key ~value =
  let seq = t.wal_seq in
  t.wal_seq <- seq + 1;
  match t.persistence with
  | Wal_fsync ->
    ignore (Syscall.write t.kernel t.proc t.wal_fd (wal_entry ~seq ~key ~value));
    Syscall.fsync t.kernel t.proc t.wal_fd
  | Aurora_log ->
    ignore (Syscall.sls t.kernel t.proc (Kernel.Sls_ntflush (wal_entry ~seq ~key ~value)))

let reset_log t =
  match t.persistence with
  | Wal_fsync ->
    Syscall.close t.kernel t.proc t.wal_fd;
    (try Syscall.unlink t.kernel t.proc (wal_path t) with Syscall.Sys_error _ -> ());
    open_wal t
  | Aurora_log -> ignore (Syscall.sls t.kernel t.proc Kernel.Sls_log_truncate)

let publish_manifest t =
  write_whole t.kernel t.proc (manifest_path t)
    (encode_manifest t.tables t.next_table)
    ~fsync:true

(* --- core operations ----------------------------------------------------- *)

let memtable_upsert t ~key ~value =
  t.memtable <- (key, value) :: List.remove_assoc key t.memtable

let sorted_memtable t =
  List.sort (fun (a, _) (b, _) -> String.compare a b) t.memtable

let flush_memtable t =
  if t.memtable <> [] then begin
    let n = t.next_table in
    t.next_table <- n + 1;
    write_whole t.kernel t.proc (table_path t n)
      (encode_entries (sorted_memtable t))
      ~fsync:true;
    t.tables <- n :: t.tables;
    t.memtable <- [];
    (* Ordering: the table must be durable before the manifest names
       it, and the log resets only after the manifest is durable. *)
    publish_manifest t;
    reset_log t
  end

let table_entries t n = decode_entries (read_whole t.kernel t.proc (table_path t n))

let get t ~key =
  match List.assoc_opt key t.memtable with
  | Some v -> v
  | None ->
    let rec search = function
      | [] -> None
      | n :: older -> (
        match List.assoc_opt key (table_entries t n) with
        | Some v -> v
        | None -> search older)
    in
    search t.tables

(* Merge newest-first tables plus the memtable; newest wins; drop
   tombstones. *)
let merged_view t =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let absorb entries =
    List.iter
      (fun (key, value) ->
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          match value with
          | Some v -> out := (key, v) :: !out
          | None -> ()
        end)
      entries
  in
  absorb t.memtable;
  List.iter (fun n -> absorb (table_entries t n)) t.tables;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out

let entries t = merged_view t

let compact t =
  let merged = List.map (fun (k, v) -> (k, Some v)) (merged_view t) in
  let stale_tables = t.tables in
  let had_memtable = t.memtable <> [] in
  let n = t.next_table in
  t.next_table <- n + 1;
  write_whole t.kernel t.proc (table_path t n) (encode_entries merged) ~fsync:true;
  t.tables <- [ n ];
  t.memtable <- [];
  publish_manifest t;
  if had_memtable then reset_log t;
  List.iter
    (fun stale ->
      try Syscall.unlink t.kernel t.proc (table_path t stale)
      with Syscall.Sys_error _ -> ())
    stale_tables

(* Size-tiered, single-level policy: flush when the memtable fills,
   compact when too many tables accumulate. *)
let maybe_flush t =
  if List.length t.memtable >= t.memtable_limit then flush_memtable t;
  if List.length t.tables > t.compaction_threshold then compact t

let put t ~key ~value =
  log_write t ~key ~value:(Some value);
  memtable_upsert t ~key ~value:(Some value);
  maybe_flush t

let delete t ~key =
  log_write t ~key ~value:None;
  memtable_upsert t ~key ~value:None;
  maybe_flush t

(* --- recovery ------------------------------------------------------------ *)

let recover k p ~dir persistence =
  let t =
    { kernel = k; proc = p; dir; memtable_limit = 64; compaction_threshold = 8;
      persistence; memtable = []; tables = []; next_table = 1; wal_fd = -1;
      wal_seq = 0 }
  in
  let tables, next_table = decode_manifest (read_whole k p (manifest_path t)) in
  t.tables <- tables;
  t.next_table <- next_table;
  (* Replay the log tail (entries since the last flush). *)
  let log_entries =
    match persistence with
    | Wal_fsync ->
      if Aurora_vfs.Memfs.lookup_opt k.Kernel.fs (wal_path t) = None then []
      else decode_wal (read_whole k p (wal_path t))
    | Aurora_log -> (
      match Syscall.sls k p Kernel.Sls_log_read with
      | Kernel.Sls_log raw -> List.concat_map decode_wal raw
      | Kernel.Sls_time _ -> [])
  in
  List.iter
    (fun (seq, key, value) ->
      memtable_upsert t ~key ~value;
      if seq >= t.wal_seq then t.wal_seq <- seq + 1)
    log_entries;
  open_wal t;
  t
