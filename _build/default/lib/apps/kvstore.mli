(** A Redis-like in-memory key-value store.

    The store's entire state is a region of {e simulated} memory (512
    eight-byte slots per page) plus, depending on the persistence
    mode, files or SLS log records — never OCaml-side state, which is
    what makes it transparently checkpointable. Three persistence
    modes reproduce the §4 "Databases" comparison:

    - [`None]: purely ephemeral.
    - [`Wal]: what Redis actually does — an append-only file fsynced
      every [fsync_every] operations, plus periodic snapshots taken by
      {e forking} and having the copy-on-write child dump the data
      region to a file (RDB-style). Recovery loads the newest snapshot
      and replays the log tail.
    - [`Aurora]: the paper's port — `sls_ntflush` per write replaces
      the AOF, transparent/manual checkpoints replace fork snapshots,
      and recovery is an SLS restore plus a log-tail replay
      ({!repair_after_restore}). Less code and no fsync semantics to
      get wrong.

    A socket-serving variant ({!spawn_server}) executes operations
    requested by a client over a stream — the external-consistency
    bench measures client-observed latency against it. *)

open Aurora_vm
open Aurora_proc

type mode = Ephemeral | Wal | Aurora

type config = {
  spec : Workload.spec;
  mode : mode;
  ops_limit : int;          (** 0 = run until stopped *)
  snapshot_every : int;     (** [`Wal]: fork-snapshot period, in ops *)
  fsync_every : int;        (** [`Wal]: AOF fsync period, in ops *)
  ops_per_step : int;       (** batch per scheduler quantum *)
  preload : bool;           (** touch the whole region at startup, making
                                the full working set resident (the
                                Table 3 configuration) *)
}

val default_config : ?mode:mode -> nkeys:int -> unit -> config

val spawn : Kernel.t -> ?container:int -> ?recover:bool -> config -> Process.t
(** Start a store. With [recover] (mode [`Wal]), the program first
    loads its snapshot and replays its log from the file system. *)

val spawn_server : Kernel.t -> ?container:int -> config -> fd:int -> Process.t -> unit
(** Turn [fd] of an existing kv process into a served socket...
    (internal use by {!spawn_server_pair}). *)

val spawn_server_pair :
  Kernel.t -> ?container:int -> config -> Process.t * Process.t * int
(** (server, client-side holder process, client fd): a kv server wired
    to an external client process over a socketpair. The client
    process is parked; drive it with {!client_request} /
    {!client_reply}. *)

val client_request : Kernel.t -> Process.t -> fd:int -> opnum:int -> unit
val client_reply : Kernel.t -> Process.t -> fd:int -> string option
(** Non-blocking read of the server's reply. *)

(* --- inspection / recovery ------------------------------------------ *)

val ops_done : Process.t -> int
val base_vpn : Process.t -> int
val npages : config -> int
val region_digest : Kernel.t -> Process.t -> config -> int64
(** Order-sensitive hash of the whole data region (the recovery
    equality check). *)

val page_content : Kernel.t -> Process.t -> config -> page:int -> Content.t

val repair_after_restore : Process.t -> unit
(** Mode [`Aurora]: after an SLS restore, route the program through its
    log-replay repair step before it resumes serving. *)

val wal_path : string
val snapshot_path : string
