open Aurora_vm
open Aurora_posix
open Aurora_proc

type config = {
  runtime_pages : int;
  func_pages : int;
  func_id : int;
  touch_per_invoke : int;
}

let default_config ?(func_id = 0) () =
  { runtime_pages = 192; func_pages = 8; func_id; touch_per_invoke = 16 }

type instance = {
  func : Process.t;
  invoker : Process.t;
  fd : int;
}

(* Registers: r1 base vpn, r2 runtime pages, r3 func pages, r4 func id,
   r5 invocations handled, r6 request fd, r7 touch-per-invoke. *)
let () =
  Program.register ~name:"aurora/func-runtime" (fun k p th ->
      let ctx = th.Thread.context in
      match ctx.Context.pc with
      | 0 ->
        (* Runtime initialization. Cold starts are dominated by work
           the simulation does not model structurally — image pull,
           exec, dynamic linking, interpreter boot — so that is charged
           as a lump (30 ms, at the low end of measured serverless cold
           starts). The touched pages' content depends only on the page
           index, so every function's runtime pages are bit-identical
           (dedup fodder). *)
        Kernel.charge k (Aurora_simtime.Duration.milliseconds 30);
        let rp = Context.reg_int ctx 2 and fp = Context.reg_int ctx 3 in
        let e = Syscall.mmap_anon k p ~npages:(rp + fp) in
        Context.set_reg_int ctx 1 e.Vmmap.start_vpn;
        let base = e.Vmmap.start_vpn in
        for i = 0 to rp - 1 do
          Syscall.mem_write k p ~vpn:(base + i) ~offset:0
            ~value:(Int64.of_int (0x52_0000 + i))
        done;
        (* Function-specific state. *)
        let fid = Context.reg_int ctx 4 in
        for i = 0 to fp - 1 do
          Syscall.mem_write k p ~vpn:(base + rp + i) ~offset:0
            ~value:(Int64.of_int ((fid * 1_000_000) + i))
        done;
        ctx.Context.pc <- 1;
        Program.Continue
      | _ -> (
        let fd = Context.reg_int ctx 6 in
        match Syscall.read k p fd ~len:8 with
        | `Data s when String.length s = 8 ->
          let base = Context.reg_int ctx 1 in
          let rp = Context.reg_int ctx 2 in
          let touch = Context.reg_int ctx 7 in
          (* The request working set: mostly-stable runtime pages (the
             "almost identical between invocations" observation). *)
          for i = 0 to touch - 1 do
            ignore (Syscall.mem_read k p ~vpn:(base + (i mod rp)) ~offset:0)
          done;
          let count = Context.reg_int ctx 5 + 1 in
          Context.set_reg_int ctx 5 count;
          (match Syscall.write k p fd (Printf.sprintf "ok:%s" s) with
           | `Written _ | `Would_block | `Broken -> ());
          Program.Continue
        | `Data _ -> Program.Continue
        | `Would_block -> (
          match Fd.get p.Process.fdtable fd with
          | Some { Fd.kind = Fd.Obj oid; _ } -> Program.Block (Thread.Wait_read oid)
          | _ -> Program.Exit_program 1)
        | `Eof -> Program.Exit_program 0))

let () =
  Program.register ~name:"aurora/func-invoker" (fun _ _ _ ->
      Program.Block Thread.Wait_forever)

let wire k ~func ~invoker =
  let ffd, peer_fd = Syscall.socketpair k func in
  let peer_ofd = Option.get (Fd.get func.Process.fdtable peer_fd) in
  peer_ofd.Fd.refcount <- peer_ofd.Fd.refcount + 1;
  let fd = Fd.install invoker.Process.fdtable peer_ofd in
  ignore (Fd.release func.Process.fdtable peer_fd);
  Context.set_reg_int (Process.main_thread func).Thread.context 6 ffd;
  fd

let spawn k ?(container = 0) c =
  let func =
    Kernel.spawn k ~container ~name:(Printf.sprintf "func-%d" c.func_id)
      ~program:"aurora/func-runtime" ()
  in
  let invoker = Kernel.spawn k ~name:"invoker" ~program:"aurora/func-invoker" () in
  let ctx = (Process.main_thread func).Thread.context in
  Context.set_reg_int ctx 2 c.runtime_pages;
  Context.set_reg_int ctx 3 c.func_pages;
  Context.set_reg_int ctx 4 c.func_id;
  Context.set_reg_int ctx 7 c.touch_per_invoke;
  let fd = wire k ~func ~invoker in
  { func; invoker; fd }

let initialized (p : Process.t) =
  (Process.main_thread p).Thread.context.Context.pc >= 1

let invocations (p : Process.t) =
  Context.reg_int (Process.main_thread p).Thread.context 5

let invoke k inst ~id =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int id);
  match Syscall.write k inst.invoker inst.fd (Bytes.to_string b) with
  | `Written _ -> ()
  | `Would_block | `Broken -> invalid_arg "Serverless.invoke: request send failed"

let reply k inst =
  match Syscall.read k inst.invoker inst.fd ~len:64 with
  | `Data s -> Some s
  | `Would_block | `Eof -> None

let wire_restored k ~func_pid =
  match Kernel.proc k func_pid with
  | None -> None
  | Some func ->
    let invoker = Kernel.spawn k ~name:"invoker" ~program:"aurora/func-invoker" () in
    (* Drop the checkpointed request descriptor (its peer belonged to
       the previous instance) and wire a fresh pair. *)
    let ctx = (Process.main_thread func).Thread.context in
    let old_fd = Context.reg_int ctx 6 in
    (try Syscall.close k func old_fd with Syscall.Sys_error _ -> ());
    let fd = wire k ~func ~invoker in
    (* Re-park the runtime on the new descriptor. *)
    (match (Process.main_thread func).Thread.state with
     | Thread.Blocked _ -> (Process.main_thread func).Thread.state <- Thread.Runnable
     | _ -> ());
    Some { func; invoker; fd }
