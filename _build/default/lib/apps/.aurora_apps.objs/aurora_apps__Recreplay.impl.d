lib/apps/recreplay.ml: Api Aurora_sls List Machine Types
