lib/apps/kvstore.ml: Aurora_posix Aurora_proc Aurora_vfs Aurora_vm Bytes Content Context Fd Int64 Kernel List Option Process Program String Syscall Thread Vmmap Workload
