lib/apps/serverless.ml: Aurora_posix Aurora_proc Aurora_simtime Aurora_vm Bytes Context Fd Int64 Kernel Option Printf Process Program String Syscall Thread Vmmap
