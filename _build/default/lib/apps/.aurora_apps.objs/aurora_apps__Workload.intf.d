lib/apps/workload.mli:
