lib/apps/lsmtree.mli: Aurora_proc Kernel Process
