lib/apps/recreplay.mli: Aurora_sls Machine Types
