lib/apps/workload.ml: Int64
