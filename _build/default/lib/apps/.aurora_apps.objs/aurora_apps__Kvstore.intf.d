lib/apps/kvstore.mli: Aurora_proc Aurora_vm Content Kernel Process Workload
