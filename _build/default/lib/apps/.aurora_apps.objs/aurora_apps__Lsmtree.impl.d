lib/apps/lsmtree.ml: Aurora_posix Aurora_proc Aurora_vfs Buffer Hashtbl Kernel List Printf Process Serial String Syscall
