lib/apps/serverless.mli: Aurora_proc Kernel Process
