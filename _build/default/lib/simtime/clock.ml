type t = { mutable now : Duration.t }

let create () = { now = Duration.zero }
let now c = c.now
let advance c d = c.now <- Duration.add c.now d
let advance_to c t = if Duration.(t > c.now) then c.now <- t

let lap c f =
  let start = c.now in
  let result = f () in
  (result, Duration.sub c.now start)

let pp ppf c = Format.fprintf ppf "t=%a" Duration.pp c.now
