(** Sample accumulators for simulated-time measurements.

    Used by the benchmark harness and by subsystem metrics to report
    counts, means and tail percentiles of durations or raw values. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_duration : t -> Duration.t -> unit
(** Records the duration in microseconds. *)

val count : t -> int
val total : t -> float
val mean : t -> float
(** [nan] when empty. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100], nearest-rank on the sorted
    sample. [nan] when empty. Raises [Invalid_argument] for [p] outside
    [0,100]. *)

val median : t -> float
val stddev : t -> float
val pp_summary : Format.formatter -> t -> unit
(** One-line [n/mean/p50/p99/max] summary. *)
