(** Durations of simulated time.

    A duration is a non-negative span of simulated time with nanosecond
    resolution, stored as a native [int] (63-bit on 64-bit platforms, so
    the representable range is about 292 years — far beyond any
    simulation run). All arithmetic saturates at zero rather than going
    negative. *)

type t
(** A span of simulated time. Total order; [compare] is monotone in the
    underlying nanosecond count. *)

val zero : t

val nanoseconds : int -> t
(** [nanoseconds n] is a duration of [n] ns. Raises [Invalid_argument]
    if [n < 0]. *)

val microseconds : int -> t
val milliseconds : int -> t
val seconds : int -> t

val of_us_float : float -> t
(** [of_us_float us] converts fractional microseconds, rounding to the
    nearest nanosecond. Raises [Invalid_argument] on negative or
    non-finite input. *)

val of_sec_float : float -> t
(** Like {!of_us_float} but the input is in seconds. *)

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_sec : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] is [a - b], saturating at {!zero} when [b > a]. *)

val scale : t -> int -> t
(** [scale d n] is [d] repeated [n] times. Raises [Invalid_argument] if
    [n < 0]. *)

val scale_float : t -> float -> t
(** [scale_float d f] multiplies by a non-negative factor, rounding to
    the nearest nanosecond. *)

val div : t -> int -> t
(** Integer division of the nanosecond count. Raises [Division_by_zero]. *)

val ratio : t -> t -> float
(** [ratio a b] is [a/b] as a float; [nan] when [b] is {!zero}. *)

val min : t -> t -> t
val max : t -> t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit, e.g. ["950.8us"],
    ["5.4ms"], ["1.2s"]. *)

val pp_us : Format.formatter -> t -> unit
(** Always renders in microseconds with one decimal, matching the
    paper's tables, e.g. ["5145.9"]. *)

val to_string : t -> string
