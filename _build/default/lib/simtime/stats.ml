type t = {
  mutable samples : float list;
  mutable sorted : float array option; (* cache, invalidated by add *)
  mutable count : int;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sumsq : float;
}

let create () =
  { samples = []; sorted = None; count = 0; total = 0.0;
    min_v = Float.infinity; max_v = Float.neg_infinity; sumsq = 0.0 }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let add_duration t d = add t (Duration.to_us d)
let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then Float.nan else t.total /. float_of_int t.count
let min_value t = if t.count = 0 then Float.nan else t.min_v
let max_value t = if t.count = 0 then Float.nan else t.max_v

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  if t.count = 0 then Float.nan
  else begin
    let a = sorted t in
    let rank = int_of_float (Float.round (p /. 100.0 *. float_of_int (t.count - 1))) in
    a.(rank)
  end

let median t = percentile t 50.0

let stddev t =
  if t.count < 2 then 0.0
  else begin
    let m = mean t in
    let var = (t.sumsq /. float_of_int t.count) -. (m *. m) in
    if var <= 0.0 then 0.0 else sqrt var
  end

let pp_summary ppf t =
  if t.count = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f"
      t.count (mean t) (median t) (percentile t 99.0) t.max_v
