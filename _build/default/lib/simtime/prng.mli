(** Deterministic, splittable pseudo-random number generator.

    SplitMix64 core. Every source of randomness in the simulator draws
    from a [Prng.t] derived from a single root seed, so whole-machine
    runs are reproducible bit-for-bit. [split] derives an independent
    child stream, used to give each subsystem its own generator without
    coupling their consumption patterns. *)

type t

val create : seed:int64 -> t
val split : t -> t
(** An independent child generator; advances the parent. *)

val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val zipf : t -> n:int -> theta:float -> int
(** [zipf t ~n ~theta] draws from a Zipfian distribution over
    [0, n) with skew [theta] (0 = uniform; 0.99 = YCSB default) using
    the Gray et al. rejection-free method. Raises [Invalid_argument]
    if [n <= 0] or [theta] is not in [0, 1). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
