type t = int (* nanoseconds, always >= 0 *)

let zero = 0

let nanoseconds n =
  if n < 0 then invalid_arg "Duration.nanoseconds: negative";
  n

let microseconds n = nanoseconds n * 1_000
let milliseconds n = nanoseconds n * 1_000_000
let seconds n = nanoseconds n * 1_000_000_000

let of_us_float us =
  if not (Float.is_finite us) || us < 0.0 then
    invalid_arg "Duration.of_us_float: negative or non-finite";
  int_of_float (Float.round (us *. 1_000.))

let of_sec_float s =
  if not (Float.is_finite s) || s < 0.0 then
    invalid_arg "Duration.of_sec_float: negative or non-finite";
  int_of_float (Float.round (s *. 1e9))

let to_ns t = t
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_sec t = float_of_int t /. 1e9

let add a b = a + b
let sub a b = if b >= a then 0 else a - b

let scale d n =
  if n < 0 then invalid_arg "Duration.scale: negative";
  d * n

let scale_float d f =
  if not (Float.is_finite f) || f < 0.0 then
    invalid_arg "Duration.scale_float: negative or non-finite";
  int_of_float (Float.round (float_of_int d *. f))

let div d n = d / n
let ratio a b = if b = 0 then Float.nan else float_of_int a /. float_of_int b
let min = Stdlib.min
let max = Stdlib.max
let equal = Int.equal
let compare = Int.compare
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b

let pp ppf t =
  if t >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (to_sec t)
  else if t >= 1_000_000 then Format.fprintf ppf "%.3fms" (to_ms t)
  else if t >= 1_000 then Format.fprintf ppf "%.1fus" (to_us t)
  else Format.fprintf ppf "%dns" t

let pp_us ppf t = Format.fprintf ppf "%.1f" (to_us t)
let to_string t = Format.asprintf "%a" pp t
