(** The simulated clock.

    Every simulated machine owns exactly one clock. Kernel paths charge
    cost by calling {!advance}; measurement code brackets an operation
    with {!lap} to read how much simulated time it consumed. The clock
    only moves forward. *)

type t

val create : unit -> t
(** A fresh clock at time zero. *)

val now : t -> Duration.t
(** Simulated time elapsed since the clock was created. *)

val advance : t -> Duration.t -> unit
(** Charge a cost: move the clock forward by the given duration. *)

val advance_to : t -> Duration.t -> unit
(** Move the clock to an absolute time, if it is in the future;
    otherwise does nothing (time never goes backwards). *)

val lap : t -> (unit -> 'a) -> 'a * Duration.t
(** [lap c f] runs [f ()] and returns its result together with the
    simulated time consumed while it ran. *)

val pp : Format.formatter -> t -> unit
