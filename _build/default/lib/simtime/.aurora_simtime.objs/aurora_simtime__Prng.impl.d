lib/simtime/prng.ml: Array Float Hashtbl Int64 Stdlib
