lib/simtime/prng.mli:
