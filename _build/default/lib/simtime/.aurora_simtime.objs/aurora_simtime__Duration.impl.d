lib/simtime/duration.ml: Float Format Int Stdlib
