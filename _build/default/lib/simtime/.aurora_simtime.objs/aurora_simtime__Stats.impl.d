lib/simtime/stats.ml: Array Duration Float Format
