lib/simtime/stats.mli: Duration Format
