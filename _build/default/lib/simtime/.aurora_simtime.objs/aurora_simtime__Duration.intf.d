lib/simtime/duration.mli: Format
