lib/simtime/tracelog.mli: Clock Duration Format
