lib/simtime/clock.mli: Duration Format
