lib/simtime/tracelog.ml: Array Clock Duration Format List String
