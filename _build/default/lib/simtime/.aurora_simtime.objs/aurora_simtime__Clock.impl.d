lib/simtime/clock.ml: Duration Format
