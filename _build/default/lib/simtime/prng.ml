type t = { mutable state : int64; zipf_cache : (int * float, zipf_params) Hashtbl.t }

and zipf_params = { zetan : float; alpha : float; eta : float; theta : float }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = seed; zipf_cache = Hashtbl.create 4 }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  create ~seed:(mix64 (Int64.logxor seed 0x5851F42D4C957F2DL))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Keep 62 bits so the native-int conversion stays non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, in [0,1) *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Zipfian generator following Gray et al., "Quickly generating
   billion-record synthetic databases" (SIGMOD '94), as used by YCSB. *)
let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let zipf_params t ~n ~theta =
  match Hashtbl.find_opt t.zipf_cache (n, theta) with
  | Some p -> p
  | None ->
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    let p = { zetan; alpha; eta; theta } in
    Hashtbl.replace t.zipf_cache (n, theta) p;
    p

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Prng.zipf: n <= 0";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Prng.zipf: theta not in [0,1)";
  if theta = 0.0 then int t n
  else begin
    let p = zipf_params t ~n ~theta in
    let u = float t 1.0 in
    let uz = u *. p.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 p.theta then 1
    else
      let r =
        float_of_int n
        *. Float.pow ((p.eta *. u) -. p.eta +. 1.0) p.alpha
      in
      Stdlib.min (n - 1) (int_of_float r)
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
