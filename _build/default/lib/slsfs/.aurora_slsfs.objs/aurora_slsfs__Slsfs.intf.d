lib/slsfs/slsfs.mli: Aurora_objstore Aurora_vfs Memfs Store
