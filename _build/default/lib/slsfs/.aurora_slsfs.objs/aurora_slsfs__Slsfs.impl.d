lib/slsfs/slsfs.ml: Aurora_objstore Aurora_posix Aurora_vfs Bytes Fun Hashtbl Int List Memfs Printf Serial Store String Vnode
