open Aurora_posix
open Aurora_vfs
open Aurora_objstore

(* Store oid namespaces: vnodes live at tag 2 (see
   Aurora_sls.Oidspace, which owns the full map). *)
let vnode_tag = 2
let fs_manifest_oid = 2 (* tag 0 (manifest), slot 2 *)
let oid_of_vid vid = (vnode_tag lsl 24) lor vid

(* --- vnode records -------------------------------------------------- *)

let serialize_vnode v ~popen w =
  Serial.w_int w v.Vnode.vid;
  Serial.w_u8 w (match v.Vnode.vtype with Vnode.Reg -> 0 | Vnode.Dir -> 1);
  Serial.w_int w v.Vnode.nlink;
  Serial.w_int w popen;
  Serial.w_int w v.Vnode.size;
  (* Which chunk indexes exist (the data travels as blobs). *)
  let chunk_indexes =
    if v.Vnode.vtype = Vnode.Dir then []
    else
      List.init ((v.Vnode.size + Vnode.chunk_size - 1) / Vnode.chunk_size) Fun.id
  in
  Serial.w_list w Serial.w_int chunk_indexes

let checkpoint_vnode store v ~popen =
  let w = Serial.writer () in
  serialize_vnode v ~popen w;
  let oid = oid_of_vid v.Vnode.vid in
  Store.put_record store ~oid (Serial.contents w);
  if v.Vnode.vtype = Vnode.Reg then begin
    let nchunks = (v.Vnode.size + Vnode.chunk_size - 1) / Vnode.chunk_size in
    for ci = 0 to nchunks - 1 do
      let data = Vnode.read v ~off:(ci * Vnode.chunk_size) ~len:Vnode.chunk_size in
      Store.put_blob store ~oid ~index:ci (Bytes.to_string data)
    done
  end

(* --- namespace manifest ---------------------------------------------
   All named paths with their vnode ids, shallowest first, plus the
   full list of live vnode ids (anonymous ones carry no path). *)

let rec walk_paths fs prefix dir_vid acc =
  let dir =
    match Memfs.vnode_by_id fs dir_vid with
    | Some v -> v
    | None -> invalid_arg "Slsfs: dangling directory"
  in
  let names = Memfs.readdir fs (if prefix = "" then "/" else prefix) in
  List.fold_left
    (fun acc name ->
      let path = prefix ^ "/" ^ name in
      match Memfs.lookup_opt fs path with
      | None -> acc
      | Some v ->
        let acc = (path, v.Vnode.vid, v.Vnode.vtype) :: acc in
        if v.Vnode.vtype = Vnode.Dir then walk_paths fs path v.Vnode.vid acc else acc)
    acc names
  |> fun acc ->
  ignore dir;
  acc

let checkpoint_fs store fs ~popen_of_vid =
  let vnodes = Memfs.live_vnodes fs in
  let root_vid = (Memfs.root fs).Vnode.vid in
  let paths = List.rev (walk_paths fs "" root_vid []) in
  let w = Serial.writer () in
  Serial.w_int w root_vid;
  Serial.w_list w (fun w (path, vid, vtype) ->
      Serial.w_string w path;
      Serial.w_int w vid;
      Serial.w_u8 w (match vtype with Vnode.Reg -> 0 | Vnode.Dir -> 1))
    paths;
  Serial.w_list w Serial.w_int (List.map (fun v -> v.Vnode.vid) vnodes);
  Store.put_record store ~oid:fs_manifest_oid (Serial.contents w);
  List.iter
    (fun v ->
      if v.Vnode.vid <> root_vid then
        checkpoint_vnode store v ~popen:(popen_of_vid v.Vnode.vid))
    vnodes

(* --- restore --------------------------------------------------------- *)

let read_manifest store g =
  match Store.read_record store g ~oid:fs_manifest_oid with
  | None -> invalid_arg "Slsfs.restore_fs: no file system manifest in generation"
  | Some data ->
    let r = Serial.reader data in
    let root_vid = Serial.r_int r in
    let paths =
      Serial.r_list r (fun r ->
          let path = Serial.r_string r in
          let vid = Serial.r_int r in
          let vtype =
            match Serial.r_u8 r with
            | 0 -> Vnode.Reg
            | 1 -> Vnode.Dir
            | v -> raise (Serial.Corrupt (Printf.sprintf "Slsfs: bad vtype %d" v))
          in
          (path, vid, vtype))
    in
    let vids = Serial.r_list r Serial.r_int in
    (root_vid, paths, vids)

let restore_vnode store g vid =
  match Store.read_record store g ~oid:(oid_of_vid vid) with
  | None -> invalid_arg (Printf.sprintf "Slsfs: missing vnode record %d" vid)
  | Some data ->
    let r = Serial.reader data in
    let rvid = Serial.r_int r in
    let vtype =
      match Serial.r_u8 r with
      | 0 -> Vnode.Reg
      | 1 -> Vnode.Dir
      | v -> raise (Serial.Corrupt (Printf.sprintf "Slsfs: bad vtype %d" v))
    in
    let nlink = Serial.r_int r in
    let popen = Serial.r_int r in
    let size = Serial.r_int r in
    let chunk_indexes = Serial.r_list r Serial.r_int in
    let v = Vnode.create ~vid:rvid vtype in
    v.Vnode.nlink <- nlink;
    v.Vnode.persistent_open <- popen;
    if vtype = Vnode.Reg then begin
      List.iter
        (fun ci ->
          match Store.read_blob store g ~oid:(oid_of_vid vid) ~index:ci with
          | Some blob ->
            Vnode.write v ~off:(ci * Vnode.chunk_size) (Bytes.of_string blob)
          | None -> raise (Serial.Corrupt (Printf.sprintf "Slsfs: missing chunk %d" ci)))
        chunk_indexes;
      Vnode.truncate v size;
      Vnode.clear_dirty v
    end;
    v

let restore_fs store g =
  let root_vid, paths, vids = read_manifest store g in
  let fs = Memfs.create () in
  (* Recreate every vnode (anonymous ones included), then rebuild the
     namespace shallowest-path-first so parents exist. *)
  let by_vid = Hashtbl.create 64 in
  Hashtbl.replace by_vid root_vid (Memfs.root fs);
  List.iter
    (fun vid ->
      if vid <> root_vid then begin
        let v = restore_vnode store g vid in
        Hashtbl.replace by_vid vid v;
        Memfs.adopt fs v
      end)
    vids;
  let by_depth =
    List.sort
      (fun (a, _, _) (b, _, _) ->
        match
          Int.compare
            (List.length (String.split_on_char '/' a))
            (List.length (String.split_on_char '/' b))
        with
        | 0 -> String.compare a b
        | c -> c)
      paths
  in
  List.iter
    (fun (path, vid, _) ->
      match Hashtbl.find_opt by_vid vid with
      | Some v -> Memfs.attach fs ~path v
      | None -> raise (Serial.Corrupt (Printf.sprintf "Slsfs: path %s has no vnode" path)))
    by_depth;
  fs

let snapshot store ~name =
  match Store.latest store with
  | None -> None
  | Some g ->
    Store.name_generation store g name;
    Some g

let clone_fs store g = restore_fs store g
