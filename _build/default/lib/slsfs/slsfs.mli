(** The Aurora file system: a file API into the object store.

    Checkpoints the in-memory file system into an open store
    generation and rebuilds it on restore, handling the edge case §3
    singles out — {e unlinked but open (anonymous) files}. At
    checkpoint time every vnode record carries the number of
    checkpointed open file descriptions referencing it; on restore
    that count becomes the vnode's [persistent_open] pin, so a
    nameless vnode survives until the restored application closes it.

    Zero-copy snapshots and clones fall out of the object store's COW
    generations: {!snapshot} names the current generation (no data
    moves), {!clone_fs} materializes any generation into a fresh file
    system sharing all on-disk blocks. *)

open Aurora_vfs
open Aurora_objstore

val fs_manifest_oid : int
(** The store object id under which the namespace manifest lives. *)

val oid_of_vid : int -> int
(** Store object id for a vnode id (disjoint from kernel-object and
    process id namespaces; see [Aurora_sls.Oidspace]). *)

val checkpoint_fs :
  Store.t -> Memfs.t -> popen_of_vid:(int -> int) -> unit
(** Write the whole file system (namespace manifest, per-vnode records,
    deduplicated data blobs) into the currently open generation.
    [popen_of_vid] reports how many checkpointed descriptions hold each
    vnode open — the on-disk open reference count. *)

val restore_fs : Store.t -> Store.gen -> Memfs.t
(** Rebuild a file system from a generation: directories, files, hard
    links, file contents, and anonymous vnodes (restored nameless,
    pinned by their persistent-open count). *)

val snapshot : Store.t -> name:string -> Store.gen option
(** Name the latest committed generation (zero-copy). [None] when
    nothing has been committed yet. *)

val clone_fs : Store.t -> Store.gen -> Memfs.t
(** A fresh, fully independent file system initialized from the
    generation — the file-system half of container cloning. On-disk
    blocks stay shared; in-memory structures are new. *)
