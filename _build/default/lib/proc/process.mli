(** Processes: the unit of address-space and descriptor ownership. *)

open Aurora_vm
open Aurora_posix

type t = {
  pid : int;
  mutable ppid : int;
  mutable name : string;        (** comm, for `sls ps` listings *)
  mutable container : int;      (** owning container id; 0 = host *)
  mutable threads : Thread.t list;
  vm : Vmmap.t;
  mutable fdtable : Fd.table;
  mutable cwd : string;
  mutable exit_status : int option; (** zombie until reaped *)
  mutable next_tid : int;
}

val create :
  pid:int -> ppid:int -> name:string -> container:int -> vm:Vmmap.t -> program:string -> t
(** One initial runnable thread executing [program]. *)

val main_thread : t -> Thread.t
val thread : t -> int -> Thread.t option
val add_thread : t -> program:string -> Thread.t
val live_threads : t -> Thread.t list
val is_zombie : t -> bool
val all_exited : t -> bool
val pp : Format.formatter -> t -> unit
