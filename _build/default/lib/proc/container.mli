(** Containers (FreeBSD jails, lightly): the persistence-group roots.

    Aurora persists "individual processes, process trees or
    containers"; a container here is a named process grouping with its
    own id. Container 0 is the host. *)

type t = { cid : int; name : string }

val host : t
val pp : Format.formatter -> t -> unit
