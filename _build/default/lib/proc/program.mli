(** The program registry: simulated binaries.

    A program is OCaml code interpreting a {!Context.t} state machine —
    the analogue of an executable on disk. Checkpoints never serialize
    code, only the program {e name} plus the context (pc, registers)
    and whatever the program keeps in simulated memory and kernel
    objects; restore looks the name up here and resumes. The registry
    is global and populated at module-initialization time by the
    applications library. *)

type step_result =
  | Continue            (** made progress; run again when scheduled *)
  | Yield               (** voluntarily give up the remainder of the quantum *)
  | Block of Thread.wait
  | Exit_program of int (** terminate the process with this status *)

type step_fn = Kernel.t -> Process.t -> Thread.t -> step_result

val register : name:string -> step_fn -> unit
(** Re-registration replaces (supports test fixtures). *)

val find : string -> step_fn option
val find_exn : string -> step_fn
val registered : unit -> string list
