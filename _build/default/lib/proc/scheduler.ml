open Aurora_simtime
open Aurora_device
open Aurora_posix

type stop_reason = Deadline | Idle | All_exited

(* Minimum charge per program step: even a tight user-mode loop
   consumes cycles, and it guarantees the clock advances so run loops
   terminate. *)
let step_floor = Duration.nanoseconds 100

let wait_satisfied (k : Kernel.t) = function
  | Thread.Wait_forever -> false
  | Thread.Wait_sleep_until d -> Duration.(Clock.now k.Kernel.clock >= d)
  | Thread.Wait_read oid -> (
    match Registry.find k.Kernel.registry oid with
    | Some (Registry.Kpipe p) ->
      Pipe.buffered p > 0 || not (Pipe.write_open p)
    | Some (Registry.Kusock s) | Some (Registry.Ktcp s) -> (
      Unixsock.buffered s > 0
      ||
      match Unixsock.recv s ~max:0 with
      | `Eof -> true
      | `Data _ | `Would_block -> false)
    | Some (Registry.Kmsgq q) -> Msgq.message_count q > 0
    | Some (Registry.Kkq kq) -> Kqueue.pending_count kq > 0
    | Some _ | None -> true (* stale object: wake and let the syscall fail *))
  | Thread.Wait_write oid -> (
    match Registry.find k.Kernel.registry oid with
    | Some (Registry.Kpipe p) -> Pipe.buffered p < Pipe.default_capacity || not (Pipe.read_open p)
    | Some (Registry.Kusock s) | Some (Registry.Ktcp s) -> (
      match Unixsock.state s with
      | Unixsock.Connected { peer } -> (
        match Kernel.lookup_stream k peer with
        | Some p -> Unixsock.buffered p < 65536
        | None -> true)
      | _ -> true)
    | Some _ | None -> true)
  | Thread.Wait_accept oid -> (
    match Kernel.lookup_stream k oid with
    | Some s -> (
      match Unixsock.state s with
      | Unixsock.Listening { pending; _ } -> pending <> []
      | _ -> true)
    | None -> true)
  | Thread.Wait_sem oid -> (
    match Registry.sem k.Kernel.registry oid with
    | Some s -> Semaphore.value s > 0
    | None -> true)
  | Thread.Wait_child want ->
    List.exists
      (fun c -> Process.is_zombie c && (want = -1 || c.Process.pid = want))
      (Kernel.processes k)

let wakeup_pass k =
  List.iter
    (fun p ->
      List.iter
        (fun th ->
          match th.Thread.state with
          | Thread.Blocked w when wait_satisfied k w -> th.Thread.state <- Thread.Runnable
          | Thread.Blocked _ | Thread.Runnable | Thread.Exited _ -> ())
        p.Process.threads)
    (Kernel.processes k)

let runnable_threads k =
  List.concat_map
    (fun p ->
      if Process.is_zombie p then []
      else List.filter Thread.is_runnable p.Process.threads |> List.map (fun th -> (p, th)))
    (Kernel.processes k)

let step_thread k (p : Process.t) (th : Thread.t) =
  let program = th.Thread.context.Context.program in
  match Program.find program with
  | None ->
    (* No such binary: the process dies (simulated SIGSYS). *)
    Syscall.exit_process k p 127
  | Some step -> (
    Kernel.charge k step_floor;
    match step k p th with
    | Program.Continue | Program.Yield -> ()
    | Program.Block w -> th.Thread.state <- Thread.Blocked w
    | Program.Exit_program code -> Syscall.exit_process k p code)

let step_all k =
  let runnable = runnable_threads k in
  List.iter
    (fun (p, th) ->
      (* A thread may have exited or blocked due to an earlier step in
         this same pass (e.g. its process was killed). *)
      if (not (Process.is_zombie p)) && Thread.is_runnable th then begin
        Kernel.charge k Costmodel.context_switch;
        step_thread k p th
      end)
    runnable;
  List.length runnable

let earliest_sleep k =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc th ->
          match th.Thread.state with
          | Thread.Blocked (Thread.Wait_sleep_until d) -> (
            match acc with
            | None -> Some d
            | Some best -> Some (Duration.min best d))
          | _ -> acc)
        acc p.Process.threads)
    None (Kernel.processes k)

let live_thread_count k =
  List.fold_left
    (fun acc p ->
      if Process.is_zombie p then acc else acc + List.length (Process.live_threads p))
    0 (Kernel.processes k)

let run k ~until =
  let rec loop () =
    if Duration.(Clock.now k.Kernel.clock >= until) then Deadline
    else if live_thread_count k = 0 then All_exited
    else begin
      wakeup_pass k;
      let steps = step_all k in
      if steps > 0 then loop ()
      else
        match earliest_sleep k with
        | Some d when Duration.(d <= until) ->
          Clock.advance_to k.Kernel.clock d;
          loop ()
        | Some _ ->
          (* Everyone is asleep past the horizon: time just passes. *)
          Clock.advance_to k.Kernel.clock until;
          Deadline
        | None -> Idle
    end
  in
  loop ()

let run_for k d = run k ~until:(Duration.add (Clock.now k.Kernel.clock) d)

let run_until_idle k ?(max_steps = 10_000_000) () =
  let steps = ref 0 in
  let rec loop () =
    if live_thread_count k = 0 then All_exited
    else begin
      wakeup_pass k;
      let n = step_all k in
      steps := !steps + n;
      if !steps > max_steps then
        invalid_arg "Scheduler.run_until_idle: step budget exhausted (livelock?)";
      if n > 0 then loop ()
      else
        match earliest_sleep k with
        | Some d ->
          Clock.advance_to k.Kernel.clock d;
          loop ()
        | None -> Idle
    end
  in
  loop ()
