(** The system call layer: what simulated programs invoke.

    Every call charges trap overhead on the simulated clock and
    operates on the calling process's descriptor table, address space,
    and the kernel's object registry — it is the POSIX surface of the
    simulated OS. All potentially-blocking operations are non-blocking
    here and return [`Would_block]; programs convert that into a
    {!Thread.wait} (the scheduler re-runs them when the condition
    clears), mirroring an event-driven server on a real kernel. *)

open Aurora_simtime
open Aurora_vm
open Aurora_posix

exception Sys_error of string
(** Programming errors (bad descriptor, wrong object class, missing
    path): the simulated equivalent of a fatal errno. *)

(* --- files --------------------------------------------------------- *)

val open_file :
  Kernel.t -> Process.t -> ?create:bool -> ?append:bool -> string -> int
(** Returns a descriptor. With [create], creates the file (parents must
    exist). *)

val read : Kernel.t -> Process.t -> int -> len:int ->
  [ `Data of string | `Eof | `Would_block ]
val write : Kernel.t -> Process.t -> int -> string ->
  [ `Written of int | `Would_block | `Broken ]
val lseek : Kernel.t -> Process.t -> int -> int -> unit
val fsync : Kernel.t -> Process.t -> int -> unit
val close : Kernel.t -> Process.t -> int -> unit
val dup : Kernel.t -> Process.t -> int -> int
val mkdir : Kernel.t -> Process.t -> string -> unit
val unlink : Kernel.t -> Process.t -> string -> unit
val rename : Kernel.t -> Process.t -> src:string -> dst:string -> unit
val file_size : Kernel.t -> Process.t -> int -> int

(* --- pipes and sockets --------------------------------------------- *)

val pipe : Kernel.t -> Process.t -> int * int
(** (read descriptor, write descriptor). *)

val socketpair : Kernel.t -> Process.t -> int * int

val socket : Kernel.t -> Process.t -> [ `Unix | `Tcp ] -> int

val bind_listen : Kernel.t -> Process.t -> int -> addr:string -> backlog:int -> unit
(** For [`Unix] sockets [addr] is a path; for [`Tcp], a decimal port. *)

val connect : Kernel.t -> Process.t -> int -> addr:string -> [ `Ok | `Refused ]
val accept : Kernel.t -> Process.t -> int -> [ `Fd of int | `Would_block ]

(* --- shared memory ------------------------------------------------- *)

val shm_open : Kernel.t -> Process.t -> flavor:Shm.flavor -> name:string -> npages:int -> int
(** Create-or-open a segment by name; returns its oid. *)

val shm_attach : Kernel.t -> Process.t -> int -> Vmmap.entry
val shm_detach : Kernel.t -> Process.t -> int -> Vmmap.entry -> unit

(* --- message queues / semaphores / kqueue -------------------------- *)

val msgq_open : Kernel.t -> Process.t -> key:string -> int
val msgq_send : Kernel.t -> Process.t -> int -> mtype:int -> string -> [ `Ok | `Would_block ]
val msgq_recv : Kernel.t -> Process.t -> int -> ?mtype:int -> unit ->
  [ `Msg of int * string | `Would_block ]

val sem_open : Kernel.t -> Process.t -> name:string -> value:int -> int
val sem_wait : Kernel.t -> Process.t -> int -> [ `Ok | `Would_block ]
val sem_post : Kernel.t -> Process.t -> int -> unit

val kqueue : Kernel.t -> Process.t -> int
val kevent_register : Kernel.t -> Process.t -> kq:int -> ident:int -> Kqueue.filter -> unit
val kevent_trigger : Kernel.t -> Process.t -> kq:int -> ident:int -> Kqueue.filter -> unit
val kevent_poll : Kernel.t -> Process.t -> kq:int -> max:int -> (int * Kqueue.filter) list

(* --- memory -------------------------------------------------------- *)

val mmap_anon : Kernel.t -> Process.t -> npages:int -> Vmmap.entry
val munmap : Kernel.t -> Process.t -> Vmmap.entry -> unit
val mem_write : Kernel.t -> Process.t -> vpn:int -> offset:int -> value:int64 -> unit
val mem_load_page : Kernel.t -> Process.t -> vpn:int -> Content.t -> unit
val mem_read : Kernel.t -> Process.t -> vpn:int -> offset:int -> int64
val mem_page : Kernel.t -> Process.t -> vpn:int -> Content.t

(* --- processes ----------------------------------------------------- *)

val fork : Kernel.t -> Process.t -> Thread.t -> Process.t
(** The child is a copy: forked address space, shared descriptions,
    duplicated calling-thread context. Register 0 of the calling
    thread receives the child pid; the child's register 0 is 0. *)

val exit_process : Kernel.t -> Process.t -> int -> unit
(** Closes descriptors, tears down the address space, marks threads
    exited; the process lingers as a zombie until reaped. *)

val waitpid : Kernel.t -> Process.t -> int -> [ `Reaped of int * int | `Would_block ]
(** [`Reaped (pid, status)]. Pass [-1] for "any child". *)

val sleep_until : Kernel.t -> Process.t -> Duration.t -> Thread.wait
(** Helper: the wait value for an absolute deadline. *)

(* --- libsls -------------------------------------------------------- *)

val sls : Kernel.t -> Process.t -> Kernel.sls_op -> Kernel.sls_result
(** Invoke the SLS from inside a program (the machine installs the
    handler; raises {!Sys_error} when no SLS is attached or the caller
    belongs to no persistence group). *)
