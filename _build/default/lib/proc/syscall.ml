open Aurora_simtime
open Aurora_device
open Aurora_vm
open Aurora_posix
open Aurora_vfs

exception Sys_error of string

let err fmt = Format.kasprintf (fun s -> raise (Sys_error s)) fmt
let trap (k : Kernel.t) = Kernel.charge k Costmodel.syscall_entry

let ofd_exn (p : Process.t) fd =
  match Fd.get p.Process.fdtable fd with
  | Some ofd -> ofd
  | None -> err "pid %d: bad file descriptor %d" p.Process.pid fd

(* --- files --------------------------------------------------------- *)

let open_file k (p : Process.t) ?(create = false) ?(append = false) path =
  trap k;
  let fs = k.Kernel.fs in
  let vnode =
    match Memfs.lookup_opt fs path with
    | Some v -> v
    | None ->
      if create then Memfs.create_file fs path
      else err "open: no such file %s" path
  in
  if vnode.Vnode.vtype <> Vnode.Reg then err "open: %s is a directory" path;
  Memfs.open_vnode fs vnode;
  let ofd =
    Fd.make_ofd ~oid:(Registry.fresh_oid k.Kernel.registry)
      (Fd.Vnode_file { vnode; append })
  in
  if append then ofd.Fd.offset <- vnode.Vnode.size;
  Fd.install p.Process.fdtable ofd

let read k (p : Process.t) fd ~len =
  trap k;
  if len < 0 then err "read: negative length";
  let ofd = ofd_exn p fd in
  match ofd.Fd.kind with
  | Fd.Vnode_file { vnode; _ } ->
    if ofd.Fd.offset >= vnode.Vnode.size then `Eof
    else begin
      let data = Vnode.read vnode ~off:ofd.Fd.offset ~len in
      ofd.Fd.offset <- ofd.Fd.offset + Bytes.length data;
      `Data (Bytes.to_string data)
    end
  | Fd.Obj oid -> (
    match Registry.find k.Kernel.registry oid with
    | Some (Registry.Kpipe pi) -> (
      if ofd.Fd.role <> `Pipe_read then err "read on pipe write end";
      match Pipe.read pi ~max:len with
      | `Data s -> `Data s
      | `Would_block -> `Would_block
      | `Eof -> `Eof)
    | Some (Registry.Kusock s) | Some (Registry.Ktcp s) -> (
      match Unixsock.recv s ~max:len with
      | `Data d -> `Data d
      | `Would_block -> `Would_block
      | `Eof -> `Eof)
    | Some _ -> err "read: object %d not readable" oid
    | None -> err "read: stale object %d" oid)

let deliver_stream k (src : Unixsock.t) (ofd : Fd.ofd) data =
  (* External-consistency interposition: the SLS may claim the bytes
     and release them only once the covering checkpoint is durable. *)
  let hook_result =
    match k.Kernel.send_hook with
    | Some hook when ofd.Fd.flags.Fd.ext_consistency -> hook ~src ~ofd ~data
    | Some _ | None -> `Deliver
  in
  match hook_result with
  | `Buffered n -> `Written n
  | `Deliver -> (
    match Unixsock.send src ~lookup:(Kernel.lookup_stream k) data with
    | `Sent n -> `Written n
    | `Would_block -> `Would_block
    | `Reset -> `Broken)

let write k (p : Process.t) fd data =
  trap k;
  let ofd = ofd_exn p fd in
  match ofd.Fd.kind with
  | Fd.Vnode_file { vnode; append } ->
    let off = if append then vnode.Vnode.size else ofd.Fd.offset in
    Vnode.write vnode ~off (Bytes.of_string data);
    ofd.Fd.offset <- off + String.length data;
    `Written (String.length data)
  | Fd.Obj oid -> (
    match Registry.find k.Kernel.registry oid with
    | Some (Registry.Kpipe pi) -> (
      if ofd.Fd.role <> `Pipe_write then err "write on pipe read end";
      match Pipe.write pi data with
      | `Written n -> `Written n
      | `Would_block -> `Would_block
      | `Broken -> `Broken)
    | Some (Registry.Kusock s) | Some (Registry.Ktcp s) -> deliver_stream k s ofd data
    | Some _ -> err "write: object %d not writable" oid
    | None -> err "write: stale object %d" oid)

let lseek k p fd pos =
  trap k;
  if pos < 0 then err "lseek: negative offset";
  let ofd = ofd_exn p fd in
  match ofd.Fd.kind with
  | Fd.Vnode_file _ -> ofd.Fd.offset <- pos
  | Fd.Obj _ -> err "lseek on non-file"

let fsync k p fd =
  trap k;
  let ofd = ofd_exn p fd in
  match ofd.Fd.kind with
  | Fd.Vnode_file { vnode; _ } -> Memfs.fsync k.Kernel.fs vnode
  | Fd.Obj _ -> err "fsync on non-file"

let file_size k p fd =
  trap k;
  match (ofd_exn p fd).Fd.kind with
  | Fd.Vnode_file { vnode; _ } -> vnode.Vnode.size
  | Fd.Obj _ -> err "file_size on non-file"

(* Dispose of the underlying object once the last description
   reference is gone. *)
let dispose k (ofd : Fd.ofd) =
  match ofd.Fd.kind with
  | Fd.Vnode_file { vnode; _ } -> Memfs.close_vnode k.Kernel.fs vnode
  | Fd.Obj oid -> (
    match Registry.find k.Kernel.registry oid with
    | Some (Registry.Kpipe pi) ->
      (match ofd.Fd.role with
       | `Pipe_read -> Pipe.close_read pi
       | `Pipe_write -> Pipe.close_write pi
       | `Plain -> ());
      if (not (Pipe.read_open pi)) && not (Pipe.write_open pi) then
        Registry.remove k.Kernel.registry oid
    | Some (Registry.Kusock s) ->
      (match Unixsock.bound_name s with
       | Some name -> Hashtbl.remove k.Kernel.unix_ns name
       | None -> ());
      Unixsock.close s ~lookup:(Kernel.lookup_stream k)
    | Some (Registry.Ktcp s) ->
      (match Unixsock.bound_name s with
       | Some name -> (
         match String.split_on_char ':' name with
         | [ "tcp"; port ] ->
           Netstack.release_port k.Kernel.netstack ~port:(int_of_string port)
         | _ -> ())
       | None -> ());
      Unixsock.close s ~lookup:(Kernel.lookup_stream k)
    | Some (Registry.Kshm _ | Registry.Kmsgq _ | Registry.Ksem _) -> ()
    | Some (Registry.Kkq _) -> Registry.remove k.Kernel.registry oid
    | None -> ())

let close k (p : Process.t) fd =
  trap k;
  match Fd.release p.Process.fdtable fd with
  | `Bad_fd -> err "close: bad file descriptor %d" fd
  | `Shared -> ()
  | `Last ofd -> dispose k ofd

let dup k (p : Process.t) fd =
  trap k;
  match Fd.dup p.Process.fdtable fd with
  | Some nfd -> nfd
  | None -> err "dup: bad file descriptor %d" fd

let mkdir k _p path =
  trap k;
  ignore (Memfs.mkdir k.Kernel.fs path)

let unlink k _p path =
  trap k;
  Memfs.unlink k.Kernel.fs path

let rename k _p ~src ~dst =
  trap k;
  Memfs.rename k.Kernel.fs ~src ~dst

(* --- pipes and sockets --------------------------------------------- *)

let pipe k (p : Process.t) =
  trap k;
  let reg = k.Kernel.registry in
  let pi = Pipe.create ~oid:(Registry.fresh_oid reg) () in
  Registry.register reg (Registry.Kpipe pi);
  let r_ofd =
    Fd.make_ofd ~oid:(Registry.fresh_oid reg) ~role:`Pipe_read (Fd.Obj (Pipe.oid pi))
  in
  let w_ofd =
    Fd.make_ofd ~oid:(Registry.fresh_oid reg) ~role:`Pipe_write (Fd.Obj (Pipe.oid pi))
  in
  let rfd = Fd.install p.Process.fdtable r_ofd in
  let wfd = Fd.install p.Process.fdtable w_ofd in
  (rfd, wfd)

let install_stream k (p : Process.t) kobj =
  let reg = k.Kernel.registry in
  Registry.register reg kobj;
  let ofd = Fd.make_ofd ~oid:(Registry.fresh_oid reg) (Fd.Obj (Registry.kobj_oid kobj)) in
  Fd.install p.Process.fdtable ofd

let socketpair k (p : Process.t) =
  trap k;
  let reg = k.Kernel.registry in
  let a, b =
    Unixsock.socketpair ~oid_a:(Registry.fresh_oid reg) ~oid_b:(Registry.fresh_oid reg)
  in
  let fd_a = install_stream k p (Registry.Kusock a) in
  let fd_b = install_stream k p (Registry.Kusock b) in
  (fd_a, fd_b)

let socket k (p : Process.t) domain =
  trap k;
  let reg = k.Kernel.registry in
  let ep = Unixsock.create ~oid:(Registry.fresh_oid reg) () in
  let kobj =
    match domain with `Unix -> Registry.Kusock ep | `Tcp -> Registry.Ktcp ep
  in
  install_stream k p kobj

let stream_ofd_exn k (p : Process.t) fd =
  let ofd = ofd_exn p fd in
  match ofd.Fd.kind with
  | Fd.Obj oid -> (
    match Registry.find k.Kernel.registry oid with
    | Some (Registry.Kusock s) -> (`Unix, s, ofd)
    | Some (Registry.Ktcp s) -> (`Tcp, s, ofd)
    | _ -> err "descriptor %d is not a socket" fd)
  | Fd.Vnode_file _ -> err "descriptor %d is not a socket" fd

let bind_listen k (p : Process.t) fd ~addr ~backlog =
  trap k;
  let domain, ep, _ = stream_ofd_exn k p fd in
  match domain with
  | `Unix ->
    if Hashtbl.mem k.Kernel.unix_ns addr then err "bind: address %s in use" addr;
    Unixsock.listen ep ~name:addr ~backlog;
    Hashtbl.replace k.Kernel.unix_ns addr (Unixsock.oid ep)
  | `Tcp -> (
    match int_of_string_opt addr with
    | Some port -> Netstack.listen k.Kernel.netstack ep ~port ~backlog
    | None -> err "bind: bad port %S" addr)

let connect k (p : Process.t) fd ~addr =
  trap k;
  let domain, ep, _ = stream_ofd_exn k p fd in
  let reg = k.Kernel.registry in
  let peer_oid = Registry.fresh_oid reg in
  let result =
    match domain with
    | `Unix -> (
      match Hashtbl.find_opt k.Kernel.unix_ns addr with
      | None -> `Refused
      | Some listener_oid -> (
        match Kernel.lookup_stream k listener_oid with
        | None -> `Refused
        | Some listener -> Unixsock.connect ep ~listener ~peer_oid))
    | `Tcp -> (
      match int_of_string_opt addr with
      | None -> err "connect: bad port %S" addr
      | Some port ->
        Netstack.connect k.Kernel.netstack ~src:ep ~port ~peer_oid
          ~lookup:(Kernel.lookup_stream k))
  in
  match result with
  | `Connected server_end ->
    (* The server-side endpoint becomes a registered object now; the
       server picks it up via accept. *)
    let kobj =
      match domain with
      | `Unix -> Registry.Kusock server_end
      | `Tcp -> Registry.Ktcp server_end
    in
    Registry.register reg kobj;
    `Ok
  | `Refused -> `Refused

let accept k (p : Process.t) fd =
  trap k;
  let domain, ep, _ = stream_ofd_exn k p fd in
  match Unixsock.accept ep with
  | `Would_block -> `Would_block
  | `Endpoint oid ->
    let ofd =
      Fd.make_ofd ~oid:(Registry.fresh_oid k.Kernel.registry) (Fd.Obj oid)
    in
    ignore domain;
    `Fd (Fd.install p.Process.fdtable ofd)

(* --- shared memory ------------------------------------------------- *)

let find_shm_by_name (k : Kernel.t) ~flavor ~name =
  Registry.fold k.Kernel.registry ~init:None ~f:(fun acc kobj ->
      match (acc, kobj) with
      | Some _, _ -> acc
      | None, Registry.Kshm s when Shm.name s = name && Shm.flavor s = flavor ->
        Some s
      | None, _ -> None)

let shm_open k _p ~flavor ~name ~npages =
  trap k;
  match find_shm_by_name k ~flavor ~name with
  | Some s ->
    if Shm.npages s <> npages && npages > 0 then
      err "shm_open: size mismatch for %s" name
    else Shm.oid s
  | None ->
    let reg = k.Kernel.registry in
    let s =
      Shm.create ~oid:(Registry.fresh_oid reg) ~pool:k.Kernel.pool ~flavor ~name ~npages
    in
    Registry.register reg (Registry.Kshm s);
    Shm.oid s

let shm_of (k : Kernel.t) oid =
  match Registry.shm k.Kernel.registry oid with
  | Some s -> s
  | None -> err "no shared memory segment %d" oid

let shm_attach k (p : Process.t) oid =
  trap k;
  let s = shm_of k oid in
  Shm.attach s;
  Vmmap.map_object p.Process.vm ~obj:(Shm.vmobject s) ~obj_offset:0
    ~npages:(Shm.npages s) ()

let shm_detach k (p : Process.t) oid entry =
  trap k;
  let s = shm_of k oid in
  Shm.detach s;
  Vmmap.unmap p.Process.vm entry

(* --- message queues / semaphores / kqueue -------------------------- *)

let msgq_open k _p ~key =
  trap k;
  let existing =
    Registry.fold k.Kernel.registry ~init:None ~f:(fun acc kobj ->
        match (acc, kobj) with
        | Some _, _ -> acc
        | None, Registry.Kmsgq q when Msgq.key q = key -> Some (Msgq.oid q)
        | None, _ -> None)
  in
  match existing with
  | Some oid -> oid
  | None ->
    let reg = k.Kernel.registry in
    let q = Msgq.create ~oid:(Registry.fresh_oid reg) ~key () in
    Registry.register reg (Registry.Kmsgq q);
    Msgq.oid q

let msgq_of (k : Kernel.t) oid =
  match Registry.msgq k.Kernel.registry oid with
  | Some q -> q
  | None -> err "no message queue %d" oid

let msgq_send k _p oid ~mtype data =
  trap k;
  Msgq.send (msgq_of k oid) ~mtype data

let msgq_recv k _p oid ?mtype () =
  trap k;
  Msgq.recv (msgq_of k oid) ?mtype ()

let sem_open k _p ~name ~value =
  trap k;
  let existing =
    Registry.fold k.Kernel.registry ~init:None ~f:(fun acc kobj ->
        match (acc, kobj) with
        | Some _, _ -> acc
        | None, Registry.Ksem s when Semaphore.name s = name -> Some (Semaphore.oid s)
        | None, _ -> None)
  in
  match existing with
  | Some oid -> oid
  | None ->
    let reg = k.Kernel.registry in
    let s = Semaphore.create ~oid:(Registry.fresh_oid reg) ~value ~name () in
    Registry.register reg (Registry.Ksem s);
    Semaphore.oid s

let sem_of (k : Kernel.t) oid =
  match Registry.sem k.Kernel.registry oid with
  | Some s -> s
  | None -> err "no semaphore %d" oid

let sem_wait k _p oid =
  trap k;
  Semaphore.try_wait (sem_of k oid)

let sem_post k _p oid =
  trap k;
  Semaphore.post (sem_of k oid)

let kqueue k (p : Process.t) =
  trap k;
  let reg = k.Kernel.registry in
  let kq = Kqueue.create ~oid:(Registry.fresh_oid reg) () in
  Registry.register reg (Registry.Kkq kq);
  let ofd = Fd.make_ofd ~oid:(Registry.fresh_oid reg) (Fd.Obj (Kqueue.oid kq)) in
  Fd.install p.Process.fdtable ofd

let kq_of k (p : Process.t) fd =
  match (ofd_exn p fd).Fd.kind with
  | Fd.Obj oid -> (
    match Registry.kq k.Kernel.registry oid with
    | Some kq -> kq
    | None -> err "descriptor %d is not a kqueue" fd)
  | Fd.Vnode_file _ -> err "descriptor %d is not a kqueue" fd

let kevent_register k p ~kq ~ident filter =
  trap k;
  Kqueue.register (kq_of k p kq) ~ident filter

let kevent_trigger k p ~kq ~ident filter =
  trap k;
  Kqueue.trigger (kq_of k p kq) ~ident filter

let kevent_poll k p ~kq ~max =
  trap k;
  Kqueue.harvest (kq_of k p kq) ~max

(* --- memory -------------------------------------------------------- *)

let mmap_anon k (p : Process.t) ~npages =
  trap k;
  Vmmap.map_anonymous p.Process.vm ~npages ()

let munmap k (p : Process.t) entry =
  trap k;
  Vmmap.unmap p.Process.vm entry

(* Plain loads/stores do not trap; costs come from faults inside
   Vmmap. *)
let mem_write _k (p : Process.t) ~vpn ~offset ~value =
  Vmmap.write p.Process.vm ~vpn ~offset ~value

let mem_load_page _k (p : Process.t) ~vpn content = Vmmap.load_page p.Process.vm ~vpn content
let mem_read _k (p : Process.t) ~vpn ~offset = Vmmap.read_value p.Process.vm ~vpn ~offset
let mem_page _k (p : Process.t) ~vpn = Vmmap.read p.Process.vm ~vpn

(* --- processes ----------------------------------------------------- *)

let fork k (p : Process.t) (calling : Thread.t) =
  trap k;
  let pid = k.Kernel.next_pid in
  k.Kernel.next_pid <- pid + 1;
  let vm = Vmmap.fork p.Process.vm in
  let child =
    Process.create ~pid ~ppid:p.Process.pid ~name:p.Process.name
      ~container:p.Process.container ~vm ~program:calling.Thread.context.Context.program
  in
  child.Process.fdtable <- Fd.fork_table p.Process.fdtable;
  child.Process.cwd <- p.Process.cwd;
  (* Duplicate the calling thread's context; fork returns 0 in the
     child, the child's pid in the parent (register 0). *)
  let child_main = Process.main_thread child in
  child_main.Thread.context.Context.pc <- calling.Thread.context.Context.pc;
  Array.blit calling.Thread.context.Context.regs 0 child_main.Thread.context.Context.regs
    0 Context.nregs;
  Context.set_reg child_main.Thread.context 0 0L;
  Context.set_reg calling.Thread.context 0 (Int64.of_int pid);
  Hashtbl.replace k.Kernel.procs pid child;
  Tracelog.recordf k.Kernel.trace ~subsystem:"proc" "fork %d -> %d" p.Process.pid pid;
  child

let exit_process k (p : Process.t) code =
  trap k;
  if p.Process.exit_status = None then begin
    List.iter
      (fun (fd, _) ->
        match Fd.release p.Process.fdtable fd with
        | `Last ofd -> dispose k ofd
        | `Shared | `Bad_fd -> ())
      (Fd.descriptors p.Process.fdtable);
    Vmmap.destroy p.Process.vm;
    List.iter
      (fun th -> if not (Thread.is_exited th) then th.Thread.state <- Thread.Exited code)
      p.Process.threads;
    p.Process.exit_status <- Some code;
    Tracelog.recordf k.Kernel.trace ~subsystem:"proc" "exit pid=%d status=%d"
      p.Process.pid code
  end

let waitpid k (p : Process.t) want =
  trap k;
  let candidates =
    List.filter
      (fun c ->
        c.Process.ppid = p.Process.pid
        && Process.is_zombie c
        && (want = -1 || c.Process.pid = want))
      (Kernel.processes k)
  in
  match candidates with
  | [] -> `Would_block
  | child :: _ ->
    let status = Option.get child.Process.exit_status in
    Kernel.remove_proc k child.Process.pid;
    `Reaped (child.Process.pid, status)

let sleep_until _k _p deadline = Thread.Wait_sleep_until deadline

let sls k (p : Process.t) op =
  trap k;
  match k.Kernel.sls_ops with
  | Some handler -> handler ~pid:p.Process.pid op
  | None -> err "sls: no single level store attached"
