type step_result =
  | Continue
  | Yield
  | Block of Thread.wait
  | Exit_program of int

type step_fn = Kernel.t -> Process.t -> Thread.t -> step_result

let table : (string, step_fn) Hashtbl.t = Hashtbl.create 16

let register ~name fn = Hashtbl.replace table name fn
let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with
  | Some fn -> fn
  | None -> invalid_arg (Printf.sprintf "Program.find_exn: no program %S" name)

let registered () =
  Hashtbl.fold (fun name _ acc -> name :: acc) table [] |> List.sort String.compare
