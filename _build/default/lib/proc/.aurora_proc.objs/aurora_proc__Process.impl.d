lib/proc/process.ml: Aurora_posix Aurora_vm Fd Format List Printf Thread Vmmap
