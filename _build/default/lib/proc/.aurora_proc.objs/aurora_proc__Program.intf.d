lib/proc/program.mli: Kernel Process Thread
