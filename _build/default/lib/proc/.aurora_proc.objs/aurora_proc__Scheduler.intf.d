lib/proc/scheduler.mli: Aurora_simtime Duration Kernel
