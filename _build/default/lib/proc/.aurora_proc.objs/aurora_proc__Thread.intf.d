lib/proc/thread.mli: Aurora_posix Aurora_simtime Context Duration Format Serial
