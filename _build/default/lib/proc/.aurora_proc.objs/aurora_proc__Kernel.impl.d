lib/proc/kernel.ml: Aurora_posix Aurora_simtime Aurora_vfs Aurora_vm Clock Container Duration Fd Format Frame Hashtbl Int List Memfs Netstack Printf Prng Process Registry Tracelog Unixsock Vmmap
