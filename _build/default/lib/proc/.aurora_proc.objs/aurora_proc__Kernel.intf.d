lib/proc/kernel.mli: Aurora_posix Aurora_simtime Aurora_vfs Aurora_vm Clock Container Duration Fd Format Frame Hashtbl Memfs Netstack Prng Process Registry Tracelog Unixsock
