lib/proc/context.ml: Array Aurora_posix Format Int64 List Printf Serial
