lib/proc/thread.ml: Aurora_posix Aurora_simtime Context Duration Format Printf Serial
