lib/proc/scheduler.ml: Aurora_device Aurora_posix Aurora_simtime Clock Context Costmodel Duration Kernel Kqueue List Msgq Pipe Process Program Registry Semaphore Syscall Thread Unixsock
