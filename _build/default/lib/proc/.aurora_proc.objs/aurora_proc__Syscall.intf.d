lib/proc/syscall.mli: Aurora_posix Aurora_simtime Aurora_vm Content Duration Kernel Kqueue Process Shm Thread Vmmap
