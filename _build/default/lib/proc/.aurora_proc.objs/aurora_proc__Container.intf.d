lib/proc/container.mli: Format
