lib/proc/context.mli: Aurora_posix Format Serial
