lib/proc/container.ml: Format
