lib/proc/program.ml: Hashtbl Kernel List Printf Process String Thread
