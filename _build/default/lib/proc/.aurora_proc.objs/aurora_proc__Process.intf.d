lib/proc/process.mli: Aurora_posix Aurora_vm Fd Format Thread Vmmap
