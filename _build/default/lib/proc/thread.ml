open Aurora_simtime
open Aurora_posix

type wait =
  | Wait_read of int
  | Wait_write of int
  | Wait_accept of int
  | Wait_sem of int
  | Wait_sleep_until of Duration.t
  | Wait_child of int
  | Wait_forever

type state = Runnable | Blocked of wait | Exited of int

type t = {
  tid : int;
  mutable state : state;
  context : Context.t;
}

let create ~tid ~program = { tid; state = Runnable; context = Context.create ~program }
let is_runnable t = t.state = Runnable
let is_exited t = match t.state with Exited _ -> true | Runnable | Blocked _ -> false

let w_wait w = function
  | Wait_read oid ->
    Serial.w_u8 w 0;
    Serial.w_int w oid
  | Wait_write oid ->
    Serial.w_u8 w 1;
    Serial.w_int w oid
  | Wait_accept oid ->
    Serial.w_u8 w 2;
    Serial.w_int w oid
  | Wait_sem oid ->
    Serial.w_u8 w 3;
    Serial.w_int w oid
  | Wait_sleep_until d ->
    Serial.w_u8 w 4;
    Serial.w_int w (Duration.to_ns d)
  | Wait_child pid ->
    Serial.w_u8 w 5;
    Serial.w_int w pid
  | Wait_forever -> Serial.w_u8 w 6

let r_wait r =
  match Serial.r_u8 r with
  | 0 -> Wait_read (Serial.r_int r)
  | 1 -> Wait_write (Serial.r_int r)
  | 2 -> Wait_accept (Serial.r_int r)
  | 3 -> Wait_sem (Serial.r_int r)
  | 4 -> Wait_sleep_until (Duration.nanoseconds (Serial.r_int r))
  | 5 -> Wait_child (Serial.r_int r)
  | 6 -> Wait_forever
  | v -> raise (Serial.Corrupt (Printf.sprintf "Thread: bad wait tag %d" v))

let serialize t w =
  Serial.w_int w t.tid;
  (match t.state with
   | Runnable -> Serial.w_u8 w 0
   | Blocked wait ->
     Serial.w_u8 w 1;
     w_wait w wait
   | Exited code ->
     Serial.w_u8 w 2;
     Serial.w_int w code);
  Context.serialize t.context w

let deserialize r =
  let tid = Serial.r_int r in
  let state =
    match Serial.r_u8 r with
    | 0 -> Runnable
    | 1 -> Blocked (r_wait r)
    | 2 -> Exited (Serial.r_int r)
    | v -> raise (Serial.Corrupt (Printf.sprintf "Thread: bad state tag %d" v))
  in
  let context = Context.deserialize r in
  { tid; state; context }

let pp ppf t =
  let state =
    match t.state with
    | Runnable -> "run"
    | Blocked _ -> "blocked"
    | Exited c -> Printf.sprintf "exited(%d)" c
  in
  Format.fprintf ppf "tid%d[%s %a]" t.tid state Context.pp t.context
