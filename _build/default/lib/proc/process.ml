open Aurora_vm
open Aurora_posix

type t = {
  pid : int;
  mutable ppid : int;
  mutable name : string;
  mutable container : int;
  mutable threads : Thread.t list;
  vm : Vmmap.t;
  mutable fdtable : Fd.table;
  mutable cwd : string;
  mutable exit_status : int option;
  mutable next_tid : int;
}

let create ~pid ~ppid ~name ~container ~vm ~program =
  let main = Thread.create ~tid:1 ~program in
  { pid; ppid; name; container; threads = [ main ]; vm;
    fdtable = Fd.create_table (); cwd = "/"; exit_status = None; next_tid = 2 }

let main_thread t =
  match t.threads with
  | main :: _ -> main
  | [] -> invalid_arg "Process.main_thread: no threads"

let thread t tid = List.find_opt (fun th -> th.Thread.tid = tid) t.threads

let add_thread t ~program =
  let th = Thread.create ~tid:t.next_tid ~program in
  t.next_tid <- t.next_tid + 1;
  t.threads <- t.threads @ [ th ];
  th

let live_threads t = List.filter (fun th -> not (Thread.is_exited th)) t.threads
let is_zombie t = t.exit_status <> None
let all_exited t = List.for_all Thread.is_exited t.threads

let pp ppf t =
  Format.fprintf ppf "pid%d(%s, %d threads, container %d%s)" t.pid t.name
    (List.length t.threads) t.container
    (match t.exit_status with None -> "" | Some c -> Printf.sprintf ", zombie(%d)" c)
