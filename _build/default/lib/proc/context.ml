open Aurora_posix

type t = {
  mutable program : string;
  mutable pc : int;
  regs : int64 array;
}

let nregs = 16
let create ~program = { program; pc = 0; regs = Array.make nregs 0L }
let copy t = { program = t.program; pc = t.pc; regs = Array.copy t.regs }

let check_reg i =
  if i < 0 || i >= nregs then invalid_arg (Printf.sprintf "Context: bad register %d" i)

let reg t i =
  check_reg i;
  t.regs.(i)

let set_reg t i v =
  check_reg i;
  t.regs.(i) <- v

let reg_int t i = Int64.to_int (reg t i)
let set_reg_int t i v = set_reg t i (Int64.of_int v)

let serialize t w =
  Serial.w_string w t.program;
  Serial.w_int w t.pc;
  Serial.w_list w Serial.w_int64 (Array.to_list t.regs)

let deserialize r =
  let program = Serial.r_string r in
  let pc = Serial.r_int r in
  let regs = Serial.r_list r Serial.r_int64 in
  if List.length regs <> nregs then
    raise (Serial.Corrupt "Context: wrong register count");
  { program; pc; regs = Array.of_list regs }

let pp ppf t = Format.fprintf ppf "%s@pc=%d" t.program t.pc
