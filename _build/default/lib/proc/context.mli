(** Thread execution contexts.

    Simulated programs are state machines: a registered program name
    (the "binary on disk"), a program counter, and a small register
    file. That is exactly the state a real checkpoint captures from a
    CPU — and, like the real thing, it serializes into a few dozen
    bytes. Everything else a program knows must live in simulated
    memory or kernel objects, which is what makes checkpoint/restore
    transparent to it. *)

open Aurora_posix

type t = {
  mutable program : string;
  mutable pc : int;
  regs : int64 array;
}

val nregs : int
(** 16 general-purpose registers. *)

val create : program:string -> t
val copy : t -> t
val reg : t -> int -> int64
val set_reg : t -> int -> int64 -> unit
val reg_int : t -> int -> int
val set_reg_int : t -> int -> int -> unit
val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
val pp : Format.formatter -> t -> unit
