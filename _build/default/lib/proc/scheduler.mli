(** The cooperative, deterministic scheduler.

    Threads run in pid/tid order, one program step per quantum. Wait
    states are re-evaluated against kernel object state before each
    pass (the simulated wakeup path). When every live thread is
    asleep, the clock jumps to the earliest deadline; when every live
    thread is blocked on IO that nothing can progress, the machine is
    idle and control returns to the caller (the orchestrator's
    checkpoint timer typically runs next).

    Determinism matters: the paper's debugging story (bisecting
    checkpoint history, re-running from images) relies on reruns being
    reproducible, and so do this repo's tests. *)

open Aurora_simtime

type stop_reason =
  | Deadline      (** the clock reached the requested time *)
  | Idle          (** no thread can make progress *)
  | All_exited    (** no live threads remain *)

val wakeup_pass : Kernel.t -> unit
(** Re-evaluate every blocked thread's wait condition. *)

val step_all : Kernel.t -> int
(** One pass: run each runnable thread for one program step; returns
    the number of steps executed. *)

val run : Kernel.t -> until:Duration.t -> stop_reason
(** Run the machine to the given absolute simulated time (or until it
    idles / empties). *)

val run_for : Kernel.t -> Duration.t -> stop_reason
val run_until_idle : Kernel.t -> ?max_steps:int -> unit -> stop_reason
(** Run until no thread can progress. [max_steps] (default 10 million)
    guards against livelock in buggy programs. *)
