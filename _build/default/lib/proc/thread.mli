(** Kernel threads.

    The wait state is data, not a closure, so a blocked thread
    checkpoints and restores still-blocked — e.g. a server thread
    parked in accept() resumes parked, and wakes when a connection
    arrives in the restored listener's backlog. *)

open Aurora_simtime
open Aurora_posix

type wait =
  | Wait_read of int      (** readable data on object [oid] *)
  | Wait_write of int     (** writable space on object [oid] *)
  | Wait_accept of int    (** pending connection on listener [oid] *)
  | Wait_sem of int       (** semaphore [oid] > 0 *)
  | Wait_sleep_until of Duration.t
  | Wait_child of int     (** exit of pid (-1: any child) *)
  | Wait_forever          (** parked until something external unblocks it *)

type state = Runnable | Blocked of wait | Exited of int

type t = {
  tid : int;
  mutable state : state;
  context : Context.t;
}

val create : tid:int -> program:string -> t
val is_runnable : t -> bool
val is_exited : t -> bool
val serialize : t -> Serial.writer -> unit
val deserialize : Serial.reader -> t
val pp : Format.formatter -> t -> unit
