type t = { cid : int; name : string }

let host = { cid = 0; name = "host" }
let pp ppf t = Format.fprintf ppf "container#%d(%s)" t.cid t.name
